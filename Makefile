GO ?= go

.PHONY: build test race race-shard race-rebuild race-tier race-coact race-file alloc-guard vet vet-tool lint staticcheck bench verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Builds the domain-specific analyzer suite (internal/analyzers) into a
# vettool binary and prints its path; `lint` and CI consume it via
# `go vet -vettool`.
vet-tool:
	@$(GO) build -o bin/maxembed-vet ./cmd/maxembed-vet
	@echo "$(CURDIR)/bin/maxembed-vet"

# maxembed's own invariants: injected clocks in the deterministic core,
# typed atomics, pool discipline, no blocking work under mutexes, no
# fresh root contexts on the request path (see DESIGN.md §14).
lint:
	$(GO) build -o bin/maxembed-vet ./cmd/maxembed-vet
	$(GO) vet -vettool=$(CURDIR)/bin/maxembed-vet ./...

# Runs staticcheck when it is on PATH (CI installs it; local toolchains
# may not have it) and is a no-op with a notice otherwise.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# The multi-device fault and hot-swap seams, explicitly and repeatedly under
# the race detector: shard fault isolation, the striped-array serving path,
# and the array hot-swap-under-load hammer. `race` covers these once as part
# of the full suite; this target reruns them with -count to shake out
# interleavings.
race-shard:
	$(GO) test -race -count=3 -run 'TestShardFaultIsolation|TestShardQueuePeaksAcrossRun|TestBackendOneShardMatchesDevice' ./internal/serving
	$(GO) test -race -count=3 -run 'TestMultiDeviceHotSwapUnderLoad|TestMultiDeviceOpenAndLookup' .

# The repair seams under the race detector: scrub + rebuild + admin
# endpoints, the DB-level fail/rebuild/auto-rebuild paths, and the chaos
# soak (coalesced HTTP load against concurrent shard failure, live
# rebuild, layout refreshes, and a scrub sweep).
race-rebuild:
	$(GO) test -race -count=3 -run 'Scrub|Rebuild' ./internal/serving ./internal/server
	$(GO) test -race -count=3 -run 'TestScrubFailRebuildDB|TestAutoRebuild|TestChaosSoak' .

# The tiered-hierarchy seams under the race detector: heterogeneous
# array construction and tier accounting, shadow-cache simulation, the
# tier-placement pass, and the DB-level re-tier-at-refresh path under
# concurrent lookups.
race-tier:
	$(GO) test -race -count=3 -run 'Tier|Shadow|Retier|Discount' ./internal/ssd ./internal/cache ./internal/placement ./internal/server
	$(GO) test -race -count=3 -run 'TestTiered|TestRefreshRetier' .

# The co-activation-placement seams under the race detector: shard-spread
# scoring, the despread pass and its composition with Retier, per-query
# max-shard-depth accounting (single and batched), and the DB-level
# refresh-during-rebuild hot-swap path.
race-coact:
	$(GO) test -race -count=3 -run 'Despread|Spread|TopForSet|MaxShardDepth|LookupBatch' ./internal/placement ./internal/hypergraph ./internal/serving
	$(GO) test -race -count=3 -run 'TestCoActivationPlacementOption|TestRefreshDuringFastShardRebuild' .

# The real-I/O seams under the race detector: the async backend's executor
# and freelist paths, zero-copy ref lifetimes across retained buffers, the
# server's lease/encode handoff, and the public WithFileBackend surface.
race-file:
	$(GO) test -race -count=3 -run 'TestFile|TestPageBuf|TestPread|TestUring|TestLookupBinary|TestLookupJSONOverFileBackend|TestMetricsBackendLatencyHistogram' ./internal/ssd ./internal/serving ./internal/server
	$(GO) test -race -count=3 -run 'TestFileBackend' .

# The zero-copy hot path's hard allocation gate: once warm, a cacheless
# lookup (single and batched) over the real-I/O backend must allocate
# nothing at all. CI runs this as the bench-smoke gate.
alloc-guard:
	$(GO) test -count=1 -run 'TestFileBackendLookupZeroAllocs|TestFileBackendBatchZeroAllocs' -v ./internal/serving

bench:
	$(GO) test -bench=. -benchmem ./...

# The full pre-merge gate: static checks (including the repo's own
# analyzer suite), build, and the test suite under the race detector
# (the serving engine and HTTP layer are concurrent).
verify: vet lint staticcheck build race race-shard race-rebuild race-tier race-coact race-file alloc-guard

experiments:
	$(GO) run ./cmd/experiments
