GO ?= go

.PHONY: build test race vet bench verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The full pre-merge gate: static checks, build, and the test suite under
# the race detector (the serving engine and HTTP layer are concurrent).
verify: vet build race

experiments:
	$(GO) run ./cmd/experiments
