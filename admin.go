package maxembed

import (
	"context"
	"fmt"

	"maxembed/internal/serving"
	"maxembed/internal/ssd"
)

// Shard health, scrubbing, and live rebuild: the operational face of a
// multi-device DB. A failed shard is routed around by the serving layer
// (per-shard health windows), rebuilt onto the hot spare, and the
// repaired array hot-swapped into the serving handle exactly like a
// layout refresh — lookups never stop, they just pay replica-read and
// rebuild-interference costs until redundancy is restored.

// ScrubConfig parameterizes a background scrub sweep.
type ScrubConfig = serving.ScrubConfig

// ScrubReport summarizes one scrub sweep.
type ScrubReport = serving.ScrubReport

// RebuildConfig parameterizes a live shard rebuild.
type RebuildConfig = serving.RebuildConfig

// RebuildReport summarizes one shard rebuild; DurationNS is the MTTR.
type RebuildReport = serving.RebuildReport

// ShardHealthInfo is one shard's health snapshot.
type ShardHealthInfo = ssd.ShardHealthInfo

// array returns the DB's backend as a health-tracked array, or an error
// on a single-device DB (one shard: nothing to fail over to).
func (db *DB) array() (*ssd.Array, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	arr, ok := db.backend.(*ssd.Array)
	if !ok {
		return nil, fmt.Errorf("maxembed: %T is not a multi-device array (open WithDevices)", db.backend)
	}
	return arr, nil
}

// spareProfile picks the device profile for a hot spare. Homogeneous
// arrays get the member profile; tiered arrays get the slowest tier's —
// the cheapest device that can hold any shard's data. Rebuilding a fast
// shard onto a dense spare temporarily shrinks the fast tier (SwapShard
// re-derives tiers from the new member mix); the next Refresh re-tiers
// pages around the changed geometry.
func (db *DB) spareProfile() ssd.Profile {
	if len(db.cfg.tiers) == 0 {
		return db.cfg.device
	}
	tr := db.backend.(ssd.TierReporter)
	return tr.Tier(tr.NumTiers() - 1).Profile
}

// armSpare attaches the hot spare and the auto-rebuild hook Open's
// options asked for. Called once at the end of Open.
func (db *DB) armSpare() error {
	if !db.cfg.hotSpare {
		return nil
	}
	arr, ok := db.backend.(*ssd.Array)
	if !ok {
		return nil // single device: nothing to rebuild onto
	}
	spare, err := ssd.NewDevice(db.spareProfile())
	if err != nil {
		return fmt.Errorf("maxembed: hot spare: %w", err)
	}
	if err := arr.AttachSpare(spare); err != nil {
		return fmt.Errorf("maxembed: hot spare: %w", err)
	}
	if db.cfg.autoRebuild {
		// The hook survives rebuilds: SwapShard carries it onto the
		// repaired array, so a later failure of any shard re-fires it.
		arr.OnFail(func(shard int) { db.autoRebuildShard(shard) })
	}
	return nil
}

// autoRebuildShard is the OnFail hook body: one self-healing rebuild,
// serialized with admin-triggered rebuilds by RebuildShard itself.
func (db *DB) autoRebuildShard(shard int) {
	// Self-healing runs on the OnFail goroutine with no originating
	// request to inherit a context from; it must outlive whichever
	// lookup happened to observe the failure.
	//lint:allow ctxflow background repair owns its own lifetime
	_, err := db.RebuildShard(context.Background(), shard,
		RebuildConfig{PagesPerSec: db.cfg.rebuildRate})
	if err != nil {
		db.autoErrors.Add(1)
		return
	}
	db.autoRebuilds.Add(1)
}

// AutoRebuilds reports how many self-healing rebuilds have completed and
// how many failed (for example because the spare was already consumed).
func (db *DB) AutoRebuilds() (done, errors int64) {
	return db.autoRebuilds.Load(), db.autoErrors.Load()
}

// ShardHealth returns per-shard health snapshots, or nil on a
// single-device DB (which has no per-shard health machinery).
func (db *DB) ShardHealth() []ShardHealthInfo {
	arr, err := db.array()
	if err != nil {
		return nil
	}
	return arr.ShardHealths()
}

// AttachSpare installs a fresh hot spare (same profile as the members)
// after a rebuild consumed the previous one.
func (db *DB) AttachSpare() error {
	arr, err := db.array()
	if err != nil {
		return err
	}
	spare, err := ssd.NewDevice(db.spareProfile())
	if err != nil {
		return fmt.Errorf("maxembed: spare: %w", err)
	}
	return arr.AttachSpare(spare)
}

// FailShard is the chaos hook: it makes every future read against the
// shard fail (total device loss) and declares the shard failed so the
// serving layer routes around it immediately. With WithAutoRebuild a
// rebuild onto the hot spare starts in the background.
func (db *DB) FailShard(shard int) error {
	arr, err := db.array()
	if err != nil {
		return err
	}
	if shard < 0 || shard >= arr.NumShards() {
		return fmt.Errorf("maxembed: FailShard(%d) of %d shards", shard, arr.NumShards())
	}
	arr.SetShardFaultModel(shard, ssd.AlwaysFail{})
	arr.FailShard(shard)
	return nil
}

// RebuildShard streams the failed shard's pages onto the hot spare,
// swaps the spare into the stripe, and hot-swaps a new engine over the
// repaired array into the serving handle. Live sessions pick it up at
// their next query boundary; the returned report's DurationNS is the
// mean-time-to-repair. Rebuilds are serialized; a concurrent attempt on
// another shard waits here rather than racing for the single spare.
func (db *DB) RebuildShard(ctx context.Context, shard int, cfg RebuildConfig) (RebuildReport, error) {
	db.rebuildMu.Lock()
	defer db.rebuildMu.Unlock()
	eng := db.handle.Engine()
	nb, rep, err := serving.RebuildShard(ctx, eng, shard, cfg)
	if err != nil {
		return rep, fmt.Errorf("maxembed: rebuild shard %d: %w", shard, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	old := db.backend
	db.backend = nb
	eng2, err := serving.New(db.engineConfig(db.lay, db.src))
	if err != nil {
		db.backend = old
		return rep, fmt.Errorf("maxembed: rebuild engine: %w", err)
	}
	if _, err := db.handle.Swap(eng2); err != nil {
		db.backend = old
		return rep, fmt.Errorf("maxembed: rebuild swap: %w", err)
	}
	return rep, nil
}

// Scrub runs one sweep of the background scrubber: every page on a live
// shard is read at the configured low-priority rate, each occupied slot's
// stored checksum is verified against the store image, and latent (at
// rest) corruption is repaired from cross-shard replicas unless
// cfg.DetectOnly is set. Sweeps are serialized.
func (db *DB) Scrub(ctx context.Context, cfg ScrubConfig) (ScrubReport, error) {
	db.scrubMu.Lock()
	defer db.scrubMu.Unlock()
	return serving.Scrub(ctx, db.handle.Engine(), cfg)
}

// ScrubNow runs one scrub sweep with default settings.
func (db *DB) ScrubNow(ctx context.Context) (ScrubReport, error) {
	return db.Scrub(ctx, ScrubConfig{})
}
