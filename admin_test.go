package maxembed

import (
	"context"
	"testing"
	"time"

	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// TestScrubFailRebuildDB drives the whole robustness surface at the DB
// level: scrub repairs injected bit rot, FailShard kills a drive without
// losing a single lookup, and RebuildShard restores redundancy onto the
// hot spare with a hot engine swap live sessions follow.
func TestScrubFailRebuildDB(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.3), WithDevices(2), WithCacheRatio(0),
		WithSeed(3), WithHotSpare())
	if err != nil {
		t.Fatal(err)
	}
	arr, ok := db.Backend().(*ssd.Array)
	if !ok || arr.Spare() == nil {
		t.Fatal("WithHotSpare did not attach a spare")
	}

	// Scrub a clean store: nothing latent.
	rep, err := db.ScrubNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentSlots != 0 || rep.PagesScanned == 0 {
		t.Fatalf("clean scrub = %+v", rep)
	}

	// Inject at-rest rot and scrub again: detected and accounted.
	sh := db.src.(*store.Sharded)
	if err := sh.CorruptSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	rep, err = db.ScrubNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentSlots != 1 || rep.RepairedSlots+rep.UnrepairableSlots != 1 {
		t.Fatalf("rot scrub = %+v", rep)
	}

	// Kill shard 0; the DB keeps serving every key correctly.
	sess := db.NewSession()
	if err := db.FailShard(0); err != nil {
		t.Fatal(err)
	}
	if infos := db.ShardHealth(); infos[0].State != ssd.ShardFailed {
		t.Fatalf("shard 0 state after FailShard = %v", infos[0].State)
	}
	var want []float32
	for i := 0; i < 100 && i < len(eval.Queries); i++ {
		res, err := sess.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Degraded {
			t.Fatalf("query %d degraded with one dead shard of two", i)
		}
		for j, k := range res.Keys {
			want = db.syn.Vector(k, want[:0])
			for x := range want {
				if res.Vectors[j][x] != want[x] {
					t.Fatalf("query %d: wrong vector for key %d with dead shard", i, k)
				}
			}
		}
	}

	// Rebuild; the session picks the repaired array up at its next query.
	gen := db.LayoutGeneration()
	rrep, err := db.RebuildShard(context.Background(), 0, RebuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rrep.LocalPages == 0 || rrep.DurationNS() <= 0 {
		t.Fatalf("rebuild report = %+v", rrep)
	}
	if db.LayoutGeneration() != gen+1 {
		t.Fatalf("generation after rebuild = %d, want %d", db.LayoutGeneration(), gen+1)
	}
	nb, ok := db.Backend().(*ssd.Array)
	if !ok || nb == arr {
		t.Fatal("backend not replaced by rebuild")
	}
	if st := db.ShardHealth()[0].State; st != ssd.ShardHealthy {
		t.Fatalf("shard 0 state after rebuild = %v", st)
	}
	if nb.Spare() != nil {
		t.Fatal("spare not consumed by rebuild")
	}
	before := nb.Shard(0).Stats().Writes
	for i := 100; i < 200 && i < len(eval.Queries); i++ {
		res, err := sess.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ReadFaults != 0 || res.Stats.Degraded {
			t.Fatalf("query %d faulted after rebuild: %+v", i, res.Stats)
		}
	}
	if nb.Shard(0).Stats().Reads == 0 {
		t.Error("rebuilt shard serves no reads")
	}
	if nb.Shard(0).Stats().Writes != before {
		t.Error("serving traffic wrote to the rebuilt shard")
	}

	// A fresh spare can be attached for the next failure.
	if err := db.AttachSpare(); err != nil {
		t.Fatal(err)
	}
	if nb.Spare() == nil {
		t.Fatal("AttachSpare did not install a spare")
	}
}

// TestAutoRebuild: with WithAutoRebuild, FailShard alone is enough — the
// OnFail hook rebuilds onto the spare in the background and swaps the
// repaired array in with no operator action.
func TestAutoRebuild(t *testing.T) {
	tr := smallTrace(t)
	db, err := Open(tr.NumItems, tr.Queries,
		WithReplicationRatio(0.3), WithDevices(2), WithCacheRatio(0),
		WithSeed(3), WithAutoRebuild(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.FailShard(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if done, _ := db.AutoRebuilds(); done == 1 {
			break
		}
		if time.Now().After(deadline) {
			done, errs := db.AutoRebuilds()
			t.Fatalf("auto rebuild never completed (done=%d errors=%d)", done, errs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := db.ShardHealth()[0].State; st != ssd.ShardHealthy {
		t.Fatalf("shard 0 state after auto rebuild = %v", st)
	}
	sess := db.NewSession()
	for i := 0; i < 50; i++ {
		res, err := sess.Lookup(tr.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ReadFaults != 0 || res.Stats.Degraded {
			t.Fatalf("query %d faulted after auto rebuild: %+v", i, res.Stats)
		}
	}
	// The hook carried over to the repaired array: a second failure (with
	// a fresh spare) self-heals too.
	if err := db.AttachSpare(); err != nil {
		t.Fatal(err)
	}
	if err := db.FailShard(1); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if done, _ := db.AutoRebuilds(); done == 2 {
			break
		}
		if time.Now().After(deadline) {
			done, errs := db.AutoRebuilds()
			t.Fatalf("second auto rebuild never completed (done=%d errors=%d)", done, errs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := db.ShardHealth()[1].State; st != ssd.ShardHealthy {
		t.Fatalf("shard 1 state after second auto rebuild = %v", st)
	}
}

// TestAdminSingleDeviceErrors: the shard admin surface needs an array.
func TestAdminSingleDeviceErrors(t *testing.T) {
	tr := smallTrace(t)
	db, err := Open(tr.NumItems, tr.Queries[:500])
	if err != nil {
		t.Fatal(err)
	}
	if err := db.FailShard(0); err == nil {
		t.Fatal("FailShard on a single-device DB succeeded")
	}
	if _, err := db.RebuildShard(context.Background(), 0, RebuildConfig{}); err == nil {
		t.Fatal("RebuildShard on a single-device DB succeeded")
	}
	if db.ShardHealth() != nil {
		t.Fatal("ShardHealth non-nil on a single-device DB")
	}
}
