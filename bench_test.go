package maxembed_test

// One benchmark per table and figure of the paper's evaluation (§8). Each
// bench runs the corresponding experiment driver end to end — trace
// synthesis, offline placement, online serving on the simulated device —
// at a reduced scale suitable for `go test -bench`. The full-size versions
// are run by `go run ./cmd/experiments`; EXPERIMENTS.md records their
// output against the paper's numbers.
//
// Benchmarks discard the table text (io.Discard) and report wall time of
// regenerating the artifact; use -benchtime=1x for a single regeneration.

import (
	"io"
	"testing"

	"maxembed"
	"maxembed/internal/experiments"
)

// benchScale keeps each regeneration within a benchmark-friendly budget.
const benchScale = 0.04

func benchConfig() experiments.Config {
	return experiments.Config{
		Out:     io.Discard,
		Scale:   benchScale,
		Workers: 4,
		Seed:    1,
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Fresh memo each iteration so the bench measures the full
		// pipeline, not a cache hit.
		experiments.ResetMemo()
		if err := e.Run(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
	experiments.ResetMemo()
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFig17a(b *testing.B) { runExperiment(b, "fig17a") }
func BenchmarkFig17b(b *testing.B) { runExperiment(b, "fig17b") }

// BenchmarkLookup measures the end-to-end public-API lookup path (offline
// phase excluded): the per-query cost a downstream user of the library
// observes, in real (not virtual) time.
func BenchmarkLookup(b *testing.B) {
	trace, err := maxembed.GenerateTrace(maxembed.ProfileCriteo, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	history, eval := trace.Split(0.5)
	db, err := maxembed.Open(trace.NumItems, history.Queries, maxembed.WithReplicationRatio(0.2))
	if err != nil {
		b.Fatal(err)
	}
	sess := db.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Lookup(eval.Queries[i%len(eval.Queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflinePhase measures the full offline pipeline (hypergraph,
// SHP partitioning, connectivity-priority replication, page layout).
func BenchmarkOfflinePhase(b *testing.B) {
	trace, err := maxembed.GenerateTrace(maxembed.ProfileCriteo, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	history, _ := trace.Split(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxembed.Open(trace.NumItems, history.Queries,
			maxembed.WithReplicationRatio(0.2), maxembed.TimingOnly()); err != nil {
			b.Fatal(err)
		}
	}
}
