package maxembed

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"maxembed/internal/server"
)

// TestChaosSoak exercises every moving part of the serving stack at once,
// over HTTP, under the race detector: coalesced lookups hammer the server
// while a chaos sequence fails a shard, rebuilds it onto the hot spare,
// refreshes the layout (hot-swapping the engine twice more), fails and
// rebuilds the *other* shard, and runs a scrub sweep. Throughout:
//
//   - every 200/206 response's vectors must match the synthesizer exactly
//     (no stale or torn data across any engine swap),
//   - the layout generation each client observes must never go backwards
//     (workers and the coalescer re-bind to swapped engines, never serve
//     from a retired one after a newer one answered),
//   - no key may hard-fail (failed shards are rescued by replica reads or
//     host-store fallback; degraded 206 responses are a test failure),
//   - 503s are allowed only as coalescer backpressure (the queue is kept
//     tiny to force shedding) — the node itself must stay ready, since one
//     dead shard of two sits exactly at the default fail tolerance.
//
// The soak ends with both shards healthy, redundancy restored, and a
// stats/healthz audit.
func TestChaosSoak(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.3), WithDevices(2), WithSeed(11),
		WithCacheRatio(0), WithHotSpare(), WithHistoryRecording(512))
	if err != nil {
		t.Fatal(err)
	}
	startGen := db.LayoutGeneration()

	h := server.NewDynamic(db.Handle(), db.Backend(),
		server.WithRefresh(db),
		server.WithShardAdmin(db),
		server.WithScrub(db),
		// A small batch with a tiny queue bound forces real backpressure
		// shedding under the client herd below.
		server.WithCoalescing(4, 200*time.Microsecond),
		server.WithCoalesceQueue(2))
	defer h.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	post := func(path string) (int, []byte) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Errorf("POST %s: %v", path, err)
			return 0, nil
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}
	mustPost := func(path string) []byte {
		status, body := post(path)
		if status != http.StatusOK {
			t.Errorf("POST %s = %d: %s", path, status, body)
		}
		return body
	}

	var (
		served, degraded, shed atomic.Int64
		failedKeys             atomic.Int64
	)
	done := make(chan struct{})
	var wg sync.WaitGroup
	const clients = 6
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			var want []float32
			lastGen := uint64(0)
			for i := c; ; i += clients {
				select {
				case <-done:
					return
				default:
				}
				q := eval.Queries[i%len(eval.Queries)]
				body, _ := json.Marshal(server.LookupRequest{Keys: q})
				resp, err := client.Post(ts.URL+"/v1/lookup", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var lr server.LookupResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&lr)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusServiceUnavailable:
					// Coalescer backpressure (or a probe-gated window);
					// back off and retry — the key set is not lost, the
					// next iteration re-requests other keys anyway.
					shed.Add(1)
					time.Sleep(100 * time.Microsecond)
					continue
				case http.StatusOK, http.StatusPartialContent:
				default:
					t.Errorf("client %d: lookup status %d", c, resp.StatusCode)
					return
				}
				if decodeErr != nil {
					t.Errorf("client %d: decode: %v", c, decodeErr)
					return
				}
				served.Add(1)
				if lr.Degraded {
					degraded.Add(1)
					failedKeys.Add(int64(len(lr.FailedKeys)))
				}
				if g := lr.Stats.Generation; g < lastGen {
					t.Errorf("client %d: generation went backwards: %d after %d", c, g, lastGen)
					return
				} else {
					lastGen = g
				}
				// Every returned vector must be the synthesizer's ground
				// truth for its key, whatever engine generation, rebuild,
				// or coalesced batch produced it.
				for k, v := range lr.Embeddings {
					want = db.syn.Vector(Key(k), want[:0])
					if len(v) != len(want) {
						t.Errorf("client %d: key %d: dim %d, want %d", c, k, len(v), len(want))
						return
					}
					for j := range want {
						if v[j] != want[j] {
							t.Errorf("client %d: key %d: stale or corrupt vector at dim %d", c, k, j)
							return
						}
					}
				}
			}
		}(c)
	}

	// The chaos sequence, run against the live client herd.
	settle := func() { time.Sleep(20 * time.Millisecond) }
	settle()
	mustPost("/v1/shards/0/fail")
	// One dead shard of two sits at the default 0.5 fail tolerance: the
	// node must still report ready while the engine reroutes around it.
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Error(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz = %d with one dead shard of two (tolerance 0.5)", resp.StatusCode)
		}
	}
	settle()
	mustPost("/v1/shards/0/rebuild?pages_per_sec=20000")
	if err := db.AttachSpare(); err != nil {
		t.Errorf("re-arm spare: %v", err)
	}
	settle()
	mustPost("/v1/refresh")
	settle()
	mustPost("/v1/shards/1/fail")
	settle()
	mustPost("/v1/shards/1/rebuild")
	settle()
	mustPost("/v1/scrub")
	mustPost("/v1/refresh")
	settle()
	close(done)
	wg.Wait()

	if s := served.Load(); s < 50 {
		t.Errorf("only %d lookups served during the soak", s)
	}
	if d := degraded.Load(); d != 0 {
		t.Errorf("%d degraded responses (%d failed keys); replica reads + store fallback must rescue everything",
			d, failedKeys.Load())
	}
	t.Logf("soak: %d served, %d shed (backpressure), generations %d → %d",
		served.Load(), shed.Load(), startGen, db.LayoutGeneration())

	// Two rebuild swaps plus two refresh swaps.
	if got, want := db.LayoutGeneration(), startGen+4; got != want {
		t.Errorf("layout generation = %d, want %d", got, want)
	}
	for _, info := range db.ShardHealth() {
		if !info.State.Live() {
			t.Errorf("shard %d is %v after the soak, want live", info.Shard, info.State)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Recovery.FailedKeys != 0 {
		t.Errorf("stats: %d failed keys across the soak, want 0", stats.Recovery.FailedKeys)
	}
	if stats.Rebuild.Rebuilds != 2 {
		t.Errorf("stats: %d rebuilds, want 2", stats.Rebuild.Rebuilds)
	}
	if stats.Scrub.Sweeps != 1 {
		t.Errorf("stats: %d scrub sweeps, want 1", stats.Scrub.Sweeps)
	}
	if !stats.Health.Ready {
		t.Error("stats: node not ready after full recovery")
	}
	for _, s := range stats.Shards {
		if s.State != "healthy" {
			t.Errorf("stats: shard %d state %q after the soak", s.Shard, s.State)
		}
	}
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Error(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz = %d after full recovery", resp.StatusCode)
		}
	}
}
