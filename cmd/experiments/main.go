// Command experiments regenerates the paper's evaluation tables and
// figures (§8). With no arguments it runs every experiment; otherwise each
// argument is an experiment id (fig3, fig8, …, table1, …).
//
// Usage:
//
//	experiments [-scale f] [-workers n] [-seed n] [-list] [id ...]
//
// Scale 1.0 runs the full scaled dataset profiles documented in DESIGN.md;
// smaller values shrink everything proportionally for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"maxembed/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	workers := flag.Int("workers", 8, "closed-loop serving workers")
	seed := flag.Int64("seed", 1, "experiment seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	cfg := experiments.Config{
		Out:     os.Stdout,
		Scale:   *scale,
		Workers: *workers,
		Seed:    *seed,
	}
	start := time.Now()
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\nall done in %v\n", time.Since(start).Round(time.Millisecond))
}
