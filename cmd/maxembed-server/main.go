// Command maxembed-server runs the MaxEmbed embedding store as an HTTP
// service: the offline phase at startup, then lookups over a JSON API.
//
//	maxembed-server -profile Criteo -scale 0.1 -ratio 0.2 -addr :8080
//	curl -s localhost:8080/v1/lookup -d '{"keys":[1,2,3]}'
//	curl -s localhost:8080/v1/stats
//
// With -trace, a previously generated trace file seeds the placement
// instead of a synthetic profile.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"maxembed"
	"maxembed/internal/server"
	"maxembed/internal/ssd"
	"maxembed/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backend := flag.String("backend", "sim", "read backend: \"sim\" (simulated device model) or \"file:DIR\" (real async I/O over shard files written under DIR; point DIR at an NVMe filesystem to exercise hardware)")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling under /debug/pprof/ (off by default)")
	profile := flag.String("profile", "Criteo", "dataset profile for the synthetic history")
	scale := flag.Float64("scale", 0.1, "profile scale multiplier")
	tracePath := flag.String("trace", "", "seed placement from this trace file instead of a profile")
	strategy := flag.String("strategy", "maxembed", "placement strategy")
	ratio := flag.Float64("ratio", 0.2, "replication ratio r")
	cacheRatio := flag.Float64("cache", 0.1, "DRAM cache fraction")
	indexLimit := flag.Int("k", 10, "index-shrinking limit")
	devices := flag.Int("devices", 1, "independent SSDs to stripe the layout over (RAID-0 at page granularity)")
	tierFast := flag.Int("tier-fast", 0, "fast-tier (P5800X-class) shards of a heterogeneous array (0 disables tiering)")
	tierDense := flag.Int("tier-dense", 0, "dense-tier (P4510-class) shards backing -tier-fast (required with it)")
	coact := flag.Bool("coact", false, "co-activation-aware shard placement: despread co-activated pages across SSDs (multi-device only)")
	tierPins := flag.Int("tier-pins", 0, "pin this many hottest keys permanently in DRAM")
	tierShadow := flag.Bool("tier-shadow", false, "attach shadow (ghost) caches that measure the DRAM miss-rate curve")
	seed := flag.Int64("seed", 1, "placement seed")
	faultError := flag.Float64("fault-error", 0, "injected per-read error probability (chaos testing)")
	faultTimeout := flag.Float64("fault-timeout", 0, "injected per-read stuck-command probability")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "injected per-read payload-corruption probability")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection schedule seed")
	batchMax := flag.Int("batch-max", 8, "max lookups coalesced into one batch (≤1 disables coalescing)")
	batchWait := flag.Duration("batch-wait", 250*time.Microsecond, "max wait for a coalesced batch to fill")
	recordLast := flag.Int("record-last", 65536, "served queries kept as refresh history (0 disables recording and refresh)")
	refreshInterval := flag.Duration("refresh-interval", 0, "background layout-refresh period (0 disables the loop; POST /v1/refresh still works)")
	refreshMinQueries := flag.Int64("refresh-min-queries", 1024, "recorded queries required before a background refresh fires")
	hotSpare := flag.Bool("hot-spare", false, "attach a hot-spare device for shard rebuilds (multi-device only)")
	autoRebuildRate := flag.Float64("auto-rebuild-rate", 0, "auto-rebuild failed shards onto the spare at this pages/sec (0 = manual rebuild only; implies -hot-spare)")
	shardTolerance := flag.Float64("shard-tolerance", 0.5, "fraction of shards that may be dead before /healthz reports unhealthy")
	flag.Parse()

	var history *maxembed.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		history, err = workload.Decode(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		p, ok := workload.ProfileByName(*profile)
		if !ok {
			log.Fatalf("unknown profile %q", *profile)
		}
		var err error
		history, err = maxembed.GenerateTrace(p, *scale)
		if err != nil {
			log.Fatal(err)
		}
	}

	fileDir := ""
	switch {
	case *backend == "sim":
	case strings.HasPrefix(*backend, "file:"):
		fileDir = strings.TrimPrefix(*backend, "file:")
		if fileDir == "" {
			log.Fatal("-backend=file: needs a directory, e.g. -backend=file:/mnt/nvme/maxembed")
		}
	default:
		log.Fatalf("unknown -backend %q (want \"sim\" or \"file:DIR\")", *backend)
	}

	log.Printf("building placement: %d items, %d history queries, strategy=%s r=%.0f%%",
		history.NumItems, history.NumQueries(), *strategy, *ratio*100)
	opts := []maxembed.Option{
		maxembed.WithStrategy(maxembed.Strategy(*strategy)),
		maxembed.WithReplicationRatio(*ratio),
		maxembed.WithCacheRatio(*cacheRatio),
		maxembed.WithIndexLimit(*indexLimit),
		maxembed.WithSeed(*seed),
	}
	tiered := *tierFast > 0
	if fileDir != "" {
		if tiered {
			log.Fatal("-backend=file is incompatible with -tier-fast/-tier-dense (the tier model is simulator-only)")
		}
		if *faultError > 0 || *faultTimeout > 0 || *faultCorrupt > 0 {
			log.Fatal("-backend=file is incompatible with fault injection (simulator-only)")
		}
		if *hotSpare || *autoRebuildRate > 0 {
			log.Fatal("-backend=file is incompatible with -hot-spare/-auto-rebuild-rate (simulator-only)")
		}
		opts = append(opts, maxembed.WithFileBackend(fileDir))
		log.Printf("file backend: real async I/O over shard files under %s", fileDir)
	}
	if tiered {
		if *tierDense <= 0 {
			log.Fatal("-tier-fast requires -tier-dense (the dense shards backing the fast tier)")
		}
		if *devices > 1 {
			log.Fatal("-tier-fast and -devices are mutually exclusive; the tier specs set the stripe width")
		}
		opts = append(opts, maxembed.WithTiers(
			maxembed.TierSpec{Profile: maxembed.DeviceP5800X, Devices: *tierFast},
			maxembed.TierSpec{Profile: maxembed.DeviceP4510, Devices: *tierDense},
		))
		log.Printf("tiered array: %d×%s + %d×%s; hottest pages up-tier, re-tiered at refresh",
			*tierFast, maxembed.DeviceP5800X.Name, *tierDense, maxembed.DeviceP4510.Name)
	} else if *devices > 1 {
		opts = append(opts, maxembed.WithDevices(*devices))
		log.Printf("striping across %d devices (shard-aware replica placement, per-shard queue pairs)", *devices)
	}
	if *coact {
		if !tiered && *devices <= 1 {
			log.Fatal("-coact requires a multi-device array (-devices > 1 or -tier-fast/-tier-dense)")
		}
		opts = append(opts, maxembed.WithCoActivationPlacement())
		log.Printf("co-activation-aware shard placement: despread pass at build and every refresh")
	}
	if tiered || *devices > 1 {
		if *autoRebuildRate > 0 {
			opts = append(opts, maxembed.WithAutoRebuild(*autoRebuildRate))
			log.Printf("hot spare attached; auto-rebuild armed at %.0f pages/sec", *autoRebuildRate)
		} else if *hotSpare {
			opts = append(opts, maxembed.WithHotSpare())
			log.Printf("hot spare attached; rebuild via POST /v1/shards/{i}/rebuild")
		}
	}
	if *tierPins > 0 {
		opts = append(opts, maxembed.WithDRAMPins(*tierPins))
		log.Printf("pinning the %d hottest keys in DRAM", *tierPins)
	}
	if *tierShadow {
		opts = append(opts, maxembed.WithShadowCache())
		log.Printf("shadow caches attached; miss-rate curve on /v1/stats")
	}
	if *recordLast > 0 {
		opts = append(opts, maxembed.WithHistoryRecording(*recordLast))
	}
	if *faultError > 0 || *faultTimeout > 0 || *faultCorrupt > 0 {
		log.Printf("fault injection armed: error=%.3f timeout=%.3f corrupt=%.3f seed=%d",
			*faultError, *faultTimeout, *faultCorrupt, *faultSeed)
		opts = append(opts, maxembed.WithFaultInjection(maxembed.FaultConfig{
			Seed:          *faultSeed,
			ReadErrorProb: *faultError,
			TimeoutProb:   *faultTimeout,
			CorruptProb:   *faultCorrupt,
		}))
	}
	db, err := maxembed.Open(history.NumItems, history.Queries, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if fb, ok := db.Backend().(*ssd.FileBackend); ok {
		log.Printf("file backend online: executor=%s direct_io=%v shards=%d",
			fb.ExecutorKind(), fb.Direct(), fb.NumShards())
	}
	ls := db.LayoutStats()
	log.Printf("layout ready: %d pages, %.1f%% replica slots", ls.NumPages, ls.ReplicationRatio*100)

	srvOpts := []server.Option{server.WithCoalescing(*batchMax, *batchWait)}
	if *batchMax <= 1 {
		srvOpts = []server.Option{server.WithoutCoalescing()}
		log.Printf("request coalescing disabled")
	} else {
		log.Printf("request coalescing: up to %d lookups per batch, %v max wait", *batchMax, *batchWait)
	}
	if fileDir != "" {
		log.Printf("layout refresh unavailable on the file backend (on-disk pages would go stale)")
	} else if *recordLast > 0 {
		if *refreshInterval > 0 {
			srvOpts = append(srvOpts, server.WithRefreshLoop(db, *refreshInterval, *refreshMinQueries))
			log.Printf("layout refresh: every %v once ≥%d queries recorded (history window %d)",
				*refreshInterval, *refreshMinQueries, *recordLast)
		} else {
			srvOpts = append(srvOpts, server.WithRefresh(db))
			log.Printf("layout refresh: on demand via POST /v1/refresh (history window %d)", *recordLast)
		}
	} else {
		log.Printf("history recording disabled; layout refresh unavailable")
	}
	if *pprofOn {
		srvOpts = append(srvOpts, server.WithPprof())
		log.Printf("pprof endpoints on /debug/pprof/")
	}
	if *devices > 1 {
		srvOpts = append(srvOpts,
			server.WithShardAdmin(db),
			server.WithScrub(db),
			server.WithShardFailTolerance(*shardTolerance))
		log.Printf("shard admin online: POST /v1/scrub, /v1/shards/{i}/fail, /v1/shards/{i}/rebuild (tolerance %.0f%% dead shards)", *shardTolerance*100)
	}
	if tiered || *devices > 1 {
		// The spread report is nil until a despread pass runs (it always
		// does on tiered arrays, and on striped ones with -coact).
		srvOpts = append(srvOpts, server.WithSpreadReport(db))
	}
	h := server.NewDynamic(db.Handle(), db.Backend(), srvOpts...)
	defer h.Close()
	log.Printf("serving on %s", *addr)
	if err := http.ListenAndServe(*addr, h); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
