// Command maxembed-vet is the repo's domain-specific vet tool: five
// analyzers enforcing the serving engine's concurrency and determinism
// invariants (injected clocks, uniform atomics, pool hygiene, lock
// discipline, context threading). It speaks the cmd/go vet-tool protocol:
//
//	go build -o bin/maxembed-vet ./cmd/maxembed-vet
//	go vet -vettool=$PWD/bin/maxembed-vet ./...
//
// or simply `make lint`. Run `maxembed-vet help` for the analyzer list
// and the //lint:allow suppression syntax.
package main

import "maxembed/internal/analyzers"

func main() {
	analyzers.Main("maxembed-vet", analyzers.All())
}
