package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"maxembed/internal/selection"
)

// cmdExplain walks one query through the online phase's page selection,
// printing the §6.1 algorithm step by step: the replica-count ordering,
// each key's candidate pages, the page chosen per step and the keys it
// covers — the debugging view for placement and selection behaviour.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	trace := fs.String("trace", "trace.bin", "trace path")
	strategy := fs.String("strategy", "maxembed", "placement strategy")
	ratio := fs.Float64("ratio", 0.1, "replication ratio r")
	dim := fs.Int("dim", 64, "embedding dimension")
	seed := fs.Int64("seed", 1, "placement seed")
	indexLimit := fs.Int("k", 10, "index-shrinking limit (0 = unlimited)")
	queryIdx := fs.Int("query", 0, "index of the evaluation query to explain")
	keysFlag := fs.String("keys", "", "explicit comma-separated keys (overrides -query)")
	fs.Parse(args)

	lay, _, eval, err := offline(*trace, *strategy, *ratio, *dim, *seed, 0.5)
	if err != nil {
		return err
	}
	var query []uint32
	if *keysFlag != "" {
		for _, part := range strings.Split(*keysFlag, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return fmt.Errorf("parsing -keys: %v", err)
			}
			query = append(query, uint32(v))
		}
	} else {
		if *queryIdx < 0 || *queryIdx >= eval.NumQueries() {
			return fmt.Errorf("-query %d out of range (%d eval queries)", *queryIdx, eval.NumQueries())
		}
		query = eval.Queries[*queryIdx]
	}

	idx := selection.NewIndex(lay, *indexLimit)
	sel := selection.NewSelector(idx)

	fmt.Printf("query: %d keys (%d distinct)\n", len(query), countDistinct(query))
	fmt.Printf("layout: %s r=%.0f%%, %d pages, index limit k=%d\n\n",
		*strategy, *ratio*100, lay.NumPages(), *indexLimit)

	// Pre-selection view: candidates per distinct key, in replica order.
	seen := map[uint32]bool{}
	fmt.Println("❶ keys by ascending replica count (home page first):")
	type keyInfo struct {
		k     uint32
		cands []uint32
	}
	var infos []keyInfo
	for _, k := range query {
		if seen[k] {
			continue
		}
		seen[k] = true
		infos = append(infos, keyInfo{k, idx.Candidates(k)})
	}
	for i := 0; i < len(infos); i++ {
		for j := i + 1; j < len(infos); j++ {
			if len(infos[j].cands) < len(infos[i].cands) ||
				(len(infos[j].cands) == len(infos[i].cands) && infos[j].k < infos[i].k) {
				infos[i], infos[j] = infos[j], infos[i]
			}
		}
	}
	for _, info := range infos {
		fmt.Printf("   key %-8d → pages %v\n", info.k, info.cands)
	}

	fmt.Println("\n❷–❹ one-pass selection:")
	step := 0
	stats, err := sel.OnePass(query, nil, func(p uint32, covered []uint32, sofar selection.Stats) {
		step++
		fmt.Printf("   step %2d: read page %-8d covers %d keys %v\n", step, p, len(covered), covered)
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nresult: %d page reads for %d keys (%.2f keys/read)\n",
		stats.Pages, stats.Keys, float64(stats.Keys)/float64(stats.Pages))
	fmt.Printf("work:   %d candidate pages examined, %d invert-index entries scanned\n",
		stats.CandidatePages, stats.InvertScans)

	// Contrast with the no-replica lower bound (distinct home pages).
	homes := map[uint32]bool{}
	for _, info := range infos {
		homes[lay.Home[info.k]] = true
	}
	fmt.Printf("homes:  %d distinct home pages (the r=0 read count)\n", len(homes))
	return nil
}

func countDistinct(keys []uint32) int {
	m := map[uint32]bool{}
	for _, k := range keys {
		m[k] = true
	}
	return len(m)
}
