// Command maxembed is the CLI for the MaxEmbed embedding store. It drives
// the full pipeline over synthetic traces:
//
//	maxembed gen      -profile Criteo -scale 0.1 -out trace.bin
//	maxembed inspect  -trace trace.bin
//	maxembed place    -trace trace.bin -strategy maxembed -ratio 0.2
//	maxembed serve    -trace trace.bin -strategy maxembed -ratio 0.2 -cache 0.1
//
// All timing is virtual (simulated NVMe device); see DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "place":
		err = cmdPlace(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "maxembed: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "maxembed: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: maxembed <command> [flags]

commands:
  gen      generate a synthetic query trace for a dataset profile
  inspect  print statistics of a trace file
  place    run the offline phase (partition + replication) and report layout stats
  serve    run the online phase over a trace and report throughput/latency
  explain  walk one query through page selection step by step`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	profile := fs.String("profile", "Criteo", "dataset profile name (see Table 3)")
	scale := fs.Float64("scale", 1.0, "profile scale multiplier")
	seed := fs.Int64("seed", 0, "generator seed (0 = profile default)")
	out := fs.String("out", "trace.bin", "output trace path")
	format := fs.String("format", "binary", "output format: binary or text (one query per line)")
	fs.Parse(args)

	p, ok := workload.ProfileByName(*profile)
	if !ok {
		return fmt.Errorf("unknown profile %q (have: %v)", *profile, profileNames())
	}
	if *scale != 1.0 {
		p = p.Scaled(*scale)
	}
	s := p.Seed
	if *seed != 0 {
		s = *seed
	}
	start := time.Now()
	tr, err := workload.GenerateSeeded(p, s)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = tr.Encode(f)
	case "text":
		err = tr.EncodeText(f)
	default:
		err = fmt.Errorf("unknown format %q (binary|text)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d items, %d queries, mean length %.2f (%v)\n",
		*out, tr.NumItems, tr.NumQueries(), tr.MeanQueryLen(), time.Since(start).Round(time.Millisecond))
	return nil
}

func profileNames() []string {
	var names []string
	for _, p := range workload.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// loadTrace reads a trace in either format, sniffing the binary magic.
func loadTrace(path string) (*workload.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [6]byte
	n, _ := io.ReadFull(f, magic[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == len(magic) && string(magic[:]) == "MXTR1\n" {
		return workload.Decode(f)
	}
	return workload.DecodeText(f, 0)
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	trace := fs.String("trace", "trace.bin", "trace path")
	fs.Parse(args)

	tr, err := loadTrace(*trace)
	if err != nil {
		return err
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		return err
	}
	s := g.ComputeStats()
	fmt.Printf("items:           %d\n", tr.NumItems)
	fmt.Printf("queries:         %d\n", tr.NumQueries())
	fmt.Printf("mean query len:  %.2f (distinct %.2f)\n", tr.MeanQueryLen(), s.MeanEdgeSize)
	fmt.Printf("max query len:   %d distinct\n", s.MaxEdgeSize)
	fmt.Printf("max key degree:  %d\n", s.MaxDegree)
	return nil
}

// offline runs the shared gen→graph→placement pipeline of place and serve.
func offline(tracePath, strategy string, ratio float64, dim int, seed int64, historyFrac float64) (*layout.Layout, *workload.Trace, *workload.Trace, error) {
	tr, err := loadTrace(tracePath)
	if err != nil {
		return nil, nil, nil, err
	}
	history, eval := tr.Split(historyFrac)
	g, err := hypergraph.FromQueries(tr.NumItems, history.Queries)
	if err != nil {
		return nil, nil, nil, err
	}
	lay, err := placement.Build(placement.Strategy(strategy), g, placement.Options{
		Capacity:         embedding.PageCapacity(4096, dim),
		ReplicationRatio: ratio,
		Seed:             seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return lay, history, eval, nil
}

func cmdPlace(args []string) error {
	fs := flag.NewFlagSet("place", flag.ExitOnError)
	trace := fs.String("trace", "trace.bin", "trace path")
	strategy := fs.String("strategy", "maxembed", "placement strategy (vanilla|shp|rpp|fpr|maxembed)")
	ratio := fs.Float64("ratio", 0.1, "replication ratio r")
	dim := fs.Int("dim", 64, "embedding dimension")
	seed := fs.Int64("seed", 1, "placement seed")
	out := fs.String("out", "", "save the layout to this path (optional)")
	pages := fs.String("pages", "", "also materialize page images to this path (optional)")
	fs.Parse(args)

	start := time.Now()
	lay, _, _, err := offline(*trace, *strategy, *ratio, *dim, *seed, 0.5)
	if err != nil {
		return err
	}
	if err := lay.Validate(); err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lay.Encode(f); err != nil {
			return err
		}
		fmt.Printf("layout saved to %s\n", *out)
	}
	if *pages != "" {
		syn, err := embedding.NewSynthesizer(*dim, *seed)
		if err != nil {
			return err
		}
		st, err := store.Build(lay, syn, 4096)
		if err != nil {
			return err
		}
		f, err := os.Create(*pages)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := st.WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("page images saved to %s (%d pages)\n", *pages, st.NumPages())
	}
	s := lay.ComputeStats()
	fmt.Printf("strategy:          %s (r=%.0f%%)\n", *strategy, *ratio*100)
	fmt.Printf("placement time:    %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("keys:              %d\n", s.NumKeys)
	fmt.Printf("pages:             %d (capacity %d, mean fill %.1f)\n", s.NumPages, s.Capacity, s.MeanKeysPerPage)
	fmt.Printf("replica slots:     %d (ratio %.3f)\n", s.ReplicaSlots, s.ReplicationRatio)
	fmt.Printf("max copies of key: %d\n", s.MaxReplicaCount)
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	trace := fs.String("trace", "trace.bin", "trace path")
	strategy := fs.String("strategy", "maxembed", "placement strategy")
	ratio := fs.Float64("ratio", 0.1, "replication ratio r")
	dim := fs.Int("dim", 64, "embedding dimension")
	seed := fs.Int64("seed", 1, "placement seed")
	cacheRatio := fs.Float64("cache", 0.1, "DRAM cache size as a fraction of the table")
	workers := fs.Int("workers", 8, "closed-loop serving workers")
	device := fs.String("device", "P5800X", "SSD profile (P5800X|P4510|RAID0)")
	indexLimit := fs.Int("k", 10, "index-shrinking limit (0 = unlimited)")
	noPipeline := fs.Bool("no-pipeline", false, "disable selection/IO pipelining")
	greedy := fs.Bool("greedy", false, "use classic greedy set-cover selection")
	layoutPath := fs.String("layout", "", "load a saved layout instead of recomputing placement")
	pagesPath := fs.String("pages", "", "serve vectors from saved page images (file-backed store)")
	fs.Parse(args)

	var lay *layout.Layout
	var history, eval *workload.Trace
	if *layoutPath != "" {
		f, err := os.Open(*layoutPath)
		if err != nil {
			return err
		}
		lay, err = layout.DecodeFrom(f)
		f.Close()
		if err != nil {
			return err
		}
		tr, err := loadTrace(*trace)
		if err != nil {
			return err
		}
		if tr.NumItems != lay.NumKeys {
			return fmt.Errorf("layout covers %d keys, trace has %d items", lay.NumKeys, tr.NumItems)
		}
		history, eval = tr.Split(0.5)
	} else {
		var err error
		lay, history, eval, err = offline(*trace, *strategy, *ratio, *dim, *seed, 0.5)
		if err != nil {
			return err
		}
	}
	var prof ssd.Profile
	switch *device {
	case "P5800X":
		prof = ssd.P5800X
	case "P4510":
		prof = ssd.P4510
	case "RAID0":
		prof = ssd.RAID0(ssd.P5800X, 2)
	default:
		return fmt.Errorf("unknown device %q", *device)
	}
	dev, err := ssd.NewDevice(prof)
	if err != nil {
		return err
	}
	cfg := serving.Config{
		Layout:       lay,
		Device:       dev,
		CacheEntries: int(*cacheRatio * float64(lay.NumKeys)),
		IndexLimit:   *indexLimit,
		Pipeline:     !*noPipeline,
		Greedy:       *greedy,
		VectorBytes:  embedding.BytesPerVector(*dim),
	}
	if *pagesPath != "" {
		fstore, err := store.OpenFile(*pagesPath)
		if err != nil {
			return err
		}
		defer fstore.Close()
		cfg.Store = fstore
	}
	eng, err := serving.New(cfg)
	if err != nil {
		return err
	}
	if err := eng.WarmCache(history.Queries); err != nil {
		return err
	}
	res, err := serving.Run(eng, eval.Queries, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("device:              %s (%.1f GB/s, %v latency)\n", prof.Name, prof.Bandwidth/1e9, prof.ReadLatency)
	fmt.Printf("queries:             %d (%d workers)\n", res.Queries, *workers)
	fmt.Printf("throughput:          %.0f queries/s (virtual)\n", res.QPS)
	fmt.Printf("latency:             %v\n", res.Latency)
	fmt.Printf("page reads:          %d (%.2f per query, %.2f useful embeddings per read)\n",
		res.PagesRead, float64(res.PagesRead)/float64(res.Queries), res.MeanValidPerRead)
	fmt.Printf("effective bandwidth: %.1f MB/s (%.1f%% of device)\n", res.EffectiveBandwidth/1e6, res.Utilization*100)
	fmt.Printf("raw bandwidth:       %.1f MB/s\n", res.RawBandwidth/1e6)
	if eng.Cache() != nil {
		fmt.Printf("cache hit rate:      %.1f%%\n", eng.Cache().Stats().HitRate()*100)
	}
	return nil
}
