package main

import (
	"os"
	"path/filepath"
	"testing"
)

// pipeline drives gen → inspect → place → serve → explain end to end in a
// temp dir, covering both persistence formats.
func TestCLIPipeline(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.bin")
	layoutPath := filepath.Join(dir, "layout.bin")
	pages := filepath.Join(dir, "pages.bin")

	if err := cmdGen([]string{"-profile", "Amazon M2", "-scale", "0.02", "-out", trace}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdInspect([]string{"-trace", trace}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := cmdPlace([]string{"-trace", trace, "-ratio", "0.2",
		"-out", layoutPath, "-pages", pages}); err != nil {
		t.Fatalf("place: %v", err)
	}
	if fi, err := os.Stat(layoutPath); err != nil || fi.Size() == 0 {
		t.Fatalf("layout file missing or empty: %v", err)
	}
	if fi, err := os.Stat(pages); err != nil || fi.Size() == 0 {
		t.Fatalf("pages file missing or empty: %v", err)
	}
	if err := cmdServe([]string{"-trace", trace, "-ratio", "0.2", "-workers", "2"}); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := cmdServe([]string{"-trace", trace, "-layout", layoutPath,
		"-pages", pages, "-workers", "2"}); err != nil {
		t.Fatalf("serve from saved artifacts: %v", err)
	}
	if err := cmdExplain([]string{"-trace", trace, "-ratio", "0.2", "-query", "1"}); err != nil {
		t.Fatalf("explain: %v", err)
	}
	if err := cmdExplain([]string{"-trace", trace, "-keys", "1, 2,3"}); err != nil {
		t.Fatalf("explain -keys: %v", err)
	}
}

func TestCLITextFormat(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.txt")
	if err := cmdGen([]string{"-profile", "Amazon M2", "-scale", "0.02",
		"-format", "text", "-out", trace}); err != nil {
		t.Fatalf("gen text: %v", err)
	}
	if err := cmdInspect([]string{"-trace", trace}); err != nil {
		t.Fatalf("inspect text: %v", err)
	}
	if err := cmdGen([]string{"-profile", "Amazon M2", "-scale", "0.02",
		"-format", "bogus", "-out", trace}); err == nil {
		t.Error("bogus format accepted")
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := cmdGen([]string{"-profile", "NoSuchSet", "-out", filepath.Join(dir, "x")}); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := cmdInspect([]string{"-trace", filepath.Join(dir, "missing.bin")}); err == nil {
		t.Error("missing trace accepted")
	}
	trace := filepath.Join(dir, "t.bin")
	if err := cmdGen([]string{"-profile", "Amazon M2", "-scale", "0.02", "-out", trace}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlace([]string{"-trace", trace, "-strategy", "bogus"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := cmdServe([]string{"-trace", trace, "-device", "bogus"}); err == nil {
		t.Error("unknown device accepted")
	}
	if err := cmdExplain([]string{"-trace", trace, "-query", "99999999"}); err == nil {
		t.Error("out-of-range query index accepted")
	}
	if err := cmdExplain([]string{"-trace", trace, "-keys", "abc"}); err == nil {
		t.Error("bad -keys accepted")
	}
}
