package maxembed

import "testing"

// TestCoActivationPlacementOption: WithCoActivationPlacement on a striped
// array runs the despread pass at Open, publishes its report, and keeps
// every vector byte-correct under the permuted page IDs.
func TestCoActivationPlacementOption(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.3), WithDevices(4), WithSeed(3),
		WithCoActivationPlacement(), WithHistoryRecording(256))
	if err != nil {
		t.Fatal(err)
	}
	rep := db.LastDespread()
	if rep == nil {
		t.Fatal("coact enabled on a 4-device array but LastDespread is nil")
	}
	if rep.Shards != 4 {
		t.Fatalf("despread report covers %d shards, want 4", rep.Shards)
	}
	if rep.Edges == 0 {
		t.Error("coact despread scored no co-activation edges")
	}
	if rep.MeanDepthAfter > rep.MeanDepthBefore {
		t.Errorf("despread worsened mean max-shard depth: %v -> %v",
			rep.MeanDepthBefore, rep.MeanDepthAfter)
	}
	if rep.UncoveredKeysAfter > rep.UncoveredKeysBefore {
		t.Errorf("despread worsened replica coverage: %d -> %d uncovered",
			rep.UncoveredKeysBefore, rep.UncoveredKeysAfter)
	}

	sess := db.NewSession()
	var want []float32
	for i := 0; i < 200 && i < len(eval.Queries); i++ {
		res, err := sess.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		for j, k := range res.Keys {
			want = db.syn.Vector(k, want[:0])
			for x := range want {
				if res.Vectors[j][x] != want[x] {
					t.Fatalf("query %d: wrong vector for key %d after despread", i, k)
				}
			}
		}
	}

	// A refresh re-runs the pass against the fresh layout; the published
	// report tracks the swap rather than going stale.
	if err := db.Refresh(eval.Queries[:200]); err != nil {
		t.Fatal(err)
	}
	rep2 := db.LastDespread()
	if rep2 == nil {
		t.Fatal("LastDespread nil after refresh with coact enabled")
	}
	if rep2 == rep {
		t.Error("refresh did not replace the despread report")
	}
}

// TestDespreadReportAbsentWithoutTrigger: no coact option and no tiers means
// no despread pass — striped or single-device alike report nil.
func TestDespreadReportAbsentWithoutTrigger(t *testing.T) {
	tr := smallTrace(t)
	history, _ := tr.Split(0.5)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"single-device", nil},
		{"striped-no-coact", []Option{WithDevices(2)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]Option{WithReplicationRatio(0.2), WithSeed(3)}, tc.opts...)
			db, err := Open(tr.NumItems, history.Queries, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if rep := db.LastDespread(); rep != nil {
				t.Errorf("unexpected despread report: %+v", rep)
			}
		})
	}
}

// TestTieredArrayDespreadsByDefault: tiered arrays always run the pass in
// diversity-only mode (no co-activation edges unless coact is also set), so
// replica shard-diversity within each tier's residue classes is repaired.
func TestTieredArrayDespreadsByDefault(t *testing.T) {
	tr := smallTrace(t)
	history, _ := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.3), WithSeed(3),
		WithTiers(
			TierSpec{Profile: DeviceP5800X, Devices: 1},
			TierSpec{Profile: DeviceP4510, Devices: 3},
		))
	if err != nil {
		t.Fatal(err)
	}
	rep := db.LastDespread()
	if rep == nil {
		t.Fatal("tiered array did not run the despread pass")
	}
	if rep.Edges != 0 {
		t.Errorf("diversity-only pass scored %d edges, want 0", rep.Edges)
	}
	if rep.Tiers != 2 {
		t.Errorf("despread report covers %d tiers, want 2", rep.Tiers)
	}
}
