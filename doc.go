// Package maxembed is a reproduction of "MaxEmbed: Maximizing SSD
// bandwidth utilization for huge embedding models serving" (ASPLOS 2024):
// an SSD-backed embedding store for deep-learning recommendation models
// that fights page-granularity read amplification by co-locating
// co-appearing embeddings (SHP hypergraph partitioning, as in Bandana) and
// — the paper's contribution — selectively replicating hot, high-
// connectivity embeddings onto extra pages so more queried keys are served
// per page read.
//
// The package exposes the two phases as one API: Open runs the offline
// phase (hypergraph construction, partitioning, replication, page layout)
// over a historical query trace, and the returned DB serves the online
// phase (cache probe, one-pass replica selection with index shrinking,
// pipelined asynchronous SSD reads).
//
// The SSD is a calibrated discrete-event simulation (no NVMe hardware or
// SPDK in this environment); see DESIGN.md for the substitution rationale.
// Timing is virtual and deterministic, which makes experiments exactly
// reproducible.
//
// Quick start:
//
//	trace, _ := maxembed.GenerateTrace(maxembed.ProfileCriteo, 0.5)
//	db, err := maxembed.Open(trace.NumItems, trace.Queries,
//		maxembed.WithReplicationRatio(0.2))
//	if err != nil { ... }
//	sess := db.NewSession()
//	res, err := sess.Lookup([]maxembed.Key{1, 42, 7})
//	// res.Vectors holds the embeddings; res.Stats the virtual timing.
package maxembed
