// Cacheless: near-data-processing scenario (paper §8.3, Figure 13). Some
// deployments cannot afford a DRAM embedding cache (e.g. in-storage
// inference); MaxEmbed's replication gains are then most pronounced, since
// every lookup hits the SSD. This example sweeps the replication ratio
// without any cache and reports throughput and effective bandwidth.
//
//	go run ./examples/cacheless
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"maxembed"
)

func main() {
	trace, err := maxembed.GenerateTrace(maxembed.ProfileCriteoTB, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	history, live := trace.Split(0.5)
	eval := live.Queries
	if len(eval) > 3000 {
		eval = eval[:3000]
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "r\tstrategy\tpages/query\tQPS (virtual)\teff. bandwidth\tvs baseline")
	var baseQPS float64
	for _, r := range []float64{0, 0.1, 0.2, 0.4, 0.8} {
		strategy := maxembed.StrategyMaxEmbed
		if r == 0 {
			strategy = maxembed.StrategySHP // baseline: no replication
		}
		db, err := maxembed.Open(trace.NumItems, history.Queries,
			maxembed.WithStrategy(strategy),
			maxembed.WithReplicationRatio(r),
			maxembed.WithCacheRatio(0), // near-data processing: no DRAM cache
			maxembed.TimingOnly(),
		)
		if err != nil {
			log.Fatal(err)
		}
		// Closed loop over 4 sessions (virtual clocks overlap on the
		// shared simulated device).
		sessions := make([]*maxembed.Session, 8)
		for i := range sessions {
			sessions[i] = db.NewSession()
		}
		var pages, usefulBytes int64
		for i, q := range eval {
			res, err := sessions[i%len(sessions)].Lookup(q)
			if err != nil {
				log.Fatal(err)
			}
			pages += int64(res.Stats.PagesRead)
			usefulBytes += int64(res.Stats.UsefulFromSSD) * 256 // dim 64 × 4 B
		}
		var makespan int64
		for _, s := range sessions {
			if s.Now() > makespan {
				makespan = s.Now()
			}
		}
		seconds := float64(makespan) / 1e9
		qps := float64(len(eval)) / seconds
		if r == 0 {
			baseQPS = qps
		}
		fmt.Fprintf(w, "%.0f%%\t%s\t%.2f\t%.0f\t%.1f MB/s\t%+.1f%%\n",
			r*100, strategy, float64(pages)/float64(len(eval)), qps,
			float64(usefulBytes)/seconds/1e6, (qps/baseQPS-1)*100)
	}
	w.Flush()
	fmt.Println("\nWithout a cache every lookup hits the SSD, so the replica")
	fmt.Println("pages' extra combinations translate directly into fewer reads.")
}
