// Drift: adapting replication to shifting access patterns. The offline
// phase optimizes for a historical trace; when traffic drifts (new users,
// new campaigns, seasonal catalogs), the replica pages stop matching the
// co-appearance patterns actually queried. DB.Refresh recomputes only the
// replica pages — home pages, i.e. the bulk of the SSD-resident table,
// stay untouched — from a newer history.
//
//	go run ./examples/drift
package main

import (
	"fmt"
	"log"

	"maxembed"
	"maxembed/internal/workload"
)

func measure(db *maxembed.DB, queries [][]maxembed.Key) (pagesPerQuery float64) {
	sess := db.NewSession()
	var pages int
	for _, q := range queries {
		res, err := sess.Lookup(q)
		if err != nil {
			log.Fatal(err)
		}
		pages += res.Stats.PagesRead
	}
	return float64(pages) / float64(len(queries))
}

func main() {
	profile := workload.Criteo.Scaled(0.1)

	// Era 1: the history the store is built from.
	era1, err := workload.GenerateSeeded(profile, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Era 2: drifted traffic — same item catalog, different recurring
	// contexts (a different template pool).
	era2, err := workload.GenerateSeeded(profile, 2)
	if err != nil {
		log.Fatal(err)
	}

	db, err := maxembed.Open(era1.NumItems, era1.Queries,
		maxembed.WithReplicationRatio(0.4),
		maxembed.WithCacheRatio(0), // isolate placement quality
		maxembed.TimingOnly(),
	)
	if err != nil {
		log.Fatal(err)
	}

	const n = 2000
	fmt.Printf("page reads per query (lower is better):\n\n")
	fresh := measure(db, era1.Queries[len(era1.Queries)-n:])
	fmt.Printf("  era-1 traffic on era-1 placement:   %.2f   (what the offline phase optimized)\n", fresh)

	drifted := measure(db, era2.Queries[:n])
	fmt.Printf("  era-2 traffic on era-1 placement:   %.2f   (replicas match stale patterns)\n", drifted)

	// Refresh replication from the first half of era-2 traffic; home
	// pages stay fixed, so only the replica region is rewritten.
	half := era2.Queries[:len(era2.Queries)/2]
	if err := db.Refresh(half); err != nil {
		log.Fatal(err)
	}
	refreshed := measure(db, era2.Queries[len(era2.Queries)/2:][:n])
	fmt.Printf("  era-2 traffic after Refresh:        %.2f   (replicas recomputed, homes untouched)\n\n", refreshed)

	fmt.Printf("drift cost: +%.1f%% reads; refresh recovers %.1f%% of that\n",
		(drifted/fresh-1)*100, 100*(drifted-refreshed)/(drifted-fresh))
}
