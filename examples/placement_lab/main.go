// Placement lab: compare all five placement strategies (§5, Figure 14) on
// one workload — vanilla, SHP (Bandana baseline), the two strawmen (RPP,
// FPR) and MaxEmbed's connectivity-priority replication — and report page
// reads, throughput and layout characteristics side by side.
//
//	go run ./examples/placement_lab
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"maxembed"
)

func main() {
	trace, err := maxembed.GenerateTrace(maxembed.ProfileAvazu, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	history, live := trace.Split(0.5)
	eval := live.Queries
	if len(eval) > 2500 {
		eval = eval[:2500]
	}
	const ratio = 0.4

	strategies := []maxembed.Strategy{
		maxembed.StrategyVanilla,
		maxembed.StrategySHP,
		maxembed.StrategyRPP,
		maxembed.StrategyFPR,
		maxembed.StrategyMaxEmbed,
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tpages\treplica slots\tpages/query\tQPS (virtual)\tmean latency")
	for _, s := range strategies {
		db, err := maxembed.Open(trace.NumItems, history.Queries,
			maxembed.WithStrategy(s),
			maxembed.WithReplicationRatio(ratio),
			maxembed.WithCacheRatio(0.1),
			maxembed.TimingOnly(),
		)
		if err != nil {
			log.Fatal(err)
		}
		// Several concurrent sessions, as in real serving: the simulated
		// device is shared and their virtual clocks overlap.
		sessions := make([]*maxembed.Session, 8)
		for i := range sessions {
			sessions[i] = db.NewSession()
		}
		var pages, latency int64
		for i, q := range eval {
			res, err := sessions[i%len(sessions)].Lookup(q)
			if err != nil {
				log.Fatal(err)
			}
			pages += int64(res.Stats.PagesRead)
			latency += res.Stats.LatencyNS()
		}
		ls := db.LayoutStats()
		var makespan int64
		for _, s := range sessions {
			if s.Now() > makespan {
				makespan = s.Now()
			}
		}
		qps := float64(len(eval)) / (float64(makespan) / 1e9)
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.0f\t%.1f µs\n",
			s, ls.NumPages, ls.ReplicaSlots,
			float64(pages)/float64(len(eval)), qps,
			float64(latency)/float64(len(eval))/1e3)
	}
	w.Flush()
	fmt.Printf("\n(replication ratio %.0f%%, 10%% DRAM cache, Avazu-profile workload)\n", ratio*100)
}
