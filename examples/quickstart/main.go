// Quickstart: build a MaxEmbed store from a historical query trace and
// serve embedding lookups from it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"maxembed"
)

func main() {
	// Synthesize a small Criteo-like query trace (in production this is
	// your historical embedding-lookup log).
	trace, err := maxembed.GenerateTrace(maxembed.ProfileCriteo, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	// First half trains the placement; second half is live traffic.
	history, live := trace.Split(0.5)

	// Offline phase: hypergraph partitioning (SHP) + connectivity-priority
	// replication with 20% extra space, then page layout on the simulated
	// SSD.
	db, err := maxembed.Open(trace.NumItems, history.Queries,
		maxembed.WithReplicationRatio(0.2),
		maxembed.WithCacheRatio(0.1),
	)
	if err != nil {
		log.Fatal(err)
	}
	ls := db.LayoutStats()
	fmt.Printf("layout: %d keys on %d pages, %.1f%% replica slots\n",
		ls.NumKeys, ls.NumPages, ls.ReplicationRatio*100)

	// Online phase: one session per serving goroutine.
	sess := db.NewSession()
	var pages, keys int
	for _, q := range live.Queries[:1000] {
		res, err := sess.Lookup(q)
		if err != nil {
			log.Fatal(err)
		}
		pages += res.Stats.PagesRead
		keys += res.Stats.DistinctKeys
		// res.Keys / res.Vectors hold the embeddings, e.g.:
		_ = res.Vectors
	}
	fmt.Printf("served 1000 queries (%d embeddings) with %d SSD page reads\n", keys, pages)
	fmt.Printf("virtual time: %.2f ms, device read %d pages total\n",
		float64(sess.Now())/1e6, db.DeviceStats().Reads)

	// A single lookup, end to end.
	res, err := db.Lookup(live.Queries[1000])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v -> %d vectors of dim %d, latency %.1f µs (%d page reads, %d cache hits)\n",
		live.Queries[1000][:min(5, len(live.Queries[1000]))],
		len(res.Vectors), len(res.Vectors[0]),
		float64(res.Stats.LatencyNS())/1e3, res.Stats.PagesRead, res.Stats.CacheHits)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
