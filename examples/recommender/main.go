// Recommender: a miniature DLRM-style inference service on top of
// MaxEmbed, mirroring the paper's Figure 1 pipeline: sparse features →
// embedding lookup (SSD) → pooling → interaction scoring.
//
// For each request the service fetches the user-context embeddings and a
// slate of candidate-item embeddings from the MaxEmbed store, mean-pools
// the context, and ranks candidates by dot product — the part of a real
// DLRM that the embedding storage layer feeds.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"maxembed"
)

const (
	dim        = 64
	slateSize  = 8
	nRequests  = 500
	topK       = 3
	cacheRatio = 0.10
)

func main() {
	// Shopping-style workload: strong co-appearance (Alibaba iFashion
	// profile), the case the paper reports the largest gains on.
	trace, err := maxembed.GenerateTrace(maxembed.ProfileAlibabaIFashion, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	history, live := trace.Split(0.5)

	db, err := maxembed.Open(trace.NumItems, history.Queries,
		maxembed.WithEmbeddingDim(dim),
		maxembed.WithReplicationRatio(0.4),
		maxembed.WithCacheRatio(cacheRatio),
	)
	if err != nil {
		log.Fatal(err)
	}
	sess := db.NewSession()
	rng := rand.New(rand.NewSource(42))

	var pagesTotal, latencyTotal int64
	for r := 0; r < nRequests; r++ {
		// Context features: one live query from the trace (user/session
		// history). Candidates: a random slate of items to rank.
		context := live.Queries[r%len(live.Queries)]
		slate := make([]maxembed.Key, slateSize)
		for i := range slate {
			slate[i] = maxembed.Key(rng.Intn(trace.NumItems))
		}
		// One batched lookup fetches context + candidates together, the
		// pattern that lets co-located embeddings share page reads.
		query := make([]maxembed.Key, 0, len(context)+slateSize)
		query = append(query, context...)
		query = append(query, slate...)
		res, err := sess.Lookup(query)
		if err != nil {
			log.Fatal(err)
		}
		pagesTotal += int64(res.Stats.PagesRead)
		latencyTotal += res.Stats.LatencyNS()

		// Pooling: mean of context vectors.
		byKey := make(map[maxembed.Key][]float32, len(res.Keys))
		for i, k := range res.Keys {
			byKey[k] = res.Vectors[i]
		}
		pooled := make([]float64, dim)
		n := 0
		for _, k := range context {
			if v, ok := byKey[k]; ok {
				for j, x := range v {
					pooled[j] += float64(x)
				}
				n++
			}
		}
		for j := range pooled {
			pooled[j] /= float64(n)
		}
		// Interaction: dot(pooled, candidate); report the top-K slate.
		type scored struct {
			key   maxembed.Key
			score float64
		}
		ranked := make([]scored, 0, slateSize)
		for _, k := range slate {
			v := byKey[k]
			var dot float64
			for j, x := range v {
				dot += pooled[j] * float64(x)
			}
			ranked = append(ranked, scored{k, dot})
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
		if r < 3 {
			fmt.Printf("request %d: top-%d of slate =", r, topK)
			for _, s := range ranked[:topK] {
				fmt.Printf(" item%d(%.3f)", s.key, s.score)
			}
			fmt.Printf("  [%d embeddings, %d page reads, %.1f µs]\n",
				res.Stats.DistinctKeys, res.Stats.PagesRead,
				float64(res.Stats.LatencyNS())/1e3)
		}
	}
	fmt.Printf("\n%d requests served: mean %.2f page reads, mean latency %.1f µs (virtual)\n",
		nRequests, float64(pagesTotal)/nRequests, float64(latencyTotal)/nRequests/1e3)
}
