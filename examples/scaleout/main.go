// Scaleout: sharding a MaxEmbed deployment across several SSDs — the
// cluster shape the paper's trillion-parameter motivation implies. Each
// shard runs its own offline phase; lookups fan out and finish at the
// slowest shard. The example contrasts hash sharding (balanced but
// structure-destroying) with locality-aware sharding (a coarse hypergraph
// partition keeps co-appearing keys together).
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"maxembed/internal/cluster"
	"maxembed/internal/placement"
	"maxembed/internal/workload"
)

func main() {
	trace, err := workload.Generate(workload.Criteo.Scaled(0.08))
	if err != nil {
		log.Fatal(err)
	}
	history, live := trace.Split(0.5)
	eval := live.Queries
	if len(eval) > 3000 {
		eval = eval[:3000]
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shards\tsharding\tmean shards/query\tpages/query\tmean latency")
	for _, shards := range []int{1, 4} {
		for _, sharding := range []cluster.Sharding{cluster.ShardingHash, cluster.ShardingLocality} {
			if shards == 1 && sharding == cluster.ShardingLocality {
				continue
			}
			c, err := cluster.Build(history.Queries, cluster.Config{
				Shards:           shards,
				NumItems:         trace.NumItems,
				Strategy:         placement.StrategyMaxEmbed,
				ReplicationRatio: 0.4,
				Seed:             1,
				CacheRatio:       0.1,
				IndexLimit:       10,
				Sharding:         sharding,
			})
			if err != nil {
				log.Fatal(err)
			}
			sess := c.NewSession()
			var touched, pages, latency int64
			for _, q := range eval {
				res, err := sess.Lookup(q)
				if err != nil {
					log.Fatal(err)
				}
				touched += int64(res.ShardsTouched)
				pages += int64(res.PagesRead)
				latency += res.LatencyNS
			}
			n := int64(len(eval))
			label := "hash"
			if sharding == cluster.ShardingLocality {
				label = "locality"
			}
			fmt.Fprintf(w, "%d\t%s\t%.2f\t%.2f\t%.1f µs\n",
				shards, label, float64(touched)/float64(n),
				float64(pages)/float64(n), float64(latency)/float64(n)/1e3)
		}
	}
	w.Flush()
	fmt.Println("\nFanning a query across shards cuts its latency (parallel devices),")
	fmt.Println("but hash sharding splits recurring key sets, so each shard sees less")
	fmt.Println("exploitable structure; locality sharding keeps them together.")
}
