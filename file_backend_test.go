package maxembed

import (
	"strings"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/ssd"
)

// TestFileBackendOpenAndLookup drives the public API over the real-I/O
// backend: Open writes shard files, lookups read them back through the
// async executor, and results carry zero-copy views that match the
// synthesizer's ground truth.
func TestFileBackendOpenAndLookup(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	for _, devices := range []int{1, 3} {
		db, err := Open(tr.NumItems, history.Queries,
			WithReplicationRatio(0.2), WithSeed(3),
			WithDevices(devices),
			WithCacheEntries(0),
			WithFileBackend(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		fb, ok := db.Backend().(*ssd.FileBackend)
		if !ok {
			t.Fatalf("devices=%d: backend is %T, want *ssd.FileBackend", devices, db.Backend())
		}
		if fb.NumShards() != devices {
			t.Fatalf("devices=%d: backend has %d shards", devices, fb.NumShards())
		}
		syn, err := embedding.NewSynthesizer(64, 3)
		if err != nil {
			t.Fatal(err)
		}
		sess := db.NewSession()
		var want []float32
		for i := 0; i < 100 && i < len(eval.Queries); i++ {
			res, err := sess.Lookup(eval.Queries[i])
			if err != nil {
				t.Fatal(err)
			}
			if len(res.FailedKeys) != 0 {
				t.Fatalf("devices=%d query %d: failed keys %v", devices, i, res.FailedKeys)
			}
			if len(res.Refs) != len(res.Keys) {
				t.Fatalf("devices=%d query %d: %d refs for %d keys", devices, i, len(res.Refs), len(res.Keys))
			}
			for j, k := range res.Keys {
				if !res.Refs[j].Valid() {
					t.Fatalf("devices=%d query %d key %d: no zero-copy view", devices, i, k)
				}
				want = syn.Vector(k, want[:0])
				for e := range want {
					if got := res.Refs[j].Float32(e); got != want[e] {
						t.Fatalf("devices=%d query %d key %d elem %d: %v want %v",
							devices, i, k, e, got, want[e])
					}
				}
			}
		}
		if st := fb.Stats(); st.Reads == 0 || st.Errors != 0 {
			t.Fatalf("devices=%d: backend stats %+v", devices, st)
		}
		if lat := fb.ShardReadLatency(0); lat.Count == 0 {
			t.Fatalf("devices=%d: no measured read latency", devices)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileBackendOptionConflicts checks that the simulator-only options are
// rejected up front instead of failing obscurely at serve time.
func TestFileBackendOptionConflicts(t *testing.T) {
	tr := smallTrace(t)
	dir := t.TempDir()
	for name, opt := range map[string]Option{
		"timing-only": TimingOnly(),
		"tiers":       WithTiers(TierSpec{Profile: DeviceP5800X, Devices: 1}, TierSpec{Profile: DeviceP4510, Devices: 1}),
		"faults":      WithFaultInjection(FaultConfig{ReadErrorProb: 0.1}),
		"hot-spare":   WithHotSpare(),
	} {
		_, err := Open(tr.NumItems, tr.Queries, WithFileBackend(dir), opt)
		if err == nil {
			t.Errorf("%s: Open accepted an incompatible option combination", name)
		}
	}
}

// TestFileBackendRefreshRejected: the on-disk pages hold the placement they
// were written with; Refresh must refuse rather than serve a layout the
// files do not reflect.
func TestFileBackendRefreshRejected(t *testing.T) {
	tr := smallTrace(t)
	db, err := Open(tr.NumItems, tr.Queries, WithFileBackend(t.TempDir()), WithHistoryRecording(128))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.Refresh(tr.Queries)
	if err == nil || !strings.Contains(err.Error(), "file backend") {
		t.Fatalf("Refresh on a file backend: err = %v, want a file-backend rejection", err)
	}
}
