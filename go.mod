module maxembed

go 1.22
