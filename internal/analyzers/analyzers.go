// Package analyzers is maxembed's domain-specific static-analysis suite:
// five analyzers that machine-check the serving engine's concurrency and
// determinism invariants on every build, compiled into cmd/maxembed-vet
// and run through `go vet -vettool` (see Main in unitchecker.go).
//
// The invariants are the unwritten rules the rest of the tree relies on:
//
//   - clockcheck: the deterministic-simulation core (internal/serving,
//     internal/ssd, internal/placement) and the HTTP layer's measured
//     durations (internal/server) must take time from the injected clock —
//     a stray time.Now breaks the rebuildsweep/refreshsweep co-simulations
//     and every byte-exact determinism claim.
//   - atomicfield: a struct field touched through sync/atomic anywhere
//     must be accessed atomically everywhere, and raw int64+atomic.AddInt64
//     pairs should migrate to typed atomic.Int64/atomic.Uint64 fields.
//   - poolreturn: a buffer taken from a sync.Pool (response arenas,
//     per-queue completion buffers) must be returned on every path,
//     including early error returns.
//   - lockhold: no channel sends, Queue.Submit calls, or HTTP writes while
//     a mutex is held — the deadlock/latency shape the race detector
//     cannot see because it is not a data race.
//   - ctxflow: no context.Background()/context.TODO() on the request path;
//     Worker.LookupCtx threads cancellation through the retry loop and
//     handlers must pass the request context along.
//
// Analyzers skip _test.go files (tests legitimately use wall clocks and
// relaxed locking) and honor suppression comments of the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [reason]
//
// placed at the end of the offending line or on the line directly above.
// The framework mirrors golang.org/x/tools/go/analysis in miniature but
// is dependency-free: the repo builds offline from the standard library.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position and a message, tagged with the
// analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	Name string
	Doc  string
	// Scope reports whether the analyzer applies to a package path (test
	// variant suffixes like " [pkg.test]" already trimmed). nil means the
	// whole module.
	Scope func(pkgPath string) bool
	// Run inspects the package through pass and reports findings with
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SourceFiles returns the pass's non-test, non-generated files — the only
// files maxembed's analyzers inspect. Test files get wall clocks, ad-hoc
// contexts, and single-goroutine field access by design.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if isGenerated(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// isGenerated reports the standard "Code generated ... DO NOT EDIT."
// marker in a leading comment.
func isGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// Code generated ") &&
				strings.HasSuffix(strings.TrimSpace(c.Text), "DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Clockcheck, Atomicfield, Poolreturn, Lockhold, Ctxflow}
}

// Run drives the given analyzers over one typechecked package, applies
// //lint:allow suppression, and returns position-sorted diagnostics. It is
// the shared core of the vettool (unitchecker.go) and the analyzertest
// harness.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, as []*Analyzer) ([]Diagnostic, error) {
	pkgPath := TrimTestVariant(pkg.Path())
	var diags []Diagnostic
	for _, a := range as {
		if a.Scope != nil && !a.Scope(pkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	diags = suppress(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// TrimTestVariant strips cmd/go's test-variant decoration from an import
// path: "maxembed/internal/ssd [maxembed/internal/ssd.test]" becomes
// "maxembed/internal/ssd".
func TrimTestVariant(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// prefixScope returns a Scope matching any listed package path or its
// subpackages.
func prefixScope(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}

// suppressKey is one (file, line) pair with a suppressed analyzer set.
type suppressKey struct {
	file string
	line int
}

// suppress drops diagnostics covered by a //lint:allow comment on the same
// line or the line directly above.
func suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	allowed := map[suppressKey]map[string]bool{}
	add := func(file string, line int, names map[string]bool) {
		k := suppressKey{file, line}
		if allowed[k] == nil {
			allowed[k] = map[string]bool{}
		}
		for n := range names {
			allowed[k][n] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				// Trailing comment suppresses its own line; a standalone
				// comment suppresses the line below it. Covering both is
				// harmless and keeps the parser trivial.
				add(pos.Filename, pos.Line, names)
				add(pos.Filename, pos.Line+1, names)
			}
		}
	}
	if len(allowed) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		set := allowed[suppressKey{pos.Filename, pos.Line}]
		if set != nil && (set[d.Analyzer] || set["all"]) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseAllow recognizes "//lint:allow name1,name2 optional reason".
func parseAllow(text string) (map[string]bool, bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return nil, false
	}
	list := strings.Fields(rest)[0]
	names := map[string]bool{}
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	return names, len(names) > 0
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named package-level function (or
// method-set member) of the named import path.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedType unwraps pointers and aliases down to the *types.Named beneath
// t, or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
