// Package analyzertest runs one maxembed analyzer over a fixture
// directory and checks its diagnostics against expectations written in
// the fixture source, in the style of x/tools' analysistest but built on
// the standard library only (the repo typechecks fixtures with the
// source importer, so no compiled export data is needed).
//
// An expectation is a trailing comment of the form
//
//	x := time.Now() // want "call to time.Now"
//
// where each quoted string must be a substring of a diagnostic reported
// on that line. Every diagnostic must be wanted and every want must be
// matched; either mismatch fails the test.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"maxembed/internal/analyzers"
)

// One fset and one source importer for the whole test binary: the source
// importer typechecks stdlib imports (sync, net/http, ...) from source,
// which is slow enough that rebuilding it per fixture would dominate the
// suite.
var (
	fset    = token.NewFileSet()
	impOnce sync.Once
	imp     types.Importer
)

func sharedImporter() types.Importer {
	impOnce.Do(func() {
		imp = importer.ForCompiler(fset, "source", nil)
	})
	return imp
}

// Run analyzes dir as a package with import path pkgPath using a, and
// compares the diagnostics against the fixture's want comments. pkgPath
// is what the analyzer's Scope sees, so callers pick it to land inside
// (or outside) the analyzer's jurisdiction.
func Run(t *testing.T, a *analyzers.Analyzer, dir, pkgPath string) {
	t.Helper()
	diags, files := analyze(t, a, dir, pkgPath)
	wants := collectWants(t, files)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if strings.Contains(d.Message, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d: want message containing %q",
				filepath.Base(w.file), w.line, w.substr)
		}
	}
}

// RunExpectNone analyzes dir as pkgPath and requires zero diagnostics,
// ignoring any want comments. It is how the suite proves scope gating
// (run a bad fixture under an out-of-scope path) and clean fixtures.
func RunExpectNone(t *testing.T, a *analyzers.Analyzer, dir, pkgPath string) {
	t.Helper()
	diags, _ := analyze(t, a, dir, pkgPath)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
	}
}

// analyze parses and typechecks every .go file in dir as one package and
// runs the analyzer through the shared analyzers.Run driver (so scope
// gating and //lint:allow suppression behave exactly as in the vettool).
func analyze(t *testing.T, a *analyzers.Analyzer, dir, pkgPath string) ([]analyzers.Diagnostic, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("fixture dir %s has no .go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: sharedImporter()}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}
	diags, err := analyzers.Run(fset, files, pkg, info, []*analyzers.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	return diags, files
}

// want is one expectation: a diagnostic whose message contains substr
// must be reported at (file, line).
type want struct {
	file   string
	line   int
	substr string
}

var wantRe = regexp.MustCompile(`// want((?:\s+"(?:[^"\\]|\\.)*")+)`)

// collectWants extracts every `// want "substr" ["substr" ...]` comment.
func collectWants(t *testing.T, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("bad want string %s at %s: %v", q, fmt.Sprintf("%s:%d", pos.Filename, pos.Line), err)
					}
					wants = append(wants, want{pos.Filename, pos.Line, s})
				}
			}
		}
	}
	return wants
}
