package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Atomicfield enforces uniform atomicity on shared counter fields.
//
// Two diagnostics:
//
//  1. Mixed access: a struct field passed by address to a package-level
//     sync/atomic function anywhere in the package must not also be read
//     or written with plain loads/stores — that is a data race the race
//     detector only catches when scheduling cooperates. Composite-literal
//     initialization is naturally exempt: field keys there are plain
//     identifiers, not selector accesses.
//
//  2. Fix-forward: every raw sync/atomic call on a struct field is
//     reported with a migration hint — typed atomic.Int64/atomic.Uint64
//     fields make non-atomic access unrepresentable, which is why the
//     repo's counters (engine recovery totals, shard health windows,
//     server admin gauges) are all typed atomics today. This analyzer
//     keeps raw int64+AddInt64 pairs from creeping back in.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "struct fields used with sync/atomic must be atomic everywhere; prefer typed atomic.Int64/Uint64 fields",
	Run:  runAtomicfield,
}

// atomicFuncPrefixes are the package-level sync/atomic operations that
// take an address argument first (AddInt64, LoadUint32, StoreInt32,
// SwapInt64, CompareAndSwapUint64, ...).
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicOp(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

func runAtomicfield(pass *Pass) error {
	type use struct {
		pos  token.Pos
		name string // printable x.f form
	}
	atomicFields := map[*types.Var]bool{}
	plainUses := map[*types.Var][]use{}
	consumed := map[*ast.SelectorExpr]bool{} // selectors inside &x.f atomic args

	fieldOf := func(sel *ast.SelectorExpr) *types.Var {
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		return nil
	}

	files := pass.SourceFiles()
	// Pass 1: atomic call sites.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if !isAtomicOp(fn) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v := fieldOf(sel); v != nil {
				consumed[sel] = true
				atomicFields[v] = true
				pass.Reportf(call.Pos(),
					"raw sync/atomic.%s on field %s: migrate the field to a typed atomic (atomic.Int64/atomic.Uint64) so non-atomic access cannot compile",
					fn.Name(), types.ExprString(sel))
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: plain accesses of the same fields.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			v := fieldOf(sel)
			if v == nil || !atomicFields[v] {
				return true
			}
			plainUses[v] = append(plainUses[v], use{sel.Pos(), types.ExprString(sel)})
			return true
		})
	}
	var fields []*types.Var
	for v := range plainUses {
		fields = append(fields, v)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, v := range fields {
		for _, u := range plainUses[v] {
			pass.Reportf(u.pos,
				"non-atomic access to %s, which is accessed with sync/atomic elsewhere in %s: this races — use atomic loads/stores everywhere or a typed atomic field",
				u.name, TrimTestVariant(pass.Pkg.Path()))
		}
	}
	return nil
}
