package analyzers_test

import (
	"testing"

	"maxembed/internal/analyzers"
	"maxembed/internal/analyzers/analyzertest"
)

func TestAtomicfieldBad(t *testing.T) {
	analyzertest.Run(t, analyzers.Atomicfield, "testdata/atomicfield/bad", "maxembed/internal/metrics")
}

func TestAtomicfieldGood(t *testing.T) {
	analyzertest.RunExpectNone(t, analyzers.Atomicfield, "testdata/atomicfield/good", "maxembed/internal/metrics")
}
