package analyzers

import (
	"go/ast"
)

// Clockcheck forbids wall-clock reads in the deterministic core.
//
// The serving engine, SSD simulator, and placement pipeline run on an
// injected virtual nanosecond clock (the nowNS threaded through
// Queue.Submit/Drain and Worker); the HTTP layer measures durations
// through the Handler's injected clock (WithClock). A time.Now or
// time.Since call in any of these packages silently couples simulated
// results to the host scheduler, breaking byte-exact replay and the
// rebuildsweep/refreshsweep co-simulations. Constructing timers and
// tickers (time.NewTimer, time.NewTicker, time.After) stays legal: those
// express real waiting, not timestamps that flow into results.
//
// The sanctioned escape hatch is referencing time.Now as a value — the
// single default assignment at a clock's injection point — which this
// analyzer deliberately does not flag; only calls are diagnosed.
var Clockcheck = &Analyzer{
	Name: "clockcheck",
	Doc:  "forbid time.Now/time.Since calls in deterministic packages; use the injected clock",
	Scope: prefixScope(
		"maxembed/internal/serving",
		"maxembed/internal/ssd",
		"maxembed/internal/placement",
		"maxembed/internal/server",
	),
	Run: runClockcheck,
}

func runClockcheck(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Since") {
				pass.Reportf(call.Pos(),
					"call to time.%s in deterministic package %s: route it through the injected clock (virtual nowNS, or the server's WithClock source)",
					fn.Name(), TrimTestVariant(pass.Pkg.Path()))
			}
			return true
		})
	}
	return nil
}
