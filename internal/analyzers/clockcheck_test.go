package analyzers_test

import (
	"testing"

	"maxembed/internal/analyzers"
	"maxembed/internal/analyzers/analyzertest"
)

func TestClockcheckBad(t *testing.T) {
	analyzertest.Run(t, analyzers.Clockcheck, "testdata/clockcheck/bad", "maxembed/internal/serving")
}

func TestClockcheckGood(t *testing.T) {
	analyzertest.RunExpectNone(t, analyzers.Clockcheck, "testdata/clockcheck/good", "maxembed/internal/server")
}

func TestClockcheckAllow(t *testing.T) {
	analyzertest.RunExpectNone(t, analyzers.Clockcheck, "testdata/clockcheck/allow", "maxembed/internal/ssd")
}

func TestClockcheckOutOfScope(t *testing.T) {
	// The same failing fixture produces nothing under a package outside
	// the deterministic core: scope gating, not luck.
	analyzertest.RunExpectNone(t, analyzers.Clockcheck, "testdata/clockcheck/bad", "maxembed/internal/store")
}

func TestClockcheckTestVariantScope(t *testing.T) {
	// `go vet ./...` analyzes test variants whose package path carries a
	// " [pkg.test]" suffix; scope must still recognize them.
	analyzertest.Run(t, analyzers.Clockcheck, "testdata/clockcheck/bad",
		"maxembed/internal/serving [maxembed/internal/serving.test]")
}
