package analyzers

import (
	"go/ast"
)

// Ctxflow forbids minting fresh root contexts on the request path.
//
// Worker.LookupCtx threads cancellation from the HTTP request through the
// engine's retry loop, and Scrub/RebuildShard take a caller context; a
// context.Background() or context.TODO() inside internal/serving,
// internal/server, or the maxembed root package severs that chain — a
// departed client keeps burning retries, an aborted admin call keeps
// copying pages. Genuine background work (the auto-rebuild hook, the
// refresh loop) is expected to carry a //lint:allow ctxflow comment naming
// why it outlives any request.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/context.TODO on the request path; thread the caller's context",
	Scope: func(path string) bool {
		return path == "maxembed" ||
			prefixScope("maxembed/internal/serving", "maxembed/internal/server")(path)
	},
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
				pass.Reportf(call.Pos(),
					"context.%s on the request path: thread the caller's context (Worker.LookupCtx does) or mark deliberate background work with //lint:allow ctxflow",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
