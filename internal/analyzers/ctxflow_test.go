package analyzers_test

import (
	"testing"

	"maxembed/internal/analyzers"
	"maxembed/internal/analyzers/analyzertest"
)

func TestCtxflowBad(t *testing.T) {
	analyzertest.Run(t, analyzers.Ctxflow, "testdata/ctxflow/bad", "maxembed/internal/server")
}

func TestCtxflowGood(t *testing.T) {
	analyzertest.RunExpectNone(t, analyzers.Ctxflow, "testdata/ctxflow/good", "maxembed")
}

func TestCtxflowAllow(t *testing.T) {
	analyzertest.RunExpectNone(t, analyzers.Ctxflow, "testdata/ctxflow/allow", "maxembed")
}

func TestCtxflowOutOfScope(t *testing.T) {
	// Packages off the request path (placement, tools) may mint root
	// contexts freely.
	analyzertest.RunExpectNone(t, analyzers.Ctxflow, "testdata/ctxflow/bad", "maxembed/internal/placement")
}
