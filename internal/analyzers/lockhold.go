package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockhold flags blocking or externally visible work done while a mutex
// is held: channel sends, SSD queue submissions (Queue.Submit /
// MultiQueue.Submit), and HTTP response writes.
//
// These are the deadlock-and-tail-latency shapes the race detector cannot
// see because they are not data races: a channel send under a lock
// deadlocks the moment the receiver needs that lock; an HTTP write under
// an admin mutex stretches the critical section by a client round-trip
// (the shape the refresh/scrub/rebuild handlers were restructured to
// avoid); a queue submission under a shared lock serializes the per-worker
// queue pairs the whole design exists to keep independent.
//
// The analysis is per function and lexical: a region is "locked" from a
// mu.Lock()/mu.RLock() statement (or a successful mu.TryLock() condition)
// to the matching Unlock statement, or to the function's end when the
// Unlock is deferred. The `if !mu.TryLock() { ... }` guard shape is
// understood — its body runs without the lock. Calls are not followed
// across function boundaries.
var Lockhold = &Analyzer{
	Name: "lockhold",
	Doc:  "no channel sends, Queue.Submit, or HTTP writes while holding a mutex",
	Run:  runLockhold,
}

func runLockhold(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkLockFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// mutexMethod classifies a call as a sync.Mutex/sync.RWMutex lock-state
// transition and returns the receiver expression's printable key.
func mutexMethod(pass *Pass, call *ast.CallExpr) (key, method string, ok bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return "", "", false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return "", "", false
	}
	if !isNamed(sig.Recv().Type(), "sync", "Mutex") && !isNamed(sig.Recv().Type(), "sync", "RWMutex") {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, sok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !sok {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

type lockInterval struct {
	key        string
	start, end token.Pos
}

func checkLockFunc(pass *Pass, body *ast.BlockStmt) {
	type event struct {
		pos  token.Pos
		key  string
		open bool
	}
	var events []event              // opens and non-deferred closes
	deferClose := map[string]bool{} // keys with a deferred Unlock
	var closed []lockInterval       // fully resolved TryLock-body intervals

	ownInspect(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := mutexMethod(pass, call)
		if !ok {
			return true
		}
		stmt, ifStmt := enclosing(stack, call)
		switch method {
		case "Lock", "RLock":
			if stmt != nil {
				events = append(events, event{stmt.End(), key, true})
			}
		case "Unlock", "RUnlock":
			if isDeferred(stack) {
				deferClose[key] = true
			} else if stmt != nil {
				events = append(events, event{stmt.Pos(), key, false})
			}
		case "TryLock", "TryRLock":
			switch {
			case ifStmt != nil && condIsNegatedCall(ifStmt.Cond, call):
				// if !mu.TryLock() { bail }: held only after the if.
				events = append(events, event{ifStmt.End(), key, true})
			case ifStmt != nil && containsPos(ifStmt.Cond, call.Pos()):
				// if mu.TryLock() { ... }: held inside the body.
				closed = append(closed, lockInterval{key, ifStmt.Body.Lbrace, ifStmt.Body.End()})
			default:
				if stmt != nil {
					events = append(events, event{stmt.End(), key, true})
				}
			}
		}
		return true
	})

	// Pair opens with the first later close of the same key; a deferred
	// or missing Unlock holds to the end of the function.
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	intervals := closed
	usedClose := make([]bool, len(events))
	for i, e := range events {
		if !e.open {
			continue
		}
		end := body.End()
		for j := i + 1; j < len(events); j++ {
			if !events[j].open && !usedClose[j] && events[j].key == e.key {
				end = events[j].pos
				usedClose[j] = true
				break
			}
		}
		intervals = append(intervals, lockInterval{e.key, e.pos, end})
	}
	if len(intervals) == 0 {
		return
	}

	report := func(pos token.Pos, what string) {
		for _, iv := range intervals {
			if iv.start <= pos && pos < iv.end {
				pass.Reportf(pos, "%s while holding %s: move it outside the critical section (a blocked peer that needs %s deadlocks, and -race cannot see it)",
					what, iv.key, iv.key)
				return
			}
		}
	}

	ownInspect(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Arrow, "channel send")
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if fn.Name() == "Submit" && queueReceiver(sig.Recv().Type()) {
						report(n.Pos(), "queue submission ("+fn.Name()+")")
						return true
					}
					if isNamed(sig.Recv().Type(), "net/http", "ResponseWriter") {
						report(n.Pos(), "HTTP response write ("+fn.Name()+")")
						return true
					}
				}
			}
			for _, arg := range n.Args {
				if tv, ok := pass.Info.Types[arg]; ok && isNamed(tv.Type, "net/http", "ResponseWriter") {
					report(n.Pos(), "HTTP response write (call passing http.ResponseWriter)")
					return true
				}
			}
		}
		return true
	})
}

// queueReceiver reports whether a Submit receiver looks like an SSD
// submission queue: a named type whose name contains "Queue".
func queueReceiver(t types.Type) bool {
	n := namedType(t)
	return n != nil && strings.Contains(n.Obj().Name(), "Queue")
}

// enclosing returns the innermost statement containing call and the
// innermost IfStmt whose condition contains it (nil otherwise).
func enclosing(stack []ast.Node, call *ast.CallExpr) (ast.Stmt, *ast.IfStmt) {
	var stmt ast.Stmt
	var ifs *ast.IfStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(ast.Stmt); ok && stmt == nil {
			stmt = s
		}
		if s, ok := stack[i].(*ast.IfStmt); ok && ifs == nil && containsPos(s.Cond, call.Pos()) {
			ifs = s
		}
	}
	return stmt, ifs
}

func isDeferred(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// condIsNegatedCall reports whether cond is `!<call>` (possibly
// parenthesized) for exactly this call expression.
func condIsNegatedCall(cond ast.Expr, call *ast.CallExpr) bool {
	u, ok := ast.Unparen(cond).(*ast.UnaryExpr)
	if !ok || u.Op != token.NOT {
		return false
	}
	return ast.Unparen(u.X) == call
}
