package analyzers_test

import (
	"testing"

	"maxembed/internal/analyzers"
	"maxembed/internal/analyzers/analyzertest"
)

func TestLockholdBad(t *testing.T) {
	analyzertest.Run(t, analyzers.Lockhold, "testdata/lockhold/bad", "maxembed/internal/ssd")
}

func TestLockholdGood(t *testing.T) {
	// Includes the `if !mu.TryLock() { 409; return }` guard shape the
	// admin handlers rely on: the bail path runs unlocked.
	analyzertest.RunExpectNone(t, analyzers.Lockhold, "testdata/lockhold/good", "maxembed/internal/server")
}
