package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolreturn checks that sync.Pool buffers are returned on every path.
//
// The hot path leans on pooled memory — response arenas in
// internal/server, page buffers in internal/store, per-queue completion
// buffers in internal/ssd — and a Get without a Put on an early error
// return silently degrades the pool into an allocator, which the
// alloc-guard benchmarks only notice long after the offending commit.
//
// The analysis is per function and positional, tuned to the repo's pool
// idioms rather than a general dataflow engine:
//
//   - a `defer pool.Put(...)` anywhere discharges every Get of that pool
//     (the preferred idiom; see store.FileStore.ReadPage);
//   - a Get whose result is handed off — returned, passed to a non-builtin
//     call, sent on a channel, or stored into a non-local — is discharged
//     at the handoff point (see server.buildLookupResponse, whose caller
//     releases the arena);
//   - otherwise every return statement after the Get must be preceded by a
//     Put of the same pool or a handoff on the source path between them,
//     and a Get with no Put/handoff at all is reported at the Get.
//
// Nested function literals are analyzed as their own functions.
var Poolreturn = &Analyzer{
	Name: "poolreturn",
	Doc:  "sync.Pool Get must be matched by Put (or a handoff) on every path, including error returns",
	Run:  runPoolreturn,
}

func runPoolreturn(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkPoolFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkPoolFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// isPoolMethod reports whether call invokes (*sync.Pool).<name> and, if
// so, returns a printable key for the receiver expression.
func isPoolMethod(pass *Pass, call *ast.CallExpr, name string) (string, bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Name() != name {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isNamed(sig.Recv().Type(), "sync", "Pool") {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// ownInspect walks body like ast.Inspect but does not descend into nested
// function literals: their Gets and Puts run on a different activation.
func ownInspect(body *ast.BlockStmt, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}

func checkPoolFunc(pass *Pass, body *ast.BlockStmt) {
	type getSite struct {
		pos  token.Pos
		key  string // pool receiver expression
		v    *types.Var
		line int
	}
	var gets []getSite
	puts := map[string][]token.Pos{} // non-deferred Put positions per pool
	deferredPuts := map[string]bool{}
	var returns []*ast.ReturnStmt
	escapes := map[*types.Var][]token.Pos{}

	ownInspect(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
				return true
			}
			rhs := ast.Unparen(n.Rhs[0])
			if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
				rhs = ast.Unparen(ta.X)
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, ok := isPoolMethod(pass, call, "Get")
			if !ok {
				return true
			}
			var v *types.Var
			if id, ok := n.Lhs[0].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					v, _ = obj.(*types.Var)
				} else if obj := pass.Info.Uses[id]; obj != nil {
					v, _ = obj.(*types.Var)
				}
			}
			gets = append(gets, getSite{call.Pos(), key, v, pass.Fset.Position(call.Pos()).Line})
		case *ast.CallExpr:
			if key, ok := isPoolMethod(pass, n, "Put"); ok {
				deferred := false
				for i := len(stack) - 1; i >= 0; i-- {
					if _, ok := stack[i].(*ast.DeferStmt); ok {
						deferred = true
						break
					}
				}
				if deferred {
					deferredPuts[key] = true
				} else {
					puts[key] = append(puts[key], n.Pos())
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			v, ok := obj.(*types.Var)
			if !ok {
				return true
			}
			if pos, esc := escapeContext(pass, n, stack); esc {
				escapes[v] = append(escapes[v], pos)
			}
		}
		return true
	})

	for _, g := range gets {
		if deferredPuts[g.key] {
			continue
		}
		// Discharge events on this pool/value after the Get.
		var events []token.Pos
		for _, p := range puts[g.key] {
			if p > g.pos {
				events = append(events, p)
			}
		}
		if g.v != nil {
			for _, p := range escapes[g.v] {
				if p > g.pos {
					events = append(events, p)
				}
			}
		}
		if len(events) == 0 {
			pass.Reportf(g.pos,
				"%s.Get result is never returned with %s.Put and never escapes: the pool degrades into an allocator",
				g.key, g.key)
			continue
		}
		for _, ret := range returns {
			if ret.Pos() <= g.pos {
				continue
			}
			covered := false
			for _, e := range events {
				if e < ret.End() {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(ret.Pos(),
					"return without %s.Put of the buffer taken at line %d: add a Put on this path or defer it",
					g.key, g.line)
			}
		}
	}
}

// escapeContext reports whether ident's use hands its value off beyond the
// current function's control: returned, passed to a non-builtin call, sent
// on a channel, stored into a non-local, or placed in a composite literal.
func escapeContext(pass *Pass, id *ast.Ident, stack []ast.Node) (token.Pos, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ReturnStmt:
			return id.Pos(), true
		case *ast.SendStmt:
			if containsPos(parent.Value, id.Pos()) {
				return id.Pos(), true
			}
		case *ast.CallExpr:
			// Inside a call's arguments (not its Fun): handed off, unless
			// the call is the pool's own Put (recorded as a put) or a
			// builtin/conversion (len, cap, copy, append, []byte(...)).
			if containsPos(parent.Fun, id.Pos()) {
				continue
			}
			if _, isPut := isPoolMethod(pass, parent, "Put"); isPut {
				return token.NoPos, false
			}
			if calleeFunc(pass.Info, parent) == nil {
				continue // builtin or conversion: still local
			}
			return id.Pos(), true
		case *ast.CompositeLit:
			return id.Pos(), true
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if !containsPos(rhs, id.Pos()) {
					continue
				}
				for _, lhs := range parent.Lhs {
					if !isLocalTarget(pass, lhs) {
						return id.Pos(), true
					}
				}
			}
		}
	}
	return token.NoPos, false
}

func containsPos(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}

// isLocalTarget reports whether an assignment target is a plain local
// variable (or blank); stores through selectors, indexes, derefs, or to
// package-level variables publish the value.
func isLocalTarget(pass *Pass, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Package-level variables publish to other goroutines.
	return v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}
