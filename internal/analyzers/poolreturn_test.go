package analyzers_test

import (
	"testing"

	"maxembed/internal/analyzers"
	"maxembed/internal/analyzers/analyzertest"
)

func TestPoolreturnBad(t *testing.T) {
	analyzertest.Run(t, analyzers.Poolreturn, "testdata/poolreturn/bad", "maxembed/internal/server")
}

func TestPoolreturnGood(t *testing.T) {
	analyzertest.RunExpectNone(t, analyzers.Poolreturn, "testdata/poolreturn/good", "maxembed/internal/store")
}
