// Failing fixture: a field updated through sync/atomic in one method and
// read plainly in another.
package fixture

import "sync/atomic"

type counter struct {
	hits int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1) // want "raw sync/atomic.AddInt64 on field c.hits"
}

func (c *counter) read() int64 {
	return c.hits // want "non-atomic access to"
}
