// Clean fixture: the typed-atomic field the analyzer pushes toward.
// Non-atomic access to atomic.Int64 cannot compile, so there is nothing
// left to check.
package fixture

import "sync/atomic"

type counter struct {
	hits atomic.Int64
}

func (c *counter) inc()        { c.hits.Add(1) }
func (c *counter) read() int64 { return c.hits.Load() }
