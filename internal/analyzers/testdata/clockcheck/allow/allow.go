// Suppression fixture: a deliberate wall-clock read marked with
// //lint:allow produces no diagnostic.
package fixture

import "time"

func bootTimestamp() time.Time {
	//lint:allow clockcheck process start time is genuinely wall-clock
	return time.Now()
}

func sinceBoot(start time.Time) time.Duration {
	return time.Since(start) //lint:allow clockcheck trailing-comment form
}
