// Failing fixture: wall-clock reads inside the deterministic core.
package fixture

import "time"

func wallClock() time.Time {
	return time.Now() // want "call to time.Now in deterministic package"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "call to time.Since in deterministic package"
}
