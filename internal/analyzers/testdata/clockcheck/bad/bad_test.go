// Test files legitimately read the wall clock; the analyzer must skip
// this file entirely, so the call below carries no want expectation.
package fixture

import "time"

func wallClockInTest() time.Time {
	return time.Now()
}
