// Clean fixture: time.Now is referenced as a value (the sanctioned
// injection point) and only the injected clock is ever called.
package fixture

import "time"

type handler struct {
	nowFn func() time.Time
}

func newHandler() *handler {
	return &handler{nowFn: time.Now}
}

func (h *handler) now() time.Time { return h.nowFn() }
