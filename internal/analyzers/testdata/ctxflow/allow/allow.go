// Suppression fixture: deliberate background work, marked as such.
package fixture

import "context"

func selfHeal(repair func(context.Context) error) error {
	// Background repair owns its own lifetime; there is no request
	// context to inherit.
	//lint:allow ctxflow background repair owns its own lifetime
	return repair(context.Background())
}
