// Failing fixture: fresh root contexts minted on the request path.
package fixture

import "context"

func lookup(keys []uint64) error {
	ctx := context.Background() // want "context.Background on the request path"
	return doLookup(ctx, keys)
}

func lookupTODO(keys []uint64) error {
	return doLookup(context.TODO(), keys) // want "context.TODO on the request path"
}

func doLookup(ctx context.Context, keys []uint64) error {
	_ = ctx
	_ = keys
	return nil
}
