// Clean fixture: the caller's context is threaded through.
package fixture

import "context"

func lookup(ctx context.Context, keys []uint64) error {
	return doLookup(ctx, keys)
}

func doLookup(ctx context.Context, keys []uint64) error {
	_ = ctx
	_ = keys
	return nil
}
