// Failing fixture: channel sends, queue submissions, and HTTP writes
// inside mutex critical sections.
package fixture

import (
	"net/http"
	"sync"
)

type WorkQueue struct{}

func (q *WorkQueue) Submit(op int) {}

type state struct {
	mu sync.Mutex
	ch chan int
	q  *WorkQueue
}

func sendUnderLock(s *state) {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

func submitUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.q.Submit(7) // want "queue submission (Submit) while holding s.mu"
}

func writeUnderLock(s *state, w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.WriteHeader(http.StatusOK) // want "HTTP response write (WriteHeader) while holding s.mu"
}
