// Clean fixture: the restructured handler shapes — the TryLock bail path
// runs unlocked (the 409 write is legal there), and sends happen after
// the critical section.
package fixture

import (
	"net/http"
	"sync"
)

type state struct {
	mu sync.Mutex
	ch chan int
}

func guardShape(s *state, w http.ResponseWriter) {
	if !s.mu.TryLock() {
		w.WriteHeader(http.StatusConflict)
		return
	}
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func sendOutside(s *state) {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}
