// Failing fixture: pool buffers leaked on an error path and dropped on
// the floor entirely.
package fixture

import (
	"errors"
	"sync"
)

var bufs = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

var errBad = errors.New("bad")

func leakOnError(fail bool) ([]byte, error) {
	buf := bufs.Get().(*[]byte)
	if fail {
		return nil, errBad // want "return without bufs.Put of the buffer taken at line"
	}
	out := append([]byte(nil), (*buf)...)
	bufs.Put(buf)
	return out, nil
}

func neverReturned() int {
	buf := bufs.Get().(*[]byte) // want "bufs.Get result is never returned with bufs.Put"
	n := len(*buf)
	_ = buf
	return n
}
