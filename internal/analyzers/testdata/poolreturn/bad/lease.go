// Failing fixture: the lease-constructor regression the analyzer must
// keep catching — a Get that bails out on an early error path before the
// return handoff, leaking the lease back to the allocator.
package fixture

import "sync"

type lease struct {
	keys []uint64
}

var leasePool = sync.Pool{New: func() any { return new(lease) }}

func newLeakyLease(n int) (*lease, error) {
	l := leasePool.Get().(*lease)
	if n < 0 {
		return nil, errBad // want "return without leasePool.Put of the buffer taken at line"
	}
	l.keys = l.keys[:0]
	return l, nil
}
