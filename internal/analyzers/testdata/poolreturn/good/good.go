// Clean fixture: the repo's two sanctioned pool idioms — defer the Put,
// or hand the buffer off so the caller owns the release.
package fixture

import "sync"

var bufs = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func deferred(fail bool) int {
	buf := bufs.Get().(*[]byte)
	defer bufs.Put(buf)
	if fail {
		return 0
	}
	return len(*buf)
}

func handoff() *[]byte {
	buf := bufs.Get().(*[]byte)
	return buf
}

func putOnEveryPath(fail bool) int {
	buf := bufs.Get().(*[]byte)
	if fail {
		bufs.Put(buf)
		return 0
	}
	n := len(*buf)
	bufs.Put(buf)
	return n
}
