// Clean fixture: the zero-copy response-lease idioms from
// internal/server. A constructor Gets the lease from the pool and hands
// it off by returning it; the release method is the only Put site; the
// encoder borrows a pooled body buffer and Puts it on every path,
// including the early error return.
package fixture

import (
	"errors"
	"sync"
)

var errBadLease = errors.New("bad lease")

type lease struct {
	keys []uint64
	vals [][]float32
}

var leasePool = sync.Pool{New: func() any { return new(lease) }}

// newLease mirrors server.newLease: the Get is discharged by the return;
// the caller owns the release.
func newLease(n int) *lease {
	l := leasePool.Get().(*lease)
	l.keys = l.keys[:0]
	l.vals = l.vals[:0]
	_ = n
	return l
}

// release is the handoff's other end: the only Put site for leasePool.
func (l *lease) release() {
	l.keys = l.keys[:0]
	l.vals = l.vals[:0]
	leasePool.Put(l)
}

var bodyPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// encode mirrors server.writeLease's body-buffer discipline: the pooled
// buffer is Put before every return, early error path included.
func encode(l *lease, fail bool) (int, error) {
	buf := bodyPool.Get().(*[]byte)
	if fail {
		bodyPool.Put(buf)
		return 0, errBadLease
	}
	for range l.keys {
		*buf = append(*buf, 0)
	}
	n := len(*buf)
	*buf = (*buf)[:0]
	bodyPool.Put(buf)
	return n, nil
}
