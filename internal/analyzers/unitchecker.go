package analyzers

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"log"
	"os"
	"strings"
)

// This file implements the cmd/go vet-tool protocol from the standard
// library alone, standing in for golang.org/x/tools' unitchecker (which
// the offline build cannot vendor). `go vet -vettool=maxembed-vet ./...`
// drives the tool once per package:
//
//   - `maxembed-vet -V=full` prints a build-unique version line cmd/go
//     hashes into its action cache key;
//   - `maxembed-vet -flags` prints the tool's flag set (none) as JSON;
//   - `maxembed-vet <pkg>.cfg` analyzes one package: the cfg file is JSON
//     describing the package's files, import map, and the export-data
//     files cmd/go already built for every dependency. The tool parses
//     and typechecks the package against that export data, runs the
//     suite, prints findings to stderr, and exits 2 if there were any.
//
// The tool exports no analysis facts, so the .vetx output cmd/go expects
// is written as an empty placeholder and dependency facts are ignored.

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg; unknown
// fields are ignored so newer go releases stay compatible.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/maxembed-vet.
func Main(progname string, analyzers []*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	args := os.Args[1:]
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			printVersion(progname)
			return
		case "-V", "--V":
			fmt.Printf("%s version devel\n", progname)
			return
		case "-flags", "--flags":
			// No tool-specific flags; cmd/go parses this to validate the
			// vet command line.
			fmt.Println("[]")
			return
		case "help", "-h", "-help", "--help":
			printHelp(progname, analyzers)
			return
		}
	}
	if len(args) == 0 || !strings.HasSuffix(args[len(args)-1], ".cfg") {
		log.Fatalf(`this tool runs under go vet: go vet -vettool=$(command -v %s) ./... (or: %s help)`, progname, progname)
	}
	diags, fset, err := runConfig(args[len(args)-1], analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// printVersion implements the -V=full handshake: cmd/go hashes this line
// into its cache key, so it must change whenever the tool's behavior
// does — hashing the executable itself guarantees that.
func printVersion(progname string) {
	var sum [sha256.Size]byte
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, sum)
}

func printHelp(progname string, analyzers []*Analyzer) {
	fmt.Printf("%s: maxembed's concurrency & determinism invariant suite\n\n", progname)
	fmt.Printf("usage: go vet -vettool=$(command -v %s) ./...\n\n", progname)
	fmt.Println("analyzers:")
	for _, a := range analyzers {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Println("\nsuppress a finding with a trailing or preceding comment:")
	fmt.Println("  //lint:allow <analyzer>[,<analyzer>] <reason>")
}

// runConfig analyzes the single package a vet.cfg describes.
func runConfig(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// No facts flow between packages, so dependency-only invocations have
	// nothing to compute.
	if err := writeVetx(cfg); err != nil {
		return nil, nil, err
	}
	if cfg.VetxOnly {
		return nil, nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	var tcErrs []error
	tconf := &types.Config{
		Importer:  newVetImporter(fset, cfg),
		Sizes:     types.SizesFor(compilerOf(cfg), build.Default.GOARCH),
		GoVersion: langVersion(cfg.GoVersion),
		Error:     func(err error) { tcErrs = append(tcErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler already reported these; vet must not fail the
			// build a second time.
			os.Exit(0)
		}
		for _, e := range tcErrs {
			log.Print(e)
		}
		return nil, nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags, err := Run(fset, files, pkg, info, analyzers)
	return diags, fset, err
}

func compilerOf(cfg *vetConfig) string {
	if cfg.Compiler == "" {
		return "gc"
	}
	return cfg.Compiler
}

// langVersion reduces a toolchain version ("go1.24.0") to the language
// version go/types accepts ("go1.24"), or "" when unparsable.
func langVersion(v string) string {
	if v == "" {
		return ""
	}
	return version.Lang(v)
}

// writeVetx writes the (empty) facts file cmd/go caches for dependents.
func writeVetx(cfg *vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}

// vetImporter resolves imports through the export-data files cmd/go lists
// in the config, applying the config's import map (vendoring) first.
type vetImporter struct {
	cfg  *vetConfig
	base types.ImporterFrom
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) *vetImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config %s", path, cfg.ImportPath)
		}
		return os.Open(file)
	}
	imp := &vetImporter{cfg: cfg}
	imp.base = importer.ForCompiler(fset, compilerOf(cfg), lookup).(types.ImporterFrom)
	return imp
}

func (i *vetImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, i.cfg.Dir, 0)
}

func (i *vetImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if mapped, ok := i.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.ImportFrom(path, dir, 0)
}
