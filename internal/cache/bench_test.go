package cache

import (
	"math/rand"
	"testing"
)

func benchCache(n int) *Cache[uint32, []float32] {
	c := New[uint32, []float32](n, Uint32Hasher)
	vec := make([]float32, 64)
	for k := uint32(0); k < uint32(n); k++ {
		c.Put(k, vec)
	}
	return c
}

func BenchmarkCacheGetHit(b *testing.B) {
	// Keys hash across shards unevenly, so insert only half the capacity
	// to guarantee residency.
	c := New[uint32, []float32](100_000, Uint32Hasher)
	vec := make([]float32, 64)
	for k := uint32(0); k < 50_000; k++ {
		c.Put(k, vec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(uint32(i % 50_000)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCacheGetMiss(b *testing.B) {
	c := benchCache(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint32(100_000 + i%100_000))
	}
}

func BenchmarkCachePutEvict(b *testing.B) {
	c := benchCache(100_000)
	vec := make([]float32, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(uint32(100_000+i), vec)
	}
}

func BenchmarkCacheParallelMixed(b *testing.B) {
	c := benchCache(100_000)
	vec := make([]float32, 64)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(1))
		for pb.Next() {
			k := uint32(rng.Intn(200_000))
			if rng.Intn(4) == 0 {
				c.Put(k, vec)
			} else {
				c.Get(k)
			}
		}
	})
}
