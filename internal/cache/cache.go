// Package cache implements a sharded, concurrent LRU cache.
//
// The paper fronts the SSD with Meta's CacheLib configured as an LRU cache
// with update-on-read (but not update-on-write) — a read-intensive
// configuration (§8.1). CacheLib is a C++ library and is not available
// here, so this package provides an LRU with the same externally
// observable semantics: bounded entry count, recency updated on Get,
// insertion at the head on Put, eviction from the tail. Sharding keeps
// contention low for the multi-worker serving engine.
package cache

import (
	"runtime"
	"sync"
	"sync/atomic"

	"container/list"
)

// Hasher maps a key to a shard-selection hash. It must be deterministic.
type Hasher[K comparable] func(K) uint64

// Stats aggregates cache activity. The per-segment fields are only
// meaningful under PolicySegmented (probation/protected); a plain LRU
// reports its whole population as probation. Pinned* cover the immutable
// pin-set installed with Pin, which lives outside the LRU segments.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64

	// Segment occupancy at snapshot time.
	ProbationLen int
	ProtectedLen int
	// Per-segment eviction counters (ProbationEvictions + the plain-LRU
	// evictions sum to Evictions together with ProtectedEvictions).
	ProbationEvictions int64
	ProtectedEvictions int64
	// Promotions counts probation → protected moves (first hit);
	// Demotions counts protected → probation displacements.
	Promotions int64
	Demotions  int64

	// PinnedEntries is the pin-set size; PinnedHits counts Gets served
	// from it (also included in Hits).
	PinnedEntries int
	PinnedHits    int64
}

// HitRate returns Hits / (Hits+Misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded LRU cache from K to V. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	shards []shard[K, V]
	mask   uint64
	hash   Hasher[K]

	// pinned is the immutable DRAM pin-set: entries that always hit and
	// are never evicted. It is written only by Pin, which must complete
	// before the cache is shared between goroutines; afterwards the map
	// is read-only, so Get can probe it without a lock.
	pinned map[K]V

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	pinnedHits atomic.Int64
}

type shard[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*list.Element
	order    *list.List // front = most recent (probation segment when segmented)

	// Segmented (2Q-style) policy state; see segmented.go.
	policy       Policy
	protected    *list.List
	protectedCap int

	// Per-segment activity, guarded by mu (summed into Stats on demand;
	// plain ints keep the hot path free of extra atomic traffic).
	probEvictions int64
	protEvictions int64
	promotions    int64
	demotions     int64
}

type kv[K comparable, V any] struct {
	key       K
	val       V
	protected bool
}

// New returns a cache holding at most capacity entries, split over a
// power-of-two shard count derived from GOMAXPROCS. A capacity of zero or
// below yields a cache that stores nothing (every Get misses), matching a
// "no DRAM cache" configuration (§8.3 / Fig 13).
func New[K comparable, V any](capacity int, hash Hasher[K]) *Cache[K, V] {
	nShards := 1
	for nShards < runtime.GOMAXPROCS(0)*2 {
		nShards *= 2
	}
	return NewSharded[K, V](capacity, nShards, hash)
}

// NewSharded is New with an explicit shard count, which must be a power of
// two; other values are rounded up. Capacity is divided evenly among
// shards (each shard gets at least one slot if capacity > 0).
func NewSharded[K comparable, V any](capacity, nShards int, hash Hasher[K]) *Cache[K, V] {
	if nShards < 1 {
		nShards = 1
	}
	p := 1
	for p < nShards {
		p *= 2
	}
	nShards = p
	if capacity > 0 && nShards > capacity {
		// More shards than slots would strand capacity; shrink.
		nShards = 1
		for nShards*2 <= capacity {
			nShards *= 2
		}
	}
	c := &Cache[K, V]{
		shards: make([]shard[K, V], nShards),
		mask:   uint64(nShards - 1),
		hash:   hash,
	}
	per := capacity / nShards
	extra := capacity % nShards
	for i := range c.shards {
		cap := per
		if i < extra {
			cap++
		}
		c.shards[i] = shard[K, V]{
			capacity: cap,
			entries:  make(map[K]*list.Element),
			order:    list.New(),
		}
	}
	return c
}

// Uint32Hasher is a Hasher for uint32 keys (splitmix-style finalizer).
func Uint32Hasher(k uint32) uint64 {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c *Cache[K, V]) shardFor(k K) *shard[K, V] {
	return &c.shards[c.hash(k)&c.mask]
}

// Pin installs k as a permanent DRAM-resident entry: it always hits and
// is never evicted, and does not consume LRU capacity. Pin must not be
// called concurrently with any other method — install the pin-set before
// the cache is shared (the serving engine pins at construction).
func (c *Cache[K, V]) Pin(k K, v V) {
	if c.pinned == nil {
		c.pinned = make(map[K]V)
	}
	c.pinned[k] = v
}

// PinnedLen returns the number of pinned entries.
func (c *Cache[K, V]) PinnedLen() int { return len(c.pinned) }

// Get returns the cached value for k, promoting it to most-recently-used
// (update-on-read). The second result reports whether k was present.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	if v, ok := c.pinned[k]; ok {
		c.pinnedHits.Add(1)
		c.hits.Add(1)
		return v, true
	}
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	v := el.Value.(kv[K, V]).val
	if s.policy == PolicySegmented {
		s.segmentedGet(el)
	} else {
		s.order.MoveToFront(el)
	}
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Contains reports whether k is cached without promoting it and without
// touching hit/miss statistics.
func (c *Cache[K, V]) Contains(k K) bool {
	if _, ok := c.pinned[k]; ok {
		return true
	}
	s := c.shardFor(k)
	s.mu.Lock()
	_, ok := s.entries[k]
	s.mu.Unlock()
	return ok
}

// Put inserts or replaces the value for k at the most-recently-used
// position, evicting the least-recently-used entry of k's shard if the
// shard is at capacity. Following the paper's CacheLib configuration,
// writes do not refresh recency of other entries (updateOnWrite is off);
// the inserted entry itself naturally starts most-recent.
func (c *Cache[K, V]) Put(k K, v V) {
	s := c.shardFor(k)
	s.mu.Lock()
	if s.capacity <= 0 {
		s.mu.Unlock()
		return
	}
	if el, ok := s.entries[k]; ok {
		old := el.Value.(kv[K, V])
		el.Value = kv[K, V]{key: k, val: v, protected: old.protected}
		if old.protected {
			s.protected.MoveToFront(el)
		} else {
			s.order.MoveToFront(el)
		}
		s.mu.Unlock()
		return
	}
	evicted := false
	if s.len() >= s.capacity {
		evicted = s.evict()
	}
	// New entries start in the probation segment (plain LRU has only
	// that segment).
	s.entries[k] = s.order.PushFront(kv[K, V]{key: k, val: v})
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// len returns the shard's entry count (caller holds the lock).
func (s *shard[K, V]) len() int {
	if s.policy == PolicySegmented {
		return s.segmentedLen()
	}
	return s.order.Len()
}

// evict removes the shard's eviction victim (caller holds the lock),
// charges the victim's segment counter, and reports whether anything was
// removed.
func (s *shard[K, V]) evict() bool {
	if s.policy == PolicySegmented {
		return s.segmentedEvict()
	}
	back := s.order.Back()
	if back == nil {
		return false
	}
	delete(s.entries, back.Value.(kv[K, V]).key)
	s.order.Remove(back)
	s.probEvictions++
	return true
}

// Len returns the current number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.len()
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total entry capacity.
func (c *Cache[K, V]) Capacity() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].capacity
	}
	return n
}

// Stats returns a snapshot of hit/miss/eviction counters, per-segment
// occupancy and activity, and pin-set accounting.
func (c *Cache[K, V]) Stats() Stats {
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		PinnedEntries: len(c.pinned),
		PinnedHits:    c.pinnedHits.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.ProbationLen += s.order.Len()
		if s.protected != nil {
			st.ProtectedLen += s.protected.Len()
		}
		st.ProbationEvictions += s.probEvictions
		st.ProtectedEvictions += s.protEvictions
		st.Promotions += s.promotions
		st.Demotions += s.demotions
		s.mu.Unlock()
	}
	return st
}

// ResetStats zeroes the statistics counters without touching contents.
func (c *Cache[K, V]) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.pinnedHits.Store(0)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.probEvictions = 0
		s.protEvictions = 0
		s.promotions = 0
		s.demotions = 0
		s.mu.Unlock()
	}
}
