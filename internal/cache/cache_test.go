package cache

import (
	"math/rand"
	"sync"
	"testing"
)

func newTest(capacity int) *Cache[uint32, int] {
	// Single shard makes LRU order assertions exact.
	return NewSharded[uint32, int](capacity, 1, Uint32Hasher)
}

func TestGetPut(t *testing.T) {
	c := newTest(4)
	if _, ok := c.Get(1); ok {
		t.Error("Get on empty cache hit")
	}
	c.Put(1, 100)
	v, ok := c.Get(1)
	if !ok || v != 100 {
		t.Errorf("Get(1) = %d,%v, want 100,true", v, ok)
	}
	c.Put(1, 200) // replace
	if v, _ := c.Get(1); v != 200 {
		t.Errorf("after replace Get(1) = %d, want 200", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	c := newTest(3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	// Touch 1 so it becomes most-recent; 2 is now LRU.
	c.Get(1)
	c.Put(4, 4)
	if _, ok := c.Get(2); ok {
		t.Error("LRU entry 2 not evicted")
	}
	for _, k := range []uint32{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %d wrongly evicted", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestUpdateOnReadSemantics(t *testing.T) {
	// Without the Get, 1 would be evicted first (pure insertion order).
	c := newTest(2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Get(1) // promotes 1 over 2
	c.Put(3, 3)
	if _, ok := c.Get(1); !ok {
		t.Error("promoted entry 1 evicted")
	}
	if _, ok := c.Get(2); ok {
		t.Error("stale entry 2 survived")
	}
}

func TestZeroCapacity(t *testing.T) {
	c := newTest(0)
	c.Put(1, 1)
	if _, ok := c.Get(1); ok {
		t.Error("zero-capacity cache stored an entry")
	}
	if c.Len() != 0 || c.Capacity() != 0 {
		t.Errorf("Len=%d Capacity=%d, want 0,0", c.Len(), c.Capacity())
	}
}

func TestContains(t *testing.T) {
	c := newTest(2)
	c.Put(1, 1)
	c.Put(2, 2)
	if !c.Contains(1) {
		t.Error("Contains(1) = false")
	}
	// Contains must not promote: 1 stays LRU and gets evicted next.
	c.Put(3, 3)
	if c.Contains(1) {
		t.Error("Contains promoted entry 1")
	}
	// Contains must not affect stats.
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("Contains affected stats: %+v", s)
	}
}

func TestStats(t *testing.T) {
	c := newTest(2)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	c.Put(2, 2)
	c.Put(3, 3) // evicts
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 1 {
		t.Errorf("Stats = %+v, want 1/1/1", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	c.ResetStats()
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 || s.Evictions != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("HitRate of empty stats should be 0")
	}
}

func TestShardedCapacity(t *testing.T) {
	c := NewSharded[uint32, int](100, 8, Uint32Hasher)
	if c.Capacity() != 100 {
		t.Errorf("Capacity = %d, want 100", c.Capacity())
	}
	// Uneven split: capacity not divisible by shards.
	c2 := NewSharded[uint32, int](10, 4, Uint32Hasher)
	if c2.Capacity() != 10 {
		t.Errorf("Capacity = %d, want 10", c2.Capacity())
	}
	// More shards than capacity must not strand slots.
	c3 := NewSharded[uint32, int](3, 64, Uint32Hasher)
	if c3.Capacity() != 3 {
		t.Errorf("Capacity = %d, want 3", c3.Capacity())
	}
	c4 := New[uint32, int](1000, Uint32Hasher)
	if c4.Capacity() != 1000 {
		t.Errorf("New Capacity = %d, want 1000", c4.Capacity())
	}
}

// TestLenNeverExceedsCapacity is a property test: under random workloads the
// cache never exceeds capacity and a single-shard cache matches a reference
// LRU implementation exactly.
func TestReferenceLRUEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		capacity := 1 + rng.Intn(16)
		c := newTest(capacity)
		// Reference: slice ordered most-recent first.
		type refEntry struct {
			k uint32
			v int
		}
		var ref []refEntry
		refGet := func(k uint32) (int, bool) {
			for i, e := range ref {
				if e.k == k {
					ref = append(ref[:i], ref[i+1:]...)
					ref = append([]refEntry{e}, ref...)
					return e.v, true
				}
			}
			return 0, false
		}
		refPut := func(k uint32, v int) {
			for i, e := range ref {
				if e.k == k {
					ref = append(ref[:i], ref[i+1:]...)
					break
				}
				_ = e
			}
			ref = append([]refEntry{{k, v}}, ref...)
			if len(ref) > capacity {
				ref = ref[:capacity]
			}
		}
		for op := 0; op < 500; op++ {
			k := uint32(rng.Intn(24))
			if rng.Intn(2) == 0 {
				v := rng.Int()
				c.Put(k, v)
				refPut(k, v)
			} else {
				gv, gok := c.Get(k)
				rv, rok := refGet(k)
				if gok != rok || (gok && gv != rv) {
					t.Fatalf("trial %d op %d: Get(%d) = (%d,%v), ref (%d,%v)",
						trial, op, k, gv, gok, rv, rok)
				}
			}
			if c.Len() > capacity {
				t.Fatalf("Len %d exceeds capacity %d", c.Len(), capacity)
			}
			if c.Len() != len(ref) {
				t.Fatalf("Len %d != ref %d", c.Len(), len(ref))
			}
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[uint32, int](1000, Uint32Hasher)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				k := uint32(rng.Intn(4000))
				if rng.Intn(3) == 0 {
					c.Put(k, int(k))
				} else if v, ok := c.Get(k); ok && v != int(k) {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

func TestUint32HasherSpreads(t *testing.T) {
	// Adjacent keys should land on different shards most of the time.
	const shards = 16
	counts := make([]int, shards)
	for k := uint32(0); k < 1600; k++ {
		counts[Uint32Hasher(k)&(shards-1)]++
	}
	for s, n := range counts {
		if n < 50 || n > 150 {
			t.Errorf("shard %d got %d of 1600 keys; poor spread", s, n)
		}
	}
}
