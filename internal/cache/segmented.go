package cache

import "container/list"

// Policy selects the per-shard eviction discipline.
type Policy int

const (
	// PolicyLRU is plain LRU with update-on-read — the paper's CacheLib
	// configuration (§8.1).
	PolicyLRU Policy = iota
	// PolicySegmented is a 2Q-style segmented LRU: new entries enter a
	// probation segment and are promoted to a protected segment on their
	// first hit, so one-shot scans cannot evict the established working
	// set. CacheLib ships this as its scan-resistant configuration.
	PolicySegmented
)

// protectedFraction is the protected segment's share of shard capacity
// under PolicySegmented.
const protectedFraction = 0.75

// NewSegmentedLRU returns a cache using PolicySegmented with a
// GOMAXPROCS-derived shard count.
func NewSegmentedLRU[K comparable, V any](capacity int, hash Hasher[K]) *Cache[K, V] {
	c := New[K, V](capacity, hash)
	c.enableSegmented()
	return c
}

// enableSegmented switches every shard to the segmented policy. Must be
// called before any entries are inserted.
func (c *Cache[K, V]) enableSegmented() {
	for i := range c.shards {
		s := &c.shards[i]
		s.policy = PolicySegmented
		s.protectedCap = int(protectedFraction * float64(s.capacity))
		if s.protectedCap >= s.capacity && s.capacity > 0 {
			s.protectedCap = s.capacity - 1
		}
		s.protected = list.New()
	}
}

// segmentedGet promotes a hit: probation entries move to the protected
// segment (evicting the protected LRU back to probation when over budget);
// protected entries just refresh recency.
func (s *shard[K, V]) segmentedGet(el *list.Element) {
	e := el.Value.(kv[K, V])
	if e.protected {
		s.protected.MoveToFront(el)
		return
	}
	// Promote out of probation.
	s.order.Remove(el)
	e.protected = true
	s.entries[e.key] = s.protected.PushFront(e)
	s.promotions++
	// Keep the protected segment within budget by demoting its LRU.
	for s.protected.Len() > s.protectedCap {
		back := s.protected.Back()
		d := back.Value.(kv[K, V])
		s.protected.Remove(back)
		d.protected = false
		s.entries[d.key] = s.order.PushFront(d)
		s.demotions++
	}
}

// segmentedLen returns the total entries across both segments.
func (s *shard[K, V]) segmentedLen() int {
	n := s.order.Len()
	if s.protected != nil {
		n += s.protected.Len()
	}
	return n
}

// segmentedEvict removes the probation LRU, or the protected LRU if
// probation is empty, charging the victim's segment counter. Reports
// whether anything was evicted.
func (s *shard[K, V]) segmentedEvict() bool {
	if back := s.order.Back(); back != nil {
		delete(s.entries, back.Value.(kv[K, V]).key)
		s.order.Remove(back)
		s.probEvictions++
		return true
	}
	if back := s.protected.Back(); back != nil {
		delete(s.entries, back.Value.(kv[K, V]).key)
		s.protected.Remove(back)
		s.protEvictions++
		return true
	}
	return false
}
