package cache

import (
	"math/rand"
	"testing"
)

func newSegTest(capacity int) *Cache[uint32, int] {
	c := NewSharded[uint32, int](capacity, 1, Uint32Hasher)
	c.enableSegmented()
	return c
}

func TestSegmentedBasics(t *testing.T) {
	c := newSegTest(8)
	for k := uint32(0); k < 8; k++ {
		c.Put(k, int(k))
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d", c.Len())
	}
	for k := uint32(0); k < 8; k++ {
		if v, ok := c.Get(k); !ok || v != int(k) {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	// Replacement preserves presence and value.
	c.Put(3, 300)
	if v, _ := c.Get(3); v != 300 {
		t.Errorf("replaced value = %d", v)
	}
}

func TestSegmentedScanResistance(t *testing.T) {
	// Working set of 6 keys, all hit once (promoted to protected). A scan
	// of 100 one-shot keys must not evict them — unlike plain LRU.
	const capacity = 8
	working := []uint32{0, 1, 2, 3, 4, 5}

	seg := newSegTest(capacity)
	lru := NewSharded[uint32, int](capacity, 1, Uint32Hasher)
	for _, c := range []*Cache[uint32, int]{seg, lru} {
		for _, k := range working {
			c.Put(k, 1)
			c.Get(k)
		}
		for k := uint32(100); k < 200; k++ {
			c.Put(k, 0) // the scan
		}
	}
	segSurvived, lruSurvived := 0, 0
	for _, k := range working {
		if seg.Contains(k) {
			segSurvived++
		}
		if lru.Contains(k) {
			lruSurvived++
		}
	}
	if segSurvived < len(working) {
		t.Errorf("segmented kept %d of %d working-set keys through a scan", segSurvived, len(working))
	}
	if lruSurvived != 0 {
		t.Errorf("plain LRU kept %d keys through a scan twice its capacity (test premise broken)", lruSurvived)
	}
}

func TestSegmentedProtectedBounded(t *testing.T) {
	// Hammer every key with hits: the protected segment must stay within
	// its budget, demoting back to probation rather than growing.
	c := newSegTest(8) // protectedCap = 6
	for round := 0; round < 5; round++ {
		for k := uint32(0); k < 8; k++ {
			c.Put(k, 1)
			c.Get(k)
		}
	}
	if c.Len() > 8 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
	s := &c.shards[0]
	if s.protected.Len() > s.protectedCap {
		t.Errorf("protected segment %d exceeds budget %d", s.protected.Len(), s.protectedCap)
	}
}

func TestSegmentedCapacityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		capacity := 2 + rng.Intn(20)
		c := newSegTest(capacity)
		for op := 0; op < 2000; op++ {
			k := uint32(rng.Intn(64))
			if rng.Intn(2) == 0 {
				c.Put(k, int(k))
			} else if v, ok := c.Get(k); ok && v != int(k) {
				t.Fatalf("Get(%d) = %d", k, v)
			}
			if c.Len() > capacity {
				t.Fatalf("Len %d > capacity %d", c.Len(), capacity)
			}
		}
		// Every Get must return the value last Put for its key.
		for k := uint32(0); k < 64; k++ {
			if v, ok := c.Get(k); ok && v != int(k) {
				t.Fatalf("stale value for %d: %d", k, v)
			}
		}
	}
}

func TestNewSegmentedLRUConstructor(t *testing.T) {
	c := NewSegmentedLRU[uint32, int](1000, Uint32Hasher)
	if c.Capacity() != 1000 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
	c.Put(1, 1)
	if v, ok := c.Get(1); !ok || v != 1 {
		t.Errorf("Get = %d,%v", v, ok)
	}
}

func TestSegmentedSingleSlotShard(t *testing.T) {
	// capacity 1: protectedCap clamps to 0 — every promotion demotes
	// immediately, but the entry must never be lost.
	c := newSegTest(1)
	c.Put(1, 1)
	if _, ok := c.Get(1); !ok {
		t.Fatal("entry lost on promotion with protectedCap 0")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("entry lost on second hit")
	}
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}
