package cache

import (
	"sort"
	"sync"
)

// Shadow is a bank of keys-only ghost caches: each simulates a plain LRU
// of a different capacity over the same access stream, recording only
// whether each access would have hit. Feeding the serving engine's
// distinct-key stream through a Shadow yields the cache's miss-rate curve
// at capacities the real cache does not have — the Bandana technique for
// sizing DRAM per table from measurement instead of guesses. The curve
// then picks both the DRAM size and (via the page-heat analogue) the
// fast-tier cut point.
//
// All state is preallocated at construction: every simulated LRU is an
// intrusive doubly-linked list over fixed index arrays with a free list,
// so steady-state Touch performs no allocations (the per-LRU position map
// reuses deleted slots once the simulated capacity has been reached).
// A Shadow is safe for concurrent use; one mutex guards the whole bank —
// it is bookkeeping off the latency-critical path, and batching through
// TouchAll keeps the lock acquisition per query, not per key.
type Shadow[K comparable] struct {
	mu       sync.Mutex
	sims     []keyLRU[K]
	accesses int64
}

// CurvePoint is one simulated capacity on the miss-rate curve.
type CurvePoint struct {
	// Capacity is the simulated LRU's entry capacity.
	Capacity int
	// Hits is how many accesses would have hit at this capacity.
	Hits int64
	// Accesses is the total accesses observed (same for every point).
	Accesses int64
	// HitRate is Hits / Accesses (0 with no accesses).
	HitRate float64
}

// NewShadow returns a shadow bank simulating the given capacities.
// Non-positive and duplicate capacities are dropped; capacities are kept
// in ascending order.
func NewShadow[K comparable](capacities []int) *Shadow[K] {
	caps := make([]int, 0, len(capacities))
	seen := map[int]bool{}
	for _, c := range capacities {
		if c > 0 && !seen[c] {
			seen[c] = true
			caps = append(caps, c)
		}
	}
	sort.Ints(caps)
	s := &Shadow[K]{sims: make([]keyLRU[K], len(caps))}
	for i, c := range caps {
		s.sims[i].init(c)
	}
	return s
}

// Touch records one access to k against every simulated capacity.
func (s *Shadow[K]) Touch(k K) {
	s.mu.Lock()
	s.accesses++
	for i := range s.sims {
		s.sims[i].touch(k)
	}
	s.mu.Unlock()
}

// TouchAll records one access per key under a single lock acquisition —
// the form the serving engine uses with its per-query distinct-key list.
func (s *Shadow[K]) TouchAll(keys []K) {
	s.mu.Lock()
	s.accesses += int64(len(keys))
	for i := range s.sims {
		for _, k := range keys {
			s.sims[i].touch(k)
		}
	}
	s.mu.Unlock()
}

// Curve returns the measured hit-rate curve, ascending by capacity.
func (s *Shadow[K]) Curve() []CurvePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CurvePoint, len(s.sims))
	for i := range s.sims {
		p := CurvePoint{
			Capacity: s.sims[i].cap,
			Hits:     s.sims[i].hits,
			Accesses: s.accesses,
		}
		if s.accesses > 0 {
			p.HitRate = float64(p.Hits) / float64(s.accesses)
		}
		out[i] = p
	}
	return out
}

// Recommend returns the smallest simulated capacity whose hit rate is
// within tolerance of the best simulated capacity's (e.g. 0.05 accepts
// ≥ 95% of the maximum hit rate) — the knee of the miss-rate curve, the
// point past which DRAM dollars stop buying hits. Returns 0 when nothing
// has been observed.
func (s *Shadow[K]) Recommend(tolerance float64) int {
	curve := s.Curve()
	best := 0.0
	for _, p := range curve {
		if p.HitRate > best {
			best = p.HitRate
		}
	}
	if best == 0 {
		return 0
	}
	for _, p := range curve {
		if p.HitRate >= (1-tolerance)*best {
			return p.Capacity
		}
	}
	return curve[len(curve)-1].Capacity
}

// Reset clears hit counters and evicts every simulated entry, keeping the
// configured capacities.
func (s *Shadow[K]) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.accesses = 0
	for i := range s.sims {
		c := s.sims[i].cap
		s.sims[i].init(c)
	}
}

// keyLRU is one fixed-capacity keys-only LRU simulated over preallocated
// index arrays. Nodes are 1..cap; node 0 is the sentinel whose next is the
// MRU and whose prev is the LRU. Unused nodes are chained through next as
// a free list.
type keyLRU[K comparable] struct {
	cap  int
	pos  map[K]int32
	keys []K
	next []int32
	prev []int32
	free int32
	hits int64
}

func (l *keyLRU[K]) init(capacity int) {
	l.cap = capacity
	l.hits = 0
	l.pos = make(map[K]int32, capacity)
	l.keys = make([]K, capacity+1)
	l.next = make([]int32, capacity+1)
	l.prev = make([]int32, capacity+1)
	// Sentinel self-loop; all nodes on the free list.
	l.free = 0
	for i := capacity; i >= 1; i-- {
		l.next[i] = l.free
		l.free = int32(i)
	}
}

func (l *keyLRU[K]) unlink(n int32) {
	l.next[l.prev[n]] = l.next[n]
	l.prev[l.next[n]] = l.prev[n]
}

func (l *keyLRU[K]) pushFront(n int32) {
	l.next[n] = l.next[0]
	l.prev[n] = 0
	l.prev[l.next[0]] = n
	l.next[0] = n
}

func (l *keyLRU[K]) touch(k K) {
	if n, ok := l.pos[k]; ok {
		l.hits++
		if l.prev[n] != 0 {
			l.unlink(n)
			l.pushFront(n)
		}
		return
	}
	n := l.free
	if n != 0 {
		l.free = l.next[n]
	} else {
		// Full: recycle the LRU node.
		n = l.prev[0]
		delete(l.pos, l.keys[n])
		l.unlink(n)
	}
	l.keys[n] = k
	l.pos[k] = n
	l.pushFront(n)
}
