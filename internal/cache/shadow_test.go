package cache

import (
	"testing"
)

func TestShadowCurveTracksLRUHitRates(t *testing.T) {
	s := NewShadow[uint32]([]int{2, 4, 0, 4, -1}) // dropped: 0, -1, dup 4
	// Cyclic scan over 4 keys: an LRU of 2 never hits, an LRU of 4 hits
	// everything after the first pass.
	for pass := 0; pass < 10; pass++ {
		for k := uint32(0); k < 4; k++ {
			s.Touch(k)
		}
	}
	curve := s.Curve()
	if len(curve) != 2 || curve[0].Capacity != 2 || curve[1].Capacity != 4 {
		t.Fatalf("curve capacities = %+v, want [2 4]", curve)
	}
	if curve[0].Hits != 0 {
		t.Errorf("capacity-2 hits = %d on a 4-key cycle, want 0", curve[0].Hits)
	}
	if want := int64(36); curve[1].Hits != want { // 40 accesses − 4 cold misses
		t.Errorf("capacity-4 hits = %d, want %d", curve[1].Hits, want)
	}
	if curve[1].Accesses != 40 {
		t.Errorf("accesses = %d, want 40", curve[1].Accesses)
	}
	if got := s.Recommend(0.05); got != 4 {
		t.Errorf("Recommend = %d, want 4", got)
	}
}

func TestShadowRecommendPicksKnee(t *testing.T) {
	s := NewShadow[uint32]([]int{1, 2, 8})
	// Two hot keys alternating: capacity 2 captures everything capacity 8
	// does, so the knee is 2.
	for i := 0; i < 100; i++ {
		s.Touch(uint32(i % 2))
	}
	if got := s.Recommend(0.05); got != 2 {
		t.Errorf("Recommend = %d, want 2", got)
	}
	if got := NewShadow[uint32]([]int{4}).Recommend(0.05); got != 0 {
		t.Errorf("Recommend with no accesses = %d, want 0", got)
	}
}

func TestShadowTouchAllMatchesTouch(t *testing.T) {
	a := NewShadow[uint32]([]int{3})
	b := NewShadow[uint32]([]int{3})
	stream := []uint32{5, 1, 5, 2, 3, 1, 4, 5, 1, 2}
	for _, k := range stream {
		a.Touch(k)
	}
	b.TouchAll(stream)
	ca, cb := a.Curve(), b.Curve()
	if ca[0] != cb[0] {
		t.Errorf("Touch curve %+v != TouchAll curve %+v", ca[0], cb[0])
	}
}

func TestShadowReset(t *testing.T) {
	s := NewShadow[uint32]([]int{2})
	s.Touch(1)
	s.Touch(1)
	s.Reset()
	c := s.Curve()
	if c[0].Hits != 0 || c[0].Accesses != 0 {
		t.Errorf("after Reset: %+v, want zeroed", c[0])
	}
	s.Touch(1)
	if s.Curve()[0].Hits != 0 {
		t.Error("entry survived Reset")
	}
}

func TestCacheSegmentStats(t *testing.T) {
	// One shard for deterministic segment accounting: capacity 4,
	// protected cap 3.
	c := NewSharded[uint32, int](4, 1, Uint32Hasher)
	c.enableSegmented()
	for k := uint32(0); k < 4; k++ {
		c.Put(k, int(k))
	}
	st := c.Stats()
	if st.ProbationLen != 4 || st.ProtectedLen != 0 {
		t.Fatalf("after fills: probation/protected = %d/%d, want 4/0", st.ProbationLen, st.ProtectedLen)
	}
	c.Get(0) // promote
	c.Get(1) // promote
	st = c.Stats()
	if st.ProbationLen != 2 || st.ProtectedLen != 2 || st.Promotions != 2 {
		t.Fatalf("after promotions: %+v", st)
	}
	// Fill past capacity: victims must come from probation.
	c.Put(10, 10)
	c.Put(11, 11)
	st = c.Stats()
	if st.ProbationEvictions != 2 || st.ProtectedEvictions != 0 {
		t.Fatalf("segment evictions = %d/%d, want 2/0", st.ProbationEvictions, st.ProtectedEvictions)
	}
	if st.Evictions != st.ProbationEvictions+st.ProtectedEvictions {
		t.Fatalf("total evictions %d != segment sum %d", st.Evictions, st.ProbationEvictions+st.ProtectedEvictions)
	}
	// Promote beyond the protected budget to force a demotion.
	c.Get(10)
	c.Get(11)
	st = c.Stats()
	if st.Demotions == 0 {
		t.Fatalf("no demotion after over-budget promotions: %+v", st)
	}
	c.ResetStats()
	st = c.Stats()
	if st.Promotions != 0 || st.ProbationEvictions != 0 || st.Demotions != 0 {
		t.Fatalf("ResetStats left counters: %+v", st)
	}
	if st.ProbationLen+st.ProtectedLen != 4 {
		t.Fatalf("ResetStats touched contents: %+v", st)
	}
}

func TestCachePlainLRUSegmentStats(t *testing.T) {
	c := NewSharded[uint32, int](2, 1, Uint32Hasher)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	st := c.Stats()
	if st.ProbationLen != 2 || st.ProtectedLen != 0 {
		t.Errorf("plain LRU occupancy = %d/%d, want 2/0", st.ProbationLen, st.ProtectedLen)
	}
	if st.ProbationEvictions != 1 || st.Evictions != 1 {
		t.Errorf("plain LRU evictions = %d (probation %d), want 1", st.Evictions, st.ProbationEvictions)
	}
}

func TestCachePin(t *testing.T) {
	c := NewSegmentedLRU[uint32, int](2, Uint32Hasher)
	c.Pin(100, -1)
	c.Pin(101, -2)
	if v, ok := c.Get(100); !ok || v != -1 {
		t.Fatalf("Get(pinned) = %v, %v", v, ok)
	}
	if !c.Contains(101) {
		t.Error("Contains(pinned) = false")
	}
	// Pins survive arbitrary churn and never consume LRU capacity.
	for k := uint32(0); k < 50; k++ {
		c.Put(k, int(k))
	}
	if _, ok := c.Get(100); !ok {
		t.Error("pinned entry evicted by churn")
	}
	st := c.Stats()
	if st.PinnedEntries != 2 {
		t.Errorf("PinnedEntries = %d, want 2", st.PinnedEntries)
	}
	if st.PinnedHits != 2 { // the two Gets; Contains never counts
		t.Errorf("PinnedHits = %d, want 2", st.PinnedHits)
	}
	if c.PinnedLen() != 2 {
		t.Errorf("PinnedLen = %d, want 2", c.PinnedLen())
	}
	if c.Len() > 2 {
		t.Errorf("Len = %d > capacity 2: pins leaked into the LRU", c.Len())
	}
}

// TestCacheHitPathAllocs is the zero-allocation guard for the cache hit
// path under the segmented policy: steady-state Get hits (protected and
// pinned), misses, and ghost-cache touches must not allocate — the
// shadow-cache addition may not put allocations on the hit path.
func TestCacheHitPathAllocs(t *testing.T) {
	c := NewSegmentedLRU[uint32, int](1024, Uint32Hasher)
	c.Pin(1_000_000, 1)
	for k := uint32(0); k < 512; k++ {
		c.Put(k, int(k))
	}
	// Promote the working set into the protected segment so the measured
	// hits are steady-state recency bumps, not first-hit promotions.
	for pass := 0; pass < 2; pass++ {
		for k := uint32(0); k < 512; k++ {
			c.Get(k)
		}
	}
	sh := NewShadow[uint32]([]int{64, 256, 1024})
	keys := []uint32{3, 7, 11, 13, 17, 19, 23, 29}
	// Warm the shadow past every simulated capacity so its maps stop
	// growing.
	for k := uint32(0); k < 4096; k++ {
		sh.Touch(k)
	}

	var i uint32
	allocs := testing.AllocsPerRun(500, func() {
		c.Get(i % 512)     // protected-segment hit
		c.Get(1_000_000)   // pinned hit
		sh.TouchAll(keys)  // ghost-cache batch touch
		sh.Touch(i % 4096) // ghost-cache single touch
		c.Get(9_999_999)   // miss
		i += 37
	})
	if allocs > 0 {
		t.Errorf("cache hit path allocates %.1f times per op, want 0", allocs)
	}
}

// TestCachePutAllocBudget bounds the full Get/Put mix under the segmented
// policy, matching the style (and generosity) of serving's per-lookup
// alloc guards: an evicting insert costs one list.Element plus the kv box,
// so the budget is small but not zero.
func TestCachePutAllocBudget(t *testing.T) {
	c := NewSegmentedLRU[uint32, int](1024, Uint32Hasher)
	for k := uint32(0); k < 2048; k++ {
		c.Put(k, int(k))
	}
	var i uint32
	allocs := testing.AllocsPerRun(500, func() {
		c.Get(i % 4096)  // mix of hits (with promotion churn) and misses
		c.Put(i%4096, 0) // mix of updates and evicting inserts
		i += 37
	})
	if allocs > 6 {
		t.Errorf("cache Get/Put mix allocates %.1f times per op, want ≤ 6", allocs)
	}
}

func BenchmarkSegmentedGetHit(b *testing.B) {
	c := NewSegmentedLRU[uint32, []float32](100_000, Uint32Hasher)
	vec := make([]float32, 64)
	for k := uint32(0); k < 50_000; k++ {
		c.Put(k, vec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(uint32(i % 50_000)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSegmentedPutEvict(b *testing.B) {
	c := NewSegmentedLRU[uint32, []float32](100_000, Uint32Hasher)
	vec := make([]float32, 64)
	for k := uint32(0); k < 100_000; k++ {
		c.Put(k, vec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(uint32(100_000+i), vec)
	}
}

func BenchmarkShadowTouchAll(b *testing.B) {
	sh := NewShadow[uint32]([]int{1_000, 10_000, 100_000})
	keys := make([]uint32, 26)
	for i := range keys {
		keys[i] = uint32(i * 997)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = uint32((i*31 + j*997) % 200_000)
		}
		sh.TouchAll(keys)
	}
}
