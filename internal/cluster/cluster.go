// Package cluster shards a MaxEmbed deployment across multiple SSDs. The
// paper's motivation is models growing 10× per year past single-device
// capacity (§1); production serving therefore hash-partitions the key
// space over many drives, runs the offline phase independently per shard
// (placement only exploits co-appearance *within* a shard's keys), and
// fans each query out to all shards it touches. The cluster's query
// latency is the slowest shard's, which is why per-shard read-amplification
// reductions translate directly into cluster tail latency.
package cluster

import (
	"fmt"

	"maxembed/internal/cache"
	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/shp"
	"maxembed/internal/ssd"
)

// Key is a global embedding key.
type Key = uint32

// Config assembles a sharded deployment.
type Config struct {
	// Shards is the number of independent (device, layout, engine)
	// shards. Required ≥ 1.
	Shards int
	// NumItems is the global key-space size.
	NumItems int
	// Strategy, ReplicationRatio and Seed drive each shard's offline
	// phase.
	Strategy         placement.Strategy
	ReplicationRatio float64
	Seed             int64
	// Dim and PageSize shape pages (defaults 64 / 4096).
	Dim, PageSize int
	// Device is the per-shard SSD profile (default P5800X).
	Device ssd.Profile
	// CacheRatio sizes each shard's DRAM cache relative to its keys.
	CacheRatio float64
	// IndexLimit is the per-shard index-shrinking bound.
	IndexLimit int
	// Sharding selects how keys map to shards. ShardingHash (default)
	// spreads keys uniformly, which balances load but scatters
	// co-appearing keys across shards; ShardingLocality runs a coarse
	// hypergraph partition over the history so co-appearing keys share a
	// shard, preserving the structure the per-shard placement exploits.
	Sharding Sharding
}

// Sharding names a key→shard assignment policy.
type Sharding string

// Available sharding policies.
const (
	ShardingHash     Sharding = ""         // default
	ShardingLocality Sharding = "locality" // coarse SHP over the history
)

// Cluster is an immutable sharded deployment; create Sessions to serve.
type Cluster struct {
	numShards int
	shardOf   []uint8  // global key → shard
	localID   []uint32 // global key → shard-local key
	globalID  [][]Key  // shard → local key → global key
	engines   []*serving.Engine
	devices   []*ssd.Device
}

// Build runs the offline phase for every shard over its projection of the
// history trace.
func Build(history [][]Key, cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: Shards must be ≥ 1, got %d", cfg.Shards)
	}
	if cfg.Shards > 255 {
		return nil, fmt.Errorf("cluster: at most 255 shards, got %d", cfg.Shards)
	}
	if cfg.NumItems < 0 {
		return nil, fmt.Errorf("cluster: NumItems must be non-negative")
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 64
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.Device.PageSize == 0 {
		cfg.Device = ssd.P5800X
	}
	if cfg.Strategy == "" {
		cfg.Strategy = placement.StrategyMaxEmbed
	}

	c := &Cluster{
		numShards: cfg.Shards,
		shardOf:   make([]uint8, cfg.NumItems),
		localID:   make([]uint32, cfg.NumItems),
		globalID:  make([][]Key, cfg.Shards),
	}
	switch cfg.Sharding {
	case ShardingHash:
		// Hash-partition the key space (same mixer as the cache's).
		for k := 0; k < cfg.NumItems; k++ {
			s := uint8(cache.Uint32Hasher(uint32(k)) % uint64(cfg.Shards))
			c.shardOf[k] = s
			c.localID[k] = uint32(len(c.globalID[s]))
			c.globalID[s] = append(c.globalID[s], Key(k))
		}
	case ShardingLocality:
		g, err := hypergraph.FromQueries(cfg.NumItems, asVertices(history))
		if err != nil {
			return nil, fmt.Errorf("cluster: locality sharding: %w", err)
		}
		res, err := shp.Partition(g, shp.Options{
			NumBuckets: cfg.Shards,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: locality sharding: %w", err)
		}
		for k, b := range res.Assign {
			s := uint8(b)
			c.shardOf[k] = s
			c.localID[k] = uint32(len(c.globalID[s]))
			c.globalID[s] = append(c.globalID[s], Key(k))
		}
	default:
		return nil, fmt.Errorf("cluster: unknown sharding policy %q", cfg.Sharding)
	}

	// Project the history per shard and run each shard's offline phase.
	perShard := make([][][]hypergraph.Vertex, cfg.Shards)
	scratch := make([][]hypergraph.Vertex, cfg.Shards)
	for _, q := range history {
		for s := range scratch {
			scratch[s] = scratch[s][:0]
		}
		for _, k := range q {
			if int(k) >= cfg.NumItems {
				return nil, fmt.Errorf("cluster: history key %d out of range", k)
			}
			s := c.shardOf[k]
			scratch[s] = append(scratch[s], c.localID[k])
		}
		for s, keys := range scratch {
			if len(keys) == 0 {
				continue
			}
			cp := make([]hypergraph.Vertex, len(keys))
			copy(cp, keys)
			perShard[s] = append(perShard[s], cp)
		}
	}

	capacity := embedding.PageCapacity(cfg.PageSize, cfg.Dim)
	for s := 0; s < cfg.Shards; s++ {
		g, err := hypergraph.FromQueries(len(c.globalID[s]), perShard[s])
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d hypergraph: %w", s, err)
		}
		lay, err := placement.Build(cfg.Strategy, g, placement.Options{
			Capacity:         capacity,
			ReplicationRatio: cfg.ReplicationRatio,
			Seed:             cfg.Seed + int64(s),
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d placement: %w", s, err)
		}
		dev, err := ssd.NewDevice(cfg.Device)
		if err != nil {
			return nil, err
		}
		eng, err := serving.New(serving.Config{
			Layout:       lay,
			Device:       dev,
			CacheEntries: int(cfg.CacheRatio * float64(lay.NumKeys)),
			IndexLimit:   cfg.IndexLimit,
			Pipeline:     true,
			VectorBytes:  embedding.BytesPerVector(cfg.Dim),
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d engine: %w", s, err)
		}
		c.engines = append(c.engines, eng)
		c.devices = append(c.devices, dev)
	}
	return c, nil
}

// asVertices reinterprets the history queries as hypergraph vertex lists
// (Key and hypergraph.Vertex are both uint32).
func asVertices(history [][]Key) [][]hypergraph.Vertex {
	out := make([][]hypergraph.Vertex, len(history))
	for i, q := range history {
		out[i] = q
	}
	return out
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return c.numShards }

// ShardOf returns the shard serving global key k.
func (c *Cluster) ShardOf(k Key) int { return int(c.shardOf[k]) }

// Engine returns shard s's serving engine (for stats and harnesses).
func (c *Cluster) Engine(s int) *serving.Engine { return c.engines[s] }

// Stats aggregates device statistics across shards.
func (c *Cluster) Stats() ssd.Stats {
	var total ssd.Stats
	for _, d := range c.devices {
		s := d.Stats()
		total.Reads += s.Reads
		total.BytesRead += s.BytesRead
		total.BusyNS += s.BusyNS
		total.Errors += s.Errors
		total.Timeouts += s.Timeouts
		total.Corruptions += s.Corruptions
		total.InjectedLatencyNS += s.InjectedLatencyNS
		total.Writes += s.Writes
		total.BytesWritten += s.BytesWritten
	}
	return total
}

// Result is one fanned-out lookup's outcome.
type Result struct {
	// LatencyNS is the slowest shard's virtual latency — what the caller
	// observes when shards are queried in parallel.
	LatencyNS int64
	// PagesRead and CacheHits sum over shards; ShardsTouched counts the
	// shards that held at least one queried key.
	PagesRead, CacheHits, ShardsTouched int
	// Retries sums recovery reads across shards.
	Retries int
	// Degraded is set when any shard returned a partial result; FailedKeys
	// then lists the unserved keys, translated back to global key space.
	Degraded   bool
	FailedKeys []Key
}

// Session is a single-threaded fan-out handle holding one worker per
// shard. Not safe for concurrent use; create one per serving goroutine.
type Session struct {
	c       *Cluster
	workers []*serving.Worker
	bufs    [][]Key
}

// NewSession returns a session with a worker on every shard.
func (c *Cluster) NewSession() *Session {
	s := &Session{c: c, bufs: make([][]Key, c.numShards)}
	for _, e := range c.engines {
		s.workers = append(s.workers, e.NewWorker())
	}
	return s
}

// Now returns the session's virtual clock: the latest clock among its
// per-shard workers.
func (s *Session) Now() int64 {
	var now int64
	for _, w := range s.workers {
		if w.Now() > now {
			now = w.Now()
		}
	}
	return now
}

// Lookup fans the query across the shards holding its keys. Shard
// sub-lookups proceed in parallel on the virtual clock: the result latency
// is the maximum over shards, not the sum.
func (s *Session) Lookup(query []Key) (Result, error) {
	var res Result
	for i := range s.bufs {
		s.bufs[i] = s.bufs[i][:0]
	}
	for _, k := range query {
		if int(k) >= len(s.c.shardOf) {
			return res, fmt.Errorf("cluster: key %d out of range", k)
		}
		sh := s.c.shardOf[k]
		s.bufs[sh] = append(s.bufs[sh], s.c.localID[k])
	}
	// Fan out: align every touched worker to the same start time (the
	// fan-out moment), then take the slowest completion.
	start := int64(0)
	for sh, keys := range s.bufs {
		if len(keys) > 0 && s.workers[sh].Now() > start {
			start = s.workers[sh].Now()
		}
	}
	var slowest int64
	for sh, keys := range s.bufs {
		if len(keys) == 0 {
			continue
		}
		res.ShardsTouched++
		w := s.workers[sh]
		w.SetNow(start)
		r, err := w.Lookup(keys)
		if err != nil {
			return res, fmt.Errorf("cluster: shard %d: %w", sh, err)
		}
		res.PagesRead += r.Stats.PagesRead
		res.CacheHits += r.Stats.CacheHits
		res.Retries += r.Stats.Retries
		// A degraded shard degrades the whole fan-out: surface its failed
		// keys in the caller's (global) key space.
		for _, lk := range r.FailedKeys {
			res.Degraded = true
			res.FailedKeys = append(res.FailedKeys, s.c.globalID[sh][lk])
		}
		if lat := r.Stats.LatencyNS(); lat > slowest {
			slowest = lat
		}
	}
	res.LatencyNS = slowest
	return res, nil
}
