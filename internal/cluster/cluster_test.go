package cluster

import (
	"testing"

	"maxembed/internal/placement"
	"maxembed/internal/workload"
)

func testTrace(t *testing.T) *workload.Trace {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 3000, Queries: 5000, MeanQueryLen: 16,
		Communities: 250, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 8,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func build(t *testing.T, tr *workload.Trace, shards int, ratio float64) *Cluster {
	t.Helper()
	history, _ := tr.Split(0.5)
	c, err := Build(history.Queries, Config{
		Shards:           shards,
		NumItems:         tr.NumItems,
		Strategy:         placement.StrategyMaxEmbed,
		ReplicationRatio: ratio,
		Seed:             1,
		CacheRatio:       0.1,
		IndexLimit:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterCoversAllKeys(t *testing.T) {
	tr := testTrace(t)
	c := build(t, tr, 4, 0.2)
	// Every global key maps to exactly one shard and back.
	counts := make([]int, c.NumShards())
	for k := 0; k < tr.NumItems; k++ {
		s := c.ShardOf(Key(k))
		if s < 0 || s >= c.NumShards() {
			t.Fatalf("key %d on invalid shard %d", k, s)
		}
		counts[s]++
	}
	total := 0
	for s, n := range counts {
		if n == 0 {
			t.Errorf("shard %d empty", s)
		}
		total += n
	}
	if total != tr.NumItems {
		t.Fatalf("shards hold %d keys, want %d", total, tr.NumItems)
	}
	// Hash sharding should be roughly balanced.
	per := tr.NumItems / c.NumShards()
	for s, n := range counts {
		if n < per/2 || n > per*2 {
			t.Errorf("shard %d holds %d keys (expected ≈%d)", s, n, per)
		}
	}
}

func TestClusterLookup(t *testing.T) {
	tr := testTrace(t)
	c := build(t, tr, 4, 0.2)
	_, eval := tr.Split(0.5)
	sess := c.NewSession()
	for i := 0; i < 300; i++ {
		q := eval.Queries[i]
		res, err := sess.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.LatencyNS <= 0 {
			t.Fatalf("query %d: non-positive latency", i)
		}
		if res.ShardsTouched < 1 || res.ShardsTouched > c.NumShards() {
			t.Fatalf("query %d: ShardsTouched = %d", i, res.ShardsTouched)
		}
	}
	if c.Stats().Reads == 0 {
		t.Error("no device reads recorded")
	}
}

func TestClusterFanOutLatencyIsMaxNotSum(t *testing.T) {
	tr := testTrace(t)
	single := build(t, tr, 1, 0)
	four := build(t, tr, 4, 0)
	_, eval := tr.Split(0.5)

	var sumSingle, sumFour int64
	s1, s4 := single.NewSession(), four.NewSession()
	for i := 0; i < 500; i++ {
		r1, err := s1.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		r4, err := s4.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		sumSingle += r1.LatencyNS
		sumFour += r4.LatencyNS
	}
	// Four shards split each query's reads across four devices in
	// parallel; mean latency must drop substantially.
	if float64(sumFour) > 0.8*float64(sumSingle) {
		t.Errorf("4-shard latency %d not well below 1-shard %d", sumFour, sumSingle)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := Build(nil, Config{Shards: 0, NumItems: 10}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := Build(nil, Config{Shards: 300, NumItems: 10}); err == nil {
		t.Error("300 shards accepted")
	}
	if _, err := Build(nil, Config{Shards: 2, NumItems: -1}); err == nil {
		t.Error("negative NumItems accepted")
	}
	if _, err := Build([][]Key{{99}}, Config{Shards: 2, NumItems: 10}); err == nil {
		t.Error("out-of-range history key accepted")
	}
	c, err := Build(nil, Config{Shards: 2, NumItems: 10})
	if err != nil {
		t.Fatal(err)
	}
	sess := c.NewSession()
	if _, err := sess.Lookup([]Key{42}); err == nil {
		t.Error("out-of-range lookup key accepted")
	}
}

func TestLocalitySharding(t *testing.T) {
	tr := testTrace(t)
	history, eval := tr.Split(0.5)
	mk := func(sharding Sharding) *Cluster {
		c, err := Build(history.Queries, Config{
			Shards:     4,
			NumItems:   tr.NumItems,
			Strategy:   placement.StrategySHP,
			Seed:       1,
			CacheRatio: 0,
			IndexLimit: 10,
			Sharding:   sharding,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	hash := mk(ShardingHash)
	loc := mk(ShardingLocality)

	// Locality sharding must concentrate each query on fewer shards.
	var hashTouched, locTouched int
	hs, ls := hash.NewSession(), loc.NewSession()
	for i := 0; i < 400; i++ {
		hr, err := hs.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		lr, err := ls.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		hashTouched += hr.ShardsTouched
		locTouched += lr.ShardsTouched
	}
	if locTouched >= hashTouched {
		t.Errorf("locality sharding touched %d shards total, hash %d — no concentration",
			locTouched, hashTouched)
	}

	// Balance: every shard still holds a meaningful share of keys.
	counts := make([]int, loc.NumShards())
	for k := 0; k < tr.NumItems; k++ {
		counts[loc.ShardOf(Key(k))]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Errorf("locality shard %d empty", s)
		}
	}

	if _, err := Build(nil, Config{Shards: 2, NumItems: 4, Sharding: Sharding("bogus")}); err == nil {
		t.Error("unknown sharding accepted")
	}
}
