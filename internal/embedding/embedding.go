// Package embedding models DLRM embedding vectors: fixed-dimension dense
// float32 vectors addressed by dense integer keys. Vectors are synthesized
// deterministically from (key, dimension, seed) so the serving path's
// correctness can be verified without holding a second copy of the table in
// memory — the expected value of any vector is recomputable on demand.
package embedding

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Key identifies an embedding vector.
type Key = uint32

// BytesPerVector returns the storage footprint of one vector of the given
// dimension (float32 elements).
func BytesPerVector(dim int) int { return dim * 4 }

// SlotOverhead is the non-payload footprint of one page slot: the 4-byte
// key header plus the 4-byte checksum the store writes so pages are
// self-describing and every slot is self-verifying.
const SlotOverhead = 8

// SlotSize returns the per-embedding page-slot footprint: a vector plus its
// 4-byte key header and 4-byte checksum, which the store writes so pages
// are self-describing and every slot is self-verifying (corruption shows up
// as a checksum mismatch, not as silently wrong embedding values).
func SlotSize(dim int) int { return SlotOverhead + BytesPerVector(dim) }

// PageCapacity returns d: how many embeddings of the given dimension fit in
// one SSD page. The paper's default (dim=64, 4 KiB pages) yields 15 with
// slot headers, within the "8 to 32 per page" range the paper cites (§3).
func PageCapacity(pageSize, dim int) int {
	d := pageSize / SlotSize(dim)
	if d < 1 {
		d = 1
	}
	return d
}

// Synthesizer deterministically generates vectors for keys.
type Synthesizer struct {
	dim  int
	seed uint64
}

// NewSynthesizer returns a synthesizer for vectors of the given dimension.
func NewSynthesizer(dim int, seed int64) (*Synthesizer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("embedding: dimension must be positive, got %d", dim)
	}
	return &Synthesizer{dim: dim, seed: uint64(seed)}, nil
}

// Dim returns the vector dimension.
func (s *Synthesizer) Dim() int { return s.dim }

// mix is a splitmix64 finalizer round.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// At returns element j of key k's vector, in [-1, 1).
func (s *Synthesizer) At(k Key, j int) float32 {
	h := mix(s.seed ^ (uint64(k)<<20 | uint64(j)) + 0x9e3779b97f4a7c15)
	// Map the top 24 bits to [-1, 1).
	return float32(int32(h>>40)-(1<<23)) / (1 << 23)
}

// Vector appends key k's vector to dst and returns it. dst[:0] reuse avoids
// allocation.
func (s *Synthesizer) Vector(k Key, dst []float32) []float32 {
	for j := 0; j < s.dim; j++ {
		dst = append(dst, s.At(k, j))
	}
	return dst
}

// EncodeVector appends the little-endian float32 encoding of v to dst.
func EncodeVector(v []float32, dst []byte) []byte {
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(x))
	}
	return dst
}

// DecodeVector decodes dim float32 values from b into dst (appended).
// It returns an error if b is too short.
func DecodeVector(b []byte, dim int, dst []float32) ([]float32, error) {
	if len(b) < dim*4 {
		return dst, fmt.Errorf("embedding: need %d bytes, have %d", dim*4, len(b))
	}
	for j := 0; j < dim; j++ {
		bits := binary.LittleEndian.Uint32(b[j*4:])
		dst = append(dst, math.Float32frombits(bits))
	}
	return dst, nil
}
