package embedding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageCapacity(t *testing.T) {
	cases := []struct {
		pageSize, dim, want int
	}{
		{4096, 64, 15},  // paper default: 256 B vector + 8 B header = 264 B
		{4096, 32, 30},  // 136 B slot
		{4096, 128, 7},  // 520 B slot
		{4096, 16, 56},  // 72 B slot
		{4096, 2048, 1}, // oversized vector still gets one slot
	}
	for _, c := range cases {
		if got := PageCapacity(c.pageSize, c.dim); got != c.want {
			t.Errorf("PageCapacity(%d,%d) = %d, want %d", c.pageSize, c.dim, got, c.want)
		}
	}
}

func TestBytesPerVector(t *testing.T) {
	if got := BytesPerVector(64); got != 256 {
		t.Errorf("BytesPerVector(64) = %d, want 256", got)
	}
	if got := SlotSize(64); got != 264 {
		t.Errorf("SlotSize(64) = %d, want 264", got)
	}
}

func TestSynthesizerDeterministic(t *testing.T) {
	s1, err := NewSynthesizer(16, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSynthesizer(16, 7)
	s3, _ := NewSynthesizer(16, 8)
	for k := Key(0); k < 50; k++ {
		a := s1.Vector(k, nil)
		b := s2.Vector(k, nil)
		c := s3.Vector(k, nil)
		if len(a) != 16 {
			t.Fatalf("Vector length = %d", len(a))
		}
		same, diff := true, false
		for j := range a {
			if a[j] != b[j] {
				same = false
			}
			if a[j] != c[j] {
				diff = true
			}
		}
		if !same {
			t.Fatalf("same seed gave different vectors for key %d", k)
		}
		if !diff {
			t.Fatalf("different seeds gave identical vectors for key %d", k)
		}
	}
}

func TestSynthesizerRange(t *testing.T) {
	s, _ := NewSynthesizer(8, 1)
	for k := Key(0); k < 200; k++ {
		for j := 0; j < 8; j++ {
			v := s.At(k, j)
			if v < -1 || v >= 1 {
				t.Fatalf("At(%d,%d) = %v outside [-1,1)", k, j, v)
			}
		}
	}
}

func TestSynthesizerDistinctKeys(t *testing.T) {
	// Vectors of different keys should differ (probabilistically certain).
	s, _ := NewSynthesizer(8, 1)
	a := s.Vector(1, nil)
	b := s.Vector(2, nil)
	same := true
	for j := range a {
		if a[j] != b[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("keys 1 and 2 produced identical vectors")
	}
}

func TestNewSynthesizerRejectsBadDim(t *testing.T) {
	if _, err := NewSynthesizer(0, 1); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewSynthesizer(-4, 1); err == nil {
		t.Error("negative dim accepted")
	}
}

func TestVectorCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(64)
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()*2 - 1
		}
		enc := EncodeVector(v, nil)
		if len(enc) != dim*4 {
			return false
		}
		dec, err := DecodeVector(enc, dim, nil)
		if err != nil {
			return false
		}
		for j := range v {
			if dec[j] != v[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeVectorShortBuffer(t *testing.T) {
	if _, err := DecodeVector(make([]byte, 7), 2, nil); err == nil {
		t.Error("DecodeVector accepted short buffer")
	}
}
