package experiments

import (
	"fmt"

	"maxembed/internal/embedding"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/workload"
)

// Ablation isolates the contribution of each online-phase design choice
// (§6) on a replicated layout: the classic greedy set cover the paper
// starts from, MaxEmbed's one-pass selection with and without the
// ascending replica-count ordering (step ❶), and the index limit. For each
// variant it reports the selection quality (pages per query) and cost
// (selection time per query), the trade at the heart of challenge #2.
func Ablation(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.AlibabaIFashion)
	if err != nil {
		return err
	}
	lay, err := buildLayout(cfg, pr, placement.StrategyMaxEmbed, 0.40)
	if err != nil {
		return err
	}
	type variant struct {
		name     string
		greedy   bool
		unsorted bool
		limit    int
	}
	variants := []variant{
		{"classic greedy set cover", true, false, 0},
		{"one-pass, unsorted keys", false, true, 0},
		{"one-pass (§6.1)", false, false, 0},
		{"one-pass + index limit k=10", false, false, 10},
	}
	t := newTable(cfg.Out, "Ablation: page selection variants, iFashion ME(r=40%), no cache")
	t.row("variant", "pages/query", "select µs/query", "QPS (virtual)")
	for _, v := range variants {
		dev, err := ssd.NewDevice(ssd.P5800X)
		if err != nil {
			return err
		}
		eng, err := serving.New(serving.Config{
			Layout:            lay,
			Device:            dev,
			IndexLimit:        v.limit,
			Pipeline:          true,
			Greedy:            v.greedy,
			UnsortedSelection: v.unsorted,
			VectorBytes:       embedding.BytesPerVector(cfg.Dim),
		})
		if err != nil {
			return err
		}
		res, err := serving.Run(eng, pr.eval.Queries, cfg.Workers)
		if err != nil {
			return err
		}
		t.row(v.name,
			fmt.Sprintf("%.2f", float64(res.PagesRead)/float64(res.Queries)),
			fmt.Sprintf("%.2f", float64(res.SelectNS)/float64(res.Queries)/1e3),
			fmt.Sprintf("%.0f", res.QPS))
	}
	t.flush()
	return nil
}
