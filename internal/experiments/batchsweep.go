package experiments

import (
	"fmt"

	"maxembed/internal/embedding"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
)

// BatchSweep charts what cross-request micro-batching buys: the same eval
// trace is served with lookups coalesced into batches of increasing size,
// and each batch runs one combined dedupe → selection → read pass whose
// results scatter back per query. Widening the per-pass key set lets page
// selection exploit co-location and replication across queries (§8.2's
// cross-query duplication), so pages per key fall and mean valid embeddings
// per read and effective bandwidth rise monotonically with batch size. The
// shared-keys and shared-reads columns show the mechanism: how many
// distinct keys each batch requested more than once, and how many page
// reads served keys of several queries at once. Cache is disabled so every
// saving is attributable to batching.
func BatchSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, overallProfiles()[0])
	if err != nil {
		return err
	}
	lay, err := buildLayout(cfg, pr, "maxembed", 0.40)
	if err != nil {
		return err
	}

	t := newTable(cfg.Out, "Batch sweep: coalesced lookups vs batch size (maxembed, 40% replicas, no cache)")
	t.row("batch", "pages/key", "valid/read", "shared keys", "shared reads",
		"eff MB/s", "p50 µs", "p99 µs")
	var prevValid, prevBW float64
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		dev, err := ssd.NewDevice(ssd.P5800X)
		if err != nil {
			return err
		}
		eng, err := serving.New(serving.Config{
			Layout:      lay,
			Device:      dev,
			IndexLimit:  10,
			Pipeline:    true,
			VectorBytes: embedding.BytesPerVector(cfg.Dim),
		})
		if err != nil {
			return err
		}
		res, err := serving.RunBatched(eng, pr.eval.Queries, b, cfg.Workers)
		if err != nil {
			return err
		}
		pagesPerKey := float64(res.PagesRead) / float64(res.Keys)
		t.row(fmt.Sprint(b),
			fmt.Sprintf("%.3f", pagesPerKey),
			fmt.Sprintf("%.2f", res.MeanValidPerRead),
			fmt.Sprint(res.SharedKeys),
			fmt.Sprint(res.SharedPageReads),
			mbps(res.EffectiveBandwidth),
			fmt.Sprintf("%.1f", float64(res.Latency.P50NS)/1e3),
			fmt.Sprintf("%.1f", float64(res.Latency.P99NS)/1e3))
		if res.MeanValidPerRead < prevValid || res.EffectiveBandwidth < prevBW {
			fmt.Fprintf(cfg.Out, "WARNING: batch %d regressed (valid/read %.2f, bw %.0f)\n",
				b, res.MeanValidPerRead, res.EffectiveBandwidth)
		}
		prevValid, prevBW = res.MeanValidPerRead, res.EffectiveBandwidth
	}
	t.flush()
	return nil
}
