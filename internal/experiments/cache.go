package experiments

import (
	"fmt"

	"maxembed/internal/placement"
	"maxembed/internal/workload"
)

// cacheProfiles are the four datasets Figs 12/13 sweep.
func cacheProfiles() []workload.Profile {
	return []workload.Profile{
		workload.AlibabaIFashion,
		workload.Avazu,
		workload.Criteo,
		workload.CriteoTB,
	}
}

// Fig12 reproduces Figure 12: end-to-end throughput as the DRAM cache grows
// from 1% to 40% of the table, for SHP and MaxEmbed at each replication
// ratio. Paper: throughput rises with cache size and saturates; MaxEmbed
// keeps up to 1.2× advantage because cold-embedding combinations still
// benefit from replication even when the cache absorbs the hot set.
func Fig12(cfg Config) error {
	cfg = cfg.withDefaults()
	cacheRatios := []float64{0.01, 0.02, 0.03, 0.05, 0.10, 0.20, 0.40}
	for _, p := range cacheProfiles() {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		t := newTable(cfg.Out, fmt.Sprintf("Figure 12 (%s): QPS vs cache ratio", p.Name))
		header := []string{"cache"}
		type variant struct {
			name  string
			strat placement.Strategy
			r     float64
		}
		variants := []variant{{"SHP", placement.StrategySHP, 0}}
		for _, r := range ratios {
			variants = append(variants, variant{
				fmt.Sprintf("ME(r=%.0f%%)", r*100), placement.StrategyMaxEmbed, r,
			})
		}
		for _, v := range variants {
			header = append(header, v.name)
		}
		t.row(header...)
		for _, cr := range cacheRatios {
			cells := []string{pct(cr)}
			for _, v := range variants {
				lay, err := buildLayout(cfg, pr, v.strat, v.r)
				if err != nil {
					return err
				}
				so := defaultServing()
				so.cacheRatio = cr
				res, err := serve(cfg, pr, lay, so)
				if err != nil {
					return err
				}
				cells = append(cells, fmt.Sprintf("%.0f", res.QPS))
			}
			t.row(cells...)
		}
		t.flush()
	}
	return nil
}

// Fig13 reproduces Figure 13: throughput without any DRAM cache across
// replication ratios 0–80% — the near-data-processing scenario. Paper:
// gains are more pronounced than with cache (1.08–1.31× already at
// r=0.2).
func Fig13(cfg Config) error {
	cfg = cfg.withDefaults()
	sweep := []float64{0, 0.10, 0.20, 0.40, 0.80}
	t := newTable(cfg.Out, "Figure 13: QPS without DRAM cache vs replication ratio")
	header := []string{"dataset"}
	for _, r := range sweep {
		header = append(header, fmt.Sprintf("r=%.0f%%", r*100))
	}
	header = append(header, "best/base")
	t.row(header...)
	for _, p := range cacheProfiles() {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		cells := []string{p.Name}
		var base, best float64
		for _, r := range sweep {
			strat := placement.StrategyMaxEmbed
			if r == 0 {
				strat = placement.StrategySHP
			}
			lay, err := buildLayout(cfg, pr, strat, r)
			if err != nil {
				return err
			}
			so := defaultServing()
			so.cacheRatio = 0
			res, err := serve(cfg, pr, lay, so)
			if err != nil {
				return err
			}
			if r == 0 {
				base = res.QPS
			}
			if res.QPS > best {
				best = res.QPS
			}
			cells = append(cells, fmt.Sprintf("%.0f", res.QPS))
		}
		cells = append(cells, fmt.Sprintf("%.2fx", best/base))
		t.row(cells...)
	}
	t.flush()
	return nil
}
