package experiments

import (
	"fmt"
	"math/rand"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
)

// CoactSweep isolates the co-activation-aware cross-SSD placement pass
// (placement.Despread). The workload is an adversarial but realistic shape
// for blind striping: each query reads the pages of one co-activation
// group, and a group's page IDs all share one residue class mod the stripe
// width, so under page-ID striping the whole query lands on a single shard.
// There its reads overlap in flash-channel latency but serialize on the
// shard's transfer bus — the resource that bounds a drive's aggregate
// bandwidth — so the query pays the full fan-out in bus slots while three
// shards sit idle. Group popularity is Zipf-skewed, as co-activating
// traffic is in production traces, which additionally concentrates
// aggregate load on the hot residue class's bus.
//
// The same layout is then despread: the co-appearance hypergraph drives a
// page-ID permutation that scatters each group's pages across shards. The
// permutation relabels pages without touching their contents, so read
// amplification — and therefore the paper's headline effective-bandwidth
// metric — is unchanged by construction; what changes is how many transfer
// buses each query's fan-out can occupy in parallel.
//
// Both placements serve the same trace closed-loop (capacity) and open-loop
// at a fixed offered load of 80% of the *blind* placement's capacity — high
// load for blind, comfortable for despread. Hard assertions (the CI smoke):
// the pass must lower the scored mean depth, the live per-query max-shard
// depth, and the open-loop p99 at that load, while pages read stay equal
// and closed-loop effective bandwidth stays within 10% — i.e. the latency
// win cannot be bought with extra reads or lost placement quality.
func CoactSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		shards       = 4
		groupPages   = 16 // pages per co-activation group, one residue class
		loadWorkers  = 16
		utilization  = 0.80
		zipfS        = 1.2
		bandwidthTol = 0.10
	)
	capacity := pageCapacityFor(cfg)

	// Sizing: groups are dealt round-robin to residue classes so every
	// shard backs the same number of groups; scale grows the group count
	// and the trace length.
	groupsPerClass := int(25 * cfg.Scale)
	if groupsPerClass < 2 {
		groupsPerClass = 2
	}
	numGroups := groupsPerClass * shards
	numPages := numGroups * groupPages
	numKeys := numPages * capacity
	numQueries := int(20000 * cfg.Scale)
	if numQueries < 600 {
		numQueries = 600
	}

	// Group g owns groupPages consecutive pages of residue class g%shards:
	// page IDs r, r+shards, r+2·shards, … — exactly the IDs blind striping
	// maps to shard r.
	groupPage := func(g, j int) int {
		r := g % shards
		chunk := g / shards
		return r + (chunk*groupPages+j)*shards
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(numGroups-1))
	queries := make([][]serving.Key, numQueries)
	for q := range queries {
		g := int(zipf.Uint64())
		keys := make([]serving.Key, groupPages)
		for j := range keys {
			p := groupPage(g, j)
			keys[j] = serving.Key(p*capacity + rng.Intn(capacity))
		}
		queries[q] = keys
	}
	split := int(float64(numQueries) * cfg.HistoryFrac)
	history, eval := queries[:split], queries[split:]

	g, err := hypergraph.FromQueries(numKeys, history)
	if err != nil {
		return fmt.Errorf("experiments: coactsweep: %w", err)
	}
	blind := layout.Vanilla(numKeys, capacity)
	despread, rep, err := placement.Despread(blind, g, shards, nil)
	if err != nil {
		return fmt.Errorf("experiments: coactsweep: %w", err)
	}

	vecBytes := embedding.BytesPerVector(cfg.Dim)
	newEngine := func(lay *layout.Layout) (*serving.Engine, error) {
		arr, err := ssd.NewArray(ssd.P5800X, shards)
		if err != nil {
			return nil, err
		}
		// No DRAM cache: reads stay identical between the placements, so
		// the depth and bandwidth comparisons are placement-only.
		return serving.New(serving.Config{
			Layout:      lay,
			Backend:     arr,
			IndexLimit:  groupPages * 2,
			Pipeline:    true,
			VectorBytes: vecBytes,
		})
	}

	type result struct {
		name   string
		closed serving.RunResult
		open   serving.OpenLoopResult
	}
	measure := func(name string, lay *layout.Layout, offered float64) (result, error) {
		e, err := newEngine(lay)
		if err != nil {
			return result{}, err
		}
		closed, err := serving.Run(e, eval, loadWorkers)
		if err != nil {
			return result{}, err
		}
		e2, err := newEngine(lay)
		if err != nil {
			return result{}, err
		}
		open, err := serving.RunOpenLoop(e2, eval, loadWorkers, offered)
		if err != nil {
			return result{}, err
		}
		return result{name: name, closed: closed, open: open}, nil
	}

	// Calibrate the offered load off the blind placement's capacity, then
	// hold it fixed for both: the question is what the same arrival rate
	// costs each placement in tail latency.
	cal, err := newEngine(blind)
	if err != nil {
		return err
	}
	calRes, err := serving.Run(cal, eval, loadWorkers)
	if err != nil {
		return err
	}
	offered := utilization * calRes.QPS

	rb, err := measure("blind striping", blind, offered)
	if err != nil {
		return err
	}
	rd, err := measure("despread", despread, offered)
	if err != nil {
		return err
	}

	t := newTable(cfg.Out, fmt.Sprintf(
		"Co-activation placement: %d groups × %d aliased pages, Zipf s=%.1f, %d×P5800X, offered %.0f QPS (%.0f%% of blind capacity)",
		numGroups, groupPages, zipfS, shards, offered, utilization*100))
	t.row("placement", "mean max-shard depth", "closed QPS", "eff MB/s", "pages read", "open p50 (µs)", "open p99 (µs)")
	for _, x := range []result{rb, rd} {
		t.row(x.name,
			fmt.Sprintf("%.2f", x.open.MeanMaxShardDepth),
			fmt.Sprintf("%.0f", x.closed.QPS),
			mbps(x.closed.EffectiveBandwidth),
			fmt.Sprint(x.open.PagesRead),
			fmt.Sprintf("%.1f", float64(x.open.Latency.P50NS)/1e3),
			fmt.Sprintf("%.1f", float64(x.open.Latency.P99NS)/1e3))
	}
	t.flush()
	fmt.Fprintf(cfg.Out,
		"\ndespread: %d/%d pages moved, %d edges scored; scored mean depth %.2f -> %.2f, max %d -> %d\n",
		rep.Moved, numPages, rep.Edges,
		rep.MeanDepthBefore, rep.MeanDepthAfter, rep.MaxDepthBefore, rep.MaxDepthAfter)

	// The CI smoke bars.
	if rep.MeanDepthAfter >= rep.MeanDepthBefore {
		return fmt.Errorf("experiments: despread did not lower scored mean depth: %.3f -> %.3f",
			rep.MeanDepthBefore, rep.MeanDepthAfter)
	}
	if rd.open.MeanMaxShardDepth >= rb.open.MeanMaxShardDepth {
		return fmt.Errorf("experiments: despread live mean max-shard depth %.3f >= blind %.3f",
			rd.open.MeanMaxShardDepth, rb.open.MeanMaxShardDepth)
	}
	if rd.open.Latency.P99NS >= rb.open.Latency.P99NS {
		return fmt.Errorf("experiments: despread open-loop p99 %.1fµs >= blind %.1fµs at %.0f QPS",
			float64(rd.open.Latency.P99NS)/1e3, float64(rb.open.Latency.P99NS)/1e3, offered)
	}
	if rd.open.PagesRead != rb.open.PagesRead {
		return fmt.Errorf("experiments: despread read %d pages vs blind %d — the permutation changed read amplification",
			rd.open.PagesRead, rb.open.PagesRead)
	}
	if diff := absf(rd.closed.EffectiveBandwidth-rb.closed.EffectiveBandwidth) / rb.closed.EffectiveBandwidth; diff > bandwidthTol {
		return fmt.Errorf("experiments: effective bandwidth moved %.0f%% (blind %.1f vs despread %.1f MB/s), want within %.0f%%",
			diff*100, rb.closed.EffectiveBandwidth/1e6, rd.closed.EffectiveBandwidth/1e6, bandwidthTol*100)
	}
	return nil
}
