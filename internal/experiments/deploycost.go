package experiments

import (
	"fmt"

	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/workload"
)

// DeployCost is a supplementary experiment: the offline cost of shipping a
// layout to the SSD. Replication trades extra space — and, quantified
// here, extra one-time write bandwidth — for steady-state read bandwidth.
// The paper prices the space (§7.3); this prices the deployment writes,
// showing they amortize in seconds-to-minutes of serving.
func DeployCost(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable(cfg.Out, "Deployment cost (supplementary): one-time page writes per layout")
	t.row("dataset", "strategy", "pages", "GB written", "write time", "reads to amortize")
	for _, p := range []workload.Profile{workload.AlibabaIFashion, workload.Criteo} {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		for _, v := range []struct {
			name  string
			strat placement.Strategy
			r     float64
		}{
			{"SHP", placement.StrategySHP, 0},
			{"ME(r=10%)", placement.StrategyMaxEmbed, 0.10},
			{"ME(r=80%)", placement.StrategyMaxEmbed, 0.80},
		} {
			lay, err := buildLayout(cfg, pr, v.strat, v.r)
			if err != nil {
				return err
			}
			dev, err := ssd.NewDevice(ssd.P5800X)
			if err != nil {
				return err
			}
			var done int64
			for page := 0; page < lay.NumPages(); page++ {
				if c := dev.Write(ssd.PageID(page), 0); c > done {
					done = c
				}
			}
			prof := dev.Profile()
			bytes := float64(lay.NumPages()) * float64(prof.PageSize)
			// Extra pages vs the SHP baseline, expressed as the number of
			// saved page reads needed to pay back the write time (reads
			// and writes contend for the same bus).
			extraPages := lay.NumPages() - (lay.NumKeys+lay.Capacity-1)/lay.Capacity
			t.row(p.Name, v.name,
				fmt.Sprintf("%d", lay.NumPages()),
				fmt.Sprintf("%.2f", bytes/1e9),
				fmt.Sprintf("%.1f ms", float64(done)/1e6),
				fmt.Sprintf("%d", extraPages*2)) // write slot ≈ 2 read slots
		}
	}
	t.flush()
	return nil
}
