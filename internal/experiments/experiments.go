// Package experiments regenerates every table and figure of the paper's
// evaluation (§8). Each experiment is a named driver that runs the full
// pipeline — synthetic trace generation, offline placement, online serving
// on the simulated device — and prints the same rows/series the paper
// reports. Absolute numbers differ from the paper's testbed (the device is
// a calibrated simulation and the datasets are scaled synthetics); the
// comparisons and trends are the reproduction target. See DESIGN.md §6 for
// the experiment index and EXPERIMENTS.md for recorded results.
package experiments

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/workload"
)

// Config controls the scale and environment of an experiment run.
type Config struct {
	// Out receives the experiment's table output.
	Out io.Writer
	// Scale multiplies the built-in dataset profile sizes (1.0 = the
	// scaled defaults documented in DESIGN.md; go test benches use much
	// smaller values).
	Scale float64
	// Workers is the number of closed-loop serving workers (paper: 8).
	Workers int
	// HistoryFrac splits each trace into partitioning history and
	// serving evaluation portions.
	HistoryFrac float64
	// Dim is the embedding dimension (paper default 64).
	Dim int
	// PageSize is the SSD page size in bytes.
	PageSize int
	// Seed drives all randomized stages.
	Seed int64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.HistoryFrac <= 0 || c.HistoryFrac >= 1 {
		c.HistoryFrac = 0.5
	}
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Experiment is one reproducible table/figure driver.
type Experiment struct {
	// ID is the registry key, e.g. "fig8" or "table1".
	ID string
	// Title is the paper artifact it reproduces.
	Title string
	// Run executes the experiment and prints its result table.
	Run func(cfg Config) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table3", "Table 3: dataset information", Table3},
		{"motivation", "§3 analysis: co-appearance exceeds page capacity", Motivation},
		{"fig3", "Figure 3: effective bandwidth, vanilla vs SHP", Fig3},
		{"table1", "Table 1: partition time", Table1},
		{"fig8", "Figure 8: effective bandwidth vs replication ratio", Fig8},
		{"fig9", "Figure 9: CDF of valid embeddings per read", Fig9},
		{"fig10", "Figure 10: end-to-end throughput", Fig10},
		{"fig11", "Figure 11: end-to-end latency", Fig11},
		{"fig12", "Figure 12: throughput under different cache ratios", Fig12},
		{"fig13", "Figure 13: throughput without cache", Fig13},
		{"fig14", "Figure 14: comparison of replication strategies", Fig14},
		{"fig15", "Figure 15: time breakdown of an online query", Fig15},
		{"fig16", "Figure 16: impact of index shrinking", Fig16},
		{"fig17a", "Figure 17a: sensitivity to embedding dimension", Fig17a},
		{"fig17b", "Figure 17b: sensitivity to SSD type", Fig17b},
		{"table2", "Table 2: TCO estimation", Table2},
		{"ablation", "Ablation: online selection design choices (§6)", Ablation},
		{"loadcurve", "Supplementary: open-loop tail latency vs offered load", LoadCurve},
		{"deploycost", "Supplementary: one-time write cost of deploying a layout", DeployCost},
		{"partitioners", "Supplementary: SHP vs label-propagation partitioning", Partitioners},
		{"scaleout", "Supplementary: sharded multi-device serving", ScaleOut},
		{"shardsweep", "Supplementary: RAID-0 device-array scaling (§7)", ShardSweep},
		{"faultsweep", "Supplementary: fault injection, recovery, and graceful degradation", FaultSweep},
		{"batchsweep", "Supplementary: cross-request micro-batching vs batch size", BatchSweep},
		{"refreshsweep", "Supplementary: online layout refresh and hot swap under drift", RefreshSweep},
		{"rebuildsweep", "Supplementary: shard failure, live rebuild onto the hot spare, and scrubbing", RebuildSweep},
		{"tiersweep", "Supplementary: hotness-tiered memory hierarchy at equal TCO", TierSweep},
		{"coactsweep", "Supplementary: co-activation-aware cross-SSD placement vs blind striping", CoactSweep},
		{"hwsweep", "Supplementary: real async I/O backend vs simulator, with hard host-overhead and scaling budgets", HWSweep},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// prepared bundles everything derived from one dataset profile.
type prepared struct {
	profile workload.Profile
	history *workload.Trace
	eval    *workload.Trace
	graph   *hypergraph.Graph
}

// layoutKey memoizes placements: SHP partitioning dominates experiment
// time and several figures share (profile, strategy, ratio, dim) points.
type layoutKey struct {
	profile  string
	scale    float64
	strategy placement.Strategy
	ratio    float64
	dim      int
	seed     int64
	shards   int
}

type prepKey struct {
	profile string
	scale   float64
	seed    int64
}

var (
	memoMu   sync.Mutex
	prepMemo = map[prepKey]*prepared{}
	layMemo  = map[layoutKey]*layout.Layout{}
)

// ResetMemo clears the cross-experiment memo caches (used by tests).
func ResetMemo() {
	memoMu.Lock()
	defer memoMu.Unlock()
	prepMemo = map[prepKey]*prepared{}
	layMemo = map[layoutKey]*layout.Layout{}
}

// prepare generates (or recalls) the trace and hypergraph of a profile.
func prepare(cfg Config, p workload.Profile) (*prepared, error) {
	key := prepKey{p.Name, cfg.Scale, cfg.Seed}
	memoMu.Lock()
	if pr, ok := prepMemo[key]; ok {
		memoMu.Unlock()
		return pr, nil
	}
	memoMu.Unlock()

	scaled := p
	if cfg.Scale != 1.0 {
		scaled = p.Scaled(cfg.Scale)
	}
	tr, err := workload.GenerateSeeded(scaled, scaled.Seed+cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", p.Name, err)
	}
	history, eval := tr.Split(cfg.HistoryFrac)
	g, err := hypergraph.FromQueries(tr.NumItems, history.Queries)
	if err != nil {
		return nil, fmt.Errorf("experiments: hypergraph %s: %w", p.Name, err)
	}
	pr := &prepared{profile: scaled, history: history, eval: eval, graph: g}
	memoMu.Lock()
	prepMemo[key] = pr
	memoMu.Unlock()
	return pr, nil
}

// buildLayout produces (or recalls) a placement for the profile.
func buildLayout(cfg Config, pr *prepared, strat placement.Strategy, ratio float64) (*layout.Layout, error) {
	return buildLayoutOn(cfg, pr, strat, ratio, 1)
}

// buildLayoutOn is buildLayout for a layout striped over the given number
// of device shards (shard-aware replica placement when shards > 1).
func buildLayoutOn(cfg Config, pr *prepared, strat placement.Strategy, ratio float64, shards int) (*layout.Layout, error) {
	key := layoutKey{pr.profile.Name, cfg.Scale, strat, ratio, cfg.Dim, cfg.Seed, shards}
	memoMu.Lock()
	if l, ok := layMemo[key]; ok {
		memoMu.Unlock()
		return l, nil
	}
	memoMu.Unlock()

	capacity := embedding.PageCapacity(cfg.PageSize, cfg.Dim)
	lay, err := placement.Build(strat, pr.graph, placement.Options{
		Capacity:         capacity,
		ReplicationRatio: ratio,
		Seed:             cfg.Seed,
		Shards:           shards,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s placement for %s: %w", strat, pr.profile.Name, err)
	}
	memoMu.Lock()
	layMemo[key] = lay
	memoMu.Unlock()
	return lay, nil
}

// servingOpts configures one serving run.
type servingOpts struct {
	device     ssd.Profile
	devices    int     // stripe over this many devices (≤1 = single)
	cacheRatio float64 // fraction of the key space; 0 disables
	indexLimit int
	pipeline   bool
	greedy     bool
	warm       bool // pre-warm the cache with the history trace
}

func defaultServing() servingOpts {
	return servingOpts{
		device:     ssd.P5800X,
		cacheRatio: 0.10,
		indexLimit: 10,
		pipeline:   true,
		warm:       true,
	}
}

// serve runs the eval trace through a timing-only engine over the layout.
func serve(cfg Config, pr *prepared, lay *layout.Layout, so servingOpts) (serving.RunResult, error) {
	cacheEntries := int(so.cacheRatio * float64(lay.NumKeys))
	engCfg := serving.Config{
		Layout:       lay,
		CacheEntries: cacheEntries,
		IndexLimit:   so.indexLimit,
		Pipeline:     so.pipeline,
		Greedy:       so.greedy,
		VectorBytes:  embedding.BytesPerVector(cfg.Dim),
	}
	if so.devices > 1 {
		arr, err := ssd.NewArray(so.device, so.devices)
		if err != nil {
			return serving.RunResult{}, err
		}
		engCfg.Backend = arr
	} else {
		dev, err := ssd.NewDevice(so.device)
		if err != nil {
			return serving.RunResult{}, err
		}
		engCfg.Device = dev
	}
	eng, err := serving.New(engCfg)
	if err != nil {
		return serving.RunResult{}, err
	}
	if so.warm && cacheEntries > 0 {
		if err := eng.WarmCache(pr.history.Queries); err != nil {
			return serving.RunResult{}, err
		}
	}
	return serving.Run(eng, pr.eval.Queries, cfg.Workers)
}

// table is a small helper for aligned output.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer, title string) *table {
	fmt.Fprintf(out, "\n=== %s ===\n", title)
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// overallProfiles is the figure order the paper uses.
func overallProfiles() []workload.Profile {
	return []workload.Profile{
		workload.AlibabaIFashion,
		workload.AmazonM2,
		workload.Avazu,
		workload.Criteo,
		workload.CriteoTB,
	}
}

// ratios is the replication-ratio sweep of Figs 8/10/11.
var ratios = []float64{0.10, 0.20, 0.40, 0.80}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// pageCapacityFor returns d for the run's page size and dimension.
func pageCapacityFor(cfg Config) int {
	return embedding.PageCapacity(cfg.PageSize, cfg.Dim)
}

func mbps(bytesPerSec float64) string { return fmt.Sprintf("%.1f", bytesPerSec/1e6) }
