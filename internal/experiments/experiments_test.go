package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig shrinks every experiment far enough for unit-test budgets.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:     buf,
		Scale:   0.02,
		Workers: 2,
		Seed:    1,
	}
}

func TestAllExperimentsRun(t *testing.T) {
	ResetMemo()
	t.Cleanup(ResetMemo)
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyConfig(&buf)); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "===") {
				t.Errorf("%s produced no table header:\n%s", e.ID, out)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Errorf("%s produced fewer than 3 output lines:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig8"); !ok {
		t.Error("fig8 not registered")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	// One experiment per paper evaluation artifact.
	for _, want := range []string{
		"fig3", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17a", "fig17b",
		"table1", "table2", "table3",
	} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != 8 || c.Dim != 64 || c.PageSize != 4096 {
		t.Errorf("defaults = %+v", c)
	}
	if c.Scale != 1.0 || c.HistoryFrac != 0.5 || c.Seed != 1 {
		t.Errorf("defaults = %+v", c)
	}
	if c.Out == nil {
		t.Error("Out not defaulted")
	}
}

func TestMemoReuse(t *testing.T) {
	ResetMemo()
	t.Cleanup(ResetMemo)
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	pr1, err := prepare(cfg, overallProfiles()[0])
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := prepare(cfg, overallProfiles()[0])
	if err != nil {
		t.Fatal(err)
	}
	if pr1 != pr2 {
		t.Error("prepare did not memoize")
	}
	l1, err := buildLayout(cfg, pr1, "shp", 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := buildLayout(cfg, pr1, "shp", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Error("buildLayout did not memoize")
	}
}

// TestExperimentDeterminism guards the virtual-clock design goal: the same
// experiment run twice produces byte-identical output.
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"fig9", "fig13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		var a, b bytes.Buffer
		ResetMemo()
		if err := e.Run(tinyConfig(&a)); err != nil {
			t.Fatal(err)
		}
		ResetMemo()
		if err := e.Run(tinyConfig(&b)); err != nil {
			t.Fatal(err)
		}
		ResetMemo()
		if a.String() != b.String() {
			t.Errorf("%s output differs across runs:\n%s\n---\n%s", id, a.String(), b.String())
		}
	}
}
