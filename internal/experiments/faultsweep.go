package experiments

import (
	"fmt"

	"maxembed/internal/embedding"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// FaultSweep stresses the serving path under injected device faults and
// reports how far recovery carries it: read errors, stuck commands, and
// silent payload corruption are injected at increasing rates, and the
// table shows recovery reads, replica rescues, checksum detections, and —
// the headline — how many queries degraded to partial results. With a
// replicated layout every fault should be absorbed (failed keys = 0,
// rescues > 0); the no-replication row shows the same fault rate forcing
// partial results, which is the availability argument for replication
// beyond its bandwidth benefits (§5).
func FaultSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, overallProfiles()[0])
	if err != nil {
		return err
	}
	syn, err := embedding.NewSynthesizer(cfg.Dim, cfg.Seed)
	if err != nil {
		return err
	}

	t := newTable(cfg.Out, "Fault sweep: injected device faults vs recovery")
	t.row("fault rate", "replicas", "dev faults", "retries", "rescued", "corrupt det",
		"degraded", "failed keys", "valid/read", "p99 µs")
	type point struct {
		rate  float64
		ratio float64
	}
	points := []point{
		{0, 0.40},
		{0.005, 0.40},
		{0.01, 0.40},
		{0.02, 0.40},
		{0.05, 0.40},
		{0.01, 0}, // no replicas: same faults, nowhere to rescue from
	}
	for _, pt := range points {
		lay, err := buildLayout(cfg, pr, "maxembed", pt.ratio)
		if err != nil {
			return err
		}
		st, err := store.Build(lay, syn, cfg.PageSize)
		if err != nil {
			return err
		}
		dev, err := ssd.NewDevice(ssd.P5800X)
		if err != nil {
			return err
		}
		// Split the rate across the three fault classes so every recovery
		// path (retry, replica read, checksum detection) gets exercised.
		dev.SetFaultModel(ssd.NewInjector(ssd.InjectorConfig{
			Seed:          cfg.Seed,
			ReadErrorProb: pt.rate / 2,
			TimeoutProb:   pt.rate / 4,
			CorruptProb:   pt.rate / 4,
		}))
		eng, err := serving.New(serving.Config{
			Layout:   lay,
			Device:   dev,
			Store:    st,
			Pipeline: true,
		})
		if err != nil {
			return err
		}
		res, err := serving.Run(eng, pr.eval.Queries, cfg.Workers)
		if err != nil {
			return err
		}
		ds := dev.Stats()
		replicas := "yes"
		if pt.ratio == 0 {
			replicas = "no"
		}
		t.row(pct(pt.rate), replicas,
			fmt.Sprint(ds.Faults()),
			fmt.Sprint(res.Retries),
			fmt.Sprint(res.ReplicaRescues),
			fmt.Sprint(res.Corruptions),
			fmt.Sprint(res.DegradedQueries),
			fmt.Sprint(res.FailedKeys),
			fmt.Sprintf("%.2f", res.MeanValidPerRead),
			fmt.Sprintf("%.1f", float64(res.Latency.P99NS)/1e3))
	}
	t.flush()
	return nil
}
