package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"maxembed/internal/embedding"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// Hard budgets the sweep enforces. They are deliberately generous — the
// point is to catch structural regressions (per-read allocation storms,
// serialized I/O, a copy sneaking back into the hot path), not to bench
// the CI machine.
const (
	// hwHostBudgetNS bounds mean wall-clock time per page read of the
	// closed-loop file-backend run: submit + syscall + checksum verify +
	// ref assembly + accounting. Page-cache reads sit around 5–50µs and
	// real NVMe under 200µs, so 1ms of slack only trips on pathology.
	hwHostBudgetNS = 1_000_000
	// hwScalingFloor is the minimum throughput ratio widening the pread
	// pool must preserve: more workers may not help on a loaded single
	//-core runner, but they must never collapse throughput.
	hwScalingFloor = 0.5
)

// HWSweep is the real-hardware smoke sweep: the same trace and layout are
// served by the simulated device model and by the asynchronous file
// backend (io_uring or pread pool over O_DIRECT files where the filesystem
// allows), and the two runs are held to hard invariants rather than eyeballed:
//
//   - page-read parity — selection is deterministic and cacheless, so the
//     file run must read exactly the pages the simulator run reads;
//   - zero failed keys — real I/O must serve every key the layout holds;
//   - host overhead per read under budget (hwHostBudgetNS);
//   - pool-worker scaling — widening the pread pool must not collapse raw
//     read throughput (hwScalingFloor).
//
// Point the sweep's directory at an NVMe filesystem (MAXEMBED_HWSWEEP_DIR)
// to turn it into a real-hardware measurement; by default it runs on a
// temp dir, where page-cache service still exercises every code path.
func HWSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, overallProfiles()[0])
	if err != nil {
		return err
	}
	lay, err := buildLayout(cfg, pr, placement.StrategyMaxEmbed, 0.40)
	if err != nil {
		return err
	}
	syn, err := embedding.NewSynthesizer(cfg.Dim, cfg.Seed)
	if err != nil {
		return err
	}
	st, err := store.Build(lay, syn, cfg.PageSize)
	if err != nil {
		return err
	}

	dir := os.Getenv("MAXEMBED_HWSWEEP_DIR")
	if dir == "" {
		dir, err = os.MkdirTemp("", "maxembed-hwsweep-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, "shard000.bin")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := st.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Part 1: engine-level comparison, simulator vs file backend, on
	// identical queries with identical layouts and no cache.
	t := newTable(cfg.Out, "Hardware sweep: simulated device vs real async I/O (maxembed, 40% replicas, no cache)")
	t.row("backend", "executor", "direct", "pages read", "failed", "wall ms", "host µs/read", "read p-mean µs")

	dev, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		return err
	}
	simEng, err := serving.New(serving.Config{
		Layout: lay, Device: dev, Store: st, IndexLimit: 10, Pipeline: true,
	})
	if err != nil {
		return err
	}
	simRes, err := serving.Run(simEng, pr.eval.Queries, cfg.Workers)
	if err != nil {
		return err
	}
	t.row("simulated", "model", "-",
		fmt.Sprint(simRes.PagesRead), fmt.Sprint(simRes.FailedKeys), "-", "-", "-")

	fs, _, err := store.OpenFileAuto(path)
	if err != nil {
		return err
	}
	fb, err := ssd.NewFileBackend([]*store.FileStore{fs}, ssd.FileBackendConfig{})
	if err != nil {
		return err
	}
	fileEng, err := serving.New(serving.Config{
		Layout: lay, Backend: fb, Store: st, IndexLimit: 10, Pipeline: true,
	})
	if err != nil {
		fb.Close()
		return err
	}
	start := time.Now()
	fileRes, err := serving.Run(fileEng, pr.eval.Queries, cfg.Workers)
	wall := time.Since(start)
	if err != nil {
		fb.Close()
		return err
	}
	lat := fb.ShardReadLatency(0)
	var meanReadNS float64
	if lat.Count > 0 {
		meanReadNS = float64(lat.SumNS) / float64(lat.Count)
	}
	hostNSPerRead := float64(wall.Nanoseconds()) / float64(max64(fileRes.PagesRead, 1))
	t.row("file", fb.ExecutorKind(), fmt.Sprint(fb.Direct()),
		fmt.Sprint(fileRes.PagesRead), fmt.Sprint(fileRes.FailedKeys),
		fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/1e6),
		fmt.Sprintf("%.1f", hostNSPerRead/1e3),
		fmt.Sprintf("%.1f", meanReadNS/1e3))
	t.flush()

	// Hard invariants. An experiment that fails here fails the run — they
	// double as the CI bench-smoke assertions.
	if fileRes.PagesRead != simRes.PagesRead {
		fb.Close()
		return fmt.Errorf("hwsweep: page-read parity broken: file backend read %d pages, simulator %d (same trace, same layout, no cache)",
			fileRes.PagesRead, simRes.PagesRead)
	}
	if fileRes.FailedKeys != 0 || simRes.FailedKeys != 0 {
		fb.Close()
		return fmt.Errorf("hwsweep: failed keys on a fault-free run: file %d, sim %d",
			fileRes.FailedKeys, simRes.FailedKeys)
	}
	if hostNSPerRead > hwHostBudgetNS {
		fb.Close()
		return fmt.Errorf("hwsweep: host overhead %.1fµs per read exceeds the %.0fµs budget",
			hostNSPerRead/1e3, float64(hwHostBudgetNS)/1e3)
	}
	if lat.Count == 0 {
		fb.Close()
		return fmt.Errorf("hwsweep: file backend recorded no measured read latency over %d reads", fileRes.PagesRead)
	}
	if err := fb.Close(); err != nil {
		return err
	}

	// Part 2: raw read throughput vs pread-pool width, straight through a
	// queue pair (no serving layer) so the sweep isolates the executor.
	t2 := newTable(cfg.Out, "Pool-worker scaling: raw page reads through the pread executor")
	t2.row("workers", "reads", "wall ms", "MB/s", "vs 1 worker")
	var base float64
	var tputs []float64
	widths := []int{1, 2, 4}
	for _, workers := range widths {
		tput, reads, wallMS, err := hwPoolThroughput(path, workers, cfg.PageSize)
		if err != nil {
			return err
		}
		ratio := "-"
		if base == 0 {
			base = tput
		} else {
			ratio = pct(tput / base)
		}
		tputs = append(tputs, tput)
		t2.row(fmt.Sprint(workers), fmt.Sprint(reads),
			fmt.Sprintf("%.1f", wallMS), fmt.Sprintf("%.0f", tput/1e6), ratio)
	}
	t2.flush()
	for i, tput := range tputs {
		if tput < base*hwScalingFloor {
			return fmt.Errorf("hwsweep: %d pool workers collapsed throughput to %.0f%% of 1 worker (floor %.0f%%)",
				widths[i], 100*tput/base, 100*hwScalingFloor)
		}
	}
	return nil
}

// hwPoolThroughput reads every page of the store file several times at a
// fixed queue depth through a pread pool of the given width and returns
// (bytes/sec, reads, wall ms).
func hwPoolThroughput(path string, workers, pageSize int) (float64, int64, float64, error) {
	fs, _, err := store.OpenFileAuto(path)
	if err != nil {
		return 0, 0, 0, err
	}
	fb, err := ssd.NewFileBackend([]*store.FileStore{fs}, ssd.FileBackendConfig{
		ForcePread:  true,
		PoolWorkers: workers,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer fb.Close()
	const depth, passes = 16, 3
	q := fb.NewQueuePair()
	n := fb.NumPages()
	var reads int64
	var now int64
	start := time.Now()
	for pass := 0; pass < passes; pass++ {
		inflight := 0
		for p := 0; p < n; p++ {
			now = q.Submit(ssd.PageID(p), now)
			inflight++
			if inflight == depth {
				done, comps := q.Drain(now)
				now = done
				for _, c := range comps {
					if c.Err != nil {
						return 0, 0, 0, fmt.Errorf("hwsweep: page %d: %w", c.Page, c.Err)
					}
					reads++
					if c.Buf != nil {
						c.Buf.Release()
					}
				}
				inflight = 0
			}
		}
		done, comps := q.Drain(now)
		now = done
		for _, c := range comps {
			if c.Err != nil {
				return 0, 0, 0, fmt.Errorf("hwsweep: page %d: %w", c.Page, c.Err)
			}
			reads++
			if c.Buf != nil {
				c.Buf.Release()
			}
		}
	}
	wall := time.Since(start)
	tput := float64(reads) * float64(pageSize) / wall.Seconds()
	return tput, reads, float64(wall.Nanoseconds()) / 1e6, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
