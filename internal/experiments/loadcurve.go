package experiments

import (
	"fmt"

	"maxembed/internal/embedding"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/workload"
)

// LoadCurve is a supplementary experiment beyond the paper's figures: the
// serving view of MaxEmbed's gain. Queries arrive open-loop at a fixed
// offered rate; tail latency stays flat until the system's capacity knee
// and then grows without bound. Because replication cuts page reads per
// query, the MaxEmbed deployment's knee sits at a higher offered load than
// the SHP baseline's — the same +x% that Fig 10 reports as closed-loop
// throughput, seen as SLO headroom.
func LoadCurve(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.Criteo)
	if err != nil {
		return err
	}
	type variant struct {
		name  string
		strat placement.Strategy
		r     float64
	}
	variants := []variant{
		{"SHP", placement.StrategySHP, 0},
		{"ME(r=80%)", placement.StrategyMaxEmbed, 0.80},
	}
	engines := make(map[string]*serving.Engine, len(variants))
	var baseCapacity float64
	for _, v := range variants {
		lay, err := buildLayout(cfg, pr, v.strat, v.r)
		if err != nil {
			return err
		}
		dev, err := ssd.NewDevice(ssd.P5800X)
		if err != nil {
			return err
		}
		eng, err := serving.New(serving.Config{
			Layout:       lay,
			Device:       dev,
			CacheEntries: lay.NumKeys / 10,
			IndexLimit:   10,
			Pipeline:     true,
			VectorBytes:  embedding.BytesPerVector(cfg.Dim),
		})
		if err != nil {
			return err
		}
		if err := eng.WarmCache(pr.history.Queries); err != nil {
			return err
		}
		engines[v.name] = eng
		if v.name == "SHP" {
			// Closed-loop capacity of the baseline anchors the sweep.
			res, err := serving.Run(eng, pr.eval.Queries, cfg.Workers)
			if err != nil {
				return err
			}
			baseCapacity = res.QPS
		}
	}

	t := newTable(cfg.Out, "Load curve (supplementary): p99 latency (µs) vs offered load, Criteo")
	t.row("offered / SHP capacity", "SHP p99", "ME(r=80%) p99", "SHP sat.", "ME sat.")
	for _, frac := range []float64{0.50, 0.70, 0.85, 0.95, 1.05} {
		offered := frac * baseCapacity
		cells := []string{fmt.Sprintf("%.0f%% (%.0f qps)", frac*100, offered)}
		sat := map[string]bool{}
		for _, v := range variants {
			res, err := serving.RunOpenLoop(engines[v.name], pr.eval.Queries, cfg.Workers, offered)
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%.1f", float64(res.Latency.P99NS)/1e3))
			sat[v.name] = res.Saturated
		}
		cells = append(cells, fmt.Sprintf("%v", sat["SHP"]), fmt.Sprintf("%v", sat["ME(r=80%)"]))
		t.row(cells...)
	}
	t.flush()
	return nil
}
