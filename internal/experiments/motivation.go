package experiments

import "fmt"

// Motivation reproduces the §3 analysis that justifies replication: the
// hottest embeddings naturally co-appear with far more distinct neighbours
// than one SSD page holds (the paper cites >40 co-appearing embeddings for
// CriteoTB's top 5% versus 8–32 embeddings per page), so any single-copy
// placement must sever most of a hot key's combinations.
func Motivation(cfg Config) error {
	cfg = cfg.withDefaults()
	capacity := pageCapacityFor(cfg)
	t := newTable(cfg.Out, "§3 motivation: co-appearing neighbours of the hottest 5% of keys")
	t.row("dataset", "median (hot 5%)", "mean (hot 5%)", fmt.Sprintf("> %d neighbours", 2*capacity),
		"median (all)", "page capacity d")
	for _, p := range overallProfiles() {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		st := pr.graph.ComputeMotivationStats(0.05, 2*capacity)
		t.row(p.Name,
			fmt.Sprintf("%d", st.MedianHotCoAppear),
			fmt.Sprintf("%.1f", st.MeanHotCoAppear),
			pct(st.FracHotAbove),
			fmt.Sprintf("%d", st.MedianAllCoAppear),
			fmt.Sprintf("%d", capacity))
	}
	t.flush()
	return nil
}
