package experiments

import (
	"fmt"

	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
)

// Fig3 reproduces Figure 3: SSD effective bandwidth under vanilla and
// SHP-partitioned placement (no replication). The paper observes SHP
// improves effective bandwidth 1.1×–2.2× but still leaves it far below the
// device cap (~8.58% utilization on Criteo).
func Fig3(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable(cfg.Out, "Figure 3: effective bandwidth, vanilla vs SHP (no cache)")
	t.row("dataset", "vanilla MB/s", "vanilla util", "SHP MB/s", "SHP util", "SHP/vanilla")
	so := defaultServing()
	so.cacheRatio = 0 // Fig 3 isolates placement: no DRAM cache
	for _, p := range overallProfiles() {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		res := map[placement.Strategy]serving.RunResult{}
		for _, s := range []placement.Strategy{placement.StrategyVanilla, placement.StrategySHP} {
			lay, err := buildLayout(cfg, pr, s, 0)
			if err != nil {
				return err
			}
			r, err := serve(cfg, pr, lay, so)
			if err != nil {
				return err
			}
			res[s] = r
		}
		v, s := res[placement.StrategyVanilla], res[placement.StrategySHP]
		t.row(p.Name,
			mbps(v.EffectiveBandwidth), pct(v.Utilization),
			mbps(s.EffectiveBandwidth), pct(s.Utilization),
			fmt.Sprintf("%.2fx", s.EffectiveBandwidth/v.EffectiveBandwidth))
	}
	t.flush()
	return nil
}

// overallRow is one (dataset, ratio) measurement shared by Figs 8/10/11.
type overallRow struct {
	base serving.RunResult             // SHP baseline
	me   map[float64]serving.RunResult // MaxEmbed per ratio
}

func overallSweep(cfg Config) (map[string]overallRow, error) {
	out := map[string]overallRow{}
	so := defaultServing()
	for _, p := range overallProfiles() {
		pr, err := prepare(cfg, p)
		if err != nil {
			return nil, err
		}
		baseLay, err := buildLayout(cfg, pr, placement.StrategySHP, 0)
		if err != nil {
			return nil, err
		}
		base, err := serve(cfg, pr, baseLay, so)
		if err != nil {
			return nil, err
		}
		row := overallRow{base: base, me: map[float64]serving.RunResult{}}
		for _, r := range ratios {
			lay, err := buildLayout(cfg, pr, placement.StrategyMaxEmbed, r)
			if err != nil {
				return nil, err
			}
			res, err := serve(cfg, pr, lay, so)
			if err != nil {
				return nil, err
			}
			row.me[r] = res
		}
		out[p.Name] = row
	}
	return out, nil
}

// Fig8 reproduces Figure 8: effective bandwidth normalized to the SHP
// baseline across replication ratios (cache 10%). Paper: +2%–10% at r=10%,
// +7%–19% at r=80%, with shopping datasets gaining most.
func Fig8(cfg Config) error {
	cfg = cfg.withDefaults()
	sweep, err := overallSweep(cfg)
	if err != nil {
		return err
	}
	t := newTable(cfg.Out, "Figure 8: normalized effective bandwidth (SHP = 100%)")
	t.row("dataset", "SHP", "ME(r=10%)", "ME(r=20%)", "ME(r=40%)", "ME(r=80%)")
	for _, p := range overallProfiles() {
		row := sweep[p.Name]
		cells := []string{p.Name, "100.0%"}
		for _, r := range ratios {
			cells = append(cells, pct(row.me[r].EffectiveBandwidth/row.base.EffectiveBandwidth))
		}
		t.row(cells...)
	}
	t.flush()
	return nil
}

// Fig10 reproduces Figure 10: end-to-end throughput normalized to SHP.
// Paper: +1.7%–8.8% at r=10%, +8.9%–18.7% at r=80%.
func Fig10(cfg Config) error {
	cfg = cfg.withDefaults()
	sweep, err := overallSweep(cfg)
	if err != nil {
		return err
	}
	t := newTable(cfg.Out, "Figure 10: normalized end-to-end throughput (SHP = 100%)")
	t.row("dataset", "SHP QPS", "ME(r=10%)", "ME(r=20%)", "ME(r=40%)", "ME(r=80%)")
	for _, p := range overallProfiles() {
		row := sweep[p.Name]
		cells := []string{p.Name, fmt.Sprintf("%.0f", row.base.QPS)}
		for _, r := range ratios {
			cells = append(cells, pct(row.me[r].QPS/row.base.QPS))
		}
		t.row(cells...)
	}
	t.flush()
	return nil
}

// Fig11 reproduces Figure 11: end-to-end mean latency normalized to SHP.
// Paper: −2%–7.4% at r=10%, −10%–14.8% at r=80%.
func Fig11(cfg Config) error {
	cfg = cfg.withDefaults()
	sweep, err := overallSweep(cfg)
	if err != nil {
		return err
	}
	t := newTable(cfg.Out, "Figure 11: normalized end-to-end latency (SHP = 100%)")
	t.row("dataset", "SHP mean µs", "ME(r=10%)", "ME(r=20%)", "ME(r=40%)", "ME(r=80%)")
	for _, p := range overallProfiles() {
		row := sweep[p.Name]
		cells := []string{p.Name, fmt.Sprintf("%.1f", row.base.Latency.MeanNS/1e3)}
		for _, r := range ratios {
			cells = append(cells, pct(row.me[r].Latency.MeanNS/row.base.Latency.MeanNS))
		}
		t.row(cells...)
	}
	t.flush()
	return nil
}

// Fig9 reproduces Figure 9: the distribution (CDF) of valid embeddings
// obtained per page read on Criteo, SHP vs MaxEmbed r=10%, without cache.
// Paper: the mean rises from 3.59 to 4.79 and single-valid-embedding reads
// drop sharply.
func Fig9(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, overallProfiles()[3]) // Criteo
	if err != nil {
		return err
	}
	so := defaultServing()
	so.cacheRatio = 0

	t := newTable(cfg.Out, "Figure 9: valid embeddings per read, Criteo (no cache)")
	t.row("valid/read", "SHP CDF", "ME(r=10%) CDF")
	shp, shpMean, err := validPerReadCDF(cfg, pr, placement.StrategySHP, 0, so)
	if err != nil {
		return err
	}
	me, meMean, err := validPerReadCDF(cfg, pr, placement.StrategyMaxEmbed, 0.10, so)
	if err != nil {
		return err
	}
	max := len(shp)
	if len(me) > max {
		max = len(me)
	}
	at := func(cdf []float64, i int) string {
		if i < len(cdf) {
			return pct(cdf[i])
		}
		return "100.0%"
	}
	for v := 1; v < max; v++ {
		t.row(fmt.Sprintf("%d", v), at(shp, v), at(me, v))
	}
	t.row("mean", fmt.Sprintf("%.2f", shpMean), fmt.Sprintf("%.2f", meMean))
	t.flush()
	return nil
}

// validPerReadCDF runs serving and returns the Fig 9 histogram CDF.
func validPerReadCDF(cfg Config, pr *prepared, strat placement.Strategy, ratio float64, so servingOpts) ([]float64, float64, error) {
	lay, err := buildLayout(cfg, pr, strat, ratio)
	if err != nil {
		return nil, 0, err
	}
	dev, err := ssd.NewDevice(so.device)
	if err != nil {
		return nil, 0, err
	}
	eng, err := serving.New(serving.Config{
		Layout:      lay,
		Device:      dev,
		IndexLimit:  so.indexLimit,
		Pipeline:    so.pipeline,
		VectorBytes: 4 * cfg.Dim,
	})
	if err != nil {
		return nil, 0, err
	}
	if _, err := serving.Run(eng, pr.eval.Queries, cfg.Workers); err != nil {
		return nil, 0, err
	}
	return eng.ValidPerRead.CDF(), eng.ValidPerRead.Mean(), nil
}
