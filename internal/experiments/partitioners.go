package experiments

import (
	"fmt"
	"time"

	"maxembed/internal/embedding"
	"maxembed/internal/placement"
	"maxembed/internal/workload"
)

// Partitioners is a supplementary experiment comparing base partitioning
// algorithms for the offline phase: the paper's SHP versus size-
// constrained label propagation (LPA), each with and without MaxEmbed's
// replication on top (r=40%). It reports the quality the online phase
// sees — effective bandwidth — and the offline wall time, the trade the
// paper's Table 1 raises for hours-scale datasets.
func Partitioners(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable(cfg.Out, "Partitioner comparison (supplementary): SHP vs label propagation")
	t.row("dataset", "partitioner", "partition time", "eff bw r=0 (MB/s)", "eff bw ME(r=40%)")
	so := defaultServing()
	for _, p := range []workload.Profile{workload.AlibabaIFashion, workload.Criteo} {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		for _, part := range []struct {
			name string
			id   placement.Partitioner
		}{
			{"SHP", placement.PartitionerSHP},
			{"LPA", placement.PartitionerLPA},
		} {
			opts := placement.Options{
				Capacity:    embedding.PageCapacity(cfg.PageSize, cfg.Dim),
				Seed:        cfg.Seed,
				Partitioner: part.id,
			}
			start := time.Now()
			base, err := placement.SHP(pr.graph, opts)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			baseRes, err := serve(cfg, pr, base, so)
			if err != nil {
				return err
			}
			opts.ReplicationRatio = 0.40
			me, err := placement.MaxEmbed(pr.graph, opts)
			if err != nil {
				return err
			}
			meRes, err := serve(cfg, pr, me, so)
			if err != nil {
				return err
			}
			t.row(p.Name, part.name,
				elapsed.Round(time.Millisecond).String(),
				mbps(baseRes.EffectiveBandwidth),
				fmt.Sprintf("%s (%.1f%%)", mbps(meRes.EffectiveBandwidth),
					100*(meRes.EffectiveBandwidth/baseRes.EffectiveBandwidth-1)))
		}
	}
	t.flush()
	return nil
}
