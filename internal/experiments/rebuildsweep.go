package experiments

import (
	"context"
	"fmt"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

// RebuildSweep measures the robustness story end to end: a four-drive
// array loses a full shard and a live rebuild streams it onto the hot
// spare while serving traffic continues on the survivors. The rebuild
// rate limit is the knob — each point fails shard 0, starts a rebuild at
// one pages/sec budget, and serves queries concurrently for the whole
// repair window, reporting the MTTR (virtual repair time) against the p99
// the co-running traffic saw. Lookups must never hard-fail during the
// window (failed keys = 0: every key on the dead shard is rescued by a
// replica read or host-store fallback), and redundancy must come back
// automatically (the swapped-in shard reports healthy). A second table
// injects silent at-rest corruption and runs one scrubber sweep over the
// degradable array, reporting the detection and repair rates.
func RebuildSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.AlibabaIFashion)
	if err != nil {
		return err
	}
	syn, err := embedding.NewSynthesizer(cfg.Dim, cfg.Seed)
	if err != nil {
		return err
	}
	const (
		r       = 0.40
		devices = 4
	)
	lay, err := buildLayoutOn(cfg, pr, placement.StrategyMaxEmbed, r, devices)
	if err != nil {
		return err
	}
	sh, err := store.BuildSharded(lay, syn, cfg.PageSize, devices)
	if err != nil {
		return err
	}

	// newEngine builds a fresh array (clean clocks and health) with a hot
	// spare attached, serving the shared layout and store image cachelessly.
	newEngine := func() (*serving.Engine, *ssd.Array, error) {
		arr, err := ssd.NewArray(ssd.P4510, devices)
		if err != nil {
			return nil, nil, err
		}
		spare, err := ssd.NewDevice(ssd.P4510)
		if err != nil {
			return nil, nil, err
		}
		if err := arr.AttachSpare(spare); err != nil {
			return nil, nil, err
		}
		eng, err := serving.New(serving.Config{
			Layout:     lay,
			Backend:    arr,
			Store:      sh,
			IndexLimit: 10,
			Pipeline:   true,
		})
		if err != nil {
			return nil, nil, err
		}
		return eng, arr, nil
	}

	// Steady-state baseline: all four shards healthy, no rebuild traffic.
	eng, _, err := newEngine()
	if err != nil {
		return err
	}
	base, err := serving.Run(eng, pr.eval.Queries, cfg.Workers)
	if err != nil {
		return err
	}
	baseP99 := float64(base.Latency.P99NS)

	t := newTable(cfg.Out, fmt.Sprintf(
		"Rebuild sweep: %d×%s + hot spare, shard 0 failed, MaxEmbed r=%.0f%%, cacheless, %d workers",
		devices, ssd.P4510.Name, r*100, cfg.Workers))
	t.row("rebuild rate (pages/s)", "MTTR (ms)", "queries during", "p99 during (µs)",
		"vs steady", "failed keys", "reroutes", "store fallbacks")
	t.row("steady state (4/4 shards)", "-", fmt.Sprint(base.Queries),
		fmt.Sprintf("%.1f", baseP99/1e3), "1.00x", fmt.Sprint(base.FailedKeys), "-", "-")

	// Degraded reference: shard 0 dead, survivors absorbing its reads, no
	// rebuild I/O. The gap between this row and the rebuild rows is the
	// rebuild's own tail-latency cost; the gap to steady state is the cost
	// of losing a quarter of the array.
	{
		eng, arr, err := newEngine()
		if err != nil {
			return err
		}
		arr.SetShardFaultModel(0, ssd.AlwaysFail{})
		arr.FailShard(0)
		deg, err := serving.Run(eng, pr.eval.Queries, cfg.Workers)
		if err != nil {
			return err
		}
		if deg.FailedKeys > 0 {
			return fmt.Errorf("experiments: %d keys hard-failed on the degraded array (want 0)", deg.FailedKeys)
		}
		degP99 := float64(deg.Latency.P99NS)
		t.row("degraded (3/4, no rebuild)", "-", fmt.Sprint(deg.Queries),
			fmt.Sprintf("%.1f", degP99/1e3), fmt.Sprintf("%.2fx", degP99/baseP99),
			fmt.Sprint(deg.FailedKeys), "-", "-")
	}

	// Low rates are bounded by the token bucket (MTTR ∝ 1/rate); past the
	// point where the bucket outruns the rebuild's serial per-page chain
	// (source-read attempt, donor read, spare write at queue depth 1) the
	// device becomes the floor and extra budget buys nothing.
	for _, rate := range []float64{250, 500, 1000, 2000, 50000} {
		eng, arr, err := newEngine()
		if err != nil {
			return err
		}
		arr.SetShardFaultModel(0, ssd.AlwaysFail{})
		arr.FailShard(0)

		// Serving is co-simulated deterministically against the repair:
		// after every streamed page the rebuilder reports its virtual clock,
		// and every closed-loop worker whose own clock lags it serves
		// queries until it catches up. The measured window is exactly the
		// repair window, and the two flows contend for the same channels
		// and buses in virtual time.
		ws := make([]*serving.Worker, cfg.Workers)
		for i := range ws {
			ws[i] = eng.NewWorker()
		}
		eng.Latency.Reset()
		var queries, failedKeys, reroutes, fallbacks int64
		var lookupErr error
		next := 0
		catchUp := func(now int64) {
			for lookupErr == nil {
				served := false
				for _, w := range ws {
					if w.Now() >= now {
						continue
					}
					res, err := w.Lookup(pr.eval.Queries[next%len(pr.eval.Queries)])
					if err != nil {
						lookupErr = err
						return
					}
					next++
					queries++
					failedKeys += int64(res.Stats.FailedKeys)
					reroutes += int64(res.Stats.ShardReroutes)
					fallbacks += int64(res.Stats.StoreFallbacks)
					served = true
				}
				if !served {
					return
				}
			}
		}
		nb, rrep, err := serving.RebuildShard(context.Background(), eng, 0,
			serving.RebuildConfig{
				PagesPerSec: rate,
				Progress:    func(_, _ int, nowNS int64) { catchUp(nowNS) },
			})
		if err != nil {
			return fmt.Errorf("experiments: rebuild at %.0f pages/s: %w", rate, err)
		}
		if lookupErr != nil {
			return fmt.Errorf("experiments: rebuildsweep lookup: %w", lookupErr)
		}
		if st := nb.ShardState(0); st != ssd.ShardHealthy {
			return fmt.Errorf("experiments: shard 0 is %v after rebuild, redundancy not restored", st)
		}
		if failedKeys > 0 {
			return fmt.Errorf("experiments: %d keys hard-failed during rebuild (want 0)", failedKeys)
		}
		p99 := float64(eng.Latency.Snapshot().P99NS)
		// The default-rate acceptance bar: a rebuild at the stock rate may
		// not cost serving more than 2× its steady-state p99. Only enforced
		// when the window held enough queries for a stable tail estimate.
		if rate == 50000 && queries >= 1000 && p99 > 2*baseP99 {
			return fmt.Errorf("experiments: p99 during default-rate rebuild is %.0fµs, > 2× steady-state %.0fµs",
				p99/1e3, baseP99/1e3)
		}
		ratio := "-"
		if queries > 0 && baseP99 > 0 {
			ratio = fmt.Sprintf("%.2fx", p99/baseP99)
		}
		p99s := "-"
		if queries > 0 {
			p99s = fmt.Sprintf("%.1f", p99/1e3)
		}
		label := fmt.Sprintf("%.0f", rate)
		if rate == 50000 {
			label += " (default)"
		}
		t.row(label,
			fmt.Sprintf("%.1f", float64(rrep.DurationNS())/1e6),
			fmt.Sprint(queries), p99s, ratio,
			fmt.Sprint(failedKeys), fmt.Sprint(reroutes), fmt.Sprint(fallbacks))
	}
	t.flush()

	// Scrubber: inject silent corruption into occupied slots spread across
	// the whole page range, then audit-and-repair in one sweep.
	eng, _, err = newEngine()
	if err != nil {
		return err
	}
	const targetRot = 200
	stride := lay.NumPages() / targetRot
	if stride < 1 {
		stride = 1
	}
	injected := 0
	for p := 0; p < lay.NumPages(); p += stride {
		if len(lay.Pages[p]) == 0 {
			continue
		}
		if err := sh.CorruptSlot(layout.PageID(p), 0); err != nil {
			return err
		}
		injected++
	}
	srep, err := serving.Scrub(context.Background(), eng, serving.ScrubConfig{})
	if err != nil {
		return err
	}
	if injected > 0 && srep.LatentSlots < injected*99/100 {
		return fmt.Errorf("experiments: scrub detected %d of %d injected corruptions (<99%%)",
			srep.LatentSlots, injected)
	}
	st := newTable(cfg.Out, "Scrub sweep: silent at-rest corruption, one rate-limited sweep")
	st.row("injected", "detected", "detection", "repaired", "unrepairable",
		"slots verified", "sweep (ms)")
	det := "-"
	if injected > 0 {
		det = pct(float64(srep.LatentSlots) / float64(injected))
	}
	st.row(fmt.Sprint(injected), fmt.Sprint(srep.LatentSlots), det,
		fmt.Sprint(srep.RepairedSlots), fmt.Sprint(srep.UnrepairableSlots),
		fmt.Sprint(srep.SlotsVerified),
		fmt.Sprintf("%.1f", float64(srep.DurationNS())/1e6))
	st.flush()

	// Second sweep proves the repairs took: only the slots with no intact
	// replica anywhere are still latent.
	srep2, err := serving.Scrub(context.Background(), eng, serving.ScrubConfig{DetectOnly: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nre-audit after repair: %d latent slots remain (the %d unrepairable)\n",
		srep2.LatentSlots, srep.UnrepairableSlots)
	return nil
}
