package experiments

import (
	"fmt"

	"maxembed"
	"maxembed/internal/workload"
)

// RefreshSweep exercises the online layout-refresh loop end to end: a store
// is placed from era-1 traffic, the workload drifts to era-2 (same catalog,
// different recurring contexts), and the serving-path numbers degrade —
// more page reads per query, fewer valid embeddings per read. A hot
// refresh (RefreshNow: snapshot recorded history → re-run placement →
// atomic engine swap) is then triggered on the live DB, and the SAME
// session keeps serving across the swap, picking the new layout up at its
// next query. The table shows bandwidth efficiency recovering toward the
// fresh-placement baseline, with the layout generation advancing; a
// from-scratch era-2 store bounds how much a refresh could possibly
// recover (the refresh keeps home pages fixed, so it recovers most but not
// all of the drift cost).
func RefreshSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	profile := workload.Criteo
	if cfg.Scale != 1.0 {
		profile = profile.Scaled(cfg.Scale)
	}
	// Two eras of the same catalog: identical item count and popularity
	// model, disjoint template pools (drifted co-appearance structure).
	era1, err := workload.GenerateSeeded(profile, profile.Seed+cfg.Seed)
	if err != nil {
		return err
	}
	era2, err := workload.GenerateSeeded(profile, profile.Seed+cfg.Seed+1)
	if err != nil {
		return err
	}
	n := len(era2.Queries) / 4
	if n > 8000 {
		n = 8000
	}
	if n < 1 {
		return fmt.Errorf("experiments: refreshsweep needs more queries (have %d)", len(era2.Queries))
	}

	// Record exactly the drifted segment as refresh history: the ring
	// holds the last n served queries, so by refresh time the era-1
	// segment has been evicted and placement re-runs on era-2 traffic.
	db, err := maxembed.Open(era1.NumItems, era1.Queries,
		maxembed.WithStrategy(maxembed.StrategyMaxEmbed),
		maxembed.WithReplicationRatio(0.4),
		maxembed.WithCacheRatio(0), // isolate placement quality
		maxembed.WithSeed(cfg.Seed),
		maxembed.WithHistoryRecording(n),
		maxembed.TimingOnly(),
	)
	if err != nil {
		return err
	}

	sess := db.NewSession()
	fresh, err := measureSegment(sess, era1.Queries[len(era1.Queries)-n:])
	if err != nil {
		return err
	}
	drift, err := measureSegment(sess, era2.Queries[:n])
	if err != nil {
		return err
	}
	if err := db.RefreshNow(); err != nil {
		return err
	}
	refreshed, err := measureSegment(sess, era2.Queries[n:2*n])
	if err != nil {
		return err
	}

	// Upper bound: a store placed offline from era-2 history, i.e. what a
	// full redeploy (homes included) would serve the same segment at.
	db2, err := maxembed.Open(era2.NumItems, era2.Queries[:n],
		maxembed.WithStrategy(maxembed.StrategyMaxEmbed),
		maxembed.WithReplicationRatio(0.4),
		maxembed.WithCacheRatio(0),
		maxembed.WithSeed(cfg.Seed),
		maxembed.TimingOnly(),
	)
	if err != nil {
		return err
	}
	rebuilt, err := measureSegment(db2.NewSession(), era2.Queries[n:2*n])
	if err != nil {
		return err
	}

	t := newTable(cfg.Out, "Refresh sweep: online layout refresh under workload drift")
	t.row("segment", "queries", "pages/query", "valid/read", "layout gen")
	t.row("era-1 on era-1 placement", fmt.Sprint(n), f2(fresh.pagesPerQuery), f2(fresh.validPerRead), fmt.Sprint(fresh.gen))
	t.row("era-2 drifted (recorded)", fmt.Sprint(n), f2(drift.pagesPerQuery), f2(drift.validPerRead), fmt.Sprint(drift.gen))
	t.row("era-2 after hot refresh", fmt.Sprint(n), f2(refreshed.pagesPerQuery), f2(refreshed.validPerRead), fmt.Sprint(refreshed.gen))
	t.row("era-2 full redeploy (bound)", fmt.Sprint(n), f2(rebuilt.pagesPerQuery), f2(rebuilt.validPerRead), fmt.Sprint(rebuilt.gen))
	t.flush()

	driftCost := drift.pagesPerQuery - fresh.pagesPerQuery
	if driftCost > 0 {
		fmt.Fprintf(cfg.Out, "\ndrift cost: +%.1f%% reads/query; hot refresh recovers %.0f%% of it (gen %d → %d, no restart)\n",
			100*driftCost/fresh.pagesPerQuery,
			100*(drift.pagesPerQuery-refreshed.pagesPerQuery)/driftCost,
			drift.gen, refreshed.gen)
	}
	return nil
}

// refreshSegment aggregates one measured slice of traffic.
type refreshSegment struct {
	pagesPerQuery float64
	validPerRead  float64
	gen           uint64
}

// measureSegment serves the queries on the session and reports mean page
// reads per query, valid embeddings per read (recovery reads included in
// the denominator), and the layout generation that served the last query.
func measureSegment(sess *maxembed.Session, queries [][]maxembed.Key) (refreshSegment, error) {
	var pages, retries, useful int
	var gen uint64
	for _, q := range queries {
		res, err := sess.Lookup(q)
		if err != nil {
			return refreshSegment{}, err
		}
		pages += res.Stats.PagesRead
		retries += res.Stats.Retries
		useful += res.Stats.UsefulFromSSD
		gen = res.Stats.Generation
	}
	seg := refreshSegment{
		pagesPerQuery: float64(pages) / float64(len(queries)),
		gen:           gen,
	}
	if reads := pages + retries; reads > 0 {
		seg.validPerRead = float64(useful) / float64(reads)
	}
	return seg, nil
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
