package experiments

import (
	"fmt"

	"maxembed/internal/cluster"
	"maxembed/internal/placement"
	"maxembed/internal/workload"
)

// ScaleOut is a supplementary experiment: sharding the key space across
// multiple SSDs, the deployment shape the paper's trillion-parameter
// motivation implies (§1). Each shard runs the offline phase on its own
// key subset; queries fan out and complete at the slowest shard. The
// per-shard read-amplification reduction from replication carries through
// to cluster latency and throughput at every scale.
func ScaleOut(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.Criteo)
	if err != nil {
		return err
	}
	t := newTable(cfg.Out, "Scale-out (supplementary): sharded serving, Criteo")
	t.row("shards", "sharding", "strategy", "mean latency µs", "pages/query", "QPS (virtual)", "ME/SHP QPS")
	for _, shards := range []int{1, 2, 4, 8} {
		shardings := []cluster.Sharding{cluster.ShardingHash}
		if shards > 1 {
			shardings = append(shardings, cluster.ShardingLocality)
		}
		for _, sharding := range shardings {
			var shpQPS float64
			for _, v := range []struct {
				name  string
				strat placement.Strategy
				r     float64
			}{
				{"SHP", placement.StrategySHP, 0},
				{"ME(r=40%)", placement.StrategyMaxEmbed, 0.40},
			} {
				c, err := cluster.Build(pr.history.Queries, cluster.Config{
					Shards:           shards,
					NumItems:         pr.profile.Items,
					Strategy:         v.strat,
					ReplicationRatio: v.r,
					Seed:             cfg.Seed,
					Dim:              cfg.Dim,
					PageSize:         cfg.PageSize,
					CacheRatio:       0.10,
					IndexLimit:       10,
					Sharding:         sharding,
				})
				if err != nil {
					return err
				}
				// Closed loop over cfg.Workers fan-out sessions.
				sessions := make([]*cluster.Session, cfg.Workers)
				for i := range sessions {
					sessions[i] = c.NewSession()
				}
				var pages, latency int64
				n := len(pr.eval.Queries)
				for i, q := range pr.eval.Queries {
					res, err := sessions[i%len(sessions)].Lookup(q)
					if err != nil {
						return err
					}
					pages += int64(res.PagesRead)
					latency += res.LatencyNS
				}
				var makespan int64
				for _, s := range sessions {
					if s.Now() > makespan {
						makespan = s.Now()
					}
				}
				qps := float64(n) / (float64(makespan) / 1e9)
				shardLabel, policyLabel := "", ""
				if v.name == "SHP" {
					shpQPS = qps
					shardLabel = fmt.Sprintf("%d", shards)
					policyLabel = "hash"
					if sharding == cluster.ShardingLocality {
						policyLabel = "locality"
					}
				}
				ratio := ""
				if v.name != "SHP" {
					ratio = pct(qps / shpQPS)
				}
				t.row(shardLabel, policyLabel, v.name,
					fmt.Sprintf("%.1f", float64(latency)/float64(n)/1e3),
					fmt.Sprintf("%.2f", float64(pages)/float64(n)),
					fmt.Sprintf("%.0f", qps), ratio)
			}
		}
	}
	t.flush()
	return nil
}
