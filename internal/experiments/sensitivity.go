package experiments

import (
	"fmt"

	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/workload"
)

// Fig17a reproduces Figure 17a: effective bandwidth vs replication ratio
// for embedding dimensions 32, 64, 128 on Alibaba-iFashion. Paper: larger
// vectors fit fewer embeddings per page, so SHP alone does worse and
// replication helps relatively more; effective bandwidth always rises with
// r.
func Fig17a(cfg Config) error {
	cfg = cfg.withDefaults()
	sweep := []float64{0, 0.25, 0.50, 0.75}
	t := newTable(cfg.Out, "Figure 17a: effective bandwidth (MB/s) vs r, by embedding dimension")
	header := []string{"dim"}
	for _, r := range sweep {
		header = append(header, fmt.Sprintf("r=%.0f%%", r*100))
	}
	header = append(header, "r=75%/r=0")
	t.row(header...)
	for _, dim := range []int{32, 64, 128} {
		dimCfg := cfg
		dimCfg.Dim = dim
		pr, err := prepare(dimCfg, workload.AlibabaIFashion)
		if err != nil {
			return err
		}
		cells := []string{fmt.Sprintf("%d", dim)}
		var first, last float64
		for _, r := range sweep {
			strat := placement.StrategyMaxEmbed
			if r == 0 {
				strat = placement.StrategySHP
			}
			lay, err := buildLayout(dimCfg, pr, strat, r)
			if err != nil {
				return err
			}
			res, err := serve(dimCfg, pr, lay, defaultServing())
			if err != nil {
				return err
			}
			if r == 0 {
				first = res.EffectiveBandwidth
			}
			last = res.EffectiveBandwidth
			cells = append(cells, mbps(res.EffectiveBandwidth))
		}
		cells = append(cells, fmt.Sprintf("%.2fx", last/first))
		t.row(cells...)
	}
	t.flush()
	return nil
}

// Fig17b reproduces Figure 17b: effective bandwidth of vanilla, SHP, and
// MaxEmbed placements on different SSD types (P4510, P5800X, RAID-0 of two
// P5800X) on Alibaba-iFashion. Paper: the relative improvements are
// consistent across devices; only the absolute bandwidth scale differs.
// The RAID-0 point runs on a real two-device ssd.Array (independent
// per-shard queues, shard-aware replica placement), not the coarse
// ssd.RAID0 merged-profile approximation.
func Fig17b(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.AlibabaIFashion)
	if err != nil {
		return err
	}
	type devEntry struct {
		name string
		prof ssd.Profile
		n    int // array member count (1 = single device)
	}
	devices := []devEntry{
		{ssd.P4510.Name, ssd.P4510, 1},
		{ssd.P5800X.Name, ssd.P5800X, 1},
		{"Array-2xP5800X", ssd.P5800X, 2},
	}
	type variant struct {
		name  string
		strat placement.Strategy
		r     float64
	}
	variants := []variant{
		{"vanilla", placement.StrategyVanilla, 0},
		{"SHP", placement.StrategySHP, 0},
		{"ME(r=40%)", placement.StrategyMaxEmbed, 0.40},
	}
	t := newTable(cfg.Out, "Figure 17b: effective bandwidth (MB/s) by SSD type")
	t.row("device", "vanilla", "SHP", "ME(r=40%)", "ME/SHP")
	for _, dev := range devices {
		cells := []string{dev.name}
		var shp, me float64
		for _, v := range variants {
			lay, err := buildLayoutOn(cfg, pr, v.strat, v.r, dev.n)
			if err != nil {
				return err
			}
			so := defaultServing()
			so.device = dev.prof
			so.devices = dev.n
			res, err := serve(cfg, pr, lay, so)
			if err != nil {
				return err
			}
			switch v.name {
			case "SHP":
				shp = res.EffectiveBandwidth
			case "ME(r=40%)":
				me = res.EffectiveBandwidth
			}
			cells = append(cells, mbps(res.EffectiveBandwidth))
		}
		cells = append(cells, fmt.Sprintf("%.2fx", me/shp))
		t.row(cells...)
	}
	t.flush()
	return nil
}
