package experiments

import (
	"fmt"

	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/workload"
)

// ShardSweep reproduces the paper's RAID-0 device-array result (§7):
// effective bandwidth scaling near-linearly with device count at a fixed
// replication ratio. Each point stripes the same MaxEmbed layout over an
// ssd.Array of 1, 2, and 4 P4510s (the NAND drives the paper builds its
// array from) with shard-aware replica placement, and serves the eval
// trace cachelessly so the SSD path dominates. The worker count is fixed
// across points — only the device count varies — and is sized to keep a
// four-device array busy. Valid-embeddings-per-read is a placement
// property, so it must stay flat across the sweep: the array scales
// bandwidth by adding parallel devices, not by changing what a read is
// worth.
func ShardSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	// Enough closed-loop workers to saturate the largest array; identical
	// for every point so software concurrency is not a confound.
	cfg.Workers *= 4

	pr, err := prepare(cfg, workload.AlibabaIFashion)
	if err != nil {
		return err
	}
	const r = 0.40
	t := newTable(cfg.Out, fmt.Sprintf("Shard sweep: %s array scaling, MaxEmbed r=%.0f%%, cacheless, %d workers",
		ssd.P4510.Name, r*100, cfg.Workers))
	t.row("devices", "eff.BW (MB/s)", "raw BW (MB/s)", "valid/read", "QPS", "p99 (µs)", "scaling")
	var base float64
	for _, n := range []int{1, 2, 4} {
		lay, err := buildLayoutOn(cfg, pr, placement.StrategyMaxEmbed, r, n)
		if err != nil {
			return err
		}
		so := servingOpts{
			device:     ssd.P4510,
			devices:    n,
			cacheRatio: 0,
			indexLimit: 10,
			pipeline:   true,
		}
		res, err := serve(cfg, pr, lay, so)
		if err != nil {
			return err
		}
		if n == 1 {
			base = res.EffectiveBandwidth
		}
		t.row(
			fmt.Sprintf("%d", n),
			mbps(res.EffectiveBandwidth),
			mbps(res.RawBandwidth),
			fmt.Sprintf("%.2f", res.MeanValidPerRead),
			fmt.Sprintf("%.0f", res.QPS),
			fmt.Sprintf("%.1f", float64(res.Latency.P99NS)/1e3),
			fmt.Sprintf("%.2fx", res.EffectiveBandwidth/base),
		)
	}
	t.flush()
	return nil
}
