package experiments

import (
	"fmt"
	"time"

	"maxembed/internal/placement"
	"maxembed/internal/tco"
	"maxembed/internal/workload"
)

// Table3 reproduces Table 3: the dataset inventory — the paper's numbers
// alongside the scaled synthetic sizes this reproduction generates and the
// measured mean query length of the generated traces.
func Table3(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable(cfg.Out, "Table 3: datasets (paper → scaled synthetic)")
	t.row("dataset", "paper items", "paper queries", "paper qlen",
		"synth items", "synth queries", "synth qlen (measured)")
	for _, p := range overallProfiles() {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		full := pr.history.NumQueries() + pr.eval.NumQueries()
		t.row(p.Name,
			fmt.Sprintf("%d", p.PaperItems),
			fmt.Sprintf("%d", p.PaperQueries),
			fmt.Sprintf("%.2f", p.PaperQueryLen),
			fmt.Sprintf("%d", pr.profile.Items),
			fmt.Sprintf("%d", full),
			fmt.Sprintf("%.2f", pr.history.MeanQueryLen()))
	}
	t.flush()
	return nil
}

// Table1 reproduces Table 1: offline partition+replication wall time for
// the Criteo and CriteoTB profiles at page capacities of 16, 32, and 64
// embeddings (r=10%). Absolute times are not comparable to the paper's
// Hadoop runs over the full datasets; the shape — time roughly flat or
// slightly decreasing with larger capacity, CriteoTB ≫ Criteo — is.
func Table1(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable(cfg.Out, "Table 1: offline partition time (wall clock, scaled datasets)")
	t.row("dataset", "16 per page", "32 per page", "64 per page")
	for _, p := range []workload.Profile{workload.Criteo, workload.CriteoTB} {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		cells := []string{p.Name}
		for _, capacity := range []int{16, 32, 64} {
			start := time.Now()
			lay, err := placement.MaxEmbed(pr.graph, placement.Options{
				Capacity:         capacity,
				ReplicationRatio: 0.10,
				Seed:             cfg.Seed,
			})
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			if err := lay.Validate(); err != nil {
				return fmt.Errorf("experiments: table1 layout: %w", err)
			}
			cells = append(cells, elapsed.Round(time.Millisecond).String())
		}
		t.row(cells...)
	}
	t.flush()
	return nil
}

// Table2 reproduces Table 2: TCO of MaxEmbed at r=80% vs the SHP baseline
// for the CriteoTB table on Optane (P5800X) and NAND (PM1735) pricing. The
// relative performance is measured, not assumed: it is the CriteoTB QPS
// ratio of MaxEmbed(r=80%) over SHP from the serving simulation.
func Table2(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.CriteoTB)
	if err != nil {
		return err
	}
	so := defaultServing()
	baseLay, err := buildLayout(cfg, pr, placement.StrategySHP, 0)
	if err != nil {
		return err
	}
	base, err := serve(cfg, pr, baseLay, so)
	if err != nil {
		return err
	}
	meLay, err := buildLayout(cfg, pr, placement.StrategyMaxEmbed, 0.80)
	if err != nil {
		return err
	}
	me, err := serve(cfg, pr, meLay, so)
	if err != nil {
		return err
	}
	perf := me.QPS / base.QPS

	t := newTable(cfg.Out, "Table 2: TCO estimation (CriteoTB, measured performance ratio)")
	t.row("item", "baseline (SHP)", fmt.Sprintf("MaxEmbed (r=80%%, %.2fx perf)", perf))
	for _, drive := range []tco.DrivePricing{tco.P5800X, tco.PM1735} {
		b, err := tco.Config{
			TableGB: tco.CriteoTBTableGB, ReplicationRatio: 0,
			RelativePerformance: 1, Drive: drive,
		}.Estimate()
		if err != nil {
			return err
		}
		m, err := tco.Config{
			TableGB: tco.CriteoTBTableGB, ReplicationRatio: 0.8,
			RelativePerformance: perf, Drive: drive,
		}.Estimate()
		if err != nil {
			return err
		}
		t.row(fmt.Sprintf("total cost (%s)", drive.Name),
			fmt.Sprintf("$%.2f", b.TotalUSD), fmt.Sprintf("$%.2f", m.TotalUSD))
		t.row(fmt.Sprintf("perf/cost (%s)", drive.Name),
			"1.00x", fmt.Sprintf("%.2fx", m.PerfPerDollar))
	}
	t.row("embedding table",
		fmt.Sprintf("%.0f GB", tco.CriteoTBTableGB),
		fmt.Sprintf("%.0f GB", tco.CriteoTBTableGB*1.8))
	t.flush()
	return nil
}
