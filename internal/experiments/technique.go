package experiments

import (
	"fmt"

	"maxembed/internal/placement"
	"maxembed/internal/workload"
)

// Fig14 reproduces Figure 14: effective bandwidth of the three replication
// strategies (MaxEmbed, RPP, FPR) normalized to SHP across replication
// ratios, on Alibaba-iFashion, Amazon M2, and Avazu. Paper: RPP gives
// slight but stable gains, FPR is unstable (good only on Amazon M2's short
// queries, sometimes below 100%), MaxEmbed is highest and stable.
func Fig14(cfg Config) error {
	cfg = cfg.withDefaults()
	profiles := []workload.Profile{
		workload.AlibabaIFashion,
		workload.AmazonM2,
		workload.Avazu,
	}
	strategies := []placement.Strategy{
		placement.StrategyMaxEmbed,
		placement.StrategyRPP,
		placement.StrategyFPR,
	}
	so := defaultServing()
	for _, p := range profiles {
		pr, err := prepare(cfg, p)
		if err != nil {
			return err
		}
		baseLay, err := buildLayout(cfg, pr, placement.StrategySHP, 0)
		if err != nil {
			return err
		}
		base, err := serve(cfg, pr, baseLay, so)
		if err != nil {
			return err
		}
		t := newTable(cfg.Out, fmt.Sprintf("Figure 14 (%s): normalized effective bandwidth (SHP = 100%%)", p.Name))
		t.row("strategy", "r=10%", "r=20%", "r=40%", "r=80%")
		for _, s := range strategies {
			cells := []string{string(s)}
			for _, r := range ratios {
				lay, err := buildLayout(cfg, pr, s, r)
				if err != nil {
					return err
				}
				res, err := serve(cfg, pr, lay, so)
				if err != nil {
					return err
				}
				cells = append(cells, pct(res.EffectiveBandwidth/base.EffectiveBandwidth))
			}
			t.row(cells...)
		}
		t.flush()
	}
	return nil
}

// Fig15 reproduces Figure 15: the time breakdown of online query
// processing on Alibaba-iFashion with r=40% and 8 workers, comparing Raw
// (no pipeline, full index), +Pipeline, and +Pipeline+IndexLimit(k=5).
// Paper: pipeline cuts end-to-end time ~10%, pipeline+limit ~34%, leaving
// selection under 25% of the procedure.
func Fig15(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.AlibabaIFashion)
	if err != nil {
		return err
	}
	lay, err := buildLayout(cfg, pr, placement.StrategyMaxEmbed, 0.40)
	if err != nil {
		return err
	}
	type variant struct {
		name     string
		pipeline bool
		limit    int
	}
	variants := []variant{
		{"Raw", false, 0},
		{"+Pipeline", true, 0},
		{"+IndexLimit(k=5)", true, 5},
	}
	t := newTable(cfg.Out, "Figure 15: online query time breakdown, iFashion r=40%")
	t.row("config", "sort µs/q", "select µs/q", "ssd-wait µs/q", "e2e µs/q", "normalized")
	var baseline float64
	for _, v := range variants {
		so := defaultServing()
		so.pipeline = v.pipeline
		so.indexLimit = v.limit
		res, err := serve(cfg, pr, lay, so)
		if err != nil {
			return err
		}
		q := float64(res.Queries)
		e2e := res.Latency.MeanNS
		if baseline == 0 {
			baseline = e2e
		}
		t.row(v.name,
			fmt.Sprintf("%.2f", float64(res.SortNS)/q/1e3),
			fmt.Sprintf("%.2f", float64(res.SelectNS)/q/1e3),
			fmt.Sprintf("%.2f", float64(res.SSDWaitNS)/q/1e3),
			fmt.Sprintf("%.2f", e2e/1e3),
			pct(e2e/baseline))
	}
	t.flush()
	return nil
}

// Fig16 reproduces Figure 16: effective bandwidth under index shrinking
// (k = 5, 10, unlimited) across replication ratios on Alibaba-iFashion.
// Paper: k=10 retains >98% and k=5 >96% of the unlimited-index bandwidth
// even at r=80%.
func Fig16(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.AlibabaIFashion)
	if err != nil {
		return err
	}
	sweep := []float64{0.10, 0.20, 0.30, 0.80}
	t := newTable(cfg.Out, "Figure 16: index shrinking, iFashion (all-index = 100%)")
	t.row("r", "all index MB/s", "k=10", "k=5")
	for _, r := range sweep {
		lay, err := buildLayout(cfg, pr, placement.StrategyMaxEmbed, r)
		if err != nil {
			return err
		}
		run := func(limit int) (float64, error) {
			so := defaultServing()
			so.indexLimit = limit
			res, err := serve(cfg, pr, lay, so)
			return res.EffectiveBandwidth, err
		}
		full, err := run(0)
		if err != nil {
			return err
		}
		k10, err := run(10)
		if err != nil {
			return err
		}
		k5, err := run(5)
		if err != nil {
			return err
		}
		t.row(pct(r), mbps(full), pct(k10/full), pct(k5/full))
	}
	t.flush()
	return nil
}
