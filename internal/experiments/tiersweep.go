package experiments

import (
	"fmt"

	"maxembed/internal/embedding"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/tco"
	"maxembed/internal/workload"
)

// TierSweep evaluates the hotness-tiered memory hierarchy at equal TCO.
// One layout is served from three backends of identical stripe width:
//
//   - tiered: two P5800X-class shards fronting two P4510-class shards,
//     hot pages re-tiered onto the fast shards, DRAM sized by the shadow
//     (ghost) cache's measured miss-rate curve;
//   - all-dense: four P4510 shards, given extra DRAM until its hardware
//     cost equals the tiered configuration's (the fair fight: same
//     dollars, spent on DRAM instead of a fast drive);
//   - all-fast: four P5800X shards with the tiered DRAM — the perf
//     ceiling, at a storage cost that exceeds the entire budget.
//
// The first table is the shadow-cache sizing story: the predicted (ghost)
// hit-rate curve against the measured curve from real caches of the same
// capacities, with the knee each rule picks. The second is the equal-TCO
// comparison, costed pro-forma at the paper's CriteoTB table size with
// hardware-only dollars (a shared instance price would wash out the
// storage differences the sweep isolates).
//
// The re-tier ranks pages by post-cache heat: the shadow-chosen DRAM
// layer absorbs the hottest keys, so their pages are discounted before
// ranking (placement.DiscountTop) — the fast tier holds the band of keys
// just below the DRAM residents, the ones that actually hit the SSD.
//
// Hard assertions (the CI smoke): the shadow-chosen DRAM size must agree
// with the best swept size within 10%, the tiered config must beat
// all-dense on served bandwidth and cost-per-QPS (and on p99 when the
// run is long enough for a stable tail), the fast tier must serve a
// disproportionate share of reads relative to the one stripe shard it
// owns, and all-fast must be infeasible at the budget — its storage
// alone must cost more than the tiered config's entire hardware spend
// (the reason a tier mix exists at all).
func TierSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	pr, err := prepare(cfg, workload.AlibabaIFashion)
	if err != nil {
		return err
	}
	const (
		r           = 0.20
		devices     = 4
		fastShards  = 2
		kneeTol     = 0.05
		replicaFrac = 1 + r
		// The mix comparison runs closed-loop at this fan-in regardless of
		// cfg.Workers: tiering is a bandwidth play, and at trivial
		// concurrency every mix is latency-bound on its slowest tier (one
		// ~80µs dense read per query hides everything else) so the
		// comparison would measure nothing. At 32 workers the dense tier's
		// serialized transfer bus binds and the fast tier's extra capacity
		// shows up as throughput — the regime the paper targets.
		loadWorkers = 32
	)
	lay, err := buildLayoutOn(cfg, pr, placement.StrategyMaxEmbed, r, devices)
	if err != nil {
		return err
	}
	vecBytes := embedding.BytesPerVector(cfg.Dim)

	// Ghost-cache grid: a geometric sweep over the key space. The real
	// sweep below reuses the same capacities so the knees are comparable.
	// The grid tops out at 8% of the key space: the candidate set is the
	// DRAM sizes a budget-matched deployment could plausibly buy — beyond
	// that the DRAM bill alone rivals all-fast storage and the tier
	// question evaporates.
	var grid []int
	for _, f := range []float64{0.005, 0.01, 0.02, 0.04, 0.08} {
		if n := int(f * float64(lay.NumKeys)); n > 0 && (len(grid) == 0 || n > grid[len(grid)-1]) {
			grid = append(grid, n)
		}
	}
	if len(grid) == 0 {
		return fmt.Errorf("experiments: tiersweep: key space too small for a shadow grid")
	}

	newEngine := func(backend ssd.Backend, cacheEntries int, shadow []int) (*serving.Engine, error) {
		engCfg := serving.Config{
			Layout:       lay,
			CacheEntries: cacheEntries,
			ShadowSizes:  shadow,
			IndexLimit:   10,
			Pipeline:     true,
			VectorBytes:  vecBytes,
		}
		if dev, ok := backend.(*ssd.Device); ok {
			engCfg.Device = dev
		} else {
			engCfg.Backend = backend
		}
		return serving.New(engCfg)
	}
	denseArray := func() (*ssd.Array, error) { return ssd.NewArray(ssd.P4510, devices) }

	// Phase 1 — shadow sizing: one cacheless run with the ghost bank
	// predicts every grid capacity's hit rate at once; then one real
	// (unwarmed, plain-LRU) run per capacity measures the truth. Both
	// curves get the same knee rule.
	arr0, err := denseArray()
	if err != nil {
		return err
	}
	eng, err := newEngine(arr0, 0, grid)
	if err != nil {
		return err
	}
	if _, err := serving.Run(eng, pr.eval.Queries, cfg.Workers); err != nil {
		return err
	}
	predicted := eng.Shadow().Curve()
	chosen := eng.Shadow().Recommend(kneeTol)

	measured := make([]float64, len(grid))
	for i, c := range grid {
		arr, err := denseArray()
		if err != nil {
			return err
		}
		e, err := newEngine(arr, c, nil)
		if err != nil {
			return err
		}
		if _, err := serving.Run(e, pr.eval.Queries, cfg.Workers); err != nil {
			return err
		}
		measured[i] = e.Cache().Stats().HitRate()
	}
	best := kneeOf(grid, measured, kneeTol)

	st := newTable(cfg.Out, fmt.Sprintf(
		"Shadow-cache sizing: %s, predicted (ghost) vs measured LRU hit rates, knee tolerance %.0f%%",
		pr.profile.Name, kneeTol*100))
	st.row("capacity (keys)", "of key space", "predicted hit", "measured hit", "")
	for i, c := range grid {
		mark := ""
		if c == chosen && c == best {
			mark = "<- chosen = best"
		} else if c == chosen {
			mark = "<- shadow choice"
		} else if c == best {
			mark = "<- swept best"
		}
		st.row(fmt.Sprint(c), pct(float64(c)/float64(lay.NumKeys)),
			pct(predicted[i].HitRate), pct(measured[i]), mark)
	}
	st.flush()
	if diff := absf(float64(chosen-best) / float64(best)); diff > 0.10 {
		return fmt.Errorf("experiments: shadow-chosen cache size %d is %.0f%% off the best swept size %d (>10%%)",
			chosen, diff*100, best)
	}

	// Phase 2 — the three backends at equal hardware budget. The tiered
	// layout is a non-mutating re-tier of the shared one: hottest pages
	// (by history frequency) move to IDs that stripe onto the fast shard.
	tiered, err := ssd.NewTieredArray([]ssd.TierSpec{
		{Profile: ssd.P5800X, Devices: fastShards},
		{Profile: ssd.P4510, Devices: devices - fastShards},
	})
	if err != nil {
		return err
	}
	// Post-cache heat: the warmed DRAM cache will hold roughly the top
	// `chosen` keys, so discount them before ranking pages — the fast
	// tier should capture the band of traffic the cache lets through.
	freq := placement.KeyFreq(lay.NumKeys, pr.history.Queries)
	heat := placement.PageHeat(lay, placement.DiscountTop(freq, chosen))
	tlay, rep, err := placement.Retier(lay, heat, tiered.TierShardMap())
	if err != nil {
		return err
	}

	// Pro-forma costing at the paper's CriteoTB table size: the simulated
	// fractions (tier split, DRAM entries per key) priced at deployment
	// scale, hardware only.
	const tableGB = tco.CriteoTBTableGB
	dramGB := func(entries int) float64 {
		return tableGB * float64(entries) / float64(lay.NumKeys)
	}
	fastFrac := float64(fastShards) / devices
	mixOf := func(shares []tco.TierShare, entries int, qps float64) (tco.MixEstimate, error) {
		return tco.MixConfig{
			TableGB:            tableGB,
			ReplicationRatio:   r,
			Tiers:              shares,
			DRAMGB:             dramGB(entries),
			QPS:                qps,
			InstanceMonthlyUSD: -1,
		}.Estimate()
	}
	tieredShares := []tco.TierShare{
		{Drive: tco.P5800X, Fraction: fastFrac},
		{Drive: tco.P4510, Fraction: 1 - fastFrac},
	}
	denseShares := []tco.TierShare{{Drive: tco.P4510, Fraction: 1}}
	fastShares_ := []tco.TierShare{{Drive: tco.P5800X, Fraction: 1}}

	// The budget is the tiered config's hardware cost; all-dense spends
	// the storage savings on extra DRAM entries.
	budgetProbe, err := mixOf(tieredShares, chosen, 1)
	if err != nil {
		return err
	}
	budget := budgetProbe.TotalUSD
	denseStorage := tableGB * replicaFrac * tco.P4510.DollarsPerGB
	fastStorage := tableGB * replicaFrac * tco.P5800X.DollarsPerGB
	denseEntries := int((budget - denseStorage) / tco.DRAMDollarsPerGB / tableGB * float64(lay.NumKeys))
	if denseEntries < chosen {
		return fmt.Errorf("experiments: tiersweep budget math: dense DRAM %d < tiered %d entries", denseEntries, chosen)
	}

	type result struct {
		name    string
		entries int
		shares  []tco.TierShare
		res     serving.RunResult
		est     tco.MixEstimate
	}
	runOne := func(name string, backend ssd.Backend, uselay bool, entries int, shares []tco.TierShare) (result, error) {
		l := lay
		if uselay {
			l = tlay
		}
		engCfg := serving.Config{
			Layout:       l,
			CacheEntries: entries,
			IndexLimit:   10,
			Pipeline:     true,
			VectorBytes:  vecBytes,
			Backend:      backend,
		}
		e, err := serving.New(engCfg)
		if err != nil {
			return result{}, err
		}
		if err := e.WarmCache(pr.history.Queries); err != nil {
			return result{}, err
		}
		res, err := serving.Run(e, pr.eval.Queries, loadWorkers)
		if err != nil {
			return result{}, err
		}
		est, err := mixOf(shares, entries, res.QPS)
		if err != nil {
			return result{}, err
		}
		return result{name: name, entries: entries, shares: shares, res: res, est: est}, nil
	}

	denseArr, err := denseArray()
	if err != nil {
		return err
	}
	fastArr, err := ssd.NewArray(ssd.P5800X, devices)
	if err != nil {
		return err
	}
	rtier, err := runOne("tiered 2×fast+2×dense", tiered, true, chosen, tieredShares)
	if err != nil {
		return err
	}
	rdense, err := runOne("all-dense 4×P4510", denseArr, false, denseEntries, denseShares)
	if err != nil {
		return err
	}
	rfast, err := runOne("all-fast 4×P5800X", fastArr, false, chosen, fastShares_)
	if err != nil {
		return err
	}

	ct := newTable(cfg.Out, fmt.Sprintf(
		"Equal-TCO tier mixes: %s, MaxEmbed r=%.0f%%, hardware-only dollars pro-forma at %.0f GB",
		pr.profile.Name, r*100, tableGB))
	ct.row("config", "DRAM entries", "hw $/mo", "QPS", "served MB/s", "p99 (µs)", "$ per kQPS")
	for _, x := range []result{rtier, rdense, rfast} {
		ct.row(x.name, fmt.Sprint(x.entries),
			fmt.Sprintf("%.0f", x.est.TotalUSD),
			fmt.Sprintf("%.0f", x.res.QPS),
			mbps(x.res.ServiceBandwidth),
			fmt.Sprintf("%.1f", float64(x.res.Latency.P99NS)/1e3),
			fmt.Sprintf("%.2f", x.est.CostPerKQPS))
	}
	ct.flush()

	// Tier activity: the re-tiered layout should concentrate reads on the
	// fast shard far beyond its 1-in-4 stripe share.
	ts := tiered.TierStats()
	var totalReads int64
	for _, s := range ts {
		totalReads += s.Reads
	}
	fastShare := 0.0
	if totalReads > 0 {
		fastShare = float64(ts[0].Reads) / float64(totalReads)
	}
	fmt.Fprintf(cfg.Out,
		"\nre-tier: %d pages promoted, %d demoted; fast tier holds %s of pages, served %s of reads\n",
		rep.Promoted, rep.Demoted, pct(fastFrac), pct(fastShare))
	fmt.Fprintf(cfg.Out,
		"budget: $%.0f/mo hardware; all-fast storage alone is $%.0f (%.1f× over) — infeasible at budget\n",
		budget, fastStorage, fastStorage/budget)

	// The CI smoke bars. Bandwidth and cost are stable even at tiny bench
	// scales; the p99 comparison needs enough queries for a stable tail.
	if rtier.res.ServiceBandwidth <= rdense.res.ServiceBandwidth {
		return fmt.Errorf("experiments: tiered served %.1f MB/s <= all-dense %.1f MB/s at equal budget",
			rtier.res.ServiceBandwidth/1e6, rdense.res.ServiceBandwidth/1e6)
	}
	if rtier.est.CostPerKQPS >= rdense.est.CostPerKQPS {
		return fmt.Errorf("experiments: tiered $%.2f/kQPS >= all-dense $%.2f/kQPS",
			rtier.est.CostPerKQPS, rdense.est.CostPerKQPS)
	}
	if fastStorage <= budget {
		return fmt.Errorf("experiments: all-fast storage $%.0f fits the $%.0f budget — the tier mix is pointless here",
			fastStorage, budget)
	}
	if rfast.est.TotalUSD <= rtier.est.TotalUSD {
		return fmt.Errorf("experiments: all-fast total $%.0f <= tiered $%.0f — ceiling row should be over budget",
			rfast.est.TotalUSD, rtier.est.TotalUSD)
	}
	if fastShare <= fastFrac {
		return fmt.Errorf("experiments: fast tier served %.0f%% of reads, no better than its %.0f%% stripe share",
			fastShare*100, fastFrac*100)
	}
	if rtier.res.Queries >= 1000 && rtier.res.Latency.P99NS >= rdense.res.Latency.P99NS {
		return fmt.Errorf("experiments: tiered p99 %.1fµs >= all-dense %.1fµs at equal budget",
			float64(rtier.res.Latency.P99NS)/1e3, float64(rdense.res.Latency.P99NS)/1e3)
	}
	return nil
}

// kneeOf applies Shadow.Recommend's rule to an externally measured curve.
func kneeOf(caps []int, hitRates []float64, tol float64) int {
	best := 0.0
	for _, h := range hitRates {
		if h > best {
			best = h
		}
	}
	if best == 0 {
		return 0
	}
	for i, h := range hitRates {
		if h >= (1-tol)*best {
			return caps[i]
		}
	}
	return caps[len(caps)-1]
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
