package hypergraph

import "sort"

// CoAppearanceDegree returns, for each vertex, the number of *distinct*
// other vertices it shares at least one hyperedge with. This is the
// quantity behind the paper's §3 motivation: the hottest embeddings
// co-appear with far more neighbours than one SSD page can hold, so
// single-copy placement necessarily severs most of their combinations.
func (g *Graph) CoAppearanceDegree() []int {
	deg := make([]int, g.NumVertices())
	seen := make([]int32, g.NumVertices())
	epoch := int32(0)
	for v := 0; v < g.NumVertices(); v++ {
		epoch++
		n := 0
		for _, e := range g.IncidentEdges(Vertex(v)) {
			for _, u := range g.Edge(e) {
				if int(u) == v || seen[u] == epoch {
					continue
				}
				seen[u] = epoch
				n++
			}
		}
		deg[v] = n
	}
	return deg
}

// MotivationStats quantifies the §3 observation for a graph: how many
// distinct co-appearing neighbours the hottest vertices have, versus page
// capacity.
type MotivationStats struct {
	// HotFraction is the popularity percentile examined (e.g. 0.05).
	HotFraction float64
	// MedianHotCoAppear and MeanHotCoAppear summarize the co-appearance
	// degree of the hottest HotFraction of vertices.
	MedianHotCoAppear int
	MeanHotCoAppear   float64
	// FracHotAbove reports the fraction of hot vertices whose
	// co-appearance degree exceeds Threshold.
	Threshold    int
	FracHotAbove float64
	// MedianAllCoAppear is the median over all vertices, for contrast.
	MedianAllCoAppear int
}

// ComputeMotivationStats evaluates the §3 claim: hot vertices (top
// hotFraction by degree) co-appearing with more than threshold distinct
// neighbours. The paper cites hotFraction=0.05 and threshold=40 for
// CriteoTB against a page capacity of 8–32.
func (g *Graph) ComputeMotivationStats(hotFraction float64, threshold int) MotivationStats {
	st := MotivationStats{HotFraction: hotFraction, Threshold: threshold}
	n := g.NumVertices()
	if n == 0 {
		return st
	}
	co := g.CoAppearanceDegree()

	// Rank vertices by hotness (query frequency = degree).
	order := make([]Vertex, n)
	for v := range order {
		order[v] = Vertex(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	nHot := int(hotFraction * float64(n))
	if nHot < 1 {
		nHot = 1
	}
	hot := make([]int, nHot)
	var sum, above int
	for i := 0; i < nHot; i++ {
		c := co[order[i]]
		hot[i] = c
		sum += c
		if c > threshold {
			above++
		}
	}
	sort.Ints(hot)
	st.MedianHotCoAppear = hot[nHot/2]
	st.MeanHotCoAppear = float64(sum) / float64(nHot)
	st.FracHotAbove = float64(above) / float64(nHot)

	all := make([]int, n)
	copy(all, co)
	sort.Ints(all)
	st.MedianAllCoAppear = all[n/2]
	return st
}
