package hypergraph

import (
	"reflect"
	"testing"
)

func TestCoAppearanceDegree(t *testing.T) {
	g := mustGraph(t, 5, [][]Vertex{
		{0, 1, 2},
		{0, 1}, // repeats the (0,1) pair: must not double-count
		{3},
		{},
	})
	got := g.CoAppearanceDegree()
	want := []int{2, 2, 2, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CoAppearanceDegree = %v, want %v", got, want)
	}
}

func TestCoAppearanceDegreeStar(t *testing.T) {
	// Vertex 0 appears with everyone; leaves only with 0 and one peer.
	g := mustGraph(t, 7, [][]Vertex{
		{0, 1, 2}, {0, 3, 4}, {0, 5, 6},
	})
	got := g.CoAppearanceDegree()
	if got[0] != 6 {
		t.Errorf("hub co-appearance = %d, want 6", got[0])
	}
	for v := 1; v < 7; v++ {
		if got[v] != 2 {
			t.Errorf("leaf %d co-appearance = %d, want 2", v, got[v])
		}
	}
}

func TestComputeMotivationStats(t *testing.T) {
	// Hub vertex 0 is both hottest (degree 3) and has the most
	// co-appearing neighbours (6 > threshold 5).
	g := mustGraph(t, 7, [][]Vertex{
		{0, 1, 2}, {0, 3, 4}, {0, 5, 6},
	})
	st := g.ComputeMotivationStats(0.10, 5)
	if st.MeanHotCoAppear != 6 || st.MedianHotCoAppear != 6 {
		t.Errorf("hot co-appearance = %v/%v, want 6/6", st.MeanHotCoAppear, st.MedianHotCoAppear)
	}
	if st.FracHotAbove != 1.0 {
		t.Errorf("FracHotAbove = %v, want 1.0", st.FracHotAbove)
	}
	if st.MedianAllCoAppear != 2 {
		t.Errorf("MedianAllCoAppear = %d, want 2", st.MedianAllCoAppear)
	}
}

func TestComputeMotivationStatsEmpty(t *testing.T) {
	g := mustGraph(t, 0, nil)
	st := g.ComputeMotivationStats(0.05, 40)
	if st.MeanHotCoAppear != 0 || st.FracHotAbove != 0 {
		t.Errorf("empty graph stats = %+v", st)
	}
}

func TestPrune(t *testing.T) {
	g := mustGraph(t, 10, [][]Vertex{
		{0},                   // too small with MinEdgeSize 2
		{1, 2},                // kept
		{3, 4, 5, 6, 7, 8, 9}, // truncated at 4
		{0, 1},                // sampled out with SampleEvery 2? index 3 -> dropped
		{2, 3},                // kept (index 4)
	})
	pruned, st := g.Prune(PruneOptions{MaxEdgeSize: 4, MinEdgeSize: 2, SampleEvery: 2})
	// SampleEvery 2 keeps even-indexed edges 0,2,4; edge 0 then fails
	// MinEdgeSize; edge 2 truncates to 4 members; edge 4 kept whole.
	if st.EdgesIn != 5 || st.EdgesKept != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.EdgesSampledOut != 2 || st.EdgesTooSmall != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.PinsTruncated != 3 {
		t.Errorf("PinsTruncated = %d, want 3", st.PinsTruncated)
	}
	if pruned.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", pruned.NumEdges())
	}
	if pruned.EdgeSize(0) != 4 {
		t.Errorf("truncated edge size = %d, want 4", pruned.EdgeSize(0))
	}
	if pruned.NumVertices() != g.NumVertices() {
		t.Error("Prune changed the vertex space")
	}
}

func TestPruneNoOp(t *testing.T) {
	g := mustGraph(t, 5, [][]Vertex{{0, 1}, {2, 3, 4}})
	pruned, st := g.Prune(PruneOptions{})
	if st.EdgesKept != 2 || pruned.NumEdges() != 2 || pruned.NumPins() != g.NumPins() {
		t.Errorf("no-op prune altered the graph: %+v", st)
	}
}
