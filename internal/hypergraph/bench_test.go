package hypergraph

import (
	"testing"

	"maxembed/internal/workload"
)

func benchGraph(b *testing.B) (*Graph, *workload.Trace) {
	b.Helper()
	tr, err := workload.Generate(workload.Criteo.Scaled(0.05))
	if err != nil {
		b.Fatal(err)
	}
	g, err := FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		b.Fatal(err)
	}
	return g, tr
}

func BenchmarkFromQueries(b *testing.B) {
	tr, err := workload.Generate(workload.Criteo.Scaled(0.05))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromQueries(tr.NumItems, tr.Queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTotalConnectivity(b *testing.B) {
	g, _ := benchGraph(b)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(v / 15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.TotalConnectivity(assign)
	}
}

func BenchmarkCoOccurrenceTop(b *testing.B) {
	g, _ := benchGraph(b)
	c := NewCoOccurrence(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Top(Vertex(i%g.NumVertices()), 14, nil)
	}
}
