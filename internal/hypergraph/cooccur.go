package hypergraph

import "sort"

// CoOccurrence counts, for a base vertex, how often every other vertex
// appears in the same hyperedge as the base. It is the primitive behind
// replica-cluster construction (§5.3 step 4) and FPR cluster refill (§5.2).
type CoOccurrence struct {
	g *Graph
	// counts is reused across calls to avoid reallocating an N-sized map;
	// touched records which entries must be reset.
	counts  map[Vertex]int
	touched []Vertex
}

// NewCoOccurrence returns a counter bound to g.
func NewCoOccurrence(g *Graph) *CoOccurrence {
	return &CoOccurrence{g: g, counts: make(map[Vertex]int)}
}

// Top returns up to n vertices that co-occur most frequently with base,
// excluding base itself and any vertex for which exclude returns true
// (exclude may be nil). Ties break toward the lower vertex id so results
// are deterministic. The returned slice is freshly allocated.
func (c *CoOccurrence) Top(base Vertex, n int, exclude func(Vertex) bool) []Vertex {
	if n <= 0 {
		return nil
	}
	for _, e := range c.g.IncidentEdges(base) {
		for _, v := range c.g.Edge(e) {
			if v == base {
				continue
			}
			if _, ok := c.counts[v]; !ok {
				c.touched = append(c.touched, v)
			}
			c.counts[v]++
		}
	}
	cands := make([]Vertex, 0, len(c.touched))
	for _, v := range c.touched {
		if exclude == nil || !exclude(v) {
			cands = append(cands, v)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		ci, cj := c.counts[cands[i]], c.counts[cands[j]]
		if ci != cj {
			return ci > cj
		}
		return cands[i] < cands[j]
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]Vertex, len(cands))
	copy(out, cands)
	// Reset scratch state for the next call.
	for _, v := range c.touched {
		delete(c.counts, v)
	}
	c.touched = c.touched[:0]
	return out
}

// TopForSet returns up to n vertices co-occurring most frequently with any
// member of the given set, excluding set members themselves and vertices
// for which exclude returns true. Used by FPR to refill a finer cluster
// with the most co-appearing outside vertices.
func (c *CoOccurrence) TopForSet(set []Vertex, n int, exclude func(Vertex) bool) []Vertex {
	if n <= 0 {
		return nil
	}
	inSet := make(map[Vertex]struct{}, len(set))
	for _, v := range set {
		inSet[v] = struct{}{}
	}
	for _, base := range set {
		for _, e := range c.g.IncidentEdges(base) {
			for _, v := range c.g.Edge(e) {
				if _, ok := inSet[v]; ok {
					continue
				}
				if _, ok := c.counts[v]; !ok {
					c.touched = append(c.touched, v)
				}
				c.counts[v]++
			}
		}
	}
	cands := make([]Vertex, 0, len(c.touched))
	for _, v := range c.touched {
		if exclude == nil || !exclude(v) {
			cands = append(cands, v)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		ci, cj := c.counts[cands[i]], c.counts[cands[j]]
		if ci != cj {
			return ci > cj
		}
		return cands[i] < cands[j]
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]Vertex, len(cands))
	copy(out, cands)
	for _, v := range c.touched {
		delete(c.counts, v)
	}
	c.touched = c.touched[:0]
	return out
}
