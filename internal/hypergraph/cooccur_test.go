package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCoOccurrenceTop(t *testing.T) {
	// Vertex 0 co-occurs: with 1 three times, with 2 twice, with 3 once.
	g := mustGraph(t, 5, [][]Vertex{
		{0, 1, 2},
		{0, 1, 2},
		{0, 1, 3},
		{4}, // unrelated
	})
	c := NewCoOccurrence(g)
	got := c.Top(0, 3, nil)
	want := []Vertex{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Top(0,3) = %v, want %v", got, want)
	}
	// n smaller than candidates truncates.
	if got := c.Top(0, 1, nil); !reflect.DeepEqual(got, []Vertex{1}) {
		t.Errorf("Top(0,1) = %v, want [1]", got)
	}
	// exclude filters.
	got = c.Top(0, 3, func(v Vertex) bool { return v == 1 })
	want = []Vertex{2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Top with exclude = %v, want %v", got, want)
	}
	// Base never appears in its own result.
	for _, v := range c.Top(0, 10, nil) {
		if v == 0 {
			t.Error("Top returned the base vertex")
		}
	}
}

func TestCoOccurrenceTopTieBreak(t *testing.T) {
	// 2 and 1 both co-occur with 0 once; lower id wins ties.
	g := mustGraph(t, 3, [][]Vertex{{0, 2}, {0, 1}})
	c := NewCoOccurrence(g)
	got := c.Top(0, 2, nil)
	want := []Vertex{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Top = %v, want %v", got, want)
	}
}

func TestCoOccurrenceScratchReset(t *testing.T) {
	g := mustGraph(t, 4, [][]Vertex{{0, 1}, {2, 3}})
	c := NewCoOccurrence(g)
	first := c.Top(0, 5, nil)
	if !reflect.DeepEqual(first, []Vertex{1}) {
		t.Fatalf("Top(0) = %v, want [1]", first)
	}
	// If scratch state leaked, 1 would pollute this result.
	second := c.Top(2, 5, nil)
	if !reflect.DeepEqual(second, []Vertex{3}) {
		t.Errorf("Top(2) = %v, want [3]", second)
	}
}

func TestTopForSet(t *testing.T) {
	g := mustGraph(t, 6, [][]Vertex{
		{0, 1, 4},
		{0, 4},
		{1, 5},
		{2, 3},
	})
	c := NewCoOccurrence(g)
	// Set {0,1}: 4 co-occurs 3 times (twice with 0, once via edge 0 counted
	// once per base => edge {0,1,4} counts 4 for base 0 and base 1).
	got := c.TopForSet([]Vertex{0, 1}, 2, nil)
	want := []Vertex{4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopForSet = %v, want %v", got, want)
	}
	// Set members are never returned.
	for _, v := range c.TopForSet([]Vertex{0, 1}, 10, nil) {
		if v == 0 || v == 1 {
			t.Error("TopForSet returned a set member")
		}
	}
}

// TopForSet with a set whose members share edges: overlap must not double
// count, and counts accumulate per (base, edge) incidence exactly as the
// documented semantics — each set member contributes its own incident
// edges, so a vertex co-occurring with two members in one edge is counted
// once per member.
func TestTopForSetOverlappingSets(t *testing.T) {
	g := mustGraph(t, 6, [][]Vertex{
		{0, 1, 4}, // 4 seen from base 0 and from base 1 → counts twice
		{0, 4},    // 4 from base 0
		{1, 4},    // 4 from base 1
		{0, 5},    // 5 from base 0
		{2, 5},    // outside the set
	})
	c := NewCoOccurrence(g)
	got := c.TopForSet([]Vertex{0, 1}, 3, nil)
	// Counts: 4 → 4 (edge 0 twice, edges 1 and 2 once each), 5 → 1.
	want := []Vertex{4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopForSet = %v, want %v", got, want)
	}
	// A set with duplicate members double-counts those members' edges but
	// still never returns a member and stays deterministic.
	dup := c.TopForSet([]Vertex{0, 0, 1}, 5, nil)
	for _, v := range dup {
		if v == 0 || v == 1 {
			t.Errorf("TopForSet with duplicate members returned member %d", v)
		}
	}
	again := c.TopForSet([]Vertex{0, 0, 1}, 5, nil)
	if !reflect.DeepEqual(dup, again) {
		t.Errorf("TopForSet with duplicates not deterministic: %v vs %v", dup, again)
	}
}

// TopForSet where exclude rejects every candidate must return an empty
// slice and leave the scratch state clean for the next call.
func TestTopForSetExcludeAll(t *testing.T) {
	g := mustGraph(t, 5, [][]Vertex{
		{0, 2, 3},
		{1, 3, 4},
	})
	c := NewCoOccurrence(g)
	got := c.TopForSet([]Vertex{0, 1}, 10, func(Vertex) bool { return true })
	if len(got) != 0 {
		t.Fatalf("exclude-all TopForSet = %v, want empty", got)
	}
	// Scratch must have been reset: a follow-up unfiltered call sees the
	// true counts, not leftovers.
	next := c.TopForSet([]Vertex{0}, 10, nil)
	want := []Vertex{2, 3}
	if !reflect.DeepEqual(next, want) {
		t.Errorf("TopForSet after exclude-all = %v, want %v", next, want)
	}
	// A set covering the whole vertex space has no candidates at all.
	all := c.TopForSet([]Vertex{0, 1, 2, 3, 4}, 10, nil)
	if len(all) != 0 {
		t.Errorf("TopForSet over full vertex set = %v, want empty", all)
	}
}

// Placement consumes TopForSet output, so equal-weight candidates must come
// back in a stable order (ascending vertex id) on every call.
func TestTopForSetEqualWeightDeterminism(t *testing.T) {
	// Vertices 2..5 each co-occur with the set exactly once.
	g := mustGraph(t, 7, [][]Vertex{
		{0, 5},
		{0, 3},
		{1, 2},
		{1, 4},
	})
	c := NewCoOccurrence(g)
	want := []Vertex{2, 3, 4, 5}
	for i := 0; i < 3; i++ {
		got := c.TopForSet([]Vertex{0, 1}, 10, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("call %d: TopForSet = %v, want %v (equal weights must tie-break by id)", i, got, want)
		}
	}
	// Truncation under equal weights keeps the same prefix.
	if got := c.TopForSet([]Vertex{0, 1}, 2, nil); !reflect.DeepEqual(got, []Vertex{2, 3}) {
		t.Errorf("truncated TopForSet = %v, want [2 3]", got)
	}
}

func TestTopZeroN(t *testing.T) {
	g := mustGraph(t, 2, [][]Vertex{{0, 1}})
	c := NewCoOccurrence(g)
	if got := c.Top(0, 0, nil); got != nil {
		t.Errorf("Top(n=0) = %v, want nil", got)
	}
	if got := c.TopForSet([]Vertex{0}, 0, nil); got != nil {
		t.Errorf("TopForSet(n=0) = %v, want nil", got)
	}
}

// Property: Top counts match a naive recount, results are unique and never
// include the base, and repeated calls give identical results.
func TestCoOccurrenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(30)
		queries := make([][]Vertex, 1+rng.Intn(40))
		for i := range queries {
			l := 1 + rng.Intn(6)
			q := make([]Vertex, l)
			for j := range q {
				q[j] = Vertex(rng.Intn(n))
			}
			queries[i] = q
		}
		g := mustGraph(t, n, queries)
		c := NewCoOccurrence(g)
		base := Vertex(rng.Intn(n))
		got := c.Top(base, n, nil)
		again := c.Top(base, n, nil)
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("Top not deterministic: %v vs %v", got, again)
		}
		// Naive recount.
		counts := map[Vertex]int{}
		for e := 0; e < g.NumEdges(); e++ {
			members := g.Edge(EdgeID(e))
			has := false
			for _, v := range members {
				if v == base {
					has = true
					break
				}
			}
			if !has {
				continue
			}
			for _, v := range members {
				if v != base {
					counts[v]++
				}
			}
		}
		if len(got) != len(counts) {
			t.Fatalf("Top len = %d, want %d", len(got), len(counts))
		}
		seen := map[Vertex]bool{}
		prev := -1
		for _, v := range got {
			if v == base || seen[v] {
				t.Fatalf("invalid Top result %v (base %d)", got, base)
			}
			seen[v] = true
			if prev >= 0 && counts[v] > prev {
				t.Fatalf("Top not sorted by count: %v", got)
			}
			prev = counts[v]
		}
	}
}
