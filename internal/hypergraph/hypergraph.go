// Package hypergraph provides a compact hypergraph representation used by
// the offline phase of MaxEmbed. Vertices model embedding keys and
// hyperedges model embedding lookup queries: the edge connects every key
// that appeared in one query. The representation is CSR (compressed sparse
// row) in both directions — edge → member vertices and vertex → incident
// edges — so partitioning and replication can stream over either side
// without per-node allocations.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
)

// Vertex identifies a vertex (an embedding key) in the hypergraph.
// Vertices are dense: 0..NumVertices-1.
type Vertex = uint32

// EdgeID identifies a hyperedge (a query) in the hypergraph.
type EdgeID = uint32

// Graph is an immutable hypergraph. Build one with a Builder or FromQueries.
type Graph struct {
	numVertices int

	// CSR of edges: members of edge e are edgeMembers[edgeOff[e]:edgeOff[e+1]].
	edgeOff     []uint64
	edgeMembers []Vertex

	// CSR of incidence: edges containing vertex v are
	// vertexEdges[vertexOff[v]:vertexOff[v+1]].
	vertexOff   []uint64
	vertexEdges []EdgeID
}

// ErrVertexRange reports an edge member outside [0, numVertices).
var ErrVertexRange = errors.New("hypergraph: vertex out of range")

// Builder accumulates hyperedges and produces an immutable Graph.
// The zero value is ready to use once NumVertices is set via NewBuilder.
type Builder struct {
	numVertices int
	edgeOff     []uint64
	edgeMembers []Vertex
}

// NewBuilder returns a Builder for a graph over numVertices vertices.
func NewBuilder(numVertices int) *Builder {
	return &Builder{
		numVertices: numVertices,
		edgeOff:     []uint64{0},
	}
}

// AddEdge appends one hyperedge whose members are the given vertices.
// Duplicate members within one edge are deduplicated; empty and
// single-member edges are kept (they contribute to vertex frequency even
// though they cannot span buckets). AddEdge returns an error if any member
// is out of range.
func (b *Builder) AddEdge(members []Vertex) error {
	start := len(b.edgeMembers)
	for _, v := range members {
		if int(v) >= b.numVertices {
			b.edgeMembers = b.edgeMembers[:start]
			return fmt.Errorf("%w: %d >= %d", ErrVertexRange, v, b.numVertices)
		}
		b.edgeMembers = append(b.edgeMembers, v)
	}
	// Deduplicate in place: sort the freshly appended span, then compact.
	span := b.edgeMembers[start:]
	sort.Slice(span, func(i, j int) bool { return span[i] < span[j] })
	w := 0
	for i, v := range span {
		if i == 0 || v != span[w-1] {
			span[w] = v
			w++
		}
	}
	b.edgeMembers = b.edgeMembers[:start+w]
	b.edgeOff = append(b.edgeOff, uint64(len(b.edgeMembers)))
	return nil
}

// Build finalizes the builder into an immutable Graph, constructing the
// vertex→edge incidence CSR. The builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{
		numVertices: b.numVertices,
		edgeOff:     b.edgeOff,
		edgeMembers: b.edgeMembers,
	}
	g.buildIncidence()
	b.edgeOff = nil
	b.edgeMembers = nil
	return g
}

func (g *Graph) buildIncidence() {
	counts := make([]uint64, g.numVertices+1)
	for _, v := range g.edgeMembers {
		counts[v+1]++
	}
	for i := 1; i <= g.numVertices; i++ {
		counts[i] += counts[i-1]
	}
	g.vertexOff = counts
	g.vertexEdges = make([]EdgeID, len(g.edgeMembers))
	// cursor tracks the next write position per vertex.
	cursor := make([]uint64, g.numVertices)
	copy(cursor, g.vertexOff[:g.numVertices])
	for e := 0; e < g.NumEdges(); e++ {
		for _, v := range g.Edge(EdgeID(e)) {
			g.vertexEdges[cursor[v]] = EdgeID(e)
			cursor[v]++
		}
	}
}

// FromQueries builds a graph treating each query (slice of keys) as one
// hyperedge over numVertices vertices.
func FromQueries(numVertices int, queries [][]Vertex) (*Graph, error) {
	b := NewBuilder(numVertices)
	for i, q := range queries {
		if err := b.AddEdge(q); err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
	}
	return b.Build(), nil
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumEdges returns the number of hyperedges.
func (g *Graph) NumEdges() int { return len(g.edgeOff) - 1 }

// NumPins returns the total number of (edge, vertex) incidences, i.e. the
// sum of edge sizes after in-edge deduplication.
func (g *Graph) NumPins() int { return len(g.edgeMembers) }

// Edge returns the member vertices of edge e, sorted ascending.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) Edge(e EdgeID) []Vertex {
	return g.edgeMembers[g.edgeOff[e]:g.edgeOff[e+1]]
}

// EdgeSize returns the number of distinct members of edge e.
func (g *Graph) EdgeSize(e EdgeID) int {
	return int(g.edgeOff[e+1] - g.edgeOff[e])
}

// IncidentEdges returns the edges containing vertex v, in edge-id order.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) IncidentEdges(v Vertex) []EdgeID {
	return g.vertexEdges[g.vertexOff[v]:g.vertexOff[v+1]]
}

// Degree returns the number of edges containing v — the vertex's access
// frequency when edges model queries.
func (g *Graph) Degree(v Vertex) int {
	return int(g.vertexOff[v+1] - g.vertexOff[v])
}

// MeanEdgeSize returns the average number of distinct members per edge,
// or 0 for an edgeless graph.
func (g *Graph) MeanEdgeSize() float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	return float64(g.NumPins()) / float64(g.NumEdges())
}

// Connectivity returns λ(e): the number of distinct values that assign
// takes over e's members. assign maps a vertex to its bucket. When edges
// model queries and buckets model SSD pages, λ(e) is exactly the number of
// page reads query e costs under single-copy placement.
func (g *Graph) Connectivity(e EdgeID, assign []int32) int {
	members := g.Edge(e)
	switch len(members) {
	case 0:
		return 0
	case 1:
		return 1
	}
	// Edges are small (query length); count distinct buckets with a small
	// stack-friendly scan instead of allocating a map.
	var seen [16]int32
	distinct := 0
	var spill map[int32]struct{}
	for _, v := range members {
		b := assign[v]
		found := false
		for i := 0; i < distinct && i < len(seen); i++ {
			if seen[i] == b {
				found = true
				break
			}
		}
		if !found && spill != nil {
			_, found = spill[b]
		}
		if found {
			continue
		}
		if distinct < len(seen) {
			seen[distinct] = b
		} else {
			if spill == nil {
				spill = make(map[int32]struct{})
			}
			spill[b] = struct{}{}
		}
		distinct++
	}
	return distinct
}

// TotalConnectivity returns Σ_e λ(e) under assign — the total page-read
// count the trace would cost with one copy per key and no cache.
func (g *Graph) TotalConnectivity(assign []int32) int64 {
	var total int64
	for e := 0; e < g.NumEdges(); e++ {
		total += int64(g.Connectivity(EdgeID(e), assign))
	}
	return total
}

// Stats summarizes a graph.
type Stats struct {
	NumVertices  int
	NumEdges     int
	NumPins      int
	MeanEdgeSize float64
	MaxEdgeSize  int
	MaxDegree    int
}

// ComputeStats returns summary statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		NumVertices:  g.NumVertices(),
		NumEdges:     g.NumEdges(),
		NumPins:      g.NumPins(),
		MeanEdgeSize: g.MeanEdgeSize(),
	}
	for e := 0; e < g.NumEdges(); e++ {
		if n := g.EdgeSize(EdgeID(e)); n > s.MaxEdgeSize {
			s.MaxEdgeSize = n
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(Vertex(v)); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s
}
