package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, queries [][]Vertex) *Graph {
	t.Helper()
	g, err := FromQueries(n, queries)
	if err != nil {
		t.Fatalf("FromQueries: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, 5, nil)
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
	if g.NumPins() != 0 {
		t.Errorf("NumPins = %d, want 0", g.NumPins())
	}
	if g.MeanEdgeSize() != 0 {
		t.Errorf("MeanEdgeSize = %v, want 0", g.MeanEdgeSize())
	}
	for v := Vertex(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestEdgeMembersSortedAndDeduped(t *testing.T) {
	g := mustGraph(t, 10, [][]Vertex{{3, 1, 3, 2, 1}})
	got := g.Edge(0)
	want := []Vertex{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Edge(0) = %v, want %v", got, want)
	}
	if g.EdgeSize(0) != 3 {
		t.Errorf("EdgeSize(0) = %d, want 3", g.EdgeSize(0))
	}
}

func TestVertexOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge([]Vertex{0, 3}); err == nil {
		t.Fatal("AddEdge with out-of-range member: got nil error")
	}
	// The failed edge must not have been recorded.
	if err := b.AddEdge([]Vertex{0, 1}); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.NumPins() != 2 {
		t.Errorf("NumPins = %d, want 2", g.NumPins())
	}
}

func TestIncidence(t *testing.T) {
	g := mustGraph(t, 4, [][]Vertex{
		{0, 1},
		{1, 2},
		{0, 1, 2, 3},
	})
	cases := []struct {
		v    Vertex
		want []EdgeID
	}{
		{0, []EdgeID{0, 2}},
		{1, []EdgeID{0, 1, 2}},
		{2, []EdgeID{1, 2}},
		{3, []EdgeID{2}},
	}
	for _, c := range cases {
		if got := g.IncidentEdges(c.v); !reflect.DeepEqual(got, c.want) {
			t.Errorf("IncidentEdges(%d) = %v, want %v", c.v, got, c.want)
		}
		if g.Degree(c.v) != len(c.want) {
			t.Errorf("Degree(%d) = %d, want %d", c.v, g.Degree(c.v), len(c.want))
		}
	}
}

func TestConnectivity(t *testing.T) {
	g := mustGraph(t, 6, [][]Vertex{
		{0, 1, 2},
		{3},
		{0, 5},
		{},
	})
	assign := []int32{0, 0, 1, 1, 2, 2}
	if got := g.Connectivity(0, assign); got != 2 {
		t.Errorf("Connectivity(edge0) = %d, want 2", got)
	}
	if got := g.Connectivity(1, assign); got != 1 {
		t.Errorf("Connectivity(edge1) = %d, want 1", got)
	}
	if got := g.Connectivity(2, assign); got != 2 {
		t.Errorf("Connectivity(edge2) = %d, want 2", got)
	}
	if got := g.Connectivity(3, assign); got != 0 {
		t.Errorf("Connectivity(empty edge) = %d, want 0", got)
	}
	if got := g.TotalConnectivity(assign); got != 5 {
		t.Errorf("TotalConnectivity = %d, want 5", got)
	}
}

// TestConnectivityLargeEdge exercises the spill-to-map path for edges that
// span more than 16 distinct buckets.
func TestConnectivityLargeEdge(t *testing.T) {
	const n = 40
	members := make([]Vertex, n)
	assign := make([]int32, n)
	for i := range members {
		members[i] = Vertex(i)
		assign[i] = int32(i / 2) // 20 distinct buckets
	}
	g := mustGraph(t, n, [][]Vertex{members})
	if got := g.Connectivity(0, assign); got != 20 {
		t.Errorf("Connectivity = %d, want 20", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := mustGraph(t, 5, [][]Vertex{
		{0, 1, 2, 3},
		{0, 1},
		{0},
	})
	s := g.ComputeStats()
	if s.NumVertices != 5 || s.NumEdges != 3 || s.NumPins != 7 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxEdgeSize != 4 {
		t.Errorf("MaxEdgeSize = %d, want 4", s.MaxEdgeSize)
	}
	if s.MaxDegree != 3 {
		t.Errorf("MaxDegree = %d, want 3", s.MaxDegree)
	}
	if want := 7.0 / 3.0; s.MeanEdgeSize != want {
		t.Errorf("MeanEdgeSize = %v, want %v", s.MeanEdgeSize, want)
	}
}

// Property: for random graphs, incidence is the exact transpose of edge
// membership, and Σ degree == Σ edge size == NumPins.
func TestIncidenceTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		nEdges := rng.Intn(60)
		queries := make([][]Vertex, nEdges)
		for i := range queries {
			l := rng.Intn(8)
			q := make([]Vertex, l)
			for j := range q {
				q[j] = Vertex(rng.Intn(n))
			}
			queries[i] = q
		}
		g, err := FromQueries(n, queries)
		if err != nil {
			return false
		}
		pins := 0
		for e := 0; e < g.NumEdges(); e++ {
			pins += g.EdgeSize(EdgeID(e))
			for _, v := range g.Edge(EdgeID(e)) {
				found := false
				for _, ie := range g.IncidentEdges(v) {
					if ie == EdgeID(e) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(Vertex(v))
		}
		return pins == g.NumPins() && degSum == g.NumPins()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: connectivity is between 1 and min(edge size, #buckets) for
// non-empty edges, and TotalConnectivity is the sum of per-edge values.
func TestConnectivityBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		nBuckets := 1 + rng.Intn(8)
		assign := make([]int32, n)
		for i := range assign {
			assign[i] = int32(rng.Intn(nBuckets))
		}
		nEdges := 1 + rng.Intn(30)
		queries := make([][]Vertex, nEdges)
		for i := range queries {
			l := 1 + rng.Intn(40)
			q := make([]Vertex, l)
			for j := range q {
				q[j] = Vertex(rng.Intn(n))
			}
			queries[i] = q
		}
		g, err := FromQueries(n, queries)
		if err != nil {
			return false
		}
		var sum int64
		for e := 0; e < g.NumEdges(); e++ {
			lam := g.Connectivity(EdgeID(e), assign)
			size := g.EdgeSize(EdgeID(e))
			if lam < 1 || lam > size || lam > nBuckets {
				return false
			}
			sum += int64(lam)
		}
		return sum == g.TotalConnectivity(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
