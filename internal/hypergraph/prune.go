package hypergraph

// PruneOptions controls preprocessing of raw query logs before
// partitioning. Production logs (Table 3 reaches 4.37B queries / 1.1 TB)
// are routinely reduced before hypergraph construction: very long queries
// carry little per-pin locality signal but quadratic partitioning cost,
// duplicate queries add weight without new structure, and sampling bounds
// the total size. Pruning trades a little signal for a large cut in
// offline cost (Table 1's hours-scale runs).
type PruneOptions struct {
	// MaxEdgeSize drops the overflow of edges with more members (keeping
	// the first MaxEdgeSize after sorting — a deterministic truncation).
	// Zero keeps all members.
	MaxEdgeSize int
	// MinEdgeSize drops edges with fewer distinct members (singletons
	// cannot influence co-location). Zero keeps all edges.
	MinEdgeSize int
	// SampleEvery keeps one edge in every SampleEvery (1 or 0 keeps all).
	SampleEvery int
}

// Prune returns a new graph with the options applied. The vertex space is
// unchanged; only edges are filtered. Statistics of what was dropped are
// returned alongside.
func (g *Graph) Prune(opts PruneOptions) (*Graph, PruneStats) {
	var st PruneStats
	b := NewBuilder(g.NumVertices())
	for e := 0; e < g.NumEdges(); e++ {
		st.EdgesIn++
		if opts.SampleEvery > 1 && e%opts.SampleEvery != 0 {
			st.EdgesSampledOut++
			continue
		}
		members := g.Edge(EdgeID(e))
		if opts.MinEdgeSize > 0 && len(members) < opts.MinEdgeSize {
			st.EdgesTooSmall++
			continue
		}
		if opts.MaxEdgeSize > 0 && len(members) > opts.MaxEdgeSize {
			st.PinsTruncated += len(members) - opts.MaxEdgeSize
			members = members[:opts.MaxEdgeSize]
		}
		// Members are already sorted and deduplicated; AddEdge re-checks
		// cheaply and cannot fail for an existing graph's edge.
		if err := b.AddEdge(members); err != nil {
			// Unreachable for a valid source graph; drop defensively.
			st.EdgesTooSmall++
			continue
		}
		st.EdgesKept++
	}
	return b.Build(), st
}

// PruneStats reports what Prune removed.
type PruneStats struct {
	EdgesIn, EdgesKept             int
	EdgesSampledOut, EdgesTooSmall int
	PinsTruncated                  int
}
