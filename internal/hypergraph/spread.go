package hypergraph

// Per-query-set shard-spread scoring. When edges model queries, vertices
// model keys, and pages stripe onto shards as p mod shards (ssd.Array's
// layout), a query's page reads land on the shards of its members' pages.
// The deepest shard bounds the query's SSD wait: reads on distinct shards
// proceed in parallel across queue pairs, reads on the same shard queue
// behind each other. ShardDepth and ShardSpread quantify exactly that —
// the objective placement.Despread minimizes and the serving engine's
// per-query MaxShardDepth stat measures online.

// SpreadStats summarizes how an assignment spreads hyperedges across
// shards: per-edge maximum same-shard page depth (the serial bound) and
// distinct shards touched (the parallelism achieved).
type SpreadStats struct {
	// Edges is the number of non-empty edges scored.
	Edges int
	// MeanMaxDepth is the mean over edges of the deepest shard's distinct
	// page count — 1.0 is a perfect spread (every page of every query on
	// its own shard).
	MeanMaxDepth float64
	// MaxMaxDepth is the worst single-edge depth observed.
	MaxMaxDepth int
	// MeanShards is the mean number of distinct shards an edge touches.
	MeanShards float64
}

// ShardDepth returns, for edge e, the depth of its deepest shard — the
// number of distinct pages among its members' pages that stripe onto the
// single most-loaded shard — and the number of distinct shards touched.
// pageOf maps each vertex to its page (layout.Layout.Home works directly);
// a page's shard is page mod shards. Empty edges return (0, 0).
func (g *Graph) ShardDepth(e EdgeID, pageOf []uint32, shards int) (maxDepth, shardsTouched int) {
	if shards < 1 {
		shards = 1
	}
	members := g.Edge(e)
	if len(members) == 0 {
		return 0, 0
	}
	// Distinct pages via a small stack scan: edges are query-sized, so the
	// quadratic dedup beats allocating a map (same reasoning as
	// Connectivity).
	var stack [64]uint32
	pages := stack[:0]
	for _, v := range members {
		if int(v) >= len(pageOf) {
			continue
		}
		p := pageOf[v]
		dup := false
		for _, q := range pages {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			pages = append(pages, p)
		}
	}
	var depthStack [64]int
	var depth []int
	if shards <= len(depthStack) {
		depth = depthStack[:shards]
	} else {
		depth = make([]int, shards)
	}
	for _, p := range pages {
		s := int(p % uint32(shards))
		depth[s]++
		if depth[s] == 1 {
			shardsTouched++
		}
		if depth[s] > maxDepth {
			maxDepth = depth[s]
		}
	}
	return maxDepth, shardsTouched
}

// ShardSpread scores every edge with ShardDepth and returns the summary.
// Empty edges are skipped.
func (g *Graph) ShardSpread(pageOf []uint32, shards int) SpreadStats {
	var st SpreadStats
	var sumDepth, sumShards int64
	for e := 0; e < g.NumEdges(); e++ {
		d, t := g.ShardDepth(EdgeID(e), pageOf, shards)
		if t == 0 {
			continue
		}
		st.Edges++
		sumDepth += int64(d)
		sumShards += int64(t)
		if d > st.MaxMaxDepth {
			st.MaxMaxDepth = d
		}
	}
	if st.Edges > 0 {
		st.MeanMaxDepth = float64(sumDepth) / float64(st.Edges)
		st.MeanShards = float64(sumShards) / float64(st.Edges)
	}
	return st
}
