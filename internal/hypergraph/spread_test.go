package hypergraph

import (
	"math/rand"
	"testing"
)

func TestShardDepth(t *testing.T) {
	// Keys 0..7 live on pages 0..3 (two keys per page).
	pageOf := []uint32{0, 0, 1, 1, 2, 2, 3, 3}
	g := mustGraph(t, 8, [][]Vertex{
		{0, 2, 4, 6}, // pages 0,1,2,3
		{0, 1},       // page 0 only
		{0, 4},       // pages 0,2 — same residue mod 2
		{},           // empty
	})

	// 4 shards: pages 0..3 each on their own shard.
	if d, s := g.ShardDepth(0, pageOf, 4); d != 1 || s != 4 {
		t.Errorf("edge 0 on 4 shards: depth=%d shards=%d, want 1,4", d, s)
	}
	// 2 shards: pages {0,2} on shard 0, {1,3} on shard 1 — depth 2.
	if d, s := g.ShardDepth(0, pageOf, 2); d != 2 || s != 2 {
		t.Errorf("edge 0 on 2 shards: depth=%d shards=%d, want 2,2", d, s)
	}
	// One page, even with two member keys, is depth 1.
	if d, s := g.ShardDepth(1, pageOf, 4); d != 1 || s != 1 {
		t.Errorf("edge 1: depth=%d shards=%d, want 1,1", d, s)
	}
	// Aliasing residues: pages 0 and 2 collide at 2 shards.
	if d, s := g.ShardDepth(2, pageOf, 2); d != 2 || s != 1 {
		t.Errorf("edge 2 on 2 shards: depth=%d shards=%d, want 2,1", d, s)
	}
	if d, s := g.ShardDepth(3, pageOf, 4); d != 0 || s != 0 {
		t.Errorf("empty edge: depth=%d shards=%d, want 0,0", d, s)
	}
	// One shard degenerates to distinct-page count.
	if d, s := g.ShardDepth(0, pageOf, 1); d != 4 || s != 1 {
		t.Errorf("edge 0 on 1 shard: depth=%d shards=%d, want 4,1", d, s)
	}
}

func TestShardSpreadSummary(t *testing.T) {
	pageOf := []uint32{0, 1, 2, 3}
	g := mustGraph(t, 4, [][]Vertex{
		{0, 1, 2, 3}, // pages 0..3: depth 1 on 4 shards, 4 shards touched
		{0, 2},       // pages 0,2: collide mod 2, spread mod 4
		{},           // skipped
	})
	st := g.ShardSpread(pageOf, 4)
	if st.Edges != 2 {
		t.Fatalf("Edges = %d, want 2", st.Edges)
	}
	if st.MeanMaxDepth != 1 || st.MaxMaxDepth != 1 {
		t.Errorf("4-shard depth: mean=%v max=%d, want 1,1", st.MeanMaxDepth, st.MaxMaxDepth)
	}
	if st.MeanShards != 3 { // (4 + 2) / 2
		t.Errorf("MeanShards = %v, want 3", st.MeanShards)
	}
	st2 := g.ShardSpread(pageOf, 2)
	if st2.MeanMaxDepth != 2 || st2.MaxMaxDepth != 2 {
		t.Errorf("2-shard depth: mean=%v max=%d, want 2,2", st2.MeanMaxDepth, st2.MaxMaxDepth)
	}
}

// Property: depth ≥ ceil(pages/shards), depth ≤ pages, shardsTouched ≤
// min(pages, shards), and Σ over shards of per-shard counts equals the
// distinct-page count (checked against a naive recount).
func TestShardDepthProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(40)
		numPages := 1 + rng.Intn(10)
		shards := 1 + rng.Intn(6)
		pageOf := make([]uint32, n)
		for i := range pageOf {
			pageOf[i] = uint32(rng.Intn(numPages))
		}
		queries := make([][]Vertex, 1+rng.Intn(20))
		for i := range queries {
			l := 1 + rng.Intn(8)
			q := make([]Vertex, l)
			for j := range q {
				q[j] = Vertex(rng.Intn(n))
			}
			queries[i] = q
		}
		g := mustGraph(t, n, queries)
		for e := 0; e < g.NumEdges(); e++ {
			d, touched := g.ShardDepth(EdgeID(e), pageOf, shards)
			pages := map[uint32]bool{}
			perShard := make([]int, shards)
			for _, v := range g.Edge(EdgeID(e)) {
				p := pageOf[v]
				if !pages[p] {
					pages[p] = true
					perShard[int(p)%shards]++
				}
			}
			wantDepth, wantTouched := 0, 0
			for _, c := range perShard {
				if c > 0 {
					wantTouched++
				}
				if c > wantDepth {
					wantDepth = c
				}
			}
			if d != wantDepth || touched != wantTouched {
				t.Fatalf("edge %d: got (%d,%d), naive (%d,%d)", e, d, touched, wantDepth, wantTouched)
			}
		}
	}
}
