package layout

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const layoutMagic = "MXLY1\n"

// ErrBadLayout reports a malformed serialized layout.
var ErrBadLayout = errors.New("layout: malformed layout stream")

// Encode writes the layout in a compact binary format: header, the key
// list of every page (varint-coded), and each key's home page. Replica
// lists are not stored — they are reconstructed on decode from the page
// lists (every appearance of a key on a page other than its home is a
// replica), which keeps the two representations consistent by
// construction.
func (l *Layout) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(layoutMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(l.NumKeys)); err != nil {
		return err
	}
	if err := put(uint64(l.Capacity)); err != nil {
		return err
	}
	if err := put(uint64(len(l.Pages))); err != nil {
		return err
	}
	for _, keys := range l.Pages {
		if err := put(uint64(len(keys))); err != nil {
			return err
		}
		for _, k := range keys {
			if err := put(uint64(k)); err != nil {
				return err
			}
		}
	}
	for _, h := range l.Home {
		if err := put(uint64(h)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeFrom reads a layout written by Encode and validates it.
func DecodeFrom(r io.Reader) (*Layout, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(layoutMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadLayout, err)
	}
	if string(magic) != layoutMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadLayout, magic)
	}
	get := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: %s: %v", ErrBadLayout, what, err)
		}
		return v, nil
	}
	const maxReasonable = 1 << 34
	numKeys, err := get("num keys")
	if err != nil {
		return nil, err
	}
	capacity, err := get("capacity")
	if err != nil {
		return nil, err
	}
	numPages, err := get("num pages")
	if err != nil {
		return nil, err
	}
	if numKeys > maxReasonable || numPages > maxReasonable || capacity == 0 || capacity > maxReasonable {
		return nil, fmt.Errorf("%w: implausible header %d/%d/%d", ErrBadLayout, numKeys, capacity, numPages)
	}
	// Allocations grow with the data actually present, never with header
	// claims alone (see the decoder fuzz targets).
	const maxPrealloc = 1 << 16
	prealloc := func(n uint64) uint64 {
		if n > maxPrealloc {
			return maxPrealloc
		}
		return n
	}
	l := &Layout{
		NumKeys:  int(numKeys),
		Capacity: int(capacity),
		Pages:    make([][]Key, 0, prealloc(numPages)),
	}
	for p := uint64(0); p < numPages; p++ {
		n, err := get("page size")
		if err != nil {
			return nil, err
		}
		if n > capacity {
			return nil, fmt.Errorf("%w: page %d size %d exceeds capacity %d", ErrBadLayout, p, n, capacity)
		}
		keys := make([]Key, 0, prealloc(n))
		for i := uint64(0); i < n; i++ {
			k, err := get("page key")
			if err != nil {
				return nil, err
			}
			if k >= numKeys {
				return nil, fmt.Errorf("%w: key %d out of range", ErrBadLayout, k)
			}
			keys = append(keys, Key(k))
		}
		l.Pages = append(l.Pages, keys)
	}
	l.Home = make([]PageID, 0, prealloc(numKeys))
	for k := uint64(0); k < numKeys; k++ {
		h, err := get("home page")
		if err != nil {
			return nil, err
		}
		if h >= numPages {
			return nil, fmt.Errorf("%w: home page %d out of range", ErrBadLayout, h)
		}
		l.Home = append(l.Home, PageID(h))
	}
	// Reconstruct replicas: ascending page order.
	for p, keys := range l.Pages {
		for _, k := range keys {
			if l.Home[k] == PageID(p) {
				continue
			}
			if l.Replicas == nil {
				l.Replicas = make([][]PageID, numKeys)
			}
			l.Replicas[k] = append(l.Replicas[k], PageID(p))
		}
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadLayout, err)
	}
	return l, nil
}
