package layout

import (
	"bytes"
	"reflect"
	"testing"
)

func TestLayoutCodecRoundTrip(t *testing.T) {
	l := Vanilla(50, 8)
	if _, err := l.AddReplicaPage([]Key{0, 9, 17, 33}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddReplicaPage([]Key{1, 9}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeFrom(&buf)
	if err != nil {
		t.Fatalf("DecodeFrom: %v", err)
	}
	if !reflect.DeepEqual(l, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", l, got)
	}
}

func TestLayoutCodecNoReplicas(t *testing.T) {
	l := Vanilla(10, 4)
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replicas != nil {
		t.Error("decode invented replicas")
	}
	if !reflect.DeepEqual(l.Pages, got.Pages) || !reflect.DeepEqual(l.Home, got.Home) {
		t.Error("round trip mismatch")
	}
}

func TestLayoutDecodeErrors(t *testing.T) {
	if _, err := DecodeFrom(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	l := Vanilla(10, 4)
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(layoutMagic); cut < len(full); cut++ {
		if _, err := DecodeFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Corrupt a key to be out of range: re-encode manually with a bad
	// home page by tampering the final byte (home of the last key).
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] = 0xEE // varint continuation with nothing after
	if _, err := DecodeFrom(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt stream accepted")
	}
}
