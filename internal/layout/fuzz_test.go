package layout

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrom asserts the layout decoder never panics and only returns
// layouts that pass Validate.
func FuzzDecodeFrom(f *testing.F) {
	l := Vanilla(10, 4)
	if _, err := l.AddReplicaPage([]Key{0, 5}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MXLY1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder returned invalid layout: %v", err)
		}
	})
}
