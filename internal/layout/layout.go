// Package layout defines the embedding-to-SSD-page placement produced by
// the offline phase (partitioning + replication) and consumed by the online
// phase (index construction, page selection) and the page store. It is the
// narrow waist between MaxEmbed's two halves.
package layout

import (
	"fmt"
	"sort"
)

// Key identifies an embedding. Keys are dense: 0..NumKeys-1.
type Key = uint32

// PageID identifies an SSD page: 0..NumPages-1.
type PageID = uint32

// Layout maps every embedding key to one home page and zero or more
// replica pages, and every page to the keys stored on it.
//
// Invariants (checked by Validate):
//   - every key has exactly one home page, and that page lists the key;
//   - every replica page of a key lists the key;
//   - every key listed on a page has that page as home or replica;
//   - no page holds more than Capacity keys, and no key appears twice on
//     one page.
type Layout struct {
	// NumKeys is the size of the key space.
	NumKeys int
	// Capacity is the maximum keys per page (d in the paper), derived
	// from the SSD page size and the embedding dimension.
	Capacity int
	// Pages lists the keys stored on each page.
	Pages [][]Key
	// Home maps each key to the page holding its primary copy.
	Home []PageID
	// Replicas maps each key to pages holding extra copies (never the
	// home page). Nil/empty for unreplicated keys.
	Replicas [][]PageID
}

// NumPages returns the number of SSD pages the layout occupies.
func (l *Layout) NumPages() int { return len(l.Pages) }

// ReplicaCount returns 1 + the number of replica pages of k — the total
// number of pages holding k. The online phase sorts query keys by this
// (§6.1 step ❶).
func (l *Layout) ReplicaCount(k Key) int {
	if l.Replicas == nil {
		return 1
	}
	return 1 + len(l.Replicas[k])
}

// PagesOf appends k's pages (home first, then replicas) to dst and returns
// it. Passing a reused dst[:0] avoids per-lookup allocation.
func (l *Layout) PagesOf(k Key, dst []PageID) []PageID {
	dst = append(dst, l.Home[k])
	if l.Replicas != nil {
		dst = append(dst, l.Replicas[k]...)
	}
	return dst
}

// ReplicationRatio returns r: the number of replica key-slots divided by
// NumKeys. A layout with no replication has ratio 0.
func (l *Layout) ReplicationRatio() float64 {
	if l.NumKeys == 0 {
		return 0
	}
	extra := 0
	for _, r := range l.Replicas {
		extra += len(r)
	}
	return float64(extra) / float64(l.NumKeys)
}

// Stats summarizes a layout.
type Stats struct {
	NumKeys          int
	NumPages         int
	Capacity         int
	ReplicaSlots     int
	ReplicationRatio float64
	MeanKeysPerPage  float64
	MaxReplicaCount  int
}

// ComputeStats returns summary statistics.
func (l *Layout) ComputeStats() Stats {
	s := Stats{
		NumKeys:          l.NumKeys,
		NumPages:         l.NumPages(),
		Capacity:         l.Capacity,
		ReplicationRatio: l.ReplicationRatio(),
		MaxReplicaCount:  1,
	}
	slots := 0
	for _, p := range l.Pages {
		slots += len(p)
	}
	if l.NumPages() > 0 {
		s.MeanKeysPerPage = float64(slots) / float64(l.NumPages())
	}
	for k := 0; k < l.NumKeys; k++ {
		rc := l.ReplicaCount(Key(k))
		s.ReplicaSlots += rc - 1
		if rc > s.MaxReplicaCount {
			s.MaxReplicaCount = rc
		}
	}
	return s
}

// Validate checks the layout invariants and returns the first violation.
func (l *Layout) Validate() error {
	if len(l.Home) != l.NumKeys {
		return fmt.Errorf("layout: Home has %d entries, want %d", len(l.Home), l.NumKeys)
	}
	if l.Replicas != nil && len(l.Replicas) != l.NumKeys {
		return fmt.Errorf("layout: Replicas has %d entries, want %d", len(l.Replicas), l.NumKeys)
	}
	if l.Capacity <= 0 {
		return fmt.Errorf("layout: non-positive capacity %d", l.Capacity)
	}
	// Page-side checks.
	onPage := make(map[uint64]bool, l.NumKeys*2) // (page<<32|key) present
	for p, keys := range l.Pages {
		if len(keys) > l.Capacity {
			return fmt.Errorf("layout: page %d holds %d keys, capacity %d", p, len(keys), l.Capacity)
		}
		for _, k := range keys {
			if int(k) >= l.NumKeys {
				return fmt.Errorf("layout: page %d lists out-of-range key %d", p, k)
			}
			id := uint64(p)<<32 | uint64(k)
			if onPage[id] {
				return fmt.Errorf("layout: key %d duplicated on page %d", k, p)
			}
			onPage[id] = true
		}
	}
	// Key-side checks.
	claimed := 0
	for k := 0; k < l.NumKeys; k++ {
		h := l.Home[k]
		if int(h) >= l.NumPages() {
			return fmt.Errorf("layout: key %d home page %d out of range", k, h)
		}
		if !onPage[uint64(h)<<32|uint64(k)] {
			return fmt.Errorf("layout: key %d home page %d does not list it", k, h)
		}
		claimed++
		if l.Replicas == nil {
			continue
		}
		seen := map[PageID]bool{h: true}
		for _, rp := range l.Replicas[k] {
			if int(rp) >= l.NumPages() {
				return fmt.Errorf("layout: key %d replica page %d out of range", k, rp)
			}
			if seen[rp] {
				return fmt.Errorf("layout: key %d lists page %d twice", k, rp)
			}
			seen[rp] = true
			if !onPage[uint64(rp)<<32|uint64(k)] {
				return fmt.Errorf("layout: key %d replica page %d does not list it", k, rp)
			}
			claimed++
		}
	}
	// Every page slot must be claimed by exactly one (key → page) mapping.
	totalSlots := 0
	for _, keys := range l.Pages {
		totalSlots += len(keys)
	}
	if claimed != totalSlots {
		return fmt.Errorf("layout: %d page slots but %d key mappings", totalSlots, claimed)
	}
	return nil
}

// Vanilla returns the trivial layout: keys packed sequentially into pages
// of the given capacity with no replication — the paper's "vanilla"
// baseline (Fig 3).
func Vanilla(numKeys, capacity int) *Layout {
	numPages := (numKeys + capacity - 1) / capacity
	l := &Layout{
		NumKeys:  numKeys,
		Capacity: capacity,
		Pages:    make([][]Key, numPages),
		Home:     make([]PageID, numKeys),
	}
	for k := 0; k < numKeys; k++ {
		p := PageID(k / capacity)
		l.Pages[p] = append(l.Pages[p], Key(k))
		l.Home[k] = p
	}
	return l
}

// FromAssignment builds a layout from a bucket assignment (key → bucket)
// produced by a partitioner, compacting bucket ids into dense page ids in
// ascending bucket order. Buckets may exceed capacity only if the caller
// allows it; this function enforces capacity.
func FromAssignment(assign []int32, capacity int) (*Layout, error) {
	numKeys := len(assign)
	// Collect distinct buckets in ascending order.
	buckets := make(map[int32][]Key)
	for k, b := range assign {
		buckets[b] = append(buckets[b], Key(k))
	}
	ids := make([]int32, 0, len(buckets))
	for b := range buckets {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	l := &Layout{
		NumKeys:  numKeys,
		Capacity: capacity,
		Pages:    make([][]Key, 0, len(ids)),
		Home:     make([]PageID, numKeys),
	}
	for _, b := range ids {
		keys := buckets[b]
		if len(keys) > capacity {
			return nil, fmt.Errorf("layout: bucket %d holds %d keys, capacity %d", b, len(keys), capacity)
		}
		p := PageID(len(l.Pages))
		l.Pages = append(l.Pages, keys)
		for _, k := range keys {
			l.Home[k] = p
		}
	}
	return l, nil
}

// AddReplicaPage appends a new page holding the given keys as replicas.
// Keys whose home page already is the new page, duplicates within the
// slice, and over-capacity keys are rejected.
func (l *Layout) AddReplicaPage(keys []Key) (PageID, error) {
	if len(keys) > l.Capacity {
		return 0, fmt.Errorf("layout: replica page of %d keys exceeds capacity %d", len(keys), l.Capacity)
	}
	seen := make(map[Key]bool, len(keys))
	for _, k := range keys {
		if int(k) >= l.NumKeys {
			return 0, fmt.Errorf("layout: replica key %d out of range", k)
		}
		if seen[k] {
			return 0, fmt.Errorf("layout: replica key %d duplicated", k)
		}
		seen[k] = true
	}
	if l.Replicas == nil {
		l.Replicas = make([][]PageID, l.NumKeys)
	}
	p := PageID(len(l.Pages))
	page := make([]Key, len(keys))
	copy(page, keys)
	l.Pages = append(l.Pages, page)
	for _, k := range keys {
		l.Replicas[k] = append(l.Replicas[k], p)
	}
	return p, nil
}
