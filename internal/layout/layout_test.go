package layout

import (
	"math/rand"
	"testing"
)

func TestVanilla(t *testing.T) {
	l := Vanilla(10, 4)
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.NumPages() != 3 {
		t.Errorf("NumPages = %d, want 3", l.NumPages())
	}
	if l.Home[0] != 0 || l.Home[4] != 1 || l.Home[9] != 2 {
		t.Errorf("Home = %v", l.Home)
	}
	if l.ReplicationRatio() != 0 {
		t.Errorf("ReplicationRatio = %v, want 0", l.ReplicationRatio())
	}
	if rc := l.ReplicaCount(0); rc != 1 {
		t.Errorf("ReplicaCount = %d, want 1", rc)
	}
	pages := l.PagesOf(5, nil)
	if len(pages) != 1 || pages[0] != 1 {
		t.Errorf("PagesOf(5) = %v, want [1]", pages)
	}
}

func TestVanillaExactFit(t *testing.T) {
	l := Vanilla(8, 4)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", l.NumPages())
	}
}

func TestFromAssignment(t *testing.T) {
	assign := []int32{2, 0, 2, 0, 5}
	l, err := FromAssignment(assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Buckets 0,2,5 → pages 0,1,2.
	if l.NumPages() != 3 {
		t.Errorf("NumPages = %d, want 3", l.NumPages())
	}
	if l.Home[1] != 0 || l.Home[3] != 0 {
		t.Errorf("bucket 0 keys misplaced: Home = %v", l.Home)
	}
	if l.Home[0] != 1 || l.Home[2] != 1 {
		t.Errorf("bucket 2 keys misplaced: Home = %v", l.Home)
	}
	if l.Home[4] != 2 {
		t.Errorf("bucket 5 key misplaced: Home = %v", l.Home)
	}
}

func TestFromAssignmentOverCapacity(t *testing.T) {
	if _, err := FromAssignment([]int32{0, 0, 0}, 2); err == nil {
		t.Error("FromAssignment accepted over-capacity bucket")
	}
}

func TestAddReplicaPage(t *testing.T) {
	l := Vanilla(10, 4)
	p, err := l.AddReplicaPage([]Key{0, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if p != 3 {
		t.Errorf("replica page id = %d, want 3", p)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate after replica: %v", err)
	}
	if rc := l.ReplicaCount(5); rc != 2 {
		t.Errorf("ReplicaCount(5) = %d, want 2", rc)
	}
	pages := l.PagesOf(5, nil)
	if len(pages) != 2 || pages[0] != 1 || pages[1] != 3 {
		t.Errorf("PagesOf(5) = %v, want [1 3] (home first)", pages)
	}
	if got, want := l.ReplicationRatio(), 0.3; got != want {
		t.Errorf("ReplicationRatio = %v, want %v", got, want)
	}
}

func TestAddReplicaPageRejections(t *testing.T) {
	l := Vanilla(10, 2)
	if _, err := l.AddReplicaPage([]Key{0, 1, 2}); err == nil {
		t.Error("accepted over-capacity replica page")
	}
	if _, err := l.AddReplicaPage([]Key{0, 0}); err == nil {
		t.Error("accepted duplicate key on replica page")
	}
	if _, err := l.AddReplicaPage([]Key{99}); err == nil {
		t.Error("accepted out-of-range key")
	}
	// Failed adds must leave the layout valid.
	if err := l.Validate(); err != nil {
		t.Errorf("layout invalid after rejected adds: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	corrupt := []func(*Layout){
		func(l *Layout) { l.Home[0] = 99 },                          // out of range home
		func(l *Layout) { l.Home[0] = 1 },                           // home page doesn't list key
		func(l *Layout) { l.Pages[0] = append(l.Pages[0], 7) },      // page lists key without mapping
		func(l *Layout) { l.Pages[0] = []Key{0, 0} },                // duplicate on page
		func(l *Layout) { l.Pages[0] = []Key{0, 1, 2, 3, 4, 5, 6} }, // over capacity
		func(l *Layout) { l.Capacity = 0 },
		func(l *Layout) { l.Home = l.Home[:3] },
	}
	for i, f := range corrupt {
		l := Vanilla(8, 4)
		f(l)
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted corrupt layout", i)
		}
	}
}

func TestComputeStats(t *testing.T) {
	l := Vanilla(10, 4)
	if _, err := l.AddReplicaPage([]Key{0, 1}); err != nil {
		t.Fatal(err)
	}
	s := l.ComputeStats()
	if s.NumKeys != 10 || s.NumPages != 4 || s.Capacity != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.ReplicaSlots != 2 {
		t.Errorf("ReplicaSlots = %d, want 2", s.ReplicaSlots)
	}
	if s.MaxReplicaCount != 2 {
		t.Errorf("MaxReplicaCount = %d, want 2", s.MaxReplicaCount)
	}
	if s.MeanKeysPerPage != 3 {
		t.Errorf("MeanKeysPerPage = %v, want 3", s.MeanKeysPerPage)
	}
}

// Property: random assignments plus random replica pages always validate,
// and PagesOf/ReplicaCount stay mutually consistent.
func TestLayoutRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		capacity := 1 + rng.Intn(8)
		assign := make([]int32, n)
		// Fill buckets sequentially to respect capacity.
		for k := range assign {
			assign[k] = int32(k / capacity)
		}
		rng.Shuffle(n, func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
		l, err := FromAssignment(assign, capacity)
		if err != nil {
			t.Fatalf("FromAssignment: %v", err)
		}
		// Add random replica pages.
		for r := 0; r < rng.Intn(5); r++ {
			m := 1 + rng.Intn(capacity)
			if m > n {
				m = n
			}
			perm := rng.Perm(n)
			keys := make([]Key, 0, m)
			for _, k := range perm[:m] {
				keys = append(keys, Key(k))
			}
			if _, err := l.AddReplicaPage(keys); err != nil {
				t.Fatalf("AddReplicaPage: %v", err)
			}
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var buf []PageID
		for k := 0; k < n; k++ {
			buf = l.PagesOf(Key(k), buf[:0])
			if len(buf) != l.ReplicaCount(Key(k)) {
				t.Fatalf("PagesOf/ReplicaCount mismatch for key %d", k)
			}
			if buf[0] != l.Home[k] {
				t.Fatalf("PagesOf(%d) does not start with home", k)
			}
		}
	}
}
