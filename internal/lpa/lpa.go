// Package lpa implements size-constrained label-propagation partitioning,
// a scalable alternative to the Social Hash Partitioner for the offline
// phase. The paper builds on SHP because Bandana does, noting that other
// placement heuristics exist (§3 cites PaToH and KaHyPar); label
// propagation is the classic lightweight community detector: each vertex
// repeatedly adopts the label most common among its hyperedge co-members,
// after which the discovered communities are packed contiguously into
// capacity-d buckets. One LPA sweep is O(Σ|e|·|e|) but needs only a
// handful of iterations and no recursion, making it attractive when
// partitioning time matters more than the last percent of connectivity
// (Table 1's hours-scale CriteoTB runs).
package lpa

import (
	"fmt"
	"math/rand"
	"sort"

	"maxembed/internal/hypergraph"
)

// Options configures a partitioning run.
type Options struct {
	// Capacity is the maximum vertices per bucket (d). Required.
	Capacity int
	// MaxIters bounds label-propagation sweeps. Default 8.
	MaxIters int
	// Seed drives the (asynchronous) vertex visit order.
	Seed int64
	// MaxTallyEdge skips hyperedges larger than this during label tallies
	// (very long queries carry little locality signal per pin and dominate
	// the sweep cost). Default 4×Capacity; negative disables skipping.
	MaxTallyEdge int
}

// Result reports the outcome.
type Result struct {
	// Assign maps each vertex to its bucket.
	Assign []int32
	// NumBuckets and Capacity describe the bucket shape.
	NumBuckets, Capacity int
	// Communities is the number of distinct labels at convergence.
	Communities int
	// Iterations is the number of sweeps executed.
	Iterations int
	// FinalConnectivity is Σλ(e) of the resulting assignment.
	FinalConnectivity int64
}

// Partition partitions g per opts.
func Partition(g *hypergraph.Graph, opts Options) (*Result, error) {
	if opts.Capacity <= 0 {
		return nil, fmt.Errorf("lpa: Capacity must be positive, got %d", opts.Capacity)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 8
	}
	if opts.MaxTallyEdge == 0 {
		opts.MaxTallyEdge = 4 * opts.Capacity
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(opts.Seed))

	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	res := &Result{Capacity: opts.Capacity}

	// Asynchronous label propagation: vertices update in a fresh random
	// order each sweep, reading the latest labels.
	tally := make(map[int32]int, 64)
	for iter := 0; iter < opts.MaxIters; iter++ {
		res.Iterations++
		changed := 0
		for _, vi := range rng.Perm(n) {
			v := hypergraph.Vertex(vi)
			clear(tally)
			for _, e := range g.IncidentEdges(v) {
				size := g.EdgeSize(e)
				if opts.MaxTallyEdge > 0 && size > opts.MaxTallyEdge {
					continue
				}
				for _, u := range g.Edge(e) {
					if u != v {
						tally[labels[u]]++
					}
				}
			}
			best := labels[v]
			bestCount := tally[best]
			for l, c := range tally {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if bestCount > 0 && best != labels[v] {
				labels[v] = best
				changed++
			}
		}
		if changed == 0 || float64(changed) < 0.001*float64(n) {
			break
		}
	}

	// Assemble buckets: group members per label, order communities
	// deterministically (by their smallest member), and pack members
	// contiguously into capacity-d buckets; communities larger than d
	// spill into adjacent buckets.
	byLabel := make(map[int32][]hypergraph.Vertex)
	for v, l := range labels {
		byLabel[l] = append(byLabel[l], hypergraph.Vertex(v))
	}
	res.Communities = len(byLabel)
	order := make([]int32, 0, len(byLabel))
	for l := range byLabel {
		order = append(order, l)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	assign := make([]int32, n)
	bucket, fill := int32(0), 0
	for _, l := range order {
		members := byLabel[l]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, v := range members {
			if fill == opts.Capacity {
				bucket++
				fill = 0
			}
			assign[v] = bucket
			fill++
		}
	}
	res.Assign = assign
	if n > 0 {
		res.NumBuckets = int(bucket) + 1
	}
	res.FinalConnectivity = g.TotalConnectivity(assign)
	return res, nil
}
