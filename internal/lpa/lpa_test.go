package lpa

import (
	"reflect"
	"testing"

	"maxembed/internal/hypergraph"
	"maxembed/internal/workload"
)

func buildGraph(t *testing.T, n int, queries [][]hypergraph.Vertex) *hypergraph.Graph {
	t.Helper()
	g, err := hypergraph.FromQueries(n, queries)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkBalanced(t *testing.T, res *Result, n int) {
	t.Helper()
	if len(res.Assign) != n {
		t.Fatalf("Assign len = %d, want %d", len(res.Assign), n)
	}
	sizes := map[int32]int{}
	for v, b := range res.Assign {
		if b < 0 || int(b) >= res.NumBuckets {
			t.Fatalf("vertex %d in invalid bucket %d", v, b)
		}
		sizes[b]++
	}
	for b, s := range sizes {
		if s > res.Capacity {
			t.Fatalf("bucket %d holds %d > capacity %d", b, s, res.Capacity)
		}
	}
}

func TestLPARecoverscommunities(t *testing.T) {
	queries := [][]hypergraph.Vertex{
		{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 2}, {1, 3},
		{4, 5, 6, 7}, {4, 5, 6, 7}, {4, 6}, {5, 7},
	}
	g := buildGraph(t, 8, queries)
	res, err := Partition(g, Options{Capacity: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, res, 8)
	if res.FinalConnectivity != int64(len(queries)) {
		t.Errorf("FinalConnectivity = %d, want %d (perfect recovery)",
			res.FinalConnectivity, len(queries))
	}
}

func TestLPABeatsRandomOnClusteredWorkload(t *testing.T) {
	p := workload.Profile{
		Name: "t", Items: 2000, Queries: 4000, MeanQueryLen: 10,
		Communities: 150, CommunityAffinity: 0.85, CommunitySpread: 0.4,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 11,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{Capacity: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, res, tr.NumItems)
	// Reference: vanilla sequential assignment.
	vanilla := make([]int32, tr.NumItems)
	for v := range vanilla {
		vanilla[v] = int32(v / 15)
	}
	base := g.TotalConnectivity(vanilla)
	if res.FinalConnectivity >= base {
		t.Errorf("LPA (%d) did not beat vanilla (%d)", res.FinalConnectivity, base)
	}
	if res.Communities <= 1 || res.Communities >= tr.NumItems {
		t.Errorf("implausible community count %d", res.Communities)
	}
}

func TestLPADeterministic(t *testing.T) {
	p := workload.Profile{
		Name: "t", Items: 500, Queries: 800, MeanQueryLen: 6,
		Communities: 50, CommunityAffinity: 0.8, CommunitySpread: 0.4,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 12,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Partition(g, Options{Capacity: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{Capacity: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Error("same seed produced different partitions")
	}
}

func TestLPAEdgeCases(t *testing.T) {
	if _, err := Partition(buildGraph(t, 4, nil), Options{}); err == nil {
		t.Error("zero capacity accepted")
	}
	// Empty graph.
	res, err := Partition(buildGraph(t, 0, nil), Options{Capacity: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 0 || res.NumBuckets != 0 {
		t.Errorf("empty graph: %+v", res)
	}
	// Edgeless graph: labels never merge; packing is sequential.
	res, err = Partition(buildGraph(t, 10, nil), Options{Capacity: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, res, 10)
	if res.Communities != 10 {
		t.Errorf("Communities = %d, want 10", res.Communities)
	}
	// Oversized community spills across buckets without loss.
	big := make([]hypergraph.Vertex, 12)
	for i := range big {
		big[i] = hypergraph.Vertex(i)
	}
	res, err = Partition(buildGraph(t, 12, [][]hypergraph.Vertex{big, big}), Options{Capacity: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, res, 12)
}
