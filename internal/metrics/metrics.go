// Package metrics provides the measurement primitives the evaluation
// harness reports: latency percentiles, integer histograms (for Fig 9's
// valid-embeddings-per-read CDF), and effective-bandwidth arithmetic.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The zero value is ready.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// RateWindow tracks a failure rate over a rolling window of the last n
// observation batches — e.g. (failed reads, total reads) per served query —
// so a burst of old errors ages out instead of poisoning a long-lived
// process's health forever. It is safe for concurrent use.
type RateWindow struct {
	mu      sync.Mutex
	fail    []int64
	total   []int64
	idx     int
	filled  int
	sumFail int64
	sumTot  int64
}

// NewRateWindow returns a window over the last n observations (n clamped
// to at least 1).
func NewRateWindow(n int) *RateWindow {
	if n < 1 {
		n = 1
	}
	return &RateWindow{fail: make([]int64, n), total: make([]int64, n)}
}

// Observe records one batch of total events, fail of which failed.
func (w *RateWindow) Observe(fail, total int64) {
	w.mu.Lock()
	w.sumFail += fail - w.fail[w.idx]
	w.sumTot += total - w.total[w.idx]
	w.fail[w.idx] = fail
	w.total[w.idx] = total
	w.idx = (w.idx + 1) % len(w.fail)
	if w.filled < len(w.fail) {
		w.filled++
	}
	w.mu.Unlock()
}

// Rate returns the failure fraction over the window and the number of
// events it covers. An empty window reports (0, 0).
func (w *RateWindow) Rate() (rate float64, events int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sumTot <= 0 {
		return 0, 0
	}
	return float64(w.sumFail) / float64(w.sumTot), w.sumTot
}

// Reset clears the window.
func (w *RateWindow) Reset() {
	w.mu.Lock()
	for i := range w.fail {
		w.fail[i], w.total[i] = 0, 0
	}
	w.idx, w.filled, w.sumFail, w.sumTot = 0, 0, 0, 0
	w.mu.Unlock()
}

// Recorder collects latency samples (virtual nanoseconds) and summarizes
// them. It is safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	samples []int64
}

// Record adds one sample.
func (r *Recorder) Record(ns int64) {
	r.mu.Lock()
	r.samples = append(r.samples, ns)
	r.mu.Unlock()
}

// LatencySummary reports distribution statistics over recorded samples.
type LatencySummary struct {
	Count  int
	MeanNS float64
	P50NS  int64
	P90NS  int64
	P99NS  int64
	MaxNS  int64
}

// String renders the summary compactly in microseconds.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p90=%.1fµs p99=%.1fµs max=%.1fµs",
		s.Count, s.MeanNS/1e3, float64(s.P50NS)/1e3, float64(s.P90NS)/1e3,
		float64(s.P99NS)/1e3, float64(s.MaxNS)/1e3)
}

// Count returns the number of samples recorded so far.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Snapshot summarizes all samples recorded so far.
func (r *Recorder) Snapshot() LatencySummary {
	r.mu.Lock()
	samples := make([]int64, len(r.samples))
	copy(samples, r.samples)
	r.mu.Unlock()
	var s LatencySummary
	s.Count = len(samples)
	if s.Count == 0 {
		return s
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum int64
	for _, v := range samples {
		sum += v
	}
	s.MeanNS = float64(sum) / float64(s.Count)
	s.P50NS = percentile(samples, 0.50)
	s.P90NS = percentile(samples, 0.90)
	s.P99NS = percentile(samples, 0.99)
	s.MaxNS = samples[len(samples)-1]
	return s
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.mu.Unlock()
}

// percentile returns the nearest-rank percentile of sorted samples.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// IntHist is a histogram over small non-negative integers, e.g. the number
// of valid embeddings obtained per page read (bounded by page capacity).
// It is safe for concurrent use.
type IntHist struct {
	mu       sync.Mutex
	counts   []int64
	overflow int64 // values > len(counts)-1
	total    int64
	sum      int64
}

// NewIntHist returns a histogram for values in [0, max]; larger values are
// clamped into an overflow bucket but still contribute to Mean.
func NewIntHist(max int) *IntHist {
	if max < 0 {
		max = 0
	}
	return &IntHist{counts: make([]int64, max+1)}
}

// Add records one value.
func (h *IntHist) Add(v int) {
	h.mu.Lock()
	if v >= 0 && v < len(h.counts) {
		h.counts[v]++
	} else {
		h.overflow++
	}
	h.total++
	h.sum += int64(v)
	h.mu.Unlock()
}

// Count returns the number of recorded values.
func (h *IntHist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the mean recorded value, or 0 if empty.
func (h *IntHist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Bucket returns the count of value v (0 for out-of-range v).
func (h *IntHist) Bucket(v int) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// CDF returns, for each value v in [0, max], the fraction of recorded
// values ≤ v. Overflow values only register at the final bucket implicitly
// (the CDF then tops out below 1).
func (h *IntHist) CDF() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	var cum int64
	for v, c := range h.counts {
		cum += c
		out[v] = float64(cum) / float64(h.total)
	}
	return out
}

// Reset clears the histogram.
func (h *IntHist) Reset() {
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.overflow, h.total, h.sum = 0, 0, 0
	h.mu.Unlock()
}

// BytesPerSecond converts (bytes, elapsed virtual ns) to a rate. Returns 0
// for non-positive elapsed time.
func BytesPerSecond(bytes int64, elapsedNS int64) float64 {
	if elapsedNS <= 0 {
		return 0
	}
	return float64(bytes) / (float64(elapsedNS) / float64(time.Second))
}

// PerSecond converts (count, elapsed virtual ns) to a rate, e.g. queries
// per second. Returns 0 for non-positive elapsed time.
func PerSecond(count int64, elapsedNS int64) float64 {
	if elapsedNS <= 0 {
		return 0
	}
	return float64(count) / (float64(elapsedNS) / float64(time.Second))
}

// Utilization returns achieved/capacity clamped to [0, 1] for sane inputs;
// capacity ≤ 0 yields 0.
func Utilization(achieved, capacity float64) float64 {
	if capacity <= 0 {
		return 0
	}
	return achieved / capacity
}
