package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestRecorderSummary(t *testing.T) {
	var r Recorder
	for i := int64(1); i <= 100; i++ {
		r.Record(i * 1000)
	}
	s := r.Snapshot()
	if s.Count != 100 {
		t.Errorf("Count = %d, want 100", s.Count)
	}
	if s.MeanNS != 50_500 {
		t.Errorf("Mean = %v, want 50500", s.MeanNS)
	}
	if s.P50NS != 50_000 {
		t.Errorf("P50 = %d, want 50000", s.P50NS)
	}
	if s.P90NS != 90_000 {
		t.Errorf("P90 = %d, want 90000", s.P90NS)
	}
	if s.P99NS != 99_000 {
		t.Errorf("P99 = %d, want 99000", s.P99NS)
	}
	if s.MaxNS != 100_000 {
		t.Errorf("Max = %d, want 100000", s.MaxNS)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	r.Reset()
	if s := r.Snapshot(); s.Count != 0 || s.MaxNS != 0 {
		t.Errorf("after Reset: %+v", s)
	}
}

func TestRecorderEmpty(t *testing.T) {
	var r Recorder
	s := r.Snapshot()
	if s.Count != 0 || s.MeanNS != 0 || s.P99NS != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestRecorderSingleSample(t *testing.T) {
	var r Recorder
	r.Record(42)
	s := r.Snapshot()
	if s.P50NS != 42 || s.P99NS != 42 || s.MaxNS != 42 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(int64(i))
			}
		}()
	}
	wg.Wait()
	if s := r.Snapshot(); s.Count != 8000 {
		t.Errorf("Count = %d, want 8000", s.Count)
	}
}

func TestIntHist(t *testing.T) {
	h := NewIntHist(5)
	for v := 0; v <= 5; v++ {
		for i := 0; i <= v; i++ {
			h.Add(v) // value v recorded v+1 times
		}
	}
	if h.Count() != 21 {
		t.Errorf("Count = %d, want 21", h.Count())
	}
	if got := h.Bucket(3); got != 4 {
		t.Errorf("Bucket(3) = %d, want 4", got)
	}
	wantMean := float64(0*1+1*2+2*3+3*4+4*5+5*6) / 21
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	cdf := h.CDF()
	if len(cdf) != 6 {
		t.Fatalf("CDF len = %d", len(cdf))
	}
	if cdf[5] != 1.0 {
		t.Errorf("CDF[5] = %v, want 1", cdf[5])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Error("CDF not monotone")
		}
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset failed")
	}
}

func TestIntHistOverflow(t *testing.T) {
	h := NewIntHist(3)
	h.Add(10)
	h.Add(1)
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	cdf := h.CDF()
	if cdf[3] != 0.5 {
		t.Errorf("CDF[3] = %v, want 0.5 (overflow uncounted)", cdf[3])
	}
	if h.Mean() != 5.5 {
		t.Errorf("Mean = %v, want 5.5 (overflow contributes)", h.Mean())
	}
	if h.Bucket(10) != 0 {
		t.Error("Bucket(10) should be 0")
	}
}

func TestIntHistEmptyCDF(t *testing.T) {
	h := NewIntHist(2)
	cdf := h.CDF()
	for _, v := range cdf {
		if v != 0 {
			t.Errorf("empty CDF = %v", cdf)
		}
	}
}

func TestRates(t *testing.T) {
	if got := BytesPerSecond(4096, int64(time.Millisecond)); got != 4096_000 {
		t.Errorf("BytesPerSecond = %v, want 4096000", got)
	}
	if got := PerSecond(500, int64(time.Second)); got != 500 {
		t.Errorf("PerSecond = %v, want 500", got)
	}
	if BytesPerSecond(1, 0) != 0 || PerSecond(1, -5) != 0 {
		t.Error("non-positive elapsed should yield 0")
	}
	if got := Utilization(1, 4); got != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	if Utilization(1, 0) != 0 {
		t.Error("Utilization with zero capacity should be 0")
	}
}
