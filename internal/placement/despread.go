// Co-activation-aware cross-SSD placement: permuting page IDs so pages
// serving the same recurring query sets land on different shards.
//
// The striped array fixes page → shard as p mod n, which is blind to which
// pages are read *together*: a skewed trace that repeatedly co-activates a
// hot page group can alias that whole group onto one drive's queue pair,
// bounding per-query tail latency by the deepest shard instead of the
// array. Despread feeds the co-appearance hypergraph into shard assignment
// — a greedy balanced partition over co-activation edge weights, within
// each tier's residue classes — and emits the result as a page-ID
// permutation exactly like Retier, so it rides the refresh-boundary atomic
// hot-swap and leaves replica emission, recovery, scrubbing, and rebuild
// untouched.
//
// Composition (DESIGN.md §16): Build/Replicate(Shards) → Retier → Despread.
// Retier decides which *tier* each page lives on (cross-tier, by heat);
// Despread decides which *shard within its tier* (intra-tier, by
// co-activation and replica diversity). Because Despread only permutes IDs
// within a tier's residue classes, tier membership and per-shard page
// counts are preserved exactly. The replica shard-diversity objective also
// repairs the collisions Retier's heat-only permutation can introduce into
// the Options.Shards replica placement (the satellite fix this pass
// carries): with a nil graph, Despread runs in diversity-only mode.
package placement

import (
	"fmt"
	"sort"

	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
)

// SpreadReport summarizes one Despread pass.
type SpreadReport struct {
	// Shards is the stripe width; Tiers the number of residue-class groups
	// the permutation respected (1 when tierOfShard was nil).
	Shards int
	Tiers  int
	// Moved is the number of pages whose shard changed.
	Moved int
	// Edges is the number of page-level co-activation edges scored; 0 in
	// diversity-only mode (nil graph).
	Edges int
	// MeanDepthBefore/After is the mean per-query max-shard depth over the
	// co-activation edges — the number of page reads the deepest shard
	// serializes for an average recurring query set (1.0 = perfect spread).
	MeanDepthBefore, MeanDepthAfter float64
	// MaxDepthBefore/After is the worst single-edge depth.
	MaxDepthBefore, MaxDepthAfter int
	// ReplicaCollisionsBefore/After count (key, replica-copy) pairs whose
	// replica page shares a shard with the key's home page — the invariant
	// Options.Shards established at replica emission and Retier can break.
	ReplicaCollisionsBefore, ReplicaCollisionsAfter int
	// UncoveredKeysBefore/After count replicated keys with NO replica on a
	// different shard than their home — the keys a single-shard failure
	// strands without a shard-diverse rescue copy. This is the invariant
	// recovery actually depends on; pairwise collisions are the soft
	// minimization objective on top of it.
	UncoveredKeysBefore, UncoveredKeysAfter int
}

// UncoveredKeys counts replicated keys with no replica on a different shard
// than their home page under p mod shards striping — the keys recovery
// cannot rescue shard-diversely after a single-shard failure.
func UncoveredKeys(lay *layout.Layout, shards int) int {
	if shards <= 1 || lay.Replicas == nil {
		return 0
	}
	n := uint32(shards)
	c := 0
	for k, reps := range lay.Replicas {
		if len(reps) == 0 {
			continue
		}
		hs := lay.Home[k] % n
		diverse := false
		for _, r := range reps {
			if r%n != hs {
				diverse = true
				break
			}
		}
		if !diverse {
			c++
		}
	}
	return c
}

// ReplicaCollisions counts (key, replica-copy) pairs whose replica page
// lands on the same shard as the key's home page under p mod shards
// striping — the shard-diversity measure Despread minimizes and tests
// assert on.
func ReplicaCollisions(lay *layout.Layout, shards int) int {
	if shards <= 1 || lay.Replicas == nil {
		return 0
	}
	n := uint32(shards)
	c := 0
	for k, reps := range lay.Replicas {
		hs := lay.Home[k] % n
		for _, r := range reps {
			if r%n == hs {
				c++
			}
		}
	}
	return c
}

// Despread returns a copy of lay with page IDs permuted within each tier's
// residue classes so that pages co-activated by the same recurring query
// sets land on different shards and replica pages avoid their keys' home
// shards. g is the co-appearance hypergraph over keys (hyperedges are
// history queries); nil runs the pass in diversity-only mode, repairing
// replica shard collisions without co-activation input. tierOfShard maps
// each shard to its tier rank (ssd.Array.TierShardMap); nil treats the
// whole array as one tier. Pages never change tier: Retier's cross-tier
// heat placement is preserved exactly, as are per-shard page counts (the
// partition is balanced by construction).
//
// The input layout is not modified. With one shard the copy is returned
// unchanged with an empty report, mirroring Retier's homogeneous case.
func Despread(lay *layout.Layout, g *hypergraph.Graph, shards int, tierOfShard []int) (*layout.Layout, *SpreadReport, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("placement: Despread needs a positive shard count, got %d", shards)
	}
	if tierOfShard != nil && len(tierOfShard) != shards {
		return nil, nil, fmt.Errorf("placement: tier map covers %d shards, array has %d", len(tierOfShard), shards)
	}
	numPages := lay.NumPages()
	rep := &SpreadReport{Shards: shards, Tiers: 1}
	if shards == 1 || numPages == 0 {
		return applyPagePerm(lay, nil), rep, nil
	}

	// Tier geometry: which tier each page slot (residue class) belongs to,
	// and which shards make up each tier.
	numTiers := 1
	if tierOfShard != nil {
		for s, t := range tierOfShard {
			if t < 0 {
				return nil, nil, fmt.Errorf("placement: shard %d has negative tier %d", s, t)
			}
			if t+1 > numTiers {
				numTiers = t + 1
			}
		}
	}
	rep.Tiers = numTiers
	tierOf := func(s int) int {
		if tierOfShard == nil {
			return 0
		}
		return tierOfShard[s]
	}
	tierShards := make([][]int, numTiers)
	for s := 0; s < shards; s++ {
		t := tierOf(s)
		tierShards[t] = append(tierShards[t], s)
	}
	// quota[s] is the number of page IDs striping onto shard s — fixed by
	// the ID space, so filling quotas exactly preserves balance.
	quota := make([]int, shards)
	for p := 0; p < numPages; p++ {
		quota[p%shards]++
	}

	// Page-level co-activation: each history query's keys map to their home
	// pages, giving one hyperedge per query over page IDs. Recurring query
	// sets appear as repeated edges, weighting them naturally.
	var pg *hypergraph.Graph
	if g != nil {
		pb := hypergraph.NewBuilder(numPages)
		var scratch []hypergraph.Vertex
		for e := 0; e < g.NumEdges(); e++ {
			scratch = scratch[:0]
			for _, v := range g.Edge(hypergraph.EdgeID(e)) {
				if int(v) < len(lay.Home) {
					scratch = append(scratch, lay.Home[v])
				}
			}
			if err := pb.AddEdge(scratch); err != nil {
				return nil, nil, fmt.Errorf("placement: page co-activation edge: %w", err)
			}
		}
		pg = pb.Build()
		rep.Edges = pg.NumEdges()
	}

	// copies[p] lists, for each key resident on page p, the other pages
	// holding a copy of that key — the replica-diversity neighbourhood.
	copies := make([][]layout.PageID, numPages)
	if lay.Replicas != nil {
		for k := 0; k < lay.NumKeys; k++ {
			reps := lay.Replicas[k]
			if len(reps) == 0 {
				continue
			}
			h := lay.Home[k]
			for _, r := range reps {
				copies[h] = append(copies[h], r)
				copies[r] = append(copies[r], h)
				for _, r2 := range reps {
					if r2 != r {
						copies[r] = append(copies[r], r2)
					}
				}
			}
		}
	}

	// Greedy balanced partition, one tier at a time. Pages are processed
	// most-co-activated first (ties by ID, deterministically); each picks
	// the in-tier shard minimizing, lexicographically: replica collisions
	// with already-placed copies, co-activation depth with already-placed
	// co-pages, current fill, shard ID.
	newShard := make([]int, numPages)
	for p := range newShard {
		newShard[p] = -1
	}
	tierPages := make([][]layout.PageID, numTiers)
	for p := 0; p < numPages; p++ {
		t := tierOf(p % shards)
		tierPages[t] = append(tierPages[t], layout.PageID(p))
	}
	placedLoad := make([]int, shards)
	divCost := make([]int, shards)
	coactCost := make([]int, shards)
	for t := 0; t < numTiers; t++ {
		pages := append([]layout.PageID(nil), tierPages[t]...)
		activity := func(p layout.PageID) int {
			if pg == nil {
				return 0
			}
			return pg.Degree(p)
		}
		// Most-constrained first: co-activation weight, then replica
		// relationships (replica pages have no page-level edges — their
		// keys' edges point at the home pages — so without this they would
		// all land last, exactly when quotas are exhausted and the greedy
		// is forced into collisions). Copy-free, co-activation-free pages
		// genuinely don't care where they go; they fill the remainder.
		sort.SliceStable(pages, func(i, j int) bool {
			ai, aj := activity(pages[i]), activity(pages[j])
			if ai != aj {
				return ai > aj
			}
			if ci, cj := len(copies[pages[i]]), len(copies[pages[j]]); ci != cj {
				return ci > cj
			}
			return pages[i] < pages[j]
		})
		cands := tierShards[t]
		for _, p := range pages {
			for _, s := range cands {
				divCost[s], coactCost[s] = 0, 0
			}
			for _, c := range copies[p] {
				if s := newShard[c]; s >= 0 {
					divCost[s]++
				}
			}
			if pg != nil {
				for _, e := range pg.IncidentEdges(p) {
					for _, q := range pg.Edge(e) {
						if q == p {
							continue
						}
						if s := newShard[q]; s >= 0 {
							coactCost[s]++
						}
					}
				}
			}
			best := -1
			for _, s := range cands {
				if placedLoad[s] >= quota[s] {
					continue
				}
				if best < 0 {
					best = s
					continue
				}
				if divCost[s] != divCost[best] {
					if divCost[s] < divCost[best] {
						best = s
					}
					continue
				}
				if coactCost[s] != coactCost[best] {
					if coactCost[s] < coactCost[best] {
						best = s
					}
					continue
				}
				if placedLoad[s] < placedLoad[best] {
					best = s
				}
			}
			if best < 0 {
				return nil, nil, fmt.Errorf("placement: tier %d ran out of shard slots (internal invariant)", t)
			}
			newShard[p] = best
			placedLoad[best]++
		}
	}

	// The greedy above is myopic: when a page is placed, copies and
	// co-activated neighbours not yet placed contribute zero cost, so a
	// constrained page can still end up sharing a shard with a neighbour
	// placed after it. A bounded, deterministic swap refinement repairs
	// this: every page whose current shard carries positive cost looks for
	// a same-tier partner on another shard such that exchanging the two
	// strictly reduces (replica collisions, then co-activation depth).
	// Swaps trade shards one-for-one, so per-shard balance and tier
	// membership stay exact, and each accepted swap strictly decreases the
	// lexicographic (diversity, co-activation) potential, so the loop
	// cannot cycle. Partner evaluations are budgeted per tier to keep
	// refinement near-linear on large layouts.
	divAt := func(p layout.PageID, s int) int {
		c := 0
		for _, q := range copies[p] {
			if newShard[q] == s {
				c++
			}
		}
		return c
	}
	coactAt := func(p layout.PageID, s int) int {
		if pg == nil {
			return 0
		}
		c := 0
		for _, e := range pg.IncidentEdges(p) {
			for _, q := range pg.Edge(e) {
				if q != p && newShard[q] == s {
					c++
				}
			}
		}
		return c
	}
	divMult := func(p, q layout.PageID) int {
		m := 0
		for _, r := range copies[p] {
			if r == q {
				m++
			}
		}
		return m
	}
	coactMult := func(p, q layout.PageID) int {
		if pg == nil {
			return 0
		}
		m := 0
		for _, e := range pg.IncidentEdges(p) {
			for _, r := range pg.Edge(e) {
				if r == q {
					m++
				}
			}
		}
		return m
	}
	for t := 0; t < numTiers; t++ {
		if len(tierShards[t]) < 2 {
			continue
		}
		budget := 256 * len(tierPages[t])
		for pass := 0; pass < 8 && budget > 0; pass++ {
			improved := false
			for _, p := range tierPages[t] {
				if budget <= 0 {
					break
				}
				s := newShard[p]
				pDiv, pCoact := divAt(p, s), coactAt(p, s)
				if pDiv == 0 && pCoact == 0 {
					continue
				}
				// Best swap, not first-improving: scanning every partner and
				// minimizing the (replica, co-activation) delta lets a
				// constrained page trade with a coact-neutral partner (a cold
				// or replica page) instead of whichever hot home page happens
				// to come first — first-improving diversity repairs were
				// measurably regressing the co-activation spread.
				bestQ, bestS, bestD, bestC := layout.PageID(0), -1, 0, 0
				for _, s2 := range tierShards[t] {
					if s2 == s || budget <= 0 {
						continue
					}
					pDiv2, pCoact2 := divAt(p, s2), coactAt(p, s2)
					for _, q := range tierPages[t] {
						if newShard[q] != s2 {
							continue
						}
						budget--
						if budget < 0 {
							break
						}
						// Exchanging p↔q: costs were computed with both still
						// in place, so pairs between p and q appear on both
						// sides — subtract them twice (the lists are
						// symmetric by construction).
						dDelta := pDiv2 - pDiv + divAt(q, s) - divAt(q, s2) - 2*divMult(p, q)
						if dDelta > bestD {
							continue
						}
						// Never trade co-activation spread for collisions:
						// a colliding pair always has a replica-page side
						// with no co-activation edges, so a coact-neutral
						// repair partner (another replica or a cold page)
						// almost always exists — insisting on one keeps the
						// tentpole objective from eroding.
						cDelta := pCoact2 - pCoact + coactAt(q, s) - coactAt(q, s2) - 2*coactMult(p, q)
						if cDelta > 0 {
							continue
						}
						if dDelta < bestD || cDelta < bestC {
							bestQ, bestS, bestD, bestC = q, s2, dDelta, cDelta
						}
					}
				}
				if bestS >= 0 {
					newShard[p], newShard[bestQ] = bestS, s
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}

	// Coverage repair: the pairwise objective above can still strand a key
	// with every copy on one shard — uncovered, meaning a single-shard
	// failure leaves recovery no shard-diverse replica for it. Walk the
	// uncovered keys and swap one of their copy pages onto another in-tier
	// shard, picking the partner that fixes the most coverage with the
	// least pairwise-collision and co-activation damage. The global
	// uncovered count strictly decreases with each accepted swap, so the
	// loop terminates; a budget bounds the partner scans on large layouts.
	if lay.Replicas != nil {
		coveredNow := func(k int) bool {
			reps := lay.Replicas[k]
			if len(reps) == 0 {
				return true
			}
			hs := newShard[lay.Home[k]]
			for _, r := range reps {
				if newShard[r] != hs {
					return true
				}
			}
			return false
		}
		var affected []layout.Key
		addAffected := func(p layout.PageID) {
			for _, k := range lay.Pages[p] {
				dup := false
				for _, a := range affected {
					if a == k {
						dup = true
						break
					}
				}
				if !dup {
					affected = append(affected, k)
				}
			}
		}
		countUncov := func() int {
			c := 0
			for _, k := range affected {
				if !coveredNow(int(k)) {
					c++
				}
			}
			return c
		}
		// trySwap scores exchanging pages c and q: coverage can only change
		// for keys resident on either page, so the uncovered delta is exact
		// from just those keys.
		trySwap := func(c, q layout.PageID) (uncov, div, coact int) {
			affected = affected[:0]
			addAffected(c)
			addAffected(q)
			before := countUncov()
			sc, sq := newShard[c], newShard[q]
			div = divAt(c, sq) - divAt(c, sc) + divAt(q, sc) - divAt(q, sq) - 2*divMult(c, q)
			coact = coactAt(c, sq) - coactAt(c, sc) + coactAt(q, sc) - coactAt(q, sq) - 2*coactMult(c, q)
			newShard[c], newShard[q] = sq, sc
			uncov = countUncov() - before
			newShard[c], newShard[q] = sc, sq
			return uncov, div, coact
		}
		coverBudget := 64 * numPages
		for pass := 0; pass < 8 && coverBudget > 0; pass++ {
			improved := false
			for k := 0; k < lay.NumKeys && coverBudget > 0; k++ {
				if coveredNow(k) {
					continue
				}
				// Every copy of k sits on one shard; replicas are tried
				// before the home page because they carry no co-activation
				// edges of their own.
				cands := append(append([]layout.PageID(nil), lay.Replicas[k]...), lay.Home[k])
				var bestC, bestQ layout.PageID
				bestU, bestD, bestA, found := 0, 0, 0, false
				for _, c := range cands {
					t := tierOf(newShard[c])
					for _, s2 := range tierShards[t] {
						if s2 == newShard[c] {
							continue
						}
						for _, q := range tierPages[t] {
							if newShard[q] != s2 {
								continue
							}
							coverBudget--
							if coverBudget < 0 {
								break
							}
							u, d, a := trySwap(c, q)
							if u >= 0 {
								continue
							}
							// Coact damage ranks above pairwise collisions
							// here: coverage must be restored, but the
							// tentpole spread objective is the next thing
							// to protect while doing it.
							if !found || u < bestU || (u == bestU && (a < bestA || (a == bestA && d < bestD))) {
								bestC, bestQ, bestU, bestD, bestA, found = c, q, u, d, a, true
							}
						}
					}
				}
				if found {
					newShard[bestC], newShard[bestQ] = newShard[bestQ], newShard[bestC]
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}

	// Hand out IDs Retier-style: pages staying on their shard keep their
	// IDs; each shard's vacated slot IDs (ascending) go to its incoming
	// pages in placement order, so more co-activated pages get lower IDs.
	perm := make([]layout.PageID, numPages)
	vacated := make([][]layout.PageID, shards)
	incoming := make([][]layout.PageID, shards)
	for p := 0; p < numPages; p++ {
		if newShard[p] == p%shards {
			perm[p] = layout.PageID(p)
		} else {
			vacated[p%shards] = append(vacated[p%shards], layout.PageID(p))
			rep.Moved++
		}
	}
	for t := 0; t < numTiers; t++ {
		var moved []layout.PageID
		for p := 0; p < numPages; p++ {
			if tierOf(p%shards) == t && newShard[p] != p%shards {
				moved = append(moved, layout.PageID(p))
			}
		}
		sort.SliceStable(moved, func(i, j int) bool {
			ai, aj := 0, 0
			if pg != nil {
				ai, aj = pg.Degree(moved[i]), pg.Degree(moved[j])
			}
			if ai != aj {
				return ai > aj
			}
			return moved[i] < moved[j]
		})
		for _, p := range moved {
			incoming[newShard[p]] = append(incoming[newShard[p]], p)
		}
	}
	for s := 0; s < shards; s++ {
		if len(vacated[s]) != len(incoming[s]) {
			return nil, nil, fmt.Errorf("placement: shard %d vacates %d slots but receives %d pages",
				s, len(vacated[s]), len(incoming[s]))
		}
		for i, p := range incoming[s] {
			perm[p] = vacated[s][i]
		}
	}

	out := applyPagePerm(lay, perm)
	rep.ReplicaCollisionsBefore = ReplicaCollisions(lay, shards)
	rep.ReplicaCollisionsAfter = ReplicaCollisions(out, shards)
	rep.UncoveredKeysBefore = UncoveredKeys(lay, shards)
	rep.UncoveredKeysAfter = UncoveredKeys(out, shards)
	if pg != nil {
		identity := make([]uint32, numPages)
		for p := range identity {
			identity[p] = uint32(p)
		}
		before := pg.ShardSpread(identity, shards)
		after := pg.ShardSpread(perm, shards)
		rep.MeanDepthBefore, rep.MaxDepthBefore = before.MeanMaxDepth, before.MaxMaxDepth
		rep.MeanDepthAfter, rep.MaxDepthAfter = after.MeanMaxDepth, after.MaxMaxDepth
	}
	return out, rep, nil
}

// applyPagePerm returns a fresh layout with page IDs renumbered by perm
// (old → new); nil perm is the identity. Page key slices are immutable
// under renumbering and safely shared with the input — the same apply step
// Retier uses, factored so both passes stay byte-for-byte consistent.
func applyPagePerm(lay *layout.Layout, perm []layout.PageID) *layout.Layout {
	numPages := lay.NumPages()
	out := &layout.Layout{
		NumKeys:  lay.NumKeys,
		Capacity: lay.Capacity,
		Pages:    make([][]layout.Key, numPages),
		Home:     make([]layout.PageID, len(lay.Home)),
	}
	if perm == nil {
		copy(out.Pages, lay.Pages)
		copy(out.Home, lay.Home)
	} else {
		for p, keys := range lay.Pages {
			out.Pages[perm[p]] = keys
		}
		for k, h := range lay.Home {
			out.Home[k] = perm[h]
		}
	}
	if lay.Replicas != nil {
		out.Replicas = make([][]layout.PageID, len(lay.Replicas))
		for k, reps := range lay.Replicas {
			if len(reps) == 0 {
				continue
			}
			nr := make([]layout.PageID, len(reps))
			if perm == nil {
				copy(nr, reps)
			} else {
				for i, r := range reps {
					nr[i] = perm[r]
				}
			}
			out.Replicas[k] = nr
		}
	}
	return out
}
