package placement

import (
	"reflect"
	"sort"
	"testing"

	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
)

// diversityFixture builds an 8-page layout on a 4-shard, 2-tier array
// where the Options.Shards replica invariant holds: 6 home pages (keys
// 2p, 2p+1 on page p) plus replica pages 6 (copies of keys 0,1) and 7
// (copies of keys 4,5), each striped onto a different shard than its keys'
// home page.
func diversityFixture(t *testing.T) *layout.Layout {
	t.Helper()
	lay := layout.Vanilla(12, 2)
	if _, err := lay.AddReplicaPage([]layout.Key{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := lay.AddReplicaPage([]layout.Key{4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	return lay
}

// TestRetierBreaksReplicaDiversityDespreadRepairs is the regression test
// for the Retier × Options.Shards composition bug: Retier permutes page
// IDs purely by heat, so a promoted replica page can land on the same
// shard as its keys' home page, silently undoing the shard-diverse replica
// placement Build emitted. Despread in diversity-only mode (nil graph)
// must repair it without disturbing tier membership.
func TestRetierBreaksReplicaDiversityDespreadRepairs(t *testing.T) {
	lay := diversityFixture(t)
	const shards = 4
	tiers := []int{0, 0, 1, 1} // IDs 0,1,4,5 fast; 2,3,6,7 dense

	if c := ReplicaCollisions(lay, shards); c != 0 {
		t.Fatalf("fixture starts with %d collisions, want 0", c)
	}

	// Heat chosen so Retier promotes replica page 6 into the fast slot
	// vacated by page 4 — ID 4, the same residue (shard 0) as its keys'
	// home page 0. Desired fast tier: {0, 6, 1, 5}.
	heat := []float64{100, 80, 10, 9, 8, 70, 90, 7}
	tlay, _, err := Retier(lay, heat, tiers)
	if err != nil {
		t.Fatal(err)
	}
	broken := ReplicaCollisions(tlay, shards)
	if broken == 0 {
		t.Fatal("Retier did not break replica diversity — fixture no longer exercises the bug")
	}

	fixed, rep, err := Despread(tlay, nil, shards, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixed.Validate(); err != nil {
		t.Fatalf("despread layout invalid: %v", err)
	}
	if rep.ReplicaCollisionsBefore != broken {
		t.Errorf("report says %d collisions before, measured %d", rep.ReplicaCollisionsBefore, broken)
	}
	if got := ReplicaCollisions(fixed, shards); got != 0 {
		t.Errorf("despread left %d collisions, want 0", got)
	}
	if rep.ReplicaCollisionsAfter != ReplicaCollisions(fixed, shards) {
		t.Errorf("report after=%d disagrees with measured %d",
			rep.ReplicaCollisionsAfter, ReplicaCollisions(fixed, shards))
	}

	// Tier membership must be exactly what Retier decided: track each
	// page's tier by its key contents across the despread permutation.
	tierOfPage := func(l *layout.Layout) map[string]int {
		m := map[string]int{}
		for p, keys := range l.Pages {
			ks := append([]layout.Key(nil), keys...)
			sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
			m[keysFingerprint(ks)] = tiers[p%shards]
		}
		return m
	}
	if !reflect.DeepEqual(tierOfPage(tlay), tierOfPage(fixed)) {
		t.Error("Despread changed a page's tier — Retier's placement must be preserved")
	}
}

func keysFingerprint(keys []layout.Key) string {
	b := make([]byte, 0, len(keys)*4)
	for _, k := range keys {
		b = append(b, byte(k), byte(k>>8), byte(k>>16), byte(k>>24))
	}
	return string(b)
}

// TestDespreadSpreadsCoActivatedPages: a recurring query set whose home
// pages all alias onto one shard (residues equal mod n) must be spread
// across shards, bringing per-query max-shard depth from n to ~1, while
// per-shard page counts stay balanced.
func TestDespreadSpreadsCoActivatedPages(t *testing.T) {
	const (
		numKeys  = 32
		capacity = 2
		shards   = 4
	)
	lay := layout.Vanilla(numKeys, capacity) // 16 pages, page p = keys 2p,2p+1
	// Co-activated group: one key from each of pages 0, 4, 8, 12 — all
	// residue 0 under blind striping. Recurring edges weight the group.
	var queries [][]hypergraph.Vertex
	for i := 0; i < 8; i++ {
		queries = append(queries, []hypergraph.Vertex{0, 8, 16, 24})
	}
	g, err := hypergraph.FromQueries(numKeys, queries)
	if err != nil {
		t.Fatal(err)
	}

	out, rep, err := Despread(lay, g, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("despread layout invalid: %v", err)
	}
	if rep.Edges != len(queries) {
		t.Errorf("report scored %d edges, want %d", rep.Edges, len(queries))
	}
	if rep.MaxDepthBefore != shards {
		t.Errorf("blind striping depth = %d, want %d (fixture must alias)", rep.MaxDepthBefore, shards)
	}
	if rep.MaxDepthAfter != 1 {
		t.Errorf("despread depth = %d, want 1 (four pages over four shards)", rep.MaxDepthAfter)
	}
	if rep.MeanDepthAfter >= rep.MeanDepthBefore {
		t.Errorf("mean depth did not improve: %v -> %v", rep.MeanDepthBefore, rep.MeanDepthAfter)
	}

	// The measured spread of the output layout agrees with the report.
	after := g.ShardSpread(out.Home, shards)
	if after.MaxMaxDepth != rep.MaxDepthAfter {
		t.Errorf("layout spread depth %d disagrees with report %d", after.MaxMaxDepth, rep.MaxDepthAfter)
	}

	// Balance: each shard holds exactly as many pages as before.
	perShard := make([]int, shards)
	for p := 0; p < out.NumPages(); p++ {
		perShard[p%shards]++
	}
	for s, n := range perShard {
		if n != out.NumPages()/shards {
			t.Errorf("shard %d holds %d pages, want %d", s, n, out.NumPages()/shards)
		}
	}
}

// TestDespreadDeterministic: identical inputs must produce byte-identical
// layouts and reports — placement output feeds the store build and must be
// reproducible.
func TestDespreadDeterministic(t *testing.T) {
	lay := diversityFixture(t)
	var queries [][]hypergraph.Vertex
	for i := 0; i < 4; i++ {
		queries = append(queries, []hypergraph.Vertex{0, 2, 8, 10})
		queries = append(queries, []hypergraph.Vertex{1, 5, 9})
	}
	g, err := hypergraph.FromQueries(12, queries)
	if err != nil {
		t.Fatal(err)
	}
	a, ra, err := Despread(lay, g, 4, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := Despread(lay, g, 4, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Despread layouts differ across identical runs")
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Error("Despread reports differ across identical runs")
	}
}

// TestDespreadDegenerate: one shard (or an empty co-activation graph on a
// collision-free layout) must leave the layout semantically unchanged.
func TestDespreadDegenerate(t *testing.T) {
	lay := diversityFixture(t)
	out, rep, err := Despread(lay, nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Pages, lay.Pages) || !reflect.DeepEqual(out.Home, lay.Home) {
		t.Error("one-shard Despread changed the layout")
	}
	if rep.Moved != 0 || rep.Edges != 0 {
		t.Errorf("one-shard report = %+v, want zero movement", rep)
	}
	// Input must never be mutated.
	if _, _, err := Despread(lay, nil, 4, nil); err != nil {
		t.Fatal(err)
	}
	if err := lay.Validate(); err != nil {
		t.Errorf("input layout mutated: %v", err)
	}

	// Bad geometry is rejected.
	if _, _, err := Despread(lay, nil, 0, nil); err == nil {
		t.Error("Despread accepted zero shards")
	}
	if _, _, err := Despread(lay, nil, 4, []int{0, 1}); err == nil {
		t.Error("Despread accepted a mis-sized tier map")
	}
	if _, _, err := Despread(lay, nil, 2, []int{0, -1}); err == nil {
		t.Error("Despread accepted a negative tier")
	}
}

// TestDespreadComposesWithBuild: the full offline chain on a clustered
// workload — Build(Shards) → Retier → Despread — must restore the replica
// coverage invariant (every replicated key keeps a shard-diverse copy, up
// to Build's own best-effort floor), reduce the pairwise collisions Retier
// introduced, and improve the co-activation spread, all on a valid layout.
//
// Note the bar is per-key *coverage*, not Build's raw pairwise-collision
// count: Despread only permutes within a tier's two shards, so the
// free-4-shard pairwise optimum Build reaches is structurally out of reach
// — but coverage is what recovery depends on, and that is restorable.
func TestDespreadComposesWithBuild(t *testing.T) {
	g, _ := clusteredGraph(t)
	const shards = 4
	lay, err := Build(StrategyMaxEmbed, g, Options{
		Capacity: 15, ReplicationRatio: 0.4, Seed: 1, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	builtUncov := UncoveredKeys(lay, shards)

	freq := KeyFreqFromGraph(g, lay.NumKeys)
	heat := PageHeat(lay, freq)
	tiers := []int{0, 0, 1, 1}
	tlay, _, err := Retier(lay, heat, tiers)
	if err != nil {
		t.Fatal(err)
	}
	broken := ReplicaCollisions(tlay, shards)
	if UncoveredKeys(tlay, shards) <= builtUncov {
		t.Fatal("Retier did not strand keys — fixture no longer exercises the repair")
	}
	out, rep, err := Despread(tlay, g, shards, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("composed layout invalid: %v", err)
	}
	if got := UncoveredKeys(out, shards); got > builtUncov {
		t.Errorf("composition strands %d keys without a shard-diverse replica, Build stranded %d",
			got, builtUncov)
	}
	if rep.UncoveredKeysAfter != UncoveredKeys(out, shards) {
		t.Errorf("report uncovered-after=%d disagrees with measured %d",
			rep.UncoveredKeysAfter, UncoveredKeys(out, shards))
	}
	if got := ReplicaCollisions(out, shards); got >= broken {
		t.Errorf("composition has %d pairwise collisions, no better than Retier's %d", got, broken)
	}
	if rep.MeanDepthAfter >= rep.MeanDepthBefore {
		t.Errorf("co-activation depth did not improve: %v -> %v", rep.MeanDepthBefore, rep.MeanDepthAfter)
	}
}
