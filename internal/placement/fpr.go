package placement

import (
	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/shp"
)

// FPR implements strawman 2, finer-partition and fill with replication
// (§5.2): the hypergraph is partitioned into ⌈(1+r)N/d⌉ clusters — finer
// than the page count actually needed — and each under-full page is then
// refilled with the keys that most frequently co-appear with its members.
// The paper shows the finer partition can destroy combinations the coarse
// partition would have kept, making FPR unstable across datasets.
func FPR(g *hypergraph.Graph, opts Options) (*layout.Layout, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n == 0 {
		return layout.Vanilla(0, opts.Capacity), nil
	}
	numBuckets := int((1 + opts.ReplicationRatio) * float64(n) / float64(opts.Capacity))
	minBuckets := (n + opts.Capacity - 1) / opts.Capacity
	if numBuckets < minBuckets {
		numBuckets = minBuckets
	}
	res, err := shp.Partition(g, shp.Options{
		NumBuckets: numBuckets,
		MaxIters:   opts.MaxIters,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	lay, err := layout.FromAssignment(res.Assign, opts.Capacity)
	if err != nil {
		return nil, err
	}

	// Refill each page up to capacity with its most co-appearing outside
	// keys, bounded by the global replica-slot budget ⌊rN⌋.
	budget := int(opts.ReplicationRatio * float64(n))
	if budget == 0 {
		return lay, nil
	}
	if lay.Replicas == nil {
		lay.Replicas = make([][]layout.PageID, n)
	}
	coocc := hypergraph.NewCoOccurrence(g)
	for p := range lay.Pages {
		if budget == 0 {
			break
		}
		free := lay.Capacity - len(lay.Pages[p])
		if free > budget {
			free = budget
		}
		if free <= 0 {
			continue
		}
		refill := coocc.TopForSet(lay.Pages[p], free, nil)
		for _, k := range refill {
			lay.Pages[p] = append(lay.Pages[p], k)
			lay.Replicas[k] = append(lay.Replicas[k], layout.PageID(p))
		}
		budget -= len(refill)
	}
	return lay, nil
}
