// Package placement implements the embedding placement strategies the
// paper evaluates (§5, Fig 14):
//
//   - Vanilla: sequential packing, no access-pattern awareness (Fig 3).
//   - SHP: Bandana's hypergraph-partitioned placement, one copy per key.
//   - RPP (strawman 1, §5.1): replicate the hottest keys before
//     partitioning and let the partitioner place the copies.
//   - FPR (strawman 2, §5.2): partition into finer clusters, then refill
//     each cluster with its most co-appearing outside keys.
//   - MaxEmbed (§5.3): partition with vanilla SHP, then add replica pages
//     chosen by connectivity-priority scoring — the paper's solution.
//
// All strategies emit a layout.Layout whose replica slots are bounded by
// the configured replication ratio r.
package placement

import (
	"fmt"
	"sort"

	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/lpa"
	"maxembed/internal/shp"
)

// Strategy names a placement algorithm.
type Strategy string

// The available strategies.
const (
	StrategyVanilla  Strategy = "vanilla"
	StrategySHP      Strategy = "shp"
	StrategyRPP      Strategy = "rpp"
	StrategyFPR      Strategy = "fpr"
	StrategyMaxEmbed Strategy = "maxembed"
)

// Strategies lists all strategies in evaluation order.
func Strategies() []Strategy {
	return []Strategy{StrategyVanilla, StrategySHP, StrategyRPP, StrategyFPR, StrategyMaxEmbed}
}

// Options configures a placement run.
type Options struct {
	// Capacity is d: embeddings per SSD page. Required.
	Capacity int
	// ReplicationRatio is r: replica key-slots as a fraction of the key
	// count. Ignored by Vanilla and SHP.
	ReplicationRatio float64
	// MaxIters bounds SHP refinement iterations per bisection level
	// (0 = default).
	MaxIters int
	// Seed makes the run deterministic.
	Seed int64
	// Partitioner selects the base partitioning algorithm for the SHP and
	// MaxEmbed strategies: PartitionerSHP (default, the paper's choice)
	// or PartitionerLPA (size-constrained label propagation).
	Partitioner Partitioner
	// Shards is the device count the layout will be striped over (page p
	// lives on device p mod Shards, matching ssd.Array). Shards > 1 makes
	// MaxEmbed's replication shard-aware: replica pages are steered onto
	// devices that hold none of their keys' home copies, so a key's copies
	// land on distinct devices and recovery can reroute around a faulty
	// shard. 0 or 1 means a single device (no steering).
	Shards int
}

// Partitioner names a base hypergraph-partitioning algorithm.
type Partitioner string

// Available partitioners.
const (
	PartitionerSHP Partitioner = "" // default
	PartitionerLPA Partitioner = "lpa"
)

// partition runs the configured base partitioner.
func partition(g *hypergraph.Graph, opts Options) ([]int32, error) {
	switch opts.Partitioner {
	case PartitionerSHP:
		res, err := shp.Partition(g, shp.Options{
			Capacity: opts.Capacity,
			MaxIters: opts.MaxIters,
			Seed:     opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		return res.Assign, nil
	case PartitionerLPA:
		res, err := lpa.Partition(g, lpa.Options{
			Capacity: opts.Capacity,
			MaxIters: opts.MaxIters,
			Seed:     opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		return res.Assign, nil
	default:
		return nil, fmt.Errorf("placement: unknown partitioner %q", opts.Partitioner)
	}
}

func (o Options) validate() error {
	if o.Capacity <= 0 {
		return fmt.Errorf("placement: Capacity must be positive, got %d", o.Capacity)
	}
	if o.ReplicationRatio < 0 {
		return fmt.Errorf("placement: ReplicationRatio must be non-negative, got %v", o.ReplicationRatio)
	}
	return nil
}

// Build runs the named strategy over the query hypergraph.
func Build(s Strategy, g *hypergraph.Graph, opts Options) (*layout.Layout, error) {
	switch s {
	case StrategyVanilla:
		if err := opts.validate(); err != nil {
			return nil, err
		}
		return layout.Vanilla(g.NumVertices(), opts.Capacity), nil
	case StrategySHP:
		return SHP(g, opts)
	case StrategyRPP:
		return RPP(g, opts)
	case StrategyFPR:
		return FPR(g, opts)
	case StrategyMaxEmbed:
		return MaxEmbed(g, opts)
	default:
		return nil, fmt.Errorf("placement: unknown strategy %q", s)
	}
}

// SHP places one copy of each key via Social Hash Partitioning — the
// Bandana baseline.
func SHP(g *hypergraph.Graph, opts Options) (*layout.Layout, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	assign, err := partition(g, opts)
	if err != nil {
		return nil, err
	}
	return layout.FromAssignment(assign, opts.Capacity)
}

// MaxEmbed implements connectivity-priority replication (§5.3):
//
//  1. Partition the hypergraph with vanilla SHP.
//  2. Score every vertex: score(v) = Σ_{e∋v} (λ(e)−1), where λ(e) is the
//     number of buckets edge e spans — the vertex's contribution to
//     residual read amplification, weighted by its hotness.
//  3. Take the top ⌊rN/d⌋ scored vertices as replica-cluster bases.
//  4. For each base, gather its (d−1) most co-occurring neighbours that
//     are not already co-located with it, and emit them as a replica page.
func MaxEmbed(g *hypergraph.Graph, opts Options) (*layout.Layout, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	assign, err := partition(g, opts)
	if err != nil {
		return nil, err
	}
	return Replicate(g, assign, opts)
}

// Replicate runs the connectivity-priority replication (§5.3 steps 2–4)
// over an existing home assignment, producing a layout whose home pages
// follow assign and whose replica pages are chosen from g's co-appearance
// structure. Because replication never moves home copies, it can be re-run
// against a fresher query trace to refresh the replicas as access patterns
// drift, without rewriting the base table on SSD.
func Replicate(g *hypergraph.Graph, assign []int32, opts Options) (*layout.Layout, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if len(assign) != n {
		return nil, fmt.Errorf("placement: assignment covers %d keys, graph has %d", len(assign), n)
	}
	lay, err := layout.FromAssignment(assign, opts.Capacity)
	if err != nil {
		return nil, err
	}

	budget := replicaPageBudget(n, opts.Capacity, opts.ReplicationRatio)
	if budget == 0 || n == 0 {
		return lay, nil
	}

	// Score vertices by Σ(λ(e)−1) over their edges.
	score := make([]int64, n)
	for e := 0; e < g.NumEdges(); e++ {
		lam := int64(g.Connectivity(hypergraph.EdgeID(e), assign)) - 1
		if lam <= 0 {
			continue
		}
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			score[v] += lam
		}
	}
	order := make([]hypergraph.Vertex, n)
	for v := range order {
		order[v] = hypergraph.Vertex(v)
	}
	sort.Slice(order, func(i, j int) bool {
		if score[order[i]] != score[order[j]] {
			return score[order[i]] > score[order[j]]
		}
		return order[i] < order[j]
	})

	// pairSeen records key pairs already co-located on a replica page, so
	// successive bases with near-identical neighbourhoods (common when a
	// recurring key set is much larger than a page) produce complementary
	// digests instead of duplicate pages — the wasted-space failure mode
	// the paper attributes to naive replication (§5.1).
	pairSeen := make(map[uint64]struct{})
	pairKey := func(a, b hypergraph.Vertex) uint64 {
		if a > b {
			a, b = b, a
		}
		return uint64(a)<<32 | uint64(b)
	}
	coocc := hypergraph.NewCoOccurrence(g)
	var cands [][]layout.Key
	for _, base := range order {
		if len(cands) >= budget || score[base] == 0 {
			break
		}
		baseBucket := assign[base]
		neighbors := coocc.Top(base, opts.Capacity-1, func(u hypergraph.Vertex) bool {
			if assign[u] == baseBucket {
				return true
			}
			_, dup := pairSeen[pairKey(base, u)]
			return dup
		})
		if len(neighbors) == 0 {
			continue
		}
		keys := make([]layout.Key, 0, len(neighbors)+1)
		keys = append(keys, base)
		keys = append(keys, neighbors...)
		cands = append(cands, keys)
		for i, a := range keys {
			for _, b := range keys[i+1:] {
				pairSeen[pairKey(a, b)] = struct{}{}
			}
		}
	}
	if err := emitReplicaPages(lay, cands, opts.Shards); err != nil {
		return nil, err
	}
	return lay, nil
}

// emitReplicaPages appends the candidate replica pages (built in score
// order) to the layout. With Shards > 1 the candidates are permuted across
// the replica-page slots: slot i becomes global page NumPages+i, which
// lives on device (NumPages+i) mod Shards under ssd.Array striping, so
// each slot greedily takes the earliest unplaced candidate with the fewest
// keys whose home page shares that device — a key's replica then lands on
// a different device than its home copy whenever the budget allows, which
// is what lets recovery route around a whole faulty shard. Shards <= 1
// emits the candidates in score order unchanged (the historical layout).
func emitReplicaPages(lay *layout.Layout, cands [][]layout.Key, shards int) error {
	if shards > 1 && len(cands) > 1 {
		numHome := lay.NumPages()
		used := make([]bool, len(cands))
		ordered := make([][]layout.Key, 0, len(cands))
		for slot := 0; slot < len(cands); slot++ {
			slotShard := (numHome + slot) % shards
			pick, best := -1, int(^uint(0)>>1)
			for i, keys := range cands {
				if used[i] {
					continue
				}
				collisions := 0
				for _, k := range keys {
					if int(lay.Home[k])%shards == slotShard {
						collisions++
					}
				}
				if collisions < best {
					pick, best = i, collisions
					if collisions == 0 {
						break
					}
				}
			}
			used[pick] = true
			ordered = append(ordered, cands[pick])
		}
		cands = ordered
	}
	for _, keys := range cands {
		if _, err := lay.AddReplicaPage(keys); err != nil {
			return fmt.Errorf("placement: maxembed replica page: %w", err)
		}
	}
	return nil
}

// replicaPageBudget returns ⌊rN/d⌋: the number of extra pages a
// replication ratio r affords.
func replicaPageBudget(n, capacity int, r float64) int {
	if r <= 0 {
		return 0
	}
	return int(r * float64(n) / float64(capacity))
}
