package placement

import (
	"reflect"
	"testing"

	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/workload"
)

// clusteredGraph builds a graph from a small community-structured workload.
func clusteredGraph(t *testing.T) (*hypergraph.Graph, *workload.Trace) {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 1200, Queries: 2500, MeanQueryLen: 10,
		Communities: 60, CommunityAffinity: 0.85, ZipfS: 1.2, Seed: 4,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func TestAllStrategiesProduceValidLayouts(t *testing.T) {
	g, _ := clusteredGraph(t)
	for _, s := range Strategies() {
		for _, r := range []float64{0, 0.1, 0.4} {
			lay, err := Build(s, g, Options{Capacity: 15, ReplicationRatio: r, Seed: 1})
			if err != nil {
				t.Fatalf("%s r=%v: %v", s, r, err)
			}
			if err := lay.Validate(); err != nil {
				t.Fatalf("%s r=%v: invalid layout: %v", s, r, err)
			}
			if lay.NumKeys != g.NumVertices() {
				t.Fatalf("%s: NumKeys = %d, want %d", s, lay.NumKeys, g.NumVertices())
			}
		}
	}
}

func TestReplicationRatioBounded(t *testing.T) {
	g, _ := clusteredGraph(t)
	for _, s := range []Strategy{StrategyRPP, StrategyFPR, StrategyMaxEmbed} {
		for _, r := range []float64{0.1, 0.2, 0.4, 0.8} {
			lay, err := Build(s, g, Options{Capacity: 15, ReplicationRatio: r, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if got := lay.ReplicationRatio(); got > r+1e-9 {
				t.Errorf("%s: ReplicationRatio = %v exceeds budget %v", s, got, r)
			}
			// The budget should be substantially used (strategies differ
			// in waste, but all should reach at least half).
			if got := lay.ReplicationRatio(); got < r/2 {
				t.Errorf("%s: ReplicationRatio = %v, using under half of budget %v", s, got, r)
			}
		}
	}
}

func TestZeroRatioDegeneratesToSHP(t *testing.T) {
	g, _ := clusteredGraph(t)
	base, err := SHP(g, Options{Capacity: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{StrategyRPP, StrategyFPR, StrategyMaxEmbed} {
		lay, err := Build(s, g, Options{Capacity: 15, ReplicationRatio: 0, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lay.Home, base.Home) {
			t.Errorf("%s with r=0 differs from SHP placement", s)
		}
		if lay.ReplicationRatio() != 0 {
			t.Errorf("%s with r=0 has replicas", s)
		}
	}
}

func TestVanillaStrategy(t *testing.T) {
	g, _ := clusteredGraph(t)
	lay, err := Build(StrategyVanilla, g, Options{Capacity: 15})
	if err != nil {
		t.Fatal(err)
	}
	want := layout.Vanilla(g.NumVertices(), 15)
	if !reflect.DeepEqual(lay.Home, want.Home) {
		t.Error("vanilla strategy does not match layout.Vanilla")
	}
}

func TestSHPReducesConnectivityVsVanilla(t *testing.T) {
	g, _ := clusteredGraph(t)
	lay, err := SHP(g, Options{Capacity: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int32, lay.NumKeys)
	for k, p := range lay.Home {
		assign[k] = int32(p)
	}
	vanilla := make([]int32, lay.NumKeys)
	for v := range vanilla {
		vanilla[v] = int32(v / 15)
	}
	if got, base := g.TotalConnectivity(assign), g.TotalConnectivity(vanilla); got >= base {
		t.Errorf("SHP connectivity %d not below vanilla %d", got, base)
	}
}

func TestMaxEmbedReplicaPagesAreCoherent(t *testing.T) {
	g, _ := clusteredGraph(t)
	opts := Options{Capacity: 15, ReplicationRatio: 0.2, Seed: 1}
	base, err := SHP(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := MaxEmbed(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Home placement preserved exactly (replication after partition must
	// not damage the original combinations, §5.3).
	if !reflect.DeepEqual(lay.Home, base.Home) {
		t.Error("MaxEmbed changed the SHP home placement")
	}
	// Replica pages appear after the SHP pages and contain keys from more
	// than one home page (otherwise they capture no new combination).
	if lay.NumPages() <= base.NumPages() {
		t.Fatal("MaxEmbed added no replica pages")
	}
	for p := base.NumPages(); p < lay.NumPages(); p++ {
		keys := lay.Pages[p]
		if len(keys) < 2 {
			t.Errorf("replica page %d holds %d keys; pointless replica", p, len(keys))
		}
		homes := map[layout.PageID]bool{}
		for _, k := range keys {
			homes[lay.Home[k]] = true
		}
		if len(homes) < 2 {
			t.Errorf("replica page %d only recombines keys of one home page", p)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	g, _ := clusteredGraph(t)
	for _, s := range Strategies() {
		if _, err := Build(s, g, Options{Capacity: 0}); err == nil {
			t.Errorf("%s accepted zero capacity", s)
		}
		if _, err := Build(s, g, Options{Capacity: 8, ReplicationRatio: -1}); err == nil {
			t.Errorf("%s accepted negative ratio", s)
		}
	}
	if _, err := Build(Strategy("bogus"), g, Options{Capacity: 8}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := hypergraph.FromQueries(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		lay, err := Build(s, g, Options{Capacity: 8, ReplicationRatio: 0.5, Seed: 1})
		if err != nil {
			t.Fatalf("%s on empty graph: %v", s, err)
		}
		if err := lay.Validate(); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if lay.NumKeys != 0 {
			t.Errorf("%s: NumKeys = %d", s, lay.NumKeys)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g, _ := clusteredGraph(t)
	for _, s := range Strategies() {
		a, err := Build(s, g, Options{Capacity: 15, ReplicationRatio: 0.2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(s, g, Options{Capacity: 15, ReplicationRatio: 0.2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s not deterministic", s)
		}
	}
}

func TestPartitionerLPA(t *testing.T) {
	g, _ := clusteredGraph(t)
	for _, s := range []Strategy{StrategySHP, StrategyMaxEmbed} {
		lay, err := Build(s, g, Options{
			Capacity: 15, ReplicationRatio: 0.2, Seed: 1,
			Partitioner: PartitionerLPA,
		})
		if err != nil {
			t.Fatalf("%s with LPA: %v", s, err)
		}
		if err := lay.Validate(); err != nil {
			t.Fatalf("%s with LPA: invalid layout: %v", s, err)
		}
	}
	if _, err := SHP(g, Options{Capacity: 15, Partitioner: Partitioner("bogus")}); err == nil {
		t.Error("unknown partitioner accepted")
	}
}
