package placement

import (
	"fmt"
	"sort"

	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/shp"
)

// RPP implements strawman 1, replication prior to partition (§5.1): the
// hottest ⌊rN⌋ keys get one replica vertex each, the replica is attached to
// half of its original's hyperedges, and the expanded hypergraph is handed
// to vanilla SHP, which decides both placements. The paper shows this
// underperforms because hotness alone ignores adjacency, and duplicate
// combinations waste space — both effects emerge naturally here (a replica
// landing on its original's page is a dead slot).
func RPP(g *hypergraph.Graph, opts Options) (*layout.Layout, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	nRep := int(opts.ReplicationRatio * float64(n))
	if nRep > n {
		nRep = n
	}
	if nRep == 0 {
		return SHP(g, opts)
	}

	// Pick the nRep hottest vertices (highest degree = most queries).
	order := make([]hypergraph.Vertex, n)
	for v := range order {
		order[v] = hypergraph.Vertex(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	replicaID := make([]int32, n) // original → expanded replica id, -1 if none
	for v := range replicaID {
		replicaID[v] = -1
	}
	for i, v := range order[:nRep] {
		replicaID[v] = int32(n + i)
	}

	// Rebuild the edge set over the expanded vertex space, alternating
	// each replicated vertex's appearances between the original and the
	// replica so both copies carry co-appearance signal.
	toggle := make([]bool, n)
	b := hypergraph.NewBuilder(n + nRep)
	members := make([]hypergraph.Vertex, 0, 64)
	for e := 0; e < g.NumEdges(); e++ {
		members = members[:0]
		for _, v := range g.Edge(hypergraph.EdgeID(e)) {
			if r := replicaID[v]; r >= 0 && toggle[v] {
				members = append(members, hypergraph.Vertex(r))
			} else {
				members = append(members, v)
			}
			if replicaID[v] >= 0 {
				toggle[v] = !toggle[v]
			}
		}
		if err := b.AddEdge(members); err != nil {
			return nil, fmt.Errorf("placement: rpp expanded edge: %w", err)
		}
	}
	expanded := b.Build()

	res, err := shp.Partition(expanded, shp.Options{
		Capacity: opts.Capacity,
		MaxIters: opts.MaxIters,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Collapse the expanded assignment back to a layout over original
	// keys. Replicas landing on their original's page are dropped — the
	// wasted-space failure mode the paper attributes to RPP.
	pageOf := compactBuckets(res.Assign)
	numPages := 0
	for _, p := range pageOf {
		if int(p)+1 > numPages {
			numPages = int(p) + 1
		}
	}
	lay := &layout.Layout{
		NumKeys:  n,
		Capacity: opts.Capacity,
		Pages:    make([][]layout.Key, numPages),
		Home:     make([]layout.PageID, n),
		Replicas: make([][]layout.PageID, n),
	}
	for v := 0; v < n; v++ {
		p := pageOf[v]
		lay.Home[v] = p
		lay.Pages[p] = append(lay.Pages[p], layout.Key(v))
	}
	for v := 0; v < n; v++ {
		r := replicaID[v]
		if r < 0 {
			continue
		}
		p := pageOf[r]
		if p == lay.Home[v] {
			continue // duplicate combination; slot wasted
		}
		lay.Replicas[v] = append(lay.Replicas[v], p)
		lay.Pages[p] = append(lay.Pages[p], layout.Key(v))
	}
	return lay, nil
}

// compactBuckets renumbers bucket ids to dense page ids in ascending
// bucket order.
func compactBuckets(assign []int32) []layout.PageID {
	seen := make(map[int32]struct{})
	for _, b := range assign {
		seen[b] = struct{}{}
	}
	ids := make([]int32, 0, len(seen))
	for b := range seen {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	remap := make(map[int32]layout.PageID, len(ids))
	for i, b := range ids {
		remap[b] = layout.PageID(i)
	}
	out := make([]layout.PageID, len(assign))
	for v, b := range assign {
		out[v] = remap[b]
	}
	return out
}
