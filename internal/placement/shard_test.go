package placement

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"maxembed/internal/layout"
)

// TestShardsDegenerateIdentical: Shards 0 and 1 (and unset) must not change
// the layout at all — shard awareness is strictly opt-in.
func TestShardsDegenerateIdentical(t *testing.T) {
	g, _ := clusteredGraph(t)
	base, err := Build(StrategyMaxEmbed, g, Options{Capacity: 15, ReplicationRatio: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1} {
		lay, err := Build(StrategyMaxEmbed, g, Options{
			Capacity: 15, ReplicationRatio: 0.4, Seed: 1, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lay, base) {
			t.Errorf("Shards=%d changed the layout", shards)
		}
	}
}

// replicaCollisions counts keys on replica pages whose home page lives on
// the same device shard as the replica page — reads that a single-shard
// failure would take out together.
func replicaCollisions(lay *layout.Layout, homePages, shards int) int {
	collisions := 0
	for p := homePages; p < lay.NumPages(); p++ {
		pageShard := p % shards
		for _, k := range lay.Pages[p] {
			if int(lay.Home[k])%shards == pageShard {
				collisions++
			}
		}
	}
	return collisions
}

// TestShardAwareReplicaDiversity: with Shards set, replica pages are
// assigned to slots so that their keys' home shards differ from the replica
// page's own shard wherever possible. The shard-aware build must not be
// worse than the shard-ignorant one, and on a clustered workload it must be
// strictly better. The replica *contents* must be unchanged — only their
// page-slot assignment (and hence device shard) may move.
func TestShardAwareReplicaDiversity(t *testing.T) {
	g, _ := clusteredGraph(t)
	opts := Options{Capacity: 15, ReplicationRatio: 0.4, Seed: 1}
	base, err := Build(StrategyMaxEmbed, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	noHomes, err := Build(StrategyMaxEmbed, g, Options{Capacity: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	homePages := noHomes.NumPages()

	for _, shards := range []int{2, 4} {
		awareOpts := opts
		awareOpts.Shards = shards
		aware, err := Build(StrategyMaxEmbed, g, awareOpts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(aware.Home, base.Home) {
			t.Fatalf("shards=%d: shard awareness changed home placement", shards)
		}
		if aware.NumPages() != base.NumPages() {
			t.Fatalf("shards=%d: page count changed: %d vs %d", shards, aware.NumPages(), base.NumPages())
		}
		// Same replica pages as a multiset; only the order may differ.
		canon := func(lay *layout.Layout) []string {
			var out []string
			for p := homePages; p < lay.NumPages(); p++ {
				keys := append([]layout.Key(nil), lay.Pages[p]...)
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				out = append(out, fmt.Sprint(keys))
			}
			sort.Strings(out)
			return out
		}
		if !reflect.DeepEqual(canon(aware), canon(base)) {
			t.Fatalf("shards=%d: shard awareness changed replica page contents", shards)
		}
		got := replicaCollisions(aware, homePages, shards)
		unaware := replicaCollisions(base, homePages, shards)
		if got > unaware {
			t.Errorf("shards=%d: aware placement has %d same-shard replica keys, ignorant %d",
				shards, got, unaware)
		}
		if got >= unaware {
			t.Errorf("shards=%d: no improvement from shard-aware assignment (%d vs %d)",
				shards, got, unaware)
		}
	}
}
