// Tier placement: assigning the hottest pages of a layout to the fastest
// device tier of a heterogeneous array.
//
// The striped array fixes page → shard as p mod n, so "which tier a page
// lives on" is entirely a property of its page ID's residue class. Tiering
// is therefore a page-ID permutation: rank pages by expected access heat
// and renumber so the hottest pages occupy the IDs whose residues belong
// to the fast tier's shards. Only pages whose tier actually changes move
// (minimal swaps), which keeps promotion/demotion counts meaningful and
// re-tiering at refresh boundaries cheap to reason about.
package placement

import (
	"fmt"
	"sort"

	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
)

// TierReport summarizes one Retier pass.
type TierReport struct {
	// Tiers is the number of device tiers.
	Tiers int
	// Moved is the number of pages whose tier changed.
	Moved int
	// Promoted is the number of pages that moved to a faster tier.
	Promoted int
	// Demoted is the number of pages that moved to a slower tier.
	Demoted int
	// TierPages counts the pages resident on each tier after the pass.
	TierPages []int
	// TierHeat sums the heat of the pages resident on each tier after
	// the pass; TierHeat[0]/total is the fraction of expected accesses
	// the fast tier absorbs.
	TierHeat []float64
}

// KeyFreq counts how many queries each key appears in — the per-key
// expected access frequency the tier pass and the DRAM pin-set consume.
// Works on any recorded query history (e.g. serving.HistoryRecorder
// snapshots).
func KeyFreq(numKeys int, queries [][]layout.Key) []float64 {
	freq := make([]float64, numKeys)
	for _, q := range queries {
		for _, k := range q {
			if int(k) < numKeys {
				freq[k]++
			}
		}
	}
	return freq
}

// KeyFreqFromGraph derives per-key access frequency from the co-appearance
// hypergraph built at layout time: a key's vertex degree is the number of
// history queries containing it.
func KeyFreqFromGraph(g *hypergraph.Graph, numKeys int) []float64 {
	freq := make([]float64, numKeys)
	for k := 0; k < numKeys; k++ {
		freq[k] = float64(g.Degree(uint32(k)))
	}
	return freq
}

// PageHeat sums per-key frequency over each page's resident keys,
// producing the per-page expected access heat Retier ranks by. Replica
// copies count toward every page holding them: a replica page serving hot
// keys deserves fast-tier residency just as much as a home page.
func PageHeat(lay *layout.Layout, keyFreq []float64) []float64 {
	heat := make([]float64, lay.NumPages())
	for p, keys := range lay.Pages {
		for _, k := range keys {
			if int(k) < len(keyFreq) {
				heat[p] += keyFreq[k]
			}
		}
	}
	return heat
}

// TopKeys returns the n hottest keys by frequency (ties broken by key ID
// for determinism) — the DRAM pin-set. Keys with zero frequency are never
// pinned.
func TopKeys(keyFreq []float64, n int) []layout.Key {
	if n <= 0 {
		return nil
	}
	order := make([]layout.Key, 0, len(keyFreq))
	for k, f := range keyFreq {
		if f > 0 {
			order = append(order, layout.Key(k))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if keyFreq[order[i]] != keyFreq[order[j]] {
			return keyFreq[order[i]] > keyFreq[order[j]]
		}
		return order[i] < order[j]
	})
	if len(order) > n {
		order = order[:n]
	}
	return order
}

// DiscountTop returns a copy of keyFreq with the n hottest keys zeroed.
// Tier heat should rank pages by the traffic that actually reaches the
// SSD: the DRAM layer (pin-set plus a warmed LRU of roughly the top keys)
// absorbs the head of the distribution, so pages holding those keys are
// shielded and would waste fast-tier slots. Discounting the expected
// DRAM residents before PageHeat ranks pages by post-cache heat instead.
func DiscountTop(keyFreq []float64, n int) []float64 {
	out := append([]float64(nil), keyFreq...)
	for _, k := range TopKeys(keyFreq, n) {
		out[k] = 0
	}
	return out
}

// Retier returns a copy of lay renumbered so that the hottest pages occupy
// the page IDs striped onto the fastest tier. tierOfShard maps each shard
// of the serving array to its tier rank (0 = fastest; see
// ssd.Array.TierShardMap), and heat is the per-page expected access
// frequency (see PageHeat) indexed by lay's current page IDs.
//
// The input layout is not modified — re-tiering happens on the
// freshly-built layout of a refresh while the previous generation keeps
// serving, so mutating in place would race with in-flight lookups.
// Pages already on their target tier keep their IDs; the rest are matched
// promote-to-demote in deterministic order. With a homogeneous array
// (single tier) the copy is returned unchanged with an all-zero report.
func Retier(lay *layout.Layout, heat []float64, tierOfShard []int) (*layout.Layout, *TierReport, error) {
	n := len(tierOfShard)
	if n == 0 {
		return nil, nil, fmt.Errorf("placement: Retier needs a shard→tier map")
	}
	if len(heat) != lay.NumPages() {
		return nil, nil, fmt.Errorf("placement: heat has %d entries for %d pages", len(heat), lay.NumPages())
	}
	numTiers := 0
	for s, t := range tierOfShard {
		if t < 0 {
			return nil, nil, fmt.Errorf("placement: shard %d has negative tier %d", s, t)
		}
		if t+1 > numTiers {
			numTiers = t + 1
		}
	}

	numPages := lay.NumPages()
	// slotTier[p] is the tier of page ID p, fixed by the striping.
	slotTier := make([]int, numPages)
	tierSlots := make([]int, numTiers)
	for p := 0; p < numPages; p++ {
		t := tierOfShard[p%n]
		slotTier[p] = t
		tierSlots[t]++
	}

	// Rank pages hottest-first (ties by ID for determinism) and fill tier
	// quotas in rank order: the hottest tierSlots[0] pages are desired on
	// tier 0, the next tierSlots[1] on tier 1, and so on.
	rank := make([]layout.PageID, numPages)
	for p := range rank {
		rank[p] = layout.PageID(p)
	}
	sort.SliceStable(rank, func(i, j int) bool {
		if heat[rank[i]] != heat[rank[j]] {
			return heat[rank[i]] > heat[rank[j]]
		}
		return rank[i] < rank[j]
	})
	desired := make([]int, numPages)
	{
		t, left := 0, tierSlots[0]
		for _, p := range rank {
			for left == 0 {
				t++
				left = tierSlots[t]
			}
			desired[p] = t
			left--
		}
	}

	// Minimal-move matching: pages already on their desired tier keep
	// their IDs; the rest vacate their slots, and each tier hands its
	// vacated slot IDs (ascending) to its incoming pages (hottest first,
	// so hotter pages get lower IDs — earlier residues — within a tier).
	perm := make([]layout.PageID, numPages) // old page ID → new page ID
	vacated := make([][]layout.PageID, numTiers)
	incoming := make([][]layout.PageID, numTiers)
	rep := &TierReport{
		Tiers:     numTiers,
		TierPages: make([]int, numTiers),
		TierHeat:  make([]float64, numTiers),
	}
	for p := 0; p < numPages; p++ {
		rep.TierPages[desired[p]]++
		rep.TierHeat[desired[p]] += heat[p]
		if desired[p] == slotTier[p] {
			perm[p] = layout.PageID(p)
			continue
		}
		vacated[slotTier[p]] = append(vacated[slotTier[p]], layout.PageID(p))
		if desired[p] < slotTier[p] {
			rep.Promoted++
		} else {
			rep.Demoted++
		}
		rep.Moved++
	}
	for _, p := range rank {
		if d := desired[p]; d != slotTier[p] {
			incoming[d] = append(incoming[d], p)
		}
	}
	for t := 0; t < numTiers; t++ {
		if len(vacated[t]) != len(incoming[t]) {
			return nil, nil, fmt.Errorf("placement: tier %d vacates %d slots but receives %d pages",
				t, len(vacated[t]), len(incoming[t]))
		}
		for i, p := range incoming[t] {
			perm[p] = vacated[t][i]
		}
	}

	// Apply the permutation to a fresh layout (shared with Despread: page
	// key slices are immutable under renumbering and safely shared with
	// the input).
	return applyPagePerm(lay, perm), rep, nil
}
