package placement

import (
	"testing"

	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
)

// tierLayout builds a small replicated layout striped over 4 shards for
// the Retier tests: 16 keys, capacity 2, 8 home pages.
func tierLayout(t *testing.T) *layout.Layout {
	t.Helper()
	assign := make([]int32, 16)
	for k := range assign {
		assign[k] = int32(k / 2)
	}
	lay, err := layout.FromAssignment(assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestRetierMovesHotPagesToFastTier(t *testing.T) {
	lay := tierLayout(t)
	// Shard 0 fast (tier 0), shards 1-3 dense: fast slots are page IDs
	// ≡ 0 mod 4, i.e. pages 0 and 4 of the 8.
	tierOf := []int{0, 1, 1, 1}
	heat := make([]float64, lay.NumPages())
	// Hottest pages are 3 and 5 — both currently on dense slots.
	heat[3], heat[5] = 100, 90
	heat[0], heat[4] = 1, 2 // current fast residents are cold

	out, rep, err := Retier(lay, heat, tierOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("re-tiered layout invalid: %v", err)
	}
	if rep.Tiers != 2 {
		t.Fatalf("Tiers = %d, want 2", rep.Tiers)
	}
	if rep.Promoted != 2 || rep.Demoted != 2 || rep.Moved != 4 {
		t.Fatalf("promoted/demoted/moved = %d/%d/%d, want 2/2/4", rep.Promoted, rep.Demoted, rep.Moved)
	}
	if rep.TierPages[0] != 2 || rep.TierPages[1] != 6 {
		t.Fatalf("TierPages = %v, want [2 6]", rep.TierPages)
	}
	if rep.TierHeat[0] != 190 {
		t.Fatalf("TierHeat[0] = %v, want 190 (heat of pages 3 and 5)", rep.TierHeat[0])
	}

	// The keys of old pages 3 and 5 must now live on fast-tier page IDs
	// (≡ 0 mod 4), hottest (old 3) on the lower ID.
	for _, k := range lay.Pages[3] {
		if out.Home[k] != 0 {
			t.Errorf("hot key %d home = %d, want 0", k, out.Home[k])
		}
	}
	for _, k := range lay.Pages[5] {
		if out.Home[k] != 4 {
			t.Errorf("hot key %d home = %d, want 4", k, out.Home[k])
		}
	}
	// Input layout untouched.
	if lay.Home[lay.Pages[3][0]] != 3 {
		t.Error("Retier mutated the input layout")
	}
}

func TestRetierIsMinimal(t *testing.T) {
	lay := tierLayout(t)
	tierOf := []int{0, 1, 1, 1}
	heat := make([]float64, lay.NumPages())
	// Pages 0 and 4 (the fast slots) are already the hottest: nothing
	// should move.
	heat[0], heat[4] = 100, 90
	out, rep, err := Retier(lay, heat, tierOf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != 0 || rep.Promoted != 0 || rep.Demoted != 0 {
		t.Fatalf("moved/promoted/demoted = %d/%d/%d, want 0/0/0", rep.Moved, rep.Promoted, rep.Demoted)
	}
	for k := range lay.Home {
		if out.Home[k] != lay.Home[k] {
			t.Fatalf("key %d moved from page %d to %d with no tier change", k, lay.Home[k], out.Home[k])
		}
	}
}

func TestRetierSingleTierIsIdentity(t *testing.T) {
	lay := tierLayout(t)
	heat := make([]float64, lay.NumPages())
	heat[7] = 5
	out, rep, err := Retier(lay, heat, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != 0 {
		t.Fatalf("Moved = %d on a single tier, want 0", rep.Moved)
	}
	for k := range lay.Home {
		if out.Home[k] != lay.Home[k] {
			t.Fatalf("single-tier Retier moved key %d", k)
		}
	}
}

func TestRetierPermutesReplicas(t *testing.T) {
	lay := tierLayout(t)
	// Give key 0 (home page 0) a replica page.
	rp, err := lay.AddReplicaPage([]layout.Key{0, 15})
	if err != nil {
		t.Fatal(err)
	}
	tierOf := []int{0, 1, 1, 1}
	heat := make([]float64, lay.NumPages())
	heat[rp] = 100 // hottest page is the replica page itself
	out, rep, err := Retier(lay, heat, tierOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("re-tiered layout invalid: %v", err)
	}
	if rep.Promoted < 1 {
		t.Fatalf("Promoted = %d, want ≥ 1 (the replica page)", rep.Promoted)
	}
	// Key 0's replica must now sit on a fast slot (≡ 0 mod 4).
	if got := out.Replicas[0][0] % 4; got != 0 {
		t.Errorf("replica page ID %d not on the fast tier", out.Replicas[0][0])
	}
}

func TestRetierErrors(t *testing.T) {
	lay := tierLayout(t)
	heat := make([]float64, lay.NumPages())
	if _, _, err := Retier(lay, heat, nil); err == nil {
		t.Error("Retier with no tier map: want error")
	}
	if _, _, err := Retier(lay, heat[:1], []int{0, 1, 1, 1}); err == nil {
		t.Error("Retier with short heat: want error")
	}
	if _, _, err := Retier(lay, heat, []int{0, -1, 1, 1}); err == nil {
		t.Error("Retier with negative tier: want error")
	}
}

func TestKeyFreqAndTopKeys(t *testing.T) {
	queries := [][]layout.Key{{0, 1}, {1, 2}, {1, 3}, {2, 99}}
	freq := KeyFreq(4, queries)
	want := []float64{1, 3, 2, 1}
	for k, w := range want {
		if freq[k] != w {
			t.Errorf("freq[%d] = %v, want %v", k, freq[k], w)
		}
	}
	top := TopKeys(freq, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("TopKeys = %v, want [1 2]", top)
	}
	// Zero-frequency keys never pinned even with a generous n.
	freq2 := []float64{0, 5, 0}
	if top := TopKeys(freq2, 3); len(top) != 1 || top[0] != 1 {
		t.Errorf("TopKeys over sparse freq = %v, want [1]", top)
	}

	g, err := hypergraph.FromQueries(4, queries[:3])
	if err != nil {
		t.Fatal(err)
	}
	gf := KeyFreqFromGraph(g, 4)
	if gf[1] != 3 {
		t.Errorf("graph freq[1] = %v, want 3", gf[1])
	}
}

func TestPageHeatCountsReplicas(t *testing.T) {
	lay := tierLayout(t)
	rp, err := lay.AddReplicaPage([]layout.Key{0})
	if err != nil {
		t.Fatal(err)
	}
	freq := make([]float64, lay.NumKeys)
	freq[0] = 7
	heat := PageHeat(lay, freq)
	if heat[lay.Home[0]] != 7 {
		t.Errorf("home page heat = %v, want 7", heat[lay.Home[0]])
	}
	if heat[rp] != 7 {
		t.Errorf("replica page heat = %v, want 7", heat[rp])
	}
}

func TestDiscountTopZeroesDRAMResidents(t *testing.T) {
	freq := []float64{1, 5, 3, 0, 2}
	got := DiscountTop(freq, 2)
	want := []float64{1, 0, 0, 0, 2}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("DiscountTop[%d] = %v, want %v", k, got[k], w)
		}
	}
	// The input is untouched — callers reuse the raw frequency for pins.
	if freq[1] != 5 || freq[2] != 3 {
		t.Errorf("DiscountTop mutated its input: %v", freq)
	}
	// n = 0 is the identity; n past the hot set only zeroes nonzero keys.
	if got := DiscountTop(freq, 0); got[1] != 5 {
		t.Errorf("DiscountTop(freq, 0) changed freq: %v", got)
	}
	got = DiscountTop(freq, 10)
	for k, f := range got {
		if f != 0 {
			t.Errorf("DiscountTop(freq, 10)[%d] = %v, want all zero", k, f)
		}
	}
}
