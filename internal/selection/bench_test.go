package selection

import (
	"testing"

	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/workload"
)

func benchFixture(b *testing.B, ratio float64) (*Index, *workload.Trace) {
	b.Helper()
	p := workload.Criteo.Scaled(0.05)
	tr, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		b.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: 15, ReplicationRatio: ratio, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return NewIndex(lay, 10), tr
}

func BenchmarkOnePass(b *testing.B) {
	idx, tr := benchFixture(b, 0.4)
	sel := NewSelector(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.OnePass(tr.Queries[i%len(tr.Queries)], nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnePassUnsorted(b *testing.B) {
	idx, tr := benchFixture(b, 0.4)
	sel := NewSelector(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.OnePassUnsorted(tr.Queries[i%len(tr.Queries)], nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	idx, tr := benchFixture(b, 0.4)
	sel := NewSelector(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Greedy(tr.Queries[i%len(tr.Queries)], nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnePassNoReplicas(b *testing.B) {
	idx, tr := benchFixture(b, 0)
	sel := NewSelector(idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.OnePass(tr.Queries[i%len(tr.Queries)], nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewIndex(b *testing.B) {
	p := workload.Criteo.Scaled(0.05)
	tr, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		b.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: 15, ReplicationRatio: 0.4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewIndex(lay, 10)
	}
}
