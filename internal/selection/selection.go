// Package selection implements the online phase's page-selection
// algorithms (§6): given a query (a set of embedding keys) over a
// replicated layout, choose a small set of SSD pages that covers every
// key. Exact minimization is set cover (NP-hard); the package provides
//
//   - Greedy: the classic greedy set-cover approximation the paper cites
//     as its starting point (and shows is too slow at §6's 56% overhead);
//   - OnePass: MaxEmbed's selection (§6.1) — keys sorted by ascending
//     replica count, each uncovered key picks the candidate page covering
//     the most still-uncovered keys, and covered keys are skipped, letting
//     replicated keys hitchhike on earlier reads;
//   - index shrinking: the Forward Index keeps only the first k pages per
//     key (§6.1/Fig 7), bounding both memory and per-key scan cost.
//
// Selected pages are delivered through a callback so the serving engine
// can issue asynchronous SSD reads mid-selection (pipelining, §6.2).
package selection

import (
	"fmt"
	"sort"

	"maxembed/internal/layout"
)

// Key is an embedding key.
type Key = layout.Key

// PageID is an SSD page id.
type PageID = layout.PageID

// Index is the DRAM-resident pair of indexes the online phase queries:
// the Forward Index (key → candidate pages, home first, truncated to the
// index limit) and the Invert Index (page → keys it holds). An Index is
// immutable after construction and safe for concurrent use.
type Index struct {
	forward [][]PageID
	invert  [][]Key
	numKeys int
}

// NewIndex builds the indexes from a layout. indexLimit k > 0 truncates
// each key's candidate list to its first k pages (home page always first);
// k <= 0 keeps all replicas.
func NewIndex(lay *layout.Layout, indexLimit int) *Index {
	idx := &Index{
		forward: make([][]PageID, lay.NumKeys),
		invert:  lay.Pages,
		numKeys: lay.NumKeys,
	}
	for k := 0; k < lay.NumKeys; k++ {
		pages := lay.PagesOf(Key(k), nil)
		if indexLimit > 0 && len(pages) > indexLimit {
			pages = pages[:indexLimit]
		}
		idx.forward[k] = pages
	}
	return idx
}

// NumKeys returns the key-space size.
func (idx *Index) NumKeys() int { return idx.numKeys }

// NumPages returns the page count.
func (idx *Index) NumPages() int { return len(idx.invert) }

// Candidates returns the candidate pages of k (home first). The slice is
// shared; callers must not modify it.
func (idx *Index) Candidates(k Key) []PageID { return idx.forward[k] }

// PageKeys returns the keys stored on page p. The slice is shared; callers
// must not modify it.
func (idx *Index) PageKeys(p PageID) []Key { return idx.invert[p] }

// ReplicaCount returns the number of candidate pages of k after index
// shrinking — the sort key of §6.1 step ❶.
func (idx *Index) ReplicaCount(k Key) int { return len(idx.forward[k]) }

// MemoryEntries returns the total number of forward-index entries, the
// quantity index shrinking bounds (§7.1).
func (idx *Index) MemoryEntries() int {
	n := 0
	for _, f := range idx.forward {
		n += len(f)
	}
	return n
}

// Stats counts the work one selection performed, feeding the online-phase
// cost accounting (§7.2).
type Stats struct {
	// Keys is the number of distinct, non-skipped keys in the query.
	Keys int
	// Pages is the number of pages selected (= SSD reads issued).
	Pages int
	// CandidatePages is the number of forward-index entries examined.
	CandidatePages int
	// InvertScans is the number of invert-index key entries examined —
	// the dominant selection cost, bounded to k·q by index shrinking.
	InvertScans int
}

// EmitFunc receives one selected page, the query keys it newly covers, and
// the cumulative work statistics up to and including this selection, which
// lets callers charge incremental software cost before issuing the read.
// covered aliases internal scratch and is only valid during the call.
type EmitFunc func(p PageID, covered []Key, sofar Stats)

// Selector runs selections over one Index. It holds reusable per-worker
// scratch; a Selector is NOT safe for concurrent use — give each worker
// its own (the Index may be shared).
type Selector struct {
	idx *Index

	epoch      int32
	queryMark  []int32 // key in current query
	coverMark  []int32 // key already covered
	keys       []Key
	coveredBuf []Key
	tieBreak   func(cand, best PageID) bool
	sorter     replicaSorter
}

// replicaSorter orders keys by ascending replica count (§6.1 ❶), ties by
// key id. It lives in the Selector so sorting allocates nothing per query
// (sort.Slice's closure and interface conversion both escape; a pointer to
// a stored sort.Interface does not).
type replicaSorter struct {
	keys []Key
	fwd  [][]PageID
}

func (s *replicaSorter) Len() int      { return len(s.keys) }
func (s *replicaSorter) Swap(i, j int) { s.keys[i], s.keys[j] = s.keys[j], s.keys[i] }
func (s *replicaSorter) Less(i, j int) bool {
	ri, rj := len(s.fwd[s.keys[i]]), len(s.fwd[s.keys[j]])
	if ri != rj {
		return ri < rj
	}
	return s.keys[i] < s.keys[j]
}

// NewSelector returns a selector over idx.
func NewSelector(idx *Index) *Selector {
	return &Selector{
		idx:       idx,
		queryMark: make([]int32, idx.numKeys),
		coverMark: make([]int32, idx.numKeys),
	}
}

// SetTieBreak installs (or clears, with nil) a page-score tie-breaker for
// OnePass: when two candidate pages cover the same number of uncovered
// keys, prefer(cand, best) == true switches the pick to cand. The serving
// engine uses this on multi-device backends to steer score-ties toward the
// least-loaded shard; with no tie-breaker the first candidate in forward-
// index order wins, preserving the historical deterministic choice.
func (s *Selector) SetTieBreak(prefer func(cand, best PageID) bool) {
	s.tieBreak = prefer
}

// ErrKeyRange reports a query key outside the layout's key space.
var ErrKeyRange = fmt.Errorf("selection: key out of range")

// prepare dedupes the query, drops skipped keys, and stamps query
// membership. It returns the distinct non-skipped keys in s.keys.
func (s *Selector) prepare(query []Key, skip func(Key) bool) error {
	s.epoch++
	s.keys = s.keys[:0]
	for _, k := range query {
		if int(k) >= s.idx.numKeys {
			return fmt.Errorf("%w: %d >= %d", ErrKeyRange, k, s.idx.numKeys)
		}
		if s.queryMark[k] == s.epoch {
			continue
		}
		s.queryMark[k] = s.epoch
		if skip != nil && skip(k) {
			// Mark pre-covered so a page fetched for other keys does not
			// re-report a key that is already served elsewhere (cache).
			s.coverMark[k] = s.epoch
			continue
		}
		s.keys = append(s.keys, k)
	}
	return nil
}

// cover marks every query member on page p as covered and returns them.
// The result aliases s.coveredBuf.
func (s *Selector) cover(p PageID) []Key {
	s.coveredBuf = s.coveredBuf[:0]
	for _, k := range s.idx.invert[p] {
		if s.queryMark[k] == s.epoch && s.coverMark[k] != s.epoch {
			s.coverMark[k] = s.epoch
			s.coveredBuf = append(s.coveredBuf, k)
		}
	}
	return s.coveredBuf
}

// OnePass runs MaxEmbed's one-pass selection (§6.1). skip (optional)
// filters keys served elsewhere (e.g. DRAM cache hits); emit is invoked
// once per selected page, in selection order, enabling pipelined reads.
func (s *Selector) OnePass(query []Key, skip func(Key) bool, emit EmitFunc) (Stats, error) {
	return s.onePass(query, skip, emit, true)
}

// OnePassUnsorted is OnePass without the ascending replica-count ordering
// (§6.1 step ❶) — an ablation isolating the ordering's contribution. Keys
// are visited in query order, so highly replicated keys no longer
// hitchhike on the single-candidate reads of cold keys and trigger full
// candidate scans instead.
func (s *Selector) OnePassUnsorted(query []Key, skip func(Key) bool, emit EmitFunc) (Stats, error) {
	return s.onePass(query, skip, emit, false)
}

func (s *Selector) onePass(query []Key, skip func(Key) bool, emit EmitFunc, sorted bool) (Stats, error) {
	var st Stats
	if err := s.prepare(query, skip); err != nil {
		return st, err
	}
	st.Keys = len(s.keys)
	// ❶ Sort by ascending replica count; ties by key id for determinism.
	idx := s.idx
	if sorted {
		s.sorter.keys, s.sorter.fwd = s.keys, idx.forward
		sort.Sort(&s.sorter)
		s.sorter.keys, s.sorter.fwd = nil, nil
	}
	for _, k := range s.keys {
		if s.coverMark[k] == s.epoch {
			continue // hitchhiked on an earlier read
		}
		// ❷ Candidate pages from the Forward Index; ❸ pick the one
		// covering the most uncovered query keys via the Invert Index.
		var best PageID
		bestCovers := -1
		for _, p := range idx.forward[k] {
			st.CandidatePages++
			covers := 0
			for _, u := range idx.invert[p] {
				st.InvertScans++
				if s.queryMark[u] == s.epoch && s.coverMark[u] != s.epoch {
					covers++
				}
			}
			if covers > bestCovers ||
				(covers == bestCovers && s.tieBreak != nil && s.tieBreak(p, best)) {
				best = p
				bestCovers = covers
			}
		}
		// ❹ Read the page; mark everything it covers.
		covered := s.cover(best)
		st.Pages++
		if emit != nil {
			emit(best, covered, st)
		}
	}
	return st, nil
}

// Greedy runs the classic greedy set-cover approximation: repeatedly pick,
// among all candidate pages of all uncovered keys, the page covering the
// most uncovered keys. It examines every candidate of every uncovered key
// each round — the O(|S|·|Q|) cost §6 attributes to the naive approach.
func (s *Selector) Greedy(query []Key, skip func(Key) bool, emit EmitFunc) (Stats, error) {
	var st Stats
	if err := s.prepare(query, skip); err != nil {
		return st, err
	}
	st.Keys = len(s.keys)
	idx := s.idx
	remaining := st.Keys
	for remaining > 0 {
		var best PageID
		bestCovers := 0
		for _, k := range s.keys {
			if s.coverMark[k] == s.epoch {
				continue
			}
			for _, p := range idx.forward[k] {
				st.CandidatePages++
				covers := 0
				for _, u := range idx.invert[p] {
					st.InvertScans++
					if s.queryMark[u] == s.epoch && s.coverMark[u] != s.epoch {
						covers++
					}
				}
				if covers > bestCovers || (covers == bestCovers && bestCovers > 0 && p < best) {
					best = p
					bestCovers = covers
				}
			}
		}
		if bestCovers == 0 {
			// Cannot happen with a valid index (every key's home page
			// covers at least itself); guard against corrupt input.
			return st, fmt.Errorf("selection: no page covers remaining keys")
		}
		covered := s.cover(best)
		remaining -= len(covered)
		st.Pages++
		if emit != nil {
			emit(best, covered, st)
		}
	}
	return st, nil
}
