package selection

import (
	"math/rand"
	"reflect"
	"testing"

	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/workload"
)

// testLayout: 12 keys, capacity 4, 3 home pages + 1 replica page mixing
// keys from different homes.
//
//	page 0: 0 1 2 3   page 1: 4 5 6 7   page 2: 8 9 10 11
//	page 3 (replica): 0 4 8
func testLayout(t *testing.T) *layout.Layout {
	t.Helper()
	lay := layout.Vanilla(12, 4)
	if _, err := lay.AddReplicaPage([]layout.Key{0, 4, 8}); err != nil {
		t.Fatal(err)
	}
	return lay
}

func collect(emits *[][2]interface{}) EmitFunc {
	return func(p PageID, covered []Key, _ Stats) {
		cp := make([]Key, len(covered))
		copy(cp, covered)
		*emits = append(*emits, [2]interface{}{p, cp})
	}
}

func pagesOf(emits [][2]interface{}) []PageID {
	var out []PageID
	for _, e := range emits {
		out = append(out, e[0].(PageID))
	}
	return out
}

func TestOnePassUsesReplicaPage(t *testing.T) {
	lay := testLayout(t)
	sel := NewSelector(NewIndex(lay, 0))
	var emits [][2]interface{}
	st, err := sel.OnePass([]Key{0, 4, 8}, nil, collect(&emits))
	if err != nil {
		t.Fatal(err)
	}
	// The replica page 3 covers the whole query in one read.
	if st.Pages != 1 {
		t.Fatalf("Pages = %d, want 1; emits %v", st.Pages, emits)
	}
	if got := pagesOf(emits); !reflect.DeepEqual(got, []PageID{3}) {
		t.Errorf("selected pages = %v, want [3]", got)
	}
	if st.Keys != 3 {
		t.Errorf("Keys = %d, want 3", st.Keys)
	}
}

func TestOnePassUnreplicatedQuery(t *testing.T) {
	lay := testLayout(t)
	sel := NewSelector(NewIndex(lay, 0))
	var emits [][2]interface{}
	st, err := sel.OnePass([]Key{1, 2, 5}, nil, collect(&emits))
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages != 2 {
		t.Errorf("Pages = %d, want 2 (pages 0 and 1)", st.Pages)
	}
	got := map[PageID]bool{}
	for _, p := range pagesOf(emits) {
		got[p] = true
	}
	if !got[0] || !got[1] {
		t.Errorf("selected pages = %v, want {0,1}", pagesOf(emits))
	}
}

func TestOnePassDedupesAndSkips(t *testing.T) {
	lay := testLayout(t)
	sel := NewSelector(NewIndex(lay, 0))
	skip := func(k Key) bool { return k == 1 } // cached
	st, err := sel.OnePass([]Key{1, 2, 2, 2, 1}, skip, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 1 {
		t.Errorf("Keys = %d, want 1 (dedup + skip)", st.Keys)
	}
	if st.Pages != 1 {
		t.Errorf("Pages = %d, want 1", st.Pages)
	}
}

func TestOnePassEmptyQuery(t *testing.T) {
	lay := testLayout(t)
	sel := NewSelector(NewIndex(lay, 0))
	st, err := sel.OnePass(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages != 0 || st.Keys != 0 {
		t.Errorf("empty query: %+v", st)
	}
	// All keys skipped behaves the same.
	st, err = sel.OnePass([]Key{0, 1}, func(Key) bool { return true }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages != 0 {
		t.Errorf("all-skipped query selected %d pages", st.Pages)
	}
}

// Regression: a skipped (cached) key that happens to live on a fetched
// page must not be re-reported as covered — it is already served elsewhere.
func TestSkippedKeyNotRecovered(t *testing.T) {
	lay := testLayout(t) // page 0 holds keys 0..3
	sel := NewSelector(NewIndex(lay, 0))
	skip := func(k Key) bool { return k == 1 }
	var all []Key
	st, err := sel.OnePass([]Key{0, 1, 2}, skip, func(_ PageID, covered []Key, _ Stats) {
		all = append(all, covered...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 2 {
		t.Errorf("Keys = %d, want 2", st.Keys)
	}
	for _, k := range all {
		if k == 1 {
			t.Error("skipped key 1 reported as covered")
		}
	}
	if len(all) != 2 {
		t.Errorf("covered %v, want exactly {0,2}", all)
	}
}

func TestOnePassKeyOutOfRange(t *testing.T) {
	lay := testLayout(t)
	sel := NewSelector(NewIndex(lay, 0))
	if _, err := sel.OnePass([]Key{99}, nil, nil); err == nil {
		t.Error("out-of-range key accepted")
	}
	if _, err := sel.Greedy([]Key{99}, nil, nil); err == nil {
		t.Error("Greedy accepted out-of-range key")
	}
}

func TestIndexShrinking(t *testing.T) {
	lay := layout.Vanilla(8, 4)
	// Give key 0 three replica pages.
	for i := 0; i < 3; i++ {
		if _, err := lay.AddReplicaPage([]layout.Key{0, Key(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	full := NewIndex(lay, 0)
	if got := full.ReplicaCount(0); got != 4 {
		t.Fatalf("full ReplicaCount = %d, want 4", got)
	}
	shrunk := NewIndex(lay, 2)
	if got := shrunk.ReplicaCount(0); got != 2 {
		t.Errorf("shrunk ReplicaCount = %d, want 2", got)
	}
	// Home page always survives shrinking.
	if shrunk.Candidates(0)[0] != lay.Home[0] {
		t.Error("shrunk candidates do not start with home page")
	}
	if shrunk.MemoryEntries() >= full.MemoryEntries() {
		t.Error("shrinking did not reduce memory entries")
	}
	// Selection still covers everything (Fig 7's guarantee via the
	// invert index).
	sel := NewSelector(shrunk)
	var covered []Key
	st, err := sel.OnePass([]Key{0, 1, 2, 3, 4, 5, 6, 7}, nil, func(p PageID, c []Key, _ Stats) {
		covered = append(covered, c...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(covered) != 8 {
		t.Errorf("covered %d keys, want 8", len(covered))
	}
	if st.InvertScans > 0 && st.CandidatePages > 16 {
		t.Errorf("CandidatePages = %d exceeds k·q bound 16", st.CandidatePages)
	}
}

func TestGreedyMatchesOnePassCoverage(t *testing.T) {
	lay := testLayout(t)
	sel := NewSelector(NewIndex(lay, 0))
	var emits [][2]interface{}
	st, err := sel.Greedy([]Key{0, 4, 8, 1}, nil, collect(&emits))
	if err != nil {
		t.Fatal(err)
	}
	// Greedy picks replica page 3 (covers 0,4,8) then page 0 (covers 1).
	if st.Pages != 2 {
		t.Errorf("Greedy Pages = %d, want 2", st.Pages)
	}
	if got := pagesOf(emits); got[0] != 3 {
		t.Errorf("Greedy first pick = %v, want page 3", got)
	}
}

// Integration property: on real strategy outputs, both algorithms cover
// every queried key, the emit callback reports each key exactly once, and
// OnePass never reads more pages than there are query keys.
func TestSelectionCoverageProperty(t *testing.T) {
	p := workload.Profile{
		Name: "t", Items: 800, Queries: 1500, MeanQueryLen: 12,
		Communities: 40, CommunityAffinity: 0.85, ZipfS: 1.2, Seed: 5,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []placement.Strategy{placement.StrategySHP, placement.StrategyMaxEmbed} {
		lay, err := placement.Build(strat, g, placement.Options{
			Capacity: 8, ReplicationRatio: 0.4, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, limit := range []int{0, 5} {
			sel := NewSelector(NewIndex(lay, limit))
			rng := rand.New(rand.NewSource(9))
			var onePassTotal, greedyTotal int
			for qi := 0; qi < 300; qi++ {
				q := tr.Queries[rng.Intn(len(tr.Queries))]
				want := map[Key]bool{}
				for _, k := range q {
					want[k] = true
				}
				got := map[Key]int{}
				st, err := sel.OnePass(q, nil, func(_ PageID, covered []Key, _ Stats) {
					for _, k := range covered {
						got[k]++
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s limit=%d: covered %d of %d keys", strat, limit, len(got), len(want))
				}
				for k, c := range got {
					if !want[k] || c != 1 {
						t.Fatalf("%s: key %d covered %d times (in query: %v)", strat, k, c, want[k])
					}
				}
				if st.Pages > len(want) {
					t.Fatalf("%s: %d pages for %d keys", strat, st.Pages, len(want))
				}
				// Greedy covers the same key set.
				gGot := map[Key]bool{}
				gst, err := sel.Greedy(q, nil, func(_ PageID, covered []Key, _ Stats) {
					for _, k := range covered {
						gGot[k] = true
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(gGot) != len(want) {
					t.Fatalf("%s greedy: covered %d of %d", strat, len(gGot), len(want))
				}
				onePassTotal += st.Pages
				greedyTotal += gst.Pages
			}
			// Both are heuristics and may differ per query, but in
			// aggregate classic greedy should not be beaten by more
			// than noise — otherwise one of them is broken.
			if float64(greedyTotal) > 1.02*float64(onePassTotal) {
				t.Errorf("%s limit=%d: greedy total %d pages ≫ one-pass %d",
					strat, limit, greedyTotal, onePassTotal)
			}
		}
	}
}

// With r=0 every key has exactly one candidate, so OnePass must select
// exactly the distinct home pages.
func TestOnePassDegeneratesWithoutReplicas(t *testing.T) {
	lay := layout.Vanilla(40, 5)
	sel := NewSelector(NewIndex(lay, 0))
	query := []Key{0, 1, 7, 12, 39}
	wantPages := map[PageID]bool{}
	for _, k := range query {
		wantPages[lay.Home[k]] = true
	}
	var got []PageID
	st, err := sel.OnePass(query, nil, func(p PageID, _ []Key, _ Stats) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages != len(wantPages) {
		t.Errorf("Pages = %d, want %d", st.Pages, len(wantPages))
	}
	for _, p := range got {
		if !wantPages[p] {
			t.Errorf("unexpected page %d", p)
		}
	}
}

func TestSelectorReuseAcrossQueries(t *testing.T) {
	// Scratch state must fully reset between queries.
	lay := testLayout(t)
	sel := NewSelector(NewIndex(lay, 0))
	if _, err := sel.OnePass([]Key{0, 1, 2, 3}, nil, nil); err != nil {
		t.Fatal(err)
	}
	st, err := sel.OnePass([]Key{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 1 || st.Pages != 1 {
		t.Errorf("second query stats = %+v", st)
	}
}
