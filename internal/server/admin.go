package server

import (
	"context"
	"net/http"
	"strconv"

	"maxembed/internal/serving"
	"maxembed/internal/ssd"
)

// Shard administration: the operational surface over per-shard health,
// the background scrubber, and live shard rebuild. Mirrors refresh.go's
// pattern — the handler drives interfaces the DB implements, endpoints
// are mutex-guarded (409 when busy), and progress is published through
// /v1/stats and /metrics so an operator can watch a rebuild land.

// ShardAdmin is the shard chaos/repair face of the serving stack — in
// practice maxembed.DB on a multi-device deployment.
type ShardAdmin interface {
	// ShardHealth returns per-shard health snapshots (nil when the
	// backend has no shard health machinery).
	ShardHealth() []ssd.ShardHealthInfo
	// FailShard kills a shard: future reads fail and the serving layer
	// routes around it (the chaos hook).
	FailShard(shard int) error
	// RebuildShard streams the shard onto the hot spare and hot-swaps
	// the repaired array into the serving handle.
	RebuildShard(ctx context.Context, shard int, cfg serving.RebuildConfig) (serving.RebuildReport, error)
}

// Scrubber runs verify-and-repair sweeps over the store image — in
// practice maxembed.DB.
type Scrubber interface {
	Scrub(ctx context.Context, cfg serving.ScrubConfig) (serving.ScrubReport, error)
}

// WithShardAdmin enables the POST /v1/shards/{shard}/fail and
// /v1/shards/{shard}/rebuild admin endpoints.
func WithShardAdmin(sa ShardAdmin) Option {
	return func(h *Handler) { h.shardAdmin = sa }
}

// WithScrub enables the POST /v1/scrub admin endpoint.
func WithScrub(s Scrubber) Option {
	return func(h *Handler) { h.scrubber = s }
}

// WithShardFailTolerance sets the fraction of dead (failed or
// rebuilding) shards above which the node reports unhealthy (default
// 0.5). Below it, dead shards are the engine's problem — selection
// reroutes onto live replicas — and the node keeps admitting traffic.
func WithShardFailTolerance(frac float64) Option {
	return func(h *Handler) { h.shardTolerance = frac }
}

// nodeHealth is one evaluation of the readiness verdict, with per-shard
// detail when the backend tracks it.
type nodeHealth struct {
	ready  bool
	rate   float64 // global rolling read-fault rate
	events int64   // reads the global window covers
	// Shard detail; Shards is nil on single-device backends (the legacy
	// global-window verdict applies there unchanged).
	shards     []ssd.ShardHealthInfo
	deadShards int
	liveRate   float64 // fault rate pooled over live shards only
	liveEvents int64
}

// nodeHealth computes the readiness verdict. Without shard health the
// verdict is the legacy one: global window rate vs threshold. With it,
// dead shards below the tolerance no longer flip the node — their faults
// are excluded and readiness asks (a) are too many shards dead, and
// (b) are the *surviving* shards faulting beyond the threshold.
func (h *Handler) nodeHealth() nodeHealth {
	var nh nodeHealth
	nh.rate, nh.events = h.window.Rate()
	be := h.curBackend()
	hr, ok := be.(ssd.HealthReporter)
	if !ok {
		nh.ready = nh.events < h.minEvents || nh.rate <= h.threshold
		return nh
	}
	n := be.NumShards()
	nh.shards = make([]ssd.ShardHealthInfo, n)
	var liveFaults, liveReads float64
	for i := 0; i < n; i++ {
		info := hr.ShardHealth(i)
		nh.shards[i] = info
		if !info.State.Live() {
			nh.deadShards++
			continue
		}
		liveFaults += info.FaultRate * float64(info.WindowReads)
		liveReads += float64(info.WindowReads)
	}
	if liveReads > 0 {
		nh.liveRate = liveFaults / liveReads
	}
	nh.liveEvents = int64(liveReads)
	deadFrac := float64(nh.deadShards) / float64(n)
	nh.ready = deadFrac <= h.shardTolerance &&
		(nh.liveEvents < h.minEvents || nh.liveRate <= h.threshold)
	return nh
}

// ShardHealthEntry is one shard's health in JSON responses.
type ShardHealthEntry struct {
	Shard        int     `json:"shard"`
	State        string  `json:"state"`
	FaultRate    float64 `json:"fault_rate"`
	WindowReads  int     `json:"window_reads"`
	LatentErrors int64   `json:"latent_errors"`
	Transitions  int64   `json:"transitions"`
}

func shardHealthEntries(infos []ssd.ShardHealthInfo) []ShardHealthEntry {
	out := make([]ShardHealthEntry, len(infos))
	for i, info := range infos {
		out[i] = ShardHealthEntry{
			Shard:        info.Shard,
			State:        info.State.String(),
			FaultRate:    info.FaultRate,
			WindowReads:  info.WindowReads,
			LatentErrors: info.LatentErrors,
			Transitions:  info.Transitions,
		}
	}
	return out
}

// ScrubResponse is the POST /v1/scrub response body (and the "last"
// object of the stats scrub section).
type ScrubResponse struct {
	PagesScanned      int   `json:"pages_scanned"`
	PagesSkipped      int   `json:"pages_skipped"`
	PagesUnread       int   `json:"pages_unread"`
	SlotsVerified     int   `json:"slots_verified"`
	ReadFaults        int   `json:"read_faults"`
	LatentSlots       int   `json:"latent_slots"`
	RepairedSlots     int   `json:"repaired_slots"`
	UnrepairableSlots int   `json:"unrepairable_slots"`
	PerShardLatent    []int `json:"per_shard_latent,omitempty"`
	DurationNS        int64 `json:"virtual_duration_ns"`
}

func scrubResponse(rep serving.ScrubReport) ScrubResponse {
	return ScrubResponse{
		PagesScanned:      rep.PagesScanned,
		PagesSkipped:      rep.PagesSkipped,
		PagesUnread:       rep.PagesUnread,
		SlotsVerified:     rep.SlotsVerified,
		ReadFaults:        rep.ReadFaults,
		LatentSlots:       rep.LatentSlots,
		RepairedSlots:     rep.RepairedSlots,
		UnrepairableSlots: rep.UnrepairableSlots,
		PerShardLatent:    rep.PerShardLatent,
		DurationNS:        rep.DurationNS(),
	}
}

// scrub is the POST /v1/scrub admin endpoint: one synchronous sweep.
// Query parameters: pages_per_sec (float), detect_only (bool). 501 when
// no scrubber is configured; 409 while another sweep runs. Parameter
// parsing happens before the scrub mutex is taken and the response is
// written after it is released, so the critical section covers exactly
// the sweep (lockhold).
func (h *Handler) scrub(w http.ResponseWriter, r *http.Request) {
	if h.scrubber == nil {
		httpError(w, http.StatusNotImplemented,
			"scrub not configured: server started without a scrubber")
		return
	}
	cfg := serving.ScrubConfig{
		Progress: func(scanned, total int) {
			h.scrubScanned.Store(int64(scanned))
			h.scrubTotal.Store(int64(total))
		},
	}
	if v := r.URL.Query().Get("pages_per_sec"); v != "" {
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil || rate <= 0 {
			httpError(w, http.StatusBadRequest, "invalid pages_per_sec %q", v)
			return
		}
		cfg.PagesPerSec = rate
	}
	if v := r.URL.Query().Get("detect_only"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid detect_only %q", v)
			return
		}
		cfg.DetectOnly = b
	}
	resp, busy, err := h.runScrub(r.Context(), cfg)
	if busy {
		httpError(w, http.StatusConflict, "scrub already in progress")
		return
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "scrub: %v", err)
		return
	}
	writeJSON(w, resp)
}

// runScrub performs one sweep under scrubMu, reporting busy when another
// sweep holds it, and folds the result into the scrub counters.
func (h *Handler) runScrub(ctx context.Context, cfg serving.ScrubConfig) (resp ScrubResponse, busy bool, err error) {
	if !h.scrubMu.TryLock() {
		return ScrubResponse{}, true, nil
	}
	defer h.scrubMu.Unlock()
	h.scrubRunning.Store(true)
	defer h.scrubRunning.Store(false)
	rep, err := h.scrubber.Scrub(ctx, cfg)
	if err != nil {
		h.scrubErrors.Add(1)
		return ScrubResponse{}, false, err
	}
	h.scrubs.Add(1)
	h.scrubLatent.Add(int64(rep.LatentSlots))
	h.scrubRepaired.Add(int64(rep.RepairedSlots))
	h.scrubUnrepairable.Add(int64(rep.UnrepairableSlots))
	resp = scrubResponse(rep)
	h.adminMu.Lock()
	h.lastScrub = &resp
	h.adminMu.Unlock()
	return resp, false, nil
}

// shardIndex parses the {shard} path value against the backend's shard
// count, writing the HTTP error itself on failure.
func (h *Handler) shardIndex(w http.ResponseWriter, r *http.Request) (int, bool) {
	v := r.PathValue("shard")
	i, err := strconv.Atoi(v)
	if err != nil || i < 0 || i >= h.curBackend().NumShards() {
		httpError(w, http.StatusBadRequest, "invalid shard %q (backend has %d)", v, h.curBackend().NumShards())
		return 0, false
	}
	return i, true
}

// failShard is the POST /v1/shards/{shard}/fail chaos endpoint: it kills
// the shard (all future reads fail) and returns the resulting health
// snapshot. Meant for resilience drills, not production.
func (h *Handler) failShard(w http.ResponseWriter, r *http.Request) {
	if h.shardAdmin == nil {
		httpError(w, http.StatusNotImplemented,
			"shard admin not configured: server started without a shard admin")
		return
	}
	i, ok := h.shardIndex(w, r)
	if !ok {
		return
	}
	if err := h.shardAdmin.FailShard(i); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "fail shard: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"shard":  i,
		"shards": shardHealthEntries(h.shardAdmin.ShardHealth()),
	})
}

// RebuildResponse is the POST /v1/shards/{shard}/rebuild response body
// (and the "last" object of the stats rebuild section).
type RebuildResponse struct {
	Shard            int   `json:"shard"`
	LocalPages       int   `json:"local_pages"`
	FromSource       int   `json:"from_source"`
	FromReplicas     int   `json:"from_replicas"`
	FromStore        int   `json:"from_store"`
	SourceReadFaults int   `json:"source_read_faults"`
	MTTRNS           int64 `json:"mttr_ns"`
}

func rebuildResponse(rep serving.RebuildReport) RebuildResponse {
	return RebuildResponse{
		Shard:            rep.Shard,
		LocalPages:       rep.LocalPages,
		FromSource:       rep.FromSource,
		FromReplicas:     rep.FromReplicas,
		FromStore:        rep.FromStore,
		SourceReadFaults: rep.SourceReadFaults,
		MTTRNS:           rep.DurationNS(),
	}
}

// rebuildShard is the POST /v1/shards/{shard}/rebuild admin endpoint:
// one synchronous rebuild onto the hot spare. Query parameter
// pages_per_sec bounds the rebuild rate. 409 while another rebuild runs.
// As with scrub, parsing precedes the rebuild mutex and the response
// follows its release (lockhold).
func (h *Handler) rebuildShard(w http.ResponseWriter, r *http.Request) {
	if h.shardAdmin == nil {
		httpError(w, http.StatusNotImplemented,
			"shard admin not configured: server started without a shard admin")
		return
	}
	i, ok := h.shardIndex(w, r)
	if !ok {
		return
	}
	cfg := serving.RebuildConfig{
		Progress: func(copied, total int, _ int64) {
			h.rebuildCopied.Store(int64(copied))
			h.rebuildTotal.Store(int64(total))
		},
	}
	if v := r.URL.Query().Get("pages_per_sec"); v != "" {
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil || rate <= 0 {
			httpError(w, http.StatusBadRequest, "invalid pages_per_sec %q", v)
			return
		}
		cfg.PagesPerSec = rate
	}
	resp, busy, err := h.runRebuild(r.Context(), i, cfg)
	if busy {
		httpError(w, http.StatusConflict, "rebuild already in progress")
		return
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "rebuild: %v", err)
		return
	}
	writeJSON(w, resp)
}

// runRebuild performs one rebuild under rebuildMu, reporting busy when
// another rebuild holds it, and folds the result into the rebuild
// counters.
func (h *Handler) runRebuild(ctx context.Context, shard int, cfg serving.RebuildConfig) (resp RebuildResponse, busy bool, err error) {
	if !h.rebuildMu.TryLock() {
		return RebuildResponse{}, true, nil
	}
	defer h.rebuildMu.Unlock()
	h.rebuildRunning.Store(true)
	defer h.rebuildRunning.Store(false)
	rep, err := h.shardAdmin.RebuildShard(ctx, shard, cfg)
	if err != nil {
		h.rebuildErrors.Add(1)
		return RebuildResponse{}, false, err
	}
	h.rebuilds.Add(1)
	h.lastMTTRNS.Store(rep.DurationNS())
	resp = rebuildResponse(rep)
	h.adminMu.Lock()
	h.lastRebuild = &resp
	h.adminMu.Unlock()
	return resp, false, nil
}
