package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

// testAdmin implements ShardAdmin and Scrubber over a sharded serving
// stack, the way maxembed.DB does in production: rebuilds swap a fresh
// engine over the repaired array into the shared handle.
type testAdmin struct {
	handle *serving.Swappable
	lay    *layout.Layout
	sh     *store.Sharded
}

func (a *testAdmin) cur() *ssd.Array {
	return a.handle.Engine().Backend().(*ssd.Array)
}

func (a *testAdmin) ShardHealth() []ssd.ShardHealthInfo { return a.cur().ShardHealths() }

func (a *testAdmin) FailShard(i int) error {
	arr := a.cur()
	arr.SetShardFaultModel(i, ssd.AlwaysFail{})
	arr.FailShard(i)
	return nil
}

func (a *testAdmin) RebuildShard(ctx context.Context, shard int, cfg serving.RebuildConfig) (serving.RebuildReport, error) {
	nb, rep, err := serving.RebuildShard(ctx, a.handle.Engine(), shard, cfg)
	if err != nil {
		return rep, err
	}
	eng, err := serving.New(serving.Config{
		Layout: a.lay, Backend: nb, Store: a.sh, IndexLimit: 10, Pipeline: true,
	})
	if err != nil {
		return rep, err
	}
	if _, err := a.handle.Swap(eng); err != nil {
		return rep, err
	}
	return rep, nil
}

func (a *testAdmin) Scrub(ctx context.Context, cfg serving.ScrubConfig) (serving.ScrubReport, error) {
	return serving.Scrub(ctx, a.handle.Engine(), cfg)
}

// newAdminServer builds a 2-shard stack with a hot spare and the admin
// endpoints enabled.
func newAdminServer(t *testing.T) (*httptest.Server, *testAdmin, *workload.Trace) {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 800, Queries: 1500, MeanQueryLen: 8,
		Communities: 60, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 3,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, testDim), ReplicationRatio: 0.2,
		Seed: 1, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(testDim, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ssd.NewArray(ssd.P5800X, 2)
	if err != nil {
		t.Fatal(err)
	}
	spare, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.AttachSpare(spare); err != nil {
		t.Fatal(err)
	}
	eng, err := serving.New(serving.Config{
		Layout: lay, Backend: arr, Store: sh, IndexLimit: 10, Pipeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	handle := serving.NewSwappable(eng)
	admin := &testAdmin{handle: handle, lay: lay, sh: sh}
	h := NewDynamic(handle, arr, WithShardAdmin(admin), WithScrub(admin))
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return srv, admin, tr
}

// healthzBody is the JSON shape /healthz returns on shard-aware backends.
type healthzBody struct {
	Status     string             `json:"status"`
	DeadShards int                `json:"dead_shards"`
	Shards     []ShardHealthEntry `json:"shards"`
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	resp.Body.Close()
	return resp
}

// TestShardFailAndRebuildEndpoints drives the full drill over HTTP: kill
// a shard, observe the node stay ready and keep serving, rebuild onto the
// spare, and observe redundancy restored end to end.
func TestShardFailAndRebuildEndpoints(t *testing.T) {
	srv, admin, tr := newAdminServer(t)

	for i := 0; i < 40; i++ {
		if resp, _ := postLookup(t, srv.URL, tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm lookup %d status = %d", i, resp.StatusCode)
		}
	}

	// Chaos: kill shard 0 over the API.
	var fr struct {
		Shard  int                `json:"shard"`
		Shards []ShardHealthEntry `json:"shards"`
	}
	if resp := postJSON(t, srv.URL+"/v1/shards/0/fail", &fr); resp.StatusCode != http.StatusOK {
		t.Fatalf("fail endpoint status = %d", resp.StatusCode)
	}
	if len(fr.Shards) != 2 || fr.Shards[0].State != "failed" {
		t.Fatalf("fail response shards = %+v", fr.Shards)
	}

	// One dead shard of two is within the default tolerance: the node
	// stays ready, reporting the dead shard in the healthz body.
	var hz healthzBody
	r := getJSON(t, srv.URL+"/healthz", &hz)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status with 1 dead shard = %d, want 200", r.StatusCode)
	}
	if hz.Status != "ok" || hz.DeadShards != 1 {
		t.Fatalf("healthz body = %+v", hz)
	}

	// Lookups keep succeeding: replica reroute plus host-store fallback
	// mean no key is lost with a whole shard dark.
	for i := 40; i < 80; i++ {
		resp, lr := postLookup(t, srv.URL, tr.Queries[i])
		if resp.StatusCode != http.StatusOK || lr.Degraded {
			t.Fatalf("lookup %d with dead shard: status %d degraded %v", i, resp.StatusCode, lr.Degraded)
		}
	}

	var sr StatsResponse
	getJSON(t, srv.URL+"/v1/stats", &sr)
	if sr.Health.DeadShards != 1 || !sr.Health.Ready {
		t.Fatalf("stats health = %+v", sr.Health)
	}
	if sr.Shards[0].State != "failed" || sr.Shards[1].State != "healthy" {
		t.Fatalf("stats shard states = %q/%q", sr.Shards[0].State, sr.Shards[1].State)
	}
	if !sr.Rebuild.Enabled || !sr.Scrub.Enabled {
		t.Fatal("stats does not report admin endpoints enabled")
	}
	if sr.Recovery.ShardReroutes+sr.Recovery.StoreFallbacks == 0 {
		t.Fatal("no reroutes or store fallbacks counted with a dead shard")
	}

	// Rebuild onto the spare over the API.
	var rr RebuildResponse
	if resp := postJSON(t, srv.URL+"/v1/shards/0/rebuild?pages_per_sec=100000", &rr); resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild endpoint status = %d", resp.StatusCode)
	}
	if rr.LocalPages == 0 || rr.MTTRNS <= 0 {
		t.Fatalf("rebuild response = %+v", rr)
	}
	if st := admin.cur().ShardState(0); st != ssd.ShardHealthy {
		t.Fatalf("shard 0 state after rebuild = %v", st)
	}

	// Redundancy restored: healthz clean, stats reflect the rebuild, and
	// lookups touch the repaired shard without faulting.
	getJSON(t, srv.URL+"/healthz", &hz)
	if hz.DeadShards != 0 {
		t.Fatalf("healthz dead shards after rebuild = %d", hz.DeadShards)
	}
	getJSON(t, srv.URL+"/v1/stats", &sr)
	if sr.Rebuild.Rebuilds != 1 || sr.Rebuild.LastMTTRNS != rr.MTTRNS || sr.Rebuild.Last == nil {
		t.Fatalf("stats rebuild section = %+v", sr.Rebuild)
	}
	for i := 80; i < 120; i++ {
		resp, lr := postLookup(t, srv.URL, tr.Queries[i])
		if resp.StatusCode != http.StatusOK || lr.Degraded {
			t.Fatalf("post-rebuild lookup %d: status %d degraded %v", i, resp.StatusCode, lr.Degraded)
		}
	}

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"maxembed_shard_state{shard=\"0\"} 0",
		"maxembed_rebuild_total 1",
		"maxembed_dead_shards 0",
		"maxembed_shard_reroutes_total",
		"maxembed_store_fallbacks_total",
		"maxembed_rebuild_last_mttr_ns",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The spare is consumed: a second rebuild must refuse.
	if resp := postJSON(t, srv.URL+"/v1/shards/1/rebuild", nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("spare-less rebuild status = %d, want 422", resp.StatusCode)
	}

	// Killing both shards exceeds the tolerance: the node goes unhealthy.
	postJSON(t, srv.URL+"/v1/shards/0/fail", nil)
	postJSON(t, srv.URL+"/v1/shards/1/fail", nil)
	r = getJSON(t, srv.URL+"/healthz", &hz)
	if r.StatusCode != http.StatusServiceUnavailable || hz.DeadShards != 2 {
		t.Fatalf("healthz with all shards dead: status %d body %+v", r.StatusCode, hz)
	}
}

// TestScrubEndpoint injects at-rest corruption and drives a sweep over
// the API, checking detection counts and the stats/metrics surface.
func TestScrubEndpoint(t *testing.T) {
	srv, admin, _ := newAdminServer(t)

	// Rot one slot in the store image.
	if err := admin.sh.CorruptSlot(0, 0); err != nil {
		t.Fatal(err)
	}

	var det ScrubResponse
	if resp := postJSON(t, srv.URL+"/v1/scrub?detect_only=true&pages_per_sec=1000000", &det); resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub status = %d", resp.StatusCode)
	}
	if det.LatentSlots != 1 || det.RepairedSlots != 0 {
		t.Fatalf("detect-only scrub latent/repaired = %d/%d, want 1/0", det.LatentSlots, det.RepairedSlots)
	}
	if det.PagesScanned == 0 || det.SlotsVerified == 0 {
		t.Fatalf("scrub scanned nothing: %+v", det)
	}

	// A repairing sweep either fixes the slot (replica exists) or reports
	// it unrepairable (no replica); afterwards a clean sweep agrees.
	var rep ScrubResponse
	postJSON(t, srv.URL+"/v1/scrub", &rep)
	if rep.LatentSlots != 1 || rep.RepairedSlots+rep.UnrepairableSlots != 1 {
		t.Fatalf("repair sweep = %+v", rep)
	}
	if rep.RepairedSlots == 1 {
		var clean ScrubResponse
		postJSON(t, srv.URL+"/v1/scrub", &clean)
		if clean.LatentSlots != 0 {
			t.Fatalf("post-repair sweep still finds %d latent slots", clean.LatentSlots)
		}
	}

	var sr StatsResponse
	getJSON(t, srv.URL+"/v1/stats", &sr)
	if sr.Scrub.Sweeps < 2 || sr.Scrub.Last == nil || sr.Scrub.LatentSlots < 2 {
		t.Fatalf("stats scrub section = %+v", sr.Scrub)
	}
	if sr.Scrub.ProgressPages != int64(sr.Scrub.Last.PagesScanned)+int64(sr.Scrub.Last.PagesSkipped) &&
		sr.Scrub.ProgressPages == 0 {
		t.Fatalf("scrub progress gauge = %d", sr.Scrub.ProgressPages)
	}

	if resp := postJSON(t, srv.URL+"/v1/scrub?pages_per_sec=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus rate status = %d, want 400", resp.StatusCode)
	}
}

// TestAdminEndpointsUnconfigured: without a shard admin or scrubber the
// endpoints answer 501, and bad shard indexes answer 400.
func TestAdminEndpointsUnconfigured(t *testing.T) {
	srv, _, _ := newTestServer(t)
	if resp := postJSON(t, srv.URL+"/v1/scrub", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("scrub status = %d, want 501", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/shards/0/fail", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("fail status = %d, want 501", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/shards/0/rebuild", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("rebuild status = %d, want 501", resp.StatusCode)
	}
}

// TestShardIndexValidation: the admin endpoints reject junk shard paths.
func TestShardIndexValidation(t *testing.T) {
	srv, _, _ := newAdminServer(t)
	for _, path := range []string{"/v1/shards/x/fail", "/v1/shards/-1/fail", "/v1/shards/9/fail", "/v1/shards/9/rebuild"} {
		if resp := postJSON(t, srv.URL+path, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400", path, resp.StatusCode)
		}
	}
}
