package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"maxembed/internal/serving"
)

// BenchmarkHandlerLookup measures the full isolated handler path — decode,
// serve, response build (pooled arena), JSON encode — the per-request cost
// floor of the HTTP layer. Run with -benchmem to watch AllocsPerOp: the
// pooled response arena keeps steady-state allocations independent of key
// count (one arena reuse + map + encoder scratch, not one slice per key).
func BenchmarkHandlerLookup(b *testing.B) {
	s := newTestStack(b, 0.2, nil)
	h := New(s.eng, s.dev, WithoutCoalescing())
	body, err := json.Marshal(LookupRequest{Keys: s.tr.Queries[0]})
	if err != nil {
		b.Fatal(err)
	}
	payload := string(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/lookup", strings.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// benchServerThroughput drives concurrent clients against the handler and
// reports device reads per request alongside the usual ns/op — the pair of
// BenchmarkServerLookup{Isolated,Coalesced} runs compares how much SSD work
// each serving mode spends at the same offered load.
func benchServerThroughput(b *testing.B, opts ...Option) {
	s := newTestStack(b, 0.4, func(c *serving.Config) { c.CacheEntries = 0 })
	h := New(s.eng, s.dev, opts...)
	b.Cleanup(h.Close)
	payloads := make([]string, 64)
	for i := range payloads {
		body, err := json.Marshal(LookupRequest{Keys: s.tr.Queries[i%16]})
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = string(body)
	}
	var next atomic.Int64
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			req := httptest.NewRequest(http.MethodPost, "/v1/lookup",
				strings.NewReader(payloads[int(i)%len(payloads)]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
	b.StopTimer()
	if n := next.Load(); n > 0 {
		b.ReportMetric(float64(s.dev.Stats().Reads)/float64(n), "reads/req")
	}
}

func BenchmarkServerLookupIsolated(b *testing.B) {
	benchServerThroughput(b, WithoutCoalescing())
}

func BenchmarkServerLookupCoalesced(b *testing.B) {
	benchServerThroughput(b, WithCoalescing(8, 100*time.Microsecond))
}

// TestHandlerLookupSteadyStateAllocs guards the hot-path allocation budget
// of the isolated lookup handler: after warm-up, repeated identical lookups
// must stay within a fixed allocation budget regardless of how many keys the
// response carries (the response vectors live in one pooled arena). The
// bound is deliberately generous — JSON encoding and the response map
// dominate — but catches a regression to per-key vector allocation.
func TestHandlerLookupSteadyStateAllocs(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	h := New(s.eng, s.dev, WithoutCoalescing())
	body, err := json.Marshal(LookupRequest{Keys: s.tr.Queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	payload := string(body)
	post := func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/lookup", strings.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	for i := 0; i < 50; i++ {
		post()
	}
	keys := len(s.tr.Queries[0])
	allocs := testing.AllocsPerRun(200, post)
	t.Logf("handler allocs/op: %.1f for %d keys", allocs, keys)
	// Budget: fixed request/encoder overhead plus a small constant per key
	// (map entry + JSON number formatting) — NOT a vector slice per key.
	budget := 60 + 6*float64(keys)
	if allocs > budget {
		t.Errorf("handler allocates %.1f/op for %d keys, budget %.0f", allocs, keys, budget)
	}
}
