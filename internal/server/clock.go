package server

import "time"

// The handler reads time only through its injected clock. The serving
// engine below runs on virtual nanoseconds; up here the measured
// quantities — refresh durations, coalescer gather waits — default to the
// wall clock but accept a test- or simulation-supplied source, so the
// HTTP layer's observability can be driven deterministically too (and the
// clockcheck analyzer enforces that no stray time.Now call bypasses it).
// Timers and tickers (gather windows, the refresh loop) still express
// real waiting and stay on the runtime clock.

// WithClock sets the handler's time source for measured durations
// (refresh duration, coalescer gather waits). Defaults to the wall
// clock; nil is ignored.
func WithClock(now func() time.Time) Option {
	return func(h *Handler) {
		if now != nil {
			h.nowFn = now
		}
	}
}

// now reads the handler's injected clock.
func (h *Handler) now() time.Time { return h.nowFn() }
