package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"maxembed/internal/serving"
)

// TestWithClockDrivesRefreshDuration injects a stepping fake clock and
// checks the refresh duration is measured on it exactly: the handler's
// observability runs deterministically when its clock does.
func TestWithClockDrivesRefreshDuration(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	handle := serving.NewSwappable(s.eng)
	src := newFakeSource(t, s, handle, 1)

	const step = 250 * time.Millisecond
	base := time.Unix(1_700_000_000, 0)
	var ticks atomic.Int64
	fake := func() time.Time { return base.Add(time.Duration(ticks.Add(1)) * step) }

	h := NewDynamic(handle, s.dev, WithRefresh(src), WithoutCoalescing(), WithClock(fake))
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); h.Close() })

	resp, err := http.Post(srv.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status = %d", resp.StatusCode)
	}
	var rr RefreshResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	// runRefresh reads the clock exactly twice (start, end), so the
	// measured duration is exactly one step of the fake clock.
	if rr.DurationNS != step.Nanoseconds() {
		t.Errorf("DurationNS = %d, want exactly %d (one fake-clock step)", rr.DurationNS, step.Nanoseconds())
	}
	if got := ticks.Load(); got != 2 {
		t.Errorf("clock read %d times during refresh, want 2", got)
	}
}

// TestWithClockNilKeepsDefault: a nil source is ignored, the handler
// keeps the wall clock rather than panicking on first use.
func TestWithClockNilKeepsDefault(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	h := New(s.eng, s.dev, WithClock(nil))
	t.Cleanup(func() { h.Close() })
	if h.now().IsZero() {
		t.Error("default clock returned the zero time")
	}
}
