package server

import (
	"fmt"
	"net/http"

	"maxembed/internal/placement"
	"maxembed/internal/serving"
)

// SpreadReporter exposes the last co-activation placement pass — in
// practice maxembed.DB, whose LastDespread returns nil until a despread
// pass has run (single-device deployments, or co-activation placement
// disabled on a homogeneous array).
type SpreadReporter interface {
	LastDespread() *placement.SpreadReport
}

// WithSpreadReport wires the co-activation placement report into /v1/stats
// and /metrics. The live per-query max-shard-depth gauge is exported on
// multi-shard backends regardless; this option adds the offline pass's
// before/after spread and replica-diversity numbers next to it.
func WithSpreadReport(sr SpreadReporter) Option {
	return func(h *Handler) { h.spreadSrc = sr }
}

// CoactStatsEntry is the co-activation slice of /v1/stats, present on
// multi-shard backends: how deep the busiest shard's read queue goes for
// an average query right now, and — when a placement pass ran — what that
// pass claimed to have done, so drift between the two is observable.
type CoactStatsEntry struct {
	// MeanMaxShardDepth is the mean, over served queries since the last
	// engine swap or reset, of the deepest per-shard count of each
	// query's planned reads (1.0 = perfectly spread plans).
	MeanMaxShardDepth float64 `json:"mean_max_shard_depth"`
	// Queries is how many queries the depth histogram has absorbed.
	Queries int64 `json:"queries"`
	// Placement echoes the last despread pass, omitted when none ran.
	Placement *CoactPlacementEntry `json:"placement,omitempty"`
}

// CoactPlacementEntry is the last despread pass's report on /v1/stats.
type CoactPlacementEntry struct {
	Shards int `json:"shards"`
	Tiers  int `json:"tiers"`
	// MovedPages is how many pages changed shard; EdgesScored how many
	// co-activation edges drove the objective (0 = diversity-only mode).
	MovedPages  int `json:"moved_pages"`
	EdgesScored int `json:"edges_scored"`
	// Mean/max per-query max-shard depth over the scored edges, either
	// side of the permutation.
	MeanDepthBefore float64 `json:"mean_depth_before"`
	MeanDepthAfter  float64 `json:"mean_depth_after"`
	MaxDepthBefore  int     `json:"max_depth_before"`
	MaxDepthAfter   int     `json:"max_depth_after"`
	// Replica shard-diversity either side of the pass: pairwise home/copy
	// shard collisions, and keys left with no shard-diverse replica.
	ReplicaCollisionsBefore int `json:"replica_collisions_before"`
	ReplicaCollisionsAfter  int `json:"replica_collisions_after"`
	UncoveredKeysBefore     int `json:"uncovered_keys_before"`
	UncoveredKeysAfter      int `json:"uncovered_keys_after"`
}

// coactStats builds the co-activation stats slice: nil on one-shard
// backends, where per-query depth degenerates to the plan size and there
// is nothing to spread.
func (h *Handler) coactStats(eng *serving.Engine) *CoactStatsEntry {
	if eng.NumShards() < 2 {
		return nil
	}
	out := &CoactStatsEntry{
		MeanMaxShardDepth: eng.SpreadDepth.Mean(),
		Queries:           eng.SpreadDepth.Count(),
	}
	if h.spreadSrc != nil {
		if rep := h.spreadSrc.LastDespread(); rep != nil {
			out.Placement = &CoactPlacementEntry{
				Shards:                  rep.Shards,
				Tiers:                   rep.Tiers,
				MovedPages:              rep.Moved,
				EdgesScored:             rep.Edges,
				MeanDepthBefore:         rep.MeanDepthBefore,
				MeanDepthAfter:          rep.MeanDepthAfter,
				MaxDepthBefore:          rep.MaxDepthBefore,
				MaxDepthAfter:           rep.MaxDepthAfter,
				ReplicaCollisionsBefore: rep.ReplicaCollisionsBefore,
				ReplicaCollisionsAfter:  rep.ReplicaCollisionsAfter,
				UncoveredKeysBefore:     rep.UncoveredKeysBefore,
				UncoveredKeysAfter:      rep.UncoveredKeysAfter,
			}
		}
	}
	return out
}

// coactMetrics renders the co-activation gauges in Prometheus exposition
// format; a no-op on one-shard backends.
func (h *Handler) coactMetrics(w http.ResponseWriter, eng *serving.Engine) {
	cs := h.coactStats(eng)
	if cs == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE maxembed_coact_mean_max_shard_depth gauge\nmaxembed_coact_mean_max_shard_depth %g\n", cs.MeanMaxShardDepth)
	fmt.Fprintf(w, "# TYPE maxembed_coact_depth_queries gauge\nmaxembed_coact_depth_queries %d\n", cs.Queries)
	p := cs.Placement
	if p == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE maxembed_coact_moved_pages gauge\nmaxembed_coact_moved_pages %d\n", p.MovedPages)
	fmt.Fprintf(w, "# TYPE maxembed_coact_edges_scored gauge\nmaxembed_coact_edges_scored %d\n", p.EdgesScored)
	fmt.Fprintf(w, "# TYPE maxembed_coact_mean_depth_before gauge\nmaxembed_coact_mean_depth_before %g\n", p.MeanDepthBefore)
	fmt.Fprintf(w, "# TYPE maxembed_coact_mean_depth_after gauge\nmaxembed_coact_mean_depth_after %g\n", p.MeanDepthAfter)
	fmt.Fprintf(w, "# TYPE maxembed_coact_replica_collisions gauge\nmaxembed_coact_replica_collisions %d\n", p.ReplicaCollisionsAfter)
	fmt.Fprintf(w, "# TYPE maxembed_coact_uncovered_keys gauge\nmaxembed_coact_uncovered_keys %d\n", p.UncoveredKeysAfter)
}
