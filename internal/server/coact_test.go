package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

// fixedSpread is a SpreadReporter pinned to one report, standing in for
// maxembed.DB in handler tests.
type fixedSpread struct{ rep *placement.SpreadReport }

func (f fixedSpread) LastDespread() *placement.SpreadReport { return f.rep }

// newCoactServer mirrors newTieredServer but runs the co-activation despread
// pass after Retier and wires its report into the handler, exercising the
// full Build → Retier → Despread composition behind the HTTP surface.
func newCoactServer(t *testing.T) (*httptest.Server, *placement.SpreadReport, *workload.Trace) {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 800, Queries: 1500, MeanQueryLen: 8,
		Communities: 60, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 3,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, testDim), ReplicationRatio: 0.2,
		Seed: 1, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ssd.NewTieredArray([]ssd.TierSpec{
		{Profile: ssd.P5800X, Devices: 1},
		{Profile: ssd.P4510, Devices: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err = placement.Retier(lay,
		placement.PageHeat(lay, placement.KeyFreq(lay.NumKeys, tr.Queries)),
		arr.TierShardMap())
	if err != nil {
		t.Fatal(err)
	}
	lay, rep, err := placement.Despread(lay, g, 4, arr.TierShardMap())
	if err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(testDim, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serving.New(serving.Config{
		Layout:       lay,
		Backend:      arr,
		Store:        sh,
		CacheEntries: 64,
		IndexLimit:   10,
		Pipeline:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New(eng, arr, WithSpreadReport(fixedSpread{rep: rep}))
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return srv, rep, tr
}

func TestStatsEndpointCoact(t *testing.T) {
	srv, rep, tr := newCoactServer(t)
	const lookups = 80
	for i := 0; i < lookups; i++ {
		if resp, _ := postLookup(t, srv.URL, tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Coact == nil {
		t.Fatal("multi-shard backend reported no coact block")
	}
	if sr.Coact.Queries != lookups {
		t.Errorf("coact depth queries = %d, want %d", sr.Coact.Queries, lookups)
	}
	if sr.Coact.MeanMaxShardDepth < 1 {
		t.Errorf("mean max-shard depth = %v, want >= 1", sr.Coact.MeanMaxShardDepth)
	}
	pl := sr.Coact.Placement
	if pl == nil {
		t.Fatal("despread pass ran but no placement block surfaced")
	}
	if pl.Shards != rep.Shards || pl.Tiers != rep.Tiers {
		t.Errorf("placement geometry %d shards/%d tiers, want %d/%d",
			pl.Shards, pl.Tiers, rep.Shards, rep.Tiers)
	}
	if pl.EdgesScored == 0 {
		t.Error("despread with a co-activation graph scored no edges")
	}
	if pl.MeanDepthAfter > pl.MeanDepthBefore {
		t.Errorf("despread worsened mean depth: %v -> %v",
			pl.MeanDepthBefore, pl.MeanDepthAfter)
	}
	if pl.UncoveredKeysAfter > pl.UncoveredKeysBefore {
		t.Errorf("despread worsened replica coverage: %d -> %d uncovered",
			pl.UncoveredKeysBefore, pl.UncoveredKeysAfter)
	}
}

func TestMetricsEndpointCoact(t *testing.T) {
	srv, _, tr := newCoactServer(t)
	for i := 0; i < 20; i++ {
		if resp, _ := postLookup(t, srv.URL, tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE maxembed_coact_mean_max_shard_depth gauge",
		"# TYPE maxembed_coact_depth_queries gauge",
		"# TYPE maxembed_coact_moved_pages gauge",
		"# TYPE maxembed_coact_edges_scored gauge",
		"# TYPE maxembed_coact_mean_depth_before gauge",
		"# TYPE maxembed_coact_mean_depth_after gauge",
		"# TYPE maxembed_coact_replica_collisions gauge",
		"# TYPE maxembed_coact_uncovered_keys gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCoactOmittedOnOneShard: one-shard backends have nothing to spread, so
// neither /v1/stats nor /metrics mention co-activation — dashboards key
// panels off family presence, mirroring the tier metrics contract.
func TestCoactOmittedOnOneShard(t *testing.T) {
	srv, _, tr := newTestServer(t)
	if resp, _ := postLookup(t, srv.URL, tr.Queries[0]); resp.StatusCode != http.StatusOK {
		t.Fatal("lookup failed")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), "maxembed_coact_") {
		t.Error("one-shard backend emitted coact metrics")
	}
	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Coact != nil {
		t.Errorf("one-shard backend reported coact block: %+v", sr.Coact)
	}
}
