package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"maxembed/internal/metrics"
	"maxembed/internal/serving"
)

// Cross-request micro-batching: concurrent /v1/lookup requests are gathered
// into small batches and served as one coalesced serving.LookupBatch pass,
// so page reads are shared across queries (§8.2's cross-query duplication
// effect) — the dynamic-batching shape inference servers use. A request
// that arrives alone bypasses batching with zero added wait, so light
// traffic keeps its isolated-serving p50; under load the gather window
// fills and each SSD read serves keys of several queries at once.

// Coalescing defaults; override with WithCoalescing / WithCoalesceQueue.
const (
	defaultMaxBatch      = 8
	defaultMaxWait       = 250 * time.Microsecond
	defaultCoalesceQueue = 1024
)

// lookupJob is one request handed to the coalescer. done is buffered so the
// coalescer never blocks on a slow (or departed) client.
type lookupJob struct {
	keys []serving.Key
	done chan lookupOutcome
}

// lookupOutcome is a finished lookup: a leased response snapshot (keys
// copied, zero-copy buffer views retained, value vectors in the lease's
// arena) or an engine error. The handler encodes from the lease and
// releases it.
type lookupOutcome struct {
	lease  *respLease
	status int
	err    error
}

// coalescer gathers concurrent lookups into micro-batches served on one
// dedicated worker goroutine. Its worker is bound to one engine
// generation; an engine swap makes it re-bind before the next batch.
type coalescer struct {
	h        *Handler
	queue    chan lookupJob
	quit     chan struct{}
	exited   chan struct{}
	closing  atomic.Bool
	inflight atomic.Int64 // requests submitted and not yet answered
	maxBatch int
	maxWait  time.Duration

	w   *serving.Worker // owned by the run goroutine
	gen uint64          // engine generation w was created from

	// Observability: batch-size histogram over every dispatch (bypasses
	// count as size 1), wall-clock gather wait per dispatch, and counters.
	batchSizes *metrics.IntHist
	waits      metrics.Recorder
	batches    metrics.Counter // dispatches, bypasses included
	bypasses   metrics.Counter // single-request zero-wait dispatches
	coalesced  metrics.Counter // requests served in batches of ≥ 2
	shed       metrics.Counter // requests rejected because the queue was full
	rebinds    metrics.Counter // worker re-bindings after engine swaps
}

func newCoalescer(h *Handler, maxBatch int, maxWait time.Duration, queueLen int) *coalescer {
	if queueLen < 1 {
		queueLen = defaultCoalesceQueue
	}
	c := &coalescer{
		h:          h,
		queue:      make(chan lookupJob, queueLen),
		quit:       make(chan struct{}),
		exited:     make(chan struct{}),
		maxBatch:   maxBatch,
		maxWait:    maxWait,
		batchSizes: metrics.NewIntHist(maxBatch),
	}
	return c
}

// submit enqueues a job, reporting false when the queue is full
// (backpressure: the handler sheds the request instead of queueing
// unboundedly). Jobs are never enqueued once shutdown has begun.
func (c *coalescer) submit(job lookupJob) bool {
	if c.closing.Load() {
		return false
	}
	select {
	case c.queue <- job:
		return true
	default:
		c.shed.Inc()
		return false
	}
}

// run is the coalescer goroutine: it owns one serving worker and loops
// gather → serve until closed, then drains whatever is still queued.
func (c *coalescer) run() {
	defer close(c.exited)
	eng, gen := c.h.handle.Load()
	c.w, c.gen = eng.NewWorker(), gen
	batch := make([]lookupJob, 0, c.maxBatch)
	for {
		select {
		case job := <-c.queue:
			batch = c.gather(batch[:0], job)
			c.serve(batch)
		case <-c.quit:
			for {
				select {
				case job := <-c.queue:
					batch = c.gather(batch[:0], job)
					c.serve(batch)
				default:
					return
				}
			}
		}
	}
}

// rebind re-creates the worker when an engine swap has retired the one it
// was using, carrying the virtual clock forward so the new engine's
// latency accounting stays on the same timeline.
func (c *coalescer) rebind() {
	eng, gen := c.h.handle.Load()
	if gen == c.gen {
		return
	}
	now := c.w.Now()
	c.w = eng.NewWorker()
	c.w.SetNow(now)
	c.gen = gen
	c.rebinds.Inc()
}

// gather forms one micro-batch starting from first: whatever is already
// queued is taken immediately (up to maxBatch); if that leaves the batch
// at a single request with no other request in flight it is dispatched
// with zero added wait (the light-traffic bypass), otherwise the gather
// window stays open up to maxWait for the batch to fill. The in-flight
// gate matters because service is fast relative to arrival: concurrent
// requests rarely queue up behind each other, so "queue momentarily
// empty" must not be read as "traffic is light".
func (c *coalescer) gather(batch []lookupJob, first lookupJob) []lookupJob {
	start := c.h.now()
	batch = append(batch, first)
	for len(batch) < c.maxBatch {
		select {
		case job := <-c.queue:
			batch = append(batch, job)
			continue
		default:
		}
		break
	}
	if len(batch) == 1 && c.inflight.Load() <= 1 {
		c.bypasses.Inc()
		c.waits.Record(0)
		return batch
	}
	if len(batch) < c.maxBatch && c.maxWait > 0 {
		timer := time.NewTimer(c.maxWait)
		for len(batch) < c.maxBatch {
			select {
			case job := <-c.queue:
				batch = append(batch, job)
			case <-timer.C:
				c.waits.Record(c.h.now().Sub(start).Nanoseconds())
				return batch
			}
		}
		// Stop-and-drain: the timer may have fired between the last
		// receive and Stop, leaving a value in timer.C that would
		// otherwise sit in the channel for the timer's lifetime.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	c.waits.Record(c.h.now().Sub(start).Nanoseconds())
	return batch
}

// serve runs one coalesced pass over the batch and scatters responses back
// to the waiting handlers. Leases are taken here — buffer views retained,
// value vectors copied — because the worker's scratch is reused by the
// next batch the moment this returns; the waiting handler goroutines then
// encode their responses concurrently from the leases.
func (c *coalescer) serve(batch []lookupJob) {
	h := c.h
	c.rebind()
	c.batches.Inc()
	c.batchSizes.Add(len(batch))
	if len(batch) >= 2 {
		c.coalesced.Add(int64(len(batch)))
	}

	queries := make([][]serving.Key, len(batch))
	for i, job := range batch {
		queries[i] = job.keys
	}
	br, err := c.w.LookupBatch(queries)
	if err != nil {
		for _, job := range batch {
			job.done <- lookupOutcome{err: err}
		}
		return
	}
	st := br.Stats.Combined
	h.window.Observe(int64(st.ReadFaults), int64(st.PagesRead+st.Retries))
	for i, job := range batch {
		lease := newLease(br.PerQuery[i])
		status := http.StatusOK
		if lease.degraded {
			status = http.StatusPartialContent
		}
		job.done <- lookupOutcome{lease: lease, status: status}
	}
}

// close stops the coalescer and waits for it to drain and exit.
func (c *coalescer) close() {
	if c.closing.Swap(true) {
		<-c.exited
		return
	}
	close(c.quit)
	<-c.exited
}

// CoalescerStats is the /v1/stats projection of coalescer activity.
type CoalescerStats struct {
	Enabled       bool    `json:"enabled"`
	MaxBatch      int     `json:"max_batch"`
	MaxWaitNS     int64   `json:"max_wait_ns"`
	Batches       int64   `json:"batches"`
	Bypasses      int64   `json:"bypasses"`
	Coalesced     int64   `json:"coalesced_requests"`
	Shed          int64   `json:"shed"`
	Rebinds       int64   `json:"rebinds"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	WaitP50NS     int64   `json:"wait_p50_ns"`
	WaitP99NS     int64   `json:"wait_p99_ns"`
}

// stats snapshots the coalescer's counters.
func (c *coalescer) stats() CoalescerStats {
	ws := c.waits.Snapshot()
	return CoalescerStats{
		Enabled:       true,
		MaxBatch:      c.maxBatch,
		MaxWaitNS:     c.maxWait.Nanoseconds(),
		Batches:       c.batches.Load(),
		Bypasses:      c.bypasses.Load(),
		Coalesced:     c.coalesced.Load(),
		Shed:          c.shed.Load(),
		Rebinds:       c.rebinds.Load(),
		MeanBatchSize: c.batchSizes.Mean(),
		WaitP50NS:     ws.P50NS,
		WaitP99NS:     ws.P99NS,
	}
}
