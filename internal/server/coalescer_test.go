package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"maxembed/internal/serving"
)

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	r, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestCoalescerSingleRequestBypass(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	srv := s.serve(t, WithCoalescing(8, 50*time.Millisecond))
	// Sequential requests are always alone in flight: every one must be
	// dispatched immediately (no 50ms gather stall) as a bypass.
	start := time.Now()
	for i := 0; i < 5; i++ {
		resp, _ := postLookup(t, srv.URL, s.tr.Queries[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("5 sequential lookups took %v — bypass is waiting out the gather window", elapsed)
	}
	sr := getStats(t, srv.URL)
	c := sr.Coalescer
	if !c.Enabled {
		t.Fatal("coalescer not enabled")
	}
	if c.Bypasses != 5 || c.Batches != 5 {
		t.Errorf("bypasses = %d, batches = %d, want 5/5", c.Bypasses, c.Batches)
	}
	if c.Coalesced != 0 {
		t.Errorf("coalesced = %d for sequential traffic", c.Coalesced)
	}
	if c.MeanBatchSize != 1 {
		t.Errorf("mean batch size = %v, want 1", c.MeanBatchSize)
	}
	if c.WaitP99NS != 0 {
		t.Errorf("bypass wait p99 = %dns, want 0", c.WaitP99NS)
	}
}

func TestCoalescerFormsBatchesUnderConcurrency(t *testing.T) {
	// Deterministic batch formation: hold the in-flight count at n before
	// any job is submitted (exactly what n overlapping handlers do), then
	// release all submissions at once. The gather window must stay open and
	// collect the whole batch.
	s := newTestStack(t, 0.2, nil)
	h := New(s.eng, s.dev, WithCoalescing(8, 50*time.Millisecond))
	t.Cleanup(h.Close)
	const n = 8
	h.coal.inflight.Add(n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer h.coal.inflight.Add(-1)
			<-start
			job := lookupJob{keys: s.tr.Queries[i], done: make(chan lookupOutcome, 1)}
			if !h.coal.submit(job) {
				errs <- fmt.Errorf("request %d shed with an empty queue", i)
				return
			}
			out := <-job.done
			if out.err != nil {
				errs <- fmt.Errorf("request %d: %v", i, out.err)
				return
			}
			if out.status != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", i, out.status)
				return
			}
			if out.lease.stats.BatchSize < 2 {
				errs <- fmt.Errorf("request %d served with BatchSize %d, want ≥ 2", i, out.lease.stats.BatchSize)
				return
			}
			out.lease.release()
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := h.coal.stats()
	if c.Coalesced != n {
		t.Errorf("coalesced = %d, want all %d requests batched", c.Coalesced, n)
	}
	if c.Batches >= n {
		t.Errorf("batches = %d for %d overlapping requests — nothing coalesced", c.Batches, n)
	}
	if c.MeanBatchSize <= 1 {
		t.Errorf("mean batch size = %v under concurrency", c.MeanBatchSize)
	}
}

func TestCoalescerBackpressure(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	// Build the handler without starting a coalescer goroutine, then attach
	// one by hand whose queue is already full: submit must shed
	// deterministically (no draining goroutine races the test).
	h := New(s.eng, s.dev, WithoutCoalescing())
	h.coal = newCoalescer(h, 4, time.Millisecond, 1)
	h.coal.queue <- lookupJob{keys: []uint32{1}, done: make(chan lookupOutcome, 1)}

	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, _ := postLookup(t, srv.URL, s.tr.Queries[0])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full coalesce queue: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if h.coal.stats().Shed != 1 {
		t.Errorf("shed counter = %d, want 1", h.coal.stats().Shed)
	}
}

func TestCoalescerCloseFallsBackToIsolated(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	h := New(s.eng, s.dev, WithCoalescing(8, time.Millisecond))
	srv := httptest.NewServer(h)
	defer srv.Close()
	h.Close()
	// After Close the handler keeps serving, isolated.
	resp, lr := postLookup(t, srv.URL, s.tr.Queries[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-Close lookup: status %d", resp.StatusCode)
	}
	if len(lr.Embeddings) == 0 {
		t.Error("post-Close lookup returned no embeddings")
	}
	if lr.Stats.BatchSize != 1 {
		t.Errorf("post-Close BatchSize = %d, want 1 (isolated)", lr.Stats.BatchSize)
	}
	h.Close() // idempotent
}

func TestCoalescedMatchesIsolatedResults(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	srv := s.serve(t, WithCoalescing(8, 10*time.Millisecond))
	// Concurrent clients through the coalescer must see exactly the vectors
	// the synthesizer defines — identical to what isolated serving returns.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var want []float32
			for i := w; i < 80; i += 8 {
				resp, lr := postLookup(t, srv.URL, s.tr.Queries[i])
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %d: status %d", i, resp.StatusCode)
					return
				}
				for k, got := range lr.Embeddings {
					want = s.syn.Vector(k, want[:0])
					if len(got) != len(want) {
						errs <- fmt.Errorf("query %d key %d: dim %d, want %d", i, k, len(got), len(want))
						return
					}
					for j := range want {
						if got[j] != want[j] {
							errs <- fmt.Errorf("query %d key %d element %d: %v != %v", i, k, j, got[j], want[j])
							return
						}
					}
				}
				if lr.Stats.BatchSize < 1 {
					errs <- fmt.Errorf("query %d: BatchSize %d", i, lr.Stats.BatchSize)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCoalescedReadsFewerPagesThanIsolated(t *testing.T) {
	// The point of the whole exercise: at the same offered load, coalesced
	// serving reads fewer pages per key than isolated serving, because the
	// combined pass dedupes keys and shares page reads across requests.
	// Cacheless stacks so every saving is attributable to batching.
	const clients, rounds = 8, 16
	post := func(h *Handler, keys []uint32) int {
		body, err := json.Marshal(LookupRequest{Keys: keys})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/lookup", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	run := func(opts ...Option) (reads, coalesced int64) {
		s := newTestStack(t, 0.4, func(c *serving.Config) { c.CacheEntries = 0 })
		h := New(s.eng, s.dev, opts...)
		t.Cleanup(h.Close)
		for round := 0; round < rounds; round++ {
			// All clients fire the same query at the same instant — the
			// overlapping-arrival regime where batching shares reads. The
			// in-flight count is pinned to the round's concurrency for its
			// duration: single-CPU test runners serialize handler
			// goroutines so fast that the natural count rarely exceeds 1,
			// while a loaded multi-core server sees all of them at once.
			var wg sync.WaitGroup
			start := make(chan struct{})
			errs := make(chan error, clients)
			if h.coal != nil {
				h.coal.inflight.Add(clients)
			}
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					if code := post(h, s.tr.Queries[round]); code != http.StatusOK {
						errs <- fmt.Errorf("round %d: status %d", round, code)
					}
				}()
			}
			close(start)
			wg.Wait()
			if h.coal != nil {
				h.coal.inflight.Add(-clients)
			}
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		}
		var c int64
		if h.coal != nil {
			c = h.coal.stats().Coalesced
		}
		return s.dev.Stats().Reads, c
	}
	isolated, _ := run(WithoutCoalescing())
	coalesced, batched := run(WithCoalescing(clients, 20*time.Millisecond))
	if batched == 0 {
		t.Fatalf("%d simultaneous identical requests per round, none coalesced", clients)
	}
	if coalesced >= isolated {
		t.Fatalf("coalesced serving read %d pages, isolated %d — no sharing", coalesced, isolated)
	}
	t.Logf("device reads: coalesced %d vs isolated %d (%.1f%%), %d requests batched",
		coalesced, isolated, 100*float64(coalesced)/float64(isolated), batched)
}

func TestMetricsIncludeCoalescer(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	srv := s.serve(t)
	for i := 0; i < 3; i++ {
		if resp, _ := postLookup(t, srv.URL, s.tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup: status %d", resp.StatusCode)
		}
	}
	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{
		"maxembed_coalesce_batches_total",
		"maxembed_coalesce_bypass_total",
		"maxembed_coalesce_batch_size_bucket",
		"maxembed_coalesce_wait_p99_ns",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %q", metric)
		}
	}
}
