package server

import (
	"math"
	"strconv"
	"sync"

	"maxembed/internal/serving"
)

// Zero-copy response path. A lookup's Result references worker scratch
// that the worker's next lookup overwrites, so the handler snapshots each
// result into a pooled respLease before the worker moves on: uint32 keys
// are copied (cheap), zero-copy SlotRef views are copied by value and
// Retained (pinning their completion buffers — the payload bytes
// themselves are never copied), and value-backed vectors (cache hits,
// simulated reads, store fallbacks) are copied into a pooled arena. The
// response encoders then read ref payloads directly out of the device's
// completion buffers into the HTTP body; releasing the lease unpins the
// buffers so the backend can recycle them. See DESIGN.md §17.

// respLease owns one response's data after the serving worker has moved
// on. Entries are parallel to keys: a valid refs[i] carries the payload
// view, otherwise vecs[i] holds the (arena-backed) value.
type respLease struct {
	keys     []uint32
	refs     []serving.SlotRef
	vecs     [][]float32
	arena    []float32
	failed   []uint32
	stats    LookupStats
	degraded bool
}

var leasePool = sync.Pool{New: func() any { return new(respLease) }}

// respBufPool recycles response body buffers across requests.
var respBufPool = sync.Pool{New: func() any { return new([]byte) }}

// newLease snapshots res out of worker scratch. Must be called before the
// owning worker's next lookup; the lease stays valid until release.
func newLease(res serving.Result) *respLease {
	l := leasePool.Get().(*respLease)
	l.keys = append(l.keys[:0], res.Keys...)
	l.failed = append(l.failed[:0], res.FailedKeys...)
	l.degraded = res.Stats.Degraded
	l.stats = toLookupStats(res.Stats)
	l.refs = l.refs[:0]
	if res.Refs != nil {
		l.refs = append(l.refs, res.Refs...)
		for i := range l.refs {
			l.refs[i].Retain()
		}
	}
	// Copy value-backed vectors into one arena carve. The arena is sized
	// up front so append never reallocates under the carved subslices.
	total := 0
	for i, v := range res.Vectors {
		if i < len(l.refs) && l.refs[i].Valid() {
			continue
		}
		total += len(v)
	}
	if cap(l.arena) < total {
		l.arena = make([]float32, 0, total)
	}
	l.arena = l.arena[:0]
	l.vecs = l.vecs[:0]
	off := 0
	for i, v := range res.Vectors {
		if i < len(l.refs) && l.refs[i].Valid() {
			l.vecs = append(l.vecs, nil)
			continue
		}
		l.arena = append(l.arena, v...)
		l.vecs = append(l.vecs, l.arena[off:off+len(v):off+len(v)])
		off += len(v)
	}
	return l
}

// release unpins the lease's completion buffers and returns it to the
// pool. The lease must not be used afterwards.
func (l *respLease) release() {
	for i := range l.refs {
		l.refs[i].Release()
		l.refs[i] = serving.SlotRef{}
	}
	l.refs = l.refs[:0]
	leasePool.Put(l)
}

// refAt returns the ref view for entry i, or the zero ref when the entry
// is value-backed (engines without a real-I/O backend return no refs).
func (l *respLease) refAt(i int) serving.SlotRef {
	if i < len(l.refs) {
		return l.refs[i]
	}
	return serving.SlotRef{}
}

// dim returns the embedding dimension of the response's vectors (0 when
// the lease has no entries or the engine is timing-only).
func (l *respLease) dim() int {
	for i := range l.keys {
		if r := l.refAt(i); r.Valid() {
			return r.Dim()
		}
		if len(l.vecs[i]) > 0 {
			return len(l.vecs[i])
		}
	}
	return 0
}

func toLookupStats(st serving.QueryStats) LookupStats {
	return LookupStats{
		DistinctKeys:   st.DistinctKeys,
		CacheHits:      st.CacheHits,
		PagesRead:      st.PagesRead,
		PageShare:      st.PageShare,
		BatchSize:      st.BatchSize,
		Retries:        st.Retries,
		ReplicaRescues: st.ReplicaRescues,
		ShardReroutes:  st.ShardReroutes,
		StoreFallbacks: st.StoreFallbacks,
		LatencyNS:      st.LatencyNS(),
		Generation:     st.Generation,
	}
}

// appendJSONFloat32 appends v in the shortest round-trippable decimal
// form. Non-finite values (never produced by the store's verified
// payloads, but bytes are bytes) become 0 so the JSON stays valid.
func appendJSONFloat32(buf []byte, v float32) []byte {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(buf, '0')
	}
	return strconv.AppendFloat(buf, f, 'g', -1, 32)
}

// encodeJSON appends the LookupResponse JSON encoding of the lease to
// buf. Hand-rolled: ref-backed vectors are decoded element-at-a-time
// straight from the completion buffers into the body with no intermediate
// map, slice-of-slices, or reflection pass.
func (l *respLease) encodeJSON(buf []byte) []byte {
	buf = append(buf, `{"embeddings":{`...)
	for i, k := range l.keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = strconv.AppendUint(buf, uint64(k), 10)
		buf = append(buf, `":[`...)
		if ref := l.refAt(i); ref.Valid() {
			n := ref.Dim()
			for j := 0; j < n; j++ {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = appendJSONFloat32(buf, ref.Float32(j))
			}
		} else {
			for j, f := range l.vecs[i] {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = appendJSONFloat32(buf, f)
			}
		}
		buf = append(buf, ']')
	}
	buf = append(buf, '}')
	if l.degraded {
		buf = append(buf, `,"degraded":true,"failed_keys":[`...)
		for i, k := range l.failed {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendUint(buf, uint64(k), 10)
		}
		buf = append(buf, ']')
	}
	buf = append(buf, `,"stats":`...)
	buf = l.stats.appendJSON(buf)
	buf = append(buf, '}', '\n')
	return buf
}

// appendJSON appends the LookupStats JSON object, matching the
// encoding/json rendering of the struct tags (omitempty included).
func (s LookupStats) appendJSON(buf []byte) []byte {
	buf = append(buf, `{"distinct_keys":`...)
	buf = strconv.AppendInt(buf, int64(s.DistinctKeys), 10)
	buf = append(buf, `,"cache_hits":`...)
	buf = strconv.AppendInt(buf, int64(s.CacheHits), 10)
	buf = append(buf, `,"pages_read":`...)
	buf = strconv.AppendInt(buf, int64(s.PagesRead), 10)
	buf = append(buf, `,"page_share":`...)
	buf = strconv.AppendFloat(buf, s.PageShare, 'g', -1, 64)
	buf = append(buf, `,"batch_size":`...)
	buf = strconv.AppendInt(buf, int64(s.BatchSize), 10)
	if s.Retries != 0 {
		buf = append(buf, `,"retries":`...)
		buf = strconv.AppendInt(buf, int64(s.Retries), 10)
	}
	if s.ReplicaRescues != 0 {
		buf = append(buf, `,"replica_rescues":`...)
		buf = strconv.AppendInt(buf, int64(s.ReplicaRescues), 10)
	}
	if s.ShardReroutes != 0 {
		buf = append(buf, `,"shard_reroutes":`...)
		buf = strconv.AppendInt(buf, int64(s.ShardReroutes), 10)
	}
	if s.StoreFallbacks != 0 {
		buf = append(buf, `,"store_fallbacks":`...)
		buf = strconv.AppendInt(buf, int64(s.StoreFallbacks), 10)
	}
	buf = append(buf, `,"virtual_latency_ns":`...)
	buf = strconv.AppendInt(buf, s.LatencyNS, 10)
	buf = append(buf, `,"layout_generation":`...)
	buf = strconv.AppendUint(buf, s.Generation, 10)
	return append(buf, '}')
}

// Binary lookup encoding (content negotiation: Accept:
// application/octet-stream). All integers little-endian:
//
//	magic  [4]byte "MXE1"
//	dim    uint32  embedding dimension (elements)
//	count  uint32  served keys
//	nfail  uint32  failed keys
//	count × { key uint32, payload [4*dim]byte (raw little-endian float32s) }
//	nfail × { key uint32 }
//
// Ref-backed payloads are appended directly from the completion-buffer
// views: the bytes the NVMe read produced are the bytes on the wire.
const binaryMagic = "MXE1"

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// encodeBinary appends the binary encoding of the lease to buf.
func (l *respLease) encodeBinary(buf []byte) []byte {
	dim := l.dim()
	buf = append(buf, binaryMagic...)
	buf = appendU32(buf, uint32(dim))
	buf = appendU32(buf, uint32(len(l.keys)))
	buf = appendU32(buf, uint32(len(l.failed)))
	for i, k := range l.keys {
		buf = appendU32(buf, k)
		if ref := l.refAt(i); ref.Valid() {
			buf = append(buf, ref.Payload()...)
			continue
		}
		for _, f := range l.vecs[i] {
			buf = appendU32(buf, math.Float32bits(f))
		}
		for j := len(l.vecs[i]); j < dim; j++ {
			// Timing-only engines serve empty vectors; pad to the frame.
			buf = appendU32(buf, 0)
		}
	}
	for _, k := range l.failed {
		buf = appendU32(buf, k)
	}
	return buf
}
