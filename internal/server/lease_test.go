package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

// fileStack is a serving stack over the real-I/O backend: shard files in a
// temp dir read through the async executor, zero-copy views end to end.
type fileStack struct {
	eng *serving.Engine
	fb  *ssd.FileBackend
	syn *embedding.Synthesizer
	tr  *workload.Trace
}

func newFileStack(t testing.TB, shards int, mutate func(*serving.Config)) *fileStack {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 800, Queries: 1500, MeanQueryLen: 8,
		Communities: 60, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 3,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, testDim), ReplicationRatio: 0.2, Seed: 1,
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(testDim, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, shards)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files := make([]*store.FileStore, shards)
	for i := range files {
		path := filepath.Join(dir, fmt.Sprintf("shard%03d.bin", i))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Shard(i).WriteTo(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if files[i], _, err = store.OpenFileAuto(path); err != nil {
			t.Fatal(err)
		}
	}
	fb, err := ssd.NewFileBackend(files, ssd.FileBackendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fb.Close() })
	cfg := serving.Config{Layout: lay, Backend: fb, Store: sh, Pipeline: true}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := serving.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fileStack{eng: eng, fb: fb, syn: syn, tr: tr}
}

func (s *fileStack) serve(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	h := New(s.eng, s.fb, opts...)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return srv
}

// postLookupBinary negotiates the binary encoding and parses the frame.
func postLookupBinary(t *testing.T, url string, keys []uint32) (status int, dim int, got map[uint32][]float32, failed []uint32) {
	t.Helper()
	body, err := json.Marshal(LookupRequest{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/lookup", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	if status != http.StatusOK && status != http.StatusPartialContent {
		return status, 0, nil, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type = %q, want application/octet-stream", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 16 || string(raw[:4]) != binaryMagic {
		t.Fatalf("binary frame header malformed: % x", raw[:min(len(raw), 16)])
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(raw[off:]) }
	dim = int(u32(4))
	count, nfail := int(u32(8)), int(u32(12))
	wantLen := 16 + count*(4+4*dim) + nfail*4
	if len(raw) != wantLen {
		t.Fatalf("binary frame length %d, want %d (dim=%d count=%d nfail=%d)",
			len(raw), wantLen, dim, count, nfail)
	}
	got = make(map[uint32][]float32, count)
	off := 16
	for i := 0; i < count; i++ {
		k := u32(off)
		off += 4
		vec := make([]float32, dim)
		for j := range vec {
			vec[j] = math.Float32frombits(u32(off))
			off += 4
		}
		got[k] = vec
	}
	for i := 0; i < nfail; i++ {
		failed = append(failed, u32(off))
		off += 4
	}
	return status, dim, got, failed
}

// TestLookupJSONOverFileBackend checks the hand-rolled JSON encoder against
// the ground truth through the full zero-copy path: NVMe-style read →
// completion buffer → ref view → response body.
func TestLookupJSONOverFileBackend(t *testing.T) {
	s := newFileStack(t, 2, nil)
	srv := s.serve(t)
	var want []float32
	for i := 0; i < 40; i++ {
		resp, lr := postLookup(t, srv.URL, s.tr.Queries[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
		if len(lr.Embeddings) == 0 {
			t.Fatalf("query %d: no embeddings", i)
		}
		for k, got := range lr.Embeddings {
			want = s.syn.Vector(k, want[:0])
			if len(got) != len(want) {
				t.Fatalf("query %d key %d: dim %d want %d", i, k, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("query %d key %d elem %d: %v want %v", i, k, j, got[j], want[j])
				}
			}
		}
		if lr.Stats.PagesRead == 0 && lr.Stats.CacheHits == 0 {
			t.Fatalf("query %d: no reads and no hits in stats", i)
		}
	}
	if st := s.fb.Stats(); st.Reads == 0 {
		t.Fatal("no backend reads recorded")
	}
}

// TestLookupBinaryEncoding checks the negotiated binary frame: raw
// little-endian payload bytes straight out of the completion buffers.
func TestLookupBinaryEncoding(t *testing.T) {
	s := newFileStack(t, 2, nil)
	srv := s.serve(t)
	var want []float32
	for i := 0; i < 25; i++ {
		status, dim, got, failed := postLookupBinary(t, srv.URL, s.tr.Queries[i])
		if status != http.StatusOK {
			t.Fatalf("query %d: status %d", i, status)
		}
		if dim != testDim {
			t.Fatalf("query %d: dim %d, want %d", i, dim, testDim)
		}
		if len(failed) != 0 {
			t.Fatalf("query %d: failed keys %v", i, failed)
		}
		distinct := map[uint32]bool{}
		for _, k := range s.tr.Queries[i] {
			distinct[k] = true
		}
		if len(got) != len(distinct) {
			t.Fatalf("query %d: %d keys returned, want %d", i, len(got), len(distinct))
		}
		for k, vec := range got {
			want = s.syn.Vector(k, want[:0])
			for j := range want {
				if vec[j] != want[j] {
					t.Fatalf("query %d key %d elem %d: %v want %v", i, k, j, vec[j], want[j])
				}
			}
		}
	}
}

// TestLookupBinaryMatchesJSON cross-checks the two encodings of the same
// query byte-for-value, through the coalesced path as well.
func TestLookupBinaryMatchesJSON(t *testing.T) {
	s := newFileStack(t, 1, nil)
	srv := s.serve(t, WithCoalescing(4, 0))
	for i := 0; i < 10; i++ {
		q := s.tr.Queries[i]
		_, lr := postLookup(t, srv.URL, q)
		_, _, got, _ := postLookupBinary(t, srv.URL, q)
		if len(got) != len(lr.Embeddings) {
			t.Fatalf("query %d: binary %d keys, JSON %d", i, len(got), len(lr.Embeddings))
		}
		for k, jv := range lr.Embeddings {
			bv, ok := got[k]
			if !ok {
				t.Fatalf("query %d: key %d missing from binary response", i, k)
			}
			for j := range jv {
				if jv[j] != bv[j] {
					t.Fatalf("query %d key %d elem %d: JSON %v, binary %v", i, k, j, jv[j], bv[j])
				}
			}
		}
	}
}

// TestHandRolledJSONMatchesEncodingJSON pins the hand-rolled encoder to the
// reflection-based rendering of the same response structs, so the wire
// shape can never drift from the documented LookupResponse.
func TestHandRolledJSONMatchesEncodingJSON(t *testing.T) {
	for _, l := range []*respLease{
		{
			keys:  []uint32{7, 42},
			vecs:  [][]float32{{1.5, -2.25}, {0, 3e-7}},
			stats: LookupStats{DistinctKeys: 2, PagesRead: 1, PageShare: 0.5, BatchSize: 1, LatencyNS: 1234, Generation: 1},
		},
		{
			keys:     []uint32{9},
			vecs:     [][]float32{{float32(math.Inf(1))}},
			failed:   []uint32{11, 12},
			degraded: true,
			stats: LookupStats{DistinctKeys: 3, CacheHits: 1, PagesRead: 2, BatchSize: 4,
				Retries: 2, ReplicaRescues: 1, ShardReroutes: 3, StoreFallbacks: 1, LatencyNS: 99, Generation: 7},
		},
	} {
		hand := l.encodeJSON(nil)
		ref := LookupResponse{
			Embeddings: map[uint32][]float32{},
			Degraded:   l.degraded,
			Stats:      l.stats,
		}
		for i, k := range l.keys {
			vec := make([]float32, len(l.vecs[i]))
			for j, f := range l.vecs[i] {
				if f64 := float64(f); math.IsNaN(f64) || math.IsInf(f64, 0) {
					f = 0 // the hand encoder's non-finite clamp
				}
				vec[j] = f
			}
			ref.Embeddings[k] = vec
		}
		if l.degraded {
			ref.FailedKeys = l.failed
		}
		var fromHand, fromRef LookupResponse
		if err := json.Unmarshal(hand, &fromHand); err != nil {
			t.Fatalf("hand-rolled output does not parse: %v\n%s", err, hand)
		}
		refBytes, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(refBytes, &fromRef); err != nil {
			t.Fatal(err)
		}
		if !jsonEqual(t, fromHand, fromRef) {
			t.Fatalf("hand-rolled JSON diverges:\nhand: %s\nref:  %s", hand, refBytes)
		}
	}
}

func jsonEqual(t *testing.T, a, b LookupResponse) bool {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ab, bb)
}

// TestPprofGating: profiling endpoints exist only when opted in.
func TestPprofGating(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	off := s.serve(t)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: status %d, want 404", resp.StatusCode)
	}

	s2 := newTestStack(t, 0.2, nil)
	on := s2.serve(t, WithPprof())
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with -pprof: status %d", path, resp.StatusCode)
		}
	}
}

// TestMetricsBackendLatencyHistogram: a real-I/O backend exports its
// measured per-shard read-latency histogram; the simulator does not.
func TestMetricsBackendLatencyHistogram(t *testing.T) {
	s := newFileStack(t, 2, nil)
	srv := s.serve(t)
	for i := 0; i < 10; i++ {
		if resp, _ := postLookup(t, srv.URL, s.tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, needle := range []string{
		"# TYPE maxembed_backend_read_latency_seconds histogram",
		`maxembed_backend_read_latency_seconds_bucket{shard="0",le="+Inf"}`,
		`maxembed_backend_read_latency_seconds_bucket{shard="1",le="+Inf"}`,
		`maxembed_backend_read_latency_seconds_count{shard="0"}`,
		`maxembed_backend_read_latency_seconds_sum{shard="0"}`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("metrics output missing %q", needle)
		}
	}
	// Buckets must be cumulative and end at the total count.
	var total int64
	fmt.Sscanf(textAfter(t, text, `maxembed_backend_read_latency_seconds_count{shard="0"} `), "%d", &total)
	if total == 0 {
		t.Fatal("shard 0 histogram count is zero after lookups")
	}
	var inf int64
	fmt.Sscanf(textAfter(t, text, `maxembed_backend_read_latency_seconds_bucket{shard="0",le="+Inf"} `), "%d", &inf)
	if inf != total {
		t.Fatalf("+Inf bucket %d != count %d", inf, total)
	}

	// The simulated stack has no measured latency to report.
	sim := newTestStack(t, 0.2, nil)
	simSrv := sim.serve(t)
	r2, err := http.Get(simSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	simBody, err := io.ReadAll(r2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(simBody), "maxembed_backend_read_latency_seconds") {
		t.Error("simulated backend exported a measured-latency histogram")
	}
}

func textAfter(t *testing.T, text, prefix string) string {
	t.Helper()
	i := strings.Index(text, prefix)
	if i < 0 {
		t.Fatalf("metrics output missing %q", prefix)
	}
	return text[i+len(prefix):]
}
