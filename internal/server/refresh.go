package server

import (
	"net/http"
	"time"
)

// Online layout refresh: the offline placement phase re-runs against the
// recorded query history while the server keeps serving, and the resulting
// engine is swapped into the shared handle at a query boundary (§7 of the
// paper treats placement as periodically recomputable; this is the serving
// side of that loop). The rebuild happens entirely off the request path —
// requests in flight finish on the old engine, and pooled workers plus the
// coalescer re-bind to the new one on their next lookup.

// Default refresh-loop gate: don't bother recomputing placement until this
// many queries have been recorded since the last refresh.
const defaultRefreshMinQueries = 1024

// RefreshSource produces refreshed engines for the handler's handle — in
// practice maxembed.DB, whose RefreshNow snapshots its recorded history,
// re-runs placement, and swaps the handle the handler serves from.
type RefreshSource interface {
	// PendingQueries reports how many queries have been recorded since
	// the last refresh; the background loop gates on it.
	PendingQueries() int64
	// RefreshNow rebuilds the layout from recorded history and swaps it
	// into the serving handle. It is expected to be slow (placement is
	// CPU-bound) and is never called concurrently by this handler.
	RefreshNow() error
}

// WithRefresh enables the POST /v1/refresh admin endpoint, driving the
// given source. The source must swap the same handle the handler serves
// from (NewDynamic), otherwise refreshes rebuild layouts nobody serves.
func WithRefresh(src RefreshSource) Option {
	return func(h *Handler) { h.refreshSrc = src }
}

// WithRefreshLoop additionally runs a background loop that refreshes every
// interval, skipping rounds in which fewer than minQueries queries were
// recorded since the last refresh (so an idle server never recomputes
// placement). interval ≤ 0 disables the loop; minQueries ≤ 0 uses the
// default (1024). Implies WithRefresh.
func WithRefreshLoop(src RefreshSource, interval time.Duration, minQueries int64) Option {
	return func(h *Handler) {
		h.refreshSrc = src
		h.refreshInterval = interval
		if minQueries <= 0 {
			minQueries = defaultRefreshMinQueries
		}
		h.refreshMinQueries = minQueries
	}
}

// RefreshResponse is the POST /v1/refresh response body.
type RefreshResponse struct {
	// Generation is the layout generation now being served.
	Generation uint64 `json:"layout_generation"`
	// DurationNS is how long the rebuild-and-swap took.
	DurationNS int64 `json:"duration_ns"`
	// Swaps counts engine swaps over the handler's lifetime.
	Swaps int64 `json:"engine_swaps"`
}

// refresh is the admin endpoint: it triggers one synchronous refresh and
// reports the resulting generation. 501 when no refresh source is
// configured; 409 when a refresh (admin- or loop-triggered) is already
// running — recomputing placement twice concurrently would waste CPU for
// an identical layout, so the caller should retry after the current one.
func (h *Handler) refresh(w http.ResponseWriter, _ *http.Request) {
	if h.refreshSrc == nil {
		httpError(w, http.StatusNotImplemented,
			"refresh not configured: server started without a refresh source")
		return
	}
	resp, busy, err := h.runRefresh()
	if busy {
		httpError(w, http.StatusConflict, "refresh already in progress")
		return
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "refresh: %v", err)
		return
	}
	writeJSON(w, resp)
}

// runRefresh performs one refresh under refreshMu and reports busy when
// another refresh holds it. The critical section stays free of HTTP
// writes (lockhold): callers render the result after the mutex is back.
func (h *Handler) runRefresh() (resp RefreshResponse, busy bool, err error) {
	if !h.refreshMu.TryLock() {
		return RefreshResponse{}, true, nil
	}
	defer h.refreshMu.Unlock()
	start := h.now()
	if err := h.refreshSrc.RefreshNow(); err != nil {
		h.refreshErrors.Add(1)
		return RefreshResponse{}, false, err
	}
	dur := h.now().Sub(start)
	h.refreshes.Add(1)
	h.lastRefreshNS.Store(dur.Nanoseconds())
	return RefreshResponse{
		Generation: h.handle.Generation(),
		DurationNS: dur.Nanoseconds(),
		Swaps:      h.handle.Swaps(),
	}, false, nil
}

// refreshLoop periodically refreshes the layout from recorded history,
// skipping quiet intervals. Runs until Close.
func (h *Handler) refreshLoop() {
	defer close(h.refreshDone)
	ticker := time.NewTicker(h.refreshInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			h.tryRefresh()
		case <-h.refreshQuit:
			return
		}
	}
}

// tryRefresh runs one gated refresh round: skip when too little history
// has accumulated or when an admin-triggered refresh is mid-flight (the
// busy/error outcomes are already counted inside runRefresh).
func (h *Handler) tryRefresh() {
	if h.refreshSrc.PendingQueries() < h.refreshMinQueries {
		return
	}
	_, _, _ = h.runRefresh()
}
