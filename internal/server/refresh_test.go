package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"maxembed/internal/serving"
)

// fakeSource is a RefreshSource over a pre-built queue of engines: each
// RefreshNow swaps the next one into the handle. Engines are built in the
// test goroutine because RefreshNow may run on handler or loop goroutines.
type fakeSource struct {
	handle  *serving.Swappable
	engines chan *serving.Engine
	pending atomic.Int64
	calls   atomic.Int64
	fail    atomic.Bool
}

func newFakeSource(t *testing.T, s *testStack, handle *serving.Swappable, n int) *fakeSource {
	t.Helper()
	f := &fakeSource{handle: handle, engines: make(chan *serving.Engine, n)}
	for i := 0; i < n; i++ {
		f.engines <- s.newEngine(t)
	}
	return f
}

func (f *fakeSource) PendingQueries() int64 { return f.pending.Load() }

func (f *fakeSource) RefreshNow() error {
	f.calls.Add(1)
	if f.fail.Load() {
		return errors.New("synthetic refresh failure")
	}
	select {
	case e := <-f.engines:
		if _, err := f.handle.Swap(e); err != nil {
			return err
		}
		f.pending.Store(0)
		return nil
	default:
		return errors.New("fakeSource: out of engines")
	}
}

// tryLookup is postLookup without t.Fatal, safe to call off the test
// goroutine.
func tryLookup(url string, keys []uint32) (int, LookupResponse, error) {
	body, err := json.Marshal(LookupRequest{Keys: keys})
	if err != nil {
		return 0, LookupResponse{}, err
	}
	resp, err := http.Post(url+"/v1/lookup", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, LookupResponse{}, err
	}
	defer resp.Body.Close()
	var lr LookupResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusPartialContent {
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			return resp.StatusCode, lr, err
		}
	}
	return resp.StatusCode, lr, nil
}

func TestRefreshEndpointSwapsEngine(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	handle := serving.NewSwappable(s.eng)
	src := newFakeSource(t, s, handle, 1)
	h := NewDynamic(handle, s.dev, WithRefresh(src), WithoutCoalescing())
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); h.Close() })

	resp, err := http.Post(srv.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr RefreshResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status = %d", resp.StatusCode)
	}
	if rr.Generation != 2 || rr.Swaps != 1 {
		t.Errorf("refresh response = %+v, want generation 2, 1 swap", rr)
	}
	if handle.Generation() != 2 || handle.Engine() == s.eng {
		t.Error("handle still serves the pre-refresh engine")
	}

	// Lookups are served by the new generation and say so.
	lr, lresp := postLookup(t, srv.URL, s.tr.Queries[0])
	if lr.StatusCode != http.StatusOK {
		t.Fatalf("lookup after refresh: status %d", lr.StatusCode)
	}
	if lresp.Stats.Generation != 2 {
		t.Errorf("lookup served by generation %d, want 2", lresp.Stats.Generation)
	}

	st := getStats(t, srv.URL)
	if !st.Refresh.Enabled || st.Refresh.Generation != 2 || st.Refresh.Swaps != 1 || st.Refresh.Refreshes != 1 {
		t.Errorf("stats refresh section = %+v", st.Refresh)
	}
	if st.Refresh.LastDurationNS <= 0 {
		t.Errorf("LastDurationNS = %d, want > 0", st.Refresh.LastDurationNS)
	}

	// A failing refresh surfaces as 422 and an error counter, no swap.
	src.fail.Store(true)
	resp, err = http.Post(srv.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("failing refresh status = %d, want 422", resp.StatusCode)
	}
	if st := getStats(t, srv.URL); st.Refresh.Errors != 1 || st.Refresh.Generation != 2 {
		t.Errorf("after failed refresh: %+v", st.Refresh)
	}
}

func TestRefreshEndpointWithoutSource(t *testing.T) {
	srv, _, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("refresh without source: status %d, want 501", resp.StatusCode)
	}
	if st := getStats(t, srv.URL); st.Refresh.Enabled {
		t.Error("stats report refresh enabled without a source")
	}
}

func TestRefreshLoopGatesOnPendingQueries(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	handle := serving.NewSwappable(s.eng)
	src := newFakeSource(t, s, handle, 1)
	h := NewDynamic(handle, s.dev,
		WithRefreshLoop(src, 2*time.Millisecond, 100), WithoutCoalescing())
	t.Cleanup(h.Close)

	// Below the gate: ticks must pass without refreshing.
	time.Sleep(25 * time.Millisecond)
	if src.calls.Load() != 0 {
		t.Fatalf("loop refreshed %d times below the min-queries gate", src.calls.Load())
	}
	src.pending.Store(500)
	deadline := time.Now().Add(2 * time.Second)
	for src.calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if src.calls.Load() == 0 {
		t.Fatal("loop never refreshed after pending queries crossed the gate")
	}
	if handle.Generation() != 2 {
		t.Errorf("generation = %d after loop refresh, want 2", handle.Generation())
	}
	// The gate resets once pending is consumed: no further refreshes.
	calls := src.calls.Load()
	time.Sleep(25 * time.Millisecond)
	if src.calls.Load() != calls {
		t.Errorf("loop kept refreshing with pending reset: %d → %d calls", calls, src.calls.Load())
	}
}

// TestLookupsAcrossConcurrentSwaps hammers the HTTP path (coalesced and
// pooled-worker serving) while engines are swapped underneath it: every
// response must be a well-formed 200, per-client layout generations must
// never move backwards, and the coalescer must re-bind its worker.
func TestLookupsAcrossConcurrentSwaps(t *testing.T) {
	s := newTestStack(t, 0.2, nil)
	handle := serving.NewSwappable(s.eng)
	h := NewDynamic(handle, s.dev, WithCoalescing(4, time.Millisecond))
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); h.Close() })

	const swaps = 3
	spares := make([]*serving.Engine, swaps)
	for i := range spares {
		spares[i] = s.newEngine(t)
	}

	const clients = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lastGen uint64
			for i := c; ; i += clients {
				select {
				case <-stop:
					return
				default:
				}
				status, lr, err := tryLookup(srv.URL, s.tr.Queries[i%len(s.tr.Queries)])
				if err == nil && status != http.StatusOK {
					err = fmt.Errorf("status %d", status)
				}
				if err == nil && lr.Stats.Generation < lastGen {
					err = fmt.Errorf("generation %d after %d", lr.Stats.Generation, lastGen)
				}
				if err != nil {
					select {
					case errs <- fmt.Errorf("client %d: %w", c, err):
					default:
					}
					return
				}
				lastGen = lr.Stats.Generation
			}
		}(c)
	}
	for _, e := range spares {
		time.Sleep(5 * time.Millisecond)
		if _, err := handle.Swap(e); err != nil {
			t.Errorf("swap: %v", err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := getStats(t, srv.URL)
	if st.Refresh.Generation != 1+swaps {
		t.Errorf("final generation = %d, want %d", st.Refresh.Generation, 1+swaps)
	}
	if st.Coalescer.Rebinds == 0 {
		t.Error("coalescer never re-bound its worker across swaps")
	}
	if st.Recovery.ReadErrors != 0 {
		t.Errorf("unexpected read errors: %+v", st.Recovery)
	}
}
