// Package server exposes a MaxEmbed serving engine over HTTP: the shape a
// production embedding-parameter service takes in a DLRM inference stack
// (Figure 1 of the paper — the embedding layer feeding the dense model).
//
// Endpoints:
//
//	POST /v1/lookup   {"keys":[1,2,3]}  → embeddings + per-query stats
//	GET  /v1/stats                      → engine/device/cache counters
//	GET  /healthz                       → liveness
//
// Sessions (each owning an SSD queue pair and virtual clock) are pooled
// across requests, mirroring the per-thread serving contexts of §8.4.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"maxembed/internal/serving"
	"maxembed/internal/ssd"
)

// Handler serves the HTTP API for one engine.
type Handler struct {
	eng     *serving.Engine
	device  *ssd.Device
	mux     *http.ServeMux
	workers sync.Pool
}

// New returns a handler over the given engine and its device.
func New(eng *serving.Engine, device *ssd.Device) *Handler {
	h := &Handler{eng: eng, device: device, mux: http.NewServeMux()}
	h.workers.New = func() any { return eng.NewWorker() }
	h.mux.HandleFunc("POST /v1/lookup", h.lookup)
	h.mux.HandleFunc("GET /v1/stats", h.stats)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("GET /healthz", h.health)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// LookupRequest is the /v1/lookup request body.
type LookupRequest struct {
	// Keys to fetch. Duplicates are served once.
	Keys []uint32 `json:"keys"`
}

// LookupResponse is the /v1/lookup response body.
type LookupResponse struct {
	// Embeddings maps each distinct requested key to its vector. Empty
	// vectors are returned by timing-only engines.
	Embeddings map[uint32][]float32 `json:"embeddings"`
	// Stats reports the work behind this lookup.
	Stats LookupStats `json:"stats"`
}

// LookupStats is the JSON projection of serving.QueryStats.
type LookupStats struct {
	DistinctKeys int   `json:"distinct_keys"`
	CacheHits    int   `json:"cache_hits"`
	PagesRead    int   `json:"pages_read"`
	LatencyNS    int64 `json:"virtual_latency_ns"`
}

const maxLookupKeys = 1 << 16

func (h *Handler) lookup(w http.ResponseWriter, r *http.Request) {
	var req LookupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Keys) == 0 {
		httpError(w, http.StatusBadRequest, "keys must be non-empty")
		return
	}
	if len(req.Keys) > maxLookupKeys {
		httpError(w, http.StatusBadRequest, "too many keys: %d > %d", len(req.Keys), maxLookupKeys)
		return
	}
	worker := h.workers.Get().(*serving.Worker)
	defer h.workers.Put(worker)
	res, err := worker.Lookup(req.Keys)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "lookup: %v", err)
		return
	}
	resp := LookupResponse{
		Embeddings: make(map[uint32][]float32, len(res.Keys)),
		Stats: LookupStats{
			DistinctKeys: res.Stats.DistinctKeys,
			CacheHits:    res.Stats.CacheHits,
			PagesRead:    res.Stats.PagesRead,
			LatencyNS:    res.Stats.LatencyNS(),
		},
	}
	for i, k := range res.Keys {
		// Copy out: the result vectors alias worker scratch that is
		// reused once the worker returns to the pool.
		v := make([]float32, len(res.Vectors[i]))
		copy(v, res.Vectors[i])
		resp.Embeddings[k] = v
	}
	writeJSON(w, resp)
}

// StatsResponse is the /v1/stats response body.
type StatsResponse struct {
	Device struct {
		Reads     int64 `json:"reads"`
		BytesRead int64 `json:"bytes_read"`
		Errors    int64 `json:"errors"`
	} `json:"device"`
	Cache *struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Evictions int64   `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
		Entries   int     `json:"entries"`
	} `json:"cache,omitempty"`
	Latency struct {
		Count  int     `json:"count"`
		MeanNS float64 `json:"mean_ns"`
		P50NS  int64   `json:"p50_ns"`
		P99NS  int64   `json:"p99_ns"`
	} `json:"virtual_latency"`
	MeanValidPerRead float64 `json:"mean_valid_per_read"`
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request) {
	var resp StatsResponse
	ds := h.device.Stats()
	resp.Device.Reads = ds.Reads
	resp.Device.BytesRead = ds.BytesRead
	resp.Device.Errors = ds.Errors
	if c := h.eng.Cache(); c != nil {
		cs := c.Stats()
		resp.Cache = &struct {
			Hits      int64   `json:"hits"`
			Misses    int64   `json:"misses"`
			Evictions int64   `json:"evictions"`
			HitRate   float64 `json:"hit_rate"`
			Entries   int     `json:"entries"`
		}{cs.Hits, cs.Misses, cs.Evictions, cs.HitRate(), c.Len()}
	}
	ls := h.eng.Latency.Snapshot()
	resp.Latency.Count = ls.Count
	resp.Latency.MeanNS = ls.MeanNS
	resp.Latency.P50NS = ls.P50NS
	resp.Latency.P99NS = ls.P99NS
	resp.MeanValidPerRead = h.eng.ValidPerRead.Mean()
	writeJSON(w, resp)
}

// metrics renders the same counters in Prometheus text exposition format
// for scrape-based monitoring.
func (h *Handler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	ds := h.device.Stats()
	fmt.Fprintf(w, "# TYPE maxembed_device_reads_total counter\nmaxembed_device_reads_total %d\n", ds.Reads)
	fmt.Fprintf(w, "# TYPE maxembed_device_bytes_read_total counter\nmaxembed_device_bytes_read_total %d\n", ds.BytesRead)
	fmt.Fprintf(w, "# TYPE maxembed_device_errors_total counter\nmaxembed_device_errors_total %d\n", ds.Errors)
	if c := h.eng.Cache(); c != nil {
		cs := c.Stats()
		fmt.Fprintf(w, "# TYPE maxembed_cache_hits_total counter\nmaxembed_cache_hits_total %d\n", cs.Hits)
		fmt.Fprintf(w, "# TYPE maxembed_cache_misses_total counter\nmaxembed_cache_misses_total %d\n", cs.Misses)
		fmt.Fprintf(w, "# TYPE maxembed_cache_entries gauge\nmaxembed_cache_entries %d\n", c.Len())
	}
	ls := h.eng.Latency.Snapshot()
	fmt.Fprintf(w, "# TYPE maxembed_lookups_total counter\nmaxembed_lookups_total %d\n", ls.Count)
	fmt.Fprintf(w, "# TYPE maxembed_lookup_latency_p99_ns gauge\nmaxembed_lookup_latency_p99_ns %d\n", ls.P99NS)
	fmt.Fprintf(w, "# TYPE maxembed_valid_per_read gauge\nmaxembed_valid_per_read %g\n", h.eng.ValidPerRead.Mean())
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing recoverable.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
