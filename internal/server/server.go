// Package server exposes a MaxEmbed serving engine over HTTP: the shape a
// production embedding-parameter service takes in a DLRM inference stack
// (Figure 1 of the paper — the embedding layer feeding the dense model).
//
// Endpoints:
//
//	POST /v1/lookup   {"keys":[1,2,3]}  → embeddings + per-query stats
//	POST /v1/refresh                    → rebuild layout from history, hot-swap
//	GET  /v1/stats                      → engine/device/cache/refresh counters
//	GET  /healthz                       → readiness (error-rate driven)
//
// Sessions (each owning an SSD queue pair and virtual clock) are pooled
// across requests, mirroring the per-thread serving contexts of §8.4.
//
// The API degrades rather than fails under device faults: a lookup the
// engine could only partially recover returns 206 Partial Content with the
// unserved keys in "failed_keys"; when the rolling read-error rate crosses
// the unhealthy threshold the server sheds load with 503 + Retry-After
// (letting a fraction of probe requests through so recovery is noticed)
// and /healthz reports not-ready for load-balancer eviction.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maxembed/internal/metrics"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
)

// Defaults for the health probe; override with the With* options.
const (
	defaultHealthWindow       = 128
	defaultUnhealthyThreshold = 0.5
	defaultMinHealthEvents    = 20
	defaultRetryAfterSec      = 1
	defaultProbeEvery         = 8
	// defaultShardFailTolerance is the fraction of dead shards the node
	// tolerates before reporting unhealthy (multi-shard backends only).
	defaultShardFailTolerance = 0.5
)

// Option configures a Handler.
type Option func(*Handler)

// WithHealthWindow sets how many recent lookups the rolling error-rate
// window spans (default 128).
func WithHealthWindow(lookups int) Option {
	return func(h *Handler) { h.window = metrics.NewRateWindow(lookups) }
}

// WithUnhealthyThreshold sets the read-fault fraction above which the
// server stops admitting traffic, and the minimum number of page reads the
// window must cover before the verdict is trusted (defaults 0.5 over 20
// reads — a cold window is always healthy).
func WithUnhealthyThreshold(rate float64, minEvents int64) Option {
	return func(h *Handler) { h.threshold, h.minEvents = rate, minEvents }
}

// WithRetryAfter sets the Retry-After value (seconds) attached to 503
// responses while unhealthy (default 1).
func WithRetryAfter(seconds int) Option {
	return func(h *Handler) { h.retryAfterSec = seconds }
}

// WithCoalescing configures cross-request micro-batching: up to maxBatch
// concurrent lookups are gathered into one coalesced serving pass, waiting
// at most maxWait for the batch to fill once two or more requests are
// pending (a lone request is always dispatched immediately). maxBatch ≤ 1
// disables coalescing and serves every request in isolation from a worker
// pool. Defaults: maxBatch 8, maxWait 250µs.
func WithCoalescing(maxBatch int, maxWait time.Duration) Option {
	return func(h *Handler) { h.maxBatch, h.maxWait = maxBatch, maxWait }
}

// WithoutCoalescing serves every request in isolation (the pre-batching
// architecture); equivalent to WithCoalescing(1, 0).
func WithoutCoalescing() Option {
	return func(h *Handler) { h.maxBatch, h.maxWait = 1, 0 }
}

// WithCoalesceQueue bounds how many requests may wait for the coalescer
// before backpressure sheds new arrivals with 503 (default 1024).
func WithCoalesceQueue(n int) Option {
	return func(h *Handler) { h.coalesceQueue = n }
}

// WithPprof exposes Go's runtime profiling endpoints under /debug/pprof/
// on the handler's own mux. Off by default: profiling handlers leak
// operational detail and burn CPU when scraped, so production servers opt
// in explicitly (the -pprof flag on cmd/maxembed-server).
func WithPprof() Option {
	return func(h *Handler) { h.pprofEnabled = true }
}

// Handler serves the HTTP API for one engine (or, with NewDynamic, a
// swappable engine handle that layout refreshes update in place).
type Handler struct {
	handle  *serving.Swappable
	backend ssd.Backend
	mux     *http.ServeMux
	workers sync.Pool // *poolWorker entries, tagged with their generation

	window        *metrics.RateWindow
	threshold     float64
	minEvents     int64
	retryAfterSec int
	probeSeq      atomic.Int64 // admits every Nth request while unhealthy

	maxBatch      int
	maxWait       time.Duration
	coalesceQueue int
	coal          *coalescer // nil when coalescing is disabled
	closeOnce     sync.Once
	pprofEnabled  bool

	nowFn func() time.Time // injected clock (WithClock); wall clock by default

	spreadSrc SpreadReporter // last despread pass for /v1/stats, nil unless wired

	refreshSrc        RefreshSource
	refreshInterval   time.Duration
	refreshMinQueries int64
	refreshMu         sync.Mutex // serializes admin- and loop-triggered refreshes
	refreshes         atomic.Int64
	refreshErrors     atomic.Int64
	lastRefreshNS     atomic.Int64
	refreshQuit       chan struct{}
	refreshDone       chan struct{}

	shardAdmin                                    ShardAdmin
	scrubber                                      Scrubber
	shardTolerance                                float64    // dead-shard fraction above which the node is unhealthy
	scrubMu                                       sync.Mutex // serializes admin scrub sweeps
	rebuildMu                                     sync.Mutex // serializes admin rebuilds
	adminMu                                       sync.Mutex // guards lastScrub / lastRebuild
	lastScrub                                     *ScrubResponse
	lastRebuild                                   *RebuildResponse
	scrubs, scrubErrors, scrubScanned, scrubTotal atomic.Int64
	scrubLatent, scrubRepaired, scrubUnrepairable atomic.Int64
	rebuilds, rebuildErrors                       atomic.Int64
	rebuildCopied, rebuildTotal, lastMTTRNS       atomic.Int64
	scrubRunning, rebuildRunning                  atomic.Bool
}

// New returns a handler over the given engine and its read backend (a
// single *ssd.Device or a multi-shard ssd.Array). Coalescing is on by
// default (see WithCoalescing); call Close when done to stop the
// coalescer goroutine. The engine is wrapped in a single-generation
// swappable handle; use NewDynamic to share a handle that refreshes swap.
func New(eng *serving.Engine, backend ssd.Backend, opts ...Option) *Handler {
	return NewDynamic(serving.NewSwappable(eng), backend, opts...)
}

// NewDynamic returns a handler over a swappable engine handle: when a
// layout refresh swaps a new engine into the handle, pooled request
// workers and the coalescer re-bind to it at their next lookup, so the
// swap needs no connection draining or restart. Call Close when done to
// stop the coalescer and refresh-loop goroutines.
func NewDynamic(handle *serving.Swappable, backend ssd.Backend, opts ...Option) *Handler {
	h := &Handler{
		handle:         handle,
		backend:        backend,
		mux:            http.NewServeMux(),
		window:         metrics.NewRateWindow(defaultHealthWindow),
		threshold:      defaultUnhealthyThreshold,
		minEvents:      defaultMinHealthEvents,
		retryAfterSec:  defaultRetryAfterSec,
		maxBatch:       defaultMaxBatch,
		maxWait:        defaultMaxWait,
		coalesceQueue:  defaultCoalesceQueue,
		shardTolerance: defaultShardFailTolerance,
		nowFn:          time.Now, // the sanctioned injection point (clockcheck)
	}
	for _, o := range opts {
		o(h)
	}
	if h.maxBatch > 1 {
		h.coal = newCoalescer(h, h.maxBatch, h.maxWait, h.coalesceQueue)
		go h.coal.run()
	}
	if h.refreshSrc != nil && h.refreshInterval > 0 {
		h.refreshQuit = make(chan struct{})
		h.refreshDone = make(chan struct{})
		go h.refreshLoop()
	}
	h.mux.HandleFunc("POST /v1/lookup", h.lookup)
	h.mux.HandleFunc("POST /v1/refresh", h.refresh)
	h.mux.HandleFunc("POST /v1/scrub", h.scrub)
	h.mux.HandleFunc("POST /v1/shards/{shard}/fail", h.failShard)
	h.mux.HandleFunc("POST /v1/shards/{shard}/rebuild", h.rebuildShard)
	h.mux.HandleFunc("GET /v1/stats", h.stats)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("GET /healthz", h.health)
	if h.pprofEnabled {
		h.mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
		h.mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
		h.mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
		h.mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
		h.mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
	}
	return h
}

// Handle returns the swappable engine handle the handler serves from.
func (h *Handler) Handle() *serving.Swappable { return h.handle }

// curBackend returns the read backend behind the *current* engine: a
// shard rebuild swaps in an engine over the repaired array, and the
// handler's stats, health, and admin surfaces must follow it rather than
// keep reporting the retired array's (now unobserved) shard state.
func (h *Handler) curBackend() ssd.Backend {
	if be := h.handle.Engine().Backend(); be != nil {
		return be
	}
	return h.backend
}

// Close stops the refresh-loop and coalescer goroutines, serving anything
// already queued first. The handler keeps working afterwards, falling back
// to isolated per-request serving. Safe to call multiple times.
func (h *Handler) Close() {
	h.closeOnce.Do(func() {
		if h.refreshQuit != nil {
			close(h.refreshQuit)
			<-h.refreshDone
		}
		if h.coal != nil {
			h.coal.close()
		}
	})
}

// poolWorker is a pooled per-request worker tagged with the engine
// generation it was created for; stale entries are discarded instead of
// reused, so an engine swap invalidates the pool without coordination.
type poolWorker struct {
	gen uint64
	w   *serving.Worker
}

// getWorker returns a worker bound to the current engine generation,
// draining stale pool entries as it encounters them.
func (h *Handler) getWorker() (*serving.Worker, uint64) {
	eng, gen := h.handle.Load()
	for {
		// Entries are either returned to the pool by putWorker (re-wrapped
		// with their generation) or deliberately dropped here when stale.
		//lint:allow poolreturn stale workers are drained, not leaked
		v := h.workers.Get()
		if v == nil {
			return eng.NewWorker(), gen
		}
		if pw := v.(*poolWorker); pw.gen == gen {
			return pw.w, gen
		}
		// Stale generation: drop the entry (its engine is retired) and
		// keep draining until the pool yields a current one or empties.
	}
}

// putWorker returns a worker to the pool unless a swap has made its
// generation stale, in which case it is dropped so the retired engine's
// page images can be collected.
func (h *Handler) putWorker(w *serving.Worker, gen uint64) {
	if h.handle.Generation() != gen {
		return
	}
	h.workers.Put(&poolWorker{gen: gen, w: w})
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// healthy reports the rolling read-fault rate and the readiness verdict.
// On a single-device backend the verdict is the legacy global-window one;
// with per-shard health it is shard-aware (see nodeHealth).
func (h *Handler) healthy() (rate float64, events int64, ok bool) {
	nh := h.nodeHealth()
	return nh.rate, nh.events, nh.ready
}

// LookupRequest is the /v1/lookup request body.
type LookupRequest struct {
	// Keys to fetch. Duplicates are served once.
	Keys []uint32 `json:"keys"`
}

// LookupResponse is the /v1/lookup response body.
type LookupResponse struct {
	// Embeddings maps each distinct requested key to its vector. Empty
	// vectors are returned by timing-only engines.
	Embeddings map[uint32][]float32 `json:"embeddings"`
	// Degraded is set on a partial result (HTTP 206); FailedKeys then
	// lists the requested keys the engine could not serve within its
	// retry budget.
	Degraded   bool     `json:"degraded,omitempty"`
	FailedKeys []uint32 `json:"failed_keys,omitempty"`
	// Stats reports the work behind this lookup.
	Stats LookupStats `json:"stats"`
}

// LookupStats is the JSON projection of serving.QueryStats.
type LookupStats struct {
	DistinctKeys   int     `json:"distinct_keys"`
	CacheHits      int     `json:"cache_hits"`
	PagesRead      int     `json:"pages_read"`
	PageShare      float64 `json:"page_share"`
	BatchSize      int     `json:"batch_size"`
	Retries        int     `json:"retries,omitempty"`
	ReplicaRescues int     `json:"replica_rescues,omitempty"`
	ShardReroutes  int     `json:"shard_reroutes,omitempty"`
	StoreFallbacks int     `json:"store_fallbacks,omitempty"`
	LatencyNS      int64   `json:"virtual_latency_ns"`
	// Generation is the layout generation that served the lookup; it
	// increments when an online refresh swaps a new layout in.
	Generation uint64 `json:"layout_generation"`
}

const maxLookupKeys = 1 << 16

// wantsBinary reports whether the request negotiated the binary lookup
// encoding (Accept: application/octet-stream; see lease.go for the frame).
func wantsBinary(r *http.Request) bool {
	return r != nil && strings.Contains(r.Header.Get("Accept"), "application/octet-stream")
}

// writeLease encodes a leased lookup result into a pooled body buffer,
// releases the lease (unpinning the backend's completion buffers), and
// writes the response. Ref-backed payloads flow completion buffer → body
// buffer → socket with no intermediate representation.
func (h *Handler) writeLease(w http.ResponseWriter, binary bool, status int, l *respLease) {
	bp := respBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	if binary {
		buf = l.encodeBinary(buf)
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		buf = l.encodeJSON(buf)
		w.Header().Set("Content-Type", "application/json")
	}
	l.release()
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(status)
	w.Write(buf)
	*bp = buf
	respBufPool.Put(bp)
}

func (h *Handler) lookup(w http.ResponseWriter, r *http.Request) {
	if rate, _, ok := h.healthy(); !ok {
		// Shed load, but admit every Nth request as a probe: its
		// observation refreshes the window, so a recovered device brings
		// the server back without an operator in the loop.
		if h.probeSeq.Add(1)%defaultProbeEvery != 0 {
			w.Header().Set("Retry-After", fmt.Sprint(h.retryAfterSec))
			httpError(w, http.StatusServiceUnavailable,
				"device unhealthy: read-fault rate %.2f over recent lookups", rate)
			return
		}
	}
	var req LookupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Keys) == 0 {
		httpError(w, http.StatusBadRequest, "keys must be non-empty")
		return
	}
	if len(req.Keys) > maxLookupKeys {
		httpError(w, http.StatusBadRequest, "too many keys: %d > %d", len(req.Keys), maxLookupKeys)
		return
	}
	if h.coal != nil {
		if h.lookupCoalesced(w, r, req.Keys) {
			return
		}
		// Coalescer shut down mid-request: fall through to isolated serving.
	}
	h.lookupIsolated(w, r, req.Keys)
}

// lookupCoalesced routes the request through the coalescer. It reports
// false only when the coalescer has shut down and the request should be
// served in isolation instead; a full queue is handled here (503).
func (h *Handler) lookupCoalesced(w http.ResponseWriter, r *http.Request, keys []uint32) bool {
	if h.coal.closing.Load() {
		return false
	}
	h.coal.inflight.Add(1)
	defer h.coal.inflight.Add(-1)
	job := lookupJob{keys: keys, done: make(chan lookupOutcome, 1)}
	if !h.coal.submit(job) {
		if h.coal.closing.Load() {
			return false
		}
		w.Header().Set("Retry-After", fmt.Sprint(h.retryAfterSec))
		httpError(w, http.StatusServiceUnavailable,
			"server overloaded: coalesce queue full")
		return true
	}
	var out lookupOutcome
	select {
	case out = <-job.done:
	case <-h.coal.exited:
		// The coalescer exited after accepting the job; it drains its
		// queue before exiting, so the outcome — if any — is already
		// buffered. Otherwise serve in isolation.
		select {
		case out = <-job.done:
		default:
			return false
		}
	}
	if out.err != nil {
		httpError(w, http.StatusUnprocessableEntity, "lookup: %v", out.err)
		return true
	}
	h.writeLease(w, wantsBinary(r), out.status, out.lease)
	return true
}

// lookupIsolated serves one request on a pooled worker with no batching —
// the path taken when coalescing is disabled. The request context rides
// into the engine's recovery loop, so a client that hangs up stops the
// worker from burning retries on its behalf.
func (h *Handler) lookupIsolated(w http.ResponseWriter, r *http.Request, keys []uint32) {
	worker, gen := h.getWorker()
	res, err := worker.LookupCtx(r.Context(), keys)
	if err != nil {
		h.putWorker(worker, gen)
		httpError(w, http.StatusUnprocessableEntity, "lookup: %v", err)
		return
	}
	h.window.Observe(int64(res.Stats.ReadFaults),
		int64(res.Stats.PagesRead+res.Stats.Retries))
	// Snapshot the result (pinning any zero-copy buffer views) before the
	// worker goes back to the pool, where another request may reuse it.
	lease := newLease(res)
	h.putWorker(worker, gen)
	status := http.StatusOK
	if lease.degraded {
		status = http.StatusPartialContent
	}
	h.writeLease(w, wantsBinary(r), status, lease)
}

// StatsResponse is the /v1/stats response body.
type StatsResponse struct {
	Device struct {
		Reads       int64 `json:"reads"`
		BytesRead   int64 `json:"bytes_read"`
		Errors      int64 `json:"errors"`
		Timeouts    int64 `json:"timeouts"`
		Corruptions int64 `json:"corruptions"`
	} `json:"device"`
	// Shards breaks Device down per member drive of a multi-device
	// backend (one entry on a single device), with each shard's peak
	// observed queue depth.
	Shards []ShardStatsEntry `json:"shards"`
	// Tiers aggregates shard activity per device tier (fastest first) on a
	// heterogeneous backend; omitted when the backend has a single tier.
	Tiers []TierStatsEntry `json:"tiers,omitempty"`
	// Coact reports per-query shard-spread depth and the last
	// co-activation placement pass; omitted on one-shard backends.
	Coact    *CoactStatsEntry `json:"coact,omitempty"`
	Recovery struct {
		ReadErrors      int64 `json:"read_errors"`
		Timeouts        int64 `json:"timeouts"`
		Corruptions     int64 `json:"corruptions_detected"`
		Retries         int64 `json:"retries"`
		ReplicaRescues  int64 `json:"replica_rescues"`
		RecoveredKeys   int64 `json:"recovered_keys"`
		DegradedQueries int64 `json:"degraded_queries"`
		FailedKeys      int64 `json:"failed_keys"`
		ShardReroutes   int64 `json:"shard_reroutes"`
		StoreFallbacks  int64 `json:"store_fallbacks"`
	} `json:"recovery"`
	Health struct {
		Ready        bool    `json:"ready"`
		ErrorRate    float64 `json:"error_rate"`
		WindowEvents int64   `json:"window_events"`
		// Shard-aware verdict detail; zero values on single-device
		// backends, which keep the legacy global-window verdict.
		DeadShards    int     `json:"dead_shards,omitempty"`
		LiveErrorRate float64 `json:"live_error_rate,omitempty"`
	} `json:"health"`
	// Scrub and Rebuild report admin-triggered repair activity on this
	// server (409-guarded; progress gauges update while one runs).
	Scrub struct {
		Enabled       bool           `json:"enabled"`
		Running       bool           `json:"running"`
		Sweeps        int64          `json:"sweeps"`
		Errors        int64          `json:"errors"`
		ProgressPages int64          `json:"progress_pages"`
		ProgressTotal int64          `json:"progress_total"`
		LatentSlots   int64          `json:"latent_slots_total"`
		RepairedSlots int64          `json:"repaired_slots_total"`
		Last          *ScrubResponse `json:"last,omitempty"`
	} `json:"scrub"`
	Rebuild struct {
		Enabled       bool             `json:"enabled"`
		Running       bool             `json:"running"`
		Rebuilds      int64            `json:"rebuilds"`
		Errors        int64            `json:"errors"`
		ProgressPages int64            `json:"progress_pages"`
		ProgressTotal int64            `json:"progress_total"`
		LastMTTRNS    int64            `json:"last_mttr_ns"`
		Last          *RebuildResponse `json:"last,omitempty"`
	} `json:"rebuild"`
	Cache *CacheStatsEntry `json:"cache,omitempty"`
	// Shadow is the ghost-cache miss-rate curve (one point per simulated
	// DRAM capacity); present only when the engine runs shadow caches.
	Shadow  []ShadowPointEntry `json:"shadow,omitempty"`
	Latency struct {
		Count  int     `json:"count"`
		MeanNS float64 `json:"mean_ns"`
		P50NS  int64   `json:"p50_ns"`
		P99NS  int64   `json:"p99_ns"`
	} `json:"virtual_latency"`
	MeanValidPerRead float64 `json:"mean_valid_per_read"`
	// Refresh reports online layout-refresh activity. Generation and Swaps
	// advance even when refreshes are driven externally (through the
	// shared handle) rather than by this server's loop or endpoint.
	Refresh struct {
		Enabled        bool   `json:"enabled"`
		Generation     uint64 `json:"layout_generation"`
		Swaps          int64  `json:"engine_swaps"`
		Refreshes      int64  `json:"refreshes"`
		Errors         int64  `json:"errors"`
		LastDurationNS int64  `json:"last_duration_ns"`
		PendingQueries int64  `json:"pending_queries"`
		// Valid-embeddings-per-read means either side of the most recent
		// swap: Before is frozen at swap time, After accumulates on the
		// live engine. After > Before means the refresh paid off.
		ValidPerReadBefore float64 `json:"valid_per_read_before_swap"`
		ValidPerReadAfter  float64 `json:"valid_per_read_after_swap"`
	} `json:"refresh"`
	// Coalescer reports micro-batching activity; Enabled false (and zero
	// counters) when the server serves every request in isolation.
	Coalescer CoalescerStats `json:"coalescer"`
}

// ShardStatsEntry is one device shard's slice of /v1/stats: its share of
// the read/fault activity plus the highest per-worker queue depth any
// serving worker observed on its queue pair to that shard.
type ShardStatsEntry struct {
	Shard int `json:"shard"`
	// Profile names the shard's device model; Tier is its tier rank
	// (0 = fastest) on a tiered backend, 0 otherwise.
	Profile     string `json:"profile,omitempty"`
	Tier        int    `json:"tier"`
	Reads       int64  `json:"reads"`
	BytesRead   int64  `json:"bytes_read"`
	Errors      int64  `json:"errors"`
	Timeouts    int64  `json:"timeouts"`
	Corruptions int64  `json:"corruptions"`
	QueuePeak   int64  `json:"queue_peak"`
	// Health state machine detail, present when the backend tracks
	// per-shard health (a multi-device array).
	State        string  `json:"state,omitempty"`
	FaultRate    float64 `json:"fault_rate,omitempty"`
	LatentErrors int64   `json:"latent_errors,omitempty"`
}

// TierStatsEntry is one device tier's aggregate slice of /v1/stats.
type TierStatsEntry struct {
	Tier    int    `json:"tier"`
	Profile string `json:"profile"`
	Shards  []int  `json:"shards"`
	// Pages is how many of the current layout's pages live on this tier.
	Pages     int   `json:"pages"`
	Reads     int64 `json:"reads"`
	BytesRead int64 `json:"bytes_read"`
	// ReadShare is this tier's fraction of all backend reads.
	ReadShare float64 `json:"read_share"`
	// RatedBandwidth sums the member shards' rated bandwidth (bytes/s).
	RatedBandwidth float64 `json:"rated_bandwidth"`
}

// ShadowPointEntry is one simulated capacity of the ghost-cache
// miss-rate curve on /v1/stats.
type ShadowPointEntry struct {
	Capacity int     `json:"capacity"`
	Hits     int64   `json:"hits"`
	Accesses int64   `json:"accesses"`
	HitRate  float64 `json:"hit_rate"`
}

// CacheStatsEntry is the DRAM cache's slice of /v1/stats, including
// per-segment occupancy and churn under the segmented policy and the
// pin-set counters.
type CacheStatsEntry struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	Entries   int     `json:"entries"`
	// Segment detail: probation/protected occupancy and eviction split,
	// with promotion/demotion churn (zero protected under plain LRU).
	ProbationEntries   int   `json:"probation_entries"`
	ProtectedEntries   int   `json:"protected_entries"`
	ProbationEvictions int64 `json:"probation_evictions"`
	ProtectedEvictions int64 `json:"protected_evictions"`
	Promotions         int64 `json:"promotions"`
	Demotions          int64 `json:"demotions"`
	// Pin-set detail: permanently resident entries above the LRU.
	PinnedEntries int   `json:"pinned_entries"`
	PinnedHits    int64 `json:"pinned_hits"`
}

// shardStats snapshots per-shard device counters and the current engine's
// per-shard queue-depth peaks.
func (h *Handler) shardStats(eng *serving.Engine) []ShardStatsEntry {
	be := h.curBackend()
	n := be.NumShards()
	peaks := eng.ShardQueuePeaks()
	tr, _ := be.(ssd.TierReporter)
	out := make([]ShardStatsEntry, n)
	for i := 0; i < n; i++ {
		sh := be.Shard(i)
		ds := sh.Stats()
		out[i] = ShardStatsEntry{
			Shard:       i,
			Profile:     sh.Profile().Name,
			Reads:       ds.Reads,
			BytesRead:   ds.BytesRead,
			Errors:      ds.Errors,
			Timeouts:    ds.Timeouts,
			Corruptions: ds.Corruptions,
		}
		if tr != nil {
			out[i].Tier = tr.TierOf(i)
		}
		if i < len(peaks) {
			out[i].QueuePeak = peaks[i]
		}
	}
	if hr, ok := be.(ssd.HealthReporter); ok {
		for i := range out {
			info := hr.ShardHealth(i)
			out[i].State = info.State.String()
			out[i].FaultRate = info.FaultRate
			out[i].LatentErrors = info.LatentErrors
		}
	}
	return out
}

// tierStats aggregates shard activity per device tier of a heterogeneous
// backend, nil when the backend has a single tier. Page occupancy comes
// from the engine's current layout: page p stripes to shard p mod n.
func (h *Handler) tierStats(eng *serving.Engine) []TierStatsEntry {
	be := h.curBackend()
	tr, ok := be.(ssd.TierReporter)
	if !ok || tr.NumTiers() < 2 {
		return nil
	}
	n := be.NumShards()
	out := make([]TierStatsEntry, tr.NumTiers())
	var totalReads int64
	for t := range out {
		info := tr.Tier(t)
		out[t] = TierStatsEntry{Tier: t, Profile: info.Profile.Name, Shards: info.Shards}
		for _, s := range info.Shards {
			ds := be.Shard(s).Stats()
			out[t].Reads += ds.Reads
			out[t].BytesRead += ds.BytesRead
			out[t].RatedBandwidth += be.Shard(s).Profile().Bandwidth
			totalReads += ds.Reads
		}
	}
	for p := range eng.Layout().Pages {
		out[tr.TierOf(p%n)].Pages++
	}
	if totalReads > 0 {
		for t := range out {
			out[t].ReadShare = float64(out[t].Reads) / float64(totalReads)
		}
	}
	return out
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request) {
	var resp StatsResponse
	ds := h.curBackend().Stats()
	resp.Device.Reads = ds.Reads
	resp.Device.BytesRead = ds.BytesRead
	resp.Device.Errors = ds.Errors
	resp.Device.Timeouts = ds.Timeouts
	resp.Device.Corruptions = ds.Corruptions
	resp.Shards = h.shardStats(h.handle.Engine())
	resp.Tiers = h.tierStats(h.handle.Engine())
	resp.Coact = h.coactStats(h.handle.Engine())
	// Recovery counters aggregate across engine swaps (retired engines'
	// totals are folded in) so they stay monotonic for pollers.
	rec := h.handle.Totals()
	resp.Recovery.ReadErrors = rec.ReadErrors
	resp.Recovery.Timeouts = rec.Timeouts
	resp.Recovery.Corruptions = rec.Corruptions
	resp.Recovery.Retries = rec.Retries
	resp.Recovery.ReplicaRescues = rec.ReplicaRescues
	resp.Recovery.RecoveredKeys = rec.RecoveredKeys
	resp.Recovery.DegradedQueries = rec.DegradedQueries
	resp.Recovery.FailedKeys = rec.FailedKeys
	resp.Recovery.ShardReroutes = rec.ShardReroutes
	resp.Recovery.StoreFallbacks = rec.StoreFallbacks
	nh := h.nodeHealth()
	resp.Health.Ready = nh.ready
	resp.Health.ErrorRate = nh.rate
	resp.Health.WindowEvents = nh.events
	resp.Health.DeadShards = nh.deadShards
	resp.Health.LiveErrorRate = nh.liveRate
	resp.Scrub.Enabled = h.scrubber != nil
	resp.Scrub.Running = h.scrubRunning.Load()
	resp.Scrub.Sweeps = h.scrubs.Load()
	resp.Scrub.Errors = h.scrubErrors.Load()
	resp.Scrub.ProgressPages = h.scrubScanned.Load()
	resp.Scrub.ProgressTotal = h.scrubTotal.Load()
	resp.Scrub.LatentSlots = h.scrubLatent.Load()
	resp.Scrub.RepairedSlots = h.scrubRepaired.Load()
	resp.Rebuild.Enabled = h.shardAdmin != nil
	resp.Rebuild.Running = h.rebuildRunning.Load()
	resp.Rebuild.Rebuilds = h.rebuilds.Load()
	resp.Rebuild.Errors = h.rebuildErrors.Load()
	resp.Rebuild.ProgressPages = h.rebuildCopied.Load()
	resp.Rebuild.ProgressTotal = h.rebuildTotal.Load()
	resp.Rebuild.LastMTTRNS = h.lastMTTRNS.Load()
	h.adminMu.Lock()
	resp.Scrub.Last = h.lastScrub
	resp.Rebuild.Last = h.lastRebuild
	h.adminMu.Unlock()
	eng := h.handle.Engine()
	if c := eng.Cache(); c != nil {
		cs := c.Stats()
		resp.Cache = &CacheStatsEntry{
			Hits:               cs.Hits,
			Misses:             cs.Misses,
			Evictions:          cs.Evictions,
			HitRate:            cs.HitRate(),
			Entries:            c.Len(),
			ProbationEntries:   cs.ProbationLen,
			ProtectedEntries:   cs.ProtectedLen,
			ProbationEvictions: cs.ProbationEvictions,
			ProtectedEvictions: cs.ProtectedEvictions,
			Promotions:         cs.Promotions,
			Demotions:          cs.Demotions,
			PinnedEntries:      cs.PinnedEntries,
			PinnedHits:         cs.PinnedHits,
		}
	}
	if sh := eng.Shadow(); sh != nil {
		for _, p := range sh.Curve() {
			resp.Shadow = append(resp.Shadow, ShadowPointEntry{
				Capacity: p.Capacity, Hits: p.Hits, Accesses: p.Accesses, HitRate: p.HitRate,
			})
		}
	}
	ls := eng.Latency.Snapshot()
	resp.Latency.Count = ls.Count
	resp.Latency.MeanNS = ls.MeanNS
	resp.Latency.P50NS = ls.P50NS
	resp.Latency.P99NS = ls.P99NS
	resp.MeanValidPerRead = eng.ValidPerRead.Mean()
	resp.Refresh.Enabled = h.refreshSrc != nil
	resp.Refresh.Generation = h.handle.Generation()
	resp.Refresh.Swaps = h.handle.Swaps()
	resp.Refresh.Refreshes = h.refreshes.Load()
	resp.Refresh.Errors = h.refreshErrors.Load()
	resp.Refresh.LastDurationNS = h.lastRefreshNS.Load()
	if h.refreshSrc != nil {
		resp.Refresh.PendingQueries = h.refreshSrc.PendingQueries()
	}
	resp.Refresh.ValidPerReadBefore = h.handle.ValidPerReadBefore()
	resp.Refresh.ValidPerReadAfter = eng.ValidPerRead.Mean()
	if h.coal != nil {
		resp.Coalescer = h.coal.stats()
	}
	writeJSON(w, resp)
}

// metrics renders the same counters in Prometheus text exposition format
// for scrape-based monitoring.
func (h *Handler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	be := h.curBackend()
	ds := be.Stats()
	fmt.Fprintf(w, "# TYPE maxembed_device_reads_total counter\nmaxembed_device_reads_total %d\n", ds.Reads)
	fmt.Fprintf(w, "# TYPE maxembed_device_bytes_read_total counter\nmaxembed_device_bytes_read_total %d\n", ds.BytesRead)
	fmt.Fprintf(w, "# TYPE maxembed_device_errors_total counter\nmaxembed_device_errors_total %d\n", ds.Errors)
	fmt.Fprintf(w, "# TYPE maxembed_device_timeouts_total counter\nmaxembed_device_timeouts_total %d\n", ds.Timeouts)
	fmt.Fprintf(w, "# TYPE maxembed_device_corruptions_total counter\nmaxembed_device_corruptions_total %d\n", ds.Corruptions)
	shards := h.shardStats(h.handle.Engine())
	fmt.Fprintf(w, "# TYPE maxembed_shard_reads_total counter\n")
	for _, s := range shards {
		fmt.Fprintf(w, "maxembed_shard_reads_total{shard=\"%d\"} %d\n", s.Shard, s.Reads)
	}
	fmt.Fprintf(w, "# TYPE maxembed_shard_errors_total counter\n")
	for _, s := range shards {
		fmt.Fprintf(w, "maxembed_shard_errors_total{shard=\"%d\"} %d\n", s.Shard, s.Errors)
	}
	fmt.Fprintf(w, "# TYPE maxembed_shard_timeouts_total counter\n")
	for _, s := range shards {
		fmt.Fprintf(w, "maxembed_shard_timeouts_total{shard=\"%d\"} %d\n", s.Shard, s.Timeouts)
	}
	fmt.Fprintf(w, "# TYPE maxembed_shard_corruptions_total counter\n")
	for _, s := range shards {
		fmt.Fprintf(w, "maxembed_shard_corruptions_total{shard=\"%d\"} %d\n", s.Shard, s.Corruptions)
	}
	fmt.Fprintf(w, "# TYPE maxembed_shard_queue_peak gauge\n")
	for _, s := range shards {
		fmt.Fprintf(w, "maxembed_shard_queue_peak{shard=\"%d\"} %d\n", s.Shard, s.QueuePeak)
	}
	if tiers := h.tierStats(h.handle.Engine()); tiers != nil {
		fmt.Fprintf(w, "# TYPE maxembed_tier_reads_total counter\n")
		for _, t := range tiers {
			fmt.Fprintf(w, "maxembed_tier_reads_total{tier=\"%d\",profile=%q} %d\n", t.Tier, t.Profile, t.Reads)
		}
		fmt.Fprintf(w, "# TYPE maxembed_tier_bytes_read_total counter\n")
		for _, t := range tiers {
			fmt.Fprintf(w, "maxembed_tier_bytes_read_total{tier=\"%d\",profile=%q} %d\n", t.Tier, t.Profile, t.BytesRead)
		}
		fmt.Fprintf(w, "# TYPE maxembed_tier_pages gauge\n")
		for _, t := range tiers {
			fmt.Fprintf(w, "maxembed_tier_pages{tier=\"%d\",profile=%q} %d\n", t.Tier, t.Profile, t.Pages)
		}
		fmt.Fprintf(w, "# TYPE maxembed_tier_read_share gauge\n")
		for _, t := range tiers {
			fmt.Fprintf(w, "maxembed_tier_read_share{tier=\"%d\",profile=%q} %g\n", t.Tier, t.Profile, t.ReadShare)
		}
	}
	h.coactMetrics(w, h.handle.Engine())
	if lr, ok := be.(ssd.ReadLatencyReporter); ok {
		// Measured (wall-clock) per-shard read latency of a real-I/O
		// backend, in Prometheus cumulative-histogram form.
		fmt.Fprintf(w, "# TYPE maxembed_backend_read_latency_seconds histogram\n")
		for s := 0; s < be.NumShards(); s++ {
			snap := lr.ShardReadLatency(s)
			var cum int64
			for i, c := range snap.Counts {
				cum += c
				if i < len(snap.UpperNS) {
					fmt.Fprintf(w, "maxembed_backend_read_latency_seconds_bucket{shard=\"%d\",le=\"%g\"} %d\n",
						s, float64(snap.UpperNS[i])/1e9, cum)
				} else {
					fmt.Fprintf(w, "maxembed_backend_read_latency_seconds_bucket{shard=\"%d\",le=\"+Inf\"} %d\n", s, cum)
				}
			}
			fmt.Fprintf(w, "maxembed_backend_read_latency_seconds_sum{shard=\"%d\"} %g\n", s, float64(snap.SumNS)/1e9)
			fmt.Fprintf(w, "maxembed_backend_read_latency_seconds_count{shard=\"%d\"} %d\n", s, snap.Count)
		}
	}
	if hr, ok := be.(ssd.HealthReporter); ok {
		n := be.NumShards()
		// Shard state machine position: 0 healthy, 1 suspect, 2 failed,
		// 3 rebuilding.
		fmt.Fprintf(w, "# TYPE maxembed_shard_state gauge\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, "maxembed_shard_state{shard=\"%d\"} %d\n", i, int(hr.ShardState(i)))
		}
		fmt.Fprintf(w, "# TYPE maxembed_shard_fault_rate gauge\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, "maxembed_shard_fault_rate{shard=\"%d\"} %g\n", i, hr.ShardHealth(i).FaultRate)
		}
		fmt.Fprintf(w, "# TYPE maxembed_shard_latent_errors_total counter\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, "maxembed_shard_latent_errors_total{shard=\"%d\"} %d\n", i, hr.ShardHealth(i).LatentErrors)
		}
	}
	rec := h.handle.Totals()
	fmt.Fprintf(w, "# TYPE maxembed_read_errors_total counter\nmaxembed_read_errors_total %d\n", rec.ReadErrors)
	fmt.Fprintf(w, "# TYPE maxembed_corruptions_detected_total counter\nmaxembed_corruptions_detected_total %d\n", rec.Corruptions)
	fmt.Fprintf(w, "# TYPE maxembed_read_retries_total counter\nmaxembed_read_retries_total %d\n", rec.Retries)
	fmt.Fprintf(w, "# TYPE maxembed_replica_rescues_total counter\nmaxembed_replica_rescues_total %d\n", rec.ReplicaRescues)
	fmt.Fprintf(w, "# TYPE maxembed_recovered_keys_total counter\nmaxembed_recovered_keys_total %d\n", rec.RecoveredKeys)
	fmt.Fprintf(w, "# TYPE maxembed_degraded_queries_total counter\nmaxembed_degraded_queries_total %d\n", rec.DegradedQueries)
	fmt.Fprintf(w, "# TYPE maxembed_failed_keys_total counter\nmaxembed_failed_keys_total %d\n", rec.FailedKeys)
	fmt.Fprintf(w, "# TYPE maxembed_shard_reroutes_total counter\nmaxembed_shard_reroutes_total %d\n", rec.ShardReroutes)
	fmt.Fprintf(w, "# TYPE maxembed_store_fallbacks_total counter\nmaxembed_store_fallbacks_total %d\n", rec.StoreFallbacks)
	nh := h.nodeHealth()
	fmt.Fprintf(w, "# TYPE maxembed_read_error_rate gauge\nmaxembed_read_error_rate %g\n", nh.rate)
	fmt.Fprintf(w, "# TYPE maxembed_ready gauge\nmaxembed_ready %d\n", b2i(nh.ready))
	if nh.shards != nil {
		fmt.Fprintf(w, "# TYPE maxembed_dead_shards gauge\nmaxembed_dead_shards %d\n", nh.deadShards)
		fmt.Fprintf(w, "# TYPE maxembed_live_error_rate gauge\nmaxembed_live_error_rate %g\n", nh.liveRate)
	}
	fmt.Fprintf(w, "# TYPE maxembed_scrub_sweeps_total counter\nmaxembed_scrub_sweeps_total %d\n", h.scrubs.Load())
	fmt.Fprintf(w, "# TYPE maxembed_scrub_errors_total counter\nmaxembed_scrub_errors_total %d\n", h.scrubErrors.Load())
	fmt.Fprintf(w, "# TYPE maxembed_scrub_running gauge\nmaxembed_scrub_running %d\n", b2i(h.scrubRunning.Load()))
	fmt.Fprintf(w, "# TYPE maxembed_scrub_pages_scanned gauge\nmaxembed_scrub_pages_scanned %d\n", h.scrubScanned.Load())
	fmt.Fprintf(w, "# TYPE maxembed_scrub_latent_slots_total counter\nmaxembed_scrub_latent_slots_total %d\n", h.scrubLatent.Load())
	fmt.Fprintf(w, "# TYPE maxembed_scrub_repaired_slots_total counter\nmaxembed_scrub_repaired_slots_total %d\n", h.scrubRepaired.Load())
	fmt.Fprintf(w, "# TYPE maxembed_scrub_unrepairable_slots_total counter\nmaxembed_scrub_unrepairable_slots_total %d\n", h.scrubUnrepairable.Load())
	fmt.Fprintf(w, "# TYPE maxembed_rebuild_total counter\nmaxembed_rebuild_total %d\n", h.rebuilds.Load())
	fmt.Fprintf(w, "# TYPE maxembed_rebuild_errors_total counter\nmaxembed_rebuild_errors_total %d\n", h.rebuildErrors.Load())
	fmt.Fprintf(w, "# TYPE maxembed_rebuild_running gauge\nmaxembed_rebuild_running %d\n", b2i(h.rebuildRunning.Load()))
	fmt.Fprintf(w, "# TYPE maxembed_rebuild_pages_copied gauge\nmaxembed_rebuild_pages_copied %d\n", h.rebuildCopied.Load())
	fmt.Fprintf(w, "# TYPE maxembed_rebuild_last_mttr_ns gauge\nmaxembed_rebuild_last_mttr_ns %d\n", h.lastMTTRNS.Load())
	eng := h.handle.Engine()
	if c := eng.Cache(); c != nil {
		cs := c.Stats()
		fmt.Fprintf(w, "# TYPE maxembed_cache_hits_total counter\nmaxembed_cache_hits_total %d\n", cs.Hits)
		fmt.Fprintf(w, "# TYPE maxembed_cache_misses_total counter\nmaxembed_cache_misses_total %d\n", cs.Misses)
		fmt.Fprintf(w, "# TYPE maxembed_cache_entries gauge\nmaxembed_cache_entries %d\n", c.Len())
		fmt.Fprintf(w, "# TYPE maxembed_cache_probation_entries gauge\nmaxembed_cache_probation_entries %d\n", cs.ProbationLen)
		fmt.Fprintf(w, "# TYPE maxembed_cache_protected_entries gauge\nmaxembed_cache_protected_entries %d\n", cs.ProtectedLen)
		fmt.Fprintf(w, "# TYPE maxembed_cache_probation_evictions_total counter\nmaxembed_cache_probation_evictions_total %d\n", cs.ProbationEvictions)
		fmt.Fprintf(w, "# TYPE maxembed_cache_protected_evictions_total counter\nmaxembed_cache_protected_evictions_total %d\n", cs.ProtectedEvictions)
		fmt.Fprintf(w, "# TYPE maxembed_cache_promotions_total counter\nmaxembed_cache_promotions_total %d\n", cs.Promotions)
		fmt.Fprintf(w, "# TYPE maxembed_cache_demotions_total counter\nmaxembed_cache_demotions_total %d\n", cs.Demotions)
		fmt.Fprintf(w, "# TYPE maxembed_cache_pinned_entries gauge\nmaxembed_cache_pinned_entries %d\n", cs.PinnedEntries)
		fmt.Fprintf(w, "# TYPE maxembed_cache_pinned_hits_total counter\nmaxembed_cache_pinned_hits_total %d\n", cs.PinnedHits)
	}
	ls := eng.Latency.Snapshot()
	fmt.Fprintf(w, "# TYPE maxembed_lookups_total counter\nmaxembed_lookups_total %d\n", rec.Lookups)
	fmt.Fprintf(w, "# TYPE maxembed_lookup_latency_p99_ns gauge\nmaxembed_lookup_latency_p99_ns %d\n", ls.P99NS)
	fmt.Fprintf(w, "# TYPE maxembed_valid_per_read gauge\nmaxembed_valid_per_read %g\n", eng.ValidPerRead.Mean())
	fmt.Fprintf(w, "# TYPE maxembed_layout_generation gauge\nmaxembed_layout_generation %d\n", h.handle.Generation())
	fmt.Fprintf(w, "# TYPE maxembed_engine_swaps_total counter\nmaxembed_engine_swaps_total %d\n", h.handle.Swaps())
	fmt.Fprintf(w, "# TYPE maxembed_refresh_total counter\nmaxembed_refresh_total %d\n", h.refreshes.Load())
	fmt.Fprintf(w, "# TYPE maxembed_refresh_errors_total counter\nmaxembed_refresh_errors_total %d\n", h.refreshErrors.Load())
	fmt.Fprintf(w, "# TYPE maxembed_refresh_duration_seconds gauge\nmaxembed_refresh_duration_seconds %g\n", float64(h.lastRefreshNS.Load())/1e9)
	fmt.Fprintf(w, "# TYPE maxembed_valid_per_read_before_swap gauge\nmaxembed_valid_per_read_before_swap %g\n", h.handle.ValidPerReadBefore())
	if h.coal != nil {
		cs := h.coal.stats()
		fmt.Fprintf(w, "# TYPE maxembed_coalesce_batches_total counter\nmaxembed_coalesce_batches_total %d\n", cs.Batches)
		fmt.Fprintf(w, "# TYPE maxembed_coalesce_bypass_total counter\nmaxembed_coalesce_bypass_total %d\n", cs.Bypasses)
		fmt.Fprintf(w, "# TYPE maxembed_coalesce_requests_total counter\nmaxembed_coalesce_requests_total %d\n", cs.Coalesced)
		fmt.Fprintf(w, "# TYPE maxembed_coalesce_shed_total counter\nmaxembed_coalesce_shed_total %d\n", cs.Shed)
		fmt.Fprintf(w, "# TYPE maxembed_coalesce_batch_size_mean gauge\nmaxembed_coalesce_batch_size_mean %g\n", cs.MeanBatchSize)
		fmt.Fprintf(w, "# TYPE maxembed_coalesce_wait_p99_ns gauge\nmaxembed_coalesce_wait_p99_ns %d\n", cs.WaitP99NS)
		// Cumulative batch-size histogram in exposition format.
		fmt.Fprintf(w, "# TYPE maxembed_coalesce_batch_size histogram\n")
		var cum int64
		for sz := 1; sz <= h.coal.maxBatch; sz++ {
			cum += h.coal.batchSizes.Bucket(sz)
			fmt.Fprintf(w, "maxembed_coalesce_batch_size_bucket{le=%q} %d\n", fmt.Sprint(sz), cum)
		}
		fmt.Fprintf(w, "maxembed_coalesce_batch_size_bucket{le=\"+Inf\"} %d\n", cs.Batches)
		fmt.Fprintf(w, "maxembed_coalesce_batch_size_count %d\n", cs.Batches)
	}
}

// health is a real readiness probe: it reports 503 while the node is
// unhealthy, so load balancers rotate the instance out until it clears.
// With a multi-shard backend the verdict is shard-aware — a minority of
// dead shards (the engine routes around them) does not flip the node —
// and the body carries per-shard fault fractions beside the global
// window so an operator can tell a sick drive from a sick node.
func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	nh := h.nodeHealth()
	if !nh.ready {
		w.Header().Set("Retry-After", fmt.Sprint(h.retryAfterSec))
		body := map[string]any{
			"status":        "unhealthy",
			"error_rate":    nh.rate,
			"window_events": nh.events,
		}
		if nh.shards != nil {
			body["shards"] = shardHealthEntries(nh.shards)
			body["dead_shards"] = nh.deadShards
			body["live_error_rate"] = nh.liveRate
		}
		writeJSONStatus(w, http.StatusServiceUnavailable, body)
		return
	}
	if nh.shards != nil {
		writeJSON(w, map[string]any{
			"status":          "ok",
			"error_rate":      nh.rate,
			"window_events":   nh.events,
			"shards":          shardHealthEntries(nh.shards),
			"dead_shards":     nh.deadShards,
			"live_error_rate": nh.liveRate,
		})
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing recoverable.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
