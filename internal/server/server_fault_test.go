package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"maxembed/internal/serving"
	"maxembed/internal/ssd"
)

// pageFaultModel injects a fixed, persistent fault on selected pages —
// dead-block semantics: re-reads of a listed page always fail the same
// way, so only a replica rescue (or degradation) resolves it.
type pageFaultModel struct {
	faults map[ssd.PageID]ssd.Fault
}

func (m pageFaultModel) Judge(_ int64, p ssd.PageID) ssd.Fault { return m.faults[p] }

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if v != nil {
		if err := json.NewDecoder(r.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return r
}

// TestLookupPartialContent kills the only candidate page of one key in an
// unreplicated layout and checks the HTTP surface degrades: 206 with the
// key in failed_keys, healthy keys still served, counters visible in
// /v1/stats.
func TestLookupPartialContent(t *testing.T) {
	s := newTestStack(t, 0, nil) // SHP, no replicas
	bad := serving.Key(5)
	cands := s.eng.Index().Candidates(bad)
	if len(cands) != 1 {
		t.Fatalf("expected single candidate in unreplicated layout, got %d", len(cands))
	}
	// A healthy key living on a different page.
	healthy := serving.Key(0)
	for k := serving.Key(0); k < 800; k++ {
		if c := s.eng.Index().Candidates(k); len(c) == 1 && c[0] != cands[0] {
			healthy = k
			break
		}
	}
	s.dev.SetFaultModel(pageFaultModel{faults: map[ssd.PageID]ssd.Fault{
		ssd.PageID(cands[0]): {Err: ssd.ErrReadFailed},
	}})
	srv := s.serve(t)

	resp, lr := postLookup(t, srv.URL, []uint32{uint32(bad), uint32(healthy)})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206", resp.StatusCode)
	}
	if !lr.Degraded {
		t.Error("degraded flag not set on partial response")
	}
	if len(lr.FailedKeys) != 1 || lr.FailedKeys[0] != uint32(bad) {
		t.Errorf("failed_keys = %v, want [%d]", lr.FailedKeys, bad)
	}
	if _, ok := lr.Embeddings[uint32(bad)]; ok {
		t.Error("failed key present in embeddings")
	}
	if v, ok := lr.Embeddings[uint32(healthy)]; !ok || len(v) != testDim {
		t.Errorf("healthy key not served alongside the failure: ok=%v len=%d", ok, len(v))
	}
	if lr.Stats.Retries == 0 {
		t.Error("no retries reported before degrading")
	}

	var sr StatsResponse
	getJSON(t, srv.URL+"/v1/stats", &sr)
	if sr.Recovery.FailedKeys != 1 || sr.Recovery.DegradedQueries != 1 {
		t.Errorf("recovery failed_keys/degraded = %d/%d, want 1/1",
			sr.Recovery.FailedKeys, sr.Recovery.DegradedQueries)
	}
	if sr.Recovery.ReadErrors == 0 || sr.Recovery.Retries == 0 {
		t.Errorf("recovery counters empty: %+v", sr.Recovery)
	}
	if sr.Device.Errors == 0 {
		t.Error("device errors not surfaced in stats")
	}
}

// TestLookupReplicaRescueIsTransparent breaks all but one candidate page
// of a replicated key and checks the client sees a plain 200 — the rescue
// shows up only in the per-query stats.
func TestLookupReplicaRescueIsTransparent(t *testing.T) {
	s := newTestStack(t, 0.4, nil)
	var key serving.Key
	var cands []ssd.PageID
	for k := serving.Key(0); k < 800; k++ {
		if c := s.eng.Index().Candidates(k); len(c) >= 2 {
			key = k
			for _, p := range c {
				cands = append(cands, ssd.PageID(p))
			}
			break
		}
	}
	if len(cands) < 2 {
		t.Fatal("fixture has no replicated key")
	}
	m := pageFaultModel{faults: map[ssd.PageID]ssd.Fault{}}
	for _, p := range cands[:len(cands)-1] {
		m.faults[p] = ssd.Fault{Err: ssd.ErrReadFailed}
	}
	s.dev.SetFaultModel(m)
	srv := s.serve(t)

	resp, lr := postLookup(t, srv.URL, []uint32{uint32(key)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (rescue should be transparent)", resp.StatusCode)
	}
	if lr.Degraded || len(lr.FailedKeys) != 0 {
		t.Errorf("degraded response despite replica: %+v", lr)
	}
	if lr.Stats.ReplicaRescues != 1 {
		t.Errorf("replica_rescues = %d, want 1", lr.Stats.ReplicaRescues)
	}
	want := s.syn.Vector(uint32(key), nil)
	got := lr.Embeddings[uint32(key)]
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("rescued vector wrong at element %d", j)
		}
	}
}

// TestUnhealthyShedsAndRecovers drives the rolling error-rate window over
// its threshold, then checks load shedding (503 + Retry-After with every
// Nth probe admitted), the readiness probe, the exported gauges, and that
// clearing the fault brings the server back through probe traffic alone.
func TestUnhealthyShedsAndRecovers(t *testing.T) {
	s := newTestStack(t, 0, nil)
	s.dev.SetFaultModel(ssd.NewInjector(ssd.InjectorConfig{Seed: 1, ReadErrorProb: 1}))
	srv := s.serve(t,
		WithHealthWindow(16),
		WithUnhealthyThreshold(0.25, 4),
		WithRetryAfter(7),
	)

	// Cold window: the first request is admitted and fails everything.
	keys := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	resp, lr := postLookup(t, srv.URL, keys)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("first lookup status = %d, want 206", resp.StatusCode)
	}
	if !lr.Degraded || len(lr.FailedKeys) == 0 {
		t.Fatal("first lookup not degraded despite 100% read errors")
	}

	// Readiness probe flips.
	r := getJSON(t, srv.URL+"/healthz", nil)
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status = %d, want 503", r.StatusCode)
	}
	if ra := r.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("healthz Retry-After = %q, want \"7\"", ra)
	}
	var hz struct {
		Status       string  `json:"status"`
		ErrorRate    float64 `json:"error_rate"`
		WindowEvents int64   `json:"window_events"`
	}
	getJSON(t, srv.URL+"/healthz", &hz)
	if hz.Status != "unhealthy" || hz.ErrorRate <= 0.25 || hz.WindowEvents < 4 {
		t.Errorf("healthz body = %+v", hz)
	}

	// Lookups shed with 503 + Retry-After; every 8th is admitted as a
	// probe (probeSeq counts only while unhealthy, so requests 1..7 shed
	// and request 8 goes through).
	var shed, admitted int
	for i := 1; i <= 8; i++ {
		resp, _ := postLookup(t, srv.URL, keys)
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			shed++
			if ra := resp.Header.Get("Retry-After"); ra != "7" {
				t.Errorf("shed response Retry-After = %q, want \"7\"", ra)
			}
		case http.StatusPartialContent:
			admitted++
		default:
			t.Fatalf("request %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	if shed != 7 || admitted != 1 {
		t.Errorf("shed/admitted = %d/%d, want 7/1", shed, admitted)
	}

	// Unhealthy state is visible on the scrape endpoints.
	var sr StatsResponse
	getJSON(t, srv.URL+"/v1/stats", &sr)
	if sr.Health.Ready {
		t.Error("/v1/stats reports ready while unhealthy")
	}
	if sr.Health.ErrorRate <= 0.25 {
		t.Errorf("/v1/stats error_rate = %v", sr.Health.ErrorRate)
	}
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "maxembed_ready 0") {
		t.Error("/metrics missing maxembed_ready 0 while unhealthy")
	}

	// Device recovers: probe traffic alone must refresh the window and
	// re-open the server with no operator action.
	s.dev.SetFaultModel(nil)
	recovered := false
	for i := 0; i < 200; i++ {
		postLookup(t, srv.URL, keys)
		if r := getJSON(t, srv.URL+"/healthz", nil); r.StatusCode == http.StatusOK {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("server never recovered after the fault cleared")
	}
	resp, lr = postLookup(t, srv.URL, keys)
	if resp.StatusCode != http.StatusOK || lr.Degraded {
		t.Errorf("post-recovery lookup: status %d degraded %v", resp.StatusCode, lr.Degraded)
	}
}

// TestMetricsExposeFaultCounters checks every new counter/gauge name is
// present in the Prometheus exposition, even at zero.
func TestMetricsExposeFaultCounters(t *testing.T) {
	srv, _, tr := newTestServer(t)
	if resp, _ := postLookup(t, srv.URL, tr.Queries[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d", resp.StatusCode)
	}
	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{
		"maxembed_device_errors_total",
		"maxembed_device_timeouts_total",
		"maxembed_device_corruptions_total",
		"maxembed_read_errors_total",
		"maxembed_corruptions_detected_total",
		"maxembed_read_retries_total",
		"maxembed_replica_rescues_total",
		"maxembed_recovered_keys_total",
		"maxembed_degraded_queries_total",
		"maxembed_failed_keys_total",
		"maxembed_read_error_rate",
		"maxembed_ready 1",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %q", metric)
		}
	}
}
