package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

const testDim = 16

// testStack bundles the serving stack behind a test server so fault tests
// can reach the device and engine directly.
type testStack struct {
	eng *serving.Engine
	dev *ssd.Device
	syn *embedding.Synthesizer
	tr  *workload.Trace
	cfg serving.Config
}

// newEngine builds another engine over the same layout, store, and device
// — what a layout refresh produces, as far as a swap is concerned.
func (s *testStack) newEngine(t testing.TB) *serving.Engine {
	t.Helper()
	e, err := serving.New(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newTestStack(t testing.TB, ratio float64, mutate func(*serving.Config)) *testStack {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 800, Queries: 1500, MeanQueryLen: 8,
		Communities: 60, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 3,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	strat := placement.StrategyMaxEmbed
	if ratio == 0 {
		strat = placement.StrategySHP
	}
	lay, err := placement.Build(strat, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, testDim), ReplicationRatio: ratio, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(testDim, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Build(lay, syn, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serving.Config{
		Layout:       lay,
		Device:       dev,
		Store:        st,
		CacheEntries: 100,
		IndexLimit:   10,
		Pipeline:     true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := serving.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testStack{eng: eng, dev: dev, syn: syn, tr: tr, cfg: cfg}
}

func (s *testStack) serve(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	h := New(s.eng, s.dev, opts...)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return srv
}

func newTestServer(t *testing.T) (*httptest.Server, *embedding.Synthesizer, *workload.Trace) {
	t.Helper()
	s := newTestStack(t, 0.2, nil)
	return s.serve(t), s.syn, s.tr
}

func postLookup(t *testing.T, url string, keys []uint32) (*http.Response, LookupResponse) {
	t.Helper()
	body, err := json.Marshal(LookupRequest{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/lookup", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr LookupResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusPartialContent {
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, lr
}

func TestLookupEndpoint(t *testing.T) {
	srv, syn, _ := newTestServer(t)
	keys := []uint32{1, 7, 42, 7} // with a duplicate
	resp, lr := postLookup(t, srv.URL, keys)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(lr.Embeddings) != 3 {
		t.Fatalf("embeddings = %d, want 3 (dedup)", len(lr.Embeddings))
	}
	var want []float32
	for _, k := range []uint32{1, 7, 42} {
		got, ok := lr.Embeddings[k]
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		want = syn.Vector(k, want[:0])
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("key %d element %d: %v != %v", k, j, got[j], want[j])
			}
		}
	}
	if lr.Stats.DistinctKeys != 3 {
		t.Errorf("DistinctKeys = %d", lr.Stats.DistinctKeys)
	}
	if lr.Stats.PagesRead == 0 {
		t.Error("no pages read on cold lookup")
	}
	if lr.Stats.LatencyNS <= 0 {
		t.Error("non-positive latency")
	}
}

func TestLookupValidation(t *testing.T) {
	srv, _, _ := newTestServer(t)
	// Empty keys.
	resp, _ := postLookup(t, srv.URL, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty keys: status %d", resp.StatusCode)
	}
	// Out-of-range key.
	resp, _ = postLookup(t, srv.URL, []uint32{1 << 30})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("out-of-range key: status %d", resp.StatusCode)
	}
	// Malformed JSON.
	r, err := http.Post(srv.URL+"/v1/lookup", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", r.StatusCode)
	}
	// Wrong method.
	r, err = http.Get(srv.URL + "/v1/lookup")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET lookup: status %d", r.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _, tr := newTestServer(t)
	for i := 0; i < 10; i++ {
		resp, _ := postLookup(t, srv.URL, tr.Queries[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	r, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Device.Reads == 0 {
		t.Error("device reads not counted")
	}
	if sr.Cache == nil {
		t.Fatal("cache stats missing")
	}
	if sr.Latency.Count != 10 {
		t.Errorf("latency count = %d, want 10", sr.Latency.Count)
	}
	if sr.MeanValidPerRead <= 0 {
		t.Error("MeanValidPerRead not reported")
	}
}

func TestHealthEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", r.StatusCode)
	}
}

func TestConcurrentLookups(t *testing.T) {
	srv, syn, tr := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var want []float32
			for i := w; i < 200; i += 16 {
				resp, lr := postLookup(t, srv.URL, tr.Queries[i])
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %d: status %d", i, resp.StatusCode)
					return
				}
				for k, got := range lr.Embeddings {
					want = syn.Vector(k, want[:0])
					for j := range want {
						if got[j] != want[j] {
							errs <- fmt.Errorf("query %d key %d wrong vector", i, k)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLookupTooManyKeys(t *testing.T) {
	srv, _, _ := newTestServer(t)
	keys := make([]uint32, maxLookupKeys+1)
	resp, _ := postLookup(t, srv.URL, keys)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized request: status %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _, tr := newTestServer(t)
	for i := 0; i < 5; i++ {
		if resp, _ := postLookup(t, srv.URL, tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup: status %d", resp.StatusCode)
		}
	}
	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{
		"maxembed_device_reads_total",
		"maxembed_cache_hits_total",
		"maxembed_lookups_total 5",
		"maxembed_valid_per_read",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %q:\n%s", metric, text)
		}
	}
}
