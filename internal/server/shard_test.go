package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

// newShardedServer builds a serving stack striped over a 2-device array and
// serves it, returning the array for direct inspection.
func newShardedServer(t *testing.T) (*httptest.Server, *ssd.Array, *workload.Trace) {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 800, Queries: 1500, MeanQueryLen: 8,
		Communities: 60, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 3,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, testDim), ReplicationRatio: 0.2,
		Seed: 1, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(testDim, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ssd.NewArray(ssd.P5800X, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serving.New(serving.Config{
		Layout:     lay,
		Backend:    arr,
		Store:      sh,
		IndexLimit: 10,
		Pipeline:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New(eng, arr)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return srv, arr, tr
}

func TestStatsEndpointShards(t *testing.T) {
	srv, arr, tr := newShardedServer(t)
	for i := 0; i < 50; i++ {
		resp, _ := postLookup(t, srv.URL, tr.Queries[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Shards) != 2 {
		t.Fatalf("stats reported %d shards, want 2", len(sr.Shards))
	}
	ss := arr.ShardStats()
	var total int64
	for i, entry := range sr.Shards {
		if entry.Shard != i {
			t.Errorf("shard entry %d labelled %d", i, entry.Shard)
		}
		if entry.Reads == 0 {
			t.Errorf("shard %d reports no reads", i)
		}
		if entry.Reads != ss[i].Reads || entry.BytesRead != ss[i].BytesRead {
			t.Errorf("shard %d entry %+v does not match device stats %+v", i, entry, ss[i])
		}
		if entry.QueuePeak <= 0 {
			t.Errorf("shard %d queue peak = %d, want > 0", i, entry.QueuePeak)
		}
		total += entry.Reads
	}
	if sr.Device.Reads != total {
		t.Errorf("aggregate device reads %d != per-shard sum %d", sr.Device.Reads, total)
	}
}

func TestMetricsEndpointShards(t *testing.T) {
	srv, _, tr := newShardedServer(t)
	for i := 0; i < 20; i++ {
		if resp, _ := postLookup(t, srv.URL, tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"maxembed_shard_reads_total",
		"maxembed_shard_errors_total",
		"maxembed_shard_timeouts_total",
		"maxembed_shard_corruptions_total",
		"maxembed_shard_queue_peak",
	} {
		if !strings.Contains(text, "# TYPE "+family) {
			t.Errorf("metrics missing TYPE header for %s", family)
		}
		for shard := 0; shard < 2; shard++ {
			if want := fmt.Sprintf("%s{shard=\"%d\"}", family, shard); !strings.Contains(text, want) {
				t.Errorf("metrics missing %s", want)
			}
		}
	}
}

// TestStatsEndpointSingleDeviceShards: a single-device server still reports
// a one-entry shards array, so dashboards need no special case.
func TestStatsEndpointSingleDeviceShards(t *testing.T) {
	srv, _, tr := newTestServer(t)
	if resp, _ := postLookup(t, srv.URL, tr.Queries[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Shards) != 1 {
		t.Fatalf("single-device stats reported %d shards, want 1", len(sr.Shards))
	}
	if sr.Shards[0].Reads != sr.Device.Reads {
		t.Errorf("shard 0 reads %d != device reads %d", sr.Shards[0].Reads, sr.Device.Reads)
	}
}
