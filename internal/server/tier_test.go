package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

// newTieredServer serves a layout striped over a 1×P5800X + 3×P4510 tiered
// array, with a segmented cache so the cache segment stats are live too.
func newTieredServer(t *testing.T) (*httptest.Server, *ssd.Array, *workload.Trace) {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 800, Queries: 1500, MeanQueryLen: 8,
		Communities: 60, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 3,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, testDim), ReplicationRatio: 0.2,
		Seed: 1, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ssd.NewTieredArray([]ssd.TierSpec{
		{Profile: ssd.P5800X, Devices: 1},
		{Profile: ssd.P4510, Devices: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err = placement.Retier(lay,
		placement.PageHeat(lay, placement.KeyFreq(lay.NumKeys, tr.Queries)),
		arr.TierShardMap())
	if err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(testDim, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serving.New(serving.Config{
		Layout:         lay,
		Backend:        arr,
		Store:          sh,
		CacheEntries:   64,
		SegmentedCache: true,
		ShadowSizes:    []int{32, 128, 512},
		IndexLimit:     10,
		Pipeline:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New(eng, arr)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
	})
	return srv, arr, tr
}

func TestStatsEndpointTiers(t *testing.T) {
	srv, arr, tr := newTieredServer(t)
	for i := 0; i < 80; i++ {
		if resp, _ := postLookup(t, srv.URL, tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}

	// Shard entries carry profile names and tier ranks matching the array.
	if len(sr.Shards) != 4 {
		t.Fatalf("stats reported %d shards, want 4", len(sr.Shards))
	}
	for i, entry := range sr.Shards {
		if want := arr.Shard(i).Profile().Name; entry.Profile != want {
			t.Errorf("shard %d profile = %q, want %q", i, entry.Profile, want)
		}
		if want := arr.TierOf(i); entry.Tier != want {
			t.Errorf("shard %d tier = %d, want %d", i, entry.Tier, want)
		}
	}

	// Tier aggregates: fastest first, consistent with shard sums.
	if len(sr.Tiers) != 2 {
		t.Fatalf("stats reported %d tiers, want 2", len(sr.Tiers))
	}
	if sr.Tiers[0].Profile != "P5800X" || sr.Tiers[1].Profile != "P4510" {
		t.Fatalf("tier profiles = %q/%q, want P5800X/P4510", sr.Tiers[0].Profile, sr.Tiers[1].Profile)
	}
	var reads, pages int64
	var share float64
	for _, te := range sr.Tiers {
		if te.Reads == 0 {
			t.Errorf("tier %d reports no reads", te.Tier)
		}
		if te.Pages == 0 {
			t.Errorf("tier %d reports no pages", te.Tier)
		}
		if te.RatedBandwidth <= 0 {
			t.Errorf("tier %d rated bandwidth = %v", te.Tier, te.RatedBandwidth)
		}
		reads += te.Reads
		pages += int64(te.Pages)
		share += te.ReadShare
	}
	if reads != sr.Device.Reads {
		t.Errorf("tier read sum %d != device reads %d", reads, sr.Device.Reads)
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("tier read shares sum to %v, want 1", share)
	}

	// The segmented cache's new counters are surfaced.
	if sr.Cache == nil {
		t.Fatal("no cache block")
	}
	if sr.Cache.ProbationEntries+sr.Cache.ProtectedEntries != sr.Cache.Entries {
		t.Errorf("segment occupancy %d+%d != entries %d",
			sr.Cache.ProbationEntries, sr.Cache.ProtectedEntries, sr.Cache.Entries)
	}
	if sr.Cache.Hits > 0 && sr.Cache.Promotions == 0 {
		t.Error("hits recorded but no promotions under segmented policy")
	}

	// The ghost-cache miss-rate curve rides along: one point per simulated
	// capacity, ascending, with hit rates monotone in capacity.
	if len(sr.Shadow) != 3 {
		t.Fatalf("shadow curve has %d points, want 3", len(sr.Shadow))
	}
	for i, p := range sr.Shadow {
		if p.Accesses == 0 {
			t.Fatalf("shadow point %d saw no accesses", i)
		}
		if i > 0 {
			if p.Capacity <= sr.Shadow[i-1].Capacity {
				t.Errorf("shadow capacities not ascending at %d", i)
			}
			if p.HitRate < sr.Shadow[i-1].HitRate {
				t.Errorf("shadow hit rate fell from %.3f to %.3f at capacity %d",
					sr.Shadow[i-1].HitRate, p.HitRate, p.Capacity)
			}
		}
	}
}

func TestMetricsEndpointTiers(t *testing.T) {
	srv, _, tr := newTieredServer(t)
	for i := 0; i < 20; i++ {
		if resp, _ := postLookup(t, srv.URL, tr.Queries[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE maxembed_tier_reads_total counter",
		"maxembed_tier_reads_total{tier=\"0\",profile=\"P5800X\"}",
		"maxembed_tier_reads_total{tier=\"1\",profile=\"P4510\"}",
		"# TYPE maxembed_tier_bytes_read_total counter",
		"# TYPE maxembed_tier_pages gauge",
		"maxembed_tier_pages{tier=\"0\",profile=\"P5800X\"}",
		"# TYPE maxembed_tier_read_share gauge",
		"# TYPE maxembed_cache_probation_entries gauge",
		"# TYPE maxembed_cache_protected_entries gauge",
		"# TYPE maxembed_cache_probation_evictions_total counter",
		"# TYPE maxembed_cache_protected_evictions_total counter",
		"# TYPE maxembed_cache_promotions_total counter",
		"# TYPE maxembed_cache_demotions_total counter",
		"# TYPE maxembed_cache_pinned_entries gauge",
		"# TYPE maxembed_cache_pinned_hits_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMetricsEndpointHomogeneousNoTiers: single-tier backends emit no tier
// families, so dashboards can key panels off their presence.
func TestMetricsEndpointHomogeneousNoTiers(t *testing.T) {
	srv, _, tr := newShardedServer(t)
	if resp, _ := postLookup(t, srv.URL, tr.Queries[0]); resp.StatusCode != http.StatusOK {
		t.Fatal("lookup failed")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), "maxembed_tier_") {
		t.Error("homogeneous backend emitted tier metrics")
	}
	var sr StatsResponse
	statsResp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Tiers != nil {
		t.Errorf("homogeneous backend reported tiers: %+v", sr.Tiers)
	}
}
