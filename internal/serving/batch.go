package serving

// BatchStats describes the combined pass of one coalesced batch lookup.
type BatchStats struct {
	// Queries is the number of queries coalesced into the batch.
	Queries int
	// SharedKeys counts distinct keys requested by more than one query of
	// the batch — the cross-query duplication §8.2 attributes batching's
	// bandwidth gains to.
	SharedKeys int
	// SharedPageReads counts page reads whose covered keys span more than
	// one query, i.e. reads the batch amortized across queries.
	SharedPageReads int
	// Combined is the single combined pass's stats: key, page, fault, and
	// software-time totals over the whole batch. Its latency is every
	// member query's latency (the batch completes as one unit on the
	// virtual clock).
	Combined QueryStats
}

// LatencyNS returns the batch's end-to-end virtual latency.
func (s BatchStats) LatencyNS() int64 { return s.Combined.LatencyNS() }

// BatchResult is the outcome of one coalesced batch lookup.
type BatchResult struct {
	// PerQuery[i] is query i's scattered result: exactly its distinct keys
	// (vectors for the ones served, FailedKeys for the ones that were not),
	// equal to what an isolated Lookup of the same query returns modulo
	// cache state. Per-query stats attribute the shared work: PagesRead
	// counts pages that served at least one of the query's keys, PageShare
	// apportions shared reads fractionally, and latency is the batch
	// completion time. Recovery totals (Retries, ReadFaults, Corruptions,
	// ReplicaRescues) are accounted batch-wide in Stats.Combined, not per
	// query. Slices alias worker memory reused by the next lookup.
	PerQuery []Result
	// Stats aggregates the combined pass.
	Stats BatchStats
}

// scatterScratch holds LookupBatch's reusable scatter state.
type scatterScratch struct {
	owners    map[Key][]int32 // distinct key → queries requesting it
	vecOf     map[Key][]float32
	failed    map[Key]struct{}
	hit       map[Key]struct{}
	fallback  map[Key]struct{} // keys served by host-store read-through
	distinct  []Key            // per-query distinct keys, flattened
	bounds    []int            // distinct[bounds[i]:bounds[i+1]] is query i's keys
	touch     []int32          // queries touched by the page being attributed
	flatKeys  []Key
	flatVecs  [][]float32
	flatFail  []Key
	pagesFor  []int
	shareFor  []float64
	hitsFor   []int
	servedFor []int
	failFor   []int
	fbFor     []int
	depthFor  []int // per-query max-shard depth over its touched pages
	shardCnt  []int // depth scratch: query-major [qi*numShards+s] counts
}

// LookupBatch serves several queries as one coalesced lookup: a single
// combined dedupe → cache probe → page selection → pipelined-read pass
// runs over the union of the queries' keys, so co-located and replicated
// embeddings are shared across queries (§8.2's cross-query duplication),
// and the outcome is scattered back per query — each query receives
// exactly its keys, its own FailedKeys, and attributed stats. All queries
// complete at the batch's completion time on the worker's virtual clock,
// and each records one latency sample. A batch of one degenerates to
// Lookup (no batching overhead on light traffic).
func (w *Worker) LookupBatch(queries [][]Key) (BatchResult, error) {
	var br BatchResult
	br.Stats.Queries = len(queries)
	switch len(queries) {
	case 0:
		return br, nil
	case 1:
		res, err := w.Lookup(queries[0])
		if err != nil {
			return br, err
		}
		br.PerQuery = []Result{res}
		br.Stats.Combined = res.Stats
		return br, nil
	}

	total := 0
	for _, q := range queries {
		total += len(q)
	}
	if cap(w.batchBuf) < total {
		w.batchBuf = make([]Key, 0, total)
	}
	w.batchBuf = w.batchBuf[:0]
	for _, q := range queries {
		w.batchBuf = append(w.batchBuf, q...)
	}
	union, err := w.lookupCombined(w.batchBuf, false)
	if err != nil {
		return br, err
	}
	e := w.eng
	union.Stats.BatchSize = len(queries)
	union.Stats.PageShare = float64(union.Stats.PagesRead)
	br.Stats.Combined = union.Stats

	// Ownership: which queries requested each distinct key. w.seen is free
	// again after lookupCombined; reuse it for per-query dedup.
	sc := &w.scatter
	if sc.owners == nil {
		sc.owners = make(map[Key][]int32, union.Stats.DistinctKeys)
		sc.vecOf = make(map[Key][]float32, len(union.Keys))
		sc.failed = make(map[Key]struct{}, 8)
		sc.hit = make(map[Key]struct{}, 16)
		sc.fallback = make(map[Key]struct{}, 8)
	}
	clear(sc.owners)
	sc.distinct = sc.distinct[:0]
	sc.bounds = append(sc.bounds[:0], 0)
	for qi, q := range queries {
		clear(w.seen)
		for _, k := range q {
			if _, dup := w.seen[k]; dup {
				continue
			}
			w.seen[k] = struct{}{}
			sc.distinct = append(sc.distinct, k)
			sc.owners[k] = append(sc.owners[k], int32(qi))
		}
		sc.bounds = append(sc.bounds, len(sc.distinct))
		if e.cfg.Recorder != nil {
			e.cfg.Recorder.Record(sc.distinct[sc.bounds[qi]:sc.bounds[qi+1]])
		}
	}
	for _, qs := range sc.owners {
		if len(qs) > 1 {
			br.Stats.SharedKeys++
		}
	}

	clear(sc.vecOf)
	for i, k := range union.Keys {
		sc.vecOf[k] = union.Vectors[i]
	}
	clear(sc.failed)
	for _, k := range union.FailedKeys {
		sc.failed[k] = struct{}{}
	}
	clear(sc.hit)
	for _, k := range w.hitKeys {
		sc.hit[k] = struct{}{}
	}
	clear(sc.fallback)
	for _, k := range w.fbKeys {
		// Keys the reroute sent to host-store read-through never touched a
		// page read; keys the store also failed are in sc.failed already.
		if _, bad := sc.failed[k]; !bad {
			sc.fallback[k] = struct{}{}
		}
	}

	// Page attribution: each planned read is charged to every query one of
	// its covered keys belongs to, and apportioned 1/q across those q
	// queries so shares sum back to the batch total — a shared page that
	// *failed* is still a read each sharer caused, so it is apportioned the
	// same way (its keys are attributed through sc.failed, not here).
	// The same walk accumulates each query's per-shard read counts for its
	// MaxShardDepth: the depth of a member query is over the pages that
	// served (or failed) its keys, not the whole batch plan.
	sc.pagesFor = resizeInts(sc.pagesFor, len(queries))
	sc.shareFor = resizeFloats(sc.shareFor, len(queries))
	sc.depthFor = resizeInts(sc.depthFor, len(queries))
	sc.shardCnt = resizeInts(sc.shardCnt, len(queries)*e.numShards)
	for _, pe := range w.plan {
		sc.touch = sc.touch[:0]
		for _, k := range w.coveredFlat[pe.from:pe.to] {
			for _, qi := range sc.owners[k] {
				if !containsQ(sc.touch, qi) {
					sc.touch = append(sc.touch, qi)
				}
			}
		}
		if len(sc.touch) == 0 {
			continue
		}
		if len(sc.touch) > 1 {
			br.Stats.SharedPageReads++
		}
		share := 1 / float64(len(sc.touch))
		shard, _ := e.be.ShardOf(pe.page)
		for _, qi := range sc.touch {
			sc.pagesFor[qi]++
			sc.shareFor[qi] += share
			cnt := &sc.shardCnt[int(qi)*e.numShards+shard]
			*cnt++
			if *cnt > sc.depthFor[qi] {
				sc.depthFor[qi] = *cnt
			}
		}
	}

	// Scatter: size the flat result arrays exactly, then carve per-query
	// windows out of them (exact capacity keeps the backing arrays stable,
	// so earlier windows never go stale).
	sc.hitsFor = resizeInts(sc.hitsFor, len(queries))
	sc.servedFor = resizeInts(sc.servedFor, len(queries))
	sc.failFor = resizeInts(sc.failFor, len(queries))
	sc.fbFor = resizeInts(sc.fbFor, len(queries))
	totServed, totFailed := 0, 0
	for qi := range queries {
		for _, k := range sc.distinct[sc.bounds[qi]:sc.bounds[qi+1]] {
			if _, bad := sc.failed[k]; bad {
				sc.failFor[qi]++
				totFailed++
				continue
			}
			if _, h := sc.hit[k]; h {
				sc.hitsFor[qi]++
			}
			if _, fb := sc.fallback[k]; fb {
				sc.fbFor[qi]++
			}
			if _, ok := sc.vecOf[k]; ok {
				sc.servedFor[qi]++
				totServed++
			}
		}
	}
	sc.flatKeys = resizeKeys(sc.flatKeys, totServed)[:0]
	sc.flatVecs = resizeVecs(sc.flatVecs, totServed)[:0]
	sc.flatFail = resizeKeys(sc.flatFail, totFailed)[:0]

	br.PerQuery = make([]Result, len(queries))
	for qi := range queries {
		keyFrom, failFrom := len(sc.flatKeys), len(sc.flatFail)
		d := sc.distinct[sc.bounds[qi]:sc.bounds[qi+1]]
		for _, k := range d {
			if _, bad := sc.failed[k]; bad {
				sc.flatFail = append(sc.flatFail, k)
				continue
			}
			if v, ok := sc.vecOf[k]; ok {
				sc.flatKeys = append(sc.flatKeys, k)
				sc.flatVecs = append(sc.flatVecs, v)
			}
		}
		st := QueryStats{
			Keys:           len(queries[qi]),
			DistinctKeys:   len(d),
			CacheHits:      sc.hitsFor[qi],
			PagesRead:      sc.pagesFor[qi],
			PageShare:      sc.shareFor[qi],
			MaxShardDepth:  sc.depthFor[qi],
			BatchSize:      len(queries),
			FailedKeys:     sc.failFor[qi],
			Degraded:       sc.failFor[qi] > 0,
			StoreFallbacks: sc.fbFor[qi],
			// SSD-served keys exclude DRAM hits, failures, and host-store
			// read-through alike, matching the combined pass's accounting
			// (fallback vectors never crossed the device).
			UsefulFromSSD: len(d) - sc.hitsFor[qi] - sc.failFor[qi] - sc.fbFor[qi],
			Generation:    union.Stats.Generation,
			StartNS:       union.Stats.StartNS,
			EndNS:         union.Stats.EndNS,
		}
		if st.Degraded {
			e.Recovery.DegradedQueries.Inc()
			e.Recovery.FailedKeys.Add(int64(st.FailedKeys))
		}
		e.SpreadDepth.Add(st.MaxShardDepth)
		e.Latency.Record(st.LatencyNS())
		r := Result{
			Stats:   st,
			Keys:    sc.flatKeys[keyFrom:len(sc.flatKeys):len(sc.flatKeys)],
			Vectors: sc.flatVecs[keyFrom:len(sc.flatVecs):len(sc.flatVecs)],
		}
		if failFrom < len(sc.flatFail) {
			r.FailedKeys = sc.flatFail[failFrom:len(sc.flatFail):len(sc.flatFail)]
		}
		br.PerQuery[qi] = r
	}
	return br, nil
}

// containsQ reports whether qs contains qi.
func containsQ(qs []int32, qi int32) bool {
	for _, q := range qs {
		if q == qi {
			return true
		}
	}
	return false
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeKeys(s []Key, n int) []Key {
	if cap(s) < n {
		return make([]Key, n)
	}
	return s[:n]
}

func resizeVecs(s [][]float32, n int) [][]float32 {
	if cap(s) < n {
		return make([][]float32, n)
	}
	return s[:n]
}

// RunBatched is Run with cross-request micro-batching: queries are grouped
// into batches of batchSize and each batch is served as one coalesced
// LookupBatch, with batches interleaved round-robin across workers. It is
// the closed-loop harness behind the batchsweep experiment — widening the
// per-pass key set raises valid embeddings per read and effective
// bandwidth (§8.2). batchSize ≤ 1 degenerates to Run.
func RunBatched(e *Engine, queries [][]Key, batchSize, workers int) (RunResult, error) {
	if batchSize <= 1 {
		return Run(e, queries, workers)
	}
	if workers < 1 {
		workers = 1
	}
	e.resetRunState()
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = e.NewWorker()
	}
	var res RunResult
	for bi := 0; bi*batchSize < len(queries); bi++ {
		from := bi * batchSize
		to := min(from+batchSize, len(queries))
		br, err := ws[bi%workers].LookupBatch(queries[from:to])
		if err != nil {
			return res, err
		}
		st := br.Stats.Combined
		res.Queries += int64(br.Stats.Queries)
		res.Keys += int64(st.Keys)
		res.PagesRead += int64(st.PagesRead)
		res.UsefulKeys += int64(st.UsefulFromSSD)
		res.CacheHits += int64(st.CacheHits)
		res.SortNS += st.SortNS
		res.SelectNS += st.SelectNS
		res.OtherSoftNS += st.OtherSoftNS
		res.SSDWaitNS += st.SSDWaitNS
		res.RecoveryNS += st.RecoveryNS
		res.Retries += int64(st.Retries)
		res.ReplicaRescues += int64(st.ReplicaRescues)
		res.Corruptions += int64(st.Corruptions)
		res.SharedKeys += int64(br.Stats.SharedKeys)
		res.SharedPageReads += int64(br.Stats.SharedPageReads)
		for _, r := range br.PerQuery {
			res.FailedKeys += int64(r.Stats.FailedKeys)
			if r.Stats.Degraded {
				res.DegradedQueries++
			}
		}
	}
	finalizeRun(e, &res, ws)
	return res, nil
}
