package serving

// BatchStats describes the combined pass of one coalesced batch lookup.
type BatchStats struct {
	// Queries is the number of queries coalesced into the batch.
	Queries int
	// SharedKeys counts distinct keys requested by more than one query of
	// the batch — the cross-query duplication §8.2 attributes batching's
	// bandwidth gains to.
	SharedKeys int
	// SharedPageReads counts page reads whose covered keys span more than
	// one query, i.e. reads the batch amortized across queries.
	SharedPageReads int
	// Combined is the single combined pass's stats: key, page, fault, and
	// software-time totals over the whole batch. Its latency is every
	// member query's latency (the batch completes as one unit on the
	// virtual clock).
	Combined QueryStats
}

// LatencyNS returns the batch's end-to-end virtual latency.
func (s BatchStats) LatencyNS() int64 { return s.Combined.LatencyNS() }

// BatchResult is the outcome of one coalesced batch lookup.
type BatchResult struct {
	// PerQuery[i] is query i's scattered result: exactly its distinct keys
	// (vectors for the ones served, FailedKeys for the ones that were not),
	// equal to what an isolated Lookup of the same query returns modulo
	// cache state. Per-query stats attribute the shared work: PagesRead
	// counts pages that served at least one of the query's keys, PageShare
	// apportions shared reads fractionally, and latency is the batch
	// completion time. Recovery totals (Retries, ReadFaults, Corruptions,
	// ReplicaRescues) are accounted batch-wide in Stats.Combined, not per
	// query. PerQuery itself and every slice in it alias worker memory
	// reused by the next lookup; on real-I/O backends each result's Refs
	// views follow the same lifetime (Retain to hold longer).
	PerQuery []Result
	// Stats aggregates the combined pass.
	Stats BatchStats
}

// Per-key scatter flags (one byte per batch-distinct key).
const (
	kfFailed   uint8 = 1 << iota // key exhausted recovery
	kfHit                        // served from DRAM cache
	kfFallback                   // served by host-store read-through
)

// scatterScratch holds LookupBatch's reusable scatter state. Keys are
// interned to dense ids (keyIdx) so everything else is flat arrays —
// ownership is a CSR (ownOff/ownFlat) rather than a map of slices — and a
// steady-state batch allocates nothing.
type scatterScratch struct {
	keyIdx    map[Key]int32 // batch-distinct key → dense id
	ids       []int32       // dense id per entry of distinct
	ownCnt    []int32       // CSR: owners per dense id (counting pass)
	ownOff    []int32       // CSR: ownFlat[ownOff[id]:ownOff[id+1]]
	ownFlat   []int32       // CSR: owning query indexes, ascending
	cursor    []int32       // CSR fill cursors
	vecIdx    []int32       // dense id → index into union.Keys, -1 unserved
	flags     []uint8       // dense id → kf* bits
	distinct  []Key         // per-query distinct keys, flattened
	bounds    []int         // distinct[bounds[i]:bounds[i+1]] is query i's keys
	touch     []int32       // queries touched by the page being attributed
	flatKeys  []Key
	flatVecs  [][]float32
	flatRefs  []SlotRef
	flatFail  []Key
	pagesFor  []int
	shareFor  []float64
	hitsFor   []int
	servedFor []int
	failFor   []int
	fbFor     []int
	depthFor  []int // per-query max-shard depth over its touched pages
	shardCnt  []int // depth scratch: query-major [qi*numShards+s] counts
}

// LookupBatch serves several queries as one coalesced lookup: a single
// combined dedupe → cache probe → page selection → pipelined-read pass
// runs over the union of the queries' keys, so co-located and replicated
// embeddings are shared across queries (§8.2's cross-query duplication),
// and the outcome is scattered back per query — each query receives
// exactly its keys, its own FailedKeys, and attributed stats. All queries
// complete at the batch's completion time on the worker's virtual clock,
// and each records one latency sample. A batch of one degenerates to
// Lookup (no batching overhead on light traffic).
func (w *Worker) LookupBatch(queries [][]Key) (BatchResult, error) {
	var br BatchResult
	br.Stats.Queries = len(queries)
	switch len(queries) {
	case 0:
		return br, nil
	case 1:
		res, err := w.Lookup(queries[0])
		if err != nil {
			return br, err
		}
		if cap(w.perQuery) < 1 {
			w.perQuery = make([]Result, 0, 8)
		}
		w.perQuery = append(w.perQuery[:0], res)
		br.PerQuery = w.perQuery
		br.Stats.Combined = res.Stats
		return br, nil
	}

	total := 0
	for _, q := range queries {
		total += len(q)
	}
	if cap(w.batchBuf) < total {
		w.batchBuf = make([]Key, 0, total)
	}
	w.batchBuf = w.batchBuf[:0]
	for _, q := range queries {
		w.batchBuf = append(w.batchBuf, q...)
	}
	union, err := w.lookupCombined(w.batchBuf, false)
	if err != nil {
		return br, err
	}
	e := w.eng
	union.Stats.BatchSize = len(queries)
	union.Stats.PageShare = float64(union.Stats.PagesRead)
	br.Stats.Combined = union.Stats

	// Ownership pass: intern each batch-distinct key to a dense id and
	// record, per (query, distinct key) pair, which query owns it. w.seen
	// is free again after lookupCombined; reuse it for per-query dedup.
	sc := &w.scatter
	if sc.keyIdx == nil {
		sc.keyIdx = make(map[Key]int32, union.Stats.DistinctKeys)
	}
	clear(sc.keyIdx)
	sc.distinct = sc.distinct[:0]
	sc.ids = sc.ids[:0]
	sc.bounds = append(sc.bounds[:0], 0)
	nDist := int32(0)
	for qi, q := range queries {
		clear(w.seen)
		for _, k := range q {
			if _, dup := w.seen[k]; dup {
				continue
			}
			w.seen[k] = struct{}{}
			sc.distinct = append(sc.distinct, k)
			id, ok := sc.keyIdx[k]
			if !ok {
				id = nDist
				nDist++
				sc.keyIdx[k] = id
			}
			sc.ids = append(sc.ids, id)
		}
		sc.bounds = append(sc.bounds, len(sc.distinct))
		if e.cfg.Recorder != nil {
			e.cfg.Recorder.Record(sc.distinct[sc.bounds[qi]:sc.bounds[qi+1]])
		}
	}

	// Build the ownership CSR: count, prefix-sum, fill (query order, so
	// each id's owner list is ascending and deterministic).
	sc.ownCnt = resizeInt32s(sc.ownCnt, int(nDist))
	for _, id := range sc.ids {
		sc.ownCnt[id]++
	}
	for _, c := range sc.ownCnt {
		if c > 1 {
			br.Stats.SharedKeys++
		}
	}
	sc.ownOff = resizeInt32s(sc.ownOff, int(nDist)+1)
	for id, c := range sc.ownCnt {
		sc.ownOff[id+1] = sc.ownOff[id] + c
	}
	if cap(sc.ownFlat) < len(sc.ids) {
		sc.ownFlat = make([]int32, len(sc.ids))
	}
	sc.ownFlat = sc.ownFlat[:len(sc.ids)]
	sc.cursor = resizeInt32s(sc.cursor, int(nDist))
	for qi := range queries {
		for _, id := range sc.ids[sc.bounds[qi]:sc.bounds[qi+1]] {
			sc.ownFlat[sc.ownOff[id]+sc.cursor[id]] = int32(qi)
			sc.cursor[id]++
		}
	}

	// Per-key outcome: where each dense id's vector sits in the union
	// result (-1 = unserved) and its failed/hit/fallback flags.
	sc.vecIdx = resizeInt32s(sc.vecIdx, int(nDist))
	for i := range sc.vecIdx {
		sc.vecIdx[i] = -1
	}
	sc.flags = resizeBytes(sc.flags, int(nDist))
	for i, k := range union.Keys {
		if id, ok := sc.keyIdx[k]; ok {
			sc.vecIdx[id] = int32(i)
		}
	}
	for _, k := range union.FailedKeys {
		sc.flags[sc.keyIdx[k]] |= kfFailed
	}
	for _, k := range w.hitKeys {
		sc.flags[sc.keyIdx[k]] |= kfHit
	}
	for _, k := range w.fbKeys {
		// Keys the reroute sent to host-store read-through never touched a
		// page read; keys the store also failed carry kfFailed already.
		if id := sc.keyIdx[k]; sc.flags[id]&kfFailed == 0 {
			sc.flags[id] |= kfFallback
		}
	}

	// Page attribution: each planned read is charged to every query one of
	// its covered keys belongs to, and apportioned 1/q across those q
	// queries so shares sum back to the batch total — a shared page that
	// *failed* is still a read each sharer caused, so it is apportioned the
	// same way (its keys are attributed through sc.failed, not here).
	// The same walk accumulates each query's per-shard read counts for its
	// MaxShardDepth: the depth of a member query is over the pages that
	// served (or failed) its keys, not the whole batch plan.
	sc.pagesFor = resizeInts(sc.pagesFor, len(queries))
	sc.shareFor = resizeFloats(sc.shareFor, len(queries))
	sc.depthFor = resizeInts(sc.depthFor, len(queries))
	sc.shardCnt = resizeInts(sc.shardCnt, len(queries)*e.numShards)
	for _, pe := range w.plan {
		sc.touch = sc.touch[:0]
		for _, k := range w.coveredFlat[pe.from:pe.to] {
			id := sc.keyIdx[k]
			for _, qi := range sc.ownFlat[sc.ownOff[id]:sc.ownOff[id+1]] {
				if !containsQ(sc.touch, qi) {
					sc.touch = append(sc.touch, qi)
				}
			}
		}
		if len(sc.touch) == 0 {
			continue
		}
		if len(sc.touch) > 1 {
			br.Stats.SharedPageReads++
		}
		share := 1 / float64(len(sc.touch))
		shard, _ := e.be.ShardOf(pe.page)
		for _, qi := range sc.touch {
			sc.pagesFor[qi]++
			sc.shareFor[qi] += share
			cnt := &sc.shardCnt[int(qi)*e.numShards+shard]
			*cnt++
			if *cnt > sc.depthFor[qi] {
				sc.depthFor[qi] = *cnt
			}
		}
	}

	// Scatter: size the flat result arrays exactly, then carve per-query
	// windows out of them (exact capacity keeps the backing arrays stable,
	// so earlier windows never go stale).
	sc.hitsFor = resizeInts(sc.hitsFor, len(queries))
	sc.servedFor = resizeInts(sc.servedFor, len(queries))
	sc.failFor = resizeInts(sc.failFor, len(queries))
	sc.fbFor = resizeInts(sc.fbFor, len(queries))
	totServed, totFailed := 0, 0
	for qi := range queries {
		for _, id := range sc.ids[sc.bounds[qi]:sc.bounds[qi+1]] {
			f := sc.flags[id]
			if f&kfFailed != 0 {
				sc.failFor[qi]++
				totFailed++
				continue
			}
			if f&kfHit != 0 {
				sc.hitsFor[qi]++
			}
			if f&kfFallback != 0 {
				sc.fbFor[qi]++
			}
			if sc.vecIdx[id] >= 0 {
				sc.servedFor[qi]++
				totServed++
			}
		}
	}
	sc.flatKeys = resizeKeys(sc.flatKeys, totServed)[:0]
	sc.flatVecs = resizeVecs(sc.flatVecs, totServed)[:0]
	sc.flatFail = resizeKeys(sc.flatFail, totFailed)[:0]
	withRefs := union.Refs != nil
	if withRefs {
		sc.flatRefs = resizeRefs(sc.flatRefs, totServed)[:0]
	}

	if cap(w.perQuery) < len(queries) {
		w.perQuery = make([]Result, len(queries))
	}
	w.perQuery = w.perQuery[:len(queries)]
	br.PerQuery = w.perQuery
	for qi := range queries {
		keyFrom, failFrom := len(sc.flatKeys), len(sc.flatFail)
		d := sc.distinct[sc.bounds[qi]:sc.bounds[qi+1]]
		for j, k := range d {
			id := sc.ids[sc.bounds[qi]+j]
			if sc.flags[id]&kfFailed != 0 {
				sc.flatFail = append(sc.flatFail, k)
				continue
			}
			if vi := sc.vecIdx[id]; vi >= 0 {
				sc.flatKeys = append(sc.flatKeys, k)
				sc.flatVecs = append(sc.flatVecs, union.Vectors[vi])
				if withRefs {
					sc.flatRefs = append(sc.flatRefs, union.Refs[vi])
				}
			}
		}
		st := QueryStats{
			Keys:           len(queries[qi]),
			DistinctKeys:   len(d),
			CacheHits:      sc.hitsFor[qi],
			PagesRead:      sc.pagesFor[qi],
			PageShare:      sc.shareFor[qi],
			MaxShardDepth:  sc.depthFor[qi],
			BatchSize:      len(queries),
			FailedKeys:     sc.failFor[qi],
			Degraded:       sc.failFor[qi] > 0,
			StoreFallbacks: sc.fbFor[qi],
			// SSD-served keys exclude DRAM hits, failures, and host-store
			// read-through alike, matching the combined pass's accounting
			// (fallback vectors never crossed the device).
			UsefulFromSSD: len(d) - sc.hitsFor[qi] - sc.failFor[qi] - sc.fbFor[qi],
			Generation:    union.Stats.Generation,
			StartNS:       union.Stats.StartNS,
			EndNS:         union.Stats.EndNS,
		}
		if st.Degraded {
			e.Recovery.DegradedQueries.Inc()
			e.Recovery.FailedKeys.Add(int64(st.FailedKeys))
		}
		e.SpreadDepth.Add(st.MaxShardDepth)
		e.Latency.Record(st.LatencyNS())
		r := Result{
			Stats:   st,
			Keys:    sc.flatKeys[keyFrom:len(sc.flatKeys):len(sc.flatKeys)],
			Vectors: sc.flatVecs[keyFrom:len(sc.flatVecs):len(sc.flatVecs)],
		}
		if withRefs {
			r.Refs = sc.flatRefs[keyFrom:len(sc.flatRefs):len(sc.flatRefs)]
		}
		if failFrom < len(sc.flatFail) {
			r.FailedKeys = sc.flatFail[failFrom:len(sc.flatFail):len(sc.flatFail)]
		}
		br.PerQuery[qi] = r
	}
	return br, nil
}

// containsQ reports whether qs contains qi.
func containsQ(qs []int32, qi int32) bool {
	for _, q := range qs {
		if q == qi {
			return true
		}
	}
	return false
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeBytes(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeRefs(s []SlotRef, n int) []SlotRef {
	if cap(s) < n {
		return make([]SlotRef, n)
	}
	return s[:n]
}

func resizeKeys(s []Key, n int) []Key {
	if cap(s) < n {
		return make([]Key, n)
	}
	return s[:n]
}

func resizeVecs(s [][]float32, n int) [][]float32 {
	if cap(s) < n {
		return make([][]float32, n)
	}
	return s[:n]
}

// RunBatched is Run with cross-request micro-batching: queries are grouped
// into batches of batchSize and each batch is served as one coalesced
// LookupBatch, with batches interleaved round-robin across workers. It is
// the closed-loop harness behind the batchsweep experiment — widening the
// per-pass key set raises valid embeddings per read and effective
// bandwidth (§8.2). batchSize ≤ 1 degenerates to Run.
func RunBatched(e *Engine, queries [][]Key, batchSize, workers int) (RunResult, error) {
	if batchSize <= 1 {
		return Run(e, queries, workers)
	}
	if workers < 1 {
		workers = 1
	}
	e.resetRunState()
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = e.NewWorker()
	}
	var res RunResult
	for bi := 0; bi*batchSize < len(queries); bi++ {
		from := bi * batchSize
		to := min(from+batchSize, len(queries))
		br, err := ws[bi%workers].LookupBatch(queries[from:to])
		if err != nil {
			return res, err
		}
		st := br.Stats.Combined
		res.Queries += int64(br.Stats.Queries)
		res.Keys += int64(st.Keys)
		res.PagesRead += int64(st.PagesRead)
		res.UsefulKeys += int64(st.UsefulFromSSD)
		res.CacheHits += int64(st.CacheHits)
		res.SortNS += st.SortNS
		res.SelectNS += st.SelectNS
		res.OtherSoftNS += st.OtherSoftNS
		res.SSDWaitNS += st.SSDWaitNS
		res.RecoveryNS += st.RecoveryNS
		res.Retries += int64(st.Retries)
		res.ReplicaRescues += int64(st.ReplicaRescues)
		res.Corruptions += int64(st.Corruptions)
		res.SharedKeys += int64(br.Stats.SharedKeys)
		res.SharedPageReads += int64(br.Stats.SharedPageReads)
		for _, r := range br.PerQuery {
			res.FailedKeys += int64(r.Stats.FailedKeys)
			if r.Stats.Degraded {
				res.DegradedQueries++
			}
		}
	}
	finalizeRun(e, &res, ws)
	return res, nil
}
