package serving

import (
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// collectQueryResult deep-copies a scattered per-query result out of worker
// scratch (which the next lookup reuses).
func collectQueryResult(r Result) (keys []Key, vecs map[Key][]float32, failed []Key) {
	keys = append(keys, r.Keys...)
	vecs = make(map[Key][]float32, len(r.Keys))
	for i, k := range r.Keys {
		vecs[k] = append([]float32(nil), r.Vectors[i]...)
	}
	failed = append(failed, r.FailedKeys...)
	return keys, vecs, failed
}

func TestLookupBatchScatterMatchesIsolated(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	batch := f.trace.Queries[:6]

	// Batched serving on one engine, isolated serving on an identical fresh
	// one (both cacheless, so results cannot diverge through cache state).
	be := f.engine(t, nil)
	br, err := be.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.PerQuery) != len(batch) {
		t.Fatalf("PerQuery = %d, want %d", len(br.PerQuery), len(batch))
	}
	gotKeys := make([][]Key, len(batch))
	gotVecs := make([]map[Key][]float32, len(batch))
	for qi := range batch {
		var failed []Key
		gotKeys[qi], gotVecs[qi], failed = collectQueryResult(br.PerQuery[qi])
		if len(failed) > 0 {
			t.Fatalf("query %d failed keys with no faults injected: %v", qi, failed)
		}
	}

	ie := f.engine(t, nil)
	iw := ie.NewWorker()
	for qi, q := range batch {
		iso, err := iw.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotKeys[qi]) != len(iso.Keys) {
			t.Fatalf("query %d: batched returned %d keys, isolated %d", qi, len(gotKeys[qi]), len(iso.Keys))
		}
		isoVecs := map[Key][]float32{}
		for i, k := range iso.Keys {
			isoVecs[k] = iso.Vectors[i]
		}
		for _, k := range gotKeys[qi] {
			want, ok := isoVecs[k]
			if !ok {
				t.Fatalf("query %d: batched returned key %d isolated serving did not", qi, k)
			}
			got := gotVecs[qi][k]
			if len(got) != len(want) {
				t.Fatalf("query %d key %d: dim %d vs %d", qi, k, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("query %d key %d element %d: %v != %v", qi, k, j, got[j], want[j])
				}
			}
		}
	}
}

func TestLookupBatchCrossQueryDedup(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	// A batch with heavy cross-query duplication: the same queries twice.
	base := f.trace.Queries[:4]
	batch := append(append([][]Key{}, base...), base...)

	be := f.engine(t, nil)
	br, err := be.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}

	ie := f.engine(t, nil)
	iw := ie.NewWorker()
	isoPages := 0
	for _, q := range batch {
		res, err := iw.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		isoPages += res.Stats.PagesRead
	}
	// Every key appears in ≥ 2 queries, so the combined pass must read at
	// most half the pages of isolated serving (cacheless engines).
	if got := br.Stats.Combined.PagesRead; got > isoPages/2 {
		t.Errorf("batched pass read %d pages, isolated %d — shared keys not deduped", got, isoPages)
	}
	if br.Stats.SharedKeys != br.Stats.Combined.DistinctKeys {
		t.Errorf("SharedKeys = %d, want every distinct key (%d) shared",
			br.Stats.SharedKeys, br.Stats.Combined.DistinctKeys)
	}
	if br.Stats.SharedPageReads == 0 {
		t.Error("no page reads marked shared in a fully-duplicated batch")
	}
}

func TestLookupBatchStatsAttribution(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	batch := f.trace.Queries[:8]
	e := f.engine(t, nil)
	br, err := e.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	var shareSum float64
	for qi, r := range br.PerQuery {
		st := r.Stats
		if st.BatchSize != len(batch) {
			t.Errorf("query %d BatchSize = %d, want %d", qi, st.BatchSize, len(batch))
		}
		if st.Keys != len(batch[qi]) {
			t.Errorf("query %d Keys = %d, want %d", qi, st.Keys, len(batch[qi]))
		}
		if got := st.LatencyNS(); got != br.Stats.LatencyNS() {
			t.Errorf("query %d latency %d != batch latency %d (completes with the batch)",
				qi, got, br.Stats.LatencyNS())
		}
		if st.PagesRead < 1 || st.PagesRead > br.Stats.Combined.PagesRead {
			t.Errorf("query %d PagesRead = %d outside [1, %d]", qi, st.PagesRead, br.Stats.Combined.PagesRead)
		}
		if st.PageShare <= 0 || st.PageShare > float64(st.PagesRead) {
			t.Errorf("query %d PageShare = %v outside (0, %d]", qi, st.PageShare, st.PagesRead)
		}
		shareSum += st.PageShare
	}
	// Fractional shares apportion the combined pass exactly: they sum back
	// to the batch's page-read total (modulo float rounding).
	if tot := float64(br.Stats.Combined.PagesRead); shareSum < tot-1e-6 || shareSum > tot+1e-6 {
		t.Errorf("PageShare sum = %v, want %v", shareSum, tot)
	}
}

func TestLookupBatchFailedKeyAttribution(t *testing.T) {
	// Unreplicated layout + recovery disabled: every injected fault degrades
	// immediately, so its page's keys must surface in FailedKeys — of
	// exactly the queries that asked for them.
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, func(c *Config) { c.MaxRetries = Retries(0) })
	e.cfg.Device.SetFaultInjector(ssd.FailEveryN(3))

	batch := f.trace.Queries[:6]
	br, err := e.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if br.Stats.Combined.FailedKeys == 0 {
		t.Fatal("no failed keys despite injected faults and disabled recovery")
	}
	degradedBefore := e.Recovery.DegradedQueries.Load()
	failedDistinct := map[Key]bool{}
	degraded := 0
	for qi, r := range br.PerQuery {
		asked := map[Key]bool{}
		for _, k := range batch[qi] {
			asked[k] = true
		}
		for _, k := range r.FailedKeys {
			if !asked[k] {
				t.Errorf("query %d charged failed key %d it never asked for", qi, k)
			}
			failedDistinct[k] = true
		}
		for _, k := range r.Keys {
			for _, fk := range r.FailedKeys {
				if k == fk {
					t.Errorf("query %d key %d both served and failed", qi, k)
				}
			}
		}
		if got := len(r.FailedKeys); got != r.Stats.FailedKeys {
			t.Errorf("query %d FailedKeys stat %d != slice len %d", qi, r.Stats.FailedKeys, got)
		}
		if r.Stats.Degraded != (len(r.FailedKeys) > 0) {
			t.Errorf("query %d Degraded = %v with %d failed keys", qi, r.Stats.Degraded, len(r.FailedKeys))
		}
		if r.Stats.Degraded {
			degraded++
		}
		// Accounting closes: served + failed covers the query's distinct set.
		if len(r.Keys)+len(r.FailedKeys) != r.Stats.DistinctKeys {
			t.Errorf("query %d: %d served + %d failed != %d distinct",
				qi, len(r.Keys), len(r.FailedKeys), r.Stats.DistinctKeys)
		}
	}
	if len(failedDistinct) != br.Stats.Combined.FailedKeys {
		t.Errorf("distinct failed keys across queries = %d, combined pass reported %d",
			len(failedDistinct), br.Stats.Combined.FailedKeys)
	}
	if degraded == 0 {
		t.Error("failed keys attributed to no query")
	}
	// Engine counters count degraded member queries, not batches.
	if got := degradedBefore; got != int64(degraded) {
		t.Errorf("DegradedQueries counter = %d, want %d", got, degraded)
	}
}

// TestLookupBatchSharedFailedPageApportionment is the regression test for
// fault-path scatter accounting on a *shared* failed page (fault-path
// attribution has regressed before): two of three batched queries share a
// page whose every read fails, with recovery disabled and no replicas, so
// the page's keys hard-fail for every sharer. The failed read must still
// be apportioned once per sharer (PagesRead counts it once each, PageShare
// splits it), each sharer's FailedKeys must list exactly its own keys of
// the page, and no count may leak to the query that never touched it.
func TestLookupBatchSharedFailedPageApportionment(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, func(c *Config) { c.MaxRetries = Retries(0) })

	// A home page holding at least two keys, plus three private keys on
	// three further distinct pages.
	var deadPage layout.PageID
	found := false
	for p, keys := range f.lay.Pages {
		if len(keys) >= 2 {
			deadPage, found = layout.PageID(p), true
			break
		}
	}
	if !found {
		t.Fatal("fixture has no page with two keys")
	}
	k1, k2 := Key(f.lay.Pages[deadPage][0]), Key(f.lay.Pages[deadPage][1])
	taken := map[layout.PageID]bool{deadPage: true}
	var priv []Key
	for k := 0; k < f.lay.NumKeys && len(priv) < 3; k++ {
		if home := f.lay.Home[k]; !taken[home] {
			taken[home] = true
			priv = append(priv, Key(k))
		}
	}
	if len(priv) != 3 {
		t.Fatal("fixture too small for three private pages")
	}
	e.cfg.Device.SetFaultModel(pageFaultModel{
		faults: map[ssd.PageID]ssd.Fault{deadPage: {Err: ssd.ErrReadFailed}},
	})

	batch := [][]Key{
		{k1, priv[0]},     // shares the dead page via k1
		{k1, k2, priv[1]}, // shares it via both keys
		{priv[2]},         // never touches it
	}
	br, err := e.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if got := br.Stats.Combined.FailedKeys; got != 2 {
		t.Fatalf("combined FailedKeys = %d, want 2 (k1, k2 once each, not once per sharer)", got)
	}
	if got := br.Stats.Combined.PagesRead; got != 4 {
		t.Fatalf("combined PagesRead = %d, want 4 (dead page + three private pages)", got)
	}

	type want struct {
		pages, failed, useful int
		share                 float64
		failedKeys            []Key
	}
	// The dead page is shared by queries 0 and 1, so each is charged the
	// read once and half its share; query 2's accounting must be untouched.
	wants := []want{
		{pages: 2, failed: 1, useful: 1, share: 1.5, failedKeys: []Key{k1}},
		{pages: 2, failed: 2, useful: 1, share: 1.5, failedKeys: []Key{k1, k2}},
		{pages: 1, failed: 0, useful: 1, share: 1.0, failedKeys: nil},
	}
	var shareSum float64
	for qi, r := range br.PerQuery {
		st, wq := r.Stats, wants[qi]
		if st.PagesRead != wq.pages {
			t.Errorf("query %d PagesRead = %d, want %d", qi, st.PagesRead, wq.pages)
		}
		if st.FailedKeys != wq.failed || len(r.FailedKeys) != wq.failed {
			t.Errorf("query %d FailedKeys = %d (slice %d), want %d",
				qi, st.FailedKeys, len(r.FailedKeys), wq.failed)
		}
		for i, k := range wq.failedKeys {
			if r.FailedKeys[i] != k {
				t.Errorf("query %d FailedKeys[%d] = %d, want %d", qi, i, r.FailedKeys[i], k)
			}
		}
		if st.UsefulFromSSD != wq.useful {
			t.Errorf("query %d UsefulFromSSD = %d, want %d", qi, st.UsefulFromSSD, wq.useful)
		}
		if st.PageShare < wq.share-1e-9 || st.PageShare > wq.share+1e-9 {
			t.Errorf("query %d PageShare = %v, want %v", qi, st.PageShare, wq.share)
		}
		// One-shard backend: the busiest-shard depth is the page count.
		if st.MaxShardDepth != st.PagesRead {
			t.Errorf("query %d MaxShardDepth = %d, want PagesRead %d on one shard",
				qi, st.MaxShardDepth, st.PagesRead)
		}
		shareSum += st.PageShare
	}
	if tot := float64(br.Stats.Combined.PagesRead); shareSum < tot-1e-9 || shareSum > tot+1e-9 {
		t.Errorf("PageShare sum = %v, want combined PagesRead %v", shareSum, tot)
	}
	if got := e.SpreadDepth.Count(); got != int64(len(batch)) {
		t.Errorf("SpreadDepth recorded %d samples, want one per member query (%d)", got, len(batch))
	}
}

// TestLookupBatchStoreFallbackAttribution is the regression test for
// store-fallback scatter accounting: a shared key whose only replica sits
// on a declared-dead shard is rerouted to host-store read-through, and the
// per-query stats must account it as a StoreFallback — not as an SSD-served
// key — exactly as the combined pass does. Before the fix, each sharer's
// UsefulFromSSD silently counted the fallback key as if it had crossed the
// device.
func TestLookupBatchStoreFallbackAttribution(t *testing.T) {
	capacity := embedding.PageCapacity(4096, testDim)
	lay := layout.Vanilla(2*capacity, capacity) // page 0 → shard 0, page 1 → shard 1
	syn, err := embedding.NewSynthesizer(testDim, 8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr := mustTestArray(t, ssd.P5800X, 2)
	arr.SetShardFaultModel(0, deadShardModel{})
	arr.FailShard(0)
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}

	// Key 0 lives only on dead shard 0 (no replica): both queries need it
	// and it can only come from the host store. Keys b0/b1 are private and
	// served by one shared read of live page 1.
	shared := Key(0)
	b0, b1 := Key(capacity), Key(capacity+1)
	batch := [][]Key{{shared, b0}, {shared, b1}}
	br, err := e.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	cb := br.Stats.Combined
	if cb.StoreFallbacks != 1 || cb.UsefulFromSSD != 2 || cb.PagesRead != 1 {
		t.Fatalf("combined fallbacks/useful/pages = %d/%d/%d, want 1/2/1: %+v",
			cb.StoreFallbacks, cb.UsefulFromSSD, cb.PagesRead, cb)
	}
	var want []float32
	for qi, r := range br.PerQuery {
		st := r.Stats
		if st.Degraded || st.FailedKeys != 0 {
			t.Fatalf("query %d degraded despite store fallback: %+v", qi, st)
		}
		if st.StoreFallbacks != 1 {
			t.Errorf("query %d StoreFallbacks = %d, want 1", qi, st.StoreFallbacks)
		}
		if st.UsefulFromSSD != 1 {
			t.Errorf("query %d UsefulFromSSD = %d, want 1 (fallback key is not SSD-served)",
				qi, st.UsefulFromSSD)
		}
		if st.PagesRead != 1 || st.MaxShardDepth != 1 {
			t.Errorf("query %d pages/depth = %d/%d, want 1/1", qi, st.PagesRead, st.MaxShardDepth)
		}
		if st.PageShare < 0.5-1e-9 || st.PageShare > 0.5+1e-9 {
			t.Errorf("query %d PageShare = %v, want 0.5 (page 1 shared)", qi, st.PageShare)
		}
		// Both keys still arrive byte-correct.
		if len(r.Keys) != 2 {
			t.Fatalf("query %d served %d keys, want 2", qi, len(r.Keys))
		}
		for i, k := range r.Keys {
			want = syn.Vector(k, want[:0])
			for j := range want {
				if r.Vectors[i][j] != want[j] {
					t.Fatalf("query %d key %d: wrong vector via fallback path", qi, k)
				}
			}
		}
	}
}

func TestLookupBatchDegenerateSizes(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.2)
	e := f.engine(t, nil)
	w := e.NewWorker()
	br, err := w.LookupBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.PerQuery) != 0 || br.Stats.Queries != 0 {
		t.Errorf("empty batch returned %+v", br.Stats)
	}
	// A batch of one behaves exactly like Lookup.
	q := f.trace.Queries[0]
	br, err = w.LookupBatch([][]Key{q})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.PerQuery) != 1 {
		t.Fatalf("PerQuery = %d", len(br.PerQuery))
	}
	if st := br.PerQuery[0].Stats; st.BatchSize != 1 || st.PageShare != float64(st.PagesRead) {
		t.Errorf("singleton batch stats %+v not equivalent to isolated Lookup", st)
	}
}

func TestRunBatchedMonotonicGains(t *testing.T) {
	// §8.2: widening the per-pass key set monotonically raises valid
	// embeddings per read and effective bandwidth on a replicated layout.
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	queries := f.trace.Queries[:800]

	var prev RunResult
	sizes := []int{1, 4, 16}
	results := make([]RunResult, len(sizes))
	for i, b := range sizes {
		r, err := RunBatched(f.engine(t, nil), queries, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
		if r.Queries != int64(len(queries)) {
			t.Fatalf("B=%d served %d queries, want %d", b, r.Queries, len(queries))
		}
		if i > 0 {
			if r.MeanValidPerRead < prev.MeanValidPerRead {
				t.Errorf("B=%d MeanValidPerRead %.3f < B=%d's %.3f",
					b, r.MeanValidPerRead, sizes[i-1], prev.MeanValidPerRead)
			}
			if r.PagesRead > prev.PagesRead {
				t.Errorf("B=%d read %d pages > B=%d's %d", b, r.PagesRead, sizes[i-1], prev.PagesRead)
			}
		}
		prev = r
	}
	first, last := results[0], results[len(results)-1]
	if last.MeanValidPerRead <= first.MeanValidPerRead {
		t.Errorf("no end-to-end valid-per-read gain: B=1 %.3f, B=16 %.3f",
			first.MeanValidPerRead, last.MeanValidPerRead)
	}
	if last.EffectiveBandwidth <= first.EffectiveBandwidth {
		t.Errorf("no end-to-end bandwidth gain: B=1 %.3e, B=16 %.3e",
			first.EffectiveBandwidth, last.EffectiveBandwidth)
	}
	if last.SharedKeys == 0 || last.SharedPageReads == 0 {
		t.Errorf("B=16 recorded no sharing: %d shared keys, %d shared reads",
			last.SharedKeys, last.SharedPageReads)
	}
}

func TestLookupBatchRecordsPerQueryHistory(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	rec := NewHistoryRecorder(64)
	e := f.engine(t, func(c *Config) { c.Recorder = rec })
	batch := f.trace.Queries[:5]
	if _, err := e.NewWorker().LookupBatch(batch); err != nil {
		t.Fatal(err)
	}
	// The recorder must see the true per-query key sets — not the batch
	// union — so Refresh learns real co-appearance, not batching artifacts.
	if rec.Total() != int64(len(batch)) {
		t.Fatalf("recorded %d queries, want %d", rec.Total(), len(batch))
	}
	snap := rec.Snapshot()
	for qi, q := range batch {
		distinct := map[Key]bool{}
		for _, k := range q {
			distinct[k] = true
		}
		if len(snap[qi]) != len(distinct) {
			t.Errorf("recorded query %d has %d keys, want %d", qi, len(snap[qi]), len(distinct))
		}
	}
}
