package serving

import (
	"testing"

	"maxembed/internal/placement"
	"maxembed/internal/ssd"
)

// collectQueryResult deep-copies a scattered per-query result out of worker
// scratch (which the next lookup reuses).
func collectQueryResult(r Result) (keys []Key, vecs map[Key][]float32, failed []Key) {
	keys = append(keys, r.Keys...)
	vecs = make(map[Key][]float32, len(r.Keys))
	for i, k := range r.Keys {
		vecs[k] = append([]float32(nil), r.Vectors[i]...)
	}
	failed = append(failed, r.FailedKeys...)
	return keys, vecs, failed
}

func TestLookupBatchScatterMatchesIsolated(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	batch := f.trace.Queries[:6]

	// Batched serving on one engine, isolated serving on an identical fresh
	// one (both cacheless, so results cannot diverge through cache state).
	be := f.engine(t, nil)
	br, err := be.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.PerQuery) != len(batch) {
		t.Fatalf("PerQuery = %d, want %d", len(br.PerQuery), len(batch))
	}
	gotKeys := make([][]Key, len(batch))
	gotVecs := make([]map[Key][]float32, len(batch))
	for qi := range batch {
		var failed []Key
		gotKeys[qi], gotVecs[qi], failed = collectQueryResult(br.PerQuery[qi])
		if len(failed) > 0 {
			t.Fatalf("query %d failed keys with no faults injected: %v", qi, failed)
		}
	}

	ie := f.engine(t, nil)
	iw := ie.NewWorker()
	for qi, q := range batch {
		iso, err := iw.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotKeys[qi]) != len(iso.Keys) {
			t.Fatalf("query %d: batched returned %d keys, isolated %d", qi, len(gotKeys[qi]), len(iso.Keys))
		}
		isoVecs := map[Key][]float32{}
		for i, k := range iso.Keys {
			isoVecs[k] = iso.Vectors[i]
		}
		for _, k := range gotKeys[qi] {
			want, ok := isoVecs[k]
			if !ok {
				t.Fatalf("query %d: batched returned key %d isolated serving did not", qi, k)
			}
			got := gotVecs[qi][k]
			if len(got) != len(want) {
				t.Fatalf("query %d key %d: dim %d vs %d", qi, k, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("query %d key %d element %d: %v != %v", qi, k, j, got[j], want[j])
				}
			}
		}
	}
}

func TestLookupBatchCrossQueryDedup(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	// A batch with heavy cross-query duplication: the same queries twice.
	base := f.trace.Queries[:4]
	batch := append(append([][]Key{}, base...), base...)

	be := f.engine(t, nil)
	br, err := be.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}

	ie := f.engine(t, nil)
	iw := ie.NewWorker()
	isoPages := 0
	for _, q := range batch {
		res, err := iw.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		isoPages += res.Stats.PagesRead
	}
	// Every key appears in ≥ 2 queries, so the combined pass must read at
	// most half the pages of isolated serving (cacheless engines).
	if got := br.Stats.Combined.PagesRead; got > isoPages/2 {
		t.Errorf("batched pass read %d pages, isolated %d — shared keys not deduped", got, isoPages)
	}
	if br.Stats.SharedKeys != br.Stats.Combined.DistinctKeys {
		t.Errorf("SharedKeys = %d, want every distinct key (%d) shared",
			br.Stats.SharedKeys, br.Stats.Combined.DistinctKeys)
	}
	if br.Stats.SharedPageReads == 0 {
		t.Error("no page reads marked shared in a fully-duplicated batch")
	}
}

func TestLookupBatchStatsAttribution(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	batch := f.trace.Queries[:8]
	e := f.engine(t, nil)
	br, err := e.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	var shareSum float64
	for qi, r := range br.PerQuery {
		st := r.Stats
		if st.BatchSize != len(batch) {
			t.Errorf("query %d BatchSize = %d, want %d", qi, st.BatchSize, len(batch))
		}
		if st.Keys != len(batch[qi]) {
			t.Errorf("query %d Keys = %d, want %d", qi, st.Keys, len(batch[qi]))
		}
		if got := st.LatencyNS(); got != br.Stats.LatencyNS() {
			t.Errorf("query %d latency %d != batch latency %d (completes with the batch)",
				qi, got, br.Stats.LatencyNS())
		}
		if st.PagesRead < 1 || st.PagesRead > br.Stats.Combined.PagesRead {
			t.Errorf("query %d PagesRead = %d outside [1, %d]", qi, st.PagesRead, br.Stats.Combined.PagesRead)
		}
		if st.PageShare <= 0 || st.PageShare > float64(st.PagesRead) {
			t.Errorf("query %d PageShare = %v outside (0, %d]", qi, st.PageShare, st.PagesRead)
		}
		shareSum += st.PageShare
	}
	// Fractional shares apportion the combined pass exactly: they sum back
	// to the batch's page-read total (modulo float rounding).
	if tot := float64(br.Stats.Combined.PagesRead); shareSum < tot-1e-6 || shareSum > tot+1e-6 {
		t.Errorf("PageShare sum = %v, want %v", shareSum, tot)
	}
}

func TestLookupBatchFailedKeyAttribution(t *testing.T) {
	// Unreplicated layout + recovery disabled: every injected fault degrades
	// immediately, so its page's keys must surface in FailedKeys — of
	// exactly the queries that asked for them.
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, func(c *Config) { c.MaxRetries = Retries(0) })
	e.cfg.Device.SetFaultInjector(ssd.FailEveryN(3))

	batch := f.trace.Queries[:6]
	br, err := e.NewWorker().LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if br.Stats.Combined.FailedKeys == 0 {
		t.Fatal("no failed keys despite injected faults and disabled recovery")
	}
	degradedBefore := e.Recovery.DegradedQueries.Load()
	failedDistinct := map[Key]bool{}
	degraded := 0
	for qi, r := range br.PerQuery {
		asked := map[Key]bool{}
		for _, k := range batch[qi] {
			asked[k] = true
		}
		for _, k := range r.FailedKeys {
			if !asked[k] {
				t.Errorf("query %d charged failed key %d it never asked for", qi, k)
			}
			failedDistinct[k] = true
		}
		for _, k := range r.Keys {
			for _, fk := range r.FailedKeys {
				if k == fk {
					t.Errorf("query %d key %d both served and failed", qi, k)
				}
			}
		}
		if got := len(r.FailedKeys); got != r.Stats.FailedKeys {
			t.Errorf("query %d FailedKeys stat %d != slice len %d", qi, r.Stats.FailedKeys, got)
		}
		if r.Stats.Degraded != (len(r.FailedKeys) > 0) {
			t.Errorf("query %d Degraded = %v with %d failed keys", qi, r.Stats.Degraded, len(r.FailedKeys))
		}
		if r.Stats.Degraded {
			degraded++
		}
		// Accounting closes: served + failed covers the query's distinct set.
		if len(r.Keys)+len(r.FailedKeys) != r.Stats.DistinctKeys {
			t.Errorf("query %d: %d served + %d failed != %d distinct",
				qi, len(r.Keys), len(r.FailedKeys), r.Stats.DistinctKeys)
		}
	}
	if len(failedDistinct) != br.Stats.Combined.FailedKeys {
		t.Errorf("distinct failed keys across queries = %d, combined pass reported %d",
			len(failedDistinct), br.Stats.Combined.FailedKeys)
	}
	if degraded == 0 {
		t.Error("failed keys attributed to no query")
	}
	// Engine counters count degraded member queries, not batches.
	if got := degradedBefore; got != int64(degraded) {
		t.Errorf("DegradedQueries counter = %d, want %d", got, degraded)
	}
}

func TestLookupBatchDegenerateSizes(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.2)
	e := f.engine(t, nil)
	w := e.NewWorker()
	br, err := w.LookupBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.PerQuery) != 0 || br.Stats.Queries != 0 {
		t.Errorf("empty batch returned %+v", br.Stats)
	}
	// A batch of one behaves exactly like Lookup.
	q := f.trace.Queries[0]
	br, err = w.LookupBatch([][]Key{q})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.PerQuery) != 1 {
		t.Fatalf("PerQuery = %d", len(br.PerQuery))
	}
	if st := br.PerQuery[0].Stats; st.BatchSize != 1 || st.PageShare != float64(st.PagesRead) {
		t.Errorf("singleton batch stats %+v not equivalent to isolated Lookup", st)
	}
}

func TestRunBatchedMonotonicGains(t *testing.T) {
	// §8.2: widening the per-pass key set monotonically raises valid
	// embeddings per read and effective bandwidth on a replicated layout.
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	queries := f.trace.Queries[:800]

	var prev RunResult
	sizes := []int{1, 4, 16}
	results := make([]RunResult, len(sizes))
	for i, b := range sizes {
		r, err := RunBatched(f.engine(t, nil), queries, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
		if r.Queries != int64(len(queries)) {
			t.Fatalf("B=%d served %d queries, want %d", b, r.Queries, len(queries))
		}
		if i > 0 {
			if r.MeanValidPerRead < prev.MeanValidPerRead {
				t.Errorf("B=%d MeanValidPerRead %.3f < B=%d's %.3f",
					b, r.MeanValidPerRead, sizes[i-1], prev.MeanValidPerRead)
			}
			if r.PagesRead > prev.PagesRead {
				t.Errorf("B=%d read %d pages > B=%d's %d", b, r.PagesRead, sizes[i-1], prev.PagesRead)
			}
		}
		prev = r
	}
	first, last := results[0], results[len(results)-1]
	if last.MeanValidPerRead <= first.MeanValidPerRead {
		t.Errorf("no end-to-end valid-per-read gain: B=1 %.3f, B=16 %.3f",
			first.MeanValidPerRead, last.MeanValidPerRead)
	}
	if last.EffectiveBandwidth <= first.EffectiveBandwidth {
		t.Errorf("no end-to-end bandwidth gain: B=1 %.3e, B=16 %.3e",
			first.EffectiveBandwidth, last.EffectiveBandwidth)
	}
	if last.SharedKeys == 0 || last.SharedPageReads == 0 {
		t.Errorf("B=16 recorded no sharing: %d shared keys, %d shared reads",
			last.SharedKeys, last.SharedPageReads)
	}
}

func TestLookupBatchRecordsPerQueryHistory(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	rec := NewHistoryRecorder(64)
	e := f.engine(t, func(c *Config) { c.Recorder = rec })
	batch := f.trace.Queries[:5]
	if _, err := e.NewWorker().LookupBatch(batch); err != nil {
		t.Fatal(err)
	}
	// The recorder must see the true per-query key sets — not the batch
	// union — so Refresh learns real co-appearance, not batching artifacts.
	if rec.Total() != int64(len(batch)) {
		t.Fatalf("recorded %d queries, want %d", rec.Total(), len(batch))
	}
	snap := rec.Snapshot()
	for qi, q := range batch {
		distinct := map[Key]bool{}
		for _, k := range q {
			distinct[k] = true
		}
		if len(snap[qi]) != len(distinct) {
			t.Errorf("recorded query %d has %d keys, want %d", qi, len(snap[qi]), len(distinct))
		}
	}
}
