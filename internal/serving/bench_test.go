package serving

import (
	"fmt"
	"os"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

func benchEngine(b *testing.B, withStore bool) (*Engine, *workload.Trace) {
	b.Helper()
	p := workload.Criteo.Scaled(0.05)
	tr, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	hist, _ := tr.Split(0.5)
	g, err := hypergraph.FromQueries(tr.NumItems, hist.Queries)
	if err != nil {
		b.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, 64), ReplicationRatio: 0.2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	dev, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Layout:       lay,
		Device:       dev,
		CacheEntries: tr.NumItems / 10,
		IndexLimit:   10,
		Pipeline:     true,
		VectorBytes:  256,
	}
	if withStore {
		syn, err := embedding.NewSynthesizer(64, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := store.Build(lay, syn, 4096)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Store = st
	}
	eng, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return eng, tr
}

// BenchmarkWorkerLookupTiming measures the timing-only serving path — the
// configuration the experiment sweeps use.
func BenchmarkWorkerLookupTiming(b *testing.B) {
	eng, tr := benchEngine(b, false)
	w := eng.NewWorker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Lookup(tr.Queries[i%len(tr.Queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkerLookupFull includes page-image vector extraction.
func BenchmarkWorkerLookupFull(b *testing.B) {
	eng, tr := benchEngine(b, true)
	w := eng.NewWorker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Lookup(tr.Queries[i%len(tr.Queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShardedEngine is benchEngine striped over a device array, with
// shard-aware replica placement and a sharded store.
func benchShardedEngine(b *testing.B, devices int) (*Engine, *workload.Trace) {
	b.Helper()
	p := workload.Criteo.Scaled(0.05)
	tr, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	hist, _ := tr.Split(0.5)
	g, err := hypergraph.FromQueries(tr.NumItems, hist.Queries)
	if err != nil {
		b.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, 64), ReplicationRatio: 0.2, Seed: 1,
		Shards: devices,
	})
	if err != nil {
		b.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.BuildSharded(lay, syn, 4096, devices)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := ssd.NewArray(ssd.P5800X, devices)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(Config{
		Layout:       lay,
		Backend:      arr,
		Store:        st,
		CacheEntries: tr.NumItems / 10,
		IndexLimit:   10,
		Pipeline:     true,
		VectorBytes:  256,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng, tr
}

// BenchmarkWorkerLookupSharded measures the full lookup path over striped
// device arrays: the per-shard queue routing, cross-shard completion merge,
// and selection tie-breaking that only multi-device engines exercise.
func BenchmarkWorkerLookupSharded(b *testing.B) {
	for _, devices := range []int{1, 2, 4} {
		b.Run(fmtDevices(devices), func(b *testing.B) {
			eng, tr := benchShardedEngine(b, devices)
			w := eng.NewWorker()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Lookup(tr.Queries[i%len(tr.Queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func fmtDevices(n int) string {
	return map[int]string{1: "devices=1", 2: "devices=2", 4: "devices=4"}[n]
}

// benchFileEngine builds the zero-copy real-I/O stack: shard files in a
// temp dir served through the async backend, cacheless so every lookup
// takes the ref path end to end.
func benchFileEngine(b *testing.B, shards int) (*Engine, *workload.Trace) {
	b.Helper()
	p := workload.Criteo.Scaled(0.05)
	tr, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	hist, _ := tr.Split(0.5)
	g, err := hypergraph.FromQueries(tr.NumItems, hist.Queries)
	if err != nil {
		b.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, 64), ReplicationRatio: 0.2, Seed: 1,
		Shards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, shards)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	files := make([]*store.FileStore, shards)
	for i := range files {
		path := fmt.Sprintf("%s/shard%03d.bin", dir, i)
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sh.Shard(i).WriteTo(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		if files[i], _, err = store.OpenFileAuto(path); err != nil {
			b.Fatal(err)
		}
	}
	fb, err := ssd.NewFileBackend(files, ssd.FileBackendConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fb.Close() })
	eng, err := New(Config{
		Layout:   lay,
		Backend:  fb,
		Store:    sh,
		Pipeline: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng, tr
}

// BenchmarkWorkerLookupFileBackend measures the real-I/O hot path end to
// end — selection, async submit, measured-latency drain, in-place checksum
// verification, zero-copy ref assembly. Steady state allocates nothing
// (see TestFileBackendLookupZeroAllocs); -benchmem shows it.
func BenchmarkWorkerLookupFileBackend(b *testing.B) {
	for _, shards := range []int{1, 2} {
		b.Run(fmtDevices(shards), func(b *testing.B) {
			eng, tr := benchFileEngine(b, shards)
			w := eng.NewWorker()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Lookup(tr.Queries[i%len(tr.Queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkerLookupBatch measures the coalesced batch path end to end:
// combined pass plus per-query scatter.
func BenchmarkWorkerLookupBatch(b *testing.B) {
	eng, tr := benchEngine(b, true)
	w := eng.NewWorker()
	const batch = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := (i * batch) % (len(tr.Queries) - batch)
		if _, err := w.LookupBatch(tr.Queries[from : from+batch]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWorkerLookupSteadyStateAllocs guards the serving hot path's
// allocation budget: once a worker's scratch (result slices, selection
// plan, extraction arena) has grown to fit the workload, repeated lookups
// must allocate only incidental amounts — not one slice per key or per
// vector. The bound is deliberately loose (map rehashing and SSD queue
// growth make single-digit noise) but fails on any per-key regression.
func TestWorkerLookupSteadyStateAllocs(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	e := f.engine(t, nil) // cacheless: cache inserts intentionally allocate
	w := e.NewWorker()
	qs := f.trace.Queries
	for i := 0; i < 300; i++ {
		if _, err := w.Lookup(qs[i%len(qs)]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		i++
		if _, err := w.Lookup(qs[i%len(qs)]); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state Lookup allocs/op: %.1f (queries average %d keys)", allocs, 16)
	if allocs > 16 {
		t.Errorf("steady-state Lookup allocates %.1f/op, budget 16", allocs)
	}
}

// TestWorkerLookupShardedSteadyStateAllocs holds the multi-shard lookup
// path to the same allocation budget as the single-device path: per-shard
// queue routing, the cross-shard completion merge, and shard-load
// tie-breaking must all run on reused worker scratch.
func TestWorkerLookupShardedSteadyStateAllocs(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	e := f.engine(t, func(c *Config) {
		c.Device = nil
		c.Backend = mustTestArray(t, ssd.P5800X, 4)
	})
	w := e.NewWorker()
	qs := f.trace.Queries
	for i := 0; i < 300; i++ {
		if _, err := w.Lookup(qs[i%len(qs)]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		i++
		if _, err := w.Lookup(qs[i%len(qs)]); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state 4-shard Lookup allocs/op: %.1f", allocs)
	if allocs > 16 {
		t.Errorf("steady-state 4-shard Lookup allocates %.1f/op, budget 16", allocs)
	}
}
