package serving

import (
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

func benchEngine(b *testing.B, withStore bool) (*Engine, *workload.Trace) {
	b.Helper()
	p := workload.Criteo.Scaled(0.05)
	tr, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	hist, _ := tr.Split(0.5)
	g, err := hypergraph.FromQueries(tr.NumItems, hist.Queries)
	if err != nil {
		b.Fatal(err)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: embedding.PageCapacity(4096, 64), ReplicationRatio: 0.2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	dev, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Layout:       lay,
		Device:       dev,
		CacheEntries: tr.NumItems / 10,
		IndexLimit:   10,
		Pipeline:     true,
		VectorBytes:  256,
	}
	if withStore {
		syn, err := embedding.NewSynthesizer(64, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := store.Build(lay, syn, 4096)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Store = st
	}
	eng, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return eng, tr
}

// BenchmarkWorkerLookupTiming measures the timing-only serving path — the
// configuration the experiment sweeps use.
func BenchmarkWorkerLookupTiming(b *testing.B) {
	eng, tr := benchEngine(b, false)
	w := eng.NewWorker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Lookup(tr.Queries[i%len(tr.Queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkerLookupFull includes page-image vector extraction.
func BenchmarkWorkerLookupFull(b *testing.B) {
	eng, tr := benchEngine(b, true)
	w := eng.NewWorker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Lookup(tr.Queries[i%len(tr.Queries)]); err != nil {
			b.Fatal(err)
		}
	}
}
