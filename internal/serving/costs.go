package serving

import "math"

// CostModel charges virtual nanoseconds for the software stages of query
// processing, letting the discrete-event simulation reproduce the paper's
// software-vs-SSD overhead ratios deterministically (§6, Fig 15). The
// default constants approximate per-operation costs of the corresponding
// Go code on a current server core; what matters for the reproduction is
// that one-pass selection of a ~26-key query lands in the same few-µs
// order of magnitude as an Optane page read, as the paper observes (§6.2).
type CostModel interface {
	// CacheProbe is charged once per query for probing n distinct keys.
	CacheProbe(n int) int64
	// Sort is charged for sorting n keys by replica count (§6.1 ❶).
	Sort(n int) int64
	// Select is charged incrementally per selected page, given the
	// candidate pages and invert-index entries examined since the
	// previous selection.
	Select(candidatePages, invertScans int) int64
	// Submit is the per-command submission overhead (queue doorbell).
	Submit() int64
	// Extract is charged per embedding copied out of a fetched page.
	Extract(n int) int64
}

// DefaultCosts is the standard cost model.
type DefaultCosts struct {
	CacheProbePerKeyNS float64
	SortPerKeyLogNS    float64
	CandidatePageNS    float64
	InvertScanNS       float64
	SubmitNS           float64
	ExtractPerKeyNS    float64
}

// NewDefaultCosts returns the calibrated default model.
func NewDefaultCosts() DefaultCosts {
	return DefaultCosts{
		CacheProbePerKeyNS: 60,  // sharded map lookup + LRU list bump
		SortPerKeyLogNS:    25,  // comparison sort per key·log(key)
		CandidatePageNS:    45,  // forward-index entry fetch (random DRAM)
		InvertScanNS:       30,  // invert-index entry test (random DRAM)
		SubmitNS:           300, // NVMe submission-queue doorbell (SPDK-like)
		ExtractPerKeyNS:    80,  // 256 B copy + bookkeeping
	}
}

// CacheProbe implements CostModel.
func (c DefaultCosts) CacheProbe(n int) int64 {
	return int64(c.CacheProbePerKeyNS * float64(n))
}

// Sort implements CostModel.
func (c DefaultCosts) Sort(n int) int64 {
	if n < 2 {
		return 0
	}
	return int64(c.SortPerKeyLogNS * float64(n) * math.Log2(float64(n)))
}

// Select implements CostModel.
func (c DefaultCosts) Select(candidatePages, invertScans int) int64 {
	return int64(c.CandidatePageNS*float64(candidatePages) + c.InvertScanNS*float64(invertScans))
}

// Submit implements CostModel.
func (c DefaultCosts) Submit() int64 { return int64(c.SubmitNS) }

// Extract implements CostModel.
func (c DefaultCosts) Extract(n int) int64 {
	return int64(c.ExtractPerKeyNS * float64(n))
}

// ZeroCosts charges nothing for software, isolating pure device behaviour
// (useful in tests and for effective-bandwidth-only experiments).
type ZeroCosts struct{}

// CacheProbe implements CostModel.
func (ZeroCosts) CacheProbe(int) int64 { return 0 }

// Sort implements CostModel.
func (ZeroCosts) Sort(int) int64 { return 0 }

// Select implements CostModel.
func (ZeroCosts) Select(int, int) int64 { return 0 }

// Submit implements CostModel.
func (ZeroCosts) Submit() int64 { return 0 }

// Extract implements CostModel.
func (ZeroCosts) Extract(int) int64 { return 0 }
