// Package serving implements MaxEmbed's online phase end to end: query →
// dedupe → DRAM cache probe → page selection → (pipelined) asynchronous
// SSD reads → vector extraction → cache fill. Timing is virtual: device
// time comes from the ssd package's discrete-event model and software time
// from a CostModel, so runs are deterministic and reproducible while
// preserving the paper's software/IO overlap structure (§6).
package serving

import (
	"errors"
	"fmt"

	"maxembed/internal/cache"
	"maxembed/internal/layout"
	"maxembed/internal/metrics"
	"maxembed/internal/selection"
	"maxembed/internal/ssd"
)

// Key is an embedding key.
type Key = layout.Key

// PageSource supplies embedding payloads from materialized page images.
// store.Store (in-memory) and store.FileStore (on-disk, page-aligned
// reads) both implement it.
type PageSource interface {
	// Dim returns the embedding dimension.
	Dim() int
	// Extract appends key k's vector from page p to dst, scanning the
	// page's first nSlots slots.
	Extract(p layout.PageID, k layout.Key, nSlots int, dst []float32) ([]float32, bool, error)
}

// Config assembles an engine.
type Config struct {
	// Layout is the embedding placement (required).
	Layout *layout.Layout
	// Device is the simulated SSD (required).
	Device *ssd.Device
	// Store supplies page payloads. Optional: nil runs timing-only (no
	// vector extraction or verification). Use a typed nil-free value:
	// pass nil directly, not a nil *store.Store in a PageSource variable.
	Store PageSource
	// CacheEntries sets the DRAM cache capacity in embeddings; 0 disables
	// caching (§8.3's cacheless configuration).
	CacheEntries int
	// SegmentedCache switches the DRAM cache from plain LRU (the paper's
	// configuration) to CacheLib's scan-resistant segmented LRU.
	SegmentedCache bool
	// IndexLimit is k, the index-shrinking bound (§6.1); 0 keeps all
	// replica entries.
	IndexLimit int
	// Pipeline overlaps page selection with SSD reads (§6.2). When false
	// every read is issued only after the whole selection finishes — the
	// "Raw" configuration of Fig 15.
	Pipeline bool
	// Greedy selects pages with classic greedy set cover instead of the
	// one-pass algorithm (ablation baseline, §6).
	Greedy bool
	// UnsortedSelection disables the ascending replica-count key ordering
	// of §6.1 step ❶ (ablation; ignored when Greedy is set).
	UnsortedSelection bool
	// Costs is the software cost model; nil uses NewDefaultCosts().
	Costs CostModel
	// MaxRetries re-issues failed page reads (fault injection) this many
	// times before giving up. Default 2.
	MaxRetries int
	// VectorBytes overrides the per-embedding payload size used for
	// effective-bandwidth accounting when Store is nil (timing-only
	// engines). Ignored when a Store is present.
	VectorBytes int
	// Recorder, when set, receives every served query's distinct keys so
	// the offline phase can later be refreshed from live traffic.
	Recorder *HistoryRecorder
}

// Engine is the shared, immutable part of a serving deployment. Workers
// created by NewWorker do the per-goroutine work.
type Engine struct {
	cfg     Config
	idx     *selection.Index
	cache   *cache.Cache[Key, []float32]
	costs   CostModel
	dim     int
	vecSize int

	// Latency is recorded per query across all workers.
	Latency metrics.Recorder
	// ValidPerRead is the Fig 9 histogram: embeddings served per page read.
	ValidPerRead *metrics.IntHist
}

// New builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Layout == nil {
		return nil, errors.New("serving: Config.Layout is required")
	}
	if cfg.Device == nil {
		return nil, errors.New("serving: Config.Device is required")
	}
	if err := cfg.Layout.Validate(); err != nil {
		return nil, fmt.Errorf("serving: %w", err)
	}
	if cfg.Costs == nil {
		cfg.Costs = NewDefaultCosts()
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	e := &Engine{
		cfg:          cfg,
		idx:          selection.NewIndex(cfg.Layout, cfg.IndexLimit),
		costs:        cfg.Costs,
		ValidPerRead: metrics.NewIntHist(cfg.Layout.Capacity),
	}
	switch {
	case cfg.Store != nil:
		e.dim = cfg.Store.Dim()
		e.vecSize = e.dim * 4
	case cfg.VectorBytes > 0:
		e.vecSize = cfg.VectorBytes
	default:
		// Timing-only mode still accounts useful bytes by layout capacity
		// arithmetic: approximate the slot payload from the page size.
		e.vecSize = cfg.Device.Profile().PageSize / cfg.Layout.Capacity
	}
	if cfg.CacheEntries > 0 {
		if cfg.SegmentedCache {
			e.cache = cache.NewSegmentedLRU[Key, []float32](cfg.CacheEntries, cache.Uint32Hasher)
		} else {
			e.cache = cache.New[Key, []float32](cfg.CacheEntries, cache.Uint32Hasher)
		}
	}
	return e, nil
}

// Index exposes the engine's selection index (read-only).
func (e *Engine) Index() *selection.Index { return e.idx }

// Cache returns the DRAM cache, or nil when disabled.
func (e *Engine) Cache() *cache.Cache[Key, []float32] { return e.cache }

// QueryStats describes one processed query.
type QueryStats struct {
	// Keys is the raw query length; DistinctKeys after dedup.
	Keys, DistinctKeys int
	// CacheHits of the distinct keys were served from DRAM.
	CacheHits int
	// PagesRead is the number of SSD page reads issued (excluding retries).
	PagesRead int
	// Retries is the number of re-issued reads after injected failures.
	Retries int
	// UsefulFromSSD is the number of distinct keys served from SSD pages.
	UsefulFromSSD int
	// StartNS/EndNS bound the query on the worker's virtual clock.
	StartNS, EndNS int64
	// SortNS, SelectNS, and OtherSoftNS break down charged software time;
	// SSDWaitNS is the residual the worker spent blocked on the device.
	SortNS, SelectNS, OtherSoftNS, SSDWaitNS int64
}

// LatencyNS returns the end-to-end virtual latency.
func (s QueryStats) LatencyNS() int64 { return s.EndNS - s.StartNS }

// Result is the outcome of one lookup. Vectors are only populated when the
// engine has a Store; the backing array is reused by the worker, so the
// caller must consume the result before the next Lookup.
type Result struct {
	Stats QueryStats
	// Keys and Vectors are parallel: Vectors[i] is the embedding of
	// Keys[i], covering every distinct key of the query.
	Keys    []Key
	Vectors [][]float32
}

// planEntry records one selected page and the range of covered keys in
// Worker.coveredFlat.
type planEntry struct {
	page       layout.PageID
	from, to   int
	issueAtNS  int64
	selectCost int64
}

// Worker is a single-threaded serving session: it owns a selector, an SSD
// queue pair, and a monotonically increasing virtual clock. Create one per
// concurrent serving thread being modelled. Not safe for concurrent use.
type Worker struct {
	eng *Engine
	sel *selection.Selector
	q   *ssd.Queue

	// now is the worker's virtual clock in nanoseconds.
	now int64

	// Per-query scratch.
	plan        []planEntry
	coveredFlat []Key
	distinct    []Key
	batchBuf    []Key
	hitKeys     []Key
	hitVecs     [][]float32
	vecArena    []float32
	seen        map[Key]struct{}
}

// NewWorker returns a worker bound to the engine. The worker's virtual
// clock starts at the device's current frontier so a session created after
// prior activity does not appear to queue behind long-finished work.
func (e *Engine) NewWorker() *Worker {
	return &Worker{
		eng:  e,
		sel:  selection.NewSelector(e.idx),
		q:    ssd.NewQueue(e.cfg.Device),
		now:  e.cfg.Device.Frontier(),
		seen: make(map[Key]struct{}, 64),
	}
}

// Now returns the worker's virtual clock.
func (w *Worker) Now() int64 { return w.now }

// SetNow advances the worker's virtual clock (e.g. to align fan-out
// workers to a common dispatch instant). The clock never moves backwards;
// earlier values are ignored.
func (w *Worker) SetNow(ns int64) {
	if ns > w.now {
		w.now = ns
	}
}

// Lookup serves one embedding query and advances the worker's clock to its
// completion time.
func (w *Worker) Lookup(query []Key) (Result, error) {
	e := w.eng
	var st QueryStats
	st.Keys = len(query)
	st.StartNS = w.now
	t := w.now

	// Cache probe over distinct keys (first-appearance order, so LRU
	// promotion order is deterministic); hits are served from DRAM.
	w.hitKeys = w.hitKeys[:0]
	w.hitVecs = w.hitVecs[:0]
	w.distinct = w.distinct[:0]
	clear(w.seen)
	for _, k := range query {
		if _, dup := w.seen[k]; dup {
			continue
		}
		w.seen[k] = struct{}{}
		w.distinct = append(w.distinct, k)
	}
	st.DistinctKeys = len(w.distinct)
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(w.distinct)
	}
	if e.cache != nil {
		for _, k := range w.distinct {
			if v, ok := e.cache.Get(k); ok {
				w.hitKeys = append(w.hitKeys, k)
				w.hitVecs = append(w.hitVecs, v)
			}
		}
		probe := e.costs.CacheProbe(st.DistinctKeys)
		t += probe
		st.OtherSoftNS += probe
		st.CacheHits = len(w.hitKeys)
	}
	skip := func(k Key) bool {
		if e.cache == nil {
			return false
		}
		return e.cache.Contains(k)
	}

	// Sort cost is charged up front (§6.1 ❶ happens inside the selector;
	// the model charges for the keys that reach it).
	missKeys := st.DistinctKeys - st.CacheHits
	sortCost := e.costs.Sort(missKeys)
	t += sortCost
	st.SortNS = sortCost

	// Page selection, optionally pipelined with submission.
	w.plan = w.plan[:0]
	w.coveredFlat = w.coveredFlat[:0]
	var prev selection.Stats
	emit := func(p layout.PageID, covered []Key, sofar selection.Stats) {
		from := len(w.coveredFlat)
		w.coveredFlat = append(w.coveredFlat, covered...)
		cost := e.costs.Select(sofar.CandidatePages-prev.CandidatePages,
			sofar.InvertScans-prev.InvertScans) + e.costs.Submit()
		prev = sofar
		w.plan = append(w.plan, planEntry{
			page:       p,
			from:       from,
			to:         len(w.coveredFlat),
			selectCost: cost,
		})
	}
	var selErr error
	switch {
	case e.cfg.Greedy:
		_, selErr = w.sel.Greedy(query, skip, emit)
	case e.cfg.UnsortedSelection:
		_, selErr = w.sel.OnePassUnsorted(query, skip, emit)
	default:
		_, selErr = w.sel.OnePass(query, skip, emit)
	}
	if selErr != nil {
		return Result{}, selErr
	}

	// Submit per the pipeline mode, charging selection cost as it accrues.
	if e.cfg.Pipeline {
		for i := range w.plan {
			t += w.plan[i].selectCost
			st.SelectNS += w.plan[i].selectCost
			w.plan[i].issueAtNS = w.q.Submit(w.plan[i].page, t)
		}
	} else {
		for i := range w.plan {
			t += w.plan[i].selectCost
			st.SelectNS += w.plan[i].selectCost
		}
		for i := range w.plan {
			w.plan[i].issueAtNS = w.q.Submit(w.plan[i].page, t)
		}
	}

	// Reap completions; retry injected failures.
	done, comps := w.q.Drain(t)
	for _, c := range comps {
		if c.Err == nil {
			continue
		}
		page := c.Page
		ok := false
		for r := 0; r < e.cfg.MaxRetries; r++ {
			st.Retries++
			w.q.Submit(page, done)
			var rc []ssd.Completion
			done, rc = w.q.Drain(done)
			if len(rc) == 1 && rc[0].Err == nil {
				ok = true
				break
			}
		}
		if !ok {
			return Result{}, fmt.Errorf("serving: page %d unreadable after %d retries: %w",
				page, e.cfg.MaxRetries, c.Err)
		}
	}
	ssdWait := done - t
	if ssdWait < 0 {
		ssdWait = 0
	}
	st.SSDWaitNS = ssdWait
	t = done
	st.PagesRead = len(w.plan)
	st.UsefulFromSSD = len(w.coveredFlat)
	for _, pe := range w.plan {
		e.ValidPerRead.Add(pe.to - pe.from)
	}

	// Extract vectors and fill the cache.
	res := Result{}
	extract := e.costs.Extract(len(w.coveredFlat))
	t += extract
	st.OtherSoftNS += extract
	if e.cfg.Store != nil {
		if err := w.extract(&res); err != nil {
			return Result{}, err
		}
	} else if e.cache != nil {
		for _, k := range w.coveredFlat {
			e.cache.Put(k, nil)
		}
	}
	res.Keys = append(res.Keys, w.hitKeys...)
	res.Vectors = append(res.Vectors, w.hitVecs...)

	st.EndNS = t
	w.now = t
	e.Latency.Record(st.LatencyNS())
	res.Stats = st
	return res, nil
}

// LookupBatch serves several queries as one combined lookup, deduplicating
// keys across them. Batching widens the key set page selection works with,
// so co-located and replicated embeddings are shared across the batch —
// the configuration the paper's throughput evaluation uses (§8.2 notes
// that batching causes cross-query duplication). The result covers the
// union of the queries' keys.
func (w *Worker) LookupBatch(queries [][]Key) (Result, error) {
	total := 0
	for _, q := range queries {
		total += len(q)
	}
	if cap(w.batchBuf) < total {
		w.batchBuf = make([]Key, 0, total)
	}
	w.batchBuf = w.batchBuf[:0]
	for _, q := range queries {
		w.batchBuf = append(w.batchBuf, q...)
	}
	return w.Lookup(w.batchBuf)
}

// extract decodes every covered key's vector from its selected page,
// verifies the slot key header, and inserts SSD-served vectors into the
// cache.
func (w *Worker) extract(res *Result) error {
	e := w.eng
	w.vecArena = w.vecArena[:0]
	// Arena-first pass: decode all vectors, then slice the arena (the
	// arena may reallocate while growing, so slicing must come after).
	for _, pe := range w.plan {
		nSlots := len(e.cfg.Layout.Pages[pe.page])
		for _, k := range w.coveredFlat[pe.from:pe.to] {
			var ok bool
			var err error
			w.vecArena, ok, err = e.cfg.Store.Extract(pe.page, k, nSlots, w.vecArena)
			if err != nil {
				return fmt.Errorf("serving: extract key %d from page %d: %w", k, pe.page, err)
			}
			if !ok {
				return fmt.Errorf("serving: page %d does not hold key %d (index corrupt?)", pe.page, k)
			}
		}
	}
	off := 0
	for _, pe := range w.plan {
		for _, k := range w.coveredFlat[pe.from:pe.to] {
			vec := w.vecArena[off : off+e.dim]
			off += e.dim
			res.Keys = append(res.Keys, k)
			res.Vectors = append(res.Vectors, vec)
			if e.cache != nil {
				// The cache owns its copy: arena memory is reused.
				cp := make([]float32, len(vec))
				copy(cp, vec)
				e.cache.Put(k, cp)
			}
		}
	}
	return nil
}
