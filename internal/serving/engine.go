// Package serving implements MaxEmbed's online phase end to end: query →
// dedupe → DRAM cache probe → page selection → (pipelined) asynchronous
// SSD reads → vector extraction → cache fill. Timing is virtual: device
// time comes from the ssd package's discrete-event model and software time
// from a CostModel, so runs are deterministic and reproducible while
// preserving the paper's software/IO overlap structure (§6).
//
// The read path is fault-tolerant: failed, timed-out, and corrupt page
// reads are recovered with capped exponential backoff, preferring an
// alternate replica page from the layout's index when one exists (the
// replica-rescue path only a replicated layout offers), and a query whose
// retry budget runs out degrades to a partial result instead of failing.
// See DESIGN.md § Fault model & recovery.
package serving

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"time"

	"maxembed/internal/cache"
	"maxembed/internal/embedding"
	"maxembed/internal/layout"
	"maxembed/internal/metrics"
	"maxembed/internal/selection"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// Key is an embedding key.
type Key = layout.Key

// PageSource supplies embedding payloads from materialized page images.
// store.Store (in-memory) and store.FileStore (on-disk, page-aligned
// reads) both implement it. Pages use the store package's self-verifying
// slot format ([key | checksum | vector]); the engine extracts and
// verifies slots from the image itself.
type PageSource interface {
	// Dim returns the embedding dimension.
	Dim() int
	// PageSize returns the page image size in bytes.
	PageSize() int
	// ReadPage copies page p's image into dst (at least PageSize bytes).
	// The engine owns dst and may mutate it after the call.
	ReadPage(p layout.PageID, dst []byte) error
}

// Config assembles an engine.
type Config struct {
	// Layout is the embedding placement (required).
	Layout *layout.Layout
	// Device is the simulated SSD. Exactly one of Device and Backend must
	// be set; Device is the single-drive special case of Backend.
	Device *ssd.Device
	// Backend is the read target when serving spans multiple devices: an
	// ssd.Array stripes the layout's global page space across N drives,
	// each worker drives one queue pair per shard, and reads are submitted
	// to the owning shard and reaped across shards. A one-shard Backend
	// behaves bit-identically to setting Device.
	Backend ssd.Backend
	// Store supplies page payloads. Optional: nil runs timing-only (no
	// vector extraction or verification). A non-nil interface wrapping a
	// nil pointer (e.g. a nil *store.Store assigned to a PageSource
	// variable) is rejected by New with a clear error.
	Store PageSource
	// CacheEntries sets the DRAM cache capacity in embeddings; 0 disables
	// caching (§8.3's cacheless configuration).
	CacheEntries int
	// SegmentedCache switches the DRAM cache from plain LRU (the paper's
	// configuration) to CacheLib's scan-resistant segmented LRU.
	SegmentedCache bool
	// IndexLimit is k, the index-shrinking bound (§6.1); 0 keeps all
	// replica entries.
	IndexLimit int
	// Pipeline overlaps page selection with SSD reads (§6.2). When false
	// every read is issued only after the whole selection finishes — the
	// "Raw" configuration of Fig 15.
	Pipeline bool
	// Greedy selects pages with classic greedy set cover instead of the
	// one-pass algorithm (ablation baseline, §6).
	Greedy bool
	// UnsortedSelection disables the ascending replica-count key ordering
	// of §6.1 step ❶ (ablation; ignored when Greedy is set).
	UnsortedSelection bool
	// Costs is the software cost model; nil uses NewDefaultCosts().
	Costs CostModel
	// MaxRetries caps recovery attempts per failed page read; when a
	// page's chain of retries (replica reads and re-reads) exhausts it,
	// its keys are reported in Result.FailedKeys. nil applies
	// DefaultMaxRetries; Retries(0) disables recovery entirely (every
	// fault degrades immediately) — zero really means zero, it is not
	// rewritten to the default. Negative values are clamped to 0.
	MaxRetries *int
	// RetryBudget caps the total recovery reads one query may issue
	// before degrading to a partial result. Default 32.
	RetryBudget int
	// RetryBackoff is the virtual-time backoff before the first recovery
	// read of a failed page; it doubles per attempt. Default 5µs.
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the exponential backoff. Default 200µs.
	RetryBackoffCap time.Duration
	// VectorBytes overrides the per-embedding payload size used for
	// effective-bandwidth accounting when Store is nil (timing-only
	// engines). Ignored when a Store is present.
	VectorBytes int
	// Recorder, when set, receives every served query's distinct keys so
	// the offline phase can later be refreshed from live traffic.
	Recorder *HistoryRecorder
	// PinnedKeys lists embeddings pinned permanently in DRAM — the very
	// top of the hotness hierarchy, above the LRU cache. Pinned entries
	// always hit, are never evicted, and live outside CacheEntries (the
	// caller splits its DRAM budget between the two). With a Store the
	// pinned vectors are extracted at construction; timing-only engines
	// pin placeholders, which time identically. Pinning keys makes the
	// cache exist even when CacheEntries is 0.
	PinnedKeys []Key
	// ShadowSizes, when non-empty, attaches a bank of keys-only ghost
	// caches simulating LRUs of the given entry capacities over the
	// engine's distinct-key stream (see cache.Shadow). The measured
	// hit-rate curve — read via Engine.Shadow — is how DRAM size and the
	// fast-tier cut are chosen from data rather than guesses. Ghost
	// touches are host bookkeeping and charge no virtual time.
	ShadowSizes []int
}

// DefaultMaxRetries is the recovery-attempt cap applied when
// Config.MaxRetries is nil.
const DefaultMaxRetries = 2

// maxSpreadDepthBucket bounds the SpreadDepth histogram's exact buckets;
// deeper queries land in the overflow bucket but still shape the mean.
const maxSpreadDepthBucket = 256

// Retries returns a pointer to n for Config.MaxRetries, distinguishing an
// explicit cap — including the meaningful zero, "no recovery at all" —
// from the unset field that takes DefaultMaxRetries.
func Retries(n int) *int { return &n }

// RecoveryCounters aggregates fault-recovery activity across all of an
// engine's workers. All fields are safe for concurrent use.
type RecoveryCounters struct {
	// ReadErrors counts failed completions observed (initial reads and
	// recovery reads alike); Timeouts is the stuck-command subset.
	ReadErrors metrics.Counter
	Timeouts   metrics.Counter
	// Corruptions counts corrupt page payloads detected by slot-checksum
	// verification.
	Corruptions metrics.Counter
	// Retries counts recovery reads issued (re-reads and replica reads).
	Retries metrics.Counter
	// ReplicaRescues counts keys recovered from an alternate replica page
	// — the recovery path only a replicated layout offers.
	ReplicaRescues metrics.Counter
	// RecoveredKeys counts keys that hit a read fault and were still
	// served (by replica rescue or successful re-read).
	RecoveredKeys metrics.Counter
	// DegradedQueries counts queries that returned a partial result;
	// FailedKeys the keys those results were missing.
	DegradedQueries metrics.Counter
	FailedKeys      metrics.Counter
	// ShardReroutes counts keys moved off failed/rebuilding shards by the
	// pre-submit plan reroute — proactive avoidance driven by shard
	// health, before any read is issued (ReplicaRescues, by contrast,
	// counts reactive recovery after a read already failed).
	ShardReroutes metrics.Counter
	// StoreFallbacks counts keys served by host-store read-through
	// because no live shard held any replica of them — the last line of
	// defence that keeps lookups from hard-failing during a rebuild.
	StoreFallbacks metrics.Counter
}

// Reset zeroes all counters.
func (r *RecoveryCounters) Reset() {
	r.ReadErrors.Reset()
	r.Timeouts.Reset()
	r.Corruptions.Reset()
	r.Retries.Reset()
	r.ReplicaRescues.Reset()
	r.RecoveredKeys.Reset()
	r.DegradedQueries.Reset()
	r.FailedKeys.Reset()
	r.ShardReroutes.Reset()
	r.StoreFallbacks.Reset()
}

// Engine is the shared, immutable part of a serving deployment. Workers
// created by NewWorker do the per-goroutine work.
type Engine struct {
	cfg       Config
	be        ssd.Backend
	numShards int
	// health is the backend's per-shard health view when it reports one
	// (an ssd.Array); nil on single-device backends. Selection tie-breaks,
	// the pre-submit plan reroute, and recovery targeting all consult it.
	health     ssd.HealthReporter
	idx        *selection.Index
	cache      *cache.Cache[Key, []float32]
	shadow     *cache.Shadow[Key]
	costs      CostModel
	dim        int
	vecSize    int
	maxRetries int
	// shardQueuePeak[s] is the highest outstanding-command count any
	// worker has observed on its shard-s queue pair — the per-shard
	// queue-depth gauge /metrics exports. Updated lock-free by workers.
	shardQueuePeak []atomic.Int64
	// shardLat[s] is shard s's profile read latency in ns — non-nil only
	// when the backend mixes device classes (a tiered array), where
	// selection tie-breaks prefer the faster tier. Homogeneous backends
	// leave it nil so their tie-break behaviour is unchanged.
	shardLat []int64
	// gen is the layout generation stamped by a Swappable before the
	// engine is published (0 for engines never held by one). Immutable
	// once workers exist.
	gen uint64

	// Latency is recorded per query across all workers.
	Latency metrics.Recorder
	// ValidPerRead is the Fig 9 histogram: embeddings served per page read.
	ValidPerRead *metrics.IntHist
	// SpreadDepth is the per-query max-shard-depth histogram: each query
	// contributes the deepest per-shard count of its planned page reads.
	// On a striped array the busiest shard serializes that many reads, so
	// this depth — not the plan size — bounds the query's device wait;
	// co-activation-aware placement (placement.Despread) exists to drive
	// it toward ceil(plan/shards). Recorded per member query in batches.
	SpreadDepth *metrics.IntHist
	// Recovery aggregates fault-recovery counters across workers.
	Recovery *RecoveryCounters
}

// New builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Layout == nil {
		return nil, errors.New("serving: Config.Layout is required")
	}
	be := cfg.Backend
	if be == nil {
		if cfg.Device == nil {
			return nil, errors.New("serving: one of Config.Device and Config.Backend is required")
		}
		be = cfg.Device
	} else if cfg.Device != nil {
		return nil, errors.New("serving: Config.Device and Config.Backend are mutually exclusive")
	}
	if cfg.Store != nil {
		// A typed nil ((*store.Store)(nil) in a PageSource variable)
		// passes the != nil check but panics on first use; reject it
		// here with an actionable error instead.
		if v := reflect.ValueOf(cfg.Store); (v.Kind() == reflect.Pointer ||
			v.Kind() == reflect.Map || v.Kind() == reflect.Slice ||
			v.Kind() == reflect.Func || v.Kind() == reflect.Chan ||
			v.Kind() == reflect.Interface) && v.IsNil() {
			return nil, fmt.Errorf("serving: Config.Store is a typed-nil %T; pass nil directly for a timing-only engine", cfg.Store)
		}
		if sp, dp := cfg.Store.PageSize(), be.Profile().PageSize; sp != dp {
			return nil, fmt.Errorf("serving: store page size %d does not match device page size %d", sp, dp)
		}
	}
	if err := cfg.Layout.Validate(); err != nil {
		return nil, fmt.Errorf("serving: %w", err)
	}
	if cfg.Costs == nil {
		cfg.Costs = NewDefaultCosts()
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 32
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Microsecond
	}
	if cfg.RetryBackoffCap <= 0 {
		cfg.RetryBackoffCap = 200 * time.Microsecond
	}
	e := &Engine{
		cfg:            cfg,
		be:             be,
		numShards:      be.NumShards(),
		idx:            selection.NewIndex(cfg.Layout, cfg.IndexLimit),
		costs:          cfg.Costs,
		maxRetries:     DefaultMaxRetries,
		shardQueuePeak: make([]atomic.Int64, be.NumShards()),
		ValidPerRead:   metrics.NewIntHist(cfg.Layout.Capacity),
		SpreadDepth:    metrics.NewIntHist(maxSpreadDepthBucket),
		Recovery:       &RecoveryCounters{},
	}
	if cfg.MaxRetries != nil {
		e.maxRetries = max(*cfg.MaxRetries, 0)
	}
	if hr, ok := be.(ssd.HealthReporter); ok {
		e.health = hr
	}
	if e.numShards > 1 {
		lats := make([]int64, e.numShards)
		mixed := false
		for s := 0; s < e.numShards; s++ {
			lats[s] = int64(be.Shard(s).Profile().ReadLatency)
			if lats[s] != lats[0] {
				mixed = true
			}
		}
		if mixed {
			e.shardLat = lats
		}
	}
	switch {
	case cfg.Store != nil:
		e.dim = cfg.Store.Dim()
		e.vecSize = e.dim * 4
	case cfg.VectorBytes > 0:
		e.vecSize = cfg.VectorBytes
	default:
		// Timing-only mode still accounts useful bytes by slot arithmetic:
		// the per-slot byte budget is PageSize/Capacity, of which
		// embedding.SlotOverhead is the key/checksum header, and the
		// payload is whole float32 elements of the remainder. Counting the
		// header as useful would overstate EffectiveBandwidth relative to a
		// store-backed engine on the same configuration.
		slot := be.Profile().PageSize / cfg.Layout.Capacity
		dim := (slot - embedding.SlotOverhead) / 4
		if dim < 1 {
			dim = 1
		}
		e.vecSize = embedding.BytesPerVector(dim)
	}
	if cfg.CacheEntries > 0 || len(cfg.PinnedKeys) > 0 {
		if cfg.SegmentedCache {
			e.cache = cache.NewSegmentedLRU[Key, []float32](cfg.CacheEntries, cache.Uint32Hasher)
		} else {
			e.cache = cache.New[Key, []float32](cfg.CacheEntries, cache.Uint32Hasher)
		}
		if err := e.pinKeys(cfg.PinnedKeys); err != nil {
			return nil, err
		}
	}
	if len(cfg.ShadowSizes) > 0 {
		e.shadow = cache.NewShadow[Key](cfg.ShadowSizes)
	}
	return e, nil
}

// pinKeys installs the DRAM pin-set before the engine is shared: with a
// Store the real vectors are extracted (one read per distinct home page);
// timing-only engines pin nil placeholders.
func (e *Engine) pinKeys(keys []Key) error {
	if len(keys) == 0 {
		return nil
	}
	lay := e.cfg.Layout
	if e.cfg.Store == nil {
		for _, k := range keys {
			if int(k) >= lay.NumKeys {
				return fmt.Errorf("serving: pinned key %d out of range (%d keys)", k, lay.NumKeys)
			}
			e.cache.Pin(k, nil)
		}
		return nil
	}
	byPage := make(map[layout.PageID][]Key)
	for _, k := range keys {
		if int(k) >= lay.NumKeys {
			return fmt.Errorf("serving: pinned key %d out of range (%d keys)", k, lay.NumKeys)
		}
		home := lay.Home[k]
		byPage[home] = append(byPage[home], k)
	}
	buf := make([]byte, e.cfg.Store.PageSize())
	for home, ks := range byPage {
		if err := e.cfg.Store.ReadPage(home, buf); err != nil {
			return fmt.Errorf("serving: pin page %d: %w", home, err)
		}
		nSlots := len(lay.Pages[home])
		for _, k := range ks {
			vec, ok, err := store.ExtractFromImage(buf, e.dim, k, nSlots, nil)
			if err != nil {
				return fmt.Errorf("serving: pin key %d: %w", k, err)
			}
			if !ok {
				return fmt.Errorf("serving: pin: home page %d missing key %d", home, k)
			}
			e.cache.Pin(k, vec)
		}
	}
	return nil
}

// Shadow returns the engine's ghost-cache bank, or nil when
// Config.ShadowSizes was empty.
func (e *Engine) Shadow() *cache.Shadow[Key] { return e.shadow }

// Index exposes the engine's selection index (read-only).
func (e *Engine) Index() *selection.Index { return e.idx }

// Backend returns the read target the engine serves from: the configured
// Backend, or the configured Device as a one-shard backend.
func (e *Engine) Backend() ssd.Backend { return e.be }

// NumShards returns the backend's device count.
func (e *Engine) NumShards() int { return e.numShards }

// ShardQueuePeaks returns, per shard, the highest outstanding-command
// count any worker observed on its queue pair to that shard since the
// engine was built (or the last run reset) — the per-shard queue-depth
// gauge exported on /metrics.
func (e *Engine) ShardQueuePeaks() []int64 {
	out := make([]int64, len(e.shardQueuePeak))
	for i := range e.shardQueuePeak {
		out[i] = e.shardQueuePeak[i].Load()
	}
	return out
}

// Generation returns the layout generation a Swappable stamped on the
// engine when publishing it (0 for an engine never held by a Swappable).
func (e *Engine) Generation() uint64 { return e.gen }

// Layout returns the layout the engine serves.
func (e *Engine) Layout() *layout.Layout { return e.cfg.Layout }

// Cache returns the DRAM cache, or nil when disabled.
func (e *Engine) Cache() *cache.Cache[Key, []float32] { return e.cache }

// QueryStats describes one processed query.
type QueryStats struct {
	// Keys is the raw query length; DistinctKeys after dedup.
	Keys, DistinctKeys int
	// CacheHits of the distinct keys were served from DRAM.
	CacheHits int
	// PagesRead is the number of SSD page reads issued (excluding retries).
	PagesRead int
	// MaxShardDepth is the deepest per-shard count of the query's planned
	// reads (post-reroute, excluding recovery reads): the number of reads
	// the busiest shard serializes for this query, which bounds its device
	// wait on a striped array. 0 when the query read no pages; equal to
	// PagesRead on a one-shard backend. For queries served via LookupBatch
	// it is computed over the pages that served this query's keys.
	MaxShardDepth int
	// Retries is the number of recovery reads issued after faults
	// (replica reads and re-reads alike).
	Retries int
	// BatchSize is the number of queries coalesced into the combined pass
	// that served this query: 1 for an isolated Lookup, the batch size for
	// queries served through LookupBatch.
	BatchSize int
	// PageShare is this query's apportioned share of the page reads that
	// served it: a page read whose covered keys span q queries of a batch
	// contributes 1/q to each. For an isolated Lookup it equals PagesRead.
	// Summing PageShare across a batch recovers the batch's total reads,
	// which is what makes shared reads attributable without double counting.
	PageShare float64
	// ReadFaults counts faulted page reads this query observed: device
	// errors, timeouts, and corrupt payloads, over initial and recovery
	// reads alike. The health probe's error-rate window feeds on it.
	ReadFaults int
	// ReplicaRescues counts keys recovered from an alternate replica page.
	ReplicaRescues int
	// ShardReroutes counts keys this query's plan moved off
	// failed/rebuilding shards before any read was issued.
	ShardReroutes int
	// StoreFallbacks counts keys served by host-store read-through
	// because no live shard held a replica of them.
	StoreFallbacks int
	// Corruptions counts corrupt page payloads detected by checksum.
	Corruptions int
	// FailedKeys counts keys the query could not serve; Degraded is set
	// when it is non-zero (partial result).
	FailedKeys int
	Degraded   bool
	// Generation is the layout generation of the engine that served the
	// query (0 when the engine is not behind a Swappable handle). Every
	// page read of one query comes from this single generation — a hot
	// swap is only picked up between queries.
	Generation uint64
	// UsefulFromSSD is the number of distinct keys served from SSD pages.
	UsefulFromSSD int
	// StartNS/EndNS bound the query on the worker's virtual clock.
	StartNS, EndNS int64
	// SortNS, SelectNS, and OtherSoftNS break down charged software time;
	// SSDWaitNS is the residual the worker spent blocked on the device;
	// RecoveryNS is the extra time spent on backoff and recovery reads.
	SortNS, SelectNS, OtherSoftNS, SSDWaitNS, RecoveryNS int64
}

// LatencyNS returns the end-to-end virtual latency.
func (s QueryStats) LatencyNS() int64 { return s.EndNS - s.StartNS }

// Result is the outcome of one lookup. Vectors are only populated when the
// engine has a Store; the backing array is reused by the worker, so the
// caller must consume the result before the next Lookup.
type Result struct {
	Stats QueryStats
	// Keys and Vectors are parallel: Vectors[i] is the embedding of
	// Keys[i], covering every distinct key of the query that was served.
	// On a real-I/O backend a key served straight from a completion buffer
	// has Vectors[i] == nil on cacheless engines — its payload is carried
	// by Refs[i] instead (zero-copy; with a cache, both are populated and
	// Vectors[i] aliases the cache's copy).
	Keys    []Key
	Vectors [][]float32
	// Refs, non-nil exactly when the engine has a Store, is parallel to
	// Keys: Refs[i], when Valid, is a zero-copy view of Keys[i]'s
	// checksum-verified payload inside a completion buffer (see SlotRef).
	// Invalid entries (cache hits, store fallbacks, simulated reads) carry
	// their value in Vectors[i]. Views stay valid until the worker's next
	// lookup; retain them to hold the buffers longer.
	Refs []SlotRef
	// FailedKeys lists distinct query keys that could not be served
	// because every read attempt within the retry budget failed. Empty on
	// a fully successful lookup. The slice is reused by the worker.
	FailedKeys []Key
}

// RetainRefs takes one reference per valid ref in the result, pinning the
// underlying completion buffers past the worker's next lookup. Pair with
// ReleaseRefs.
func (r *Result) RetainRefs() {
	for i := range r.Refs {
		r.Refs[i].Retain()
	}
}

// ReleaseRefs drops the references taken by RetainRefs.
func (r *Result) ReleaseRefs() {
	for i := range r.Refs {
		r.Refs[i].Release()
	}
}

// planEntry records one selected page and the range of covered keys in
// Worker.coveredFlat.
type planEntry struct {
	page       layout.PageID
	from, to   int
	issueAtNS  int64
	selectCost int64
}

// pageFailure is one failed page read pending recovery: the keys that were
// to be served from page, the attempt count, and the pages already tried
// for this chain (excluding page itself).
type pageFailure struct {
	page    layout.PageID
	keys    []Key
	attempt int
	tried   []layout.PageID
	cause   error
}

// extracted records one successfully decoded vector in Worker.vecArena.
type extracted struct {
	key Key
	off int
}

// refExtracted records one checksum-verified zero-copy payload view into a
// completion buffer (real-I/O backends).
type refExtracted struct {
	key Key
	ref SlotRef
}

// Worker is a single-threaded serving session: it owns a selector, an SSD
// queue pair, and a monotonically increasing virtual clock. Create one per
// concurrent serving thread being modelled. Not safe for concurrent use.
type Worker struct {
	eng *Engine
	sel *selection.Selector
	q   ssd.QueuePair

	// now is the worker's virtual clock in nanoseconds.
	now int64

	// shardLoad counts, per shard, the reads this query's plan has already
	// steered there; selection tie-breaking reads it. Nil on one-shard
	// backends (no tie-breaker installed).
	shardLoad []int

	// depthBuf is scratch for per-shard depth counting over the final
	// plan. Distinct from shardLoad, which tracks the plan under
	// construction and is left stale by reroutePlan on purpose.
	depthBuf []int

	// ctx, when non-nil, cancels the recovery retry loop of the query in
	// flight: an abandoned request degrades immediately instead of
	// burning retries and queue slots. Set by LookupCtx per query.
	ctx context.Context

	// Per-query scratch.
	plan        []planEntry
	coveredFlat []Key
	plan2       []planEntry // reroute scratch: rebuilt plan
	flat2       []Key       // reroute scratch: rebuilt coveredFlat
	fbKeys      []Key       // keys with no live replica, for store fallback
	distinct    []Key
	batchBuf    []Key
	hitKeys     []Key
	hitVecs     [][]float32
	vecArena    []float32
	out         []extracted
	refOut      []refExtracted // zero-copy extractions (real-I/O backends)
	held        []*ssd.PageBuf // completion buffers alive until next lookup
	pageBuf     []byte
	failures    []pageFailure
	failedKeys  []Key
	resKeys     []Key
	resVecs     [][]float32
	resRefs     []SlotRef
	perQuery    []Result // LookupBatch's scattered results, reused per batch
	compMap     map[layout.PageID]ssd.Completion
	seen        map[Key]struct{}

	// skipFn and emitFn are the selection callbacks, built once per worker
	// so the hot path does not allocate a closure per query. emitFn reads
	// prevSel, which lookupCombined resets before each selection.
	skipFn  func(Key) bool
	emitFn  selection.EmitFunc
	prevSel selection.Stats

	// Batch-scatter scratch (LookupBatch).
	scatter scatterScratch
}

// NewWorker returns a worker bound to the engine. The worker's virtual
// clock starts at the device's current frontier so a session created after
// prior activity does not appear to queue behind long-finished work. The
// queue pair comes from the backend when it mints its own (real-I/O
// backends); otherwise a simulated MultiQueue over its shards.
func (e *Engine) NewWorker() *Worker {
	w := &Worker{
		eng:     e,
		sel:     selection.NewSelector(e.idx),
		q:       ssd.NewQueuePairFor(e.be),
		now:     e.be.Frontier(),
		seen:    make(map[Key]struct{}, 64),
		compMap: make(map[layout.PageID]ssd.Completion, 16),
	}
	w.skipFn = func(k Key) bool {
		if e.cache == nil {
			return false
		}
		return e.cache.Contains(k)
	}
	w.emitFn = func(p layout.PageID, covered []Key, sofar selection.Stats) {
		from := len(w.coveredFlat)
		w.coveredFlat = append(w.coveredFlat, covered...)
		cost := e.costs.Select(sofar.CandidatePages-w.prevSel.CandidatePages,
			sofar.InvertScans-w.prevSel.InvertScans) + e.costs.Submit()
		w.prevSel = sofar
		w.plan = append(w.plan, planEntry{
			page:       p,
			from:       from,
			to:         len(w.coveredFlat),
			selectCost: cost,
		})
		if w.shardLoad != nil {
			s, _ := e.be.ShardOf(p)
			w.shardLoad[s]++
		}
	}
	if e.cfg.Store != nil {
		w.pageBuf = make([]byte, e.cfg.Store.PageSize())
	}
	if e.numShards > 1 {
		// Break page-score ties toward the shard this query has steered the
		// fewest reads to so far: a worker drains its queues every query, so
		// the plan under construction is the load there is to balance.
		// One-shard engines install no tie-breaker, preserving the
		// historical first-candidate-wins choice exactly.
		w.shardLoad = make([]int, e.numShards)
		w.sel.SetTieBreak(func(cand, best selection.PageID) bool {
			cs, _ := e.be.ShardOf(cand)
			bs, _ := e.be.ShardOf(best)
			// A live shard beats a failed/rebuilding one outright; among
			// equals, prefer the shard this plan has loaded least.
			if e.health != nil {
				cl, bl := e.health.ShardState(cs).Live(), e.health.ShardState(bs).Live()
				if cl != bl {
					return cl
				}
			}
			// On a tiered array, an otherwise-equal page on the faster
			// device class wins: same coverage, cheaper read. Homogeneous
			// arrays (shardLat nil) skip straight to load balancing.
			if e.shardLat != nil && e.shardLat[cs] != e.shardLat[bs] {
				return e.shardLat[cs] < e.shardLat[bs]
			}
			return w.shardLoad[cs] < w.shardLoad[bs]
		})
	}
	return w
}

// planMaxShardDepth counts the final plan's reads per shard and returns
// the deepest count. It recomputes from w.plan rather than reading
// w.shardLoad: the tie-break counters track the plan as selection built
// it, and reroutePlan rebuilds the plan without maintaining them.
func (w *Worker) planMaxShardDepth() int {
	e := w.eng
	if len(w.plan) == 0 {
		return 0
	}
	if e.numShards == 1 {
		return len(w.plan)
	}
	if w.depthBuf == nil {
		w.depthBuf = make([]int, e.numShards)
	}
	for i := range w.depthBuf {
		w.depthBuf[i] = 0
	}
	deepest := 0
	for _, pe := range w.plan {
		s, _ := e.be.ShardOf(pe.page)
		w.depthBuf[s]++
		if w.depthBuf[s] > deepest {
			deepest = w.depthBuf[s]
		}
	}
	return deepest
}

// foldQueuePeaks publishes the worker's per-shard queue high-water marks
// into the engine's gauges with a CAS-max, so concurrent workers never
// lose a peak.
func (w *Worker) foldQueuePeaks() {
	for s := range w.eng.shardQueuePeak {
		hw := int64(w.q.HighWater(s))
		p := &w.eng.shardQueuePeak[s]
		for {
			cur := p.Load()
			if hw <= cur || p.CompareAndSwap(cur, hw) {
				break
			}
		}
	}
}

// Now returns the worker's virtual clock.
func (w *Worker) Now() int64 { return w.now }

// SetNow advances the worker's virtual clock (e.g. to align fan-out
// workers to a common dispatch instant). The clock never moves backwards;
// earlier values are ignored.
func (w *Worker) SetNow(ns int64) {
	if ns > w.now {
		w.now = ns
	}
}

// Lookup serves one embedding query and advances the worker's clock to its
// completion time. Read faults are recovered transparently when possible;
// a query that exhausts its retry budget returns a partial Result with the
// unserved keys in FailedKeys (Stats.Degraded set) rather than an error.
// A non-nil error indicates a malformed query or broken configuration,
// not a device fault.
func (w *Worker) Lookup(query []Key) (Result, error) {
	res, err := w.lookupCombined(query, true)
	if err != nil {
		return res, err
	}
	res.Stats.BatchSize = 1
	res.Stats.PageShare = float64(res.Stats.PagesRead)
	if res.Stats.Degraded {
		w.eng.Recovery.DegradedQueries.Inc()
		w.eng.Recovery.FailedKeys.Add(int64(res.Stats.FailedKeys))
	}
	w.eng.SpreadDepth.Add(res.Stats.MaxShardDepth)
	w.eng.Latency.Record(res.Stats.LatencyNS())
	return res, nil
}

// lookupCombined is the combined dedupe → cache probe → selection →
// pipelined-read → recovery pass behind both Lookup and LookupBatch. It
// leaves the worker's per-query scratch (plan, coveredFlat, hitKeys,
// failedKeys) describing the pass so LookupBatch can scatter the outcome
// back per query, and does not record latency — callers attribute it.
// record controls history recording: Lookup records its distinct key set
// here, LookupBatch records each member query's set separately so the
// refresh loop sees true per-query co-appearance, not batch artifacts.
func (w *Worker) lookupCombined(query []Key, record bool) (Result, error) {
	e := w.eng
	var st QueryStats
	st.Keys = len(query)
	st.Generation = e.gen
	st.StartNS = w.now
	t := w.now

	// The previous lookup's zero-copy views die here: drop the worker's
	// references so completion buffers recycle (unless a caller Retained).
	w.releaseHeld()
	w.refOut = w.refOut[:0]

	for i := range w.shardLoad {
		w.shardLoad[i] = 0
	}

	// Cache probe over distinct keys (first-appearance order, so LRU
	// promotion order is deterministic); hits are served from DRAM.
	w.hitKeys = w.hitKeys[:0]
	w.hitVecs = w.hitVecs[:0]
	w.distinct = w.distinct[:0]
	clear(w.seen)
	for _, k := range query {
		if _, dup := w.seen[k]; dup {
			continue
		}
		w.seen[k] = struct{}{}
		w.distinct = append(w.distinct, k)
	}
	st.DistinctKeys = len(w.distinct)
	if record && e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(w.distinct)
	}
	if e.shadow != nil {
		// Ghost caches see the pre-cache distinct-key stream, so their
		// curve predicts the hit rate a real cache of each simulated
		// capacity would have had. Host bookkeeping: no virtual time.
		e.shadow.TouchAll(w.distinct)
	}
	if e.cache != nil {
		for _, k := range w.distinct {
			if v, ok := e.cache.Get(k); ok {
				w.hitKeys = append(w.hitKeys, k)
				w.hitVecs = append(w.hitVecs, v)
			}
		}
		probe := e.costs.CacheProbe(st.DistinctKeys)
		t += probe
		st.OtherSoftNS += probe
		st.CacheHits = len(w.hitKeys)
	}
	// Sort cost is charged up front (§6.1 ❶ happens inside the selector;
	// the model charges for the keys that reach it).
	missKeys := st.DistinctKeys - st.CacheHits
	sortCost := e.costs.Sort(missKeys)
	t += sortCost
	st.SortNS = sortCost

	// Page selection, optionally pipelined with submission. The callbacks
	// are worker-lifetime (built in NewWorker); emitFn accumulates into
	// w.plan/w.coveredFlat and reads w.prevSel, reset here per query.
	w.plan = w.plan[:0]
	w.coveredFlat = w.coveredFlat[:0]
	w.prevSel = selection.Stats{}
	var selErr error
	switch {
	case e.cfg.Greedy:
		_, selErr = w.sel.Greedy(query, w.skipFn, w.emitFn)
	case e.cfg.UnsortedSelection:
		_, selErr = w.sel.OnePassUnsorted(query, w.skipFn, w.emitFn)
	default:
		_, selErr = w.sel.OnePass(query, w.skipFn, w.emitFn)
	}
	if selErr != nil {
		return Result{}, selErr
	}

	// On a health-reporting backend, move reads planned onto
	// failed/rebuilding shards to live replicas before submitting anything.
	w.reroutePlan(&st)
	st.MaxShardDepth = w.planMaxShardDepth()

	// Submit per the pipeline mode, charging selection cost as it accrues.
	if e.cfg.Pipeline {
		for i := range w.plan {
			t += w.plan[i].selectCost
			st.SelectNS += w.plan[i].selectCost
			w.plan[i].issueAtNS = w.q.Submit(w.plan[i].page, t)
		}
	} else {
		for i := range w.plan {
			t += w.plan[i].selectCost
			st.SelectNS += w.plan[i].selectCost
		}
		for i := range w.plan {
			w.plan[i].issueAtNS = w.q.Submit(w.plan[i].page, t)
		}
	}

	// Reap completions, extract vectors, and recover from faults.
	done, comps := w.q.Drain(t)
	ssdWait := done - t
	if ssdWait < 0 {
		ssdWait = 0
	}
	st.SSDWaitNS = ssdWait
	t = done
	st.PagesRead = len(w.plan)

	w.out = w.out[:0]
	w.vecArena = w.vecArena[:0]
	w.failures = w.failures[:0]
	w.failedKeys = w.failedKeys[:0]
	clear(w.compMap)
	for _, c := range comps {
		w.compMap[c.Page] = c
	}
	// The Fig 9 histogram is fed per read as its outcome resolves: a read
	// that faulted served nothing (0 valid embeddings), and recovery reads
	// — issued in recover below — are reads too, each counted with the
	// keys it actually served. Crediting planned coverage up front would
	// overstate the histogram (and everything derived from it) exactly
	// when faults make it matter.
	for _, pe := range w.plan {
		keys := w.coveredFlat[pe.from:pe.to]
		c := w.compMap[pe.page]
		if fail, cause := w.consume(&st, c, keys); fail {
			e.ValidPerRead.Add(0)
			w.failures = append(w.failures, pageFailure{page: pe.page, keys: keys, cause: cause})
		} else {
			e.ValidPerRead.Add(len(keys))
		}
	}
	if len(w.failures) > 0 {
		t = w.recover(&st, t)
	}
	st.UsefulFromSSD = len(w.coveredFlat) - len(w.failedKeys)
	if len(w.fbKeys) > 0 {
		t = w.serveFromStore(&st, t)
	}

	// Assemble the result and fill the cache. Zero-copy extractions come
	// first (their refs alias completion buffers pinned in w.held), then
	// arena-backed extractions (simulated reads, store fallbacks), then
	// DRAM cache hits.
	res := Result{}
	w.resKeys = w.resKeys[:0]
	w.resVecs = w.resVecs[:0]
	w.resRefs = w.resRefs[:0]
	extract := e.costs.Extract(len(w.out) + len(w.refOut))
	t += extract
	st.OtherSoftNS += extract
	if e.cfg.Store != nil {
		for _, x := range w.refOut {
			w.resKeys = append(w.resKeys, x.key)
			w.resRefs = append(w.resRefs, x.ref)
			if e.cache != nil {
				// The cache owns a decoded copy; the result carries it too,
				// so value consumers need not touch the ref path.
				vec := x.ref.AppendVector(nil)
				e.cache.Put(x.key, vec)
				w.resVecs = append(w.resVecs, vec)
			} else {
				w.resVecs = append(w.resVecs, nil)
			}
		}
		for _, x := range w.out {
			vec := w.vecArena[x.off : x.off+e.dim]
			w.resKeys = append(w.resKeys, x.key)
			w.resVecs = append(w.resVecs, vec)
			w.resRefs = append(w.resRefs, SlotRef{})
			if e.cache != nil {
				// The cache owns its copy: arena memory is reused.
				cp := make([]float32, len(vec))
				copy(cp, vec)
				e.cache.Put(x.key, cp)
			}
		}
	} else if e.cache != nil {
		failed := map[Key]struct{}{}
		for _, k := range w.failedKeys {
			failed[k] = struct{}{}
		}
		for _, k := range w.coveredFlat {
			if _, bad := failed[k]; !bad {
				e.cache.Put(k, nil)
			}
		}
	}
	w.resKeys = append(w.resKeys, w.hitKeys...)
	w.resVecs = append(w.resVecs, w.hitVecs...)
	res.Keys = w.resKeys
	res.Vectors = w.resVecs
	if e.cfg.Store != nil {
		for range w.hitKeys {
			w.resRefs = append(w.resRefs, SlotRef{})
		}
		res.Refs = w.resRefs
	}
	// Degradation counters are the caller's: Lookup counts one degraded
	// query, LookupBatch attributes failed keys to each owning query.
	if len(w.failedKeys) > 0 {
		st.FailedKeys = len(w.failedKeys)
		st.Degraded = true
		res.FailedKeys = w.failedKeys
	}

	w.foldQueuePeaks()
	st.EndNS = t
	w.now = t
	res.Stats = st
	return res, nil
}

// consume processes one page read's completion: it observes device errors,
// and — when a Store is present — extracts and verifies every covered
// key's vector from the page image. It reports whether the page must enter
// recovery, with the cause.
func (w *Worker) consume(st *QueryStats, c ssd.Completion, keys []Key) (failed bool, cause error) {
	e := w.eng
	if c.Err != nil {
		if c.Buf != nil {
			// Defensive: real-I/O drains release error buffers themselves.
			c.Buf.Release()
		}
		st.ReadFaults++
		e.Recovery.ReadErrors.Inc()
		if errors.Is(c.Err, ssd.ErrTimeout) {
			e.Recovery.Timeouts.Inc()
		}
		return true, c.Err
	}
	if c.Buf != nil {
		// Real-I/O backend: the page image arrived in a refcounted
		// completion buffer. Verify and slice payloads in place — the
		// zero-copy path — instead of re-reading the host store.
		if e.cfg.Store == nil {
			c.Buf.Release()
			return false, nil
		}
		if err := w.extractRefs(c, keys); err != nil {
			st.ReadFaults++
			if errors.Is(err, store.ErrCorrupt) {
				st.Corruptions++
				e.Recovery.Corruptions.Inc()
			}
			return true, err
		}
		return false, nil
	}
	if e.cfg.Store == nil {
		// Timing-only: nothing to extract; silent corruption is
		// undetectable without payloads, as on real hardware without
		// end-to-end checksums.
		return false, nil
	}
	if err := w.extractPage(c.Page, keys, c.Corrupt); err != nil {
		st.ReadFaults++
		if errors.Is(err, store.ErrCorrupt) {
			st.Corruptions++
			e.Recovery.Corruptions.Inc()
		}
		return true, err
	}
	return false, nil
}

// extractRefs verifies every covered key's slot checksum directly in the
// completion buffer and records a SlotRef payload view per key — no byte
// of the payload is copied between the device read and the response
// encoders. On success the buffer joins w.held, keeping it alive until the
// worker's next lookup releases it (or longer, where a holder Retains). On
// any failure the views are rolled back and the buffer released so the
// whole page can be recovered elsewhere.
func (w *Worker) extractRefs(c ssd.Completion, keys []Key) error {
	e := w.eng
	img := c.Buf.Bytes()
	nSlots := len(e.cfg.Layout.Pages[c.Page])
	if c.Corrupt {
		// Injected in-flight corruption damages the buffer (never the
		// store) so the checksum path detects it like real bit rot.
		slot := 8 + 4*e.dim
		for i := 0; i < nSlots; i++ {
			img[i*slot+4] ^= 0xA5
		}
	}
	mark := len(w.refOut)
	for _, k := range keys {
		off, found, err := store.VerifySlotInImage(img, e.dim, k, nSlots)
		if err != nil || !found {
			w.refOut = w.refOut[:mark]
			c.Buf.Release()
			if err == nil {
				err = fmt.Errorf("page does not hold key %d", k)
			}
			return fmt.Errorf("serving: extract key %d from page %d: %w", k, c.Page, err)
		}
		end := off + 4*e.dim
		w.refOut = append(w.refOut, refExtracted{
			key: k,
			ref: SlotRef{buf: c.Buf, payload: img[off:end:end]},
		})
	}
	w.held = append(w.held, c.Buf)
	return nil
}

// releaseHeld drops the worker's references on the previous lookup's
// completion buffers. Refs returned in that lookup's Result become invalid
// unless their holder Retained them — the same lifetime the Result's other
// slices have.
func (w *Worker) releaseHeld() {
	for i, b := range w.held {
		b.Release()
		w.held[i] = nil
	}
	w.held = w.held[:0]
}

// extractPage reads page p's image into the worker's buffer, applies
// injected corruption when the completion was flagged, and decodes every
// key in keys with checksum verification. On any failure the arena and
// output are rolled back so the whole page can be recovered elsewhere.
func (w *Worker) extractPage(p layout.PageID, keys []Key, corrupt bool) error {
	e := w.eng
	if err := e.cfg.Store.ReadPage(p, w.pageBuf); err != nil {
		return fmt.Errorf("serving: page %d payload: %w", p, err)
	}
	nSlots := len(e.cfg.Layout.Pages[p])
	if corrupt {
		// The device flagged this read's payload as corrupted in flight.
		// Damage the host buffer (never the store) so the checksum path
		// detects it exactly as it would real bit rot.
		slot := 8 + 4*e.dim
		for i := 0; i < nSlots; i++ {
			w.pageBuf[i*slot+4] ^= 0xA5
		}
	}
	arenaMark, outMark := len(w.vecArena), len(w.out)
	for _, k := range keys {
		off := len(w.vecArena)
		var ok bool
		var err error
		w.vecArena, ok, err = store.ExtractFromImage(w.pageBuf, e.dim, k, nSlots, w.vecArena)
		if err != nil || !ok {
			w.vecArena = w.vecArena[:arenaMark]
			w.out = w.out[:outMark]
			if err == nil {
				err = fmt.Errorf("page does not hold key %d", k)
			}
			return fmt.Errorf("serving: extract key %d from page %d: %w", k, p, err)
		}
		w.out = append(w.out, extracted{key: k, off: off})
	}
	return nil
}

// backoffDelay returns the capped exponential backoff before recovery
// attempt number attempt (0-based).
func (e *Engine) backoffDelay(attempt int) int64 {
	d := int64(e.cfg.RetryBackoff)
	for i := 0; i < attempt && d < int64(e.cfg.RetryBackoffCap); i++ {
		d *= 2
	}
	if cap := int64(e.cfg.RetryBackoffCap); d > cap {
		d = cap
	}
	return d
}

// recoveryGroup batches keys of one failure that share a recovery target
// page.
type recoveryGroup struct {
	page layout.PageID
	keys []Key
}

// recover drains the worker's failure queue: each failed page's keys are
// re-fetched after a capped exponential backoff, preferring an alternate
// replica page from the index over re-reading the page that just failed.
// Chains that exhaust MaxRetries, and queries that exhaust RetryBudget,
// give their keys up to failedKeys. Returns the advanced clock.
func (w *Worker) recover(st *QueryStats, t int64) int64 {
	e := w.eng
	start := t
	spent := 0
	// The queue grows as recovery reads themselves fail; index-iterate.
	for qi := 0; qi < len(w.failures); qi++ {
		f := w.failures[qi]
		if f.attempt >= e.maxRetries || spent >= e.cfg.RetryBudget {
			w.failedKeys = append(w.failedKeys, f.keys...)
			continue
		}
		if w.ctx != nil && w.ctx.Err() != nil {
			// The request was abandoned: degrade the rest of the queue
			// instead of spending retries nobody is waiting for.
			w.failedKeys = append(w.failedKeys, f.keys...)
			continue
		}
		issueAt := t + e.backoffDelay(f.attempt)

		// Pick each key's recovery target: the first candidate page not
		// already tried in this chain — on a multi-device backend,
		// preferring a candidate on a different shard than the page that
		// just failed, so shard-diverse replicas route around a whole
		// faulty drive. Keys with no alternate replica re-read the failed
		// page. Grouping preserves key order so the schedule is
		// deterministic; with one shard the pick is unchanged.
		failShard, _ := e.be.ShardOf(f.page)
		var groups []recoveryGroup
		for _, k := range f.keys {
			target := f.page
			if e.numShards > 1 {
				for _, cand := range e.idx.Candidates(k) {
					if cand == f.page || containsPage(f.tried, cand) {
						continue
					}
					cs, _ := e.be.ShardOf(cand)
					if e.health != nil && !e.health.ShardState(cs).Live() {
						continue // never retry into a declared-dead shard
					}
					if cs != failShard {
						target = cand
						break
					}
				}
			}
			if target == f.page {
				for _, cand := range e.idx.Candidates(k) {
					if cand == f.page || containsPage(f.tried, cand) {
						continue
					}
					if cs, _ := e.be.ShardOf(cand); e.health != nil && !e.health.ShardState(cs).Live() {
						continue
					}
					target = cand
					break
				}
			}
			gi := -1
			for i := range groups {
				if groups[i].page == target {
					gi = i
					break
				}
			}
			if gi < 0 {
				groups = append(groups, recoveryGroup{page: target})
				gi = len(groups) - 1
			}
			groups[gi].keys = append(groups[gi].keys, k)
		}

		submitted := groups[:0]
		for _, g := range groups {
			if spent >= e.cfg.RetryBudget {
				w.failedKeys = append(w.failedKeys, g.keys...)
				continue
			}
			spent++
			st.Retries++
			e.Recovery.Retries.Inc()
			w.q.Submit(g.page, issueAt)
			submitted = append(submitted, g)
		}
		if len(submitted) == 0 {
			continue
		}
		done, comps := w.q.Drain(issueAt)
		if done > t {
			t = done
		}
		clear(w.compMap)
		for _, c := range comps {
			w.compMap[c.Page] = c
		}
		for _, g := range submitted {
			c := w.compMap[g.page]
			fail, cause := w.consume(st, c, g.keys)
			if fail {
				e.ValidPerRead.Add(0)
				tried := append(append([]layout.PageID(nil), f.tried...), f.page)
				w.failures = append(w.failures, pageFailure{
					page: g.page, keys: g.keys, attempt: f.attempt + 1,
					tried: tried, cause: cause,
				})
				continue
			}
			// A successful recovery read is a page read like any other:
			// it enters the histogram with the keys it served.
			e.ValidPerRead.Add(len(g.keys))
			e.Recovery.RecoveredKeys.Add(int64(len(g.keys)))
			if g.page != f.page {
				st.ReplicaRescues += len(g.keys)
				e.Recovery.ReplicaRescues.Add(int64(len(g.keys)))
			}
		}
	}
	w.failures = w.failures[:0]
	st.RecoveryNS = t - start
	return t
}

// LookupCtx is Lookup with cancellation: when ctx is cancelled, the
// recovery retry loop stops immediately and any keys still pending
// recovery degrade to FailedKeys instead of burning further retries and
// queue slots — the serving path for requests whose HTTP client has gone
// away. The initial read wave is not interrupted (it is a single
// submit/drain on the virtual clock); cancellation takes effect at retry
// boundaries, where the real time is spent under faults.
func (w *Worker) LookupCtx(ctx context.Context, query []Key) (Result, error) {
	w.ctx = ctx
	defer func() { w.ctx = nil }()
	return w.Lookup(query)
}

// reroutePlan runs between selection and submission on health-reporting
// backends: pages planned on failed or rebuilding shards are replaced by
// replica candidates on live shards before any read is issued, so a
// declared-dead drive costs zero wasted reads per query instead of one
// fault-plus-recovery per touched page. Keys with no live replica are set
// aside for host-store read-through (serveFromStore). The plan and its
// covered-keys arena are rebuilt into fresh scratch and swapped — never
// appended to in place — so per-key accounting (UsefulFromSSD, batch
// scatter) keeps seeing each key exactly once.
func (w *Worker) reroutePlan(st *QueryStats) {
	e := w.eng
	w.fbKeys = w.fbKeys[:0]
	if e.health == nil || len(w.plan) == 0 {
		return
	}
	anyDead := false
	for _, pe := range w.plan {
		s, _ := e.be.ShardOf(pe.page)
		if !e.health.ShardState(s).Live() {
			anyDead = true
			break
		}
	}
	if !anyDead {
		return
	}

	var extra []recoveryGroup
	w.plan2 = w.plan2[:0]
	w.flat2 = w.flat2[:0]
	for _, pe := range w.plan {
		keys := w.coveredFlat[pe.from:pe.to]
		if s, _ := e.be.ShardOf(pe.page); e.health.ShardState(s).Live() {
			pe.from = len(w.flat2)
			w.flat2 = append(w.flat2, keys...)
			pe.to = len(w.flat2)
			w.plan2 = append(w.plan2, pe)
			continue
		}
		for _, k := range keys {
			target, ok := w.liveCandidate(k, pe.page, extra)
			if !ok {
				w.fbKeys = append(w.fbKeys, k)
				continue
			}
			gi := -1
			for i := range extra {
				if extra[i].page == target {
					gi = i
					break
				}
			}
			if gi < 0 {
				extra = append(extra, recoveryGroup{page: target})
				gi = len(extra) - 1
			}
			extra[gi].keys = append(extra[gi].keys, k)
		}
	}
	rerouted := 0
	for _, g := range extra {
		from := len(w.flat2)
		w.flat2 = append(w.flat2, g.keys...)
		w.plan2 = append(w.plan2, planEntry{
			page: g.page, from: from, to: len(w.flat2),
			// The reroute's own cost is one extra submit per target page;
			// the original entries' selection cost was already charged.
			selectCost: e.costs.Submit(),
		})
		rerouted += len(g.keys)
	}
	st.ShardReroutes = rerouted
	e.Recovery.ShardReroutes.Add(int64(rerouted))
	w.plan, w.plan2 = w.plan2, w.plan
	w.coveredFlat, w.flat2 = w.flat2, w.coveredFlat
}

// liveCandidate picks key k's reroute target: a candidate page on a live
// shard, preferring one this reroute is already reading (so shared pages
// cost one read, not one per key), excluding the dead page being replaced.
func (w *Worker) liveCandidate(k Key, avoid layout.PageID, extra []recoveryGroup) (layout.PageID, bool) {
	e := w.eng
	var first layout.PageID
	found := false
	for _, cand := range e.idx.Candidates(k) {
		if cand == avoid {
			continue
		}
		if s, _ := e.be.ShardOf(cand); !e.health.ShardState(s).Live() {
			continue
		}
		for i := range extra {
			if extra[i].page == cand {
				return cand, true
			}
		}
		if !found {
			first, found = cand, true
		}
	}
	return first, found
}

// serveFromStore serves the keys reroutePlan found no live replica for by
// reading their home pages from the host's store image — the pristine
// copy the offline build left behind. No device read is charged (the data
// never touches the dead drive); the work is host software time, counted
// with the extract cost. Keys the store cannot produce (timing-only
// engines, or a corrupt host image) degrade to FailedKeys.
func (w *Worker) serveFromStore(st *QueryStats, t int64) int64 {
	e := w.eng
	if e.cfg.Store == nil {
		w.failedKeys = append(w.failedKeys, w.fbKeys...)
		return t
	}
	served := 0
	lay := e.cfg.Layout
	for _, k := range w.fbKeys {
		p := lay.Home[k]
		if err := e.cfg.Store.ReadPage(p, w.pageBuf); err != nil {
			w.failedKeys = append(w.failedKeys, k)
			continue
		}
		off := len(w.vecArena)
		var ok bool
		var err error
		w.vecArena, ok, err = store.ExtractFromImage(w.pageBuf, e.dim, k, len(lay.Pages[p]), w.vecArena)
		if err != nil || !ok {
			w.vecArena = w.vecArena[:off]
			w.failedKeys = append(w.failedKeys, k)
			continue
		}
		w.out = append(w.out, extracted{key: k, off: off})
		served++
	}
	st.StoreFallbacks = served
	e.Recovery.StoreFallbacks.Add(int64(served))
	// The host-side page read and decode costs software time over and
	// above the shared extract pass these vectors also go through.
	c := e.costs.Extract(served)
	st.OtherSoftNS += c
	return t + c
}

// containsPage reports whether pages contains p.
func containsPage(pages []layout.PageID, p layout.PageID) bool {
	for _, q := range pages {
		if q == p {
			return true
		}
	}
	return false
}
