package serving

import (
	"strings"
	"testing"

	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// pageFaultModel injects a fixed, persistent fault on selected pages:
// every read of a listed page fails the same way, which models a dead
// block/channel rather than a transient error — re-reads never help, only
// a replica rescue (or degradation) can.
type pageFaultModel struct {
	faults map[ssd.PageID]ssd.Fault
}

func (m pageFaultModel) Judge(_ int64, p ssd.PageID) ssd.Fault { return m.faults[p] }

// replicatedKey returns a key with at least two candidate pages, plus its
// candidates.
func replicatedKey(t *testing.T, e *Engine) (Key, []layout.PageID) {
	t.Helper()
	for k := 0; k < 1500; k++ {
		if cands := e.Index().Candidates(Key(k)); len(cands) >= 2 {
			return Key(k), cands
		}
	}
	t.Fatal("fixture has no replicated key")
	return 0, nil
}

// TestFaultRecoveryTable drives each fault class through the recovery
// path, with and without a replica to rescue from, and checks the cache
// interaction after the failure.
func TestFaultRecoveryTable(t *testing.T) {
	cases := []struct {
		name  string
		fault ssd.Fault
	}{
		{"read-error", ssd.Fault{Err: ssd.ErrReadFailed}},
		{"timeout", ssd.Fault{Err: ssd.ErrTimeout, ExtraLatencyNS: 1e6}},
		{"corruption", ssd.Fault{Corrupt: true}},
	}

	t.Run("replica-available", func(t *testing.T) {
		f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				e := f.engine(t, func(c *Config) { c.CacheEntries = 64 })
				k, cands := replicatedKey(t, e)
				// Break every candidate page except the last so the
				// initial read faults no matter which candidate selection
				// picked, and exactly one rescue target remains.
				m := pageFaultModel{faults: map[ssd.PageID]ssd.Fault{}}
				for _, p := range cands[:len(cands)-1] {
					m.faults[p] = tc.fault
				}
				e.cfg.Device.SetFaultModel(m)
				w := e.NewWorker()
				res, err := w.Lookup([]Key{k})
				if err != nil {
					t.Fatalf("lookup errored instead of recovering: %v", err)
				}
				st := res.Stats
				if st.ReadFaults == 0 {
					t.Fatal("no fault observed; test targeted the wrong page")
				}
				if st.Degraded || len(res.FailedKeys) != 0 {
					t.Fatalf("degraded despite replica: %+v", st)
				}
				if st.ReplicaRescues != 1 {
					t.Errorf("ReplicaRescues = %d, want 1", st.ReplicaRescues)
				}
				if st.Retries == 0 {
					t.Error("no recovery read issued")
				}
				if tc.fault.Corrupt && st.Corruptions == 0 {
					t.Error("corruption not detected by checksum")
				}
				if len(res.Keys) != 1 || res.Keys[0] != k {
					t.Fatalf("result keys = %v, want [%d]", res.Keys, k)
				}
				want := f.syn.Vector(k, nil)
				for j := range want {
					if res.Vectors[0][j] != want[j] {
						t.Fatal("rescued vector is wrong")
					}
				}
				// The rescued key was cached: the next lookup is served
				// from DRAM, touching no (still-broken) pages.
				res2, err := w.Lookup([]Key{k})
				if err != nil {
					t.Fatal(err)
				}
				if res2.Stats.CacheHits != 1 || res2.Stats.PagesRead != 0 {
					t.Errorf("post-recovery lookup: hits=%d pages=%d, want cache hit with no reads",
						res2.Stats.CacheHits, res2.Stats.PagesRead)
				}
			})
		}
	})

	t.Run("no-replica", func(t *testing.T) {
		f := newFixture(t, placement.StrategySHP, 0)
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				e := f.engine(t, func(c *Config) { c.CacheEntries = 64 })
				k := Key(9)
				cands := e.Index().Candidates(k)
				if len(cands) != 1 {
					t.Fatalf("expected a single candidate page, got %v", cands)
				}
				m := pageFaultModel{faults: map[ssd.PageID]ssd.Fault{cands[0]: tc.fault}}
				e.cfg.Device.SetFaultModel(m)
				w := e.NewWorker()
				res, err := w.Lookup([]Key{k})
				if err != nil {
					t.Fatalf("lookup errored instead of degrading: %v", err)
				}
				st := res.Stats
				if !st.Degraded || st.FailedKeys != 1 {
					t.Fatalf("expected degraded partial result, got %+v", st)
				}
				if len(res.FailedKeys) != 1 || res.FailedKeys[0] != k {
					t.Fatalf("FailedKeys = %v, want [%d]", res.FailedKeys, k)
				}
				for _, rk := range res.Keys {
					if rk == k {
						t.Fatal("failed key also present in served keys")
					}
				}
				if st.Retries == 0 {
					t.Error("engine degraded without re-reading first")
				}
				// A failed key must not be cached: the next lookup tries
				// the device again (and fails again while the fault holds).
				res2, err := w.Lookup([]Key{k})
				if err != nil {
					t.Fatal(err)
				}
				if res2.Stats.CacheHits != 0 {
					t.Error("failed key was served from cache")
				}
				if !res2.Stats.Degraded {
					t.Error("persistent fault stopped degrading on retry lookup")
				}
			})
		}
	})
}

// TestMultiKeyPartialResult: a query whose keys span healthy and broken
// pages returns the healthy ones with correct vectors and lists only the
// broken page's keys as failed.
func TestMultiKeyPartialResult(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, nil)
	w := e.NewWorker()
	q := f.trace.Queries[0]
	base, err := w.Lookup(q)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.PagesRead < 2 {
		t.Skip("query covered by a single page; cannot split healthy/broken")
	}
	// Break the home page of the first queried key only.
	broken := e.Index().Candidates(q[0])[0]
	e.cfg.Device.SetFaultModel(pageFaultModel{
		faults: map[ssd.PageID]ssd.Fault{broken: {Err: ssd.ErrReadFailed}},
	})
	res, err := w.Lookup(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded || len(res.FailedKeys) == 0 {
		t.Fatal("expected a partial result")
	}
	if len(res.Keys)+len(res.FailedKeys) != base.Stats.DistinctKeys {
		t.Errorf("served %d + failed %d ≠ distinct %d",
			len(res.Keys), len(res.FailedKeys), base.Stats.DistinctKeys)
	}
	var want []float32
	for i, k := range res.Keys {
		want = f.syn.Vector(k, want[:0])
		for j := range want {
			if res.Vectors[i][j] != want[j] {
				t.Fatalf("healthy key %d has wrong vector in partial result", k)
			}
		}
	}
}

// TestNoRetriesDegradesImmediately covers the explicit zero-retries
// configuration: every fault degrades without recovery reads.
func TestNoRetriesDegradesImmediately(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, func(c *Config) { c.MaxRetries = Retries(0) })
	e.cfg.Device.SetFaultModel(ssd.NewInjector(ssd.InjectorConfig{Seed: 5, ReadErrorProb: 0.05}))
	r, err := Run(e, f.trace.Queries[:300], 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Retries != 0 {
		t.Errorf("Retries = %d with retries disabled", r.Retries)
	}
	if r.DegradedQueries == 0 || r.FailedKeys == 0 {
		t.Errorf("no degradation recorded: %+v", r)
	}
}

// TestRetryBudgetCapsRecoveryReads: with a one-read budget, at most one
// recovery read is issued per query no matter how many pages fault.
func TestRetryBudgetCapsRecoveryReads(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, func(c *Config) { c.RetryBudget = 1; c.MaxRetries = Retries(5) })
	e.cfg.Device.SetFaultModel(ssd.NewInjector(ssd.InjectorConfig{Seed: 5, ReadErrorProb: 0.2}))
	w := e.NewWorker()
	for i := 0; i < 100; i++ {
		res, err := w.Lookup(f.trace.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Retries > 1 {
			t.Fatalf("query %d issued %d recovery reads over budget 1", i, res.Stats.Retries)
		}
	}
}

// TestRecoveryUnderInjectedErrors is the end-to-end acceptance run: a 1%
// fault mix (errors, stuck commands, corruption) against a replicated
// layout completes every query with zero failed keys, and the engine's
// counters account for every injected fault.
func TestRecoveryUnderInjectedErrors(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	e := f.engine(t, nil)
	e.cfg.Device.SetFaultModel(ssd.NewInjector(ssd.InjectorConfig{
		Seed:          42,
		ReadErrorProb: 0.005,
		TimeoutProb:   0.002,
		CorruptProb:   0.003,
	}))
	r, err := Run(e, f.trace.Queries[:1000], 4)
	if err != nil {
		t.Fatal(err)
	}
	ds := e.cfg.Device.Stats()
	if ds.Faults() == 0 {
		t.Fatal("no faults injected; acceptance run is vacuous")
	}
	if r.FailedKeys != 0 || r.DegradedQueries != 0 {
		t.Fatalf("replicated run failed %d keys over %d degraded queries; want full recovery",
			r.FailedKeys, r.DegradedQueries)
	}
	// Every injected fault is accounted for: each failed completion was
	// observed by the engine, and each corrupt payload was detected by a
	// checksum.
	if got := e.Recovery.ReadErrors.Load(); got != ds.Errors {
		t.Errorf("engine observed %d read errors, device injected %d", got, ds.Errors)
	}
	if got := e.Recovery.Timeouts.Load(); got != ds.Timeouts {
		t.Errorf("engine observed %d timeouts, device injected %d", got, ds.Timeouts)
	}
	if got := e.Recovery.Corruptions.Load(); got != ds.Corruptions {
		t.Errorf("engine detected %d corruptions, device injected %d", got, ds.Corruptions)
	}
	if r.Retries == 0 || e.Recovery.RecoveredKeys.Load() == 0 {
		t.Errorf("no recovery activity recorded: retries=%d recovered=%d",
			r.Retries, e.Recovery.RecoveredKeys.Load())
	}
	if r.ReplicaRescues == 0 {
		t.Error("no replica rescues despite a replicated layout")
	}
	if r.Corruptions != ds.Corruptions {
		t.Errorf("RunResult.Corruptions = %d, device injected %d", r.Corruptions, ds.Corruptions)
	}

	// Served vectors are still correct under faults.
	w := e.NewWorker()
	var want []float32
	for qi := 1000; qi < 1050; qi++ {
		res, err := w.Lookup(f.trace.Queries[qi])
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range res.Keys {
			want = f.syn.Vector(k, want[:0])
			for j := range want {
				if res.Vectors[i][j] != want[j] {
					t.Fatalf("query %d key %d: wrong vector under fault injection", qi, k)
				}
			}
		}
	}
}

// TestFaultScheduleDeterministic: identically-seeded runs produce
// identical results, fault schedule included.
func TestFaultScheduleDeterministic(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.2)
	run := func() RunResult {
		e := f.engine(t, nil)
		e.cfg.Device.SetFaultModel(ssd.NewInjector(ssd.InjectorConfig{
			Seed: 11, ReadErrorProb: 0.01, TimeoutProb: 0.005, CorruptProb: 0.01, SpikeProb: 0.02,
		}))
		r, err := Run(e, f.trace.Queries[:300], 3)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identically-seeded fault runs differ:\n%+v\n%+v", a, b)
	}
	if a.Retries == 0 {
		t.Error("determinism run injected no recoverable faults")
	}
}

func TestTypedNilStoreRejected(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	dev, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		t.Fatal(err)
	}
	var nilStore *store.Store
	_, err = New(Config{Layout: f.lay, Device: dev, Store: nilStore})
	if err == nil {
		t.Fatal("typed-nil PageSource accepted")
	}
	if got := err.Error(); !strings.Contains(got, "typed-nil") {
		t.Errorf("error does not explain the typed-nil: %v", err)
	}
	// Same for a typed-nil *FileStore.
	var nilFS *store.FileStore
	if _, err := New(Config{Layout: f.lay, Device: dev, Store: nilFS}); err == nil {
		t.Fatal("typed-nil *FileStore accepted")
	}
}

func TestStorePageSizeMismatchRejected(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	prof := ssd.P5800X
	prof.PageSize = 8192
	dev, err := ssd.NewDevice(prof)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Layout: f.lay, Device: dev, Store: f.store}); err == nil {
		t.Fatal("page-size mismatch accepted")
	}
}

// TestCorruptStoreDetected: real (non-injected) bit rot in the store is
// caught by the same checksum path and recovered like injected corruption.
func TestCorruptStoreDetected(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, nil)
	k := Key(3)
	home := e.Index().Candidates(k)[0]
	img, err := f.store.Page(home)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the page in place (test-only: Page aliases store memory).
	img[10] ^= 0xFF
	defer func() { img[10] ^= 0xFF }()
	w := e.NewWorker()
	res, err := w.Lookup([]Key{k})
	if err != nil {
		t.Fatalf("corrupt store page errored the lookup: %v", err)
	}
	// Without replicas and with the damage persistent, the key degrades —
	// but the query itself completes and the corruption is counted.
	if !res.Stats.Degraded {
		t.Fatal("persistent store corruption did not degrade the key")
	}
	if res.Stats.Corruptions == 0 {
		t.Error("checksum did not flag the damaged slot")
	}
	if e.Recovery.Corruptions.Load() == 0 {
		t.Error("engine corruption counter not incremented")
	}
}
