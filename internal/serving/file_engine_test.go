package serving

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// fileBackend writes the fixture's layout to per-shard files and opens a
// real-I/O backend over them, plus the matching in-memory sharded store
// (the engine's PageSource for pinning, fallback, and recovery).
func (f *fixture) fileBackend(t *testing.T, shards int, cfg ssd.FileBackendConfig) (*ssd.FileBackend, *store.Sharded) {
	t.Helper()
	sh, err := store.BuildSharded(f.lay, f.syn, 4096, shards)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files := make([]*store.FileStore, shards)
	for i := range files {
		path := filepath.Join(dir, fmt.Sprintf("shard%03d.bin", i))
		fl, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Shard(i).WriteTo(fl); err != nil {
			t.Fatal(err)
		}
		if err := fl.Close(); err != nil {
			t.Fatal(err)
		}
		fs, _, err := store.OpenFileAuto(path)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = fs
	}
	fb, err := ssd.NewFileBackend(files, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fb.Close() })
	return fb, sh
}

func (f *fixture) fileEngine(t *testing.T, shards int, mutate func(*Config)) (*Engine, *ssd.FileBackend) {
	t.Helper()
	fb, sh := f.fileBackend(t, shards, ssd.FileBackendConfig{})
	cfg := Config{
		Layout:   f.lay,
		Backend:  fb,
		Store:    sh,
		Pipeline: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, fb
}

// TestFileBackendLookupMatchesStore drives the serving engine over real
// file I/O and verifies every returned embedding — through the zero-copy
// ref views, never the value path — against the synthesizer's ground
// truth.
func TestFileBackendLookupMatchesStore(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	for _, shards := range []int{1, 3} {
		e, fb := f.fileEngine(t, shards, nil)
		w := e.NewWorker()
		var want []float32
		for qi := 0; qi < 250; qi++ {
			q := f.trace.Queries[qi]
			res, err := w.Lookup(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.FailedKeys) != 0 {
				t.Fatalf("shards=%d query %d: failed keys %v", shards, qi, res.FailedKeys)
			}
			if res.Refs == nil || len(res.Refs) != len(res.Keys) {
				t.Fatalf("shards=%d query %d: Refs len %d, Keys len %d",
					shards, qi, len(res.Refs), len(res.Keys))
			}
			for i, k := range res.Keys {
				ref := res.Refs[i]
				if !ref.Valid() {
					t.Fatalf("shards=%d query %d key %d: no ref on a cacheless file engine", shards, qi, k)
				}
				if ref.Dim() != testDim {
					t.Fatalf("ref dim = %d, want %d", ref.Dim(), testDim)
				}
				want = f.syn.Vector(k, want[:0])
				for j := range want {
					if got := ref.Float32(j); got != want[j] {
						t.Fatalf("shards=%d query %d key %d elem %d: %v want %v",
							shards, qi, k, j, got, want[j])
					}
				}
			}
		}
		if st := fb.Stats(); st.Reads == 0 || st.Errors != 0 {
			t.Fatalf("shards=%d: backend stats %+v", shards, st)
		}
		if lat := fb.ShardReadLatency(0); lat.Count == 0 {
			t.Fatalf("shards=%d: no latency samples recorded", shards)
		}
	}
}

// TestFileBackendLookupWithCache checks that with a DRAM cache the value
// path (Vectors) is populated alongside the refs and both agree; cache
// hits come back as value entries with zero refs.
func TestFileBackendLookupWithCache(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	e, _ := f.fileEngine(t, 2, func(c *Config) { c.CacheEntries = f.trace.NumItems / 4 })
	w := e.NewWorker()
	sawHit, sawRef := false, false
	for qi := 0; qi < 300; qi++ {
		res, err := w.Lookup(f.trace.Queries[qi])
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Keys {
			v := res.Vectors[i]
			if len(v) != testDim {
				t.Fatalf("query %d: vector len %d with cache enabled", qi, len(v))
			}
			if ref := res.Refs[i]; ref.Valid() {
				sawRef = true
				for j := range v {
					if ref.Float32(j) != v[j] {
						t.Fatalf("query %d key %d: ref and vector disagree", qi, res.Keys[i])
					}
				}
			} else {
				sawHit = true
			}
		}
	}
	if !sawRef || !sawHit {
		t.Fatalf("exercised refs=%v hits=%v; want both", sawRef, sawHit)
	}
}

// TestFileBackendRetainAcrossLookups pins one result's refs past the
// worker's next lookups — the server's concurrent-encoder pattern — and
// verifies the retained views stay intact while unretained buffers
// recycle underneath.
func TestFileBackendRetainAcrossLookups(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	e, _ := f.fileEngine(t, 1, nil)
	w := e.NewWorker()
	res, err := w.Lookup(f.trace.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	// Pin the buffers AND copy the ref values out: Result.Refs itself is
	// worker scratch whose SlotRef structs the next lookup overwrites in
	// place, so a holder keeps its own copies (as the server's response
	// leases do).
	res.RetainRefs()
	keys := append([]Key(nil), res.Keys...)
	refs := append([]SlotRef(nil), res.Refs...)
	for qi := 1; qi < 80; qi++ {
		if _, err := w.Lookup(f.trace.Queries[qi]); err != nil {
			t.Fatal(err)
		}
	}
	var want []float32
	for i, k := range keys {
		want = f.syn.Vector(k, want[:0])
		for j := range want {
			if got := refs[i].Float32(j); got != want[j] {
				t.Fatalf("retained ref for key %d changed under buffer recycling", k)
			}
		}
	}
	for _, r := range refs {
		r.Release()
	}
}

// TestFileBackendBatchRefs checks LookupBatch's scatter carries ref views
// per member query, parallel to each query's keys.
func TestFileBackendBatchRefs(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	e, _ := f.fileEngine(t, 2, nil)
	w := e.NewWorker()
	var want []float32
	for from := 0; from+4 <= 120; from += 4 {
		br, err := w.LookupBatch(f.trace.Queries[from : from+4])
		if err != nil {
			t.Fatal(err)
		}
		for qi, r := range br.PerQuery {
			if len(r.Refs) != len(r.Keys) {
				t.Fatalf("batch %d query %d: %d refs for %d keys", from, qi, len(r.Refs), len(r.Keys))
			}
			for i, k := range r.Keys {
				if !r.Refs[i].Valid() {
					t.Fatalf("batch %d query %d key %d: invalid ref", from, qi, k)
				}
				want = f.syn.Vector(k, want[:0])
				for j := range want {
					if r.Refs[i].Float32(j) != want[j] {
						t.Fatalf("batch %d query %d key %d: wrong payload", from, qi, k)
					}
				}
			}
		}
	}
}

// TestFileBackendLookupZeroAllocs is the tentpole's allocation guard: once
// warm, a cacheless lookup over the real-I/O backend — selection, submit,
// drain, in-place checksum verification, ref assembly, accounting — must
// allocate nothing at all. Any regression here reintroduces per-key or
// per-page garbage on the hot path.
func TestFileBackendLookupZeroAllocs(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	e, _ := f.fileEngine(t, 2, nil)
	w := e.NewWorker()
	qs := f.trace.Queries
	for i := 0; i < 700; i++ {
		if _, err := w.Lookup(qs[i%len(qs)]); err != nil {
			t.Fatal(err)
		}
	}
	// Latency samples append into a slice that grows across the run; the
	// warmup above grew it past what the measured runs add, and Reset
	// keeps the capacity.
	e.Latency.Reset()
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		i++
		if _, err := w.Lookup(qs[i%len(qs)]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state file-backend Lookup allocs/op = %.1f, want 0", allocs)
	}
}

// TestFileBackendBatchZeroAllocs extends the zero-alloc guard to the
// coalesced batch path: combined pass plus CSR scatter.
func TestFileBackendBatchZeroAllocs(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	e, _ := f.fileEngine(t, 2, nil)
	w := e.NewWorker()
	qs := f.trace.Queries
	const batch = 6
	for i := 0; i < 200; i++ {
		from := (i * batch) % (len(qs) - batch)
		if _, err := w.LookupBatch(qs[from : from+batch]); err != nil {
			t.Fatal(err)
		}
	}
	e.Latency.Reset()
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		i++
		from := (i * batch) % (len(qs) - batch)
		if _, err := w.LookupBatch(qs[from : from+batch]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state file-backend LookupBatch allocs/op = %.1f, want 0", allocs)
	}
}
