package serving

import (
	"context"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// TestSelectionAvoidsFailedShard: once a shard is declared failed, the
// health-aware tie-break steers selection to live replicas and no read is
// ever issued to the dead drive — zero faults, zero reactive rescues.
func TestSelectionAvoidsFailedShard(t *testing.T) {
	lay, sh, syn := shardedFixture(t)
	arr := mustTestArray(t, ssd.P5800X, 2)
	arr.SetShardFaultModel(0, deadShardModel{})
	arr.FailShard(0)
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	w := e.NewWorker()
	var want []float32
	for k := 0; k < lay.NumKeys; k++ {
		res, err := w.Lookup([]Key{Key(k)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ReadFaults != 0 || res.Stats.Degraded {
			t.Fatalf("key %d faulted despite health-aware selection: %+v", k, res.Stats)
		}
		if res.Stats.ReplicaRescues != 0 {
			t.Fatalf("key %d took the reactive rescue path: %+v", k, res.Stats)
		}
		want = syn.Vector(Key(k), want[:0])
		for j := range want {
			if res.Vectors[0][j] != want[j] {
				t.Fatalf("key %d: wrong vector via reroute", k)
			}
		}
	}
	if got := arr.Shard(0).Stats().Reads; got != 0 {
		t.Fatalf("failed shard still saw %d reads", got)
	}
	if got := e.Recovery.ReadErrors.Load(); got != 0 {
		t.Fatalf("ReadErrors = %d, want 0 (avoidance is proactive)", got)
	}
}

// TestReroutePlanSplitsDeadPage forces selection to pick a dead-shard page
// on coverage (its replicas each hold a single key, so there is no tie to
// break) and checks the pre-submit reroute splits the read across the
// per-key live replicas instead.
func TestReroutePlanSplitsDeadPage(t *testing.T) {
	capacity := embedding.PageCapacity(4096, testDim)
	lay := layout.Vanilla(4*capacity, capacity) // pages 0..3: shards 0,1,0,1
	span := func(lo, hi int) []layout.Key {
		keys := make([]layout.Key, 0, hi-lo)
		for k := lo; k < hi; k++ {
			keys = append(keys, layout.Key(k))
		}
		return keys
	}
	// Pages append sequentially, alternating shards: 4 (shard 0) filler,
	// 5 (shard 1) replica of key 0 alone, 6 (shard 0) filler, 7 (shard 1)
	// replica of key 1 alone.
	for _, r := range [][]layout.Key{span(2*capacity, 3*capacity), {0}, span(3*capacity, 4*capacity), {1}} {
		if _, err := lay.AddReplicaPage(r); err != nil {
			t.Fatal(err)
		}
	}
	syn, err := embedding.NewSynthesizer(testDim, 8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr := mustTestArray(t, ssd.P5800X, 2)
	arr.SetShardFaultModel(0, deadShardModel{})
	arr.FailShard(0)
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	w := e.NewWorker()
	// Home page 0 (dead shard) covers both keys and wins selection; the
	// reroute must then split onto single-key replica pages 5 and 7.
	res, err := w.Lookup([]Key{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded || res.Stats.ReadFaults != 0 {
		t.Fatalf("rerouted lookup faulted: %+v", res.Stats)
	}
	if res.Stats.ShardReroutes != 2 {
		t.Fatalf("ShardReroutes = %d, want 2", res.Stats.ShardReroutes)
	}
	if res.Stats.PagesRead != 2 {
		t.Fatalf("PagesRead = %d, want 2 (one per replica)", res.Stats.PagesRead)
	}
	if got := arr.Shard(0).Stats().Reads; got != 0 {
		t.Fatalf("failed shard saw %d reads", got)
	}
	var want []float32
	for i, k := range res.Keys {
		want = syn.Vector(k, want[:0])
		for j := range want {
			if res.Vectors[i][j] != want[j] {
				t.Fatalf("key %d: wrong vector after reroute", k)
			}
		}
	}
	if got := e.Recovery.ShardReroutes.Load(); got != 2 {
		t.Fatalf("engine ShardReroutes = %d, want 2", got)
	}
}

// TestStoreFallbackServesUnreplicatedKeys: with no replicas at all, keys
// on a failed shard are served by host-store read-through instead of
// hard-failing.
func TestStoreFallbackServesUnreplicatedKeys(t *testing.T) {
	capacity := embedding.PageCapacity(4096, testDim)
	lay := layout.Vanilla(4*capacity, capacity) // pages 0..3, no replicas
	syn, err := embedding.NewSynthesizer(testDim, 8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr := mustTestArray(t, ssd.P5800X, 2)
	arr.SetShardFaultModel(0, deadShardModel{})
	arr.FailShard(0)
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	w := e.NewWorker()
	// Key 0 lives on page 0 → shard 0, no replica anywhere.
	res, err := w.Lookup([]Key{0, Key(capacity)}) // shard 0 and shard 1 keys
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded || len(res.FailedKeys) != 0 {
		t.Fatalf("lookup hard-failed despite store fallback: %+v", res.Stats)
	}
	if res.Stats.StoreFallbacks != 1 {
		t.Fatalf("StoreFallbacks = %d, want 1", res.Stats.StoreFallbacks)
	}
	if got := arr.Shard(0).Stats().Reads; got != 0 {
		t.Fatalf("failed shard saw %d reads", got)
	}
	var want []float32
	for i, k := range res.Keys {
		want = syn.Vector(k, want[:0])
		for j := range want {
			if res.Vectors[i][j] != want[j] {
				t.Fatalf("key %d: wrong vector", k)
			}
		}
	}
	if got := e.Recovery.StoreFallbacks.Load(); got != 1 {
		t.Fatalf("engine StoreFallbacks counter = %d, want 1", got)
	}
}

// TestLookupCtxCancelStopsRetries: a cancelled context makes the recovery
// loop degrade immediately instead of issuing retries.
func TestLookupCtxCancelStopsRetries(t *testing.T) {
	lay, sh, _ := shardedFixture(t)
	arr := mustTestArray(t, ssd.P5800X, 2)
	// Shard 0 faults but is NOT declared failed: every read onto it takes
	// the reactive recovery path.
	arr.SetShardFaultModel(0, deadShardModel{})
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: with a live context the key is rescued via a retry.
	w := e.NewWorker()
	res, err := w.LookupCtx(context.Background(), []Key{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded || res.Stats.Retries == 0 {
		t.Fatalf("baseline did not exercise recovery: %+v", res.Stats)
	}

	// Cancelled context: the same faulting lookup gives up without
	// spending a single retry. (Shard health may have accumulated faults;
	// rebuild the array fresh so the proactive reroute stays out of play.)
	arr2 := mustTestArray(t, ssd.P5800X, 2)
	arr2.SetShardFaultModel(0, deadShardModel{})
	e2, err := New(Config{Layout: lay, Backend: arr2, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	w2 := e2.NewWorker()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res2, err := w2.LookupCtx(ctx, []Key{0})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.Degraded || len(res2.FailedKeys) != 1 {
		t.Fatalf("cancelled lookup did not degrade: %+v", res2.Stats)
	}
	if res2.Stats.Retries != 0 {
		t.Fatalf("cancelled lookup still issued %d retries", res2.Stats.Retries)
	}
	// The worker is reusable afterwards, with cancellation cleared.
	res3, err := w2.Lookup([]Key{Key(lay.NumKeys - 1)}) // shard-1 home key
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.Degraded {
		t.Fatalf("worker broken after cancelled lookup: %+v", res3.Stats)
	}
}
