package serving

import (
	"container/heap"
	"fmt"

	"maxembed/internal/metrics"
)

// OpenLoopResult reports an open-loop (fixed offered load) run. Unlike the
// closed-loop Run, latency here includes queueing delay: a query that
// arrives while every worker is busy waits, so driving the system past its
// capacity knee blows up tail latency — the standard serving-curve view.
type OpenLoopResult struct {
	// OfferedQPS is the arrival rate driven; AchievedQPS what completed.
	OfferedQPS, AchievedQPS float64
	// Latency is arrival-to-completion (queueing + service).
	Latency metrics.LatencySummary
	// PagesRead counts SSD reads.
	PagesRead int64
	// MeanMaxShardDepth is the mean per-query max-shard read depth over
	// the run (see RunResult.MeanMaxShardDepth).
	MeanMaxShardDepth float64
	// Saturated reports whether the backlog grew monotonically (offered
	// load above capacity).
	Saturated bool
}

// workerHeap orders workers by the virtual time they become free.
type workerHeap []*Worker

func (h workerHeap) Len() int           { return len(h) }
func (h workerHeap) Less(i, j int) bool { return h[i].now < h[j].now }
func (h workerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)        { *h = append(*h, x.(*Worker)) }
func (h *workerHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// RunOpenLoop drives the queries at a fixed arrival rate (evenly spaced,
// offeredQPS arrivals per virtual second) into a pool of workers. Each
// query is dispatched to the earliest-free worker and starts at
// max(arrival, worker free); recorded latency spans from arrival.
func RunOpenLoop(e *Engine, queries [][]Key, workers int, offeredQPS float64) (OpenLoopResult, error) {
	var res OpenLoopResult
	if offeredQPS <= 0 {
		return res, fmt.Errorf("serving: offeredQPS must be positive, got %v", offeredQPS)
	}
	if workers < 1 {
		workers = 1
	}
	e.be.Reset()
	e.Latency.Reset()
	e.ValidPerRead.Reset()
	e.SpreadDepth.Reset()
	if e.cache != nil {
		e.cache.ResetStats()
	}

	h := make(workerHeap, workers)
	for i := range h {
		h[i] = e.NewWorker()
	}
	heap.Init(&h)

	interArrival := 1e9 / offeredQPS
	var rec metrics.Recorder
	var lastBacklog, backlogGrowth int64
	for i, q := range queries {
		arrival := int64(float64(i) * interArrival)
		w := heap.Pop(&h).(*Worker)
		if w.now < arrival {
			w.now = arrival // worker idles until the query arrives
		}
		backlog := w.now - arrival // queueing delay
		if backlog > lastBacklog {
			backlogGrowth++
		}
		lastBacklog = backlog
		r, err := w.Lookup(q)
		if err != nil {
			return res, fmt.Errorf("serving: open-loop query %d: %w", i, err)
		}
		rec.Record(r.Stats.EndNS - arrival)
		res.PagesRead += int64(r.Stats.PagesRead)
		heap.Push(&h, w)
	}
	var makespan int64
	for _, w := range h {
		if w.now > makespan {
			makespan = w.now
		}
	}
	res.OfferedQPS = offeredQPS
	res.AchievedQPS = metrics.PerSecond(int64(len(queries)), makespan)
	res.MeanMaxShardDepth = e.SpreadDepth.Mean()
	res.Latency = rec.Snapshot()
	// Saturation heuristic: the queueing delay grew on most dispatches.
	res.Saturated = backlogGrowth > int64(len(queries))*3/4
	return res, nil
}
