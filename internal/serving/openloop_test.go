package serving

import (
	"testing"

	"maxembed/internal/placement"
)

func TestOpenLoopLowLoad(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, nil)
	// Find an unloaded per-query latency first.
	probe := f.engine(t, nil)
	w := probe.NewWorker()
	var totalNS int64
	const n = 100
	for i := 0; i < n; i++ {
		r, err := w.Lookup(f.trace.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		totalNS += r.Stats.LatencyNS()
	}
	unloaded := float64(totalNS) / n

	// Offer 10% of one worker's capacity across 4 workers: latency should
	// stay near the unloaded service time (little queueing).
	offered := 0.1 * 1e9 / unloaded
	res, err := RunOpenLoop(e, f.trace.Queries[:500], 4, offered)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("saturated at 10% load")
	}
	if res.Latency.MeanNS > 2*unloaded {
		t.Errorf("mean latency %.0f ns at low load, unloaded %.0f ns", res.Latency.MeanNS, unloaded)
	}
	if got := res.AchievedQPS; got < offered*0.9 {
		t.Errorf("achieved %.0f QPS of %.0f offered at low load", got, offered)
	}
}

func TestOpenLoopOverload(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, nil)
	// Offer far beyond capacity: queueing delay must dominate and the
	// saturation heuristic must fire.
	res, err := RunOpenLoop(e, f.trace.Queries[:800], 2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Error("not flagged saturated under 1G QPS offered load")
	}
	if res.AchievedQPS >= 1e9 {
		t.Error("achieved the impossible offered load")
	}
	// A linearly growing queue makes latency proportional to arrival
	// rank, so p99/p50 approaches 99/50 ≈ 1.98.
	if float64(res.Latency.P99NS) < 1.8*float64(res.Latency.P50NS) {
		t.Errorf("p99 %d not ≫ p50 %d under overload", res.Latency.P99NS, res.Latency.P50NS)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, nil)
	if _, err := RunOpenLoop(e, f.trace.Queries[:10], 2, 0); err == nil {
		t.Error("zero offered QPS accepted")
	}
	if _, err := RunOpenLoop(e, f.trace.Queries[:10], 2, -5); err == nil {
		t.Error("negative offered QPS accepted")
	}
}
