package serving

import (
	"context"
	"fmt"

	"maxembed/internal/layout"
	"maxembed/internal/ssd"
)

// RebuildConfig parameterizes a live shard rebuild onto the hot spare.
type RebuildConfig struct {
	// PagesPerSec is the pacing limit on the rebuild stream in pages per
	// virtual second — the rebuild-rate knob that trades MTTR against
	// tail-latency impact on serving traffic sharing the surviving
	// drives. Consecutive pages start at least 1/PagesPerSec apart on the
	// rebuilder's clock with no catch-up bursts: when contention makes a
	// page slower than the budget, the lost time is not made back, so the
	// instantaneous I/O rate never exceeds the cap. Default 50000
	// (≈ 200 MB/s of 4 KiB pages).
	PagesPerSec float64
	// Progress, when set, is invoked at least once per streamed page — and
	// again between paced donor reads within a page — with the cumulative
	// page count, the shard's local page population, and the rebuilder's
	// virtual clock. The clock is always the next instant the rebuild will
	// submit I/O at, which lets a caller co-simulate serving traffic
	// deterministically against the repair window (the rebuildsweep
	// experiment paces closed-loop workers off it); the operational
	// surface just reports the counts.
	Progress func(copied, total int, nowNS int64)
}

// RebuildReport summarizes one rebuild.
type RebuildReport struct {
	// Shard is the rebuilt member index; LocalPages its page population.
	Shard      int
	LocalPages int
	// FromSource pages were read intact off the failing device itself;
	// FromReplicas were reconstructed by reading replica pages on
	// surviving shards; FromStore fell back to host-side
	// re-materialization from the pristine store image (no device read —
	// the offline builder's copy) because some key on the page had no
	// live replica.
	FromSource   int
	FromReplicas int
	FromStore    int
	// SourceReadFaults counts failed reads against the failing device
	// during the rebuild (each also feeds its fault window).
	SourceReadFaults int
	// StartNS/EndNS bound the rebuild on its virtual clock; the
	// difference is the mean-time-to-repair the rebuildsweep experiment
	// measures.
	StartNS, EndNS int64
}

// DurationNS returns the rebuild's virtual duration (the MTTR).
func (r RebuildReport) DurationNS() int64 { return r.EndNS - r.StartNS }

// RebuildShard streams shard failed's local pages onto the array's hot
// spare and swaps the spare into the stripe, returning the NEW array with
// redundancy restored. For each page it tries the failing device first
// (partial failures often leave most pages readable), falls back to
// replica pages on surviving shards, and finally to the host's store
// image. Writes to the spare are token-bucket rate-limited so the rebuild
// shares the drives with serving traffic at a bounded tail-latency cost.
//
// The shard is claimed via MarkRebuilding (so selection keeps routing
// around it and two rebuilders cannot race); on success the swap is
// atomic from the caller's perspective — the caller must then build a new
// engine over the returned array and publish it through the Swappable
// generation machinery, exactly like a layout refresh. On error or
// cancellation the shard is returned to the failed state and the spare is
// left attached.
func RebuildShard(ctx context.Context, e *Engine, failed int, cfg RebuildConfig) (*ssd.Array, RebuildReport, error) {
	var rep RebuildReport
	arr, ok := e.be.(*ssd.Array)
	if !ok {
		return nil, rep, fmt.Errorf("serving: backend %T is not a rebuildable array", e.be)
	}
	if failed < 0 || failed >= arr.NumShards() {
		return nil, rep, fmt.Errorf("serving: rebuild shard %d of %d", failed, arr.NumShards())
	}
	spare := arr.Spare()
	if spare == nil {
		return nil, rep, fmt.Errorf("serving: rebuild shard %d: no hot spare attached", failed)
	}
	if cfg.PagesPerSec <= 0 {
		cfg.PagesPerSec = 50000
	}
	if !arr.MarkRebuilding(failed) {
		return nil, rep, fmt.Errorf("serving: shard %d is already rebuilding", failed)
	}

	lay := e.cfg.Layout
	numPages := lay.NumPages()
	t := arr.Frontier()
	rep.Shard = failed
	rep.StartNS = t
	interval := int64(1e9 / cfg.PagesPerSec)

	var pageBuf []byte
	if e.cfg.Store != nil {
		pageBuf = make([]byte, e.cfg.Store.PageSize())
	}
	totalLocal := localPagesOf(arr, failed, numPages)
	tick := func(now int64) {
		if cfg.Progress != nil {
			cfg.Progress(rep.LocalPages, totalLocal, now)
		}
	}
	for local := layout.PageID(0); ; local++ {
		global := arr.GlobalOf(failed, local)
		if int(global) >= numPages {
			break
		}
		if err := ctx.Err(); err != nil {
			arr.FailShard(failed) // release the claim; still broken
			rep.EndNS = t
			return nil, rep, err
		}
		rep.LocalPages++
		pageStart := t

		// Try the failing device itself: a shard declared failed on its
		// fault window may still return most pages.
		done, fault := arr.Shard(failed).ReadDetailed(local, t)
		t = done
		if fault.Err == nil && !fault.Corrupt {
			rep.FromSource++
		} else {
			rep.SourceReadFaults++
			if done, ok := readReplicas(e, arr, failed, global, t, interval, tick); ok {
				t = done
				rep.FromReplicas++
			} else {
				// No live replica covers every key of this page: the host
				// re-materializes it from the pristine store image the
				// offline build left behind. No device read is charged —
				// only the spare write below.
				if pageBuf != nil {
					if err := e.cfg.Store.ReadPage(global, pageBuf); err != nil {
						arr.FailShard(failed)
						rep.EndNS = t
						return nil, rep, fmt.Errorf("serving: rebuild page %d: %w", global, err)
					}
				}
				rep.FromStore++
			}
		}

		t = spare.Write(local, t)
		// Pace the stream: the next page may not start before this page's
		// start plus the rate interval, measured on the contended clock, so
		// the rebuild never bursts past its budget. Applying the floor here
		// — before Progress fires — means the reported clock is the next
		// submission instant, and a co-simulated serving flow can fill the
		// idle gap before the rebuild claims any device time in it.
		if floor := pageStart + interval; t < floor {
			t = floor
		}
		tick(t)
	}

	nb, err := arr.SwapShard(failed, nil)
	if err != nil {
		arr.FailShard(failed)
		rep.EndNS = t
		return nil, rep, err
	}
	rep.EndNS = t
	return nb, rep, nil
}

// readReplicas reconstructs global page g's content from replica pages on
// live shards: every key of the page must have a candidate page on a live
// shard other than failed, and each distinct donor page is charged one
// read. The donor reads are spread evenly across the page's pacing
// interval rather than issued back-to-back — with tick fired at each paced
// submission instant — so a replica-heavy page never bursts a multi-read
// shadow into co-running serving traffic. Reports the advanced clock and
// whether reconstruction succeeded.
func readReplicas(e *Engine, arr *ssd.Array, failed int, g layout.PageID, t, interval int64, tick func(int64)) (int64, bool) {
	lay := e.cfg.Layout
	var donors []layout.PageID
	for _, k := range lay.Pages[g] {
		found := layout.PageID(0)
		ok := false
		for _, cand := range e.idx.Candidates(k) {
			if cand == g {
				continue
			}
			cs, _ := arr.ShardOf(cand)
			if cs == failed || !arr.ShardState(cs).Live() {
				continue
			}
			found, ok = cand, true
			break
		}
		if !ok {
			return t, false
		}
		if !containsPage(donors, found) {
			donors = append(donors, found)
		}
	}
	spacing := int64(0)
	if len(donors) > 0 {
		spacing = interval / int64(len(donors)+1)
	}
	for i, d := range donors {
		if i > 0 {
			// Let a co-simulated serving flow fill the paced gap before
			// this donor read claims device time in it.
			tick(t)
		}
		start := t
		ds, dl := arr.ShardOf(d)
		done, fault := arr.Shard(ds).ReadDetailed(dl, t)
		t = done
		if fault.Err != nil || fault.Corrupt {
			// A donor faulted mid-reconstruction; let the caller fall back
			// to the host store rather than chaining recovery here.
			return t, false
		}
		if floor := start + spacing; t < floor {
			t = floor
		}
	}
	return t, true
}

// localPagesOf returns shard i's local page population under the array's
// striping of numPages global pages.
func localPagesOf(arr *ssd.Array, i, numPages int) int {
	n := arr.NumShards()
	return (numPages - i + n - 1) / n
}
