package serving

import (
	"context"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// TestRebuildShardFromReplicas kills a fully-replicated shard and checks
// the rebuild streams every local page from cross-shard replicas onto the
// spare, swaps it in, and that a fresh engine over the new array serves
// every key fault-free.
func TestRebuildShardFromReplicas(t *testing.T) {
	lay, sh, syn := shardedFixture(t)
	arr := mustTestArray(t, ssd.P5800X, 2)
	spare, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.AttachSpare(spare); err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}

	arr.SetShardFaultModel(0, deadShardModel{})
	arr.FailShard(0)

	var lastCopied int
	nb, rep, err := RebuildShard(context.Background(), e, 0, RebuildConfig{
		PagesPerSec: 10000,
		Progress:    func(copied, total int, _ int64) { lastCopied = copied },
	})
	if err != nil {
		t.Fatal(err)
	}
	wantLocal := lay.NumPages() / 2
	if rep.LocalPages != wantLocal || lastCopied != wantLocal {
		t.Fatalf("LocalPages = %d (progress %d), want %d", rep.LocalPages, lastCopied, wantLocal)
	}
	if rep.FromSource != 0 || rep.FromReplicas != wantLocal || rep.FromStore != 0 {
		t.Fatalf("source/replicas/store = %d/%d/%d, want 0/%d/0",
			rep.FromSource, rep.FromReplicas, rep.FromStore, wantLocal)
	}
	if rep.SourceReadFaults != wantLocal {
		t.Fatalf("SourceReadFaults = %d, want %d", rep.SourceReadFaults, wantLocal)
	}
	if rep.DurationNS() <= 0 {
		t.Fatalf("rebuild has non-positive duration %d", rep.DurationNS())
	}
	// Rate limit honored: page k may not land before k·interval.
	if minDur := int64(wantLocal-1) * int64(1e9/10000); rep.DurationNS() < minDur {
		t.Fatalf("rebuild took %d ns, want ≥ %d", rep.DurationNS(), minDur)
	}

	// The spare is consumed, installed at shard 0, and carries the writes.
	if nb.Shard(0) != spare {
		t.Fatalf("new array shard 0 is not the spare")
	}
	if arr.Spare() != nil {
		t.Fatalf("spare still attached after rebuild")
	}
	if got := spare.Stats().Writes; got != int64(wantLocal) {
		t.Fatalf("spare writes = %d, want %d", got, wantLocal)
	}
	if st := nb.ShardState(0); st != ssd.ShardHealthy {
		t.Fatalf("rebuilt shard state = %v, want healthy", st)
	}

	// A fresh engine over the new array serves every key with zero faults —
	// full redundancy restored.
	e2, err := New(Config{Layout: lay, Backend: nb, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	w := e2.NewWorker()
	var want []float32
	for k := 0; k < lay.NumKeys; k++ {
		res, err := w.Lookup([]Key{Key(k)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ReadFaults != 0 || res.Stats.Degraded {
			t.Fatalf("key %d faulted after rebuild: %+v", k, res.Stats)
		}
		want = syn.Vector(Key(k), want[:0])
		for j := range want {
			if res.Vectors[0][j] != want[j] {
				t.Fatalf("key %d: wrong vector after rebuild", k)
			}
		}
	}
}

// TestRebuildShardFromStore: with no replicas at all, a dead shard's pages
// are re-materialized from the host store image.
func TestRebuildShardFromStore(t *testing.T) {
	capacity := embedding.PageCapacity(4096, testDim)
	lay := layout.Vanilla(4*capacity, capacity) // 4 pages, no replicas
	syn, err := embedding.NewSynthesizer(testDim, 8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr := mustTestArray(t, ssd.P5800X, 2)
	spare, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.AttachSpare(spare); err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	arr.SetShardFaultModel(1, deadShardModel{})
	arr.FailShard(1)
	_, rep, err := RebuildShard(context.Background(), e, 1, RebuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromStore != rep.LocalPages || rep.FromReplicas != 0 {
		t.Fatalf("source/replicas/store = %d/%d/%d, want all-store over %d pages",
			rep.FromSource, rep.FromReplicas, rep.FromStore, rep.LocalPages)
	}
}

// TestRebuildShardGuards covers the refusal paths: no spare, double claim,
// and context cancellation returning the shard to failed.
func TestRebuildShardGuards(t *testing.T) {
	lay, sh, _ := shardedFixture(t)
	arr := mustTestArray(t, ssd.P5800X, 2)
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RebuildShard(context.Background(), e, 0, RebuildConfig{}); err == nil {
		t.Fatal("rebuild without a spare succeeded")
	}
	spare, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.AttachSpare(spare); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RebuildShard(context.Background(), e, 9, RebuildConfig{}); err == nil {
		t.Fatal("rebuild of an out-of-range shard succeeded")
	}

	// Cancelled context: the claim is released back to failed.
	arr.FailShard(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RebuildShard(ctx, e, 0, RebuildConfig{}); err == nil {
		t.Fatal("rebuild under a cancelled context succeeded")
	}
	if st := arr.ShardState(0); st != ssd.ShardFailed {
		t.Fatalf("shard state after cancelled rebuild = %v, want failed", st)
	}
	if arr.Spare() == nil {
		t.Fatal("spare consumed by a cancelled rebuild")
	}

	// Double claim: mark the shard rebuilding out of band; the rebuilder
	// must refuse to race it.
	if !arr.MarkRebuilding(0) {
		t.Fatal("MarkRebuilding refused")
	}
	if _, _, err := RebuildShard(context.Background(), e, 0, RebuildConfig{}); err == nil {
		t.Fatal("second concurrent rebuild claim succeeded")
	}
}
