package serving

import "sync"

// HistoryRecorder collects the (deduplicated) key sets of served queries in
// a bounded ring so the offline phase can later be re-run against what the
// system actually served — the input DB.Refresh consumes. Safe for
// concurrent use by many workers.
type HistoryRecorder struct {
	mu      sync.Mutex
	queries [][]Key
	next    int
	full    bool
	total   int64
}

// NewHistoryRecorder returns a recorder keeping the most recent max
// queries.
func NewHistoryRecorder(max int) *HistoryRecorder {
	if max < 1 {
		max = 1
	}
	return &HistoryRecorder{queries: make([][]Key, 0, max)}
}

// Record stores a copy of the query's keys.
func (r *HistoryRecorder) Record(q []Key) {
	cp := make([]Key, len(q))
	copy(cp, q)
	r.mu.Lock()
	if !r.full && len(r.queries) < cap(r.queries) {
		r.queries = append(r.queries, cp)
		if len(r.queries) == cap(r.queries) {
			r.full = true
		}
	} else {
		r.queries[r.next] = cp
		r.next = (r.next + 1) % len(r.queries)
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Total returns how many queries have been recorded since creation
// (including ones that have since rotated out of the ring).
func (r *HistoryRecorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns a deep copy of the retained queries, oldest first.
func (r *HistoryRecorder) Snapshot() [][]Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	ordered := make([][]Key, 0, len(r.queries))
	if r.full && r.next > 0 {
		ordered = append(ordered, r.queries[r.next:]...)
		ordered = append(ordered, r.queries[:r.next]...)
	} else {
		ordered = append(ordered, r.queries...)
	}
	out := make([][]Key, len(ordered))
	for i, q := range ordered {
		cp := make([]Key, len(q))
		copy(cp, q)
		out[i] = cp
	}
	return out
}
