package serving

import (
	"fmt"

	"maxembed/internal/layout"
	"maxembed/internal/metrics"
	"maxembed/internal/store"
)

// RunResult aggregates one closed-loop serving run.
type RunResult struct {
	// Queries processed and total raw keys requested.
	Queries int64
	Keys    int64
	// ElapsedNS is the virtual makespan: the largest worker clock at the
	// end of the run.
	ElapsedNS int64
	// QPS is Queries per virtual second.
	QPS float64
	// EffectiveBandwidth is the paper's headline metric (§8.2): the
	// fraction of every page read that is useful embedding bytes, scaled
	// by the device's rated bandwidth — i.e. the read bandwidth the
	// workload would extract from a saturated drive. It is a property of
	// the placement and selection quality alone, independent of software
	// costs and of how far the run actually pushed the device.
	EffectiveBandwidth float64
	// RawBandwidth is total page bytes read per virtual second of the run.
	RawBandwidth float64
	// Utilization is EffectiveBandwidth over the device's rated bandwidth
	// (= useful bytes / bytes read).
	Utilization float64
	// PagesRead counts SSD reads; UsefulKeys the embeddings they served.
	PagesRead  int64
	UsefulKeys int64
	// MeanValidPerRead is the Fig 9 average: embeddings per page read.
	MeanValidPerRead float64
	// MeanMaxShardDepth is the mean, over queries, of the deepest
	// per-shard count of each query's planned reads — the per-query
	// serialization bound co-activation-aware placement minimizes.
	// Always 0 on runs that read no pages; equals mean pages per query
	// on a one-shard backend.
	MeanMaxShardDepth float64
	// ServiceBandwidth is embedding bytes *delivered to queries* per
	// virtual second, counting both SSD-served and DRAM-served keys.
	// Unlike EffectiveBandwidth (which scales read efficiency by the
	// backend's rated bandwidth and so is incomparable across backends
	// with different ratings), ServiceBandwidth is the throughput a
	// client observes, making it the metric for comparing tier mixes at
	// a fixed TCO budget.
	ServiceBandwidth float64
	// CacheHits counts keys served from DRAM.
	CacheHits int64
	// Latency summarizes per-query end-to-end latency.
	Latency metrics.LatencySummary
	// Software time breakdown totals (Fig 15). RecoveryNS is time spent in
	// fault recovery (backoff plus recovery reads).
	SortNS, SelectNS, OtherSoftNS, SSDWaitNS, RecoveryNS int64
	// Fault-recovery totals: recovery reads issued, keys rescued from an
	// alternate replica page, corrupt payloads detected, queries that
	// returned partial results, and the keys those results were missing.
	Retries         int64
	ReplicaRescues  int64
	Corruptions     int64
	DegradedQueries int64
	FailedKeys      int64
	// Cross-request coalescing totals (RunBatched only): distinct keys
	// requested by more than one query of a batch, and page reads whose
	// covered keys spanned more than one query.
	SharedKeys      int64
	SharedPageReads int64
}

// Run processes the queries on the engine with the given number of
// closed-loop workers. Queries are interleaved round-robin across workers,
// which keeps the run single-threaded and deterministic while the virtual
// clocks of the workers overlap on the shared device, modelling concurrent
// serving threads (the paper's multi-thread configuration, §8.4).
func Run(e *Engine, queries [][]Key, workers int) (RunResult, error) {
	if workers < 1 {
		workers = 1
	}
	e.resetRunState()
	ws := make([]*Worker, workers)
	for i := range ws {
		ws[i] = e.NewWorker()
	}
	var res RunResult
	for i, q := range queries {
		w := ws[i%workers]
		r, err := w.Lookup(q)
		if err != nil {
			return res, fmt.Errorf("serving: query %d: %w", i, err)
		}
		st := r.Stats
		res.Queries++
		res.Keys += int64(st.Keys)
		res.PagesRead += int64(st.PagesRead)
		res.UsefulKeys += int64(st.UsefulFromSSD)
		res.CacheHits += int64(st.CacheHits)
		res.SortNS += st.SortNS
		res.SelectNS += st.SelectNS
		res.OtherSoftNS += st.OtherSoftNS
		res.SSDWaitNS += st.SSDWaitNS
		res.RecoveryNS += st.RecoveryNS
		res.Retries += int64(st.Retries)
		res.ReplicaRescues += int64(st.ReplicaRescues)
		res.Corruptions += int64(st.Corruptions)
		res.FailedKeys += int64(st.FailedKeys)
		if st.Degraded {
			res.DegradedQueries++
		}
	}
	finalizeRun(e, &res, ws)
	return res, nil
}

// resetRunState clears device and engine counters before a measured run.
func (e *Engine) resetRunState() {
	e.be.Reset()
	e.Latency.Reset()
	e.ValidPerRead.Reset()
	e.SpreadDepth.Reset()
	e.Recovery.Reset()
	for i := range e.shardQueuePeak {
		e.shardQueuePeak[i].Store(0)
	}
	if e.cache != nil {
		e.cache.ResetStats()
	}
	if e.shadow != nil {
		e.shadow.Reset()
	}
}

// finalizeRun derives the run's rates from its totals and worker clocks.
func finalizeRun(e *Engine, res *RunResult, ws []*Worker) {
	for _, w := range ws {
		if w.Now() > res.ElapsedNS {
			res.ElapsedNS = w.Now()
		}
	}
	res.QPS = metrics.PerSecond(res.Queries, res.ElapsedNS)
	prof := e.be.Profile()
	res.RawBandwidth = metrics.BytesPerSecond(res.PagesRead*int64(prof.PageSize), res.ElapsedNS)
	res.Utilization = metrics.Utilization(
		float64(res.UsefulKeys*int64(e.vecSize)),
		float64(res.PagesRead*int64(prof.PageSize)))
	res.EffectiveBandwidth = res.Utilization * prof.Bandwidth
	res.ServiceBandwidth = metrics.BytesPerSecond(
		(res.UsefulKeys+res.CacheHits)*int64(e.vecSize), res.ElapsedNS)
	res.MeanValidPerRead = e.ValidPerRead.Mean()
	res.MeanMaxShardDepth = e.SpreadDepth.Mean()
	res.Latency = e.Latency.Snapshot()
}

// WarmCache pre-populates the engine's cache by running the queries
// through the cache admission path only (no timing, no device activity).
// Used to reach steady-state hit rates before a measured run. When the
// engine has a Store the cached vectors are real: uncached keys are
// grouped by home page so each page image is read once per warm pass
// (not once per key), and each distinct key is admitted once, in
// first-appearance order, so the LRU state is deterministic.
func (e *Engine) WarmCache(queries [][]Key) error {
	if e.cache == nil {
		return nil
	}
	lay := e.cfg.Layout

	// First pass: distinct uncached keys in first-appearance order, grouped
	// by home page.
	var ordered []Key
	seen := make(map[Key]struct{})
	byPage := make(map[layout.PageID][]Key)
	for _, q := range queries {
		for _, k := range q {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if _, ok := e.cache.Get(k); ok {
				continue
			}
			ordered = append(ordered, k)
			home := lay.Home[k]
			byPage[home] = append(byPage[home], k)
		}
	}

	// Second pass: one read per touched page, extracting every wanted key.
	vecs := make(map[Key][]float32, len(ordered))
	if e.cfg.Store != nil {
		buf := make([]byte, e.cfg.Store.PageSize())
		for home, keys := range byPage {
			if err := e.cfg.Store.ReadPage(home, buf); err != nil {
				return fmt.Errorf("serving: warm cache page %d: %w", home, err)
			}
			nSlots := len(lay.Pages[home])
			for _, k := range keys {
				vec, ok, err := store.ExtractFromImage(buf, e.dim, k, nSlots, nil)
				if err != nil {
					return fmt.Errorf("serving: warm cache key %d: %w", k, err)
				}
				if !ok {
					return fmt.Errorf("serving: warm cache: home page %d missing key %d", home, k)
				}
				vecs[k] = vec
			}
		}
	}
	for _, k := range ordered {
		e.cache.Put(k, vecs[k])
	}
	e.cache.ResetStats()
	return nil
}
