package serving

import (
	"context"
	"fmt"

	"maxembed/internal/layout"
	"maxembed/internal/ssd"
)

// ScrubbableStore is a PageSource whose slots can be individually
// verified and repaired in place — the at-rest image a scrubber patrols.
// *store.Store and *store.Sharded implement it; payload-less and
// file-backed sources do not and cannot be scrubbed.
type ScrubbableStore interface {
	PageSource
	// SlotBytes returns the raw bytes of slot i on page p (aliasing the
	// image; position-independent, so valid as repair source elsewhere).
	SlotBytes(p layout.PageID, i int) ([]byte, error)
	// PutSlotBytes overwrites slot i of page p with one slot's bytes.
	PutSlotBytes(p layout.PageID, i int, src []byte) error
	// VerifySlot checks slot i of page p against its stored checksum,
	// returning the slot's key.
	VerifySlot(p layout.PageID, i int) (layout.Key, error)
}

// ScrubConfig parameterizes one scrub sweep.
type ScrubConfig struct {
	// PagesPerSec is the token-bucket rate limit in pages per virtual
	// second; the scrubber never reads faster than this, which is what
	// keeps serving traffic's tail latency intact while the sweep shares
	// the drives. Default 10000 (≈ 40 MB/s of 4 KiB pages).
	PagesPerSec float64
	// Repair enables in-place repair of corrupt slots from a replica of
	// the same key on another page (default). DetectOnly turns the sweep
	// into a pure audit.
	DetectOnly bool
	// Progress, when set, is invoked after every scanned page with the
	// cumulative scanned count and the total page population — the hook
	// the operational surface reports live progress through.
	Progress func(scanned, total int)
}

// ScrubReport summarizes one sweep.
type ScrubReport struct {
	// PagesScanned is the number of pages read and slot-verified;
	// PagesSkipped were on failed/rebuilding shards (their content is the
	// rebuilder's problem); PagesUnread hit a device read fault and could
	// not be verified this sweep.
	PagesScanned int
	PagesSkipped int
	PagesUnread  int
	// SlotsVerified is the number of occupied slots checksummed.
	SlotsVerified int
	// ReadFaults counts device-level faults the sweep's own reads hit.
	ReadFaults int
	// LatentSlots counts slots whose stored checksum did not verify —
	// silent at-rest corruption found before any query tripped on it.
	LatentSlots int
	// RepairedSlots of those were rewritten from a verified replica slot;
	// UnrepairableSlots had no intact replica anywhere.
	RepairedSlots     int
	UnrepairableSlots int
	// PerShardLatent breaks LatentSlots down by owning shard.
	PerShardLatent []int
	// StartNS/EndNS bound the sweep on the scrubber's virtual clock.
	StartNS, EndNS int64
}

// DurationNS returns the sweep's virtual duration.
func (r ScrubReport) DurationNS() int64 { return r.EndNS - r.StartNS }

// Scrub sweeps every page of the engine's layout once: each page is read
// through the backend's queue pairs at the configured token-bucket rate
// (so the sweep contends for the same channels and buses as serving
// traffic, but never floods them), every occupied slot is verified
// against its CRC32C, and corrupt slots are repaired from a verified
// replica of the same key on a live shard. Latent-error counts are
// credited to the owning shard's health account; read outcomes feed the
// shard fault windows like any other read. Pages on failed or rebuilding
// shards are skipped.
//
// The engine's store must be a ScrubbableStore. Scrub is synchronous in
// virtual time and safe to run concurrently with serving workers.
func Scrub(ctx context.Context, e *Engine, cfg ScrubConfig) (ScrubReport, error) {
	var rep ScrubReport
	scr, ok := e.cfg.Store.(ScrubbableStore)
	if !ok {
		return rep, fmt.Errorf("serving: store %T is not scrubbable", e.cfg.Store)
	}
	if cfg.PagesPerSec <= 0 {
		cfg.PagesPerSec = 10000
	}
	lay := e.cfg.Layout
	be := e.be
	hr, _ := be.(ssd.HealthReporter)
	arr, _ := be.(*ssd.Array)

	mq := ssd.NewMultiQueue(be)
	t := be.Frontier()
	rep.StartNS = t
	rep.PerShardLatent = make([]int, be.NumShards())
	interval := int64(1e9 / cfg.PagesPerSec)
	pace := t

	total := lay.NumPages()
	for p := 0; p < total; p++ {
		if err := ctx.Err(); err != nil {
			rep.EndNS = t
			return rep, err
		}
		page := layout.PageID(p)
		shard, _ := be.ShardOf(page)
		if hr != nil && !hr.ShardState(shard).Live() {
			rep.PagesSkipped++
			continue
		}

		// Pace the sweep: consecutive page reads start at least one rate
		// interval apart on the contended clock, with no catch-up bursts —
		// a sweep slowed by serving traffic stays slowed rather than
		// flooding the drives to get back on schedule.
		if t < pace {
			t = pace
		}
		pace = t + interval
		issue := mq.Submit(page, t)
		done, comps := mq.Drain(issue)
		t = done
		var comp ssd.Completion
		if len(comps) > 0 {
			comp = comps[0]
		}
		if comp.Err != nil || comp.Corrupt {
			// The sweep's own read faulted; the page stays unverified this
			// sweep (and the fault has already entered the shard's window).
			rep.ReadFaults++
			rep.PagesUnread++
			if cfg.Progress != nil {
				cfg.Progress(rep.PagesScanned+rep.PagesUnread, total)
			}
			continue
		}

		keys := lay.Pages[p]
		rep.PagesScanned++
		rep.SlotsVerified += len(keys)
		for i, k := range keys {
			if _, err := scr.VerifySlot(page, i); err == nil {
				continue
			}
			rep.LatentSlots++
			rep.PerShardLatent[shard]++
			if arr != nil {
				arr.NoteLatent(shard, 1)
			}
			if cfg.DetectOnly {
				continue
			}
			if t2, ok := repairSlot(e, scr, mq, page, i, k, shard, hr, t); ok {
				t = t2
				rep.RepairedSlots++
			} else {
				rep.UnrepairableSlots++
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(rep.PagesScanned+rep.PagesUnread, total)
		}
	}
	rep.EndNS = t
	return rep, nil
}

// repairSlot rewrites the corrupt slot i (key k) of page p from the first
// replica page holding a verified copy of k, charging the donor read and
// the owner's page rewrite. Returns the advanced clock and whether a
// repair happened.
func repairSlot(e *Engine, scr ScrubbableStore, mq *ssd.MultiQueue, p layout.PageID, i int, k Key, shard int, hr ssd.HealthReporter, t int64) (int64, bool) {
	lay := e.cfg.Layout
	for _, cand := range e.idx.Candidates(k) {
		if cand == p {
			continue
		}
		if cs, _ := e.be.ShardOf(cand); hr != nil && !hr.ShardState(cs).Live() {
			continue
		}
		j := slotIndexOf(lay.Pages[cand], k)
		if j < 0 {
			continue
		}
		if _, err := scr.VerifySlot(cand, j); err != nil {
			continue // donor is rotten too; keep looking
		}
		src, err := scr.SlotBytes(cand, j)
		if err != nil {
			continue
		}
		// Charge the donor page read and the owner's rewrite: repair is IO.
		issue := mq.Submit(cand, t)
		done, comps := mq.Drain(issue)
		t = done
		if len(comps) > 0 && (comps[0].Err != nil || comps[0].Corrupt) {
			continue // donor read faulted in flight; keep looking
		}
		_, local := e.be.ShardOf(p)
		t = e.be.Shard(shard).Write(local, t)
		if err := scr.PutSlotBytes(p, i, src); err != nil {
			return t, false
		}
		return t, true
	}
	return t, false
}

// slotIndexOf returns k's slot index within one page's key list, or -1.
func slotIndexOf(keys []Key, k Key) int {
	for i, kk := range keys {
		if kk == k {
			return i
		}
	}
	return -1
}
