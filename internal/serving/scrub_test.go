package serving

import (
	"context"
	"testing"

	"maxembed/internal/layout"
	"maxembed/internal/ssd"
)

// TestScrubDetectsAndRepairsLatentCorruption injects at-rest bit rot into
// the sharded store and checks one sweep finds every bad slot and repairs
// them all from cross-shard replicas.
func TestScrubDetectsAndRepairsLatentCorruption(t *testing.T) {
	lay, sh, _ := shardedFixture(t)
	arr := mustTestArray(t, ssd.P5800X, 2)
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}

	// Rot one slot on every page: each key of shardedFixture also lives on
	// a page of the opposite shard, so every slot is repairable.
	type hit struct {
		p layout.PageID
		i int
	}
	var rotted []hit
	for p := range lay.Pages {
		i := p // distinct slot per page, so no key loses both of its copies
		if err := sh.CorruptSlot(layout.PageID(p), i); err != nil {
			t.Fatal(err)
		}
		rotted = append(rotted, hit{layout.PageID(p), i})
	}

	var lastScanned int
	rep, err := Scrub(context.Background(), e, ScrubConfig{
		PagesPerSec: 1000,
		Progress:    func(scanned, total int) { lastScanned = scanned },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesScanned != lay.NumPages() || rep.PagesSkipped != 0 || rep.PagesUnread != 0 {
		t.Fatalf("scanned/skipped/unread = %d/%d/%d, want %d/0/0",
			rep.PagesScanned, rep.PagesSkipped, rep.PagesUnread, lay.NumPages())
	}
	if lastScanned != lay.NumPages() {
		t.Fatalf("progress reported %d pages, want %d", lastScanned, lay.NumPages())
	}
	if rep.LatentSlots != len(rotted) {
		t.Fatalf("LatentSlots = %d, want %d (100%% detection)", rep.LatentSlots, len(rotted))
	}
	if rep.RepairedSlots != len(rotted) || rep.UnrepairableSlots != 0 {
		t.Fatalf("repaired/unrepairable = %d/%d, want %d/0",
			rep.RepairedSlots, rep.UnrepairableSlots, len(rotted))
	}
	sum := 0
	for _, n := range rep.PerShardLatent {
		sum += n
	}
	if sum != rep.LatentSlots {
		t.Fatalf("PerShardLatent sums to %d, want %d", sum, rep.LatentSlots)
	}
	// The repairs took: every rotted slot verifies again.
	for _, h := range rotted {
		if _, err := sh.VerifySlot(h.p, h.i); err != nil {
			t.Fatalf("slot (%d, %d) still corrupt after repair: %v", h.p, h.i, err)
		}
	}
	// Latent errors are credited to shard health.
	var latent int64
	for _, info := range arr.ShardHealths() {
		latent += info.LatentErrors
	}
	if latent != int64(len(rotted)) {
		t.Fatalf("health accounts %d latent errors, want %d", latent, len(rotted))
	}
	// The token bucket paced the sweep: at 1000 pages/s the last page may
	// not be read before (pages-1) ms of virtual time.
	if minDur := int64(lay.NumPages()-1) * int64(1e6); rep.DurationNS() < minDur {
		t.Fatalf("sweep took %d ns, want ≥ %d (rate limit ignored)", rep.DurationNS(), minDur)
	}
	// A second sweep is clean.
	rep2, err := Scrub(context.Background(), e, ScrubConfig{PagesPerSec: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LatentSlots != 0 {
		t.Fatalf("second sweep found %d latent slots, want 0", rep2.LatentSlots)
	}
}

// TestScrubDetectOnlyAndUnrepairable: with every copy of a key rotten the
// slot is unrepairable, and DetectOnly never writes.
func TestScrubDetectOnlyAndUnrepairable(t *testing.T) {
	lay, sh, _ := shardedFixture(t)
	arr := mustTestArray(t, ssd.P5800X, 2)
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}

	// Rot BOTH copies of key 0 (home page slot and its replica slot).
	k := Key(0)
	var pages []layout.PageID
	pages = lay.PagesOf(k, pages)
	if len(pages) != 2 {
		t.Fatalf("key 0 on %d pages, want 2", len(pages))
	}
	for _, p := range pages {
		if err := sh.CorruptSlot(p, slotIndexOf(lay.Pages[p], k)); err != nil {
			t.Fatal(err)
		}
	}

	det, err := Scrub(context.Background(), e, ScrubConfig{DetectOnly: true, PagesPerSec: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if det.LatentSlots != 2 || det.RepairedSlots != 0 {
		t.Fatalf("DetectOnly latent/repaired = %d/%d, want 2/0", det.LatentSlots, det.RepairedSlots)
	}

	rep, err := Scrub(context.Background(), e, ScrubConfig{PagesPerSec: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentSlots != 2 || rep.UnrepairableSlots != 2 || rep.RepairedSlots != 0 {
		t.Fatalf("latent/unrepairable/repaired = %d/%d/%d, want 2/2/0",
			rep.LatentSlots, rep.UnrepairableSlots, rep.RepairedSlots)
	}
}

// TestScrubSkipsDeadShards: pages on a failed shard are skipped, not read.
func TestScrubSkipsDeadShards(t *testing.T) {
	lay, sh, _ := shardedFixture(t)
	arr := mustTestArray(t, ssd.P5800X, 2)
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	arr.FailShard(0)
	rep, err := Scrub(context.Background(), e, ScrubConfig{PagesPerSec: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	want := lay.NumPages() / 2 // p mod 2 striping: half the pages on shard 0
	if rep.PagesSkipped != want {
		t.Fatalf("PagesSkipped = %d, want %d", rep.PagesSkipped, want)
	}
	if got := arr.Shard(0).Stats().Reads; got != 0 {
		t.Fatalf("dead shard saw %d scrub reads, want 0", got)
	}
}
