package serving

import (
	"os"
	"path/filepath"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

const testDim = 64

// fixture bundles everything needed to build engines over one workload.
type fixture struct {
	trace *workload.Trace
	graph *hypergraph.Graph
	lay   *layout.Layout
	store *store.Store
	syn   *embedding.Synthesizer
}

func newFixture(t *testing.T, strat placement.Strategy, ratio float64) *fixture {
	t.Helper()
	p := workload.Profile{
		Name: "t", Items: 1500, Queries: 4000, MeanQueryLen: 16,
		Communities: 120, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 6,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	capacity := embedding.PageCapacity(4096, testDim)
	lay, err := placement.Build(strat, g, placement.Options{
		Capacity: capacity, ReplicationRatio: ratio, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(testDim, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Build(lay, syn, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{trace: tr, graph: g, lay: lay, store: st, syn: syn}
}

func (f *fixture) engine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Layout:   f.lay,
		Device:   dev,
		Store:    f.store,
		Pipeline: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLookupReturnsCorrectVectors(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	e := f.engine(t, nil)
	w := e.NewWorker()
	var want []float32
	for qi := 0; qi < 200; qi++ {
		q := f.trace.Queries[qi]
		res, err := w.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		distinct := map[Key]bool{}
		for _, k := range q {
			distinct[k] = true
		}
		if len(res.Keys) != len(distinct) {
			t.Fatalf("query %d: %d result keys, want %d", qi, len(res.Keys), len(distinct))
		}
		for i, k := range res.Keys {
			if !distinct[k] {
				t.Fatalf("query %d returned key %d not in query", qi, k)
			}
			want = f.syn.Vector(k, want[:0])
			got := res.Vectors[i]
			if len(got) != testDim {
				t.Fatalf("vector len = %d", len(got))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("query %d key %d element %d: %v != %v", qi, k, j, got[j], want[j])
				}
			}
		}
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, nil)
	w := e.NewWorker()
	prev := int64(0)
	for qi := 0; qi < 50; qi++ {
		res, err := w.Lookup(f.trace.Queries[qi])
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		if st.StartNS != prev {
			t.Fatalf("query %d started at %d, want %d", qi, st.StartNS, prev)
		}
		if st.EndNS <= st.StartNS {
			t.Fatalf("query %d: non-positive latency", qi)
		}
		prev = st.EndNS
	}
}

func TestCacheServesHitsWithoutSSD(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, func(c *Config) { c.CacheEntries = f.lay.NumKeys }) // everything fits
	w := e.NewWorker()
	q := f.trace.Queries[0]
	first, err := w.Lookup(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PagesRead == 0 {
		t.Fatal("first lookup read no pages")
	}
	second, err := w.Lookup(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.PagesRead != 0 {
		t.Errorf("second lookup read %d pages; cache should cover all", second.Stats.PagesRead)
	}
	if second.Stats.CacheHits != second.Stats.DistinctKeys {
		t.Errorf("CacheHits = %d, want %d", second.Stats.CacheHits, second.Stats.DistinctKeys)
	}
	// Cached vectors are still correct.
	var want []float32
	for i, k := range second.Keys {
		want = f.syn.Vector(k, want[:0])
		for j := range want {
			if second.Vectors[i][j] != want[j] {
				t.Fatalf("cached vector wrong for key %d", k)
			}
		}
	}
}

func TestPipelineFasterThanRaw(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	queries := f.trace.Queries[:500]

	pipe := f.engine(t, func(c *Config) { c.Pipeline = true })
	rp, err := Run(pipe, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw := f.engine(t, func(c *Config) { c.Pipeline = false })
	rr, err := Run(raw, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rp.ElapsedNS >= rr.ElapsedNS {
		t.Errorf("pipelined run (%d ns) not faster than raw (%d ns)", rp.ElapsedNS, rr.ElapsedNS)
	}
	// Identical page-read work either way.
	if rp.PagesRead != rr.PagesRead {
		t.Errorf("page reads differ: %d vs %d", rp.PagesRead, rr.PagesRead)
	}
}

func TestMaxEmbedBeatsSHPEffectiveBandwidth(t *testing.T) {
	// The headline claim: with replication, fewer page reads serve the
	// same keys, so effective bandwidth and QPS rise and mean valid
	// embeddings per read increases (Figs 8, 9, 10).
	base := newFixture(t, placement.StrategySHP, 0)
	me := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	queries := base.trace.Queries[:800]

	rBase, err := Run(base.engine(t, nil), queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	rME, err := Run(me.engine(t, nil), queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rME.PagesRead >= rBase.PagesRead {
		t.Errorf("MaxEmbed reads %d pages, SHP %d — no reduction", rME.PagesRead, rBase.PagesRead)
	}
	if rME.EffectiveBandwidth <= rBase.EffectiveBandwidth {
		t.Errorf("MaxEmbed eff bw %.3e not above SHP %.3e",
			rME.EffectiveBandwidth, rBase.EffectiveBandwidth)
	}
	if rME.QPS <= rBase.QPS {
		t.Errorf("MaxEmbed QPS %.0f not above SHP %.0f", rME.QPS, rBase.QPS)
	}
	if rME.MeanValidPerRead <= rBase.MeanValidPerRead {
		t.Errorf("MeanValidPerRead %.2f not above %.2f",
			rME.MeanValidPerRead, rBase.MeanValidPerRead)
	}
	if rME.Latency.MeanNS >= rBase.Latency.MeanNS {
		t.Errorf("MaxEmbed latency %.0f not below SHP %.0f",
			rME.Latency.MeanNS, rBase.Latency.MeanNS)
	}
}

func TestRunDeterministic(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.2)
	queries := f.trace.Queries[:300]
	a, err := Run(f.engine(t, func(c *Config) { c.CacheEntries = 100 }), queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(f.engine(t, func(c *Config) { c.CacheEntries = 100 }), queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestFaultRetry(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, nil)
	e.cfg.Device.SetFaultInjector(ssd.FailEveryN(7))
	r, err := Run(e, f.trace.Queries[:200], 2)
	if err != nil {
		t.Fatalf("run with retries failed: %v", err)
	}
	if r.Queries != 200 {
		t.Errorf("Queries = %d", r.Queries)
	}
	if e.cfg.Device.Stats().Errors == 0 {
		t.Error("no faults were injected")
	}
}

func TestConfigValidation(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	dev, _ := ssd.NewDevice(ssd.P5800X)
	if _, err := New(Config{Device: dev}); err == nil {
		t.Error("missing layout accepted")
	}
	if _, err := New(Config{Layout: f.lay}); err == nil {
		t.Error("missing device accepted")
	}
	bad := *f.lay
	bad.Capacity = 0
	if _, err := New(Config{Layout: &bad, Device: dev}); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestIndexLimitStillCorrect(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.8)
	limited := f.engine(t, func(c *Config) { c.IndexLimit = 3 })
	w := limited.NewWorker()
	var want []float32
	for qi := 0; qi < 100; qi++ {
		res, err := w.Lookup(f.trace.Queries[qi])
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range res.Keys {
			want = f.syn.Vector(k, want[:0])
			for j := range want {
				if res.Vectors[i][j] != want[j] {
					t.Fatalf("index-limited lookup returned wrong vector for key %d", k)
				}
			}
		}
	}
}

func TestGreedySelectionMode(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	queries := f.trace.Queries[:300]
	onePass, err := Run(f.engine(t, nil), queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Run(f.engine(t, func(c *Config) { c.Greedy = true }), queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy scans far more index entries, so its software time dominates
	// — the §6 motivation for one-pass selection.
	if greedy.SelectNS <= onePass.SelectNS*2 {
		t.Errorf("greedy select time %d not ≫ one-pass %d", greedy.SelectNS, onePass.SelectNS)
	}
}

func TestWarmCache(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, func(c *Config) { c.CacheEntries = 200 })
	if err := e.WarmCache(f.trace.Queries[:500]); err != nil {
		t.Fatal(err)
	}
	if e.Cache().Len() == 0 {
		t.Fatal("cache empty after warm")
	}
	if e.Cache().Len() > 200 {
		t.Fatalf("cache over capacity: %d", e.Cache().Len())
	}
	// Warmed vectors must be real.
	w := e.NewWorker()
	res, err := w.Lookup(f.trace.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	var want []float32
	for i, k := range res.Keys {
		want = f.syn.Vector(k, want[:0])
		for j := range want {
			if res.Vectors[i][j] != want[j] {
				t.Fatalf("warmed cache returned wrong vector for key %d", k)
			}
		}
	}
}

func TestTimingOnlyMode(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.2)
	e := f.engine(t, func(c *Config) { c.Store = nil })
	r, err := Run(e, f.trace.Queries[:100], 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.PagesRead == 0 || r.EffectiveBandwidth == 0 {
		t.Errorf("timing-only run produced no activity: %+v", r)
	}
}

func TestUnsortedSelectionStillCorrect(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	e := f.engine(t, func(c *Config) { c.UnsortedSelection = true })
	w := e.NewWorker()
	var want []float32
	for qi := 0; qi < 100; qi++ {
		res, err := w.Lookup(f.trace.Queries[qi])
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range res.Keys {
			want = f.syn.Vector(k, want[:0])
			for j := range want {
				if res.Vectors[i][j] != want[j] {
					t.Fatalf("unsorted selection returned wrong vector for key %d", k)
				}
			}
		}
	}
}

func TestFileStoreServing(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	// Serialize the in-memory store and serve from the file-backed one.
	path := filepath.Join(t.TempDir(), "pages.bin")
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.store.WriteTo(file); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err := store.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	e := f.engine(t, func(c *Config) { c.Store = fs })
	w := e.NewWorker()
	var want []float32
	for qi := 0; qi < 100; qi++ {
		res, err := w.Lookup(f.trace.Queries[qi])
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range res.Keys {
			want = f.syn.Vector(k, want[:0])
			for j := range want {
				if res.Vectors[i][j] != want[j] {
					t.Fatalf("file-backed lookup returned wrong vector for key %d", k)
				}
			}
		}
	}
}

func TestWorkerLookupBatch(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.3)
	e := f.engine(t, nil)
	w := e.NewWorker()
	batch := f.trace.Queries[:5]
	res, err := w.LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerQuery) != len(batch) {
		t.Fatalf("PerQuery = %d, want %d", len(res.PerQuery), len(batch))
	}
	distinct := map[Key]bool{}
	for _, q := range batch {
		for _, k := range q {
			distinct[k] = true
		}
	}
	if res.Stats.Combined.DistinctKeys != len(distinct) {
		t.Errorf("combined distinct = %d, want %d", res.Stats.Combined.DistinctKeys, len(distinct))
	}
}

func TestSessionStartsAtDeviceFrontier(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	e := f.engine(t, nil)
	w1 := e.NewWorker()
	for i := 0; i < 20; i++ {
		if _, err := w1.Lookup(f.trace.Queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	w2 := e.NewWorker()
	res, err := w2.Lookup(f.trace.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	// A fresh worker must not appear to queue behind long-finished work:
	// its first-lookup latency should be comparable to steady state, not
	// the full accumulated virtual time of w1.
	if lat := res.Stats.LatencyNS(); lat > w1.Now()/2 {
		t.Errorf("fresh worker first lookup took %d ns (w1 clock %d): frontier start broken", lat, w1.Now())
	}
}

func TestHistoryRecorder(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	rec := NewHistoryRecorder(50)
	e := f.engine(t, func(c *Config) { c.Recorder = rec })
	w := e.NewWorker()
	for i := 0; i < 80; i++ {
		if _, err := w.Lookup(f.trace.Queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Total() != 80 {
		t.Errorf("Total = %d, want 80", rec.Total())
	}
	snap := rec.Snapshot()
	if len(snap) != 50 {
		t.Fatalf("Snapshot kept %d queries, want 50", len(snap))
	}
	// Ring keeps the most recent 50 (queries 30..79), oldest first, with
	// deduplicated keys.
	wantFirst := map[Key]bool{}
	for _, k := range f.trace.Queries[30] {
		wantFirst[k] = true
	}
	if len(snap[0]) != len(wantFirst) {
		t.Errorf("oldest retained query has %d keys, want %d", len(snap[0]), len(wantFirst))
	}
	for _, k := range snap[0] {
		if !wantFirst[k] {
			t.Errorf("unexpected key %d in oldest retained query", k)
		}
	}
	// Snapshot copies: mutating it must not affect the recorder.
	snap[0][0] = 9999
	if rec.Snapshot()[0][0] == 9999 {
		t.Error("Snapshot aliases internal storage")
	}
}

func TestHistoryRecorderPartialRing(t *testing.T) {
	rec := NewHistoryRecorder(10)
	rec.Record([]Key{1, 2})
	rec.Record([]Key{3})
	snap := rec.Snapshot()
	if len(snap) != 2 || len(snap[0]) != 2 || snap[1][0] != 3 {
		t.Errorf("partial ring snapshot = %v", snap)
	}
	if NewHistoryRecorder(0) == nil {
		t.Error("zero-capacity recorder not clamped")
	}
}
