package serving

import (
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
)

// deadShardModel fails every read unconditionally: a dead drive.
type deadShardModel struct{}

func (deadShardModel) Judge(int64, ssd.PageID) ssd.Fault {
	return ssd.Fault{Err: ssd.ErrReadFailed}
}

func mustTestArray(t *testing.T, p ssd.Profile, n int) *ssd.Array {
	t.Helper()
	arr, err := ssd.NewArray(p, n)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

// TestBackendOneShardMatchesDevice pins the acceptance criterion that a
// one-device array behind Config.Backend is indistinguishable from the same
// device behind Config.Device: identical run results, stats included.
func TestBackendOneShardMatchesDevice(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	queries := f.trace.Queries[:400]

	onDevice, err := Run(f.engine(t, nil), queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	arrEng := f.engine(t, func(c *Config) {
		c.Device = nil
		c.Backend = mustTestArray(t, ssd.P5800X, 1)
	})
	if arrEng.NumShards() != 1 {
		t.Fatalf("NumShards = %d", arrEng.NumShards())
	}
	onArray, err := Run(arrEng, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	if onDevice != onArray {
		t.Errorf("one-shard array run diverges from bare device:\n%+v\n%+v", onDevice, onArray)
	}
	// Per-lookup results match too, vectors included.
	devEng := f.engine(t, nil)
	arrEng2 := f.engine(t, func(c *Config) {
		c.Device = nil
		c.Backend = mustTestArray(t, ssd.P5800X, 1)
	})
	wd, wa := devEng.NewWorker(), arrEng2.NewWorker()
	for qi := 0; qi < 100; qi++ {
		rd, err := wd.Lookup(f.trace.Queries[qi])
		if err != nil {
			t.Fatal(err)
		}
		ra, err := wa.Lookup(f.trace.Queries[qi])
		if err != nil {
			t.Fatal(err)
		}
		if rd.Stats != ra.Stats {
			t.Fatalf("query %d stats diverge:\n%+v\n%+v", qi, rd.Stats, ra.Stats)
		}
		for i := range rd.Keys {
			if rd.Keys[i] != ra.Keys[i] {
				t.Fatalf("query %d key order diverges", qi)
			}
			for j := range rd.Vectors[i] {
				if rd.Vectors[i][j] != ra.Vectors[i][j] {
					t.Fatalf("query %d vector diverges for key %d", qi, rd.Keys[i])
				}
			}
		}
	}
}

func TestConfigDeviceBackendExclusive(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	dev, err := ssd.NewDevice(ssd.P5800X)
	if err != nil {
		t.Fatal(err)
	}
	arr := mustTestArray(t, ssd.P5800X, 2)
	if _, err := New(Config{Layout: f.lay, Device: dev, Backend: arr}); err == nil {
		t.Error("Config with both Device and Backend accepted")
	}
	if _, err := New(Config{Layout: f.lay}); err == nil {
		t.Error("Config with neither Device nor Backend accepted")
	}
}

// shardedFixture hand-builds a layout whose every key has candidate pages on
// both shards of a 2-device array: home pages 0..1 alternate shards under
// p mod 2 striping, and each home's keys get a replica page on the opposite
// shard.
func shardedFixture(t *testing.T) (*layout.Layout, *store.Sharded, *embedding.Synthesizer) {
	t.Helper()
	capacity := embedding.PageCapacity(4096, testDim)
	lay := layout.Vanilla(2*capacity, capacity)
	span := func(lo, hi int) []layout.Key {
		keys := make([]layout.Key, 0, hi-lo)
		for k := lo; k < hi; k++ {
			keys = append(keys, layout.Key(k))
		}
		return keys
	}
	// Page 2 (shard 0) replicates home page 1 (shard 1) and vice versa.
	if _, err := lay.AddReplicaPage(span(capacity, 2*capacity)); err != nil {
		t.Fatal(err)
	}
	if _, err := lay.AddReplicaPage(span(0, capacity)); err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(testDim, 8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.BuildSharded(lay, syn, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	return lay, sh, syn
}

// TestShardFaultIsolation is the single-drive-failure acceptance test: with
// every key replicated across both shards, killing one entire shard loses
// no keys — every read that lands on the dead drive is rescued from the
// survivor, and the fault counters stay confined to the dead shard.
func TestShardFaultIsolation(t *testing.T) {
	lay, sh, syn := shardedFixture(t)
	arr := mustTestArray(t, ssd.P5800X, 2)
	arr.SetShardFaultModel(0, deadShardModel{})
	e, err := New(Config{Layout: lay, Backend: arr, Store: sh, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	w := e.NewWorker()
	var faults, rescues int
	var want []float32
	check := func(q []Key) {
		t.Helper()
		res, err := w.Lookup(q)
		if err != nil {
			t.Fatalf("lookup %v: %v", q, err)
		}
		if res.Stats.Degraded || len(res.FailedKeys) != 0 {
			t.Fatalf("query %v degraded with a healthy replica shard: %+v", q, res.Stats)
		}
		faults += res.Stats.ReadFaults
		rescues += res.Stats.ReplicaRescues
		for i, k := range res.Keys {
			want = syn.Vector(k, want[:0])
			for j := range want {
				if res.Vectors[i][j] != want[j] {
					t.Fatalf("key %d: wrong vector after shard-0 rescue", k)
				}
			}
		}
	}
	for k := 0; k < lay.NumKeys; k++ {
		check([]Key{Key(k)})
	}
	// A query spanning both shards' keys still completes in one lookup.
	check([]Key{0, Key(lay.NumKeys - 1), 3, Key(lay.NumKeys / 2)})

	if faults == 0 {
		t.Fatal("no reads landed on the dead shard; the test is vacuous")
	}
	if rescues == 0 {
		t.Fatal("no replica rescues despite shard-diverse replicas")
	}
	ss := arr.ShardStats()
	if ss[0].Errors == 0 {
		t.Error("dead shard recorded no errors")
	}
	if ss[1].Errors != 0 {
		t.Errorf("healthy shard recorded %d errors", ss[1].Errors)
	}
	if ss[1].Reads == 0 {
		t.Error("healthy shard served no reads")
	}
}

// TestShardTieBreakSpreadsLoad: when a key's candidates tie on coverage,
// selection prefers the page on the less-loaded shard of the query's plan.
// Both keys' homes sit on shard 0 and both replicas on shard 1, so a plan
// that ignored shard load would put both reads on shard 0; the tie-break
// must split them 1/1.
func TestShardTieBreakSpreadsLoad(t *testing.T) {
	capacity := embedding.PageCapacity(4096, testDim)
	lay := layout.Vanilla(4*capacity, capacity) // home pages 0..3: shards 0,1,0,1
	span := func(lo, hi int) []layout.Key {
		keys := make([]layout.Key, 0, hi-lo)
		for k := lo; k < hi; k++ {
			keys = append(keys, layout.Key(k))
		}
		return keys
	}
	// Replica pages 4..7 land on shards 0,1,0,1; give the shard-0 home keys
	// (pages 0 and 2) replicas on shard-1 pages 5 and 7.
	for _, r := range [][]layout.Key{
		span(capacity, 2*capacity),   // page 4, shard 0
		span(0, capacity),            // page 5, shard 1
		span(3*capacity, 4*capacity), // page 6, shard 0
		span(2*capacity, 3*capacity), // page 7, shard 1
	} {
		if _, err := lay.AddReplicaPage(r); err != nil {
			t.Fatal(err)
		}
	}
	arr := mustTestArray(t, ssd.P5800X, 2)
	e, err := New(Config{Layout: lay, Backend: arr, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	w := e.NewWorker()
	// Key 0 (home page 0, shard 0) and key 2*capacity (home page 2, shard
	// 0): each covers only itself on either candidate, so both picks are
	// ties between a shard-0 home and a shard-1 replica.
	res, err := w.Lookup([]Key{0, Key(2 * capacity)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PagesRead != 2 {
		t.Fatalf("PagesRead = %d, want 2", res.Stats.PagesRead)
	}
	ss := arr.ShardStats()
	if ss[0].Reads != 1 || ss[1].Reads != 1 {
		t.Errorf("shard reads = (%d, %d), want (1, 1): tie-break did not spread load",
			ss[0].Reads, ss[1].Reads)
	}
	peaks := e.ShardQueuePeaks()
	if len(peaks) != 2 {
		t.Fatalf("ShardQueuePeaks len = %d", len(peaks))
	}
	if peaks[0] == 0 || peaks[1] == 0 {
		t.Errorf("queue peaks = %v, want both non-zero", peaks)
	}
}

// TestMaxShardDepthCountsBusiestShard: per-query MaxShardDepth is the
// deepest per-shard count of the final plan — two reads aliasing onto one
// shard report depth 2, two reads on different shards report depth 1 —
// and the engine's SpreadDepth histogram accumulates one sample per query.
func TestMaxShardDepthCountsBusiestShard(t *testing.T) {
	capacity := embedding.PageCapacity(4096, testDim)
	lay := layout.Vanilla(4*capacity, capacity) // pages 0..3: shards 0,1,0,1
	arr := mustTestArray(t, ssd.P5800X, 2)
	e, err := New(Config{Layout: lay, Backend: arr, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	w := e.NewWorker()

	// Keys on pages 0 and 2: both home pages stripe onto shard 0.
	aliased, err := w.Lookup([]Key{0, Key(2 * capacity)})
	if err != nil {
		t.Fatal(err)
	}
	if aliased.Stats.PagesRead != 2 || aliased.Stats.MaxShardDepth != 2 {
		t.Errorf("aliased query: pages=%d depth=%d, want 2 reads serialized on one shard",
			aliased.Stats.PagesRead, aliased.Stats.MaxShardDepth)
	}

	// Keys on pages 0 and 1: one read per shard.
	spread, err := w.Lookup([]Key{0, Key(capacity)})
	if err != nil {
		t.Fatal(err)
	}
	if spread.Stats.PagesRead != 2 || spread.Stats.MaxShardDepth != 1 {
		t.Errorf("spread query: pages=%d depth=%d, want depth 1 across two shards",
			spread.Stats.PagesRead, spread.Stats.MaxShardDepth)
	}

	if got := e.SpreadDepth.Count(); got != 2 {
		t.Errorf("SpreadDepth recorded %d queries, want 2", got)
	}
	if got := e.SpreadDepth.Mean(); got != 1.5 {
		t.Errorf("SpreadDepth mean = %v, want 1.5", got)
	}
}

// TestShardQueuePeaksAcrossRun: a multi-shard engine reports a per-shard
// queue high-water mark after a run, and Run's reset clears it.
func TestShardQueuePeaksAcrossRun(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	e := f.engine(t, func(c *Config) {
		c.Device = nil
		c.Backend = mustTestArray(t, ssd.P5800X, 2)
	})
	if _, err := Run(e, f.trace.Queries[:300], 4); err != nil {
		t.Fatal(err)
	}
	peaks := e.ShardQueuePeaks()
	if len(peaks) != 2 {
		t.Fatalf("ShardQueuePeaks len = %d, want 2", len(peaks))
	}
	for s, p := range peaks {
		if p <= 0 {
			t.Errorf("shard %d queue peak = %d, want > 0", s, p)
		}
	}
}
