package serving

import (
	"encoding/binary"
	"math"

	"maxembed/internal/ssd"
)

// SlotRef is a zero-copy view of one embedding's payload inside a
// reference-counted completion buffer of a real-I/O backend (see
// ssd.PageBuf and DESIGN.md §17). The payload bytes are the slot's raw
// little-endian float32 vector, checksum-verified in place at extraction;
// no copy is made between the device read and whatever consumes the view
// (the HTTP encoders read it directly into the response body).
//
// Lifetime: a ref returned in a Result is valid until the worker's next
// lookup, exactly like Result's other slices. A holder that needs the view
// past that point (the server handing a scattered batch result to
// concurrent response encoders) must, before the worker moves on, Retain
// AND copy the SlotRef value out of Result.Refs — the Refs slice itself is
// worker scratch whose entries the next lookup overwrites in place — then
// Release when done; the underlying buffer recycles only after every
// retained view is released.
//
// The zero SlotRef is not Valid; it marks result entries whose payload
// lives elsewhere (DRAM cache hits, host-store fallbacks, the simulated
// read path), where Result.Vectors carries the value instead.
type SlotRef struct {
	buf     *ssd.PageBuf
	payload []byte
}

// Valid reports whether the ref carries a payload view.
func (r SlotRef) Valid() bool { return r.buf != nil }

// Payload returns the raw little-endian float32 payload bytes (4×dim).
func (r SlotRef) Payload() []byte { return r.payload }

// Dim returns the embedding dimension of the view.
func (r SlotRef) Dim() int { return len(r.payload) / 4 }

// Float32 decodes element i of the vector in place.
func (r SlotRef) Float32(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(r.payload[4*i:]))
}

// AppendVector appends the decoded vector to dst and returns it.
func (r SlotRef) AppendVector(dst []float32) []float32 {
	for i := 0; i < len(r.payload); i += 4 {
		dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(r.payload[i:])))
	}
	return dst
}

// Retain adds a reference to the underlying completion buffer. No-op on
// an invalid ref.
func (r SlotRef) Retain() {
	if r.buf != nil {
		r.buf.Retain()
	}
}

// Release drops a reference taken with Retain (or the result's own, when
// the holder consumes it early). No-op on an invalid ref.
func (r SlotRef) Release() {
	if r.buf != nil {
		r.buf.Release()
	}
}
