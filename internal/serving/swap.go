package serving

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Online layout refresh needs to replace a running engine — new layout, new
// store, new selection index — without stranding in-flight sessions on the
// old layout or dropping requests. Swappable is that seam: a versioned,
// atomically swappable engine handle. Serving frontends load the current
// (engine, generation) pair at each query boundary and re-bind their
// workers when the generation has moved, so a swap is picked up between
// queries, never inside one; the old engine (and its page images) stays
// alive until the last worker bound to it finishes, which is what lets two
// store generations coexist during a swap.

// engineEntry pairs an engine with the layout generation it serves.
type engineEntry struct {
	eng *Engine
	gen uint64
}

// RecoveryTotals is a plain-value snapshot of recovery activity summed
// across every engine a Swappable has held. Keeping the totals monotonic
// across swaps is what lets Prometheus-style counters survive a refresh
// (a fresh engine's counters start at zero).
type RecoveryTotals struct {
	ReadErrors      int64
	Timeouts        int64
	Corruptions     int64
	Retries         int64
	ReplicaRescues  int64
	RecoveredKeys   int64
	DegradedQueries int64
	FailedKeys      int64
	// ShardReroutes counts keys proactively moved off failed/rebuilding
	// shards before submit; StoreFallbacks counts keys served by
	// host-store read-through because no live replica covered them.
	ShardReroutes  int64
	StoreFallbacks int64
	// Lookups counts queries served (latency samples recorded).
	Lookups int64
}

// add accumulates an engine's current counters into the totals.
func (t *RecoveryTotals) add(e *Engine) {
	r := e.Recovery
	t.ReadErrors += r.ReadErrors.Load()
	t.Timeouts += r.Timeouts.Load()
	t.Corruptions += r.Corruptions.Load()
	t.Retries += r.Retries.Load()
	t.ReplicaRescues += r.ReplicaRescues.Load()
	t.RecoveredKeys += r.RecoveredKeys.Load()
	t.DegradedQueries += r.DegradedQueries.Load()
	t.FailedKeys += r.FailedKeys.Load()
	t.ShardReroutes += r.ShardReroutes.Load()
	t.StoreFallbacks += r.StoreFallbacks.Load()
	t.Lookups += int64(e.Latency.Count())
}

// Swappable is a versioned engine handle supporting atomic hot swap: Load
// returns the current engine and its layout generation, and Swap publishes
// a replacement built from a refreshed layout. It is safe for concurrent
// use; loads are a single atomic pointer read on the serving hot path.
type Swappable struct {
	cur   atomic.Pointer[engineEntry]
	swaps atomic.Int64

	mu         sync.Mutex     // serializes Swap
	retired    RecoveryTotals // counters carried over from replaced engines
	beforeMean float64        // replaced engine's ValidPerRead mean at last swap
}

// NewSwappable returns a handle serving the given engine at generation 1.
func NewSwappable(e *Engine) *Swappable {
	if e == nil {
		panic("serving: NewSwappable(nil)")
	}
	s := &Swappable{}
	e.gen = 1
	s.cur.Store(&engineEntry{eng: e, gen: 1})
	return s
}

// Load returns the current engine and its layout generation.
func (s *Swappable) Load() (*Engine, uint64) {
	e := s.cur.Load()
	return e.eng, e.gen
}

// Engine returns the current engine.
func (s *Swappable) Engine() *Engine { return s.cur.Load().eng }

// Generation returns the current layout generation (starts at 1 and
// increments on every Swap).
func (s *Swappable) Generation() uint64 { return s.cur.Load().gen }

// Swaps returns how many engines have been swapped in since creation.
func (s *Swappable) Swaps() int64 { return s.swaps.Load() }

// Swap atomically publishes e as the current engine under the next
// generation and returns that generation. The replaced engine's counters
// are folded into the handle's retired totals and its valid-per-read mean
// is retained (ValidPerReadBefore) so a refresh's effect is observable as
// a before/after pair. The caller must not have exposed e to any worker
// yet: Swap stamps its generation before publishing it.
func (s *Swappable) Swap(e *Engine) (uint64, error) {
	if e == nil {
		return 0, errors.New("serving: Swap(nil)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	if e == old.eng {
		return old.gen, errors.New("serving: Swap of the already-current engine")
	}
	s.retired.add(old.eng)
	s.beforeMean = old.eng.ValidPerRead.Mean()
	gen := old.gen + 1
	e.gen = gen
	s.cur.Store(&engineEntry{eng: e, gen: gen})
	s.swaps.Add(1)
	return gen, nil
}

// ValidPerReadBefore returns the valid-embeddings-per-read mean of the
// engine most recently replaced by Swap (0 before any swap). Read next to
// the current engine's running mean, it is the before/after pair that shows
// whether a refresh recovered placement quality.
func (s *Swappable) ValidPerReadBefore() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beforeMean
}

// Totals returns recovery counters summed over every engine the handle has
// held: the retired totals of replaced engines plus the current engine's
// live counters. Monotonic across swaps.
func (s *Swappable) Totals() RecoveryTotals {
	// Taken under the swap mutex so a concurrent Swap cannot fold the
	// current engine into retired between the two reads (which would make
	// the totals transiently dip).
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.retired
	t.add(s.cur.Load().eng)
	return t
}
