package serving

import (
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/placement"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

func TestSwappableGenerations(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	e1 := f.engine(t, nil)
	s := NewSwappable(e1)
	if got, gen := s.Load(); got != e1 || gen != 1 {
		t.Fatalf("Load = (%p, %d), want (%p, 1)", got, gen, e1)
	}
	if e1.Generation() != 1 {
		t.Errorf("engine generation = %d, want 1", e1.Generation())
	}
	if s.Swaps() != 0 {
		t.Errorf("Swaps = %d before any swap", s.Swaps())
	}
	if _, err := s.Swap(nil); err == nil {
		t.Error("Swap(nil) did not error")
	}
	if _, err := s.Swap(e1); err == nil {
		t.Error("Swap of the current engine did not error")
	}
	e2 := f.engine(t, nil)
	gen, err := s.Swap(e2)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || s.Generation() != 2 || e2.Generation() != 2 {
		t.Errorf("after swap: returned %d, handle %d, engine %d; want 2,2,2",
			gen, s.Generation(), e2.Generation())
	}
	if s.Engine() != e2 {
		t.Error("Engine() still returns the old engine")
	}
	if s.Swaps() != 1 {
		t.Errorf("Swaps = %d, want 1", s.Swaps())
	}
	// Generation is stamped into per-query stats.
	res, err := e2.NewWorker().Lookup(f.trace.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Generation != 2 {
		t.Errorf("QueryStats.Generation = %d, want 2", res.Stats.Generation)
	}
}

// TestSwappableTotalsMonotonic: counters survive a swap — the retired
// engine's recovery work stays in Totals after a fresh engine (all-zero
// counters) takes over.
func TestSwappableTotalsMonotonic(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)
	e1 := f.engine(t, nil)
	e1.cfg.Device.SetFaultModel(ssd.NewInjector(ssd.InjectorConfig{Seed: 5, ReadErrorProb: 0.05}))
	s := NewSwappable(e1)
	if _, err := Run(e1, f.trace.Queries[:300], 2); err != nil {
		t.Fatal(err)
	}
	before := s.Totals()
	if before.Retries == 0 || before.Lookups == 0 {
		t.Fatalf("fault run recorded no activity: %+v", before)
	}
	if _, err := s.Swap(f.engine(t, nil)); err != nil {
		t.Fatal(err)
	}
	after := s.Totals()
	if after != before {
		t.Errorf("Totals changed across swap with no traffic: %+v → %+v", before, after)
	}
	if s.ValidPerReadBefore() <= 0 {
		t.Errorf("ValidPerReadBefore = %v after swapping out a serving engine", s.ValidPerReadBefore())
	}
	if _, err := Run(s.Engine(), f.trace.Queries[:100], 2); err != nil {
		t.Fatal(err)
	}
	final := s.Totals()
	if final.Lookups != before.Lookups+100 {
		t.Errorf("Lookups = %d, want %d", final.Lookups, before.Lookups+100)
	}
	if final.Retries < before.Retries {
		t.Errorf("Retries dipped across swap: %d → %d", before.Retries, final.Retries)
	}
}

// TestValidPerReadNotCreditedUpFront: valid-per-read must reflect read
// outcomes, not plans — a faulty device cannot score better than a healthy
// one on the same trace. (The old accounting credited every planned page
// at planning time and never counted recovery reads, so fault runs
// *gained* valid-per-read.)
func TestValidPerReadNotCreditedUpFront(t *testing.T) {
	f := newFixture(t, placement.StrategyMaxEmbed, 0.4)

	clean := f.engine(t, nil)
	rClean, err := Run(clean, f.trace.Queries[:500], 2)
	if err != nil {
		t.Fatal(err)
	}

	faulty := f.engine(t, nil)
	faulty.cfg.Device.SetFaultModel(ssd.NewInjector(ssd.InjectorConfig{
		Seed: 5, ReadErrorProb: 0.05, TimeoutProb: 0.02, CorruptProb: 0.02,
	}))
	rFaulty, err := Run(faulty, f.trace.Queries[:500], 2)
	if err != nil {
		t.Fatal(err)
	}
	if rFaulty.Retries == 0 {
		t.Fatal("fault injection produced no recovery reads; test is vacuous")
	}
	if rFaulty.MeanValidPerRead > rClean.MeanValidPerRead {
		t.Errorf("faulty run valid/read %.3f exceeds fault-free %.3f",
			rFaulty.MeanValidPerRead, rClean.MeanValidPerRead)
	}
	// Every read — initial or recovery — contributes one histogram sample.
	if got, want := faulty.ValidPerRead.Count(), rFaulty.PagesRead+rFaulty.Retries; got != want {
		t.Errorf("ValidPerRead samples = %d, want PagesRead+Retries = %d", got, want)
	}
	if got, want := clean.ValidPerRead.Count(), rClean.PagesRead; got != want {
		t.Errorf("clean ValidPerRead samples = %d, want PagesRead = %d", got, want)
	}
}

// TestTimingOnlyMatchesStoreBacked: a timing-only engine must account the
// same useful bytes as a store-backed one over the same layout — the
// slot's 8-byte header is not embedding payload. Dimension 62 packs pages
// exactly (slot 256 B, capacity 16), so the derived payload size is exact.
func TestTimingOnlyMatchesStoreBacked(t *testing.T) {
	const dim = 62
	p := workload.Profile{
		Name: "t62", Items: 1200, Queries: 2000, MeanQueryLen: 16,
		Communities: 100, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 6,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	capacity := embedding.PageCapacity(4096, dim)
	if capacity*embedding.SlotSize(dim) != 4096 {
		t.Fatalf("dim %d does not pack pages exactly; pick another test dimension", dim)
	}
	lay, err := placement.Build(placement.StrategyMaxEmbed, g, placement.Options{
		Capacity: capacity, ReplicationRatio: 0.4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := embedding.NewSynthesizer(dim, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Build(lay, syn, 4096)
	if err != nil {
		t.Fatal(err)
	}

	run := func(mutate func(*Config)) RunResult {
		t.Helper()
		dev, err := ssd.NewDevice(ssd.P5800X)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Layout: lay, Device: dev, Pipeline: true}
		mutate(&cfg)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(e, tr.Queries[:800], 2)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	timing := run(func(*Config) {})
	backed := run(func(c *Config) { c.Store = st })

	if timing.PagesRead != backed.PagesRead || timing.UsefulKeys != backed.UsefulKeys {
		t.Fatalf("runs diverged: timing %d pages/%d keys, store %d pages/%d keys",
			timing.PagesRead, timing.UsefulKeys, backed.PagesRead, backed.UsefulKeys)
	}
	if timing.Utilization != backed.Utilization {
		t.Errorf("Utilization: timing-only %.6f, store-backed %.6f", timing.Utilization, backed.Utilization)
	}
	if timing.EffectiveBandwidth != backed.EffectiveBandwidth {
		t.Errorf("EffectiveBandwidth: timing-only %.1f, store-backed %.1f",
			timing.EffectiveBandwidth, backed.EffectiveBandwidth)
	}
}

// TestMaxRetriesZeroAndDefault: Retries(0) disables retries outright,
// a nil MaxRetries keeps the default budget, and negatives clamp to 0.
func TestMaxRetriesZeroAndDefault(t *testing.T) {
	f := newFixture(t, placement.StrategySHP, 0)
	if e := f.engine(t, nil); e.maxRetries != DefaultMaxRetries {
		t.Errorf("nil MaxRetries: budget %d, want DefaultMaxRetries %d", e.maxRetries, DefaultMaxRetries)
	}
	if e := f.engine(t, func(c *Config) { c.MaxRetries = Retries(0) }); e.maxRetries != 0 {
		t.Errorf("Retries(0): budget %d, want 0", e.maxRetries)
	}
	if e := f.engine(t, func(c *Config) { c.MaxRetries = Retries(-3) }); e.maxRetries != 0 {
		t.Errorf("Retries(-3): budget %d, want 0", e.maxRetries)
	}
	if e := f.engine(t, func(c *Config) { c.MaxRetries = Retries(5) }); e.maxRetries != 5 {
		t.Errorf("Retries(5): budget %d, want 5", e.maxRetries)
	}
}
