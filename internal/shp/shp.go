// Package shp implements a Social Hash Partitioner (SHP) in the style of
// Kabiljo et al. (VLDB'17), the hypergraph partitioning algorithm Bandana
// uses to co-locate co-appearing embeddings on SSD pages and the base of
// MaxEmbed's offline phase (§2.2, §5).
//
// Following the original, partitioning is recursive bisection: each
// subproblem splits its vertices into two balanced sides, refined by
// bulk-synchronous iterations in which every vertex computes the gain of
// switching sides (how many more hyperedge co-members it would join) and
// the two sides exchange their highest-gain movers pairwise, so balance is
// preserved by construction. Per-edge side counts are maintained
// incrementally, making one refinement iteration O(pins). The original runs
// on Hadoop (§7.2); this is a faithful single-process re-implementation.
package shp

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"maxembed/internal/hypergraph"
)

// Options configures a partitioning run. The zero value is not valid;
// Capacity (or NumBuckets) must be set.
type Options struct {
	// Capacity is the maximum vertices per bucket (d: embeddings per SSD
	// page). If zero it is derived as ceil(N/NumBuckets).
	Capacity int
	// NumBuckets is the number of buckets. If zero it is derived as
	// ceil(N/Capacity).
	NumBuckets int
	// MaxIters bounds refinement iterations per bisection level.
	// Default 12.
	MaxIters int
	// Seed drives the initial random assignment. The run is deterministic
	// for a fixed (graph, options) pair.
	Seed int64
	// Parallelism is the number of goroutines used for the gain-
	// computation phase of each refinement iteration (the original SHP is
	// a map-reduce program, §7.2 of the paper). Zero uses GOMAXPROCS; 1
	// runs serially. Results are identical at any parallelism level.
	Parallelism int
}

func (o Options) withDefaults(n int) (Options, error) {
	if o.Capacity <= 0 && o.NumBuckets <= 0 {
		return o, fmt.Errorf("shp: Capacity or NumBuckets must be positive")
	}
	if o.NumBuckets <= 0 {
		o.NumBuckets = (n + o.Capacity - 1) / o.Capacity
	}
	if o.NumBuckets <= 0 { // n == 0
		o.NumBuckets = 1
	}
	if o.Capacity <= 0 {
		o.Capacity = (n + o.NumBuckets - 1) / o.NumBuckets
	}
	if o.NumBuckets*o.Capacity < n {
		return o, fmt.Errorf("shp: %d buckets × capacity %d cannot hold %d vertices",
			o.NumBuckets, o.Capacity, n)
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 12
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o, nil
}

// Result reports the outcome of a partitioning run.
type Result struct {
	// Assign maps each vertex to its bucket in [0, NumBuckets).
	Assign []int32
	// NumBuckets is the bucket count used.
	NumBuckets int
	// Capacity is the per-bucket capacity used.
	Capacity int
	// Iterations is the total number of refinement iterations executed
	// across all bisection subproblems.
	Iterations int
	// Moves is the total number of vertex side-switches applied.
	Moves int
	// InitialConnectivity and FinalConnectivity are Σλ(e) before and
	// after partitioning — the total page reads the trace would cost
	// under the initial random and the final placement respectively.
	InitialConnectivity int64
	FinalConnectivity   int64
}

// Partition partitions g per opts.
func Partition(g *hypergraph.Graph, opts Options) (*Result, error) {
	n := g.NumVertices()
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	res := &Result{
		NumBuckets: opts.NumBuckets,
		Capacity:   opts.Capacity,
	}

	// Random starting order; the pre-refinement assignment (sequential
	// fill of the shuffled order) is the "random balanced" reference for
	// InitialConnectivity.
	verts := make([]hypergraph.Vertex, n)
	for i, v := range rng.Perm(n) {
		verts[i] = hypergraph.Vertex(v)
	}
	assign := make([]int32, n)
	if n > 0 {
		perBucket := (n + opts.NumBuckets - 1) / opts.NumBuckets
		if perBucket > opts.Capacity {
			perBucket = opts.Capacity
		}
		for i, v := range verts {
			assign[v] = int32(i / perBucket)
		}
		res.InitialConnectivity = g.TotalConnectivity(assign)
	}

	b := &bisector{
		g:        g,
		capacity: opts.Capacity,
		maxIters: opts.MaxIters,
		parallel: opts.Parallelism,
		assign:   assign,
		res:      res,
		cnt:      [2][]int32{make([]int32, g.NumEdges()), make([]int32, g.NumEdges())},
		stamp:    make([]int32, g.NumEdges()),
		side:     make([]int8, n),
	}
	b.split(verts, 0, int32(opts.NumBuckets))

	res.Assign = assign
	res.FinalConnectivity = g.TotalConnectivity(assign)
	return res, nil
}

// bisector carries the shared scratch state of the recursive bisection.
type bisector struct {
	g        *hypergraph.Graph
	capacity int
	maxIters int
	parallel int
	assign   []int32
	res      *Result

	cnt   [2][]int32 // per-edge member count on each side, current subproblem
	stamp []int32    // epoch an edge's counts were last reset
	epoch int32
	side  []int8 // per-vertex side within the current subproblem

	edges  []hypergraph.EdgeID // edges touching the current subproblem
	movers [2][]mover          // per-side positive-gain vertices
}

type mover struct {
	v    hypergraph.Vertex
	gain int32
}

// split assigns buckets [bLo, bHi) to verts. Invariant: len(verts) ≤
// (bHi−bLo) × capacity.
func (b *bisector) split(verts []hypergraph.Vertex, bLo, bHi int32) {
	nBuckets := bHi - bLo
	if nBuckets <= 1 || len(verts) == 0 {
		for _, v := range verts {
			b.assign[v] = bLo
		}
		return
	}
	bl := (nBuckets + 1) / 2
	br := nBuckets - bl

	// Target a proportional split, clamped so each side fits its buckets.
	nl := int(int64(len(verts)) * int64(bl) / int64(nBuckets))
	if max := int(bl) * b.capacity; nl > max {
		nl = max
	}
	if min := len(verts) - int(br)*b.capacity; nl < min {
		nl = min
	}

	b.refine(verts, nl, int(bl)*b.capacity, int(br)*b.capacity)

	// Partition the slice by side, preserving relative order for
	// determinism.
	left := make([]hypergraph.Vertex, 0, nl)
	right := make([]hypergraph.Vertex, 0, len(verts)-nl)
	for _, v := range verts {
		if b.side[v] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	b.split(left, bLo, bLo+bl)
	b.split(right, bLo+bl, bHi)
}

// refine splits verts into two sides (initially the first nl on side 0)
// and iteratively swaps the highest-gain movers between sides.
func (b *bisector) refine(verts []hypergraph.Vertex, nl, capL, capR int) {
	g := b.g
	// New epoch: lazily reset the edge counters we will touch.
	b.epoch++
	b.edges = b.edges[:0]
	sizes := [2]int{}
	for i, v := range verts {
		s := int8(0)
		if i >= nl {
			s = 1
		}
		b.side[v] = s
		sizes[s]++
	}
	for _, v := range verts {
		s := b.side[v]
		for _, e := range g.IncidentEdges(v) {
			if b.stamp[e] != b.epoch {
				b.stamp[e] = b.epoch
				b.cnt[0][e] = 0
				b.cnt[1][e] = 0
				b.edges = append(b.edges, e)
			}
			b.cnt[s][e]++
		}
	}
	if len(b.edges) == 0 {
		return
	}

	for iter := 0; iter < b.maxIters; iter++ {
		b.res.Iterations++
		b.movers[0] = b.movers[0][:0]
		b.movers[1] = b.movers[1][:0]
		b.collectMovers(verts)
		for s := 0; s < 2; s++ {
			m := b.movers[s]
			sort.Slice(m, func(i, j int) bool {
				if m[i].gain != m[j].gain {
					return m[i].gain > m[j].gain
				}
				return m[i].v < m[j].v
			})
		}
		// Swap matched pairs; then drain leftovers while capacity allows.
		k := len(b.movers[0])
		if len(b.movers[1]) < k {
			k = len(b.movers[1])
		}
		moves := 0
		for i := 0; i < k; i++ {
			b.flip(b.movers[0][i].v)
			b.flip(b.movers[1][i].v)
			moves += 2
		}
		for _, m := range b.movers[0][k:] {
			if sizes[1]+1 > capR {
				break
			}
			b.flip(m.v)
			sizes[0]--
			sizes[1]++
			moves++
		}
		for _, m := range b.movers[1][k:] {
			if sizes[0]+1 > capL {
				break
			}
			b.flip(m.v)
			sizes[1]--
			sizes[0]++
			moves++
		}
		b.res.Moves += moves
		if moves == 0 {
			break
		}
	}
}

// collectMovers fills b.movers with every vertex whose gain from switching
// sides is positive. The gain pass only reads shared state, so it fans out
// across goroutines (the "map" side of SHP's map-reduce formulation);
// results are merged in chunk order and later sorted by (gain, vertex), so
// the outcome is independent of scheduling.
func (b *bisector) collectMovers(verts []hypergraph.Vertex) {
	g := b.g
	gainOf := func(v hypergraph.Vertex) int32 {
		s := b.side[v]
		var gain int32
		for _, e := range g.IncidentEdges(v) {
			// Switching sides joins cnt[other] co-members and leaves
			// cnt[same]−1 behind.
			gain += b.cnt[1-s][e] - b.cnt[s][e] + 1
		}
		return gain
	}

	const minParallelWork = 1 << 14
	workers := b.parallel
	if workers > len(verts)/minParallelWork {
		workers = len(verts) / minParallelWork
	}
	if workers <= 1 {
		for _, v := range verts {
			if gain := gainOf(v); gain > 0 {
				b.movers[b.side[v]] = append(b.movers[b.side[v]], mover{v, gain})
			}
		}
		return
	}

	chunk := (len(verts) + workers - 1) / workers
	type part struct{ movers [2][]mover }
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(verts) {
			hi = len(verts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, v := range verts[lo:hi] {
				if gain := gainOf(v); gain > 0 {
					s := b.side[v]
					parts[w].movers[s] = append(parts[w].movers[s], mover{v, gain})
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range parts {
		b.movers[0] = append(b.movers[0], parts[w].movers[0]...)
		b.movers[1] = append(b.movers[1], parts[w].movers[1]...)
	}
}

// flip moves v to the other side, updating the edge counters.
func (b *bisector) flip(v hypergraph.Vertex) {
	s := b.side[v]
	for _, e := range b.g.IncidentEdges(v) {
		b.cnt[s][e]--
		b.cnt[1-s][e]++
	}
	b.side[v] = 1 - s
}
