package shp

import (
	"math/rand"
	"reflect"
	"testing"

	"maxembed/internal/hypergraph"
	"maxembed/internal/workload"
)

func buildGraph(t *testing.T, n int, queries [][]hypergraph.Vertex) *hypergraph.Graph {
	t.Helper()
	g, err := hypergraph.FromQueries(n, queries)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkBalanced asserts every vertex is assigned a valid bucket and no
// bucket exceeds capacity.
func checkBalanced(t *testing.T, res *Result, n int) {
	t.Helper()
	if len(res.Assign) != n {
		t.Fatalf("Assign len = %d, want %d", len(res.Assign), n)
	}
	sizes := make([]int, res.NumBuckets)
	for v, b := range res.Assign {
		if b < 0 || int(b) >= res.NumBuckets {
			t.Fatalf("vertex %d assigned invalid bucket %d", v, b)
		}
		sizes[b]++
	}
	for b, s := range sizes {
		if s > res.Capacity {
			t.Fatalf("bucket %d holds %d > capacity %d", b, s, res.Capacity)
		}
	}
}

func TestPartitionSmallClusters(t *testing.T) {
	// Two obvious communities of 4 vertices each; capacity 4 should
	// recover them exactly (connectivity 1 per edge).
	queries := [][]hypergraph.Vertex{
		{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 2}, {1, 3},
		{4, 5, 6, 7}, {4, 5, 6, 7}, {4, 6}, {5, 7},
	}
	g := buildGraph(t, 8, queries)
	res, err := Partition(g, Options{Capacity: 4, Seed: 1, MaxIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, res, 8)
	if res.FinalConnectivity != int64(len(queries)) {
		t.Errorf("FinalConnectivity = %d, want %d (perfect recovery)",
			res.FinalConnectivity, len(queries))
	}
}

func TestPartitionImprovesConnectivity(t *testing.T) {
	p := workload.Profile{
		Name: "t", Items: 2000, Queries: 3000, MeanQueryLen: 8,
		Communities: 100, CommunityAffinity: 0.85, ZipfS: 1.2, Seed: 9,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Options{Capacity: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, res, tr.NumItems)
	if res.FinalConnectivity >= res.InitialConnectivity {
		t.Errorf("no improvement: initial %d, final %d",
			res.InitialConnectivity, res.FinalConnectivity)
	}
	// The refinement should beat random by a solid margin on a strongly
	// clustered workload.
	if float64(res.FinalConnectivity) > 0.9*float64(res.InitialConnectivity) {
		t.Errorf("improvement below 10%%: initial %d, final %d",
			res.InitialConnectivity, res.FinalConnectivity)
	}
	// And beat the vanilla (sequential) placement, which is Bandana's
	// baseline comparison.
	vanilla := make([]int32, tr.NumItems)
	for v := range vanilla {
		vanilla[v] = int32(v / 16)
	}
	if res.FinalConnectivity >= g.TotalConnectivity(vanilla) {
		t.Errorf("SHP (%d) did not beat vanilla (%d)",
			res.FinalConnectivity, g.TotalConnectivity(vanilla))
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := buildGraph(t, 100, randomQueries(100, 200, 5, 17))
	a, err := Partition(g, Options{Capacity: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{Capacity: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Error("same seed produced different partitions")
	}
}

func randomQueries(n, m, maxLen int, seed int64) [][]hypergraph.Vertex {
	rng := rand.New(rand.NewSource(seed))
	qs := make([][]hypergraph.Vertex, m)
	for i := range qs {
		l := 1 + rng.Intn(maxLen)
		q := make([]hypergraph.Vertex, l)
		for j := range q {
			q[j] = hypergraph.Vertex(rng.Intn(n))
		}
		qs[i] = q
	}
	return qs
}

func TestPartitionOptionValidation(t *testing.T) {
	g := buildGraph(t, 10, nil)
	if _, err := Partition(g, Options{}); err == nil {
		t.Error("Partition accepted empty options")
	}
	if _, err := Partition(g, Options{Capacity: 2, NumBuckets: 2}); err == nil {
		t.Error("Partition accepted buckets×capacity < n")
	}
}

func TestPartitionExplicitBuckets(t *testing.T) {
	// FPR-style finer partition: more buckets than ceil(N/d), derived
	// capacity.
	g := buildGraph(t, 20, randomQueries(20, 40, 4, 3))
	res, err := Partition(g, Options{NumBuckets: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBuckets != 10 || res.Capacity != 2 {
		t.Errorf("buckets=%d capacity=%d, want 10/2", res.NumBuckets, res.Capacity)
	}
	checkBalanced(t, res, 20)
}

func TestPartitionEdgeCases(t *testing.T) {
	// Empty graph.
	g := buildGraph(t, 0, nil)
	res, err := Partition(g, Options{Capacity: 4, Seed: 1})
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if len(res.Assign) != 0 {
		t.Errorf("Assign len = %d", len(res.Assign))
	}

	// Single vertex.
	g = buildGraph(t, 1, [][]hypergraph.Vertex{{0}})
	res, err = Partition(g, Options{Capacity: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, res, 1)

	// Capacity larger than N: one bucket.
	g = buildGraph(t, 5, [][]hypergraph.Vertex{{0, 1}, {2, 3, 4}})
	res, err = Partition(g, Options{Capacity: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBuckets != 1 {
		t.Errorf("NumBuckets = %d, want 1", res.NumBuckets)
	}
	if res.FinalConnectivity != 2 {
		t.Errorf("FinalConnectivity = %d, want 2", res.FinalConnectivity)
	}

	// Graph with no edges: any balanced assignment is optimal.
	g = buildGraph(t, 16, nil)
	res, err = Partition(g, Options{Capacity: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, res, 16)
	if res.FinalConnectivity != 0 {
		t.Errorf("FinalConnectivity = %d, want 0", res.FinalConnectivity)
	}
}

// Property: balance holds for random graphs and seeds, and refinement never
// worsens total connectivity.
func TestPartitionRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(300)
		cap := 1 + rng.Intn(16)
		g := buildGraph(t, n, randomQueries(n, rng.Intn(200), 6, rng.Int63()))
		res, err := Partition(g, Options{Capacity: cap, Seed: rng.Int63(), MaxIters: 6})
		if err != nil {
			t.Fatal(err)
		}
		checkBalanced(t, res, n)
		if res.FinalConnectivity > res.InitialConnectivity {
			t.Errorf("trial %d: connectivity worsened %d → %d",
				trial, res.InitialConnectivity, res.FinalConnectivity)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	p := workload.Profile{
		Name: "t", Items: 40_000, Queries: 20_000, MeanQueryLen: 10,
		Communities: 3_000, CommunityAffinity: 0.8, CommunitySpread: 0.5,
		ZipfS: 1.2, PopularityOffset: 0.05, Seed: 13,
	}
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Partition(g, Options{Capacity: 15, Seed: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Partition(g, Options{Capacity: 15, Seed: 3, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Assign, parallel.Assign) {
		t.Error("parallel partition differs from serial")
	}
	if serial.FinalConnectivity != parallel.FinalConnectivity {
		t.Errorf("connectivity differs: %d vs %d",
			serial.FinalConnectivity, parallel.FinalConnectivity)
	}
}

func BenchmarkPartition(b *testing.B) {
	p := workload.Criteo.Scaled(0.05)
	tr, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	g, err := hypergraph.FromQueries(tr.NumItems, tr.Queries)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(g, Options{Capacity: 15, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
