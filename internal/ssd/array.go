package ssd

import (
	"fmt"
	"sort"
)

// Backend is a read target the serving layer submits page reads to: a
// single Device or a striped Array of devices. The page space is global;
// ShardOf maps a global page onto its owning shard and the page's local
// address there, and GlobalOf inverts the mapping. A lone *Device is the
// degenerate one-shard backend, so code written against Backend serves
// single-device and multi-device deployments identically.
type Backend interface {
	// Profile returns the backend's aggregate performance profile: for an
	// Array, bandwidth/channels/queue depth sum over member devices while
	// per-read latency is that of one device.
	Profile() Profile
	// NumShards returns the number of independent devices.
	NumShards() int
	// ShardOf maps a global page to (owning shard, page address local to
	// that shard's device).
	ShardOf(page PageID) (shard int, local PageID)
	// GlobalOf inverts ShardOf.
	GlobalOf(shard int, local PageID) PageID
	// Shard returns the i-th member device.
	Shard(i int) *Device
	// Frontier returns the latest virtual time at which any resource of
	// any shard becomes idle.
	Frontier() int64
	// Stats returns activity summed across shards.
	Stats() Stats
	// Reset clears statistics and returns every shard to an idle state at
	// virtual time zero.
	Reset()
}

// Single-device Backend implementation: a *Device is a one-shard backend
// whose global and local page spaces coincide.

// NumShards implements Backend: a lone device is one shard.
func (d *Device) NumShards() int { return 1 }

// ShardOf implements Backend: every page lives on shard 0 at its own
// address.
func (d *Device) ShardOf(page PageID) (int, PageID) { return 0, page }

// GlobalOf implements Backend.
func (d *Device) GlobalOf(_ int, local PageID) PageID { return local }

// Shard implements Backend; the only valid index is 0.
func (d *Device) Shard(i int) *Device {
	if i != 0 {
		panic(fmt.Sprintf("ssd: Device.Shard(%d) on a single device", i))
	}
	return d
}

// Array is a striped multi-device backend: n independent Devices with page
// i living on device i mod n at local address i div n — RAID-0 at page
// granularity, the arrangement the paper's multi-drive evaluation uses
// (§7). Unlike the RAID0 profile helper (which folds n drives into one
// virtual device), every member device keeps its own channels, transfer
// bus, queue depths, and fault state, so cross-device parallelism, skewed
// per-shard load, and single-shard faults are modelled faithfully.
//
// The striping uses the LOCAL page for channel mapping (each Device hashes
// its local page onto its channels): mapping the global page would alias
// all of a shard's pages — which share a residue class mod n — onto a
// subset of its channels whenever the channel count shares a factor with n.
//
// An Array is safe for concurrent use; each member Device carries its own
// mutex, so queues on different shards never contend on a shared lock —
// exactly the hardware arbitration structure of separate drives.
type Array struct {
	devs []*Device
	prof Profile
}

// NewArray returns an array of n identical devices with the given profile.
// n == 1 yields a working (if pointless) one-shard array whose behaviour
// is identical to a bare Device.
func NewArray(prof Profile, n int) (*Array, error) {
	if n < 1 {
		return nil, fmt.Errorf("ssd: array needs at least 1 device, got %d", n)
	}
	devs := make([]*Device, n)
	for i := range devs {
		d, err := NewDevice(prof)
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	return NewArrayOf(devs)
}

// NewArrayOf assembles an array from pre-built devices (e.g. devices armed
// with per-shard fault models). All members must share a page size; the
// aggregate profile takes its latency from the first device and sums
// bandwidth, channels, and queue depth.
func NewArrayOf(devs []*Device) (*Array, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("ssd: array needs at least 1 device")
	}
	base := devs[0].Profile()
	if len(devs) == 1 {
		return &Array{devs: devs, prof: base}, nil
	}
	agg := base
	agg.Name = fmt.Sprintf("Array-%dx%s", len(devs), base.Name)
	for _, d := range devs[1:] {
		p := d.Profile()
		if p.PageSize != base.PageSize {
			return nil, fmt.Errorf("ssd: array page sizes differ: %d vs %d", p.PageSize, base.PageSize)
		}
		agg.Bandwidth += p.Bandwidth
		agg.Channels += p.Channels
		agg.QueueDepth += p.QueueDepth
		agg.WriteBandwidth += p.writeBandwidth()
	}
	return &Array{devs: devs, prof: agg}, nil
}

// Profile implements Backend.
func (a *Array) Profile() Profile { return a.prof }

// NumShards implements Backend.
func (a *Array) NumShards() int { return len(a.devs) }

// ShardOf implements Backend: page p lives on device p mod n at local
// address p div n.
func (a *Array) ShardOf(page PageID) (int, PageID) {
	n := PageID(len(a.devs))
	return int(page % n), page / n
}

// GlobalOf implements Backend.
func (a *Array) GlobalOf(shard int, local PageID) PageID {
	return local*PageID(len(a.devs)) + PageID(shard)
}

// Shard implements Backend.
func (a *Array) Shard(i int) *Device { return a.devs[i] }

// Frontier implements Backend: the maximum frontier over member devices.
func (a *Array) Frontier() int64 {
	var f int64
	for _, d := range a.devs {
		if df := d.Frontier(); df > f {
			f = df
		}
	}
	return f
}

// Stats implements Backend: activity summed across shards.
func (a *Array) Stats() Stats {
	var s Stats
	for _, d := range a.devs {
		ds := d.Stats()
		s.Reads += ds.Reads
		s.BytesRead += ds.BytesRead
		s.BusyNS += ds.BusyNS
		s.Errors += ds.Errors
		s.Timeouts += ds.Timeouts
		s.Corruptions += ds.Corruptions
		s.InjectedLatencyNS += ds.InjectedLatencyNS
		s.Writes += ds.Writes
		s.BytesWritten += ds.BytesWritten
	}
	return s
}

// ShardStats returns each member device's statistics, indexed by shard.
func (a *Array) ShardStats() []Stats {
	out := make([]Stats, len(a.devs))
	for i, d := range a.devs {
		out[i] = d.Stats()
	}
	return out
}

// Reset implements Backend.
func (a *Array) Reset() {
	for _, d := range a.devs {
		d.Reset()
	}
}

// SetFaultModel installs (or clears, with nil) a fault model on every
// shard. Each shard judges reads against its own read sequence, so the
// schedule stays deterministic per shard regardless of cross-shard
// interleaving.
func (a *Array) SetFaultModel(m FaultModel) {
	for _, d := range a.devs {
		d.SetFaultModel(m)
	}
}

// SetShardFaultModel installs (or clears, with nil) a fault model on a
// single shard — the lever for single-drive failure scenarios.
func (a *Array) SetShardFaultModel(shard int, m FaultModel) {
	a.devs[shard].SetFaultModel(m)
}

// MultiQueue is the per-worker set of per-shard queue pairs over a
// Backend: one SPDK-style Queue per member device, addressed by global
// page. Submission routes each page to its owning shard's queue (local
// address), and Drain reaps completions across all shards, translating
// pages back to the global space — so the virtual clock reflects genuine
// parallel submission on independent devices rather than a single merged
// queue.
//
// Like Queue, a MultiQueue is not safe for concurrent use; each worker
// owns one. For a one-shard backend it delegates to the single underlying
// Queue, making its behaviour (issue times, completion order, stats)
// bit-identical to driving that Queue directly.
type MultiQueue struct {
	be     Backend
	qs     []*Queue
	high   []int // per-shard outstanding-commands high-water mark
	merged []Completion
}

// NewMultiQueue returns a queue set bound to every shard of the backend,
// each with its device profile's queue depth.
func NewMultiQueue(be Backend) *MultiQueue {
	n := be.NumShards()
	m := &MultiQueue{
		be:   be,
		qs:   make([]*Queue, n),
		high: make([]int, n),
	}
	for i := 0; i < n; i++ {
		m.qs[i] = NewQueue(be.Shard(i))
	}
	return m
}

// NumShards returns the number of per-shard queues.
func (m *MultiQueue) NumShards() int { return len(m.qs) }

// Submit issues an asynchronous read of the global page at virtual time
// nowNS on the owning shard's queue and returns the issue time (which
// exceeds nowNS only when that shard's queue was full).
func (m *MultiQueue) Submit(page PageID, nowNS int64) int64 {
	shard, local := m.be.ShardOf(page)
	issue := m.qs[shard].Submit(local, nowNS)
	if n := m.qs[shard].InFlight(); n > m.high[shard] {
		m.high[shard] = n
	}
	return issue
}

// ShardOutstanding returns the number of commands in flight on one shard's
// queue at nowNS — the load signal selection tie-breaking steers by.
func (m *MultiQueue) ShardOutstanding(shard int, nowNS int64) int {
	return m.qs[shard].Outstanding(nowNS)
}

// Outstanding returns the commands in flight across all shards at nowNS.
func (m *MultiQueue) Outstanding(nowNS int64) int {
	total := 0
	for _, q := range m.qs {
		total += q.Outstanding(nowNS)
	}
	return total
}

// HighWater returns the highest number of simultaneously outstanding
// commands observed on the shard's queue since creation.
func (m *MultiQueue) HighWater(shard int) int { return m.high[shard] }

// Drain waits (virtually) for every command submitted since the last Drain
// to complete — on every shard — and returns the resulting virtual time (at
// least nowNS) with all completions, pages translated back to the global
// space, ordered by completion time (ties by page for determinism). The
// returned slice is reused by the next multi-shard Drain.
func (m *MultiQueue) Drain(nowNS int64) (doneNS int64, comps []Completion) {
	if len(m.qs) == 1 {
		// Single shard: global == local; hand back the queue's own
		// completions so the path is identical to a bare Queue.
		return m.qs[0].Drain(nowNS)
	}
	doneNS = nowNS
	m.merged = m.merged[:0]
	for shard, q := range m.qs {
		d, cs := q.Drain(nowNS)
		if d > doneNS {
			doneNS = d
		}
		for _, c := range cs {
			c.Page = m.be.GlobalOf(shard, c.Page)
			m.merged = append(m.merged, c)
		}
		// The completions were just copied into merged, so the drained
		// buffer can go back to the queue for its next submit cycle instead
		// of every drain growing a fresh pending slice on every shard.
		q.pending = cs[:0]
	}
	sort.Slice(m.merged, func(i, j int) bool {
		if m.merged[i].CompleteNS != m.merged[j].CompleteNS {
			return m.merged[i].CompleteNS < m.merged[j].CompleteNS
		}
		return m.merged[i].Page < m.merged[j].Page
	})
	return doneNS, m.merged
}
