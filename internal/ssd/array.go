package ssd

import (
	"fmt"
	"sort"
	"sync"
)

// Backend is a read target the serving layer submits page reads to: a
// single Device or a striped Array of devices. The page space is global;
// ShardOf maps a global page onto its owning shard and the page's local
// address there, and GlobalOf inverts the mapping. A lone *Device is the
// degenerate one-shard backend, so code written against Backend serves
// single-device and multi-device deployments identically.
type Backend interface {
	// Profile returns the backend's aggregate performance profile: for an
	// Array, bandwidth/channels/queue depth sum over member devices while
	// per-read latency is that of one device.
	Profile() Profile
	// NumShards returns the number of independent devices.
	NumShards() int
	// ShardOf maps a global page to (owning shard, page address local to
	// that shard's device).
	ShardOf(page PageID) (shard int, local PageID)
	// GlobalOf inverts ShardOf.
	GlobalOf(shard int, local PageID) PageID
	// Shard returns the i-th member device.
	Shard(i int) *Device
	// Frontier returns the latest virtual time at which any resource of
	// any shard becomes idle.
	Frontier() int64
	// Stats returns activity summed across shards.
	Stats() Stats
	// Reset clears statistics and returns every shard to an idle state at
	// virtual time zero.
	Reset()
}

// Single-device Backend implementation: a *Device is a one-shard backend
// whose global and local page spaces coincide.

// NumShards implements Backend: a lone device is one shard.
func (d *Device) NumShards() int { return 1 }

// ShardOf implements Backend: every page lives on shard 0 at its own
// address.
func (d *Device) ShardOf(page PageID) (int, PageID) { return 0, page }

// GlobalOf implements Backend.
func (d *Device) GlobalOf(_ int, local PageID) PageID { return local }

// Shard implements Backend; the only valid index is 0.
func (d *Device) Shard(i int) *Device {
	if i != 0 {
		panic(fmt.Sprintf("ssd: Device.Shard(%d) on a single device", i))
	}
	return d
}

// Array is a striped multi-device backend: n independent Devices with page
// i living on device i mod n at local address i div n — RAID-0 at page
// granularity, the arrangement the paper's multi-drive evaluation uses
// (§7). Unlike the RAID0 profile helper (which folds n drives into one
// virtual device), every member device keeps its own channels, transfer
// bus, queue depths, and fault state, so cross-device parallelism, skewed
// per-shard load, and single-shard faults are modelled faithfully.
//
// The striping uses the LOCAL page for channel mapping (each Device hashes
// its local page onto its channels): mapping the global page would alias
// all of a shard's pages — which share a residue class mod n — onto a
// subset of its channels whenever the channel count shares a factor with n.
//
// An Array is safe for concurrent use; each member Device carries its own
// mutex, so queues on different shards never contend on a shared lock —
// exactly the hardware arbitration structure of separate drives.
type Array struct {
	devs   []*Device
	prof   Profile
	health *HealthTracker

	// Tier structure derived at construction: shards grouped by profile,
	// groups ranked fastest-first by read latency (see deriveTiers). A
	// homogeneous array is one tier.
	tiers  []TierInfo
	tierOf []int

	spareMu sync.Mutex
	spare   *Device // optional hot spare a rebuild streams onto
}

// NewArray returns an array of n identical devices with the given profile.
// n == 1 yields a working (if pointless) one-shard array whose behaviour
// is identical to a bare Device.
func NewArray(prof Profile, n int) (*Array, error) {
	if n < 1 {
		return nil, &ArrayConfigError{
			Reason: "no-devices", Shard: -1,
			Detail: fmt.Sprintf("array needs at least 1 device, got %d", n),
		}
	}
	devs := make([]*Device, n)
	for i := range devs {
		d, err := NewDevice(prof)
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	return NewArrayOf(devs)
}

// NewArrayOf assembles an array from pre-built devices (e.g. devices armed
// with per-shard fault models). Profiles may differ per member — that is
// how tiered arrays are built (see NewTieredArray) — but all members must
// share a page size; violations return an *ArrayConfigError. The aggregate
// profile takes its latency from the first device and sums bandwidth,
// channels, and queue depth. Tier structure (shards grouped by profile,
// ranked fastest-first) is derived here, so a SwapShard-rebuilt array stays
// tier-correct without extra bookkeeping.
func NewArrayOf(devs []*Device) (*Array, error) {
	if len(devs) == 0 {
		return nil, &ArrayConfigError{Reason: "no-devices", Shard: -1, Detail: "array needs at least 1 device"}
	}
	base := devs[0].Profile()
	if len(devs) == 1 {
		a := &Array{devs: devs, prof: base}
		a.tiers, a.tierOf = deriveTiers(devs)
		a.initHealth(HealthConfig{})
		return a, nil
	}
	agg := base
	for i, d := range devs[1:] {
		p := d.Profile()
		if p.PageSize != base.PageSize {
			return nil, &ArrayConfigError{
				Reason: "page-size-mismatch", Shard: i + 1,
				Detail: fmt.Sprintf("page size %d (%s) differs from shard 0's %d (%s)",
					p.PageSize, p.Name, base.PageSize, base.Name),
			}
		}
		agg.Bandwidth += p.Bandwidth
		agg.Channels += p.Channels
		agg.QueueDepth += p.QueueDepth
		agg.WriteBandwidth += p.writeBandwidth()
	}
	a := &Array{devs: devs, prof: agg}
	a.tiers, a.tierOf = deriveTiers(devs)
	if len(a.tiers) == 1 {
		a.prof.Name = fmt.Sprintf("Array-%dx%s", len(devs), base.Name)
	} else {
		a.prof.Name = tieredName(a.tiers)
		// A mixed array's per-read latency is not one number; report the
		// fastest class's (tier 0) as the aggregate's, matching how the
		// aggregate is used (headline profile, not per-read simulation).
		a.prof.ReadLatency = a.tiers[0].Profile.ReadLatency
	}
	a.initHealth(HealthConfig{})
	return a, nil
}

// initHealth (re)builds the array's health tracker with cfg and taps every
// member device's read path into its shard's window. Devices report to the
// tracker of the array that wired them most recently, so after a SwapShard
// the surviving members feed the replacement array and the old one goes
// stale — by design, since the old stripe must not be served anymore.
func (a *Array) initHealth(cfg HealthConfig) {
	a.health = newHealthTracker(len(a.devs), cfg)
	for i, d := range a.devs {
		i := i
		d.setReadObserver(func(faulted bool) { a.health.observe(i, faulted) })
	}
}

// ConfigureHealth replaces the health tracker with one using cfg (for
// tighter windows in tests or deployments); accumulated health history is
// discarded and every shard restarts healthy.
func (a *Array) ConfigureHealth(cfg HealthConfig) { a.initHealth(cfg) }

// Profile implements Backend.
func (a *Array) Profile() Profile { return a.prof }

// NumShards implements Backend.
func (a *Array) NumShards() int { return len(a.devs) }

// ShardOf implements Backend: page p lives on device p mod n at local
// address p div n.
func (a *Array) ShardOf(page PageID) (int, PageID) {
	n := PageID(len(a.devs))
	return int(page % n), page / n
}

// GlobalOf implements Backend.
func (a *Array) GlobalOf(shard int, local PageID) PageID {
	return local*PageID(len(a.devs)) + PageID(shard)
}

// Shard implements Backend.
func (a *Array) Shard(i int) *Device { return a.devs[i] }

// Frontier implements Backend: the maximum frontier over member devices.
func (a *Array) Frontier() int64 {
	var f int64
	for _, d := range a.devs {
		if df := d.Frontier(); df > f {
			f = df
		}
	}
	return f
}

// Stats implements Backend: activity summed across shards.
func (a *Array) Stats() Stats {
	var s Stats
	for _, d := range a.devs {
		ds := d.Stats()
		s.Reads += ds.Reads
		s.BytesRead += ds.BytesRead
		s.BusyNS += ds.BusyNS
		s.Errors += ds.Errors
		s.Timeouts += ds.Timeouts
		s.Corruptions += ds.Corruptions
		s.InjectedLatencyNS += ds.InjectedLatencyNS
		s.Writes += ds.Writes
		s.BytesWritten += ds.BytesWritten
	}
	return s
}

// ShardStats returns each member device's statistics, indexed by shard.
func (a *Array) ShardStats() []Stats {
	out := make([]Stats, len(a.devs))
	for i, d := range a.devs {
		out[i] = d.Stats()
	}
	return out
}

// Reset implements Backend.
func (a *Array) Reset() {
	for _, d := range a.devs {
		d.Reset()
	}
}

// SetFaultModel installs (or clears, with nil) a fault model on every
// shard. Each shard judges reads against its own read sequence, so the
// schedule stays deterministic per shard regardless of cross-shard
// interleaving.
func (a *Array) SetFaultModel(m FaultModel) {
	for _, d := range a.devs {
		d.SetFaultModel(m)
	}
}

// SetShardFaultModel installs (or clears, with nil) a fault model on a
// single shard — the lever for single-drive failure scenarios.
func (a *Array) SetShardFaultModel(shard int, m FaultModel) {
	a.devs[shard].SetFaultModel(m)
}

// ShardState implements HealthReporter.
func (a *Array) ShardState(i int) ShardState {
	return ShardState(a.health.shards[i].state.Load())
}

// ShardHealth implements HealthReporter.
func (a *Array) ShardHealth(i int) ShardHealthInfo { return a.health.Info(i) }

// ShardHealths returns every shard's health snapshot, indexed by shard.
func (a *Array) ShardHealths() []ShardHealthInfo {
	out := make([]ShardHealthInfo, len(a.devs))
	for i := range out {
		out[i] = a.health.Info(i)
	}
	return out
}

// LiveShards returns how many shards are currently serving reads.
func (a *Array) LiveShards() int {
	n := 0
	for i := range a.devs {
		if a.ShardState(i).Live() {
			n++
		}
	}
	return n
}

// FailShard declares shard i failed regardless of its window — the chaos /
// operator hook. The OnFail callback fires as for an automatic failure.
func (a *Array) FailShard(i int) { a.health.setState(i, ShardFailed) }

// MarkRebuilding transitions shard i to rebuilding (a rebuilder claiming
// the shard). Returns false when the shard was already rebuilding, so two
// rebuilders cannot both claim it.
func (a *Array) MarkRebuilding(i int) bool {
	h := &a.health.shards[i]
	if !h.state.CompareAndSwap(int32(ShardFailed), int32(ShardRebuilding)) &&
		!h.state.CompareAndSwap(int32(ShardHealthy), int32(ShardRebuilding)) &&
		!h.state.CompareAndSwap(int32(ShardSuspect), int32(ShardRebuilding)) {
		return false
	}
	h.transitions.Add(1)
	return true
}

// MarkHealthy returns shard i to service with a cleared fault window (so
// faults from before the repair don't instantly re-fail it).
func (a *Array) MarkHealthy(i int) {
	a.health.shards[i].resetWindow()
	a.health.setState(i, ShardHealthy)
}

// NoteLatent adds n latent (at-rest corruption) errors to shard i's
// account; the scrubber calls this for every bad slot it finds.
func (a *Array) NoteLatent(i int, n int64) { a.health.shards[i].latent.Add(n) }

// OnFail registers a hook invoked on its own goroutine whenever a shard
// transitions into ShardFailed — the attachment point for an automatic
// rebuilder. At most one hook; nil clears it.
func (a *Array) OnFail(fn func(shard int)) { a.health.OnFail(fn) }

// AttachSpare installs a hot spare the rebuilder may stream a failed
// shard onto. At most one spare; its page size must match the stripe's.
func (a *Array) AttachSpare(d *Device) error {
	if d == nil {
		return fmt.Errorf("ssd: nil spare")
	}
	if d.Profile().PageSize != a.prof.PageSize {
		return fmt.Errorf("ssd: spare page size %d differs from array's %d",
			d.Profile().PageSize, a.prof.PageSize)
	}
	a.spareMu.Lock()
	defer a.spareMu.Unlock()
	if a.spare != nil {
		return fmt.Errorf("ssd: spare already attached")
	}
	a.spare = d
	return nil
}

// Spare returns the attached hot spare, or nil.
func (a *Array) Spare() *Device {
	a.spareMu.Lock()
	defer a.spareMu.Unlock()
	return a.spare
}

// SwapShard returns a NEW array in which shard i is the replacement
// device and every other slot is the same *Device as in the receiver —
// surviving members keep their virtual-time frontiers, statistics, and
// fault models across the swap. Passing a nil replacement consumes the
// attached spare. The new array starts with fresh, all-healthy shard
// windows (the replacement has just been rebuilt; the survivors' read
// outcomes re-accumulate immediately since their observers are re-wired
// here) and inherits the OnFail hook; it has no spare. The receiver must
// not be used for reads afterwards.
func (a *Array) SwapShard(i int, replacement *Device) (*Array, error) {
	if i < 0 || i >= len(a.devs) {
		return nil, fmt.Errorf("ssd: SwapShard(%d) on a %d-shard array", i, len(a.devs))
	}
	if replacement == nil {
		a.spareMu.Lock()
		replacement = a.spare
		a.spare = nil
		a.spareMu.Unlock()
		if replacement == nil {
			return nil, fmt.Errorf("ssd: SwapShard(%d): no spare attached", i)
		}
	}
	devs := make([]*Device, len(a.devs))
	copy(devs, a.devs)
	devs[i] = replacement
	nb, err := NewArrayOf(devs)
	if err != nil {
		return nil, err
	}
	a.health.mu.Lock()
	fn := a.health.onFail
	a.health.mu.Unlock()
	nb.OnFail(fn)
	return nb, nil
}

// MultiQueue is the per-worker set of per-shard queue pairs over a
// Backend: one SPDK-style Queue per member device, addressed by global
// page. Submission routes each page to its owning shard's queue (local
// address), and Drain reaps completions across all shards, translating
// pages back to the global space — so the virtual clock reflects genuine
// parallel submission on independent devices rather than a single merged
// queue.
//
// Like Queue, a MultiQueue is not safe for concurrent use; each worker
// owns one. For a one-shard backend it delegates to the single underlying
// Queue, making its behaviour (issue times, completion order, stats)
// bit-identical to driving that Queue directly.
type MultiQueue struct {
	be     Backend
	qs     []*Queue
	high   []int // per-shard outstanding-commands high-water mark
	merged []Completion
}

// NewMultiQueue returns a queue set bound to every shard of the backend,
// each with its device profile's queue depth.
func NewMultiQueue(be Backend) *MultiQueue {
	n := be.NumShards()
	m := &MultiQueue{
		be:   be,
		qs:   make([]*Queue, n),
		high: make([]int, n),
	}
	for i := 0; i < n; i++ {
		m.qs[i] = NewQueue(be.Shard(i))
	}
	return m
}

// NumShards returns the number of per-shard queues.
func (m *MultiQueue) NumShards() int { return len(m.qs) }

// Submit issues an asynchronous read of the global page at virtual time
// nowNS on the owning shard's queue and returns the issue time (which
// exceeds nowNS only when that shard's queue was full).
func (m *MultiQueue) Submit(page PageID, nowNS int64) int64 {
	shard, local := m.be.ShardOf(page)
	issue := m.qs[shard].Submit(local, nowNS)
	if n := m.qs[shard].InFlight(); n > m.high[shard] {
		m.high[shard] = n
	}
	return issue
}

// ShardOutstanding returns the number of commands in flight on one shard's
// queue at nowNS — the load signal selection tie-breaking steers by.
func (m *MultiQueue) ShardOutstanding(shard int, nowNS int64) int {
	return m.qs[shard].Outstanding(nowNS)
}

// Outstanding returns the commands in flight across all shards at nowNS.
func (m *MultiQueue) Outstanding(nowNS int64) int {
	total := 0
	for _, q := range m.qs {
		total += q.Outstanding(nowNS)
	}
	return total
}

// HighWater returns the highest number of simultaneously outstanding
// commands observed on the shard's queue since creation.
func (m *MultiQueue) HighWater(shard int) int { return m.high[shard] }

// Drain waits (virtually) for every command submitted since the last Drain
// to complete — on every shard — and returns the resulting virtual time (at
// least nowNS) with all completions, pages translated back to the global
// space, ordered by completion time (ties by page for determinism). The
// returned slice is reused by the next multi-shard Drain.
func (m *MultiQueue) Drain(nowNS int64) (doneNS int64, comps []Completion) {
	if len(m.qs) == 1 {
		// Single shard: global == local; hand back the queue's own
		// completions so the path is identical to a bare Queue.
		return m.qs[0].Drain(nowNS)
	}
	doneNS = nowNS
	m.merged = m.merged[:0]
	for shard, q := range m.qs {
		d, cs := q.Drain(nowNS)
		if d > doneNS {
			doneNS = d
		}
		for _, c := range cs {
			c.Page = m.be.GlobalOf(shard, c.Page)
			m.merged = append(m.merged, c)
		}
		// The completions were just copied into merged, so the drained
		// buffer can go back to the queue for its next submit cycle instead
		// of every drain growing a fresh pending slice on every shard.
		q.pending = cs[:0]
	}
	sort.Slice(m.merged, func(i, j int) bool {
		if m.merged[i].CompleteNS != m.merged[j].CompleteNS {
			return m.merged[i].CompleteNS < m.merged[j].CompleteNS
		}
		return m.merged[i].Page < m.merged[j].Page
	})
	return doneNS, m.merged
}
