package ssd

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func mustArray(t *testing.T, p Profile, n int) *Array {
	t.Helper()
	a, err := NewArray(p, n)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	return a
}

func TestArrayValidation(t *testing.T) {
	if _, err := NewArray(testProfile(), 0); err == nil {
		t.Error("NewArray accepted n=0")
	}
	if _, err := NewArrayOf(nil); err == nil {
		t.Error("NewArrayOf accepted empty device list")
	}
	small := testProfile()
	small.PageSize = 512
	a := mustDevice(t, testProfile())
	b := mustDevice(t, small)
	if _, err := NewArrayOf([]*Device{a, b}); err == nil {
		t.Error("NewArrayOf accepted mismatched page sizes")
	}
}

func TestArrayAggregateProfile(t *testing.T) {
	base := testProfile()
	arr := mustArray(t, base, 4)
	p := arr.Profile()
	if p.Bandwidth != 4*base.Bandwidth {
		t.Errorf("Bandwidth = %v, want 4x base", p.Bandwidth)
	}
	if p.Channels != 4*base.Channels {
		t.Errorf("Channels = %d, want 4x base", p.Channels)
	}
	if p.QueueDepth != 4*base.QueueDepth {
		t.Errorf("QueueDepth = %d, want 4x base", p.QueueDepth)
	}
	if p.ReadLatency != base.ReadLatency {
		t.Errorf("ReadLatency changed: %v", p.ReadLatency)
	}
	if p.Name != "Array-4xtest" {
		t.Errorf("Name = %q", p.Name)
	}
	// A one-device array is just that device: the profile is untouched.
	if got := mustArray(t, base, 1).Profile(); got != base {
		t.Errorf("1-device array profile = %+v, want base", got)
	}
}

func TestArrayStripingRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		arr := mustArray(t, testProfile(), n)
		for p := PageID(0); p < 100; p++ {
			shard, local := arr.ShardOf(p)
			if want := int(p) % n; shard != want {
				t.Fatalf("n=%d ShardOf(%d) shard = %d, want %d", n, p, shard, want)
			}
			if want := p / PageID(n); local != want {
				t.Fatalf("n=%d ShardOf(%d) local = %d, want %d", n, p, local, want)
			}
			if back := arr.GlobalOf(shard, local); back != p {
				t.Fatalf("n=%d GlobalOf(ShardOf(%d)) = %d", n, p, back)
			}
		}
	}
}

// TestArrayOneShardMatchesDevice pins the N=1 degenerate case: a MultiQueue
// over a one-device array must behave bit-identically to a bare Queue over
// a bare Device — same issue times, same drain times, same completions in
// the same order, same device statistics.
func TestArrayOneShardMatchesDevice(t *testing.T) {
	prof := testProfile()
	dev := mustDevice(t, prof)
	arr := mustArray(t, prof, 1)
	q := NewQueue(dev)
	mq := NewMultiQueue(arr)

	rng := rand.New(rand.NewSource(11))
	now := int64(0)
	for round := 0; round < 20; round++ {
		for i := 0; i < 30; i++ {
			now += int64(rng.Intn(2000))
			page := PageID(rng.Intn(256))
			a := q.Submit(page, now)
			b := mq.Submit(page, now)
			if a != b {
				t.Fatalf("round %d: issue times diverge: %d vs %d", round, a, b)
			}
		}
		da, ca := q.Drain(now)
		db, cb := mq.Drain(now)
		if da != db {
			t.Fatalf("round %d: drain times diverge: %d vs %d", round, da, db)
		}
		if len(ca) != len(cb) {
			t.Fatalf("round %d: completion counts diverge: %d vs %d", round, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("round %d completion %d: %+v vs %+v", round, i, ca[i], cb[i])
			}
		}
		now = da
	}
	if ds, as := dev.Stats(), arr.Stats(); ds != as {
		t.Errorf("stats diverge: device %+v, array %+v", ds, as)
	}
}

// TestArrayChannelMappingUsesLocalPage pins the non-aliasing property: each
// member device hashes its LOCAL page onto channels. Sixteen pages of one
// shard of a 4-device array (global pages ≡ 0 mod 4) have local addresses
// 0..15, which land on 16 distinct channels; the drain time is exactly one
// read latency plus 16 serialized bus transfers. Mapping the global page
// instead would fold those pages onto 4 channels (gcd aliasing) and push
// the drain time out by several channel-serialization rounds.
func TestArrayChannelMappingUsesLocalPage(t *testing.T) {
	prof := testProfile()
	prof.Channels = 16
	prof.QueueDepth = 32
	arr := mustArray(t, prof, 4)
	mq := NewMultiQueue(arr)
	for i := 0; i < 16; i++ {
		mq.Submit(PageID(4*i), 0) // all shard 0, local pages 0..15
	}
	done, comps := mq.Drain(0)
	lat := int64(prof.ReadLatency)
	xfer := int64(prof.TransferTime())
	if want := lat + 16*xfer; done != want {
		t.Errorf("drain = %d ns, want %d (latency + 16 bus transfers; channel aliasing?)", done, want)
	}
	for _, c := range comps {
		if shard, _ := arr.ShardOf(c.Page); shard != 0 {
			t.Errorf("page %d drained from shard %d, want 0", c.Page, shard)
		}
	}
	// Only shard 0 did any work.
	ss := arr.ShardStats()
	if ss[0].Reads != 16 {
		t.Errorf("shard 0 reads = %d, want 16", ss[0].Reads)
	}
	for i := 1; i < 4; i++ {
		if ss[i].Reads != 0 {
			t.Errorf("idle shard %d has %d reads", i, ss[i].Reads)
		}
	}
}

// TestRAID0DivergesFromArrayOnSkew demonstrates why the RAID0 profile
// helper is only a coarse approximation. Under a skewed load that touches
// one residue class of pages, a real 2-device Array saturates a single
// member device while the other idles; the merged RAID0 profile wrongly
// lets the load spread over the doubled channel and bandwidth budget and
// finishes significantly earlier. Balanced loads agree; skewed loads do
// not — which is exactly what per-device queues exist to model.
func TestRAID0DivergesFromArrayOnSkew(t *testing.T) {
	prof := testProfile()
	const reads = 64

	arr := mustArray(t, prof, 2)
	mq := NewMultiQueue(arr)
	for i := 0; i < reads; i++ {
		mq.Submit(PageID(2*i), 0) // even pages: all on shard 0
	}
	arrDone, _ := mq.Drain(0)

	merged := mustDevice(t, RAID0(prof, 2))
	q := NewQueue(merged)
	for i := 0; i < reads; i++ {
		q.Submit(PageID(2*i), 0)
	}
	raidDone, _ := q.Drain(0)

	if arrDone <= raidDone {
		t.Fatalf("array (%d ns) not slower than merged RAID0 profile (%d ns) under skew", arrDone, raidDone)
	}
	if ratio := float64(arrDone) / float64(raidDone); ratio < 1.2 {
		t.Errorf("divergence ratio %.2f too small to demonstrate the approximation error", ratio)
	}
	// The array's time equals a single bare device taking the whole load:
	// skew means no cross-device parallelism at all.
	single := mustDevice(t, prof)
	sq := NewQueue(single)
	for i := 0; i < reads; i++ {
		sq.Submit(PageID(i), 0) // local addresses on shard 0 are 0..63
	}
	singleDone, _ := sq.Drain(0)
	if arrDone != singleDone {
		t.Errorf("skewed array drain = %d, want single-device %d", arrDone, singleDone)
	}
}

// TestArrayBalancedScaling checks the opposite regime: a balanced load over
// n devices drains in roughly 1/n the time of one device.
func TestArrayBalancedScaling(t *testing.T) {
	prof := testProfile()
	const reads = 256
	var base int64
	for _, n := range []int{1, 2, 4} {
		arr := mustArray(t, prof, n)
		mq := NewMultiQueue(arr)
		for i := 0; i < reads; i++ {
			mq.Submit(PageID(i), 0)
		}
		done, comps := mq.Drain(0)
		if len(comps) != reads {
			t.Fatalf("n=%d: %d completions, want %d", n, len(comps), reads)
		}
		if n == 1 {
			base = done
			continue
		}
		speedup := float64(base) / float64(done)
		if speedup < 0.8*float64(n) {
			t.Errorf("n=%d: speedup %.2fx, want ≥ %.2fx", n, speedup, 0.8*float64(n))
		}
	}
}

// failAllModel fails every read unconditionally.
type failAllModel struct{}

func (failAllModel) Judge(int64, PageID) Fault { return Fault{Err: ErrReadFailed} }

func TestArrayShardFaultIsolation(t *testing.T) {
	arr := mustArray(t, testProfile(), 2)
	arr.SetShardFaultModel(0, failAllModel{})
	mq := NewMultiQueue(arr)
	for p := PageID(0); p < 16; p++ {
		mq.Submit(p, 0)
	}
	_, comps := mq.Drain(0)
	if len(comps) != 16 {
		t.Fatalf("completions = %d, want 16", len(comps))
	}
	for _, c := range comps {
		onFaulty := c.Page%2 == 0
		if onFaulty && !errors.Is(c.Err, ErrReadFailed) {
			t.Errorf("page %d on faulty shard: err = %v, want ErrReadFailed", c.Page, c.Err)
		}
		if !onFaulty && c.Err != nil {
			t.Errorf("page %d on healthy shard failed: %v", c.Page, c.Err)
		}
	}
	ss := arr.ShardStats()
	if ss[0].Errors != 8 {
		t.Errorf("faulty shard errors = %d, want 8", ss[0].Errors)
	}
	if ss[1].Errors != 0 {
		t.Errorf("healthy shard errors = %d, want 0", ss[1].Errors)
	}
	if got := arr.Stats().Errors; got != 8 {
		t.Errorf("aggregate errors = %d, want 8", got)
	}
	// Clearing the model restores the shard.
	arr.SetShardFaultModel(0, nil)
	arr.Reset()
	mq = NewMultiQueue(arr)
	mq.Submit(0, 0)
	if _, comps := mq.Drain(0); comps[0].Err != nil {
		t.Errorf("read failed after clearing shard fault model: %v", comps[0].Err)
	}
}

func TestMultiQueueShardAccounting(t *testing.T) {
	arr := mustArray(t, testProfile(), 2)
	mq := NewMultiQueue(arr)
	if mq.NumShards() != 2 {
		t.Fatalf("NumShards = %d", mq.NumShards())
	}
	// Three reads on shard 0, one on shard 1, all at t=0.
	for _, p := range []PageID{0, 2, 4, 1} {
		mq.Submit(p, 0)
	}
	if got := mq.ShardOutstanding(0, 0); got != 3 {
		t.Errorf("shard 0 outstanding = %d, want 3", got)
	}
	if got := mq.ShardOutstanding(1, 0); got != 1 {
		t.Errorf("shard 1 outstanding = %d, want 1", got)
	}
	if got := mq.Outstanding(0); got != 4 {
		t.Errorf("total outstanding = %d, want 4", got)
	}
	done, comps := mq.Drain(0)
	if len(comps) != 4 {
		t.Fatalf("completions = %d, want 4", len(comps))
	}
	for i := 1; i < len(comps); i++ {
		prev, cur := comps[i-1], comps[i]
		if cur.CompleteNS < prev.CompleteNS ||
			(cur.CompleteNS == prev.CompleteNS && cur.Page < prev.Page) {
			t.Errorf("completions not ordered: %+v before %+v", prev, cur)
		}
	}
	if mq.Outstanding(done) != 0 {
		t.Error("outstanding after drain")
	}
	if mq.HighWater(0) != 3 || mq.HighWater(1) != 1 {
		t.Errorf("high-water = (%d, %d), want (3, 1)", mq.HighWater(0), mq.HighWater(1))
	}
	if ss := arr.ShardStats(); ss[0].Reads != 3 || ss[1].Reads != 1 {
		t.Errorf("shard reads = (%d, %d), want (3, 1)", ss[0].Reads, ss[1].Reads)
	}
}

func TestArrayFrontierAndReset(t *testing.T) {
	arr := mustArray(t, testProfile(), 2)
	mq := NewMultiQueue(arr)
	mq.Submit(0, 0)
	mq.Submit(1, 0)
	done, _ := mq.Drain(0)
	if f := arr.Frontier(); f < done {
		t.Errorf("frontier %d below drain time %d", f, done)
	}
	arr.Reset()
	if f := arr.Frontier(); f != 0 {
		t.Errorf("frontier after reset = %d", f)
	}
	if s := arr.Stats(); s.Reads != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	// Post-reset timing restarts from idle, like a bare device.
	mq = NewMultiQueue(arr)
	mq.Submit(0, 0)
	done, _ = mq.Drain(0)
	if want := int64(6 * time.Microsecond); done != want {
		t.Errorf("post-reset completion = %d, want %d", done, want)
	}
}
