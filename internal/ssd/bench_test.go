package ssd

import "testing"

func BenchmarkDeviceRead(b *testing.B) {
	d, err := NewDevice(P5800X)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		done, _ := d.Read(PageID(i%4096), now)
		now = done
	}
}

func BenchmarkQueueSubmitDrain(b *testing.B) {
	d, err := NewDevice(P5800X)
	if err != nil {
		b.Fatal(err)
	}
	q := NewQueue(d)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			q.Submit(PageID((i*8+j)%4096), now)
		}
		now, _ = q.Drain(now)
	}
}
