package ssd

import "testing"

func BenchmarkDeviceRead(b *testing.B) {
	d, err := NewDevice(P5800X)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		done, _ := d.Read(PageID(i%4096), now)
		now = done
	}
}

// BenchmarkQueueSaturated is the pipelined-worker pattern: a long burst of
// submissions with Outstanding polls and no intermediate Drain. Before the
// in-flight min-heap, Outstanding and Submit scanned every completion since
// the last Drain, so this pattern degraded quadratically with burst length.
func BenchmarkQueueSaturated(b *testing.B) {
	d, err := NewDevice(P5800X)
	if err != nil {
		b.Fatal(err)
	}
	q := NewQueue(d)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	const burst = 4096
	for i := 0; i < b.N; i++ {
		issue := q.Submit(PageID(i%8192), now)
		if issue > now {
			now = issue
		}
		q.Outstanding(now)
		if (i+1)%burst == 0 {
			now, _ = q.Drain(now)
		}
	}
}

func BenchmarkQueueSubmitDrain(b *testing.B) {
	d, err := NewDevice(P5800X)
	if err != nil {
		b.Fatal(err)
	}
	q := NewQueue(d)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			q.Submit(PageID((i*8+j)%4096), now)
		}
		now, _ = q.Drain(now)
	}
}
