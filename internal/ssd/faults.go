package ssd

import (
	"errors"
	"math"
	"time"
)

// Error taxonomy for injected (and, on real hardware, observed) read
// failures. The serving layer distinguishes them to pick a recovery
// strategy: failed and timed-out commands are retried — preferably against
// a replica page — while corruption is detected after the fact by the
// store's per-slot checksums.
var (
	// ErrReadFailed is returned (wrapped) for injected read failures: the
	// command completed with an error status.
	ErrReadFailed = errors.New("ssd: read failed")
	// ErrTimeout is returned (wrapped) for stuck commands: the command
	// occupied the device for the injector's Timeout before being aborted.
	ErrTimeout = errors.New("ssd: read timed out")
	// ErrCorrupt marks payload corruption. The device itself never returns
	// it — a corrupt read completes successfully with bad data — but the
	// taxonomy lives here so every fault class shares one vocabulary; the
	// store and serving layers wrap it when checksum verification fails.
	ErrCorrupt = errors.New("ssd: payload corrupt")
)

// Fault is the injected outcome of one device command.
type Fault struct {
	// Err is non-nil when the command fails (ErrReadFailed, ErrTimeout).
	Err error
	// ExtraLatencyNS is added to the command's device-internal latency:
	// a tail spike, a degraded channel, or the timeout of a stuck command.
	ExtraLatencyNS int64
	// Corrupt marks the payload as silently corrupted: the command
	// succeeds but the data delivered to the host is wrong. Detection is
	// the reader's job (store checksums).
	Corrupt bool
}

// FaultModel decides the outcome of every device read. Implementations
// must be deterministic functions of (n, page) and safe for concurrent
// use. A nil model injects nothing.
type FaultModel interface {
	// Judge returns the fault (if any) for the n-th read (1-based,
	// device-global submission order) of the given page.
	Judge(n int64, page PageID) Fault
}

// FaultInjector is the legacy boolean fault hook: it only distinguishes
// pass/fail. Retained for compatibility; new code should implement
// FaultModel. Implementations must be safe for concurrent use.
type FaultInjector interface {
	// Fail reports whether the n-th read (1-based, device-global order of
	// submission) of the given page should return an error.
	Fail(n int64, page PageID) bool
}

// FailEveryN fails every n-th read. Useful for exercising engine retry
// paths deterministically.
type FailEveryN int64

// Fail implements FaultInjector.
func (f FailEveryN) Fail(n int64, _ PageID) bool { return f > 0 && n%int64(f) == 0 }

// legacyModel adapts a FaultInjector to the FaultModel interface.
type legacyModel struct{ inj FaultInjector }

func (m legacyModel) Judge(n int64, page PageID) Fault {
	if m.inj.Fail(n, page) {
		return Fault{Err: ErrReadFailed}
	}
	return Fault{}
}

// InjectorConfig parameterizes the standard seeded injector. All
// probabilities are per read in [0, 1] and drawn independently; when
// several classes fire on one read the most severe wins
// (timeout > error > corruption > spike).
type InjectorConfig struct {
	// Seed makes the fault schedule deterministic: two injectors with the
	// same config produce identical schedules.
	Seed int64
	// ReadErrorProb is the probability a read completes with ErrReadFailed.
	ReadErrorProb float64
	// TimeoutProb is the probability a read becomes a stuck command: it
	// occupies the device for Timeout and then fails with ErrTimeout.
	TimeoutProb float64
	// Timeout is the stuck-command occupancy; zero defaults to 1ms.
	Timeout time.Duration
	// CorruptProb is the probability a read silently delivers a corrupted
	// payload (store/file-backed paths detect it via slot checksums).
	CorruptProb float64
	// SpikeProb is the probability of a latency spike on an otherwise
	// healthy read — the p99 tail of a real drive.
	SpikeProb float64
	// SpikeLatency is the extra latency of a spike; zero defaults to 20×
	// the P5800X read latency (100µs).
	SpikeLatency time.Duration
	// SlowChannels lists degraded device channels (page mod Channels):
	// every read landing on one is charged SlowLatency extra.
	SlowChannels []int
	// Channels is the device's channel count, needed to map pages onto
	// SlowChannels. Ignored when SlowChannels is empty.
	Channels int
	// SlowLatency is the extra latency of a slow-channel read; zero
	// defaults to SpikeLatency.
	SlowLatency time.Duration
}

// Injector is the standard deterministic fault injector: a seeded,
// stateless hash of the read sequence number decides each read's fate, so
// identical configurations produce identical fault schedules regardless of
// timing or concurrency. It is safe for concurrent use.
type Injector struct {
	cfg  InjectorConfig
	slow map[int]bool
}

// NewInjector returns an injector for the given configuration.
func NewInjector(cfg InjectorConfig) *Injector {
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Millisecond
	}
	if cfg.SpikeLatency <= 0 {
		cfg.SpikeLatency = 100 * time.Microsecond
	}
	if cfg.SlowLatency <= 0 {
		cfg.SlowLatency = cfg.SpikeLatency
	}
	inj := &Injector{cfg: cfg}
	if len(cfg.SlowChannels) > 0 && cfg.Channels > 0 {
		inj.slow = make(map[int]bool, len(cfg.SlowChannels))
		for _, ch := range cfg.SlowChannels {
			inj.slow[ch%cfg.Channels] = true
		}
	}
	return inj
}

// roll returns a uniform float64 in [0, 1) for the given read and fault
// class, derived from a splitmix64-style hash so the schedule is a pure
// function of (seed, n, class).
func (inj *Injector) roll(n int64, class uint64) float64 {
	x := uint64(inj.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9 + class*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Judge implements FaultModel.
func (inj *Injector) Judge(n int64, page PageID) Fault {
	c := inj.cfg
	switch {
	case c.TimeoutProb > 0 && inj.roll(n, 1) < c.TimeoutProb:
		return Fault{Err: ErrTimeout, ExtraLatencyNS: int64(c.Timeout)}
	case c.ReadErrorProb > 0 && inj.roll(n, 2) < c.ReadErrorProb:
		return Fault{Err: ErrReadFailed}
	}
	var f Fault
	if c.CorruptProb > 0 && inj.roll(n, 3) < c.CorruptProb {
		f.Corrupt = true
	}
	if c.SpikeProb > 0 && inj.roll(n, 4) < c.SpikeProb {
		f.ExtraLatencyNS += int64(c.SpikeLatency)
	}
	if inj.slow != nil && inj.slow[int(page)%c.Channels] {
		f.ExtraLatencyNS += int64(c.SlowLatency)
	}
	return f
}

// ExpectedFaultRate returns the per-read probability that this injector
// produces a failed or corrupt read (spikes excluded) — useful for sizing
// retry budgets in sweeps.
func (inj *Injector) ExpectedFaultRate() float64 {
	c := inj.cfg
	ok := (1 - c.TimeoutProb) * (1 - c.ReadErrorProb) * (1 - c.CorruptProb)
	return math.Min(1, math.Max(0, 1-ok))
}
