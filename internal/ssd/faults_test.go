package ssd

import (
	"errors"
	"testing"
	"time"
)

func judgeSeq(inj *Injector, n int) []Fault {
	out := make([]Fault, n)
	for i := range out {
		out[i] = inj.Judge(int64(i+1), PageID(i%512))
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := InjectorConfig{
		Seed:          7,
		ReadErrorProb: 0.02,
		TimeoutProb:   0.01,
		CorruptProb:   0.02,
		SpikeProb:     0.05,
	}
	a := judgeSeq(NewInjector(cfg), 5000)
	b := judgeSeq(NewInjector(cfg), 5000)
	for i := range a {
		if !errors.Is(a[i].Err, errOf(b[i])) || a[i].Corrupt != b[i].Corrupt ||
			a[i].ExtraLatencyNS != b[i].ExtraLatencyNS {
			t.Fatalf("read %d differs across identically-seeded injectors: %+v vs %+v", i+1, a[i], b[i])
		}
	}
	cfg.Seed = 8
	c := judgeSeq(NewInjector(cfg), 5000)
	same := true
	for i := range a {
		if a[i] != c[i] && (a[i].Err != nil) != (c[i].Err != nil) {
			same = false
			break
		}
		if (a[i].Err == nil) != (c[i].Err == nil) || a[i].Corrupt != c[i].Corrupt {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 5000-read fault schedule")
	}
}

func errOf(f Fault) error {
	if f.Err == nil {
		return nil
	}
	return f.Err
}

func TestInjectorRates(t *testing.T) {
	const n = 40000
	inj := NewInjector(InjectorConfig{Seed: 3, ReadErrorProb: 0.05, CorruptProb: 0.02})
	var errs, corrupt int
	for _, f := range judgeSeq(inj, n) {
		if f.Err != nil {
			errs++
		}
		if f.Corrupt {
			corrupt++
		}
	}
	if got := float64(errs) / n; got < 0.04 || got > 0.06 {
		t.Errorf("error rate %.4f far from configured 0.05", got)
	}
	if got := float64(corrupt) / n; got < 0.012 || got > 0.028 {
		t.Errorf("corruption rate %.4f far from configured 0.02", got)
	}
	if r := inj.ExpectedFaultRate(); r < 0.069 || r > 0.071 {
		t.Errorf("ExpectedFaultRate = %v, want ≈ 1-(0.95·0.98) ≈ 0.069", r)
	}
}

func TestInjectorPrecedence(t *testing.T) {
	// When every class fires, the stuck command wins and carries its
	// occupancy.
	inj := NewInjector(InjectorConfig{
		Seed: 1, TimeoutProb: 1, ReadErrorProb: 1, CorruptProb: 1, SpikeProb: 1,
	})
	f := inj.Judge(1, 0)
	if !errors.Is(f.Err, ErrTimeout) {
		t.Fatalf("Err = %v, want ErrTimeout", f.Err)
	}
	if f.ExtraLatencyNS != int64(time.Millisecond) {
		t.Errorf("timeout occupancy = %d, want default 1ms", f.ExtraLatencyNS)
	}
	// Error beats corruption and spikes.
	inj = NewInjector(InjectorConfig{Seed: 1, ReadErrorProb: 1, CorruptProb: 1})
	f = inj.Judge(1, 0)
	if !errors.Is(f.Err, ErrReadFailed) || f.Corrupt {
		t.Errorf("fault = %+v, want pure ErrReadFailed", f)
	}
}

func TestInjectorSlowChannel(t *testing.T) {
	slow := 50 * time.Microsecond
	inj := NewInjector(InjectorConfig{
		Seed: 1, SlowChannels: []int{3}, Channels: 16, SlowLatency: slow,
		SpikeLatency: time.Microsecond, // keeps SlowLatency from defaulting
	})
	if f := inj.Judge(1, 3); f.ExtraLatencyNS != int64(slow) {
		t.Errorf("page on slow channel charged %d, want %d", f.ExtraLatencyNS, int64(slow))
	}
	if f := inj.Judge(2, 19); f.ExtraLatencyNS != int64(slow) {
		t.Errorf("page 19 (channel 3) charged %d, want %d", f.ExtraLatencyNS, int64(slow))
	}
	if f := inj.Judge(3, 4); f.ExtraLatencyNS != 0 {
		t.Errorf("healthy channel charged %d extra", f.ExtraLatencyNS)
	}
}

func TestInjectorSpikeLatencyCharged(t *testing.T) {
	spike := 100 * time.Microsecond
	dev, err := NewDevice(P5800X)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultModel(NewInjector(InjectorConfig{Seed: 1, SpikeProb: 1, SpikeLatency: spike}))
	done, fault := dev.ReadDetailed(0, 0)
	if fault.Err != nil || fault.Corrupt {
		t.Fatalf("spike should not fail the read: %+v", fault)
	}
	base := int64(P5800X.ReadLatency) + int64(P5800X.TransferTime())
	if done < base+int64(spike) {
		t.Errorf("completion %d did not include the %d spike (base %d)", done, int64(spike), base)
	}
	if st := dev.Stats(); st.InjectedLatencyNS != int64(spike) {
		t.Errorf("InjectedLatencyNS = %d, want %d", st.InjectedLatencyNS, int64(spike))
	}
}

func TestDeviceTimeoutAccounting(t *testing.T) {
	timeout := 2 * time.Millisecond
	dev, err := NewDevice(P5800X)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultModel(NewInjector(InjectorConfig{Seed: 1, TimeoutProb: 1, Timeout: timeout}))
	done, fault := dev.ReadDetailed(7, 0)
	if !errors.Is(fault.Err, ErrTimeout) {
		t.Fatalf("Err = %v, want ErrTimeout", fault.Err)
	}
	if done < int64(timeout) {
		t.Errorf("stuck command completed at %d, before its %d occupancy", done, int64(timeout))
	}
	st := dev.Stats()
	if st.Errors != 1 || st.Timeouts != 1 {
		t.Errorf("Errors/Timeouts = %d/%d, want 1/1", st.Errors, st.Timeouts)
	}
	if st.Faults() != 1 {
		t.Errorf("Faults() = %d, want 1", st.Faults())
	}
}

func TestDeviceCorruptionAccounting(t *testing.T) {
	dev, err := NewDevice(P5800X)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultModel(NewInjector(InjectorConfig{Seed: 1, CorruptProb: 1}))
	_, fault := dev.ReadDetailed(0, 0)
	if fault.Err != nil {
		t.Fatalf("corrupt read must complete successfully, got %v", fault.Err)
	}
	if !fault.Corrupt {
		t.Fatal("Corrupt not set")
	}
	st := dev.Stats()
	if st.Corruptions != 1 || st.Errors != 0 {
		t.Errorf("Corruptions/Errors = %d/%d, want 1/0", st.Corruptions, st.Errors)
	}
	if st.Faults() != 1 {
		t.Errorf("Faults() = %d, want 1", st.Faults())
	}
}

func TestLegacyInjectorAdapter(t *testing.T) {
	dev, err := NewDevice(P5800X)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultInjector(FailEveryN(3))
	var now int64
	for i := 1; i <= 9; i++ {
		done, rerr := dev.Read(0, now)
		now = done
		if i%3 == 0 {
			if !errors.Is(rerr, ErrReadFailed) {
				t.Errorf("read %d: err = %v, want ErrReadFailed", i, rerr)
			}
		} else if rerr != nil {
			t.Errorf("read %d unexpectedly failed: %v", i, rerr)
		}
	}
	dev.SetFaultInjector(nil)
	if _, rerr := dev.Read(0, now); rerr != nil {
		t.Errorf("cleared injector still failing: %v", rerr)
	}
}

func TestQueueCompletionsCarryFaults(t *testing.T) {
	dev, err := NewDevice(P5800X)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetFaultModel(NewInjector(InjectorConfig{Seed: 1, ReadErrorProb: 0.5, CorruptProb: 0.5}))
	q := NewQueue(dev)
	for i := 0; i < 64; i++ {
		q.Submit(PageID(i), 0)
	}
	_, comps := q.Drain(0)
	var errs, corrupt int
	for _, c := range comps {
		if c.Err != nil {
			errs++
		}
		if c.Corrupt {
			corrupt++
		}
	}
	if errs == 0 || corrupt == 0 {
		t.Errorf("completions carried %d errors and %d corruptions; want both > 0", errs, corrupt)
	}
	st := dev.Stats()
	if int64(errs) != st.Errors || int64(corrupt) != st.Corruptions {
		t.Errorf("completion counts (%d, %d) disagree with device stats (%d, %d)",
			errs, corrupt, st.Errors, st.Corruptions)
	}
}
