package ssd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"maxembed/internal/store"
)

// FileBackend is a real-I/O Backend: page reads are served from serialized
// per-shard store files (O_DIRECT when the filesystem allows, buffered
// otherwise) by bounded per-shard executors — an io_uring submission/
// completion ring where the kernel interface is available, a goroutine
// pread(2) pool everywhere — with per-queue-pair submission rings and
// reference-counted completion buffers recycled through freelists sized to
// the queue depth. It mirrors MultiQueue's queue-pair semantics exactly,
// so Run/RunOpenLoop, /v1/stats, and the fault/health machinery drive real
// NVMe (or plain files) unchanged; latencies are measured, not simulated,
// and folded into the same per-shard Device accounting shells the
// simulator populates.
//
// Striping matches Array and store.Sharded: global page p lives in file
// p mod n at local index p div n.
//
// Virtual-time contract: each FileQueue anchors the worker's virtual clock
// to the wall clock at the first submit of a batch, so issue/completion
// stamps and Drain's returned time advance by measured elapsed time. The
// injected Clock keeps the package clockcheck-clean and lets tests pin
// time.
type FileBackend struct {
	files  []*store.FileStore
	shards []*Device // accounting shells: stats, fault counters, health taps
	prof   Profile
	health *HealthTracker
	execs  []fileExecutor
	hists  []latHist
	free   []chan *PageBuf

	now      func() time.Time
	epoch    time.Time
	frontier atomic.Int64

	numPages  int
	closeOnce sync.Once
}

// FileBackendConfig parameterizes NewFileBackend; the zero value works.
type FileBackendConfig struct {
	// Profile is the headline per-shard profile reported through Stats and
	// used for queue depth and freelist sizing. Zero value: P5800X geometry
	// at the files' page size. Latencies under this backend are measured,
	// so the profile's ReadLatency only labels reports.
	Profile Profile
	// PoolWorkers is the number of pread goroutines per shard in the
	// fallback executor (default 8, capped at the queue depth). io_uring
	// rings ignore it (one driver goroutine per shard).
	PoolWorkers int
	// ForcePread skips the io_uring probe — for A/B measurement and for
	// sandboxes where the probe itself is unwelcome.
	ForcePread bool
	// Clock injects the wall-clock source (nil: time.Now).
	Clock func() time.Time
}

// NewFileBackend assembles a backend over per-shard store files. The
// backend takes ownership of the files; Close releases them.
func NewFileBackend(files []*store.FileStore, cfg FileBackendConfig) (*FileBackend, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("ssd: file backend needs at least 1 shard file")
	}
	base := cfg.Profile
	if base == (Profile{}) {
		base = P5800X
	}
	base.PageSize = files[0].PageSize()
	if err := base.Validate(); err != nil {
		return nil, err
	}
	numPages := 0
	for i, f := range files {
		if f.PageSize() != base.PageSize {
			return nil, fmt.Errorf("ssd: shard %d page size %d differs from shard 0's %d",
				i, f.PageSize(), base.PageSize)
		}
		if f.Dim() != files[0].Dim() {
			return nil, fmt.Errorf("ssd: shard %d dim %d differs from shard 0's %d",
				i, f.Dim(), files[0].Dim())
		}
		numPages += f.NumPages()
	}
	// The files must form one contiguous stripe: shard i of n holds
	// ceil((numPages-i)/n) local pages, exactly like store.BuildSharded.
	n := len(files)
	for i, f := range files {
		if want := (numPages - i + n - 1) / n; f.NumPages() != want {
			return nil, fmt.Errorf("ssd: shard %d holds %d pages, want %d of a %d-page stripe",
				i, f.NumPages(), want, numPages)
		}
	}
	nw := cfg.Clock
	if nw == nil {
		nw = time.Now
	}
	workers := cfg.PoolWorkers
	if workers <= 0 {
		workers = 8
	}
	if workers > base.QueueDepth {
		workers = base.QueueDepth
	}

	b := &FileBackend{
		files:    files,
		shards:   make([]*Device, n),
		execs:    make([]fileExecutor, n),
		hists:    make([]latHist, n),
		free:     make([]chan *PageBuf, n),
		now:      nw,
		numPages: numPages,
	}
	b.epoch = nw()
	for i := range files {
		d, err := NewDevice(base)
		if err != nil {
			return nil, err
		}
		b.shards[i] = d
		b.free[i] = make(chan *PageBuf, base.QueueDepth)
	}
	for i := range files {
		if !cfg.ForcePread {
			if ex, ok := newRingExecutor(b, i, base.QueueDepth); ok {
				b.execs[i] = ex
				continue
			}
		}
		b.execs[i] = newPreadExec(b, i, workers, base.QueueDepth)
	}
	agg := base
	for i := 1; i < n; i++ {
		agg.Bandwidth += base.Bandwidth
		agg.Channels += base.Channels
		agg.QueueDepth += base.QueueDepth
		agg.WriteBandwidth += base.writeBandwidth()
	}
	mode := "buffered"
	if files[0].Direct() {
		mode = "direct"
	}
	agg.Name = fmt.Sprintf("file-%dx%s-%s-%s", n, base.Name, b.execs[0].kind(), mode)
	b.prof = agg
	b.health = newHealthTracker(n, HealthConfig{})
	for i, d := range b.shards {
		i := i
		d.setReadObserver(func(faulted bool) { b.health.observe(i, faulted) })
	}
	return b, nil
}

// wallNS returns the wall clock as nanoseconds since the backend's epoch.
func (b *FileBackend) wallNS() int64 { return b.now().Sub(b.epoch).Nanoseconds() }

// advanceFrontier CAS-maxes the backend frontier to t.
func (b *FileBackend) advanceFrontier(t int64) {
	for {
		cur := b.frontier.Load()
		if t <= cur || b.frontier.CompareAndSwap(cur, t) {
			return
		}
	}
}

// getBuf pulls a completion buffer from the shard's freelist, minting a
// fresh one when the list is dry (start-up, or a burst beyond the depth).
func (b *FileBackend) getBuf(shard int) *PageBuf {
	select {
	case buf := <-b.free[shard]:
		return buf
	default:
		return newPageBuf(b.files[shard].ReadBufSize(), b.free[shard])
	}
}

// ExecutorKind reports the read executor in use: "io_uring" or "pread".
func (b *FileBackend) ExecutorKind() string { return b.execs[0].kind() }

// Direct reports whether the shard files bypass the OS page cache.
func (b *FileBackend) Direct() bool { return b.files[0].Direct() }

// NumPages returns the global page count across shard files.
func (b *FileBackend) NumPages() int { return b.numPages }

// Close shuts down the executors and releases the shard files. The
// backend must be idle: no queue pair may have undrained submissions.
func (b *FileBackend) Close() error {
	var err error
	b.closeOnce.Do(func() {
		for _, e := range b.execs {
			e.close()
		}
		for _, f := range b.files {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// Profile implements Backend.
func (b *FileBackend) Profile() Profile { return b.prof }

// NumShards implements Backend.
func (b *FileBackend) NumShards() int { return len(b.files) }

// ShardOf implements Backend with Array's striping.
func (b *FileBackend) ShardOf(page PageID) (int, PageID) {
	n := PageID(len(b.files))
	return int(page % n), page / n
}

// GlobalOf implements Backend.
func (b *FileBackend) GlobalOf(shard int, local PageID) PageID {
	return local*PageID(len(b.files)) + PageID(shard)
}

// Shard implements Backend: the shard's accounting shell, carrying the
// measured statistics and health tap (not a simulation clock).
func (b *FileBackend) Shard(i int) *Device { return b.shards[i] }

// Frontier implements Backend: the latest virtual completion time any
// queue pair has drained.
func (b *FileBackend) Frontier() int64 { return b.frontier.Load() }

// Stats implements Backend: measured activity summed across shards.
func (b *FileBackend) Stats() Stats {
	var s Stats
	for _, d := range b.shards {
		ds := d.Stats()
		s.Reads += ds.Reads
		s.BytesRead += ds.BytesRead
		s.BusyNS += ds.BusyNS
		s.Errors += ds.Errors
		s.Timeouts += ds.Timeouts
		s.Corruptions += ds.Corruptions
		s.InjectedLatencyNS += ds.InjectedLatencyNS
		s.Writes += ds.Writes
		s.BytesWritten += ds.BytesWritten
	}
	return s
}

// ShardStats returns each shard's measured statistics.
func (b *FileBackend) ShardStats() []Stats {
	out := make([]Stats, len(b.shards))
	for i, d := range b.shards {
		out[i] = d.Stats()
	}
	return out
}

// Reset implements Backend: statistics, latency histograms, and the
// virtual frontier restart from zero.
func (b *FileBackend) Reset() {
	for _, d := range b.shards {
		d.Reset()
	}
	for i := range b.hists {
		b.hists[i].reset()
	}
	b.frontier.Store(0)
}

// NewQueuePair implements QueuePairProvider.
func (b *FileBackend) NewQueuePair() QueuePair {
	q := &FileQueue{
		fb:       b,
		inflight: make([]int, len(b.files)),
		high:     make([]int, len(b.files)),
	}
	q.inbox.cond.L = &q.inbox.mu
	return q
}

// ShardReadLatency implements ReadLatencyReporter.
func (b *FileBackend) ShardReadLatency(shard int) ReadLatencySnapshot {
	return b.hists[shard].snapshot()
}

// ConfigureHealth replaces the health tracker (see Array.ConfigureHealth).
func (b *FileBackend) ConfigureHealth(cfg HealthConfig) {
	b.health = newHealthTracker(len(b.shards), cfg)
	for i, d := range b.shards {
		i := i
		d.setReadObserver(func(faulted bool) { b.health.observe(i, faulted) })
	}
}

// ShardState implements HealthReporter.
func (b *FileBackend) ShardState(i int) ShardState {
	return ShardState(b.health.shards[i].state.Load())
}

// ShardHealth implements HealthReporter.
func (b *FileBackend) ShardHealth(i int) ShardHealthInfo { return b.health.Info(i) }

// ShardHealths returns every shard's health snapshot.
func (b *FileBackend) ShardHealths() []ShardHealthInfo {
	out := make([]ShardHealthInfo, len(b.shards))
	for i := range out {
		out[i] = b.health.Info(i)
	}
	return out
}

// LiveShards returns how many shards are currently serving reads.
func (b *FileBackend) LiveShards() int {
	n := 0
	for i := range b.shards {
		if b.ShardState(i).Live() {
			n++
		}
	}
	return n
}

// FailShard declares shard i failed (operator/chaos hook).
func (b *FileBackend) FailShard(i int) { b.health.setState(i, ShardFailed) }

// MarkHealthy returns shard i to service with a cleared fault window.
func (b *FileBackend) MarkHealthy(i int) {
	b.health.shards[i].resetWindow()
	b.health.setState(i, ShardHealthy)
}

// NoteLatent adds latent-error counts to shard i (see Array.NoteLatent).
func (b *FileBackend) NoteLatent(i int, n int64) { b.health.shards[i].latent.Add(n) }

// OnFail registers the shard-failure hook (see Array.OnFail).
func (b *FileBackend) OnFail(fn func(shard int)) { b.health.OnFail(fn) }

// ReadLatencySnapshot is one shard's measured read-latency histogram:
// per-bucket counts (the final bucket is unbounded), finite upper bounds
// in nanoseconds, and the running count/sum for mean latency.
type ReadLatencySnapshot struct {
	UpperNS []int64 // len latHistBuckets-1; bucket i counts reads < UpperNS[i]
	Counts  []int64 // len latHistBuckets; last bucket is +Inf
	Count   int64
	SumNS   int64
}

// ReadLatencyReporter is implemented by backends that measure per-shard
// read latency (the file backend); /metrics exports it as a histogram.
type ReadLatencyReporter interface {
	ShardReadLatency(shard int) ReadLatencySnapshot
}

// latHistBuckets spans 1 µs to ~16.8 s in ×2 steps plus an overflow.
const latHistBuckets = 25

// latHist is a lock-free log2 latency histogram.
type latHist struct {
	counts [latHistBuckets]atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

func (h *latHist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := 0
	for b < latHistBuckets-1 && ns >= 1000<<b {
		b++
	}
	h.counts[b].Add(1)
	h.sumNS.Add(ns)
	h.n.Add(1)
}

func (h *latHist) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sumNS.Store(0)
	h.n.Store(0)
}

func (h *latHist) snapshot() ReadLatencySnapshot {
	s := ReadLatencySnapshot{
		UpperNS: make([]int64, latHistBuckets-1),
		Counts:  make([]int64, latHistBuckets),
		Count:   h.n.Load(),
		SumNS:   h.sumNS.Load(),
	}
	for i := range s.UpperNS {
		s.UpperNS[i] = 1000 << i
	}
	for i := range s.Counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// fileReq is one read submitted to a shard executor.
type fileReq struct {
	global     PageID
	local      PageID
	buf        *PageBuf
	out        *compInbox
	submitWall int64
	submitVirt int64
}

// fileComp is one completed read on its way back to the submitting queue.
type fileComp struct {
	global       PageID
	buf          *PageBuf
	err          error
	submitVirt   int64
	completeWall int64
}

// fileExecutor issues a shard's reads: an io_uring ring or a pread pool.
type fileExecutor interface {
	// submit enqueues a read; it blocks while the submission ring is full
	// (the real-I/O analogue of Queue's virtual queue-full wait).
	submit(fileReq)
	kind() string
	close()
}

// compInbox is a queue pair's completion mailbox. Executors push from
// their goroutines; the owning worker's Drain blocks until every
// outstanding submission has arrived. Capacity is retained across
// batches, so steady-state push/take allocate nothing.
type compInbox struct {
	mu    sync.Mutex
	cond  sync.Cond
	comps []fileComp
}

func (in *compInbox) push(c fileComp) {
	in.mu.Lock()
	in.comps = append(in.comps, c)
	in.mu.Unlock()
	in.cond.Signal()
}

// take blocks until n completions are present, moves them into dst
// (reusing its capacity), and empties the inbox.
func (in *compInbox) take(n int, dst []fileComp) []fileComp {
	in.mu.Lock()
	for len(in.comps) < n {
		in.cond.Wait()
	}
	dst = append(dst[:0], in.comps...)
	in.comps = in.comps[:0]
	in.mu.Unlock()
	return dst
}

// preadExec is the portable executor: a bounded pool of goroutines each
// looping pread(2) (ReadAt) calls against the shard file. The request
// channel's capacity is the submission ring.
type preadExec struct {
	fb    *FileBackend
	shard int
	reqC  chan fileReq
	wg    sync.WaitGroup
}

func newPreadExec(fb *FileBackend, shard, workers, depth int) *preadExec {
	e := &preadExec{fb: fb, shard: shard, reqC: make(chan fileReq, depth)}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.run()
	}
	return e
}

func (e *preadExec) run() {
	defer e.wg.Done()
	fb := e.fb
	fs := fb.files[e.shard]
	shell := fb.shards[e.shard]
	hist := &fb.hists[e.shard]
	for req := range e.reqC {
		start := fb.wallNS()
		img, err := fs.ReadPageWindow(req.local, req.buf.data)
		end := fb.wallNS()
		req.buf.img = img
		shell.recordExternalRead(end-start, err, false)
		hist.observe(end - req.submitWall)
		req.out.push(fileComp{
			global:       req.global,
			buf:          req.buf,
			err:          err,
			submitVirt:   req.submitVirt,
			completeWall: end,
		})
	}
}

func (e *preadExec) submit(r fileReq) { e.reqC <- r }
func (e *preadExec) kind() string     { return "pread" }
func (e *preadExec) close() {
	close(e.reqC)
	e.wg.Wait()
}

// FileQueue is a queue pair over a FileBackend: per-shard submission into
// the shard executors, completion reaping through a private inbox. Like
// MultiQueue it is single-owner; unlike MultiQueue its times are measured.
// The worker's virtual clock is anchored to the wall clock at the first
// submit after a drain, so a batch's issue/completion stamps advance by
// real elapsed time.
type FileQueue struct {
	fb       *FileBackend
	inbox    compInbox
	pending  int
	inflight []int // per-shard submitted-not-drained
	high     []int
	merged   []Completion
	scratch  []fileComp

	anchorWall int64
	anchorVirt int64
}

// virtOf maps a wall timestamp onto the worker's virtual clock.
func (q *FileQueue) virtOf(wall int64) int64 {
	return q.anchorVirt + (wall - q.anchorWall)
}

// NumShards implements QueuePair.
func (q *FileQueue) NumShards() int { return len(q.inflight) }

// Submit implements QueuePair: it acquires a completion buffer from the
// shard's freelist and enqueues the read on the shard's executor,
// blocking while the submission ring is full — real backpressure in place
// of the simulator's virtual queue-full wait.
func (q *FileQueue) Submit(page PageID, nowNS int64) int64 {
	shard, local := q.fb.ShardOf(page)
	if q.pending == 0 {
		q.anchorWall = q.fb.wallNS()
		q.anchorVirt = nowNS
	}
	buf := q.fb.getBuf(shard)
	buf.rc.Store(1)
	buf.img = nil
	submitWall := q.fb.wallNS()
	issue := q.virtOf(submitWall)
	if issue < nowNS {
		issue = nowNS
	}
	q.fb.execs[shard].submit(fileReq{
		global:     page,
		local:      local,
		buf:        buf,
		out:        &q.inbox,
		submitWall: submitWall,
		submitVirt: issue,
	})
	q.pending++
	q.inflight[shard]++
	if q.inflight[shard] > q.high[shard] {
		q.high[shard] = q.inflight[shard]
	}
	return issue
}

// ShardOutstanding implements QueuePair: submitted-not-drained commands on
// the shard. Real completions arrive asynchronously, so this is the upper
// bound the load-balancing signals want (work this queue has in the
// shard's ring).
func (q *FileQueue) ShardOutstanding(shard int, _ int64) int { return q.inflight[shard] }

// Outstanding implements QueuePair.
func (q *FileQueue) Outstanding(_ int64) int { return q.pending }

// HighWater implements QueuePair.
func (q *FileQueue) HighWater(shard int) int { return q.high[shard] }

// Drain implements QueuePair: it blocks until every submitted read has
// completed, then hands back completions carrying their page buffers —
// exactly one reference each, owned by the caller — ordered by
// (completion time, page). Failed reads release their buffer here and
// surface with a nil Buf. The slice is reused by the next Drain.
func (q *FileQueue) Drain(nowNS int64) (doneNS int64, comps []Completion) {
	doneNS = nowNS
	q.merged = q.merged[:0]
	if q.pending == 0 {
		return doneNS, q.merged
	}
	q.scratch = q.inbox.take(q.pending, q.scratch)
	for i := range q.scratch {
		fc := &q.scratch[i]
		c := Completion{
			Page:       fc.global,
			SubmitNS:   fc.submitVirt,
			CompleteNS: q.virtOf(fc.completeWall),
			Err:        fc.err,
			Buf:        fc.buf,
		}
		if c.CompleteNS <= c.SubmitNS {
			// Clock granularity can collapse a fast read to zero width;
			// keep completion strictly after submission for monotone stats.
			c.CompleteNS = c.SubmitNS + 1
		}
		if c.Err != nil && c.Buf != nil {
			c.Buf.Release()
			c.Buf = nil
		}
		if c.CompleteNS > doneNS {
			doneNS = c.CompleteNS
		}
		q.merged = append(q.merged, c)
		fc.buf = nil
	}
	q.scratch = q.scratch[:0]
	q.pending = 0
	for i := range q.inflight {
		q.inflight[i] = 0
	}
	// Insertion sort instead of sort.Slice: completion batches are small
	// and the hot path must not allocate (sort.Slice's closure does).
	m := q.merged
	for i := 1; i < len(m); i++ {
		c := m[i]
		j := i - 1
		for j >= 0 && (m[j].CompleteNS > c.CompleteNS ||
			(m[j].CompleteNS == c.CompleteNS && m[j].Page > c.Page)) {
			m[j+1] = m[j]
			j--
		}
		m[j+1] = c
	}
	q.fb.advanceFrontier(doneNS)
	return doneNS, q.merged
}
