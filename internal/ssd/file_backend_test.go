package ssd

import (
	"os"
	"path/filepath"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
	"maxembed/internal/store"
)

// buildBackendFiles writes a sharded store to disk and opens it per shard.
func buildBackendFiles(t *testing.T, shards int) ([]*store.FileStore, *store.Sharded, *layout.Layout) {
	t.Helper()
	syn, err := embedding.NewSynthesizer(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Vanilla(200, embedding.PageCapacity(4096, 16))
	sh, err := store.BuildSharded(lay, syn, 4096, shards)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files := make([]*store.FileStore, shards)
	for i := 0; i < shards; i++ {
		path := filepath.Join(dir, "shard.bin")
		path = filepath.Join(dir, filepath.Base(path)+"."+string(rune('0'+i)))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Shard(i).WriteTo(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		fs, _, err := store.OpenFileAuto(path)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = fs
	}
	return files, sh, lay
}

func newTestFileBackend(t *testing.T, shards int, cfg FileBackendConfig) (*FileBackend, *store.Sharded, *layout.Layout) {
	t.Helper()
	files, sh, lay := buildBackendFiles(t, shards)
	fb, err := NewFileBackend(files, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fb.Close() })
	return fb, sh, lay
}

func readAllPages(t *testing.T, fb *FileBackend, sh *store.Sharded) {
	t.Helper()
	qp := fb.NewQueuePair()
	numPages := fb.NumPages()
	img := make([]byte, sh.PageSize())
	const batch = 16
	for base := 0; base < numPages; base += batch {
		now := fb.Frontier()
		n := 0
		for p := base; p < numPages && p < base+batch; p++ {
			issue := qp.Submit(PageID(p), now)
			if issue < now {
				t.Fatalf("page %d issued at %d, before now %d", p, issue, now)
			}
			n++
		}
		done, comps := qp.Drain(now)
		if done < now {
			t.Fatalf("drain returned %d, before now %d", done, now)
		}
		if len(comps) != n {
			t.Fatalf("drained %d completions, submitted %d", len(comps), n)
		}
		last := int64(-1)
		for _, c := range comps {
			if c.Err != nil {
				t.Fatalf("page %d: %v", c.Page, c.Err)
			}
			if c.Buf == nil {
				t.Fatalf("page %d: nil completion buffer", c.Page)
			}
			if c.CompleteNS < last {
				t.Fatal("completions not ordered by completion time")
			}
			last = c.CompleteNS
			if c.CompleteNS <= c.SubmitNS {
				t.Fatalf("page %d: completion %d not after submit %d", c.Page, c.CompleteNS, c.SubmitNS)
			}
			if err := sh.ReadPage(c.Page, img); err != nil {
				t.Fatal(err)
			}
			got := c.Buf.Bytes()
			if len(got) != len(img) {
				t.Fatalf("page %d: %d bytes, want %d", c.Page, len(got), len(img))
			}
			for i := range img {
				if got[i] != img[i] {
					t.Fatalf("page %d byte %d differs from in-memory store", c.Page, i)
				}
			}
			c.Buf.Release()
		}
	}
}

func TestFileBackendServesPages(t *testing.T) {
	for _, shards := range []int{1, 3} {
		fb, sh, _ := newTestFileBackend(t, shards, FileBackendConfig{ForcePread: true})
		readAllPages(t, fb, sh)
		st := fb.Stats()
		if st.Reads != int64(fb.NumPages()) {
			t.Errorf("shards=%d: %d reads recorded, want %d", shards, st.Reads, fb.NumPages())
		}
		if st.Errors != 0 {
			t.Errorf("shards=%d: %d errors", shards, st.Errors)
		}
		if fb.Frontier() == 0 {
			t.Errorf("shards=%d: frontier did not advance", shards)
		}
		if fb.LiveShards() != shards {
			t.Errorf("shards=%d: %d live shards", shards, fb.LiveShards())
		}
		lat := fb.ShardReadLatency(0)
		if lat.Count == 0 || lat.SumNS < 0 {
			t.Errorf("shards=%d: empty latency histogram", shards)
		}
	}
}

func TestFileBackendURingMatchesPread(t *testing.T) {
	fb, sh, _ := newTestFileBackend(t, 2, FileBackendConfig{})
	if fb.ExecutorKind() != "io_uring" {
		t.Skipf("io_uring unavailable here (executor %s)", fb.ExecutorKind())
	}
	readAllPages(t, fb, sh)
	if st := fb.Stats(); st.Errors != 0 || st.Reads != int64(fb.NumPages()) {
		t.Errorf("io_uring stats: %+v", st)
	}
}

func TestFileBackendStriping(t *testing.T) {
	fb, _, _ := newTestFileBackend(t, 3, FileBackendConfig{ForcePread: true})
	for p := PageID(0); int(p) < fb.NumPages(); p++ {
		shard, local := fb.ShardOf(p)
		if got := fb.GlobalOf(shard, local); got != p {
			t.Fatalf("GlobalOf(ShardOf(%d)) = %d", p, got)
		}
		if shard != int(p)%3 || local != p/3 {
			t.Fatalf("page %d routed to shard %d local %d", p, shard, local)
		}
	}
}

func TestFileBackendBufferRecycling(t *testing.T) {
	fb, _, _ := newTestFileBackend(t, 1, FileBackendConfig{ForcePread: true})
	qp := fb.NewQueuePair()
	seen := map[*PageBuf]bool{}
	// Many more batches than the queue depth's worth of buffers: the
	// working set must stay bounded by recycling.
	for round := 0; round < 50; round++ {
		now := fb.Frontier()
		for p := 0; p < 4; p++ {
			qp.Submit(PageID(p), now)
		}
		_, comps := qp.Drain(now)
		for _, c := range comps {
			seen[c.Buf] = true
			c.Buf.Release()
		}
	}
	if len(seen) > 8 {
		t.Errorf("%d distinct buffers for a working set of 4", len(seen))
	}
}

func TestFileBackendRetainKeepsBufferAlive(t *testing.T) {
	fb, sh, _ := newTestFileBackend(t, 1, FileBackendConfig{ForcePread: true})
	qp := fb.NewQueuePair()
	now := fb.Frontier()
	qp.Submit(0, now)
	_, comps := qp.Drain(now)
	buf := comps[0].Buf
	buf.Retain()
	buf.Release() // drainer's reference
	want, _ := sh.Shard(0).Page(0)
	got := buf.Bytes()
	if got == nil {
		t.Fatal("retained buffer lost its image")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d differs under outstanding retain", i)
		}
	}
	buf.Release()
	if buf.Bytes() != nil {
		t.Error("fully released buffer still holds an image")
	}
}

func TestFileBackendReset(t *testing.T) {
	fb, sh, _ := newTestFileBackend(t, 2, FileBackendConfig{ForcePread: true})
	readAllPages(t, fb, sh)
	fb.Reset()
	if st := fb.Stats(); st.Reads != 0 {
		t.Errorf("stats survived reset: %+v", st)
	}
	if fb.Frontier() != 0 {
		t.Error("frontier survived reset")
	}
	if lat := fb.ShardReadLatency(0); lat.Count != 0 {
		t.Error("latency histogram survived reset")
	}
	// The backend must still serve after a reset.
	readAllPages(t, fb, sh)
}

func TestFileBackendConfigErrors(t *testing.T) {
	if _, err := NewFileBackend(nil, FileBackendConfig{}); err == nil {
		t.Error("empty file set accepted")
	}
	files, _, _ := buildBackendFiles(t, 3)
	// Shard 0 must hold the largest local page count; swapping the first
	// and last shard of an uneven stripe breaks the shape.
	if files[0].NumPages() > files[2].NumPages() {
		swapped := []*store.FileStore{files[2], files[1], files[0]}
		if _, err := NewFileBackend(swapped, FileBackendConfig{ForcePread: true}); err == nil {
			t.Error("misordered stripe accepted")
		}
	}
	fb, err := NewFileBackend(files, FileBackendConfig{ForcePread: true})
	if err != nil {
		t.Fatal(err)
	}
	fb.Close()
}
