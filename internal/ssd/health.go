package ssd

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Per-shard health: every member device of an Array carries a rolling
// fault window and a sticky state machine
//
//	healthy → suspect → failed → rebuilding → healthy
//
// fed by every read outcome the device produces. The serving layer
// consults the state (through the HealthReporter interface) to steer
// selection and recovery away from a sick drive *before* burning a read
// on it, instead of rediscovering the failure per-read; the rebuilder
// drives the failed → rebuilding → healthy half after streaming the
// shard onto a hot spare. Healthy ↔ suspect transitions are automatic
// (the window clears or fills); failed is entered automatically when the
// window saturates or manually via FailShard (the chaos hook), and is
// sticky — only a completed rebuild (or an explicit MarkHealthy) leaves
// it, because a drive that faulted its way to failed does not earn trust
// back by idling.

// ShardState is one shard's position in the health state machine.
type ShardState int32

const (
	// ShardHealthy serves reads normally.
	ShardHealthy ShardState = iota
	// ShardSuspect has a fault fraction above the suspect threshold:
	// still served, but selection prefers alternatives on ties.
	ShardSuspect
	// ShardFailed is declared dead: selection and recovery route around
	// it entirely, and a rebuild may begin.
	ShardFailed
	// ShardRebuilding is being streamed onto the hot spare; it is treated
	// like failed by the serving layer until the spare swaps in.
	ShardRebuilding
)

// String implements fmt.Stringer.
func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardSuspect:
		return "suspect"
	case ShardFailed:
		return "failed"
	case ShardRebuilding:
		return "rebuilding"
	}
	return fmt.Sprintf("ShardState(%d)", int32(s))
}

// Live reports whether a shard in this state should be offered reads by
// the serving layer (failed and rebuilding shards should not).
func (s ShardState) Live() bool { return s == ShardHealthy || s == ShardSuspect }

// HealthConfig parameterizes the per-shard fault windows.
type HealthConfig struct {
	// Window is how many recent reads each shard's rolling fault window
	// spans (default 128).
	Window int
	// SuspectThreshold is the fault fraction at or above which a healthy
	// shard turns suspect (default 0.25).
	SuspectThreshold float64
	// FailThreshold is the fault fraction at or above which a shard is
	// declared failed (default 0.75).
	FailThreshold float64
	// MinEvents is how many reads the window must cover before either
	// verdict is trusted — a cold window is healthy (default 16).
	MinEvents int
}

// withDefaults fills unset fields.
func (c HealthConfig) withDefaults() HealthConfig {
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.SuspectThreshold <= 0 {
		c.SuspectThreshold = 0.25
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 0.75
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 16
	}
	return c
}

// ShardHealthInfo is one shard's health snapshot.
type ShardHealthInfo struct {
	// Shard is the member index.
	Shard int
	// State is the current state-machine position.
	State ShardState
	// FaultRate is the fault fraction over the rolling window (0 when
	// the window covers no reads).
	FaultRate float64
	// WindowReads is how many reads the window currently covers.
	WindowReads int
	// LatentErrors counts at-rest corruption the scrubber found on this
	// shard (cumulative).
	LatentErrors int64
	// Transitions counts state changes since construction.
	Transitions int64
}

// HealthReporter is the optional Backend face the serving layer consults
// to steer selection and recovery by shard state. *Array implements it; a
// lone Device does not (one shard, nothing to route around).
type HealthReporter interface {
	// ShardState returns shard i's current state.
	ShardState(i int) ShardState
	// ShardHealth returns shard i's full health snapshot.
	ShardHealth(i int) ShardHealthInfo
}

// shardHealth is one shard's window and state.
type shardHealth struct {
	mu     sync.Mutex
	faults []bool // ring of recent read outcomes (true = faulted)
	next   int    // ring cursor
	filled int    // reads covered, ≤ len(faults)
	bad    int    // faults among the covered reads

	state       atomic.Int32
	latent      atomic.Int64
	transitions atomic.Int64
}

// rate returns the window's fault fraction and coverage.
func (h *shardHealth) rate() (float64, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.filled == 0 {
		return 0, 0
	}
	return float64(h.bad) / float64(h.filled), h.filled
}

// resetWindow clears the rolling window (used when a shard re-enters
// service, so stale faults don't instantly re-fail it).
func (h *shardHealth) resetWindow() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next, h.filled, h.bad = 0, 0, 0
	for i := range h.faults {
		h.faults[i] = false
	}
}

// HealthTracker holds the per-shard health of one Array.
type HealthTracker struct {
	cfg    HealthConfig
	shards []shardHealth

	// onFail, when set, is invoked (on its own goroutine) each time a
	// shard transitions into ShardFailed — the hook an auto-rebuilder
	// hangs off.
	mu     sync.Mutex
	onFail func(shard int)
}

// newHealthTracker returns a tracker for n shards.
func newHealthTracker(n int, cfg HealthConfig) *HealthTracker {
	cfg = cfg.withDefaults()
	t := &HealthTracker{cfg: cfg, shards: make([]shardHealth, n)}
	for i := range t.shards {
		t.shards[i].faults = make([]bool, cfg.Window)
	}
	return t
}

// OnFail registers a hook invoked (asynchronously) whenever a shard
// transitions into ShardFailed, whether by window saturation or by an
// explicit FailShard. At most one hook; nil clears it.
func (t *HealthTracker) OnFail(fn func(shard int)) {
	t.mu.Lock()
	t.onFail = fn
	t.mu.Unlock()
}

// fire invokes the failure hook for shard i, if any.
func (t *HealthTracker) fire(i int) {
	t.mu.Lock()
	fn := t.onFail
	t.mu.Unlock()
	if fn != nil {
		go fn(i)
	}
}

// setState transitions shard i, firing the failure hook on entry into
// ShardFailed. Returns whether the state changed.
func (t *HealthTracker) setState(i int, s ShardState) bool {
	h := &t.shards[i]
	old := ShardState(h.state.Swap(int32(s)))
	if old == s {
		return false
	}
	h.transitions.Add(1)
	if s == ShardFailed {
		t.fire(i)
	}
	return true
}

// observe records one read outcome on shard i and advances the automatic
// transitions (healthy ↔ suspect, → failed). Failed and rebuilding are
// sticky: outcomes still enter the window (so the post-rebuild view is
// fresh) but never transition the state.
func (t *HealthTracker) observe(i int, faulted bool) {
	h := &t.shards[i]
	h.mu.Lock()
	if h.faults[h.next] && h.filled == len(h.faults) {
		h.bad--
	}
	h.faults[h.next] = faulted
	if faulted {
		h.bad++
	}
	h.next = (h.next + 1) % len(h.faults)
	if h.filled < len(h.faults) {
		h.filled++
	}
	rate, n := float64(h.bad)/float64(h.filled), h.filled
	h.mu.Unlock()

	state := ShardState(h.state.Load())
	if state == ShardFailed || state == ShardRebuilding {
		return
	}
	if n < t.cfg.MinEvents {
		return
	}
	switch {
	case rate >= t.cfg.FailThreshold:
		t.setState(i, ShardFailed)
	case rate >= t.cfg.SuspectThreshold:
		if state == ShardHealthy {
			t.setState(i, ShardSuspect)
		}
	default:
		if state == ShardSuspect {
			t.setState(i, ShardHealthy)
		}
	}
}

// Info returns shard i's health snapshot.
func (t *HealthTracker) Info(i int) ShardHealthInfo {
	h := &t.shards[i]
	rate, n := h.rate()
	return ShardHealthInfo{
		Shard:        i,
		State:        ShardState(h.state.Load()),
		FaultRate:    rate,
		WindowReads:  n,
		LatentErrors: h.latent.Load(),
		Transitions:  h.transitions.Load(),
	}
}

// AlwaysFail is the total-loss fault model: every read completes with
// ErrReadFailed. Installing it on one shard of an Array is the canonical
// full-drive-failure chaos injection.
type AlwaysFail struct{}

// Judge implements FaultModel.
func (AlwaysFail) Judge(int64, PageID) Fault { return Fault{Err: ErrReadFailed} }
