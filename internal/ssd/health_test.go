package ssd

import (
	"sync"
	"testing"
)

// TestShardHealthTransitions drives one shard of an array through the
// automatic healthy → suspect → failed progression by injecting faults,
// and checks the sibling shard stays healthy.
func TestShardHealthTransitions(t *testing.T) {
	arr, err := NewArray(P5800X, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr.ConfigureHealth(HealthConfig{Window: 32, MinEvents: 8})

	var clock int64
	readShard := func(shard int, n int) {
		for i := 0; i < n; i++ {
			c, _ := arr.Shard(shard).Read(PageID(i), clock)
			clock = c
		}
	}

	// Clean reads on both shards: healthy.
	readShard(0, 16)
	readShard(1, 16)
	if got := arr.ShardState(0); got != ShardHealthy {
		t.Fatalf("shard 0 state = %v, want healthy", got)
	}

	// Shard 0 starts failing every read; it must pass through suspect and
	// land failed, while shard 1 is untouched.
	arr.SetShardFaultModel(0, AlwaysFail{})
	sawSuspect := false
	for i := 0; i < 40 && arr.ShardState(0) != ShardFailed; i++ {
		readShard(0, 1)
		if arr.ShardState(0) == ShardSuspect {
			sawSuspect = true
		}
	}
	if got := arr.ShardState(0); got != ShardFailed {
		t.Fatalf("shard 0 state = %v, want failed", got)
	}
	if !sawSuspect {
		t.Fatalf("shard 0 never passed through suspect")
	}
	if got := arr.ShardState(1); got != ShardHealthy {
		t.Fatalf("shard 1 state = %v, want healthy", got)
	}
	if live := arr.LiveShards(); live != 1 {
		t.Fatalf("LiveShards = %d, want 1", live)
	}

	// Failed is sticky: even clean reads (model removed) don't revive it.
	arr.SetShardFaultModel(0, nil)
	readShard(0, 64)
	if got := arr.ShardState(0); got != ShardFailed {
		t.Fatalf("shard 0 revived to %v without a rebuild", got)
	}

	// The rebuild path does revive it, with a cleared window.
	if !arr.MarkRebuilding(0) {
		t.Fatalf("MarkRebuilding refused a failed shard")
	}
	if arr.MarkRebuilding(0) {
		t.Fatalf("MarkRebuilding claimed a shard twice")
	}
	arr.MarkHealthy(0)
	info := arr.ShardHealth(0)
	if info.State != ShardHealthy || info.WindowReads != 0 {
		t.Fatalf("post-rebuild health = %+v, want healthy with empty window", info)
	}
	if info.Transitions < 4 {
		t.Fatalf("transitions = %d, want ≥ 4", info.Transitions)
	}
}

// TestOnFailHookFires checks the failure hook fires exactly once for a
// window-driven failure and once more for an explicit FailShard.
func TestOnFailHookFires(t *testing.T) {
	arr, err := NewArray(P5800X, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr.ConfigureHealth(HealthConfig{Window: 16, MinEvents: 4})

	var mu sync.Mutex
	fired := make(map[int]int)
	done := make(chan int, 4)
	arr.OnFail(func(shard int) {
		mu.Lock()
		fired[shard]++
		mu.Unlock()
		done <- shard
	})

	arr.SetShardFaultModel(1, AlwaysFail{})
	var clock int64
	for i := 0; i < 16; i++ {
		c, _ := arr.Shard(1).Read(PageID(i), clock)
		clock = c
	}
	if s := <-done; s != 1 {
		t.Fatalf("hook fired for shard %d, want 1", s)
	}

	arr.FailShard(0)
	if s := <-done; s != 0 {
		t.Fatalf("hook fired for shard %d, want 0", s)
	}
	arr.FailShard(0) // already failed: no second fire
	mu.Lock()
	defer mu.Unlock()
	if fired[0] != 1 || fired[1] != 1 {
		t.Fatalf("fire counts = %v, want one per shard", fired)
	}
}

// TestSpareAndSwapShard checks spare attachment rules and that SwapShard
// consumes the spare, preserves survivors, and installs the replacement.
func TestSpareAndSwapShard(t *testing.T) {
	arr, err := NewArray(P5800X, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arr.SwapShard(1, nil); err == nil {
		t.Fatalf("SwapShard without a spare succeeded")
	}
	spare, err := NewDevice(P5800X)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.AttachSpare(spare); err != nil {
		t.Fatal(err)
	}
	if err := arr.AttachSpare(spare); err == nil {
		t.Fatalf("second AttachSpare succeeded")
	}

	// Put some traffic on shard 2 so its stats survive the swap.
	var clock int64
	for i := 0; i < 8; i++ {
		c, _ := arr.Shard(2).Read(PageID(i), clock)
		clock = c
	}
	pre := arr.Shard(2).Stats()

	arr.FailShard(1)
	nb, err := arr.SwapShard(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Shard(1) != spare {
		t.Fatalf("shard 1 of the new array is not the spare")
	}
	if nb.Shard(2) != arr.Shard(2) {
		t.Fatalf("shard 2 was not shared across the swap")
	}
	if got := nb.Shard(2).Stats(); got != pre {
		t.Fatalf("shard 2 stats changed across swap: %+v vs %+v", got, pre)
	}
	if got := nb.ShardState(1); got != ShardHealthy {
		t.Fatalf("new array shard 1 state = %v, want healthy", got)
	}
	if arr.Spare() != nil {
		t.Fatalf("spare not consumed by SwapShard")
	}

	// Reads on a shared device now feed the NEW array's tracker.
	nb.SetShardFaultModel(2, AlwaysFail{})
	for i := 0; i < 32; i++ {
		c, _ := nb.Shard(2).Read(PageID(i), clock)
		clock = c
	}
	if got := nb.ShardState(2); got != ShardFailed {
		t.Fatalf("new array shard 2 state = %v, want failed", got)
	}
}
