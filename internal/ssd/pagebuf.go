package ssd

import "sync/atomic"

// PageBuf is a reference-counted completion buffer of a real-I/O backend:
// the aligned window one page read lands in, plus the page-image view
// within it. Buffers circulate through a per-shard freelist sized to the
// queue depth, so the steady-state read path allocates nothing.
//
// Ownership protocol (DESIGN.md §17): the backend fills the buffer and
// hands exactly one reference to the drainer via Completion.Buf. Whoever
// holds a reference may Retain before sharing the view (one Retain per
// additional holder) and must Release exactly once per reference; the
// buffer returns to its freelist when the count reaches zero, at which
// point every view into it (Bytes, serving SlotRefs) is dead. Release of
// the last reference with the freelist full drops the buffer to the GC —
// correct, just not free — so bursts beyond the depth degrade gracefully
// instead of deadlocking.
type PageBuf struct {
	data []byte // full read window (aligned when the file is O_DIRECT)
	img  []byte // page view within data, set by a successful read
	rc   atomic.Int32
	home chan *PageBuf
}

// newPageBuf returns an unreferenced buffer homed to the given freelist.
func newPageBuf(window int, home chan *PageBuf) *PageBuf {
	return &PageBuf{data: make([]byte, window), home: home}
}

// Bytes returns the page image of the completed read. It aliases the
// recycled buffer: invalid once the holder's reference is released.
func (b *PageBuf) Bytes() []byte { return b.img }

// Retain adds a reference for an additional holder of the buffer's view.
func (b *PageBuf) Retain() { b.rc.Add(1) }

// Release drops one reference; the last release recycles the buffer.
func (b *PageBuf) Release() {
	switch n := b.rc.Add(-1); {
	case n == 0:
		b.img = nil
		select {
		case b.home <- b:
		default: // freelist full: let the GC take it
		}
	case n < 0:
		panic("ssd: PageBuf released more times than retained")
	}
}

// QueuePair is the submit/drain surface a serving worker drives — the
// SPDK-style queue-pair semantics MultiQueue defines, satisfied both by
// the simulator's MultiQueue and by a real-I/O backend's queue pairs. A
// QueuePair is not safe for concurrent use; each worker owns one.
type QueuePair interface {
	// Submit issues an asynchronous read of the global page at virtual
	// time nowNS and returns the issue time (past nowNS only when the
	// owning shard's queue was full).
	Submit(page PageID, nowNS int64) int64
	// Drain waits for every command submitted since the last Drain and
	// returns the resulting virtual time (≥ nowNS) plus all completions
	// ordered by (completion time, page). The slice is reused by the next
	// Drain.
	Drain(nowNS int64) (doneNS int64, comps []Completion)
	// Outstanding returns the commands in flight across all shards.
	Outstanding(nowNS int64) int
	// ShardOutstanding returns the commands in flight on one shard.
	ShardOutstanding(shard int, nowNS int64) int
	// HighWater returns the shard's outstanding-commands high-water mark.
	HighWater(shard int) int
	// NumShards returns the number of per-shard queues.
	NumShards() int
}

// QueuePairProvider is implemented by backends that mint their own queue
// pairs (real-I/O backends whose submission rings are not per-Device
// simulations). Workers ask the backend first and fall back to a
// MultiQueue over its shards.
type QueuePairProvider interface {
	NewQueuePair() QueuePair
}

// NewQueuePairFor returns the queue pair a worker should drive against
// be: the backend's own if it provides one, a simulated MultiQueue
// otherwise.
func NewQueuePairFor(be Backend) QueuePair {
	if qp, ok := be.(QueuePairProvider); ok {
		return qp.NewQueuePair()
	}
	return NewMultiQueue(be)
}
